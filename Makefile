.PHONY: all build test bench examples fuzz doc clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/conv2d_explorer.exe
	dune exec examples/mttkrp_dataflows.exe
	dune exec examples/design_space.exe
	dune exec examples/verilog_tour.exe
	dune exec examples/tiled_reuse.exe
	dune exec examples/custom_einsum.exe

fuzz:
	dune exec bin/fuzz.exe -- 500

clean:
	dune clean
