.PHONY: all build test lint bench bench-quick bench-dse fault-smoke batch-smoke bench-obs obs-smoke analyze-smoke bench-absint store-smoke chaos-smoke bench-resil prog-smoke bench-prog examples fuzz doc clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Benchmark gate: quick sim + DSE throughput run, writes BENCH_sim.json
# (schema and fields: docs/PERF.md).
bench-quick:
	dune exec bench/main.exe -- bench-quick

# DSE gate: full explore/enumerate throughput plus the ResNet-18
# whole-network sweep through a fresh persistent design store (cold,
# same-process warm, and fresh-process warm); writes BENCH_dse.json
# (schema and fields: docs/PERF.md).
bench-dse:
	dune build bin/tensorlib_cli.exe bench/main.exe
	dune exec bench/main.exe -- bench-dse
	grep -q '"schema": "tensorlib-bench-dse/1"' BENCH_dse.json

# Store gate: sweep the tiny network twice through a fresh persistent
# store in fresh CLI processes — the second run must be 100% store hits,
# at least 5x faster and bit-identical — then truncate an entry and
# check corruption degrades to a recomputed miss (exit 1 on any
# violation).
store-smoke:
	dune build bin/tensorlib_cli.exe bench/main.exe
	dune exec bench/main.exe -- store-smoke

# Software-chaos gate: a seeded fault campaign over the toolchain's probe
# sites — store I/O (torn writes, injected Sys_error, corrupt payloads),
# Tl_par tasks (kills, delays), and the serve loop's stdin (oversized
# lines, mid-line EOF).  Asserts >= 200 injected faults, zero crashes,
# store faults degrading to misses, and an interrupted-then-resumed
# sweep digest bit-identical to an uninterrupted run at pool widths 1
# and 3 (probe catalog: docs/RESILIENCE.md).
chaos-smoke:
	dune build bin/tensorlib_cli.exe bench/main.exe
	dune exec bench/main.exe -- chaos-smoke

# Software-resilience benchmark: retry economics under injected read
# weather, budget-degraded partial-sweep latency vs a full sweep, and
# the resume-from-checkpoint speedup; writes BENCH_resil.json.
bench-resil:
	dune build bin/tensorlib_cli.exe bench/main.exe
	dune exec bench/main.exe -- bench-resil
	grep -q '"schema": "tensorlib-bench-resil/1"' BENCH_resil.json

# Resilience gate: 1000-trial fault campaigns on the baseline and the
# TMR+parity+ABFT-hardened 4x4 GEMM accelerator, plus a 10000-trial
# tape-vs-batch throughput campaign on the 8x8 GEMM; writes
# BENCH_fault.json (fault models and outcome taxonomy:
# docs/RESILIENCE.md).
fault-smoke:
	dune exec bench/main.exe -- bench-fault

# Batch-backend gate: 62-lane differential against the golden run and a
# stuck-at campaign cross-check against the scalar tape, plus a quick
# throughput sanity figure.  Fails (exit 1) on any lane divergence —
# small enough for a pre-commit hook.
batch-smoke:
	dune exec bench/main.exe -- batch-smoke

# Observability gate: counter-vs-model validation and measured-activity
# power over the four tier-1 workloads, plus a traced DSE sweep and fault
# campaign; writes BENCH_obs.json and TRACE_obs.json (counter catalog and
# trace schema: docs/OBSERVABILITY.md).
bench-obs:
	dune exec bench/main.exe -- bench-obs

# Smoke check: CLI profile run on the 4x4 GEMM (exit 1 on any counter
# mismatch), then the bench-obs gate, then validate the emitted JSON
# artifacts carry the expected schemata.
obs-smoke:
	dune build bin/tensorlib_cli.exe
	dune exec bin/tensorlib_cli.exe -- profile -w gemm-small -d MNK-SST \
	  --rows 4 --cols 4 --json --trace TRACE_obs.json > /dev/null
	grep -q '"traceEvents"' TRACE_obs.json
	dune exec bench/main.exe -- bench-obs
	grep -q '"schema": "tensorlib-bench-obs/1"' BENCH_obs.json
	grep -q '"traceEvents"' TRACE_obs.json
	@echo "obs-smoke: OK"

# Abstract-interpretation gate: every tier-1 workload's generated netlist
# must statically prove the L200/L201/L202 safety rules — no simulation —
# via the CLI netlist analyzer (exit 1 on any unproven rule; engine and
# rule family: docs/ANALYSIS.md).
analyze-smoke:
	dune build bin/tensorlib_cli.exe
	dune exec bin/tensorlib_cli.exe -- analyze -w gemm-small -d MNK-SST \
	  --netlist --rows 4 --cols 4 > /dev/null
	dune exec bin/tensorlib_cli.exe -- analyze -w conv2d-small -d KCX-SST \
	  --netlist --rows 4 --cols 4 > /dev/null
	dune exec bin/tensorlib_cli.exe -- analyze -w depthwise-small -d XYP-MMM \
	  --netlist --rows 4 --cols 4 > /dev/null
	dune exec bin/tensorlib_cli.exe -- analyze -w mttkrp-small -d IKL-UBBB \
	  --netlist --rows 4 --cols 4 > /dev/null
	@echo "analyze-smoke: OK"

# Proof + narrowing benchmark over the four tier-1 workloads; writes
# BENCH_absint.json (fails if any safety rule is unproven).
bench-absint:
	dune exec bench/main.exe -- bench-absint
	grep -q '"schema": "tensorlib-bench-absint/1"' BENCH_absint.json

# Programmable-accelerator gate: one 4x4 MNK-SST netlist with writable
# schedule memories serves three GEMM shapes, each bit-identical to a
# freshly generated per-shape ROM build on both scalar sim backends,
# with a program-codec roundtrip and lint/absint no-new-findings checks
# on the programmable variant (exit 1 on any divergence).
prog-smoke:
	dune exec bench/main.exe -- prog-smoke

# Reprogramming benchmark: loading a compiled program into the standing
# array vs regenerating + re-elaborating a per-shape ROM accelerator
# (compile cost reported separately); writes BENCH_prog.json and fails
# if reprogramming is less than 10x faster or any output diverges.
bench-prog:
	dune exec bench/main.exe -- bench-prog
	grep -q '"schema": "tensorlib-bench-prog/1"' BENCH_prog.json

examples:
	dune exec examples/quickstart.exe
	dune exec examples/conv2d_explorer.exe
	dune exec examples/mttkrp_dataflows.exe
	dune exec examples/design_space.exe
	dune exec examples/verilog_tour.exe
	dune exec examples/tiled_reuse.exe
	dune exec examples/custom_einsum.exe

# Static-analysis gate: every supported design of the small workloads must
# report zero error-severity findings (rule catalog: docs/LINT.md).
lint:
	dune build bin/tensorlib_cli.exe
	dune exec bin/tensorlib_cli.exe -- lint -w gemm-small
	dune exec bin/tensorlib_cli.exe -- lint -w conv2d-small
	dune exec bin/tensorlib_cli.exe -- lint -w depthwise-small
	dune exec bin/tensorlib_cli.exe -- lint -w mttkrp-small

# Random designs vs the golden executor, the lint differential oracle over
# random netlists (Rewrite must never introduce findings), and the absint
# soundness oracle (simulated values stay inside the abstract fixpoint on
# both sim backends; narrowing stays output-equivalent).
fuzz:
	dune exec bin/fuzz.exe -- 500

clean:
	dune clean
