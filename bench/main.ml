(* Reproduction harness: regenerates every table and figure of the paper's
   evaluation (§VI), plus the ablations called out in DESIGN.md, plus
   Bechamel micro-benchmarks of the generator itself (one Test.make per
   table/figure).

   Run everything:          dune exec bench/main.exe
   One experiment:          dune exec bench/main.exe -- fig5
   Sections: table1 table2 fig5 fig6 table3 ablation-float ablation-span
             micro bench-sim bench-dse bench-quick

   The heavy sweeps (fig5, fig6, verify) and the DSE loops fan out over a
   Tl_par domain pool (override the width with TL_DOMAINS=n).  The
   bench-sim / bench-dse sections are the benchmark gate: they emit
   machine-readable BENCH_sim.json (see docs/PERF.md). *)

open Tensorlib

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* Table I: reuse-subspace taxonomy.                                   *)

let table1 () =
  section "Table I: dataflow analysis with STT (reuse-subspace taxonomy)";
  let gemm = Workloads.gemm ~m:8 ~n:8 ~k:8 in
  let bg = Workloads.batched_gemv ~m:8 ~n:8 ~k:8 in
  let dw = Workloads.depthwise_conv ~k:8 ~y:8 ~x:8 ~p:3 ~q:3 in
  let conv = Workloads.conv2d ~k:8 ~c:8 ~y:8 ~x:8 ~p:3 ~q:3 in
  let show stmt sel matrix tensor =
    let t = Transform.by_names stmt sel ~matrix in
    let d = Design.analyze t in
    let ti = Design.find_tensor d tensor in
    Printf.printf "  dim %d  %-38s <- %s of %s under %s\n"
      (Dataflow.subspace_dim ti.Design.dataflow)
      (Dataflow.to_string ti.Design.dataflow)
      tensor stmt.Stmt.name
      (Transform.selection_label t)
  in
  print_endline "  rank 0: single point -> unicast";
  show bg [ "m"; "n"; "k" ] [ [ 1; 0; 0 ]; [ 0; 1; 0 ]; [ 0; 0; 1 ] ] "A";
  print_endline "  rank 1: line; classified by its direction (dp, dt)";
  show gemm [ "m"; "n"; "k" ] [ [ 1; 0; 0 ]; [ 0; 1; 0 ]; [ 1; 1; 1 ] ] "C";
  show gemm [ "m"; "n"; "k" ] [ [ 1; 0; 0 ]; [ 0; 1; 0 ]; [ 1; 1; 1 ] ] "A";
  show gemm [ "m"; "n"; "k" ] [ [ 0; 1; 0 ]; [ 0; 0; 1 ]; [ 1; 0; 0 ] ] "A";
  print_endline "  rank 2: plane; classified by its position vs the t axis";
  show dw [ "x"; "y"; "p" ] [ [ 0; 1; 0 ]; [ 1; 0; 0 ]; [ 0; 0; 1 ] ] "B";
  show dw [ "x"; "y"; "p" ] [ [ 0; 1; 1 ]; [ 0; 0; 1 ]; [ 1; 0; 0 ] ] "B";
  show conv [ "x"; "y"; "p" ] [ [ 1; 0; 0 ]; [ 0; 1; 0 ]; [ 0; 1; 1 ] ] "B"

(* ------------------------------------------------------------------ *)
(* Table II: evaluated tensor algebras.                                *)

let table2 () =
  section "Table II: evaluated tensor algebras";
  List.iter
    (fun (name, stmt) -> Format.printf "  %-14s %a@." name Stmt.pp stmt)
    [ ("GEMM", Workloads.gemm ~m:2 ~n:2 ~k:2);
      ("Batched-GEMV", Workloads.batched_gemv ~m:2 ~n:2 ~k:2);
      ("Conv2D", Workloads.conv2d ~k:2 ~c:2 ~y:2 ~x:2 ~p:2 ~q:2);
      ("Depthwise-Conv", Workloads.depthwise_conv ~k:2 ~y:2 ~x:2 ~p:2 ~q:2);
      ("MTTKRP", Workloads.mttkrp ~i:2 ~j:2 ~k:2 ~l:2);
      ("TTMc", Workloads.ttmc ~i:2 ~j:2 ~k:2 ~l:2 ~m:2) ]

(* ------------------------------------------------------------------ *)
(* Figure 3: the PE-internal module templates, as elaborated netlists.  *)

let fig3 () =
  section "Figure 3: PE-internal module templates (elaborated structure)";
  let open Signal in
  let stats name outputs =
    let c = Circuit.create ~name ~outputs in
    let st = Circuit.stats c in
    Printf.printf "  %-28s regs=%2d (%3d bits) adders=%d muxes=%d\n" name
      st.Circuit.regs st.Circuit.reg_bits st.Circuit.adders st.Circuit.muxes
  in
  let din = input "din" 16 in
  let use, dout = Pe_modules.systolic_input ~dt:1 ~din in
  stats "(a) systolic input" [ ("use", use); ("dout", dout) ];
  let psum = input "psum" 32 and contrib = input "contrib" 32 in
  stats "(b) systolic output"
    [ ("out", Pe_modules.systolic_output ~dt:1 ~psum_in:psum ~contribution:contrib) ];
  let load = input "load" 1 and next = input "next" 16 in
  stats "(c) stationary input (2x buf)"
    [ ("held", Pe_modules.stationary_input ~load ~next) ];
  let valid = input "valid" 1 and shadow_in = input "shadow_in" 32 in
  let stage = input "stage" 1 and capture = input "capture" 1 in
  let shift = input "shift" 1 in
  let m =
    Pe_modules.stationary_output ~valid ~stage_start:stage ~capture
      ~drain_shift:shift ~contribution:contrib ~shadow_in
  in
  stats "(d) stationary output (2x buf)"
    [ ("acc", m.Pe_modules.acc); ("shadow", m.Pe_modules.shadow) ];
  let bus = input "bus" 16 in
  stats "(e) multicast/unicast input"
    [ ("use", Pe_modules.direct_input ~bus) ];
  stats "(f) tree contribution"
    [ ("leaf", Pe_modules.tree_contribution ~valid ~contribution:contrib) ];
  print_endline
    "  a complete PE = one module per tensor around the computation cell."

(* ------------------------------------------------------------------ *)
(* Figure 4: interconnection patterns for the GEMM dataflow examples.   *)

let fig4 () =
  section "Figure 4: PE interconnection patterns (4x4 diagrams)";
  let gemm = Workloads.gemm ~m:4 ~n:4 ~k:4 in
  let show title d =
    Format.printf "@.  (%s)@.%a@." title (Topology.pp_diagram ?rows:None ?cols:None) d
  in
  show "a: systolic" (Search.find_design_exn gemm "MNK-SST");
  show "b: multicast input + stationary"
    (Search.find_design_exn gemm "MNK-MMT");
  (* c: Eyeriss-style diagonal multicast: A's reuse direction maps to the
     (1,1) array diagonal *)
  let diag =
    Design.analyze
      (Transform.by_names gemm [ "m"; "n"; "k" ]
         ~matrix:[ [ 0; 1; 1 ]; [ 1; 1; 0 ]; [ 1; 0; 0 ] ])
  in
  show "c: diagonal multicast (Eyeriss-style)" diag;
  show "d: reduction-tree output" (Search.find_design_exn gemm "MNK-MTM")

(* ------------------------------------------------------------------ *)
(* Figure 5: normalized performance of representative dataflows.       *)

let fig5_workloads () =
  [ ("GEMM", Workloads.gemm ~m:256 ~n:256 ~k:256,
     [ "MNK-SST"; "MNK-STS"; "MNK-MTM"; "MNK-MMT"; "MNK-TSM"; "MNK-SSM" ]);
    ("Batched-GEMV", Workloads.batched_gemv ~m:64 ~n:256 ~k:256,
     [ "MNK-UTS"; "MNK-UTM"; "MNK-UST" ]);
    ("Conv2D-ResNet-L2", Workloads.resnet_layer2,
     [ "KCX-SST"; "KCX-STS"; "KCX-MTM"; "XYP-MMT"; "XYP-MST"; "KPX-TMM" ]);
    ("Conv2D-ResNet-L5", Workloads.resnet_layer5,
     [ "KCX-SST"; "KCX-STS"; "KCX-MTM"; "XYP-MMT"; "XYP-MST"; "KPX-TMM" ]);
    ("Depthwise-Conv", Workloads.depthwise_conv ~k:256 ~y:28 ~x:28 ~p:3 ~q:3,
     [ "XYP-MMM"; "KPX-UMM"; "KYP-SMT"; "KXQ-TMS"; "YXP-SBT" ]);
    ("MTTKRP", Workloads.mttkrp ~i:128 ~j:64 ~k:64 ~l:64,
     [ "IKL-UBBB"; "IJK-SSMT"; "IJK-MMBT"; "IJK-SSBT" ]);
    ("TTMc", Workloads.ttmc ~i:64 ~j:32 ~k:32 ~l:64 ~m:64,
     [ "IJK-BBBU"; "IJL-MMBT"; "IJL-SSBT"; "IJM-MBBT" ]) ]

let bar width v =
  let n = int_of_float (v *. float_of_int width) in
  String.make (max 0 (min width n)) '#'

let fig5 () =
  section
    "Figure 5: normalized performance of dataflows (16x16 PEs, 320 MHz, \
     32 GB/s)";
  let csv = Buffer.create 1024 in
  Buffer.add_string csv "workload,dataflow,normalized,cycles,utilization,bw_stall\n";
  let workloads = fig5_workloads () in
  (* evaluate every (workload, dataflow) point on the domain pool, then
     print sequentially in the figure's order *)
  let jobs =
    List.concat_map
      (fun (wname, stmt, dataflows) ->
        List.map (fun df -> (wname, stmt, df)) dataflows)
      workloads
  in
  let evaluated = Hashtbl.create 64 in
  List.iter2
    (fun (wname, _, df) r -> Hashtbl.replace evaluated (wname, df) r)
    jobs
    (Par.map (fun (_, stmt, df) -> Perf.evaluate_name stmt df) jobs);
  List.iter
    (fun (wname, _, dataflows) ->
      Printf.printf "\n  %s\n" wname;
      List.iter
        (fun df ->
          match Hashtbl.find evaluated (wname, df) with
          | Some r ->
            Printf.printf
              "    %-10s %5.3f |%-30s| cycles=%-9.0f util=%4.2f bw=%4.2fx\n"
              df r.Perf.normalized_perf
              (bar 30 r.Perf.normalized_perf)
              r.Perf.cycles r.Perf.utilization r.Perf.bw_stall_factor;
            Buffer.add_string csv
              (Printf.sprintf "%s,%s,%.4f,%.0f,%.4f,%.3f\n" wname df
                 r.Perf.normalized_perf r.Perf.cycles r.Perf.utilization
                 r.Perf.bw_stall_factor)
          | None -> Printf.printf "    %-10s (not realisable)\n" df)
        dataflows)
    workloads;
  let oc = open_out "fig5.csv" in
  Buffer.output_buffer oc csv;
  close_out oc;
  print_endline "\n  (series written to fig5.csv)";
  print_endline "\n  Shape checks vs the paper (section VI-A):";
  let gemm = Workloads.gemm ~m:256 ~n:256 ~k:256 in
  let get stmt n = Option.get (Perf.evaluate_name stmt n) in
  let mtm = get gemm "MNK-MTM" and sts = get gemm "MNK-STS" in
  Printf.printf
    "    multicast beats systolic on GEMM cycles: %s (%.3f vs %.3f)\n"
    (if mtm.Perf.normalized_perf > sts.Perf.normalized_perf then "YES"
     else "NO")
    mtm.Perf.normalized_perf sts.Perf.normalized_perf;
  let mt = Workloads.mttkrp ~i:128 ~j:64 ~k:64 ~l:64 in
  let uni = get mt "IKL-UBBB" and reuse = get mt "IJK-MMBT" in
  Printf.printf
    "    MTTKRP unicast bandwidth-bound (stall %.1fx), reuse %.1fx faster: %s\n"
    uni.Perf.bw_stall_factor
    (uni.Perf.cycles /. reuse.Perf.cycles)
    (if uni.Perf.bw_stall_factor > 2. then "YES" else "NO");
  let l2 = get Workloads.resnet_layer2 "XYP-MMT" in
  let l5 = get Workloads.resnet_layer5 "XYP-MMT" in
  Printf.printf
    "    ResNet-L5 XY dataflows worse than L2 (x=y=7): %s (%.3f vs %.3f)\n"
    (if l5.Perf.normalized_perf < l2.Perf.normalized_perf then "YES" else "NO")
    l5.Perf.normalized_perf l2.Perf.normalized_perf;
  let kcx = get Workloads.resnet_layer2 "KCX-SST" in
  Printf.printf
    "    KCX (GEMM-like) beats XY dataflows on Conv2D: %s (%.3f vs %.3f)\n"
    (if kcx.Perf.normalized_perf > l2.Perf.normalized_perf then "YES"
     else "NO")
    kcx.Perf.normalized_perf l2.Perf.normalized_perf

(* ------------------------------------------------------------------ *)
(* Figure 6: power/area scatter over the design space.                 *)

let scatter points =
  let w = 56 and h = 14 in
  let xs = List.map fst points and ys = List.map snd points in
  let mn l = List.fold_left min (List.hd l) l in
  let mx l = List.fold_left max (List.hd l) l in
  let x0 = mn xs and x1 = mx xs and y0 = mn ys and y1 = mx ys in
  let grid = Array.make_matrix h w ' ' in
  List.iter
    (fun (x, y) ->
      let xi =
        int_of_float ((x -. x0) /. (x1 -. x0 +. 1e-9) *. float_of_int (w - 1))
      in
      let yi =
        int_of_float ((y -. y0) /. (y1 -. y0 +. 1e-9) *. float_of_int (h - 1))
      in
      let row = h - 1 - yi in
      grid.(row).(xi) <-
        (match grid.(row).(xi) with ' ' -> '.' | '.' -> 'o' | _ -> '@'))
    points;
  Printf.printf "    %.1f mW\n" y1;
  Array.iter
    (fun row -> Printf.printf "    |%s|\n" (String.init w (Array.get row)))
    grid;
  Printf.printf "    %.1f mW  area %.0f .. %.0f\n" y0 x0 x1

let fig6_one name points =
  let costed =
    Par.map (fun p -> (p, Asic.evaluate p.Enumerate.design)) points
  in
  let csv = Buffer.create 1024 in
  Buffer.add_string csv "design,area,power_mw\n";
  List.iter
    (fun ((p : Enumerate.point), (r : Asic.report)) ->
      Buffer.add_string csv
        (Printf.sprintf "%s,%.2f,%.2f\n" p.Enumerate.design.Design.name
           r.Asic.area r.Asic.power_mw))
    costed;
  let path = Printf.sprintf "fig6_%s.csv" (String.lowercase_ascii name) in
  let oc = open_out path in
  Buffer.output_buffer oc csv;
  close_out oc;
  let powers = List.map (fun (_, r) -> r.Asic.power_mw) costed in
  let areas = List.map (fun (_, r) -> r.Asic.area) costed in
  let mn l = List.fold_left min (List.hd l) l in
  let mx l = List.fold_left max (List.hd l) l in
  Printf.printf "\n  %s: %d design points\n" name (List.length points);
  Printf.printf
    "    energy spread: %.1f .. %.1f mW  (%.2fx; paper: ~1.8x, 35..63 mW)\n"
    (mn powers) (mx powers)
    (mx powers /. mn powers);
  Printf.printf "    area   spread: %.0f .. %.0f     (%.2fx; paper: ~1.16x)\n"
    (mn areas) (mx areas)
    (mx areas /. mn areas);
  scatter (List.map (fun (_, r) -> (r.Asic.area, r.Asic.power_mw)) costed);
  let by_power =
    List.sort
      (fun (_, (a : Asic.report)) (_, b) -> compare b.Asic.power_mw a.Asic.power_mw)
      costed
  in
  let seen = Hashtbl.create 8 in
  let distinct_hot =
    List.filter
      (fun ((p : Enumerate.point), _) ->
        let n = p.Enumerate.design.Design.name in
        if Hashtbl.mem seen n then false
        else begin
          Hashtbl.add seen n ();
          true
        end)
      by_power
  in
  Printf.printf "    energy-hungriest designs:";
  List.iteri
    (fun i ((p : Enumerate.point), (r : Asic.report)) ->
      if i < 3 then
        Printf.printf " %s (%.1f mW)" p.Enumerate.design.Design.name
          r.Asic.power_mw)
    distinct_hot;
  print_newline ()

let fig6 () =
  section
    "Figure 6: power and area of the dataflow design space (INT16, 16x16, \
     320 MHz)";
  print_endline
    "  note: our enumeration counts distinct architectures up to array\n\
    \  symmetry; the paper reports 148 GEMM / 33 Depthwise points with an\n\
    \  unspecified dedup criterion -- spreads and ordering are the claims.";
  let gemm = Workloads.gemm ~m:256 ~n:256 ~k:256 in
  fig6_one "GEMM" (Enumerate.design_space gemm);
  let dw = Workloads.depthwise_conv ~k:256 ~y:28 ~x:28 ~p:3 ~q:3 in
  fig6_one "Depthwise-Conv2D" (Enumerate.design_space ~exclude_unicast:true dw)

(* ------------------------------------------------------------------ *)
(* Table III: FPGA comparison.                                         *)

let table3 () =
  section "Table III: FPGA comparison on MM / Conv workloads (FP32)";
  let mm = Workloads.gemm ~m:1024 ~n:1024 ~k:1024 in
  let conv = Workloads.conv2d ~k:512 ~c:512 ~y:28 ~x:28 ~p:3 ~q:3 in
  let fpga_cfg =
    { Perf.default_config with rows = 10; cols = 16; bandwidth_gbps = 64.;
      elem_bytes = 4 }
  in
  let tensorlib_row ?(style = Fpga.rtl_style) workload stmt buffer_scale =
    let name = if workload = "Conv" then "KCX-STS" else "MNK-STS" in
    let d = Search.find_design_exn stmt name in
    let perf = Perf.evaluate ~config:fpga_cfg d in
    Fpga.evaluate ~style ~buffer_scale ~device:Fpga.vu9p ~rows:10 ~cols:16
      ~vec:8 ~datatype:Fpga.Fp32 ~efficiency:perf.Perf.pipelined_perf
      ~workload d
  in
  let rows =
    List.concat_map
      (fun b ->
        List.filter_map
          (fun w -> b.Baselines.published ~workload:w)
          [ "MM"; "Conv" ])
      Baselines.all
    @ [ tensorlib_row "MM" mm 1.0; tensorlib_row "Conv" conv 1.45 ]
  in
  Printf.printf "  %-24s %-9s %-5s %6s %6s %6s %7s %9s\n" "generator"
    "device" "wl" "LUT%" "DSP%" "BRAM%" "MHz" "Gop/s";
  List.iter
    (fun (r : Fpga.report) ->
      Printf.printf "  %-24s %-9s %-5s %6.0f %6.0f %6.0f %7.0f %9.0f\n"
        r.Fpga.generator r.Fpga.device r.Fpga.workload r.Fpga.lut_pct
        r.Fpga.dsp_pct r.Fpga.bram_pct r.Fpga.mhz r.Fpga.gops)
    rows;
  let tl = tensorlib_row "MM" mm 1.0 in
  let best_baseline =
    List.fold_left
      (fun acc b ->
        match b.Baselines.published ~workload:"MM" with
        | Some r -> max acc r.Fpga.gops
        | None -> acc)
      0. Baselines.all
  in
  Printf.printf
    "\n  headline: TensorLib MM throughput = %.0f Gop/s, best baseline = %.0f\n"
    tl.Fpga.gops best_baseline;
  Printf.printf "  improvement: %+.0f%%  (paper: +21%%)\n"
    (100. *. ((tl.Fpga.gops /. best_baseline) -. 1.));
  let fp = tensorlib_row ~style:Fpga.rtl_floorplanned "MM" mm 1.0 in
  Printf.printf
    "  with AutoBridge-style floorplanning (sec VI-C): %.0f MHz (paper: 328)\n"
    fp.Fpga.mhz;
  let dw = Workloads.depthwise_conv ~k:64 ~y:14 ~x:14 ~p:3 ~q:3 in
  match Baselines.best_supported_design dw Baselines.polysa with
  | None ->
    print_endline
      "  Depthwise-Conv: baselines have NO design (systolic-only space)"
  | Some (d, r) ->
    let tl_best =
      List.fold_left
        (fun acc name ->
          match Perf.evaluate_name dw name with
          | Some r -> max acc r.Perf.normalized_perf
          | None -> acc)
        0.
        [ "XYP-MMM"; "KPX-UMM"; "KYP-SMT"; "KXQ-TMS" ]
    in
    Printf.printf
      "  Depthwise-Conv generality: best systolic-only design (%s) reaches\n\
      \  %.3f of peak vs TensorLib's %.3f -- multicast/2-D dataflows needed\n"
      d.Design.name r.Perf.normalized_perf tl_best

(* ------------------------------------------------------------------ *)
(* Ablation 1: exact rational analysis vs floating point.              *)

let float_rank_f a eps =
  let rows = Array.length a and cols = Array.length a.(0) in
  let a = Array.map Array.copy a in
  let rank = ref 0 in
  let r = ref 0 in
  for c = 0 to cols - 1 do
    if !r < rows then begin
      let piv = ref (-1) in
      for i = !r to rows - 1 do
        if !piv < 0 && abs_float a.(i).(c) > eps then piv := i
      done;
      if !piv >= 0 then begin
        let tmp = a.(!r) in
        a.(!r) <- a.(!piv);
        a.(!piv) <- tmp;
        for i = 0 to rows - 1 do
          if i <> !r then begin
            let f = a.(i).(c) /. a.(!r).(c) in
            for j = 0 to cols - 1 do
              a.(i).(j) <- a.(i).(j) -. (f *. a.(!r).(j))
            done
          end
        done;
        incr rank;
        incr r
      end
    end
  done;
  !rank

let ablation_float () =
  section "Ablation: exact rational vs floating-point reuse analysis";
  print_endline
    "  A floating-point analysis needs a rank threshold (epsilon).  On the\n\
    \  {-1,0,1} matrix space any sane epsilon works, but large-coefficient\n\
    \  transformations produce T^-1 entries of magnitude ~1/det that fall\n\
    \  below the threshold, collapsing the rank and misclassifying the\n\
    \  dataflow.  Exact rationals need no threshold at all.";
  let gemm = Workloads.gemm ~m:16 ~n:16 ~k:16 in
  Random.init 42;
  let sample () =
    let rec go () =
      let m =
        List.init 3 (fun _ -> List.init 3 (fun _ -> Random.int 399 - 199))
      in
      if Rat.is_zero (Mat.det (Mat.of_int_rows m)) then go () else m
    in
    go ()
  in
  List.iter
    (fun eps ->
      let mismatches = ref 0 and total = ref 0 in
      for _ = 1 to 1500 do
        let m = sample () in
        let t = Transform.by_names gemm [ "m"; "n"; "k" ] ~matrix:m in
        let d = Design.analyze t in
        List.iter
          (fun (ti : Design.tensor_info) ->
            incr total;
            let a_sel = Transform.restricted_access t ti.Design.access in
            let at = Mat.mul a_sel (Transform.inverse t) in
            let fm =
              Array.init (Mat.rows at) (fun i ->
                  Array.init (Mat.cols at) (fun j ->
                      Rat.to_float (Mat.get at i j)))
            in
            let fdim = Mat.cols at - float_rank_f fm eps in
            if fdim <> Dataflow.subspace_dim ti.Design.dataflow then
              incr mismatches)
          d.Design.tensors
      done;
      Printf.printf
        "  entries in [-199,199], epsilon = %-8g -> %4d / %4d misclassified\n"
        eps !mismatches !total)
    [ 1e-2; 1e-3; 1e-6; 1e-14; 1e-16 ]

(* ------------------------------------------------------------------ *)
(* Ablation 2: exact time-span model vs naive busy-only model.         *)

let ablation_span () =
  section "Ablation: exact time-span cycle model vs naive (skew-free) model";
  let gemm = Workloads.gemm ~m:256 ~n:256 ~k:256 in
  Printf.printf "  %-10s %14s %14s\n" "dataflow" "exact model" "naive model";
  List.iter
    (fun name ->
      match Perf.evaluate_name gemm name with
      | Some r ->
        let tile_macs = Array.fold_left ( * ) 1 r.Perf.tile in
        let naive =
          float_of_int r.Perf.total_passes
          *. (float_of_int tile_macs /. 256.)
        in
        Printf.printf "  %-10s %10.0f cyc %10.0f cyc\n" name r.Perf.cycles
          naive
      | None -> ())
    [ "MNK-SST"; "MNK-STS"; "MNK-MTM"; "MNK-MMT" ];
  print_endline
    "  the naive model cannot distinguish systolic from multicast designs\n\
    \  (no fill/drain skew), losing the paper's Fig. 5 GEMM ordering."

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks.                                          *)

let micro () =
  section "Micro-benchmarks (Bechamel): generator and model throughput";
  let open Bechamel in
  let open Toolkit in
  let gemm4 = Workloads.gemm ~m:4 ~n:4 ~k:4 in
  let gemm256 = Workloads.gemm ~m:256 ~n:256 ~k:256 in
  let sst = Search.find_design_exn gemm4 "MNK-SST" in
  let sst256 = Search.find_design_exn gemm256 "MNK-SST" in
  let env = Exec.alloc_inputs gemm4 in
  let tests =
    [ Test.make ~name:"table1-classify-design"
        (Staged.stage (fun () -> ignore (Design.analyze sst.Design.transform)));
      Test.make ~name:"fig5-perf-evaluate"
        (Staged.stage (fun () -> ignore (Perf.evaluate sst256)));
      Test.make ~name:"fig6-asic-evaluate"
        (Staged.stage (fun () -> ignore (Asic.evaluate sst256)));
      Test.make ~name:"table3-fpga-evaluate"
        (Staged.stage (fun () ->
             ignore
               (Fpga.evaluate ~device:Fpga.vu9p ~rows:10 ~cols:16 ~vec:8
                  ~datatype:Fpga.Fp32 ~efficiency:1.0 ~workload:"MM" sst256)));
      Test.make ~name:"generate-4x4-netlist"
        (Staged.stage (fun () ->
             ignore (Accel.generate ~rows:4 ~cols:4 sst env)));
      (* steady-state simulation: the sim (and hence the compiled tape /
         closure program) is built once, each run is reset + full schedule,
         as in a DSE loop re-simulating one accelerator on many inputs *)
      Test.make ~name:"simulate-4x4-netlist"
        (Staged.stage
           (let acc = Accel.generate ~rows:4 ~cols:4 sst env in
            let sim = Sim.create acc.Accel.circuit in
            let n = acc.Accel.total_cycles + 1 in
            fun () ->
              Sim.reset sim;
              Sim.cycles sim n));
      Test.make ~name:"simulate-4x4-closure"
        (Staged.stage
           (let acc = Accel.generate ~rows:4 ~cols:4 sst env in
            let sim = Sim.create ~backend:`Closure acc.Accel.circuit in
            let n = acc.Accel.total_cycles + 1 in
            fun () ->
              Sim.reset sim;
              Sim.cycles sim n));
      Test.make ~name:"emit-verilog-4x4"
        (Staged.stage
           (let acc = Accel.generate ~rows:4 ~cols:4 sst env in
            fun () -> ignore (Accel.verilog acc))) ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let grouped = Test.make_grouped ~name:"tensorlib" tests in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  List.iter
    (fun (name, est) ->
      match Analyze.OLS.estimates est with
      | Some (t :: _) ->
        if t > 1e6 then Printf.printf "  %-40s %10.2f ms/run\n" name (t /. 1e6)
        else if t > 1e3 then
          Printf.printf "  %-40s %10.2f us/run\n" name (t /. 1e3)
        else Printf.printf "  %-40s %10.0f ns/run\n" name t
      | Some [] | None -> Printf.printf "  %-40s (no estimate)\n" name)
    (List.sort compare rows);
  let estimate_of suffix =
    List.find_map
      (fun (name, est) ->
        if Filename.check_suffix name suffix then
          match Analyze.OLS.estimates est with
          | Some (t :: _) -> Some t
          | Some [] | None -> None
        else None)
      rows
  in
  match (estimate_of "simulate-4x4-netlist", estimate_of "simulate-4x4-closure")
  with
  | Some tape, Some closure when tape > 0. ->
    Printf.printf
      "\n  instruction-tape backend speedup over closure interpreter: %.2fx\n"
      (closure /. tape)
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Functional verification: generated netlists vs the golden model.    *)

let verify () =
  section
    "Functional verification: generated netlists vs the golden executor";
  (* each check elaborates and simulates a full accelerator: run them on
     the domain pool and print the reports in order *)
  let check label stmt name rows cols () =
    match Search.find_design stmt name with
    | None -> Printf.sprintf "  %-34s not realisable\n" label
    | Some d -> (
      let env = Exec.alloc_inputs stmt in
      match Accel.generate ~rows ~cols d env with
      | exception Accel.Unsupported msg ->
        Printf.sprintf "  %-34s unsupported: %s\n" label msg
      | acc ->
        let ok = Dense.equal (Exec.run stmt env) (Accel.execute acc) in
        (* batched re-simulation: several fresh input environments through
           one bit-sliced pass, each lane checked against the golden
           executor *)
        let envs = List.init 4 (fun k -> Exec.alloc_inputs ~seed:(k + 1) stmt) in
        let batch_ok =
          List.for_all2
            (fun env out -> Dense.equal (Exec.run stmt env) out)
            envs
            (Accel.execute_batch acc envs)
        in
        let st = Circuit.stats acc.Accel.circuit in
        Printf.sprintf "  %-34s %-5s %4d cycles, %4d regs, %3d rams%s\n" label
          (if ok && batch_ok then "PASS" else "FAIL")
          acc.Accel.total_cycles st.Circuit.regs st.Circuit.rams
          (if batch_ok then "" else "  [batch lanes diverged]"))
  in
  let gemm = Workloads.gemm ~m:4 ~n:4 ~k:5 in
  let conv = Workloads.conv2d ~k:4 ~c:4 ~y:4 ~x:4 ~p:3 ~q:3 in
  let strided = Workloads.conv2d_strided ~stride:2 ~k:3 ~c:3 ~y:3 ~x:3 ~p:3 ~q:3 in
  let dw = Workloads.depthwise_conv ~k:4 ~y:4 ~x:4 ~p:3 ~q:3 in
  let mt = Workloads.mttkrp ~i:4 ~j:4 ~k:4 ~l:4 in
  let tt = Workloads.ttmc ~i:4 ~j:4 ~k:3 ~l:4 ~m:4 in
  let bg = Workloads.batched_gemv ~m:4 ~n:4 ~k:4 in
  let big = Tiling.split (Workloads.gemm ~m:8 ~n:8 ~k:8) [ ("m", 4); ("n", 4) ] in
  let checks =
    [ check "GEMM output-stationary (SST)" gemm "MNK-SST" 8 8;
      check "GEMM weight-stationary (STS)" gemm "MNK-STS" 8 8;
      check "GEMM multicast+tree (MTM)" gemm "MNK-MTM" 8 8;
      check "GEMM wavefront (SSS)" gemm "MNK-SSS" 8 8;
      check "Conv2D KCX-SST" conv "KCX-SST" 8 8;
      check "Conv2D ShiDianNao-style" conv "XYP-MST" 8 8;
      check "Conv2D stride-2" strided "KCX-SST" 8 8;
      check "Depthwise XYP-MMM" dw "XYP-MMM" 8 8;
      check "MTTKRP unicast (3-operand)" mt "IKL-UBBB" 8 8;
      check "MTTKRP systolic" mt "IJK-SSMT" 8 8;
      check "TTMc unicast output" tt "IJK-BBBU" 8 8;
      check "Batched-GEMV" bg "MNK-UTM" 8 8;
      check "GEMM 8x8x8 tiled onto 4x4" big "MNK-SST" 4 4 ]
  in
  List.iter print_string (Par.map (fun f -> f ()) checks)

(* ------------------------------------------------------------------ *)
(* Reuse metrics: the analytic backbone of the Fig. 5 bandwidth story. *)

let metrics () =
  section "Reuse metrics (per-tensor traffic and arithmetic intensity)";
  let show stmt name =
    match Search.find_design stmt name with
    | None -> ()
    | Some d -> Format.printf "%a@.@." Metrics.pp (Metrics.of_design d)
  in
  let gemm = Workloads.gemm ~m:256 ~n:256 ~k:256 in
  show gemm "MNK-SST";
  show gemm "MNK-MTM";
  let bg = Workloads.batched_gemv ~m:64 ~n:256 ~k:256 in
  show bg "MNK-UTS";
  print_endline
    "  unicast tensors have reuse 1.0x: every access is a fetch, which is\n\
    \  why Batched-GEMV and unicast MTTKRP dataflows are bandwidth-bound."

(* ------------------------------------------------------------------ *)
(* Tradeoff exploration: the "rich design space" claim of the abstract. *)

let tradeoffs () =
  section "Design-space tradeoffs: performance x power x area (GEMM, 16x16)";
  let gemm = Workloads.gemm ~m:256 ~n:256 ~k:256 in
  let evaluated = Explore.explore ~limit:19 gemm in
  Printf.printf "  %d designs evaluated with both models\n\n" (List.length evaluated);
  let fastest = Explore.best_performance evaluated in
  let greenest = Explore.best_efficiency evaluated in
  Format.printf "  fastest        : %a@." Explore.pp_evaluated fastest;
  Format.printf "  most efficient : %a@." Explore.pp_evaluated greenest;
  let front = Explore.pareto_perf_power evaluated in
  Format.printf "  perf/power Pareto frontier (%d designs):@."
    (List.length front);
  List.iter
    (fun e -> Format.printf "    %a@." Explore.pp_evaluated e)
    (List.sort
       (fun a b ->
         compare a.Explore.perf.Perf.cycles b.Explore.perf.Perf.cycles)
       front)

(* ------------------------------------------------------------------ *)
(* Ablation 3: netlist optimisation pass.                              *)

let ablation_rewrite () =
  section "Ablation: netlist constant-folding / simplification pass";
  Printf.printf "  %-12s %8s %8s %8s\n" "design" "cells" "opt" "removed";
  List.iter
    (fun name ->
      let stmt = Workloads.gemm ~m:4 ~n:4 ~k:4 in
      match Search.find_design stmt name with
      | None -> ()
      | Some d -> (
        let env = Exec.alloc_inputs stmt in
        match Accel.generate ~rows:8 ~cols:8 d env with
        | exception Accel.Unsupported _ -> ()
        | acc ->
        let before = acc.Accel.circuit in
        let after = Rewrite.circuit before in
        let cells c =
          let st = Circuit.stats c in
          st.Circuit.adders + st.Circuit.multipliers + st.Circuit.muxes
          + st.Circuit.logic_ops + st.Circuit.regs
        in
        Printf.printf "  %-12s %8d %8d %8d\n" name (cells before)
          (cells after)
          (Rewrite.count_removed ~before ~after)))
    [ "MNK-SST"; "MNK-STS"; "MNK-MTM"; "MNK-SSM" ];
  print_endline
    "  the generator emits lean netlists already; the pass mostly removes\n\
    \  boundary muxes against constant-zero neighbours."

(* ------------------------------------------------------------------ *)
(* Benchmark gate: machine-readable sim / DSE throughput.  Each section
   measures, prints a human-readable table, and (re)writes BENCH_sim.json
   with every fragment recorded so far, so `bench-sim`, `bench-dse` and
   `bench-quick` all leave a valid gate file behind.                    *)

let bench_fragments : (string * string) list ref = ref []

let record_fragment key json =
  bench_fragments := List.remove_assoc key !bench_fragments @ [ (key, json) ]

let write_bench_json () =
  let oc = open_out "BENCH_sim.json" in
  Printf.fprintf oc
    "{\n  \"schema\": \"tensorlib-bench-sim/2\",\n  \"domains\": %d%s\n}\n"
    (Par.n_domains ())
    (String.concat ""
       (List.map (fun (_, j) -> Printf.sprintf ",\n%s" j) !bench_fragments));
  close_out oc;
  print_endline "\n  (machine-readable results written to BENCH_sim.json)"

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* fresh, empty, uniquely named directory path (not yet created: the
   design store creates its own tree) *)
let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  path

let sim_case ~quick name stmt dname rows cols reps =
  let d = Search.find_design_exn stmt dname in
  let env = Exec.alloc_inputs stmt in
  let acc = Accel.generate ~rows ~cols d env in
  let reps = if quick then max 1 (reps / 10) else reps in
  (* steady-state: one sim per backend, each rep replays the full schedule
     from reset — compile cost (measured by generate-4x4-netlist) excluded *)
  let tape = Sim.create acc.Accel.circuit in
  let closure = Sim.create ~backend:`Closure acc.Accel.circuit in
  let n = acc.Accel.total_cycles + 1 in
  let run sim () =
    for _ = 1 to reps do
      Sim.reset sim;
      Sim.cycles sim n
    done
  in
  Sim.cycles tape n (* warm-up *);
  Sim.cycles closure n;
  let (), tape_s = wall (run tape) in
  let (), closure_s = wall (run closure) in
  let simulated = float_of_int ((acc.Accel.total_cycles + 1) * reps) in
  let tape_cps = simulated /. tape_s in
  let closure_cps = simulated /. closure_s in
  (* bit-sliced batch backend: one pass simulates [lanes] independent
     trials, so throughput is trials per second — the scalar tape's
     trials/s (one trial per pass) is the baseline *)
  let tape_tps = float_of_int reps /. tape_s in
  let batch_tps, packed_frac =
    List.fold_left
      (fun (acc_tps, _) lanes ->
        let sim = Sim.create ~backend:`Batch ~lanes acc.Accel.circuit in
        Sim.cycles sim n (* warm-up *);
        let (), s = wall (run sim) in
        let tps = float_of_int (reps * lanes) /. s in
        (acc_tps @ [ (lanes, tps) ], Sim.packed_fraction sim))
      ([], 0.0)
      [ 1; 8; Sim.max_lanes ]
  in
  let w62 = List.assoc Sim.max_lanes batch_tps in
  Printf.printf
    "  %-10s %5d cyc/run  tape %11.3e cyc/s  closure %11.3e cyc/s  %5.2fx\n"
    name (acc.Accel.total_cycles + 1) tape_cps closure_cps
    (tape_cps /. closure_cps);
  Printf.printf
    "  %-10s batched trials/s: tape %9.1f  w1 %9.1f  w8 %9.1f  w%d %9.1f  \
     (%5.2fx, packed %4.1f%%)\n"
    "" tape_tps
    (List.assoc 1 batch_tps)
    (List.assoc 8 batch_tps)
    Sim.max_lanes w62 (w62 /. tape_tps) (100. *. packed_frac);
  (name, acc.Accel.total_cycles + 1, reps, tape_cps, closure_cps, tape_tps,
   batch_tps, packed_frac)

let bench_sim ~quick () =
  section
    "Benchmark gate: netlist simulation throughput (tape vs closure vs \
     batch)";
  let cases =
    [ sim_case ~quick "gemm-4x4" (Workloads.gemm ~m:4 ~n:4 ~k:4) "MNK-SST" 4 4
        200;
      sim_case ~quick "gemm-8x8" (Workloads.gemm ~m:8 ~n:8 ~k:8) "MNK-SST" 8 8
        40 ]
  in
  record_fragment "sim"
    (Printf.sprintf "  \"sim\": {%s\n  }"
       (String.concat ","
          (List.map
             (fun (n, cyc, reps, t, c, tape_tps, batch_tps, packed) ->
               Printf.sprintf
                 "\n    \"%s\": {\"cycles_per_run\": %d, \"reps\": %d, \
                  \"tape_cycles_per_sec\": %.0f, \"closure_cycles_per_sec\": \
                  %.0f, \"speedup\": %.3f, \"tape_trials_per_sec\": %.1f, \
                  \"batch_trials_per_sec\": {%s}, \"batch_speedup_w62\": \
                  %.2f, \"packed_fraction\": %.3f}"
                 n cyc reps t c (t /. c) tape_tps
                 (String.concat ", "
                    (List.map
                       (fun (w, tps) -> Printf.sprintf "\"w%d\": %.1f" w tps)
                       batch_tps))
                 (List.assoc Sim.max_lanes batch_tps /. tape_tps)
                 packed)
             cases)));
  write_bench_json ()

let bench_dse ~quick () =
  section "Benchmark gate: DSE sweep wall-time (sequential vs Tl_par)";
  let pool = Par.n_domains () in
  let gemm = Workloads.gemm ~m:256 ~n:256 ~k:256 in
  let limit = if quick then 10 else 32 in
  ignore (Explore.explore ~limit:2 gemm) (* warm-up (candidate matrices) *);
  (* cold = evaluation caches emptied; warm = same sweep over a hot cache *)
  Par.Cache.clear_all ();
  Perf.reset_counters ();
  let r_cold, cold_s = wall (fun () -> Explore.explore ~limit ~domains:1 gemm) in
  let r_warm, warm_s = wall (fun () -> Explore.explore ~limit ~domains:1 gemm) in
  let explore_ok = List.length r_cold = List.length r_warm in
  Printf.printf
    "  explore (GEMM, limit=%d):    cold %7.3fs   warm %7.3fs   %5.2fx%s\n"
    limit cold_s warm_s (cold_s /. warm_s)
    (if explore_ok then "" else "  [MISMATCH]");
  (* a sequential-vs-parallel race on a one-domain pool measures nothing
     but scheduling overhead: record it as skipped rather than a ~1x
     "speedup" *)
  let par_race =
    if pool <= 1 then None
    else begin
      Par.Cache.clear_all ();
      let r_par, par_s = wall (fun () -> Explore.explore ~limit gemm) in
      Some (List.length r_par = List.length r_cold, par_s)
    end
  in
  (match par_race with
   | Some (ok, par_s) ->
     Printf.printf
       "  explore seq-vs-par:          cold %7.3fs   par  %7.3fs   %5.2fx%s\n"
       cold_s par_s (cold_s /. par_s)
       (if ok then "" else "  [MISMATCH]")
   | None ->
     Printf.printf "  explore seq-vs-par:          skipped (pool width 1)\n");
  let dw = Workloads.depthwise_conv ~k:256 ~y:28 ~x:28 ~p:3 ~q:3 in
  let e_seq, es = wall (fun () -> Enumerate.design_space ~domains:1 dw) in
  let points = List.length e_seq in
  let pts_per_sec = float_of_int points /. es in
  let enum_par =
    if pool <= 1 then None
    else begin
      let e_par, ep = wall (fun () -> Enumerate.design_space dw) in
      Some
        (List.map (fun p -> p.Enumerate.signature) e_seq
         = List.map (fun p -> p.Enumerate.signature) e_par,
         ep)
    end
  in
  (match enum_par with
   | Some (ok, ep) ->
     Printf.printf
       "  enumerate (Depthwise, %4d): seq %7.3fs   par %7.3fs   %5.2fx%s\n"
       points es ep (es /. ep)
       (if ok then "" else "  [MISMATCH]")
   | None ->
     Printf.printf
       "  enumerate (Depthwise, %4d): seq %7.3fs   par skipped (pool width \
        1)\n"
       points es);
  Printf.printf "  DSE throughput: %.0f points/s\n" pts_per_sec;
  let counters_json =
    String.concat ", "
      (List.map
         (fun (k, v) -> Printf.sprintf "\"%s\": %d" k v)
         (Perf.counters ()))
  in
  let caches_json =
    String.concat ", "
      (List.map
         (fun s ->
           let total = s.Par.Cache.hits + s.Par.Cache.misses in
           Printf.sprintf
             "\"%s\": {\"hits\": %d, \"misses\": %d, \"hit_rate\": %.3f, \
              \"entries\": %d, \"evictions\": %d}"
             s.Par.Cache.name s.Par.Cache.hits s.Par.Cache.misses
             (if total = 0 then 0.
              else float_of_int s.Par.Cache.hits /. float_of_int total)
             s.Par.Cache.entries s.Par.Cache.evictions)
         (Par.Cache.all_stats ()))
  in
  let opt_race = function
    | Some (_, s) -> Printf.sprintf "%.4f" s
    | None -> "null"
  in
  let race_ok = function Some (ok, _) -> ok | None -> true in
  record_fragment "dse"
    (Printf.sprintf
       "  \"dse\": {\n    \"pool_width\": %d, \"seq_vs_par\": \"%s\",\n    \
        \"explore_limit\": %d, \"explore_seq_s\": %.4f, \"explore_warm_s\": \
        %.4f, \"explore_cache_speedup\": %.3f, \"explore_par_s\": %s,\n    \
        \"enumerate_points\": %d, \"enumerate_seq_s\": %.4f, \
        \"enumerate_par_s\": %s, \"points_per_sec\": %.1f,\n    \
        \"counters\": {%s},\n    \"caches\": {%s},\n    \"deterministic\": \
        %b\n  }"
       pool
       (if pool <= 1 then "skipped (pool width 1)" else "measured")
       limit cold_s warm_s (cold_s /. warm_s) (opt_race par_race) points es
       (opt_race enum_par) pts_per_sec counters_json caches_json
       (explore_ok && race_ok par_race && race_ok enum_par));
  write_bench_json ();
  (* ---- whole-network sweep through the persistent design store ---- *)
  let net = if quick then "tiny" else "resnet18" in
  let root = temp_dir "tlstore" in
  let store = Store.open_store ~root () in
  let layers = List.assoc net (Network.networks ()) in
  let r_cold, net_cold_s =
    wall (fun () -> Network.sweep ~store ~name:net layers)
  in
  (* warm must be served by the store alone, not the in-memory memos *)
  Par.Cache.clear_all ();
  let r_warm, net_warm_s =
    wall (fun () -> Network.sweep ~store ~name:net layers)
  in
  let frontiers (r : Network.report) =
    List.map (fun l -> l.Network.l_frontier) r.Network.r_layers
  in
  let identical =
    r_cold.Network.r_digest = r_warm.Network.r_digest
    && frontiers r_cold = frontiers r_warm
  in
  Printf.printf
    "  network sweep (%s, %d layers, %d shapes, %d points):\n\
    \    cold %7.3fs   warm %7.3fs   %5.1fx   hit rate %.0f%%%s\n"
    net
    (List.length r_cold.Network.r_layers)
    r_cold.Network.r_unique_shapes r_cold.Network.r_points net_cold_s
    net_warm_s
    (net_cold_s /. net_warm_s)
    (100. *. r_warm.Network.r_hit_rate)
    (if identical then "" else "  [MISMATCH]");
  (* fresh process against the same persisted store: the whole point of
     the on-disk format is that a new process starts warm *)
  let cli =
    Filename.concat (Sys.getcwd ()) "_build/default/bin/tensorlib_cli.exe"
  in
  let fresh =
    if not (Sys.file_exists cli) then None
    else begin
      let out = Filename.temp_file "tlsweep" ".json" in
      let cmd =
        Printf.sprintf "%s sweep --network %s --store %s --json > %s"
          (Filename.quote cli) net (Filename.quote root) (Filename.quote out)
      in
      let rc, fresh_s = wall (fun () -> Sys.command cmd) in
      let parsed =
        if rc <> 0 then None
        else
          let ic = open_in out in
          let n = in_channel_length ic in
          let content = really_input_string ic n in
          close_in ic;
          match Json.parse (String.trim content) with
          | Error _ -> None
          | Ok j ->
            Some
              ( Option.value (Json.mem_string j "digest") ~default:"",
                Option.value (Json.mem_number j "hit_rate") ~default:0. )
      in
      Sys.remove out;
      match parsed with
      | None -> None
      | Some (digest, hit_rate) ->
        Some (fresh_s, digest = r_cold.Network.r_digest, hit_rate)
    end
  in
  (match fresh with
   | Some (fresh_s, same, hit_rate) ->
     Printf.printf
       "  fresh-process warm sweep:    %7.3fs   %5.1fx   hit rate %.0f%%%s\n"
       fresh_s
       (net_cold_s /. fresh_s)
       (100. *. hit_rate)
       (if same then "" else "  [MISMATCH]")
   | None ->
     Printf.printf
       "  fresh-process warm sweep:    skipped (CLI binary not built)\n");
  let st = Store.stats store in
  let fresh_json =
    match fresh with
    | None -> "null"
    | Some (fresh_s, same, hit_rate) ->
      Printf.sprintf
        "{\"warm_s\": %.4f, \"speedup\": %.2f, \"hit_rate\": %.3f, \
         \"identical\": %b}"
        fresh_s (net_cold_s /. fresh_s) hit_rate same
  in
  let network_json =
    Printf.sprintf
      "  \"network\": {\n    \"name\": \"%s\", \"layers\": %d, \
       \"unique_shapes\": %d, \"points\": %d,\n    \"cold_s\": %.4f, \
       \"warm_s\": %.4f, \"store_speedup\": %.2f,\n    \"warm_hit_rate\": \
       %.3f, \"identical\": %b, \"digest\": \"%s\",\n    \"fresh_process\": \
       %s,\n    \"store\": {\"hits\": %d, \"misses\": %d, \"entries\": %d, \
       \"evictions\": %d}\n  }"
      net
      (List.length r_cold.Network.r_layers)
      r_cold.Network.r_unique_shapes r_cold.Network.r_points net_cold_s
      net_warm_s
      (net_cold_s /. net_warm_s)
      r_warm.Network.r_hit_rate identical r_cold.Network.r_digest fresh_json
      st.Par.Cache.hits st.Par.Cache.misses st.Par.Cache.entries
      st.Par.Cache.evictions
  in
  let dse_json =
    match List.assoc_opt "dse" !bench_fragments with
    | Some j -> j
    | None -> "  \"dse\": null"
  in
  let oc = open_out "BENCH_dse.json" in
  Printf.fprintf oc
    "{\n  \"schema\": \"tensorlib-bench-dse/1\",\n  \"domains\": %d,\n\
     %s,\n%s\n}\n"
    (Par.n_domains ()) dse_json network_json;
  close_out oc;
  print_endline "  (machine-readable results written to BENCH_dse.json)"

let bench_quick () =
  bench_sim ~quick:true ();
  bench_dse ~quick:true ()

(* ------------------------------------------------------------------ *)
(* Store gate: sweep a small network twice through a fresh persistent
   store using fresh CLI processes; the second run must be served
   entirely from disk, at least 5x faster and bit-identical.  Then
   deliberately truncate one entry: the third run must still succeed
   (corruption degrades to a miss) with an unchanged digest.  Exit 1 on
   any violated property — small enough for a pre-commit hook.          *)

let store_smoke () =
  section "Store gate: persistent design store (cold/warm/corrupt)";
  let cli =
    Filename.concat (Sys.getcwd ()) "_build/default/bin/tensorlib_cli.exe"
  in
  if not (Sys.file_exists cli) then begin
    Printf.eprintf "store-smoke: CLI binary not built (%s)\n" cli;
    exit 1
  end;
  let root = temp_dir "tlstore" in
  let run_sweep () =
    let out = Filename.temp_file "tlsweep" ".json" in
    let cmd =
      Printf.sprintf "%s sweep --network tiny --store %s --json > %s"
        (Filename.quote cli) (Filename.quote root) (Filename.quote out)
    in
    let rc, secs = wall (fun () -> Sys.command cmd) in
    if rc <> 0 then begin
      Printf.eprintf "store-smoke: sweep exited %d\n" rc;
      exit 1
    end;
    let ic = open_in out in
    let content = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove out;
    match Json.parse (String.trim content) with
    | Error msg ->
      Printf.eprintf "store-smoke: bad sweep JSON: %s\n" msg;
      exit 1
    | Ok j ->
      let digest = Option.value (Json.mem_string j "digest") ~default:"" in
      let hit_rate = Option.value (Json.mem_number j "hit_rate") ~default:0. in
      (secs, digest, hit_rate)
  in
  let failures = ref 0 in
  let check name ok =
    Printf.printf "  %-42s %s\n" name (if ok then "PASS" else "FAIL");
    if not ok then incr failures
  in
  let cold_s, cold_digest, cold_rate = run_sweep () in
  let warm_s, warm_digest, warm_rate = run_sweep () in
  Printf.printf "  cold %.3fs (hit rate %.0f%%)  warm %.3fs (hit rate \
                 %.0f%%)  %.1fx\n"
    cold_s (100. *. cold_rate) warm_s (100. *. warm_rate) (cold_s /. warm_s);
  check "warm run served entirely from the store" (warm_rate = 1.0);
  check "warm run at least 5x faster than cold" (cold_s >= 5. *. warm_s);
  check "warm results bit-identical to cold" (warm_digest = cold_digest);
  (* corruption tolerance: truncate one entry file to half its length *)
  let entries = Filename.concat root "entries" in
  (match Sys.readdir entries with
   | [||] ->
     check "store has persisted entries" false
   | names ->
     let victim = Filename.concat entries names.(0) in
     let ic = open_in_bin victim in
     let content = really_input_string ic (in_channel_length ic) in
     close_in ic;
     let oc = open_out_bin victim in
     output_string oc (String.sub content 0 (String.length content / 2));
     close_out oc);
  let _, corrupt_digest, corrupt_rate = run_sweep () in
  check "truncated entry degrades to a miss" (corrupt_rate < 1.0);
  check "sweep over corrupt store still bit-identical"
    (corrupt_digest = cold_digest);
  let _, healed_digest, healed_rate = run_sweep () in
  check "recomputed entry re-persisted (store healed)"
    (healed_rate = 1.0 && healed_digest = cold_digest);
  if !failures > 0 then begin
    Printf.printf "store-smoke: %d check(s) FAILED\n" !failures;
    exit 1
  end;
  print_endline "store-smoke: OK"

(* ------------------------------------------------------------------ *)
(* Chaos gate: a seeded software-fault campaign over every probe site —
   store I/O (short/torn writes, injected Sys_error, corrupt payloads),
   Tl_par tasks (kills, delays), and the serve loop's stdin (oversized
   lines, mid-line EOF).  Asserts >= 200 injected faults, zero process
   crashes, every store fault degrading to a miss (never wrong bytes),
   and an interrupted-then-resumed tiny sweep whose digest is
   bit-identical to an uninterrupted run at pool widths 1 and 3.        *)

let chaos_smoke () =
  section "Chaos gate: seeded software-fault campaign (store/pool/serve)";
  let failures = ref 0 in
  let check name ok =
    Printf.printf "  %-52s %s\n" name (if ok then "PASS" else "FAIL");
    if not ok then incr failures
  in
  Resil.Chaos.reset_injected ();
  (* fast retries: deterministic backoff, no wall-clock sleeping *)
  let retry = { Resil.Retry.default with sleep = ignore } in

  (* -- store campaign: puts and finds under heavy I/O weather -------- *)
  let root = temp_dir "tlchaos" in
  let store = Store.open_store ~retry ~root () in
  let payload i = Printf.sprintf "payload-%d-%s" i (String.make 64 'x') in
  Resil.Chaos.arm
    {
      Resil.Chaos.seed = 42;
      rate = 0.7;
      sites =
        [ ("store.write",
           [ Resil.Chaos.Fail "disk weather";
             Resil.Chaos.Truncate 0.5;
             Resil.Chaos.Corrupt ]);
          ("store.read", [ Resil.Chaos.Fail "read weather" ]) ];
    };
  let puts = 150 in
  let exact = ref 0 and missed = ref 0 and wrong = ref 0 in
  for i = 0 to puts - 1 do
    let key = Printf.sprintf "chaos-key-%d" i in
    Store.put store key (payload i);
    match Store.find store key with
    | None -> incr missed
    | Some p when p = payload i -> incr exact
    | Some _ -> incr wrong
  done;
  Resil.Chaos.disarm ();
  Printf.printf "  store campaign: %d puts  %d exact  %d missed  %d wrong\n"
    puts !exact !missed !wrong;
  check "every store fault degraded to a miss (no wrong bytes)" (!wrong = 0);
  check "chaos actually perturbed the store campaign" (!missed > 0);
  let degraded_reads, dropped_writes = Store.io_failures store in
  Printf.printf "  io_failures: %d degraded reads  %d dropped writes\n"
    degraded_reads dropped_writes;
  (* clear weather: the same store must work again *)
  Store.put store "post-chaos" "sunny";
  check "store serves normally once disarmed"
    (Store.find store "post-chaos" = Some "sunny");

  (* -- torn write at every byte offset ------------------------------ *)
  let root2 = temp_dir "tltorn" in
  let store2 = Store.open_store ~root:root2 () in
  Store.put store2 "torn" "torn-entry-payload-0123456789";
  let entries2 = Filename.concat root2 "entries" in
  let victim =
    match Sys.readdir entries2 with
    | [||] -> failwith "chaos-smoke: no entry persisted"
    | names -> Filename.concat entries2 names.(0)
  in
  let ic = open_in_bin victim in
  let full = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let torn_ok = ref true in
  for cut = 0 to String.length full - 1 do
    let oc = open_out_bin victim in
    output_string oc (String.sub full 0 cut);
    close_out oc;
    (* fresh handle: no index state, straight to the torn file *)
    let probe_store = Store.open_store ~root:root2 () in
    match Store.find probe_store "torn" with
    | None -> ()
    | Some _ -> torn_ok := false
  done;
  let oc = open_out_bin victim in
  output_string oc full;
  close_out oc;
  check
    (Printf.sprintf "torn entry degrades to a miss at all %d offsets"
       (String.length full))
    !torn_ok;
  check "restored entry serves again"
    (Store.find (Store.open_store ~root:root2 ()) "torn"
     = Some "torn-entry-payload-0123456789");

  (* -- pool campaign: kills and delays, width-independent ----------- *)
  let items = List.init 100 Fun.id in
  let pattern_at width =
    Resil.Chaos.arm
      {
        Resil.Chaos.seed = 7;
        rate = 0.3;
        sites =
          [ ("par:chaos-par",
             [ Resil.Chaos.Fail "killed"; Resil.Chaos.Delay 5000 ]) ];
      };
    let r =
      Par.try_map ~domains:width ~label:"chaos-par"
        (fun i -> i * i)
        items
    in
    Resil.Chaos.disarm ();
    List.map (function Ok v -> Printf.sprintf "ok:%d" v | Error _ -> "err") r
  in
  let p1 = pattern_at 1 in
  let p3 = pattern_at 3 in
  let p8 = pattern_at 8 in
  check "pool Ok/Error pattern identical at widths 1/3/8"
    (p1 = p3 && p3 = p8);
  check "pool campaign injected both kills and survivals"
    (List.exists (( = ) "err") p1 && List.exists (( <> ) "err") p1);
  (* delays only: map must keep its ordering contract *)
  Resil.Chaos.arm
    {
      Resil.Chaos.seed = 11;
      rate = 0.5;
      sites = [ ("par:chaos-ord", [ Resil.Chaos.Delay 20000 ]) ];
    };
  let ordered =
    Par.map ~domains:8 ~label:"chaos-ord" (fun i -> 2 * i) items
  in
  Resil.Chaos.disarm ();
  check "injected delays never reorder pool results"
    (ordered = List.map (fun i -> 2 * i) items);

  (* -- serve under hostile stdin (subprocess) ------------------------ *)
  let cli =
    Filename.concat (Sys.getcwd ()) "_build/default/bin/tensorlib_cli.exe"
  in
  if not (Sys.file_exists cli) then begin
    Printf.eprintf "chaos-smoke: CLI binary not built (%s)\n" cli;
    exit 1
  end;
  let serve_root = temp_dir "tlserve" in
  let infile = Filename.temp_file "tlserve" ".in" in
  let outfile = Filename.temp_file "tlserve" ".out" in
  let errfile = Filename.temp_file "tlserve" ".err" in
  let oc = open_out infile in
  output_string oc "{\"id\": 1, \"network\": \"tiny\"}\n";
  output_string oc (String.make 4096 'z' ^ "\n") (* oversized *);
  output_string oc "this is not json\n";
  output_string oc "{\"id\": 2, \"expr\": \"bogus\"}\n";
  output_string oc "\n" (* blank: ignored *);
  output_string oc "{\"id\": 3, \"network\": \"tiny\"}" (* mid-line EOF *);
  close_out oc;
  let rc =
    Sys.command
      (Printf.sprintf "%s serve --store %s --max-request-bytes 1024 < %s > %s 2> %s"
         (Filename.quote cli) (Filename.quote serve_root)
         (Filename.quote infile) (Filename.quote outfile)
         (Filename.quote errfile))
  in
  check "serve exits 0 after oversized/malformed/mid-line-EOF input"
    (rc = 0);
  let read_all path =
    let ic = open_in path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let responses =
    String.split_on_char '\n' (read_all outfile)
    |> List.filter (fun l -> String.trim l <> "")
  in
  let parsed = List.map (fun l -> Json.parse l) responses in
  check "serve answered every non-blank request with JSON"
    (List.length responses = 5
     && List.for_all (function Ok _ -> true | Error _ -> false) parsed);
  let ok_of = function
    | Ok j -> (match Json.member "ok" j with Some (Json.Bool b) -> b | _ -> false)
    | Error _ -> false
  in
  check "hostile lines got structured errors, real requests succeeded"
    (List.map ok_of parsed = [ true; false; false; false; true ]);
  let errlog = read_all errfile in
  let contains_shutdown =
    let needle = "serve: shutdown after" in
    let n = String.length needle in
    let rec go i =
      i + n <= String.length errlog
      && (String.sub errlog i n = needle || go (i + 1))
    in
    go 0
  in
  check "serve printed the final stats line on stderr" contains_shutdown;
  List.iter Sys.remove [ infile; outfile; errfile ];

  (* -- interrupted-then-resumed sweep, digest-identical -------------- *)
  let layers = List.assoc "tiny" (Network.networks ()) in
  (* pick a seed whose par:network-sweep plan kills exactly shape 0:
     injections key on the task index, so the choice holds at any
     pool width *)
  let kill_rate = 0.5 in
  let seed =
    let fires s k =
      Resil.Chaos.would_fire ~seed:s ~rate:kill_rate ~site:"par:network-sweep"
        ~key:k
    in
    let rec go s =
      if s > 100_000 then failwith "chaos-smoke: no suitable seed"
      else if fires s 0 && not (fires s 1) && not (fires s 2) then s
      else go (s + 1)
    in
    go 0
  in
  let sweep_digest ~width ~root ~resume =
    let store = Store.open_store ~root () in
    let ckpt = Filename.concat root "sweep-tiny.ckpt" in
    let r =
      Network.sweep ~domains:width ~checkpoint:ckpt ~resume ~store ~name:"tiny"
        layers
    in
    r
  in
  List.iter
    (fun width ->
      let cold_root = temp_dir "tlcold" in
      let cold = sweep_digest ~width ~root:cold_root ~resume:false in
      let int_root = temp_dir "tlint" in
      Resil.Chaos.arm
        {
          Resil.Chaos.seed;
          rate = kill_rate;
          sites = [ ("par:network-sweep", [ Resil.Chaos.Fail "interrupted" ]) ];
        };
      let interrupted = sweep_digest ~width ~root:int_root ~resume:false in
      Resil.Chaos.disarm ();
      check
        (Printf.sprintf "width %d: injected kill degrades the sweep" width)
        ((not interrupted.Network.r_complete)
         && interrupted.Network.r_degraded_shapes = 1);
      check
        (Printf.sprintf "width %d: interrupted sweep left a checkpoint" width)
        (Sys.file_exists (Filename.concat int_root "sweep-tiny.ckpt"));
      let resumed = sweep_digest ~width ~root:int_root ~resume:true in
      check
        (Printf.sprintf
           "width %d: resumed digest bit-identical to uninterrupted" width)
        (resumed.Network.r_complete
         && resumed.Network.r_digest = cold.Network.r_digest
         && resumed.Network.r_resumed_shapes = 2);
      check
        (Printf.sprintf "width %d: completed checkpoint removed" width)
        (not (Sys.file_exists (Filename.concat int_root "sweep-tiny.ckpt"))))
    [ 1; 3 ];

  let injected = Resil.Chaos.injected () in
  Printf.printf "  total injected software faults: %d\n" injected;
  check "campaign injected at least 200 software faults" (injected >= 200);
  if !failures > 0 then begin
    Printf.printf "chaos-smoke: %d check(s) FAILED\n" !failures;
    exit 1
  end;
  print_endline "chaos-smoke: OK"

(* ------------------------------------------------------------------ *)
(* Benchmark gate: resilience overheads.  Measures what the software
   armour costs and buys — retry counts under injected read weather,
   the latency of a budget-degraded partial sweep vs a full one, and
   the resume-from-checkpoint speedup vs a cold sweep — and writes
   BENCH_resil.json (schema tensorlib-bench-resil/1).                   *)

let bench_resil () =
  section "Benchmark gate: resilience (retries, partial latency, resume)";
  Resil.Chaos.reset_injected ();
  Resil.Retry.reset_counters ();
  (* retry economics under seeded read weather *)
  let retry = { Resil.Retry.default with sleep = ignore } in
  let root = temp_dir "tlresil" in
  let store = Store.open_store ~retry ~root () in
  let n_keys = 200 in
  for i = 0 to n_keys - 1 do
    Store.put store (Printf.sprintf "k%d" i) (Printf.sprintf "v%d" i)
  done;
  Resil.Chaos.arm
    {
      Resil.Chaos.seed = 5;
      rate = 0.4;
      sites = [ ("store.read", [ Resil.Chaos.Fail "weather" ]) ];
    };
  let healed = ref 0 and missed = ref 0 in
  for i = 0 to n_keys - 1 do
    match Store.find store (Printf.sprintf "k%d" i) with
    | Some _ -> incr healed
    | None -> incr missed
  done;
  Resil.Chaos.disarm ();
  let retries = Resil.Retry.retries () in
  let giveups = Resil.Retry.giveups () in
  let degraded_reads, dropped_writes = Store.io_failures store in
  Printf.printf
    "  read weather (rate 0.4, %d reads): %d healed  %d missed  %d retries  \
     %d giveups\n"
    n_keys !healed !missed retries giveups;
  if !healed + !missed <> n_keys then failwith "bench-resil: lost reads";
  if !healed = 0 then failwith "bench-resil: retries never healed a read";

  (* partial-result latency: a hard budget answers fast with estimates *)
  let layers = List.assoc "tiny" (Network.networks ()) in
  let cold_root = temp_dir "tlresilc" in
  let cold, cold_s =
    wall (fun () ->
        Network.sweep ~store:(Store.open_store ~root:cold_root ())
          ~name:"tiny" layers)
  in
  let partial_root = temp_dir "tlresilp" in
  let partial, partial_s =
    wall (fun () ->
        Network.sweep
          ~budget:(Resil.Budget.of_checks 1000)
          ~store:(Store.open_store ~root:partial_root ())
          ~name:"tiny" layers)
  in
  Printf.printf
    "  full sweep %.3fs  budget-degraded %.3fs (%.0fx faster, %d/%d shapes \
     estimated)\n"
    cold_s partial_s (cold_s /. partial_s) partial.Network.r_degraded_shapes
    partial.Network.r_unique_shapes;
  if partial.Network.r_complete then
    failwith "bench-resil: budget failed to degrade the sweep";

  (* resume-vs-cold: interrupt by killing shape 0, then resume *)
  let kill_rate = 0.5 in
  let fires s k =
    Resil.Chaos.would_fire ~seed:s ~rate:kill_rate ~site:"par:network-sweep"
      ~key:k
  in
  let rec find_seed s =
    if s > 100_000 then failwith "bench-resil: no suitable seed"
    else if fires s 0 && not (fires s 1) && not (fires s 2) then s
    else find_seed (s + 1)
  in
  let seed = find_seed 0 in
  let int_root = temp_dir "tlresili" in
  let int_store = Store.open_store ~root:int_root () in
  let ckpt = Filename.concat int_root "sweep-tiny.ckpt" in
  Resil.Chaos.arm
    {
      Resil.Chaos.seed;
      rate = kill_rate;
      sites = [ ("par:network-sweep", [ Resil.Chaos.Fail "interrupted" ]) ];
    };
  let _interrupted =
    Network.sweep ~checkpoint:ckpt ~store:int_store ~name:"tiny" layers
  in
  Resil.Chaos.disarm ();
  let resumed, resume_s =
    wall (fun () ->
        Network.sweep ~checkpoint:ckpt ~resume:true ~store:int_store
          ~name:"tiny" layers)
  in
  let digest_identical = resumed.Network.r_digest = cold.Network.r_digest in
  Printf.printf
    "  cold sweep %.3fs  resumed %.3fs (%.1fx, %d shapes from checkpoint, \
     digest %s)\n"
    cold_s resume_s (cold_s /. resume_s) resumed.Network.r_resumed_shapes
    (if digest_identical then "identical" else "DIVERGED");
  if not digest_identical then
    failwith "bench-resil: resumed digest diverged from cold";
  let oc = open_out "BENCH_resil.json" in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"tensorlib-bench-resil/1\",\n\
    \  \"domains\": %d,\n\
    \  \"retry\": {\"reads\": %d, \"healed\": %d, \"missed\": %d, \
     \"retries\": %d, \"giveups\": %d, \"degraded_reads\": %d, \
     \"dropped_writes\": %d},\n\
    \  \"partial\": {\"cold_s\": %.4f, \"partial_s\": %.4f, \
     \"speedup\": %.2f, \"degraded_shapes\": %d, \"unique_shapes\": %d},\n\
    \  \"resume\": {\"cold_s\": %.4f, \"resume_s\": %.4f, \
     \"speedup\": %.2f, \"resumed_shapes\": %d, \"digest_identical\": %b},\n\
    \  \"injected_faults\": %d\n\
     }\n"
    (Par.n_domains ()) n_keys !healed !missed retries giveups degraded_reads
    dropped_writes cold_s partial_s (cold_s /. partial_s)
    partial.Network.r_degraded_shapes partial.Network.r_unique_shapes cold_s
    resume_s (cold_s /. resume_s) resumed.Network.r_resumed_shapes
    digest_identical
    (Resil.Chaos.injected ());
  close_out oc;
  ignore cold.Network.r_complete;
  print_endline "\n  (machine-readable results written to BENCH_resil.json)"

(* ------------------------------------------------------------------ *)
(* Benchmark gate: fault-injection campaign.  Baseline 4x4 GEMM vs the
   fully hardened (TMR + parity + ABFT) variant of the same dataflow,
   each under a 1000-trial seeded campaign; writes BENCH_fault.json with
   outcome counts, SDC rates and the ASIC-model hardening overhead.
   A second, throughput-sized campaign (8x8 GEMM, 10000 trials — the
   same paper-scale design bench-sim headlines) runs the identical fault
   plan on the scalar tape and on the bit-sliced backend to measure the
   batch wall-clock speedup at full lane width.                         *)

let bench_fault () =
  section "Benchmark gate: fault campaigns (baseline vs TMR+parity+ABFT)";
  let trials = 1000 in
  let stmt = Workloads.gemm ~m:4 ~n:4 ~k:4 in
  let design = Search.find_design_exn stmt "MNK-SST" in
  let env = Exec.alloc_inputs stmt in
  let base = Accel.generate ~rows:4 ~cols:4 design env in
  let config = { Campaign.default_config with trials } in
  let base_rep, base_s = wall (fun () -> Campaign.run ~config base) in
  let stmt_a, env_a =
    match Abft.augment stmt env with
    | Some x -> x
    | None -> failwith "GEMM must be ABFT-supported"
  in
  let design_a = Search.find_design_exn stmt_a "MNK-SST" in
  let plain_a = Accel.generate ~rows:5 ~cols:5 design_a env_a in
  let hard =
    Accel.generate ~rows:5 ~cols:5 ~harden:Harden.full design_a env_a
  in
  let hconfig = { config with abft = true } in
  let hard_rep, hard_s = wall (fun () -> Campaign.run ~config:hconfig hard) in
  (* throughput campaign: one fault plan, both backends.  62 trials per
     tape pass on the batch side; outcomes must be trial-for-trial
     identical to the scalar run *)
  let perf_trials = 10000 in
  let stmt8 = Workloads.gemm ~m:8 ~n:8 ~k:8 in
  let design8 = Search.find_design_exn stmt8 "MNK-SST" in
  let acc8 = Accel.generate ~rows:8 ~cols:8 design8 (Exec.alloc_inputs stmt8) in
  let pconfig = { Campaign.default_config with trials = perf_trials } in
  let tape_rep, tape_s = wall (fun () -> Campaign.run ~config:pconfig acc8) in
  let batch_rep, batch_s =
    wall (fun () ->
        Campaign.run ~config:{ pconfig with backend = `Batch } acc8)
  in
  let trial_sig (t : Campaign.trial) =
    (Fault.fault_label t.Campaign.fault,
     Campaign.outcome_label t.Campaign.outcome)
  in
  if
    List.map trial_sig batch_rep.Campaign.results
    <> List.map trial_sig tape_rep.Campaign.results
  then failwith "batch campaign diverged from the scalar tape";
  let show tag (r : Campaign.report) s =
    Printf.printf
      "  %-9s %-10s trials=%d masked=%d detected=%d hang=%d sdc=%d  \
       (SDC %.4f)  %.2fs\n"
      tag r.Campaign.hardening r.Campaign.trials r.Campaign.masked
      r.Campaign.detected r.Campaign.hang r.Campaign.sdc r.Campaign.sdc_rate
      s
  in
  show "baseline" base_rep base_s;
  show "tape-8x8" tape_rep tape_s;
  show "batch-8x8" batch_rep batch_s;
  Printf.printf "  batch backend: %.2fx faster than the scalar tape\n"
    (tape_s /. batch_s);
  show "hardened" hard_rep hard_s;
  let unclassified (r : Campaign.report) =
    r.Campaign.trials
    - (r.Campaign.masked + r.Campaign.sdc + r.Campaign.detected
       + r.Campaign.hang)
  in
  if unclassified base_rep <> 0 || unclassified hard_rep <> 0 then
    failwith "fault campaign left unclassified trials";
  let cb = Asic.evaluate_netlist base.Accel.circuit in
  let ca = Asic.evaluate_netlist plain_a.Accel.circuit in
  let ch = Asic.evaluate_netlist hard.Accel.circuit in
  let pct f b = 100. *. (f -. b) /. b in
  let tmr_area = pct ch.Asic.area ca.Asic.area in
  let tmr_power = pct ch.Asic.power_mw ca.Asic.power_mw in
  let abft_area = pct ca.Asic.area cb.Asic.area in
  let abft_cycles =
    pct
      (float_of_int hard.Accel.total_cycles)
      (float_of_int base.Accel.total_cycles)
  in
  Printf.printf
    "  TMR+parity overhead (same array):  area %+.2f%%  power %+.2f%%\n"
    tmr_area tmr_power;
  Printf.printf
    "  ABFT problem overhead (5x5 array): area %+.2f%%  cycles %+.2f%%\n"
    abft_area abft_cycles;
  let oc = open_out "BENCH_fault.json" in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"tensorlib-bench-fault/1\",\n\
    \  \"domains\": %d,\n\
    \  \"baseline\": %s,\n\
    \  \"hardened\": %s,\n\
    \  \"overhead\": {\"tmr_parity_area_pct\": %.2f, \
     \"tmr_parity_power_pct\": %.2f, \"abft_area_pct\": %.2f, \
     \"abft_cycles_pct\": %.2f},\n\
    \  \"wall_s\": {\"baseline\": %.3f, \"hardened\": %.3f, \
     \"campaign_8x8_tape\": %.3f, \"campaign_8x8_batch\": %.3f},\n\
    \  \"batch_trials\": %d,\n\
    \  \"batch_speedup\": %.3f\n\
     }\n"
    (Par.n_domains ())
    (Campaign.to_json base_rep)
    (Campaign.to_json hard_rep)
    tmr_area tmr_power abft_area abft_cycles base_s hard_s tape_s batch_s
    perf_trials
    (tape_s /. batch_s);
  close_out oc;
  print_endline "\n  (machine-readable results written to BENCH_fault.json)"

(* ------------------------------------------------------------------ *)
(* Fast batch-backend gate: lane-differential correctness plus a quick
   throughput sanity check, small enough for a pre-commit hook.  Exits
   non-zero (via [failwith]) on any lane divergence.                    *)

let batch_smoke () =
  section "Batch backend smoke: lane differential + throughput sanity";
  let stmt = Workloads.gemm ~m:4 ~n:4 ~k:4 in
  let design = Search.find_design_exn stmt "MNK-SST" in
  let env = Exec.alloc_inputs stmt in
  let acc = Accel.generate ~rows:4 ~cols:4 design env in
  (* every lane of a full-width broadcast run must match the golden *)
  let envs =
    List.init Sim.max_lanes (fun k -> Exec.alloc_inputs ~seed:(k + 1) stmt)
  in
  let outs, batch_s = wall (fun () -> Accel.execute_batch acc envs) in
  List.iteri
    (fun lane (env, out) ->
      if not (Dense.equal (Exec.run stmt env) out) then
        failwith (Printf.sprintf "batch-smoke: lane %d diverged" lane))
    (List.combine envs outs);
  let _, scalar_s =
    wall (fun () -> List.map (fun env -> Accel.execute_with acc env) envs)
  in
  (* a 150-trial stuck-at campaign exercises per-lane forces *)
  let config =
    { Campaign.default_config with
      trials = 150;
      kinds = [ Fault.Stuck_at ];
      backend = `Batch }
  in
  let golden = Accel.execute acc in
  let rb = Campaign.run ~config ~golden acc in
  let rt = Campaign.run ~config:{ config with backend = `Tape } ~golden acc in
  let sig_of (t : Campaign.trial) =
    (Fault.fault_label t.Campaign.fault,
     Campaign.outcome_label t.Campaign.outcome)
  in
  if
    List.map sig_of rb.Campaign.results <> List.map sig_of rt.Campaign.results
  then failwith "batch-smoke: campaign outcomes diverged from the tape";
  Printf.printf
    "  %d lanes vs golden: PASS   stuck-at campaign vs tape: PASS\n"
    Sim.max_lanes;
  Printf.printf
    "  execute_batch %d envs: %.3fs  scalar execute_with x%d: %.3fs  \
     (%.1fx)\n"
    Sim.max_lanes batch_s Sim.max_lanes scalar_s (scalar_s /. batch_s)

(* ------------------------------------------------------------------ *)
(* Benchmark gate: observability.  Counter-vs-model validation and the
   assumed-vs-measured power comparison over the four tier-1 workloads,
   plus a traced DSE sweep and fault campaign with the Tl_par pool
   observer installed; writes BENCH_obs.json and TRACE_obs.json.        *)

let bench_obs () =
  section "Benchmark gate: observability (counters vs model, traced pools)";
  let cases =
    [ ("gemm", Workloads.gemm ~m:4 ~n:4 ~k:5, "MNK-SST");
      ("conv2d", Workloads.conv2d ~k:4 ~c:4 ~y:4 ~x:4 ~p:3 ~q:3, "KCX-SST");
      ("depthwise", Workloads.depthwise_conv ~k:4 ~y:4 ~x:4 ~p:3 ~q:3,
       "XYP-MMM");
      ("mttkrp", Workloads.mttkrp ~i:4 ~j:4 ~k:4 ~l:4, "IKL-UBBB") ]
  in
  let results =
    List.map
      (fun (tag, stmt, dname) ->
        let design = Search.find_design_exn stmt dname in
        let env = Exec.alloc_inputs stmt in
        let acc =
          Accel.generate ~rows:4 ~cols:4 ~counters:true design env
        in
        let v, v_s = wall (fun () -> Obs.Counters.validate acc) in
        let p, p_s = wall (fun () -> Obs.Power.measure acc) in
        Printf.printf
          "  %-10s %-9s counters %-8s power modeled=%.2f mW measured=%.2f \
           mW  (%.2fs + %.2fs)\n"
          tag dname
          (if v.Obs.Counters.v_ok then "OK" else "MISMATCH")
          p.Obs.Power.modeled.Asic.power_mw
          p.Obs.Power.measured.Asic.power_mw v_s p_s;
        (tag, v, p, v_s, p_s))
      cases
  in
  List.iter
    (fun (tag, v, _, _, _) ->
      if not v.Obs.Counters.v_ok then
        failwith (Printf.sprintf "counter validation failed for %s" tag))
    results;
  (* Traced pool work: a DSE sweep and a small fault campaign run under
     the trace_event pool observer, attributing every task to its
     worker.  The wrapper is uninstalled before writing the files. *)
  let trace = Obs.Trace.create () in
  let clock = Unix.gettimeofday in
  Par.set_wrapper (Some (Obs.Trace.pool_wrapper trace ~clock));
  let stmt = Workloads.gemm ~m:4 ~n:4 ~k:4 in
  let explored, dse_s =
    wall (fun () ->
        Obs.Trace.span trace ~clock ~name:"dse-explore" (fun () ->
            List.length (Explore.explore ~limit:16 stmt)))
  in
  let campaign_rep, fault_s =
    wall (fun () ->
        Obs.Trace.span trace ~clock ~name:"fault-campaign" (fun () ->
            let design = Search.find_design_exn stmt "MNK-SST" in
            let env = Exec.alloc_inputs stmt in
            let acc = Accel.generate ~rows:4 ~cols:4 design env in
            Campaign.run
              ~config:{ Campaign.default_config with trials = 100 }
              acc))
  in
  Par.set_wrapper None;
  Printf.printf
    "  traced: %d DSE designs (%.2fs), %d fault trials (%.2fs), %d spans\n"
    explored dse_s campaign_rep.Campaign.trials fault_s
    (Obs.Trace.length trace);
  Obs.Trace.write_file "TRACE_obs.json" trace;
  let oc = open_out "BENCH_obs.json" in
  Printf.fprintf oc "{\n  \"schema\": \"tensorlib-bench-obs/1\",\n";
  Printf.fprintf oc "  \"domains\": %d,\n  \"workloads\": [\n"
    (Par.n_domains ());
  List.iteri
    (fun i (tag, v, p, v_s, p_s) ->
      Printf.fprintf oc
        "    { \"workload\": \"%s\",\n      \"counters\": %s,\n\
        \      \"power\": %s,\n\
        \      \"wall_s\": {\"validate\": %.3f, \"power\": %.3f} }%s\n"
        tag
        (Obs.Counters.to_json v)
        (Obs.Power.to_json p) v_s p_s
        (if i < List.length results - 1 then "," else ""))
    results;
  Printf.fprintf oc
    "  ],\n\
    \  \"traced\": {\"dse_designs\": %d, \"fault_trials\": %d, \
     \"spans\": %d, \"trace_file\": \"TRACE_obs.json\",\n\
    \             \"wall_s\": {\"dse\": %.3f, \"fault\": %.3f}}\n}\n"
    explored campaign_rep.Campaign.trials
    (Obs.Trace.length trace) dse_s fault_s;
  close_out oc;
  print_endline
    "\n  (machine-readable results written to BENCH_obs.json; Chrome \
     trace in TRACE_obs.json)"

(* ------------------------------------------------------------------ *)
(* Benchmark gate: abstract interpretation.  Runs the Tl_absint proof
   campaign over the four tier-1 workloads — every safety rule (L200
   overflow, L201 addresses, L202 write schedules) must be proven without
   simulation — and prices the analysis-driven width narrowing; writes
   BENCH_absint.json.                                                   *)

let bench_absint () =
  section "Benchmark gate: abstract interpretation (proofs + narrowing)";
  let cases =
    [ ("gemm", Workloads.gemm ~m:4 ~n:4 ~k:5, "MNK-SST");
      ("conv2d", Workloads.conv2d ~k:4 ~c:4 ~y:4 ~x:4 ~p:3 ~q:3, "KCX-SST");
      ("depthwise", Workloads.depthwise_conv ~k:4 ~y:4 ~x:4 ~p:3 ~q:3,
       "XYP-MMM");
      ("mttkrp", Workloads.mttkrp ~i:4 ~j:4 ~k:4 ~l:4, "IKL-UBBB") ]
  in
  let results =
    List.map
      (fun (tag, stmt, dname) ->
        let design = Search.find_design_exn stmt dname in
        let env = Exec.alloc_inputs stmt in
        let acc =
          Accel.generate ~rows:4 ~cols:4 ~counters:true design env
        in
        let r, a_s = wall (fun () -> Absint.Report.of_accel acc) in
        let open Absint.Report in
        let sv = r.savings in
        Printf.printf
          "  %-10s %-9s %-6s %3d proofs  reg bits %4d -> %4d  area %6.1f \
           -> %6.1f (%.2fs)\n"
          tag dname
          (if r.safe then "SAFE" else "UNSAFE")
          (List.length r.proofs) sv.Absint.Narrow.reg_bits_before
          sv.Absint.Narrow.reg_bits_after r.area_before r.area_after a_s;
        (tag, r, a_s))
      cases
  in
  List.iter
    (fun (tag, (r : Absint.Report.t), _) ->
      if not r.Absint.Report.safe then
        failwith
          (Printf.sprintf
             "absint gate failed for %s: unproven safety rule\n%s" tag
             (Format.asprintf "%a" Lint.Finding.pp_report
                r.Absint.Report.findings)))
    results;
  let oc = open_out "BENCH_absint.json" in
  Printf.fprintf oc "{\n  \"schema\": \"tensorlib-bench-absint/1\",\n";
  Printf.fprintf oc "  \"workloads\": [\n";
  List.iteri
    (fun i (tag, (r : Absint.Report.t), a_s) ->
      let sv = r.Absint.Report.savings in
      Printf.fprintf oc
        "    { \"workload\": \"%s\", \"target\": \"%s\", \"safe\": %b,\n\
        \      \"cycles\": %d, \"proofs\": %d, \"findings\": %d,\n\
        \      \"reg_bits_before\": %d, \"reg_bits_after\": %d,\n\
        \      \"cells_before\": %d, \"cells_after\": %d,\n\
        \      \"area_before\": %.2f, \"area_after\": %.2f,\n\
        \      \"wall_s\": %.3f }%s\n"
        tag r.Absint.Report.target r.Absint.Report.safe
        r.Absint.Report.cycles
        (List.length r.Absint.Report.proofs)
        (List.length r.Absint.Report.findings)
        sv.Absint.Narrow.reg_bits_before sv.Absint.Narrow.reg_bits_after
        sv.Absint.Narrow.cells_before sv.Absint.Narrow.cells_after
        r.Absint.Report.area_before r.Absint.Report.area_after a_s
        (if i < List.length results - 1 then "," else ""))
    results;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  print_endline "\n  (machine-readable results written to BENCH_absint.json)"

(* ------------------------------------------------------------------ *)
(* prog-smoke: one programmable 4x4 netlist serves three einsum shapes
   via Tl_compile, each bit-identical (on both scalar backends) to a
   freshly generated per-shape ROM accelerator; lint and the abstract
   interpreter must report nothing new on the programmable variant.      *)

let prog_headroom = 4

let prog_target () =
  let stmt = Workloads.gemm ~m:4 ~n:4 ~k:4 in
  let design = design_of_name stmt "MNK-SST" in
  let l = Layout.build design ~rows:4 ~cols:4 in
  let nat_elems =
    List.fold_left
      (fun a (i : Layout.input) -> max a i.Layout.in_elems)
      1 l.Layout.l_inputs
  in
  let nat_bank =
    List.fold_left (fun a (_, cap, _) -> max a cap) 1 l.Layout.l_banks
  in
  let envelope =
    { Layout.env_cycles = prog_headroom * l.Layout.l_total;
      env_passes = prog_headroom * l.Layout.l_passes;
      env_elems = prog_headroom * nat_elems;
      env_bank = prog_headroom * nat_bank }
  in
  let env = Exec.alloc_inputs stmt in
  Accel.generate ~rows:4 ~cols:4 ~programmable:envelope design env

let prog_shapes = [ 6; 10; 14 ]

let prog_smoke () =
  section "prog-smoke: one programmable netlist, three shapes";
  let target = prog_target () in
  let failures = ref 0 in
  let check name ok =
    Printf.printf "  %-44s %s\n%!" name (if ok then "ok" else "FAIL");
    if not ok then incr failures
  in
  List.iter
    (fun k ->
      let stmt = Workloads.gemm ~m:4 ~n:4 ~k in
      match Compile.find_design ~target stmt with
      | Error rejections ->
        List.iter
          (fun (n, e) ->
            Printf.printf "    %s: %s\n" n (Compile.error_to_string e))
          rejections;
        check (Printf.sprintf "gemm k=%d compiles" k) false
      | Ok (design, program) ->
        let env = Exec.alloc_inputs stmt in
        let golden = Exec.run stmt env in
        let rom = Accel.generate ~rows:4 ~cols:4 design env in
        List.iter
          (fun (bname, backend) ->
            let got = Accel.execute_program ~backend target program env in
            let rom_out = Accel.execute ~backend rom in
            check
              (Printf.sprintf "gemm k=%d %s = golden = ROM build" k bname)
              (Dense.equal got golden && Dense.equal got rom_out))
          [ ("tape", `Tape); ("closure", `Closure) ];
        check
          (Printf.sprintf "gemm k=%d program codec roundtrip" k)
          (Compile.program_of_json (Compile.program_to_json program)
           = Ok program))
    prog_shapes;
  (* the programmable variant must introduce no new static findings *)
  let stmt = Workloads.gemm ~m:4 ~n:4 ~k:4 in
  let design = design_of_name stmt "MNK-SST" in
  let env = Exec.alloc_inputs stmt in
  let rom = Accel.generate ~rows:4 ~cols:4 design env in
  let cfg = { Lint.Netlist.suppress = []; fanout_threshold = 64 } in
  let rules fs =
    List.sort_uniq compare
      (List.map (fun (f : Lint.Finding.t) -> f.Lint.Finding.rule) fs)
  in
  let rom_rules = rules (Lint.Netlist.check_circuit ~config:cfg rom.Accel.circuit) in
  let prog_rules =
    rules (Lint.Netlist.check_circuit ~config:cfg target.Accel.circuit)
  in
  check "lint: no new rules on programmable variant"
    (List.for_all (fun r -> List.mem r rom_rules) prog_rules);
  let ar = Absint.Report.of_accel rom in
  let ap = Absint.Report.of_accel target in
  check "absint: programmable variant proven safe" ap.Absint.Report.safe;
  check "absint: no new rules on programmable variant"
    (List.for_all
       (fun r -> List.mem r (rules ar.Absint.Report.findings))
       (rules ap.Absint.Report.findings));
  if !failures > 0 then begin
    Printf.printf "prog-smoke: %d check(s) FAILED\n" !failures;
    exit 1
  end;
  print_endline "prog-smoke: OK"

(* ------------------------------------------------------------------ *)
(* bench-prog: latency to retarget the array to a new shape —
   software compile + descriptor load on the standing netlist versus a
   fresh ROM elaboration + simulator build.  Execution cost is identical
   in both paths (same netlist shape), so the figure isolates the
   per-new-shape setup cost serving actually pays.                       *)

let bench_prog () =
  section "bench-prog: reprogram vs regenerate latency per new shape";
  let target = prog_target () in
  let sim = Sim.create target.Accel.circuit in
  let time reps f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do f () done;
    (Unix.gettimeofday () -. t0) *. 1000. /. float_of_int reps
  in
  let reps = 30 in
  let rows =
    List.map
      (fun k ->
        let stmt = Workloads.gemm ~m:4 ~n:4 ~k in
        let env = Exec.alloc_inputs stmt in
        let golden = Exec.run stmt env in
        let design, program =
          match Compile.find_design ~target stmt with
          | Ok dp -> dp
          | Error _ -> failwith "bench-prog: shape does not compile"
        in
        (* correctness first: the timed paths must agree bit-for-bit *)
        let got = Accel.execute_program ~sim target program env in
        let verified = Dense.equal got golden in
        (* reprogram = loading a compiled program into the standing array
           (descriptor + data memory writes).  Programs are serialisable
           artifacts (Compile.program_to_json), so a deployment compiles a
           shape once and reloads the cached program thereafter; the
           one-time software cost is reported separately as compile_ms.
           Execution cost is identical in both paths and excluded. *)
        let reprog_ms =
          time reps (fun () -> Accel.load_program target sim program env)
        in
        let compile_ms =
          time reps (fun () ->
              match Compile.compile ~target design with
              | Ok _ -> ()
              | Error _ -> failwith "bench-prog: recompile failed")
        in
        let regen_ms =
          time reps (fun () ->
              let rom = Accel.generate ~rows:4 ~cols:4 design env in
              ignore (Sim.create rom.Accel.circuit))
        in
        let speedup = regen_ms /. reprog_ms in
        Printf.printf
          "  gemm k=%-3d regenerate %7.3f ms   reprogram %7.3f ms   \
           (compile %7.3f ms)   %6.1fx %s\n%!"
          k regen_ms reprog_ms compile_ms speedup
          (if verified then "" else "UNVERIFIED");
        (k, regen_ms, reprog_ms, compile_ms, speedup, verified))
      prog_shapes
  in
  let min_speedup =
    List.fold_left (fun a (_, _, _, _, s, _) -> min a s) infinity rows
  in
  let all_verified = List.for_all (fun (_, _, _, _, _, v) -> v) rows in
  let oc = open_out "BENCH_prog.json" in
  Printf.fprintf oc "{\n  \"schema\": \"tensorlib-bench-prog/1\",\n";
  Printf.fprintf oc "  \"target\": \"%s\",\n  \"rows\": 4,\n  \"cols\": 4,\n"
    target.Accel.design.Design.name;
  Printf.fprintf oc "  \"headroom\": %d,\n  \"shapes\": [\n" prog_headroom;
  List.iteri
    (fun i (k, regen, reprog, compile, speedup, verified) ->
      Printf.fprintf oc
        "    { \"k\": %d, \"regenerate_ms\": %.4f, \"reprogram_ms\": %.4f,\n\
        \      \"compile_ms\": %.4f, \"speedup\": %.2f, \"verified\": %b }%s\n"
        k regen reprog compile speedup verified
        (if i < List.length rows - 1 then "," else ""))
    rows;
  Printf.fprintf oc "  ],\n  \"min_speedup\": %.2f\n}\n" min_speedup;
  close_out oc;
  print_endline "\n  (machine-readable results written to BENCH_prog.json)";
  if not all_verified then begin
    print_endline "bench-prog: programmed output diverged";
    exit 1
  end;
  if min_speedup < 10. then begin
    Printf.printf "bench-prog: reprogramming only %.1fx faster (< 10x gate)\n"
      min_speedup;
    exit 1
  end

(* ------------------------------------------------------------------ *)

let all_sections =
  [ ("table1", table1); ("table2", table2); ("verify", verify);
    ("fig3", fig3); ("fig4", fig4);
    ("fig5", fig5); ("fig6", fig6); ("table3", table3);
    ("metrics", metrics); ("tradeoffs", tradeoffs);
    ("ablation-float", ablation_float);
    ("ablation-span", ablation_span); ("ablation-rewrite", ablation_rewrite);
    ("micro", micro);
    ("bench-sim", fun () -> bench_sim ~quick:false ());
    ("bench-dse", fun () -> bench_dse ~quick:false ()) ]

let dispatch =
  all_sections
  @ [ ("bench-quick", bench_quick); ("bench-fault", bench_fault);
      ("bench-obs", bench_obs); ("bench-absint", bench_absint);
      ("batch-smoke", batch_smoke); ("store-smoke", store_smoke);
      ("chaos-smoke", chaos_smoke); ("bench-resil", bench_resil);
      ("prog-smoke", prog_smoke); ("bench-prog", bench_prog) ]

let () =
  match Array.to_list Sys.argv with
  | _ :: (_ :: _ as picked) ->
    List.iter
      (fun name ->
        match List.assoc_opt name dispatch with
        | Some f -> f ()
        | None ->
          Printf.eprintf "unknown section %s; available: %s\n" name
            (String.concat " " (List.map fst dispatch));
          exit 1)
      picked
  | _ ->
    print_endline "TensorLib reproduction: all tables and figures";
    List.iter (fun (_, f) -> f ()) all_sections
