(* Shared --backend flag handling for the CLI executables: one table of
   simulator backend names, per-command restriction of which are legal,
   and a did-you-mean suggestion when the value is unknown.  Raises
   [Failure] with an actionable message, matching the CLI's [guard]
   convention (exit code 2). *)

open Tensorlib

let all : (string * Sim.backend) list =
  [ ("tape", `Tape); ("closure", `Closure); ("batch", `Batch) ]

let names = List.map fst all

(* Levenshtein distance — the candidate set is three short words, so the
   textbook O(|a|·|b|) table is plenty. *)
let distance a b =
  let la = String.length a and lb = String.length b in
  let row = Array.init (lb + 1) Fun.id in
  for i = 1 to la do
    let diag = ref row.(0) in
    row.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      let v = min (min (row.(j) + 1) (row.(j - 1) + 1)) (!diag + cost) in
      diag := row.(j);
      row.(j) <- v
    done
  done;
  row.(lb)

let suggest ~valid s =
  (* reusable did-you-mean fragment for any CLI name set (backends,
     network names, ...); empty when nothing is close enough.  Matching is
     case-insensitive ("TAPE" suggests "tape") but the suggestion always
     shows the candidate's canonical spelling; empty or whitespace-only
     input never gets a suggestion (everything is 1-4 edits from "") *)
  let s = String.trim s in
  if s = "" then ""
  else
    let s = String.lowercase_ascii s in
    let scored =
      List.map (fun c -> (distance s (String.lowercase_ascii c), c)) valid
    in
    let sorted = List.sort compare scored in
    match sorted with
    | (d, c) :: _ when d <= 2 -> Printf.sprintf "; did you mean %S?" c
    | _ -> ""

let suggestion s = suggest ~valid:names s

let of_string ?(allowed = names) s =
  let valid () = String.concat ", " allowed in
  match List.assoc_opt s all with
  | Some b when List.mem s allowed -> b
  | Some _ ->
    failwith
      (Printf.sprintf
         "simulator backend %S is not supported by this command; valid: %s"
         s (valid ()))
  | None ->
    failwith
      (Printf.sprintf "unknown simulator backend %S; valid: %s%s" s
         (valid ()) (suggestion s))
