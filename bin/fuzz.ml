(* Design-space fuzzer: random statements x random transformations, each
   netlist-supported design elaborated, simulated, and checked against the
   golden executor.  A standing end-to-end soundness harness for the
   generator (the CI-style long-running counterpart of the property tests).

   Usage: dune exec bin/fuzz.exe -- [iterations] [seed] *)

open Tensorlib

let random_stmt rng =
  let extent () = 2 + Random.State.int rng 3 in
  let depth = 3 + Random.State.int rng 2 in
  let names = [| "i"; "j"; "k"; "l" |] in
  let iters = List.init depth (fun d -> Iter.v names.(d) (extent ())) in
  let access name =
    (* non-empty random subset of iterators, one coefficient-1 term each *)
    let rec rows () =
      let chosen =
        List.filteri (fun _ _ -> Random.State.bool rng) (List.init depth Fun.id)
      in
      if chosen = [] then rows () else chosen
    in
    Access.of_terms name ~depth (List.map (fun j -> [ j ]) (rows ()))
  in
  let inputs =
    if Random.State.bool rng then [ access "A"; access "B" ]
    else [ access "A"; access "B"; access "C" ]
  in
  Stmt.v "fuzz" ~iters ~output:(access "O") ~inputs

let random_transform rng stmt =
  let depth = Stmt.depth stmt in
  let selected =
    (* random 3-combination *)
    let all = Array.init depth Fun.id in
    for i = depth - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let t = all.(i) in
      all.(i) <- all.(j);
      all.(j) <- t
    done;
    Array.sub all 0 3
  in
  Array.sort compare selected;
  let rec matrix () =
    let m =
      List.init 3 (fun _ -> List.init 3 (fun _ -> Random.State.int rng 3 - 1))
    in
    if Tl_linalg.Rat.is_zero (Tl_linalg.Mat.det (Tl_linalg.Mat.of_int_rows m))
    then matrix ()
    else m
  in
  Transform.v stmt ~selected ~matrix:(matrix ())

let () =
  let iterations =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 200
  in
  let seed =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 2024
  in
  let rng = Random.State.make [| seed |] in
  let checked = ref 0 and skipped = ref 0 and failed = ref 0 in
  for i = 1 to iterations do
    let stmt = random_stmt rng in
    let t = random_transform rng stmt in
    let d = Design.analyze t in
    if Design.netlist_supported d then begin
      let env = Exec.alloc_inputs ~seed:i stmt in
      match Accel.generate ~rows:12 ~cols:12 d env with
      | exception Accel.Unsupported _ -> incr skipped
      | acc ->
        incr checked;
        let golden = Exec.run stmt env in
        if not (Dense.equal golden (Accel.execute acc)) then begin
          incr failed;
          Format.printf "FAIL at iteration %d:@.%a@." i Design.pp_report d
        end
    end
    else incr skipped
  done;
  Printf.printf "fuzz: %d checked, %d skipped, %d failed (seed %d)\n" !checked
    !skipped !failed seed;
  if !failed > 0 then exit 1
