(* Design-space fuzzer: random statements x random transformations, each
   netlist-supported design elaborated, simulated, and checked against the
   golden executor.  A standing end-to-end soundness harness for the
   generator (the CI-style long-running counterpart of the property tests).

   Four phases:
   - designs: random stmt x random STT; generated accelerators must match
     the golden executor, and the lint must report no error-severity
     finding on the generated netlist, before or after [Rewrite].  Trials
     run on the Tl_par domain pool (override width with TL_DOMAINS=n).
   - netlists: random raw netlists; the lint must never crash, and
     [Rewrite.circuit] must never introduce a finding (per-rule counts
     never grow).  A slice of deliberately broken netlists checks that
     unassigned wires and combinational cycles surface as L001/L002
     findings instead of exceptions.
   - absint: abstract-interpretation soundness.  The Tl_absint engine's
     abstract value for every node must contain the node's simulated value
     on every cycle of a random stimulus, on BOTH simulator backends
     ([`Tape] and [`Closure]); and the analysis-narrowed circuit
     ([Absint.Narrow.circuit]) must stay cycle-for-cycle output-equivalent
     to the original under the same stimulus.
   - batch lanes: bit-sliced simulation soundness.  Random netlists driven
     with 62 independent random lane stimuli under [`Batch] must be
     bit-identical, lane by lane and node by node, to scalar [`Tape] and
     [`Closure] replays of each lane's stimulus.

   Usage: dune exec bin/fuzz.exe -- [iterations] [seed] *)

open Tensorlib

let random_stmt rng =
  let extent () = 2 + Random.State.int rng 3 in
  let depth = 3 + Random.State.int rng 2 in
  let names = [| "i"; "j"; "k"; "l" |] in
  let iters = List.init depth (fun d -> Iter.v names.(d) (extent ())) in
  let access name =
    (* non-empty random subset of iterators, one coefficient-1 term each *)
    let rec rows () =
      let chosen =
        List.filteri (fun _ _ -> Random.State.bool rng) (List.init depth Fun.id)
      in
      if chosen = [] then rows () else chosen
    in
    Access.of_terms name ~depth (List.map (fun j -> [ j ]) (rows ()))
  in
  let inputs =
    if Random.State.bool rng then [ access "A"; access "B" ]
    else [ access "A"; access "B"; access "C" ]
  in
  Stmt.v "fuzz" ~iters ~output:(access "O") ~inputs

let random_transform rng stmt =
  let depth = Stmt.depth stmt in
  let selected =
    (* random 3-combination *)
    let all = Array.init depth Fun.id in
    for i = depth - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let t = all.(i) in
      all.(i) <- all.(j);
      all.(j) <- t
    done;
    Array.sub all 0 3
  in
  Array.sort compare selected;
  let rec matrix () =
    let m =
      List.init 3 (fun _ -> List.init 3 (fun _ -> Random.State.int rng 3 - 1))
    in
    if Tl_linalg.Rat.is_zero (Tl_linalg.Mat.det (Tl_linalg.Mat.of_int_rows m))
    then matrix ()
    else m
  in
  Transform.v stmt ~selected ~matrix:(matrix ())

(* ---------------- lint differential oracle ---------------- *)

(* Keep L012 quiet: the generator shares leaves freely, so folding can push
   an individual signal's fanout across any small threshold without adding
   logic.  Every other rule is compared by exact per-rule count. *)
let fuzz_lint_config =
  { Lint.Netlist.default_config with fanout_threshold = 1000 }

let rule_counts findings =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (f : Lint.Finding.t) ->
      let n =
        match Hashtbl.find_opt tbl f.Lint.Finding.rule with
        | Some n -> n
        | None -> 0
      in
      Hashtbl.replace tbl f.Lint.Finding.rule (n + 1))
    findings;
  tbl

let introduced ~before ~after =
  let b = rule_counts before and a = rule_counts after in
  Hashtbl.fold
    (fun rule n acc ->
      let m = match Hashtbl.find_opt b rule with Some m -> m | None -> 0 in
      if n > m then (rule, m, n) :: acc else acc)
    a []

(* Random netlists built so that [Rewrite] cannot merely *reveal* a latent
   warning: register data inputs are [q op expr] (the feedback term [q]
   never folds to a constant), enables and write strobes are input bits,
   and ram addresses are input slices.  Under those constraints any finding
   whose count grows across [Rewrite.circuit] is a genuine optimiser bug. *)
let random_netlist rng =
  let open Signal in
  let w = 8 in
  let x = input "x" w and y = input "y" w in
  let nregs = 1 + Random.State.int rng 3 in
  let wires = Array.init nregs (fun _ -> wire w) in
  let regs =
    Array.init nregs (fun i -> reg ~enable:(bit x (i mod w)) wires.(i))
  in
  let rec expr depth =
    if depth = 0 then
      match Random.State.int rng 4 with
      | 0 -> x
      | 1 -> y
      | 2 -> const ~width:w (Random.State.int rng 256)
      | _ -> regs.(Random.State.int rng nregs)
    else
      let e () = expr (depth - 1) in
      match Random.State.int rng 9 with
      | 0 -> e () +: e ()
      | 1 -> e () -: e ()
      | 2 -> e () *: e ()
      | 3 -> e () &: e ()
      | 4 -> e () ^: e ()
      | 5 -> mux2 (bit (e ()) 0) (e ()) (e ())
      | 6 ->
        (* deliberate L004: identical branches *)
        let b = e () in
        mux2 (bit x 0) b b
      | 7 ->
        (* deliberate L005: constant select *)
        mux2 (if Random.State.bool rng then vdd else gnd) (e ()) (e ())
      | _ -> uresize (select (e ()) ~hi:(w - 2) ~lo:1) w
  in
  Array.iteri
    (fun i wr ->
      let op =
        match Random.State.int rng 3 with 0 -> ( +: ) | 1 -> ( -: ) | _ -> ( ^: )
      in
      assign wr (op regs.(i) (expr 2)))
    wires;
  let r = ram ~size:8 ~width:w ~init:(Array.make 8 0) () in
  ram_write r ~we:(bit y 0)
    ~addr:(select x ~hi:2 ~lo:0)
    ~data:(expr 2);
  let read = ram_read r (select y ~hi:2 ~lo:0) in
  Lint.Netlist.source ~name:"fuzz_netlist"
    ~declared_inputs:[ ("x", w); ("y", w) ]
    [ ("o0", expr 3); ("o1", regs.(0)); ("o2", read) ]

let broken_netlist rng =
  let open Signal in
  let x = input "x" 8 in
  if Random.State.bool rng then
    (* unassigned wire *)
    let dangling = wire 8 -- "dangling" in
    ("L001", Lint.Netlist.source ~name:"fuzz_broken" [ ("o", x +: dangling) ])
  else
    (* combinational cycle *)
    let loop = wire 8 -- "loop" in
    assign loop (x +: loop);
    ("L002", Lint.Netlist.source ~name:"fuzz_broken" [ ("o", loop) ])

let () =
  let iterations =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 200
  in
  let seed =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 2024
  in
  let rng = Random.State.make [| seed |] in
  (* phase 1: designs.  Trials are independent — each draws from its own
     [seed; i] PRNG — so they fan out over the Tl_par domain pool; reports
     come back as strings and print in trial order. *)
  let trial i =
    let rng = Random.State.make [| seed; i |] in
    let stmt = random_stmt rng in
    let t = random_transform rng stmt in
    let d = Design.analyze t in
    if not (Design.netlist_supported d) then (0, 1, 0, "")
    else
      let env = Exec.alloc_inputs ~seed:i stmt in
      match Accel.generate ~rows:12 ~cols:12 d env with
      | exception Accel.Unsupported _ -> (0, 1, 0, "")
      | acc ->
        let buf = Buffer.create 64 in
        let fmt = Format.formatter_of_buffer buf in
        let failures = ref 0 in
        let golden = Exec.run stmt env in
        if not (Dense.equal golden (Accel.execute acc)) then begin
          incr failures;
          Format.fprintf fmt "FAIL at iteration %d:@.%a@." i Design.pp_report d
        end;
        let design_errors =
          Lint.Finding.errors (Lint.Design.check_design ~rows:12 ~cols:12 d)
        in
        let netlist_errors =
          Lint.Finding.errors
            (Lint.Netlist.check_circuit ~config:fuzz_lint_config
               acc.Accel.circuit)
        in
        let rewritten_errors =
          Lint.Finding.errors
            (Lint.Netlist.check_circuit ~config:fuzz_lint_config
               (Rewrite.circuit acc.Accel.circuit))
        in
        List.iter
          (fun (what, errs) ->
            if errs <> [] then begin
              incr failures;
              Format.fprintf fmt "LINT FAIL at iteration %d (%s):@.%a@." i what
                Lint.Finding.pp_report errs
            end)
          [ ("design", design_errors); ("netlist", netlist_errors);
            ("rewritten netlist", rewritten_errors) ];
        Format.pp_print_flush fmt ();
        (1, 0, !failures, Buffer.contents buf)
  in
  let results = Par.map trial (List.init iterations (fun i -> i + 1)) in
  let checked = List.fold_left (fun a (c, _, _, _) -> a + c) 0 results in
  let skipped = List.fold_left (fun a (_, s, _, _) -> a + s) 0 results in
  let failed = ref (List.fold_left (fun a (_, _, f, _) -> a + f) 0 results) in
  List.iter (fun (_, _, _, msg) -> print_string msg) results;
  Printf.printf "fuzz designs: %d checked, %d skipped, %d failed (seed %d)\n"
    checked skipped !failed seed;
  (* phase 2: raw netlists through the lint differential oracle *)
  let linted = ref 0 and violations = ref 0 in
  for i = 1 to iterations do
    (if i mod 10 = 0 then
       (* broken netlists must surface as findings, not exceptions *)
       let expected_rule, src = broken_netlist rng in
       match Lint.Netlist.check_source ~config:fuzz_lint_config src with
       | exception e ->
         incr violations;
         Printf.printf "ORACLE FAIL at netlist %d: lint raised %s\n" i
           (Printexc.to_string e)
       | findings, circuit ->
         if circuit <> None
            || not
                 (List.exists
                    (fun (f : Lint.Finding.t) ->
                      f.Lint.Finding.rule = expected_rule)
                    findings)
         then begin
           incr violations;
           Printf.printf
             "ORACLE FAIL at netlist %d: broken netlist did not report %s\n" i
             expected_rule
         end);
    (let src = random_netlist rng in
      match Lint.Netlist.check_source ~config:fuzz_lint_config src with
      | exception e ->
        incr violations;
        Printf.printf "ORACLE FAIL at netlist %d: lint raised %s\n" i
          (Printexc.to_string e)
      | before, None ->
        incr violations;
        Printf.printf "ORACLE FAIL at netlist %d: valid netlist rejected:\n%s\n"
          i
          (Lint.Finding.to_json before)
      | before, Some circuit ->
        incr linted;
        let after =
          Lint.Netlist.check_circuit ~config:fuzz_lint_config
            (Rewrite.circuit circuit)
        in
        List.iter
          (fun (rule, m, n) ->
            incr violations;
            Printf.printf
              "ORACLE FAIL at netlist %d: Rewrite grew %s findings %d -> %d\n"
              i rule m n)
          (introduced ~before ~after))
  done;
  Printf.printf "fuzz lint oracle: %d netlists linted, %d violations\n" !linted
    !violations;
  (* phase 3: abstract-interpretation soundness oracle *)
  let absint_checked = ref 0 and absint_violations = ref 0 in
  let sim_cycles = 8 in
  for i = 1 to iterations do
    let src = random_netlist rng in
    match Lint.Netlist.check_source ~config:fuzz_lint_config src with
    | _, None -> ()
    | _, Some circuit -> (
      match Absint.Engine.run circuit with
      | exception e ->
        incr absint_violations;
        Printf.printf "ABSINT FAIL at netlist %d: engine raised %s\n" i
          (Printexc.to_string e)
      | engine ->
        incr absint_checked;
        let inputs = Circuit.inputs circuit in
        (* same stimulus for every backend and for the narrowed circuit *)
        let stimulus =
          Array.init sim_cycles (fun _ ->
              List.map
                (fun (name, w) ->
                  (name, Random.State.int rng (1 lsl min w 30)))
                inputs)
        in
        let narrowed, _, _ = Absint.Narrow.circuit ~engine circuit in
        (* constant folding may leave an input entirely unread, in which
           case it disappears from the narrowed circuit's input list *)
        let narrowed_inputs = List.map fst (Circuit.inputs narrowed) in
        List.iter
          (fun backend ->
            let sim = Sim.create ~backend circuit in
            let sim_n = Sim.create ~backend narrowed in
            Array.iter
              (fun bindings ->
                List.iter
                  (fun (name, v) ->
                    Sim.set_input sim name v;
                    if List.mem name narrowed_inputs then
                      Sim.set_input sim_n name v)
                  bindings;
                Sim.settle sim;
                Sim.settle sim_n;
                (* soundness: every settled node value must be a member of
                   its abstract value *)
                Array.iter
                  (fun node ->
                    match Sim.slot sim node with
                    | None -> ()
                    | Some _ ->
                      let v = Sim.peek sim node in
                      let av = Absint.Engine.value engine node in
                      if not (Absint.Av.mem v av) then begin
                        incr absint_violations;
                        Printf.printf
                          "ABSINT FAIL at netlist %d (%s): node #%d value \
                           %d outside %s\n"
                          i
                          (match backend with
                           | `Tape -> "tape"
                           | `Closure -> "closure"
                           | `Batch -> "batch")
                          node.Signal.id v
                          (Format.asprintf "%a" Absint.Av.pp av)
                      end)
                  (Circuit.nodes circuit);
                (* rewrite equivalence: narrowed outputs must agree *)
                List.iter
                  (fun (name, _) ->
                    let a = Sim.output sim name
                    and b = Sim.output sim_n name in
                    if a <> b then begin
                      incr absint_violations;
                      Printf.printf
                        "ABSINT FAIL at netlist %d: narrowed output %s \
                         disagrees (%d vs %d)\n"
                        i name a b
                    end)
                  (Circuit.outputs circuit);
                Sim.latch sim;
                Sim.latch sim_n)
              stimulus)
          [ `Tape; `Closure ])
  done;
  Printf.printf
    "fuzz absint oracle: %d netlists checked on both backends, %d \
     violations\n"
    !absint_checked !absint_violations;
  (* phase 4: bit-sliced batch backend lane oracle *)
  let batch_checked = ref 0 and batch_violations = ref 0 in
  let lanes = Sim.max_lanes in
  for i = 1 to iterations do
    let src = random_netlist rng in
    match Lint.Netlist.check_source ~config:fuzz_lint_config src with
    | _, None -> ()
    | _, Some circuit ->
      incr batch_checked;
      let inputs = Circuit.inputs circuit in
      let stimulus =
        Array.init sim_cycles (fun _ ->
            Array.init lanes (fun _ ->
                List.map
                  (fun (name, w) ->
                    (name, Random.State.int rng (1 lsl min w 30)))
                  inputs))
      in
      let batch = Sim.create ~backend:`Batch ~lanes circuit in
      let scalars =
        List.map
          (fun backend ->
            (backend, Array.init lanes (fun _ -> Sim.create ~backend circuit)))
          [ `Tape; `Closure ]
      in
      Array.iter
        (fun per_lane ->
          Array.iteri
            (fun l bindings ->
              List.iter
                (fun (name, v) ->
                  Sim.set_input_lane batch l name v;
                  List.iter
                    (fun (_, sims) -> Sim.set_input sims.(l) name v)
                    scalars)
                bindings)
            per_lane;
          Sim.settle batch;
          List.iter (fun (_, sims) -> Array.iter Sim.settle sims) scalars;
          Array.iter
            (fun node ->
              match Sim.slot batch node with
              | None -> ()
              | Some _ ->
                for l = 0 to lanes - 1 do
                  let bv = Sim.peek_lane batch l node in
                  List.iter
                    (fun (backend, sims) ->
                      let sv = Sim.peek sims.(l) node in
                      if bv <> sv then begin
                        incr batch_violations;
                        Printf.printf
                          "BATCH FAIL at netlist %d lane %d (vs %s): node \
                           #%d: %d <> %d\n"
                          i l
                          (match backend with
                           | `Tape -> "tape"
                           | `Closure -> "closure"
                           | `Batch -> "batch")
                          node.Signal.id bv sv
                      end)
                    scalars
                done)
            (Circuit.nodes circuit);
          Sim.latch batch;
          List.iter (fun (_, sims) -> Array.iter Sim.latch sims) scalars)
        stimulus
  done;
  Printf.printf
    "fuzz batch oracle: %d netlists, %d lanes vs tape+closure, %d \
     violations\n"
    !batch_checked lanes !batch_violations;
  if
    !failed > 0 || !violations > 0 || !absint_violations > 0
    || !batch_violations > 0
  then exit 1
