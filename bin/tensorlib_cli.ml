(* TensorLib command-line interface.

   tensorlib analyze  -w gemm -d MNK-SST          dataflow analysis report
   tensorlib generate -w gemm -d MNK-SST -o f.v   emit Verilog
   tensorlib simulate -w gemm -d MNK-SST          netlist sim vs golden
   tensorlib perf     -w conv2d -d KCX-SST        Fig.5-style cycle model
   tensorlib explore  -w gemm                     design-space sweep + cost
   tensorlib list     -w mttkrp                   letter-distinct dataflows
   tensorlib lint     -w gemm-small               static analysis gate
                                                  (exit 1 on any error) *)

open Tensorlib

let workload_of_string = function
  | "gemm" -> Workloads.gemm ~m:64 ~n:64 ~k:64
  | "gemm-small" -> Workloads.gemm ~m:4 ~n:4 ~k:4
  | "batched-gemv" -> Workloads.batched_gemv ~m:16 ~n:64 ~k:64
  | "conv2d" -> Workloads.conv2d ~k:16 ~c:16 ~y:14 ~x:14 ~p:3 ~q:3
  | "conv2d-small" -> Workloads.conv2d ~k:4 ~c:4 ~y:4 ~x:4 ~p:3 ~q:3
  | "conv2d-strided" ->
    Workloads.conv2d_strided ~stride:2 ~k:8 ~c:8 ~y:7 ~x:7 ~p:3 ~q:3
  | "pointwise" -> Workloads.pointwise_conv ~k:16 ~c:16 ~y:14 ~x:14
  | "resnet-l2" -> Workloads.resnet_layer2
  | "resnet-l5" -> Workloads.resnet_layer5
  | "depthwise" -> Workloads.depthwise_conv ~k:32 ~y:14 ~x:14 ~p:3 ~q:3
  | "depthwise-small" -> Workloads.depthwise_conv ~k:4 ~y:4 ~x:4 ~p:3 ~q:3
  | "mttkrp" -> Workloads.mttkrp ~i:32 ~j:16 ~k:16 ~l:16
  | "mttkrp-small" -> Workloads.mttkrp ~i:4 ~j:4 ~k:4 ~l:4
  | "ttmc" -> Workloads.ttmc ~i:16 ~j:8 ~k:8 ~l:16 ~m:16
  | "ttmc-small" -> Workloads.ttmc ~i:4 ~j:4 ~k:3 ~l:4 ~m:4
  | s -> failwith ("unknown workload: " ^ s)

open Cmdliner

let workload_arg =
  let doc =
    "Workload: gemm, batched-gemv, conv2d, resnet-l2, resnet-l5, depthwise, \
     mttkrp, ttmc (append -small for netlist-sized instances)."
  in
  Arg.(value & opt string "gemm" & info [ "w"; "workload" ] ~doc)

let dataflow_arg =
  let doc = "Dataflow name, e.g. MNK-SST or KCX-STS." in
  Arg.(value & opt string "MNK-SST" & info [ "d"; "dataflow" ] ~doc)

let rows_arg =
  Arg.(value & opt int 8 & info [ "rows" ] ~doc:"PE array rows.")

let cols_arg =
  Arg.(value & opt int 8 & info [ "cols" ] ~doc:"PE array columns.")

let out_arg =
  Arg.(value & opt (some string) None
       & info [ "o"; "output" ] ~doc:"Output file (default stdout).")

let expr_arg =
  Arg.(value & opt (some string) None
       & info [ "e"; "expr" ]
           ~doc:"Custom einsum formula, e.g. \"C[m,n] += A[m,k] * B[n,k]\" \
                 (requires --extents).")

let extents_arg =
  Arg.(value & opt (some string) None
       & info [ "extents" ]
           ~doc:"Iterator extents for --expr as m=64,n=64,k=64 (nest order).")

let workload_of expr extents w =
  match expr with
  | None -> workload_of_string w
  | Some formula ->
    let extents =
      match extents with
      | None -> failwith "--expr requires --extents"
      | Some s ->
        List.map
          (fun kv ->
            match String.split_on_char '=' kv with
            | [ k; v ] -> (String.trim k, int_of_string (String.trim v))
            | _ -> failwith ("bad extent binding: " ^ kv))
          (String.split_on_char ',' s)
    in
    Parse.stmt formula ~extents

let select_arg =
  Arg.(value & opt (some string) None
       & info [ "select" ]
           ~doc:"Explicit loop selection (comma-separated iterator names) \
                 used with --matrix instead of a dataflow name.")

let matrix_arg =
  Arg.(value & opt (some string) None
       & info [ "matrix" ]
           ~doc:"Explicit STT matrix rows, e.g. \"1,0,0;0,1,0;1,1,1\".")

let resolve ?expr ?extents ?select ?matrix w d =
  let stmt = workload_of expr extents w in
  match (select, matrix) with
  | Some sel, Some m ->
    let names = List.map String.trim (String.split_on_char ',' sel) in
    let rows =
      List.map
        (fun row ->
          List.map
            (fun c -> int_of_string (String.trim c))
            (String.split_on_char ',' row))
        (String.split_on_char ';' m)
    in
    (stmt, Design.analyze (Transform.by_names stmt names ~matrix:rows))
  | Some _, None | None, Some _ ->
    failwith "--select and --matrix must be given together"
  | None, None -> (
    match Search.find_design stmt d with
    | Some design -> (stmt, design)
    | None ->
      failwith (Printf.sprintf "dataflow %s not realisable for %s" d w))

let analyze_cmd =
  let run w d expr extents select matrix =
    let _, design = resolve ?expr ?extents ?select ?matrix w d in
    Format.printf "%a@." Design.pp_report design;
    let inv = Inventory.of_design design in
    Format.printf "inventory (16x16): %a@.@." Inventory.pp inv;
    Format.printf "%a@." Topology.pp (Topology.describe design)
  in
  Cmd.v (Cmd.info "analyze" ~doc:"Dataflow analysis report for a design")
    Term.(const run $ workload_arg $ dataflow_arg $ expr_arg $ extents_arg
          $ select_arg $ matrix_arg)

let testbench_arg =
  Arg.(value & flag
       & info [ "testbench" ]
           ~doc:"Also emit a self-checking testbench (<output>_tb.v).")

let generate_cmd =
  let run w d rows cols out testbench expr extents =
    let stmt, design = resolve ?expr ?extents w d in
    let env = Exec.alloc_inputs stmt in
    let acc = Accel.generate ~rows ~cols design env in
    let v = Accel.verilog acc in
    (match out with
     | Some path ->
       let oc = open_out path in
       output_string oc v;
       close_out oc;
       Printf.printf "wrote %s (%d bytes, %d cycles schedule, %d banks)\n"
         path (String.length v) acc.Accel.total_cycles
         (List.length acc.Accel.banks);
       if testbench then begin
         let expected = Exec.run stmt env in
         let tb_path =
           (try Filename.chop_extension path with Invalid_argument _ -> path)
           ^ "_tb.v"
         in
         let oc = open_out tb_path in
         output_string oc (Accel.verilog_testbench acc ~expected);
         close_out oc;
         Printf.printf "wrote %s (self-checking testbench)\n" tb_path
       end
     | None ->
       print_string v;
       if testbench then begin
         let expected = Exec.run stmt env in
         print_string (Accel.verilog_testbench acc ~expected)
       end)
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate the accelerator and emit Verilog")
    Term.(const run $ workload_arg $ dataflow_arg $ rows_arg $ cols_arg
          $ out_arg $ testbench_arg $ expr_arg $ extents_arg)

let vcd_arg =
  Arg.(value & opt (some string) None
       & info [ "vcd" ] ~doc:"Dump a VCD waveform of the run to this file.")

let simulate_cmd =
  let run w d rows cols vcd_out expr extents select matrix =
    let stmt, design = resolve ?expr ?extents ?select ?matrix w d in
    let env = Exec.alloc_inputs stmt in
    let golden = Exec.run stmt env in
    let acc = Accel.generate ~rows ~cols design env in
    (match vcd_out with
     | None -> ()
     | Some path ->
       let sim = Sim.create acc.Accel.circuit in
       let vcd = Vcd.create sim acc.Accel.circuit in
       Vcd.cycles vcd (acc.Accel.total_cycles + 1);
       Vcd.write_file path vcd;
       Format.printf "vcd       : %s@." path);
    let got = Accel.execute acc in
    let st = Circuit.stats acc.Accel.circuit in
    Format.printf "design    : %s@." design.Design.name;
    Format.printf "netlist   : %a@." Circuit.pp_stats st;
    Format.printf "crit path : %d delay units@."
      (Circuit.critical_path acc.Accel.circuit);
    Format.printf "cycles    : %d@." acc.Accel.total_cycles;
    Format.printf "result    : %s@."
      (if Dense.equal golden got then "MATCHES golden model"
       else "MISMATCH vs golden model");
    if not (Dense.equal golden got) then exit 1
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Cycle-accurate simulation checked against the golden executor")
    Term.(const run $ workload_arg $ dataflow_arg $ rows_arg $ cols_arg
          $ vcd_arg $ expr_arg $ extents_arg $ select_arg $ matrix_arg)

let perf_cmd =
  let run w d expr extents =
    let stmt = workload_of expr extents w in
    match Perf.evaluate_name stmt d with
    | Some r ->
      Format.printf "%a@." Perf.pp_result r;
      Format.printf "  pipelined: %.0f cycles (%.3f of peak)@."
        r.Perf.pipelined_cycles r.Perf.pipelined_perf
    | None -> failwith ("not realisable: " ^ d)
  in
  Cmd.v
    (Cmd.info "perf" ~doc:"Cycle model on the paper's 16x16 / 320MHz setup")
    Term.(const run $ workload_arg $ dataflow_arg $ expr_arg $ extents_arg)

let list_cmd =
  let run w =
    let stmt = workload_of_string w in
    let all = Search.all_designs stmt in
    Printf.printf "%d letter-distinct dataflows for %s:\n" (List.length all) w;
    List.iter (fun (name, _) -> Printf.printf "  %s\n" name) all
  in
  Cmd.v
    (Cmd.info "list" ~doc:"Enumerate letter-distinct dataflow names")
    Term.(const run $ workload_arg)

let explore_cmd =
  let run w =
    let stmt = workload_of_string w in
    let points = Enumerate.design_space stmt in
    Printf.printf "%d distinct architectures\n" (List.length points);
    Printf.printf "%-14s %10s %10s\n" "design" "area" "power(mW)";
    let costed =
      List.map
        (fun p ->
          let r = Asic.evaluate p.Enumerate.design in
          (p, r))
        points
    in
    let front =
      Enumerate.pareto_min
        (fun (_, r) -> (r.Asic.area, r.Asic.power_mw))
        costed
    in
    List.iter
      (fun ((p : Enumerate.point), (r : Asic.report)) ->
        Printf.printf "%-14s %10.1f %10.1f%s\n" p.Enumerate.design.Design.name
          r.Asic.area r.Asic.power_mw
          (if List.exists (fun (q, _) -> q == p) front then "  *pareto*"
           else ""))
      (List.filteri (fun i _ -> i < 40) costed);
    if List.length costed > 40 then
      Printf.printf "... (%d more)\n" (List.length costed - 40)
  in
  Cmd.v
    (Cmd.info "explore" ~doc:"Design-space exploration with the ASIC model")
    Term.(const run $ workload_arg)

(* ---------------- lint ---------------- *)

let json_arg =
  Arg.(value & flag
       & info [ "json" ] ~doc:"Emit findings as JSON instead of text.")

let all_designs_arg =
  Arg.(value & flag
       & info [ "all" ]
           ~doc:"Also lint designs the netlist backend cannot realise \
                 (their L103/L105 findings are otherwise skipped along \
                 with generation).")

let suppress_arg =
  Arg.(value & opt string ""
       & info [ "suppress" ]
           ~doc:"Comma-separated rule IDs to suppress, e.g. L012,L104.")

let fanout_arg =
  Arg.(value & opt int 64
       & info [ "fanout-threshold" ]
           ~doc:"Fanout above which L012 reports a hotspot.")

let lint_dataflow_arg =
  Arg.(value & opt (some string) None
       & info [ "d"; "dataflow" ]
           ~doc:"Lint a single dataflow instead of every supported one.")

let lint_rows_arg =
  Arg.(value & opt int 16 & info [ "rows" ] ~doc:"PE array rows.")

let lint_cols_arg =
  Arg.(value & opt int 16 & info [ "cols" ] ~doc:"PE array columns.")

let lint_cmd =
  let run w rows cols json all suppress fanout d select matrix =
    let stmt = workload_of_string w in
    let suppress =
      if suppress = "" then []
      else List.map String.trim (String.split_on_char ',' suppress)
    in
    let nconfig = { Lint.Netlist.suppress; fanout_threshold = fanout } in
    let findings = ref [] and checked = ref 0 and generated = ref 0 in
    let add fs = findings := !findings @ fs in
    let env = Exec.alloc_inputs stmt in
    let lint_netlist (design : Design.t) =
      if Design.netlist_supported design then begin
        match Accel.generate ~rows ~cols design env with
        | exception Accel.Unsupported msg ->
          add
            (Lint.Finding.suppress ~rules:suppress
               [ Lint.Finding.v ~rule:"L106" ~target:design.Design.name
                   ~subject:"generator" msg ])
        | acc ->
          incr generated;
          add (Lint.Netlist.check_circuit ~config:nconfig acc.Accel.circuit)
      end
    in
    let lint_design design =
      incr checked;
      add (Lint.Design.check_design ~rows ~cols ~suppress design);
      lint_netlist design
    in
    (match (select, matrix) with
     | Some sel, Some m ->
       let names = List.map String.trim (String.split_on_char ',' sel) in
       let selected =
         Array.of_list
           (List.map (Iter.index_of stmt.Stmt.iters) names)
       in
       let rows_m =
         List.map
           (fun row ->
             List.map
               (fun c -> int_of_string (String.trim c))
               (String.split_on_char ',' row))
           (String.split_on_char ';' m)
       in
       incr checked;
       let fs, design =
         Lint.Design.check_matrix ~rows ~cols ~suppress stmt ~selected
           ~matrix:rows_m
       in
       add fs;
       Option.iter lint_netlist design
     | Some _, None | None, Some _ ->
       failwith "--select and --matrix must be given together"
     | None, None -> (
       match d with
       | Some name -> (
         match Search.find_design stmt name with
         | Some design -> lint_design design
         | None ->
           failwith
             (Printf.sprintf "dataflow %s not realisable for %s" name w))
       | None ->
         let designs = Search.all_designs stmt in
         let designs =
           if all then designs
           else
             List.filter
               (fun (_, dd) -> Design.netlist_supported dd)
               designs
         in
         List.iter (fun (_, dd) -> lint_design dd) designs));
    if json then print_string (Lint.Finding.to_json !findings)
    else begin
      Format.printf "%a@." Lint.Finding.pp_report !findings;
      Printf.printf "lint: %d design(s) checked, %d netlist(s) generated\n"
        !checked !generated
    end;
    if Lint.Finding.has_errors !findings then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Static analysis over every supported design of a workload: \
             STT validity rules plus netlist rules on the generated \
             accelerators; exits non-zero on any error-severity finding")
    Term.(const run $ workload_arg $ lint_rows_arg $ lint_cols_arg
          $ json_arg $ all_designs_arg $ suppress_arg $ fanout_arg
          $ lint_dataflow_arg $ select_arg $ matrix_arg)

let () =
  let info =
    Cmd.info "tensorlib" ~version:Tensorlib.version
      ~doc:"Spatial accelerator generation for tensor algebra (DAC'21)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ analyze_cmd; generate_cmd; simulate_cmd; perf_cmd; list_cmd;
            explore_cmd; lint_cmd ]))
