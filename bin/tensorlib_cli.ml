(* TensorLib command-line interface.

   tensorlib analyze  -w gemm -d MNK-SST          dataflow analysis report
   tensorlib generate -w gemm -d MNK-SST -o f.v   emit Verilog
   tensorlib simulate -w gemm -d MNK-SST          netlist sim vs golden
   tensorlib perf     -w conv2d -d KCX-SST        Fig.5-style cycle model
   tensorlib explore  -w gemm                     design-space sweep + cost
   tensorlib list     -w mttkrp                   letter-distinct dataflows
   tensorlib lint     -w gemm-small               static analysis gate
                                                  (exit 1 on any error)
   tensorlib fault    -w gemm-small -d MNK-SST    fault-injection campaign
                                                  (--harden / --abft)
   tensorlib profile  -w gemm-small -d MNK-SST    hardware counters vs model
                                                  + measured-activity power
                                                  (--trace chrome.json) *)

open Tensorlib

let workloads =
  [ ("gemm", fun () -> Workloads.gemm ~m:64 ~n:64 ~k:64);
    ("gemm-small", fun () -> Workloads.gemm ~m:4 ~n:4 ~k:4);
    ("batched-gemv", fun () -> Workloads.batched_gemv ~m:16 ~n:64 ~k:64);
    ("conv2d", fun () -> Workloads.conv2d ~k:16 ~c:16 ~y:14 ~x:14 ~p:3 ~q:3);
    ("conv2d-small",
     fun () -> Workloads.conv2d ~k:4 ~c:4 ~y:4 ~x:4 ~p:3 ~q:3);
    ("conv2d-strided",
     fun () -> Workloads.conv2d_strided ~stride:2 ~k:8 ~c:8 ~y:7 ~x:7 ~p:3 ~q:3);
    ("pointwise", fun () -> Workloads.pointwise_conv ~k:16 ~c:16 ~y:14 ~x:14);
    ("resnet-l2", fun () -> Workloads.resnet_layer2);
    ("resnet-l5", fun () -> Workloads.resnet_layer5);
    ("depthwise", fun () -> Workloads.depthwise_conv ~k:32 ~y:14 ~x:14 ~p:3 ~q:3);
    ("depthwise-small",
     fun () -> Workloads.depthwise_conv ~k:4 ~y:4 ~x:4 ~p:3 ~q:3);
    ("mttkrp", fun () -> Workloads.mttkrp ~i:32 ~j:16 ~k:16 ~l:16);
    ("mttkrp-small", fun () -> Workloads.mttkrp ~i:4 ~j:4 ~k:4 ~l:4);
    ("ttmc", fun () -> Workloads.ttmc ~i:16 ~j:8 ~k:8 ~l:16 ~m:16);
    ("ttmc-small", fun () -> Workloads.ttmc ~i:4 ~j:4 ~k:3 ~l:4 ~m:4) ]

let workload_of_string s =
  match List.assoc_opt s workloads with
  | Some f -> f ()
  | None ->
    failwith
      (Printf.sprintf "unknown workload %S; valid names: %s" s
         (String.concat ", " (List.map fst workloads)))

(* Argument validation: fail with an actionable message (and exit code 2,
   via [guard]) instead of a backtrace or a confusing elaboration error. *)

(* One validator for every numeric flag that must be strictly positive —
   identical message shape (and exit code 2, via [guard]) across commands,
   so scripts can match on it regardless of which flag they got wrong. *)
let require_positive flag v =
  if v < 1 then failwith (Printf.sprintf "%s must be >= 1; got %d" flag v)

let require_positive_opt flag = Option.iter (require_positive flag)

let validate_grid ~rows ~cols =
  if rows < 1 || cols < 1 then
    failwith
      (Printf.sprintf "PE array must be at least 1x1; got --rows %d --cols %d"
         rows cols)

let validate_widths ~data_width ~acc_width =
  let check flag w =
    if w < 1 || w > 62 then
      failwith
        (Printf.sprintf
           "%s must be between 1 and 62 bits (the simulator models signals \
            in 63-bit native ints); got %d"
           flag w)
  in
  check "--data-width" data_width;
  check "--acc-width" acc_width

(* Run a command body, turning [Failure] (our validation / lookup errors)
   into a one-line message on stderr and exit code 2. *)
let guard f =
  try f () with
  | Failure msg ->
    Printf.eprintf "tensorlib: error: %s\n" msg;
    exit 2

open Cmdliner

let workload_arg =
  let doc =
    "Workload: gemm, batched-gemv, conv2d, resnet-l2, resnet-l5, depthwise, \
     mttkrp, ttmc (append -small for netlist-sized instances)."
  in
  Arg.(value & opt string "gemm" & info [ "w"; "workload" ] ~doc)

let dataflow_arg =
  let doc = "Dataflow name, e.g. MNK-SST or KCX-STS." in
  Arg.(value & opt string "MNK-SST" & info [ "d"; "dataflow" ] ~doc)

let rows_arg =
  Arg.(value & opt int 8 & info [ "rows" ] ~doc:"PE array rows.")

let cols_arg =
  Arg.(value & opt int 8 & info [ "cols" ] ~doc:"PE array columns.")

let data_width_arg =
  Arg.(value & opt int 16
       & info [ "data-width" ] ~doc:"Input operand width in bits (1-62).")

let acc_width_arg =
  Arg.(value & opt int 32
       & info [ "acc-width" ] ~doc:"Accumulator width in bits (1-62).")

let backend_arg =
  Arg.(value & opt string "tape"
       & info [ "backend" ]
           ~doc:"Simulator backend: tape, closure, or batch (bit-sliced, \
                 62 trials per pass; fault campaigns and simulate only).")

let out_arg =
  Arg.(value & opt (some string) None
       & info [ "o"; "output" ] ~doc:"Output file (default stdout).")

let expr_arg =
  Arg.(value & opt (some string) None
       & info [ "e"; "expr" ]
           ~doc:"Custom einsum formula, e.g. \"C[m,n] += A[m,k] * B[n,k]\" \
                 (requires --extents).")

let extents_arg =
  Arg.(value & opt (some string) None
       & info [ "extents" ]
           ~doc:"Iterator extents for --expr as m=64,n=64,k=64 (nest order).")

let workload_of expr extents w =
  match expr with
  | None -> workload_of_string w
  | Some formula ->
    let extents =
      match extents with
      | None -> failwith "--expr requires --extents"
      | Some s ->
        List.map
          (fun kv ->
            match String.split_on_char '=' kv with
            | [ k; v ] -> (String.trim k, int_of_string (String.trim v))
            | _ -> failwith ("bad extent binding: " ^ kv))
          (String.split_on_char ',' s)
    in
    Parse.stmt formula ~extents

let select_arg =
  Arg.(value & opt (some string) None
       & info [ "select" ]
           ~doc:"Explicit loop selection (comma-separated iterator names) \
                 used with --matrix instead of a dataflow name.")

let matrix_arg =
  Arg.(value & opt (some string) None
       & info [ "matrix" ]
           ~doc:"Explicit STT matrix rows, e.g. \"1,0,0;0,1,0;1,1,1\".")

let resolve ?expr ?extents ?select ?matrix w d =
  let stmt = workload_of expr extents w in
  match (select, matrix) with
  | Some sel, Some m ->
    let names = List.map String.trim (String.split_on_char ',' sel) in
    let rows =
      List.map
        (fun row ->
          List.map
            (fun c -> int_of_string (String.trim c))
            (String.split_on_char ',' row))
        (String.split_on_char ';' m)
    in
    (stmt, Design.analyze (Transform.by_names stmt names ~matrix:rows))
  | Some _, None | None, Some _ ->
    failwith "--select and --matrix must be given together"
  | None, None -> (
    match Search.find_design stmt d with
    | Some design -> (stmt, design)
    | None ->
      failwith (Printf.sprintf "dataflow %s not realisable for %s" d w))

(* Programmable-target construction shared by [compile] and [serve]: size
   the descriptor memories to [headroom]× the generating design's natural
   schedule, so any compatible einsum within that envelope loads without
   re-elaboration. *)
let programmable_target ~rows ~cols ~data_width ~acc_width ~headroom stmt
    design =
  let l = Layout.build design ~rows ~cols in
  let nat_elems =
    List.fold_left
      (fun a (i : Layout.input) -> max a i.Layout.in_elems)
      1 l.Layout.l_inputs
  in
  let nat_bank =
    List.fold_left (fun a (_, cap, _) -> max a cap) 1 l.Layout.l_banks
  in
  let envelope =
    { Layout.env_cycles = headroom * l.Layout.l_total;
      env_passes = headroom * l.Layout.l_passes;
      env_elems = headroom * nat_elems;
      env_bank = headroom * nat_bank }
  in
  let env = Exec.alloc_inputs stmt in
  ( Accel.generate ~rows ~cols ~data_width ~acc_width ~programmable:envelope
      design env,
    envelope )

let json_arg =
  Arg.(value & flag
       & info [ "json" ] ~doc:"Emit findings as JSON instead of text.")

let sarif_arg =
  Arg.(value & opt (some string) None
       & info [ "sarif" ]
           ~doc:"Also write the findings as a SARIF 2.1.0 document to FILE."
           ~docv:"FILE")

let write_sarif ~tool path findings =
  let oc = open_out path in
  output_string oc (Lint.Finding.to_sarif ~tool findings);
  close_out oc

let netlist_arg =
  Arg.(value & flag
       & info [ "netlist" ]
           ~doc:"Run the abstract-interpretation proof engine over the \
                 generated netlist (overflow / address / write-schedule \
                 proofs and a width-narrowing estimate) instead of the \
                 dataflow report; exits 1 if any safety rule is unproven.")

let data_bound_arg =
  Arg.(value & opt (some int) None
       & info [ "data-bound" ]
           ~doc:"With --netlist: assume input elements lie in [-N, N] \
                 instead of using the pre-loaded data memories, so proofs \
                 transfer to any DMA-loaded data within that bound.")

let analyze_cmd =
  let run w d expr extents select matrix netlist rows cols dw aw data_bound
      json sarif =
    guard @@ fun () ->
    let stmt, design = resolve ?expr ?extents ?select ?matrix w d in
    if netlist then begin
      validate_grid ~rows ~cols;
      validate_widths ~data_width:dw ~acc_width:aw;
      let env = Exec.alloc_inputs stmt in
      let acc =
        Accel.generate ~rows ~cols ~data_width:dw ~acc_width:aw design env
      in
      let r = Absint.Report.of_accel ?data_bound acc in
      if json then print_string (Absint.Report.to_json r)
      else Format.printf "%a@." Absint.Report.pp r;
      Option.iter
        (fun path ->
          write_sarif ~tool:"tensorlib-analyze" path
            r.Absint.Report.findings)
        sarif;
      if not r.Absint.Report.safe then exit 1
    end
    else begin
      Format.printf "%a@." Design.pp_report design;
      let inv = Inventory.of_design design in
      Format.printf "inventory (16x16): %a@.@." Inventory.pp inv;
      Format.printf "%a@." Topology.pp (Topology.describe design)
    end
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Dataflow analysis report for a design; with --netlist, an \
             abstract-interpretation proof report over the generated \
             accelerator")
    Term.(const run $ workload_arg $ dataflow_arg $ expr_arg $ extents_arg
          $ select_arg $ matrix_arg $ netlist_arg $ rows_arg $ cols_arg
          $ data_width_arg $ acc_width_arg $ data_bound_arg $ json_arg
          $ sarif_arg)

let testbench_arg =
  Arg.(value & flag
       & info [ "testbench" ]
           ~doc:"Also emit a self-checking testbench (<output>_tb.v).")

let generate_cmd =
  let run w d rows cols dw aw out testbench expr extents =
    guard @@ fun () ->
    validate_grid ~rows ~cols;
    validate_widths ~data_width:dw ~acc_width:aw;
    let stmt, design = resolve ?expr ?extents w d in
    let env = Exec.alloc_inputs stmt in
    let acc =
      Accel.generate ~rows ~cols ~data_width:dw ~acc_width:aw design env
    in
    let v = Accel.verilog acc in
    (match out with
     | Some path ->
       let oc = open_out path in
       output_string oc v;
       close_out oc;
       Printf.printf "wrote %s (%d bytes, %d cycles schedule, %d banks)\n"
         path (String.length v) acc.Accel.total_cycles
         (List.length acc.Accel.banks);
       if testbench then begin
         let expected = Exec.run stmt env in
         let tb_path =
           (try Filename.chop_extension path with Invalid_argument _ -> path)
           ^ "_tb.v"
         in
         let oc = open_out tb_path in
         output_string oc (Accel.verilog_testbench acc ~expected);
         close_out oc;
         Printf.printf "wrote %s (self-checking testbench)\n" tb_path
       end
     | None ->
       print_string v;
       if testbench then begin
         let expected = Exec.run stmt env in
         print_string (Accel.verilog_testbench acc ~expected)
       end)
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate the accelerator and emit Verilog")
    Term.(const run $ workload_arg $ dataflow_arg $ rows_arg $ cols_arg
          $ data_width_arg $ acc_width_arg $ out_arg $ testbench_arg
          $ expr_arg $ extents_arg)

let vcd_arg =
  Arg.(value & opt (some string) None
       & info [ "vcd" ] ~doc:"Dump a VCD waveform of the run to this file.")

let simulate_cmd =
  let run w d rows cols dw aw vcd_out backend_s expr extents select matrix =
    guard @@ fun () ->
    validate_grid ~rows ~cols;
    validate_widths ~data_width:dw ~acc_width:aw;
    let backend = Cli_backend.of_string backend_s in
    let stmt, design = resolve ?expr ?extents ?select ?matrix w d in
    let env = Exec.alloc_inputs stmt in
    let golden = Exec.run stmt env in
    let acc =
      Accel.generate ~rows ~cols ~data_width:dw ~acc_width:aw design env
    in
    (match vcd_out with
     | None -> ()
     | Some path ->
       let sim = Sim.create acc.Accel.circuit in
       let vcd = Vcd.create sim acc.Accel.circuit in
       Vcd.cycles vcd (acc.Accel.total_cycles + 1);
       Vcd.write_file path vcd;
       Format.printf "vcd       : %s@." path);
    let got = Accel.execute ~backend acc in
    let st = Circuit.stats acc.Accel.circuit in
    Format.printf "design    : %s@." design.Design.name;
    Format.printf "netlist   : %a@." Circuit.pp_stats st;
    Format.printf "crit path : %d delay units@."
      (Circuit.critical_path acc.Accel.circuit);
    Format.printf "cycles    : %d@." acc.Accel.total_cycles;
    Format.printf "result    : %s@."
      (if Dense.equal golden got then "MATCHES golden model"
       else "MISMATCH vs golden model");
    if not (Dense.equal golden got) then exit 1
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Cycle-accurate simulation checked against the golden executor")
    Term.(const run $ workload_arg $ dataflow_arg $ rows_arg $ cols_arg
          $ data_width_arg $ acc_width_arg $ vcd_arg $ backend_arg
          $ expr_arg $ extents_arg $ select_arg $ matrix_arg)

let perf_cmd =
  let run w d expr extents =
    guard @@ fun () ->
    let stmt = workload_of expr extents w in
    match Perf.evaluate_name stmt d with
    | Some r ->
      Format.printf "%a@." Perf.pp_result r;
      Format.printf "  pipelined: %.0f cycles (%.3f of peak)@."
        r.Perf.pipelined_cycles r.Perf.pipelined_perf
    | None -> failwith ("not realisable: " ^ d)
  in
  Cmd.v
    (Cmd.info "perf" ~doc:"Cycle model on the paper's 16x16 / 320MHz setup")
    Term.(const run $ workload_arg $ dataflow_arg $ expr_arg $ extents_arg)

let list_cmd =
  let run w =
    guard @@ fun () ->
    let stmt = workload_of_string w in
    let all = Search.all_designs stmt in
    Printf.printf "%d letter-distinct dataflows for %s:\n" (List.length all) w;
    List.iter (fun (name, _) -> Printf.printf "  %s\n" name) all
  in
  Cmd.v
    (Cmd.info "list" ~doc:"Enumerate letter-distinct dataflow names")
    Term.(const run $ workload_arg)

let explore_cmd =
  let run w =
    guard @@ fun () ->
    let stmt = workload_of_string w in
    let points = Enumerate.design_space stmt in
    Printf.printf "%d distinct architectures\n" (List.length points);
    Printf.printf "%-14s %10s %10s\n" "design" "area" "power(mW)";
    let costed =
      List.map
        (fun p ->
          let r = Asic.evaluate p.Enumerate.design in
          (p, r))
        points
    in
    let front =
      Enumerate.pareto_min
        (fun (_, r) -> (r.Asic.area, r.Asic.power_mw))
        costed
    in
    List.iter
      (fun ((p : Enumerate.point), (r : Asic.report)) ->
        Printf.printf "%-14s %10.1f %10.1f%s\n" p.Enumerate.design.Design.name
          r.Asic.area r.Asic.power_mw
          (if List.exists (fun (q, _) -> q == p) front then "  *pareto*"
           else ""))
      (List.filteri (fun i _ -> i < 40) costed);
    if List.length costed > 40 then
      Printf.printf "... (%d more)\n" (List.length costed - 40)
  in
  Cmd.v
    (Cmd.info "explore" ~doc:"Design-space exploration with the ASIC model")
    Term.(const run $ workload_arg)

(* ---------------- lint ---------------- *)

let all_designs_arg =
  Arg.(value & flag
       & info [ "all" ]
           ~doc:"Also lint designs the netlist backend cannot realise \
                 (their L103/L105 findings are otherwise skipped along \
                 with generation).")

let suppress_arg =
  Arg.(value & opt string ""
       & info [ "suppress" ]
           ~doc:"Comma-separated rule IDs to suppress, e.g. L012,L104.")

let fanout_arg =
  Arg.(value & opt int 64
       & info [ "fanout-threshold" ]
           ~doc:"Fanout above which L012 reports a hotspot.")

let lint_dataflow_arg =
  Arg.(value & opt (some string) None
       & info [ "d"; "dataflow" ]
           ~doc:"Lint a single dataflow instead of every supported one.")

let lint_rows_arg =
  Arg.(value & opt int 16 & info [ "rows" ] ~doc:"PE array rows.")

let lint_cols_arg =
  Arg.(value & opt int 16 & info [ "cols" ] ~doc:"PE array columns.")

let hardened_arg =
  Arg.(value & flag
       & info [ "hardened" ]
           ~doc:"Lint the hardened (TMR + parity) variant of each design \
                 and check every writable memory bank has a parity \
                 companion (rule L015).")

let lint_cmd =
  let run w rows cols json sarif all suppress fanout d select matrix hardened
      =
    guard @@ fun () ->
    validate_grid ~rows ~cols;
    let stmt = workload_of_string w in
    let suppress =
      if suppress = "" then []
      else List.map String.trim (String.split_on_char ',' suppress)
    in
    let nconfig = { Lint.Netlist.suppress; fanout_threshold = fanout } in
    let findings = ref [] and checked = ref 0 and generated = ref 0 in
    let add fs = findings := !findings @ fs in
    let env = Exec.alloc_inputs stmt in
    let harden = if hardened then Harden.full else Harden.none in
    let lint_netlist (design : Design.t) =
      if Design.netlist_supported design then begin
        match Accel.generate ~rows ~cols ~harden design env with
        | exception Accel.Unsupported msg ->
          add
            (Lint.Finding.suppress ~rules:suppress
               [ Lint.Finding.v ~rule:"L106" ~target:design.Design.name
                   ~subject:"generator" msg ])
        | acc ->
          incr generated;
          add (Lint.Netlist.check_circuit ~config:nconfig acc.Accel.circuit);
          let table = Fault.table acc.Accel.circuit in
          add
            (Lint.Netlist.check_fault_surface ~config:nconfig
               ~injectable:(Fault.injectable_reg table) acc.Accel.circuit);
          if hardened then begin
            let pairs = acc.Accel.hardening.Harden.parity_pairs in
            let protected (r : Signal.ram) =
              List.exists
                (fun ((d : Signal.ram), (p : Signal.ram)) ->
                  d.Signal.ram_id = r.Signal.ram_id
                  || p.Signal.ram_id = r.Signal.ram_id)
                pairs
            in
            add
              (Lint.Netlist.check_hardening ~config:nconfig ~protected
                 acc.Accel.circuit)
          end
      end
    in
    let lint_design design =
      incr checked;
      add (Lint.Design.check_design ~rows ~cols ~suppress design);
      lint_netlist design
    in
    (match (select, matrix) with
     | Some sel, Some m ->
       let names = List.map String.trim (String.split_on_char ',' sel) in
       let selected =
         Array.of_list
           (List.map (Iter.index_of stmt.Stmt.iters) names)
       in
       let rows_m =
         List.map
           (fun row ->
             List.map
               (fun c -> int_of_string (String.trim c))
               (String.split_on_char ',' row))
           (String.split_on_char ';' m)
       in
       incr checked;
       let fs, design =
         Lint.Design.check_matrix ~rows ~cols ~suppress stmt ~selected
           ~matrix:rows_m
       in
       add fs;
       Option.iter lint_netlist design
     | Some _, None | None, Some _ ->
       failwith "--select and --matrix must be given together"
     | None, None -> (
       match d with
       | Some name -> (
         match Search.find_design stmt name with
         | Some design -> lint_design design
         | None ->
           failwith
             (Printf.sprintf "dataflow %s not realisable for %s" name w))
       | None ->
         let designs = Search.all_designs stmt in
         let designs =
           if all then designs
           else
             List.filter
               (fun (_, dd) -> Design.netlist_supported dd)
               designs
         in
         List.iter (fun (_, dd) -> lint_design dd) designs));
    if json then print_string (Lint.Finding.to_json !findings)
    else begin
      Format.printf "%a@." Lint.Finding.pp_report !findings;
      Printf.printf "lint: %d design(s) checked, %d netlist(s) generated\n"
        !checked !generated
    end;
    Option.iter
      (fun path -> write_sarif ~tool:"tensorlib-lint" path !findings)
      sarif;
    if Lint.Finding.has_errors !findings then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Static analysis over every supported design of a workload: \
             STT validity rules plus netlist rules on the generated \
             accelerators; exits non-zero on any error-severity finding")
    Term.(const run $ workload_arg $ lint_rows_arg $ lint_cols_arg
          $ json_arg $ sarif_arg $ all_designs_arg $ suppress_arg
          $ fanout_arg $ lint_dataflow_arg $ select_arg $ matrix_arg
          $ hardened_arg)

(* ---------------- fault ---------------- *)

let harden_of_string = function
  | "none" -> Harden.none
  | "tmr" -> Harden.tmr_only
  | "parity" -> Harden.parity_only
  | "full" -> Harden.full
  | s ->
    failwith
      (Printf.sprintf
         "unknown hardening level %S; valid: none, tmr, parity, full" s)

let trials_arg =
  Arg.(value & opt int 1000
       & info [ "trials" ] ~doc:"Number of fault injections.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Campaign RNG seed.")

let harden_arg =
  Arg.(value & opt string "none"
       & info [ "harden" ]
           ~doc:"Hardening level: none, tmr, parity or full (tmr+parity).")

let abft_arg =
  Arg.(value & flag
       & info [ "abft" ]
           ~doc:"Run the checksum-augmented (ABFT) problem and verify \
                 row/column checksums of faulty outputs (GEMM-class \
                 workloads only).")

let fault_cmd =
  let run w d rows cols dw aw trials seed harden_s abft backend_s json =
    guard @@ fun () ->
    validate_grid ~rows ~cols;
    validate_widths ~data_width:dw ~acc_width:aw;
    require_positive "--trials" trials;
    let harden = harden_of_string harden_s in
    let backend = Cli_backend.of_string backend_s in
    let stmt = workload_of_string w in
    let env = Exec.alloc_inputs stmt in
    let stmt, env =
      if not abft then (stmt, env)
      else
        match Abft.augment stmt env with
        | Some (s, e) -> (s, e)
        | None ->
          failwith
            (Printf.sprintf
               "--abft: workload %s is not a GEMM-class statement \
                (C[m,n] += A[m,k] * B[n,k])"
               w)
    in
    let design =
      match Search.find_design stmt d with
      | Some design -> design
      | None -> failwith (Printf.sprintf "dataflow %s not realisable for %s" d w)
    in
    let generate harden =
      Accel.generate ~rows ~cols ~data_width:dw ~acc_width:aw ~harden design
        env
    in
    let acc = generate harden in
    let config =
      { Campaign.default_config with trials; seed; backend; abft }
    in
    let report = Campaign.run ~config acc in
    let overhead =
      if Harden.is_none harden then None
      else begin
        let base = generate Harden.none in
        let cb = Asic.evaluate_netlist base.Accel.circuit in
        let ch = Asic.evaluate_netlist acc.Accel.circuit in
        let pct f b = 100.0 *. (f -. b) /. b in
        Some (pct ch.Asic.area cb.Asic.area, pct ch.Asic.power_mw cb.Asic.power_mw)
      end
    in
    if json then begin
      let extra =
        match overhead with
        | None -> []
        | Some (area, power) ->
          [ ("hardening_overhead",
             Printf.sprintf "{\"area_pct\": %.2f, \"power_pct\": %.2f}" area
               power) ]
      in
      print_string (Campaign.to_json ~extra report);
      print_newline ()
    end
    else begin
      Format.printf "%a" Campaign.pp report;
      match overhead with
      | None -> ()
      | Some (area, power) ->
        Format.printf "hardening overhead vs baseline: area %+.2f%%, \
                       power %+.2f%%@."
          area power
    end
  in
  Cmd.v
    (Cmd.info "fault"
       ~doc:"Fault-injection campaign: inject seeded bit-flips / stuck-at \
             faults into the simulated accelerator, classify each trial \
             as masked, detected, hang or SDC, and report per-module \
             vulnerability (plus ASIC-model overhead when hardened)")
    Term.(const run $ workload_arg $ dataflow_arg $ rows_arg $ cols_arg
          $ data_width_arg $ acc_width_arg $ trials_arg $ seed_arg
          $ harden_arg $ abft_arg $ backend_arg $ json_arg)

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ]
           ~doc:"Write a Chrome trace_event JSON file (chrome://tracing / \
                 Perfetto) spanning the generate / simulate / probe phases.")

let profile_cmd =
  let run w d rows cols dw aw backend_s json trace_file =
    guard @@ fun () ->
    validate_grid ~rows ~cols;
    validate_widths ~data_width:dw ~acc_width:aw;
    (* the counter cross-check and activity-measured power probe scalar
       state, so the bit-sliced backend is not meaningful here *)
    let backend =
      Cli_backend.of_string ~allowed:[ "tape"; "closure" ] backend_s
    in
    let stmt = workload_of_string w in
    let env = Exec.alloc_inputs stmt in
    let design =
      match Search.find_design stmt d with
      | Some design -> design
      | None -> failwith (Printf.sprintf "dataflow %s not realisable for %s" d w)
    in
    let trace = Obs.Trace.create () in
    let clock = Unix.gettimeofday in
    let span name f = Obs.Trace.span trace ~clock ~cat:"profile" ~name f in
    let acc =
      span "generate" @@ fun () ->
      Accel.generate ~rows ~cols ~data_width:dw ~acc_width:aw ~counters:true
        design env
    in
    let validation =
      span "validate-counters" @@ fun () -> Obs.Counters.validate ~backend acc
    in
    let power =
      span "measure-power" @@ fun () -> Obs.Power.measure ~backend acc
    in
    (match trace_file with
     | None -> ()
     | Some path -> Obs.Trace.write_file path trace);
    if json then
      Printf.printf
        "{ \"schema\": \"tensorlib-profile/1\",\n\
        \  \"counters\": %s,\n\
        \  \"power\": %s }\n"
        (Obs.Counters.to_json validation)
        (Obs.Power.to_json power)
    else begin
      Format.printf "%a@." Obs.Counters.pp validation;
      Format.printf "%a@." Obs.Power.pp power
    end;
    if not validation.Obs.Counters.v_ok then exit 1
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Observability run: generate with hardware performance counters, \
             simulate to completion, cross-check every counter read-out \
             against the analytic performance model, and report power under \
             assumed vs measured activity (exit 1 on any counter mismatch)")
    Term.(const run $ workload_arg $ dataflow_arg $ rows_arg $ cols_arg
          $ data_width_arg $ acc_width_arg $ backend_arg $ json_arg
          $ trace_arg)

(* ---------------- compile ---------------- *)

let headroom_arg =
  Arg.(value & opt int 4
       & info [ "headroom" ]
           ~doc:"Capacity envelope multiplier: descriptor memories are \
                 sized to N times the target design's natural schedule.")

let run_check_arg =
  Arg.(value & flag
       & info [ "run" ]
           ~doc:"Also execute the program on the programmable netlist and \
                 check the output bit-identical against both the golden \
                 executor and a freshly generated ROM accelerator (exit 1 \
                 on mismatch).")

let compile_cmd =
  let run w d rows cols dw aw headroom expr extents out run_check backend_s =
    guard @@ fun () ->
    validate_grid ~rows ~cols;
    validate_widths ~data_width:dw ~acc_width:aw;
    require_positive "--headroom" headroom;
    let backend =
      Cli_backend.of_string ~allowed:[ "tape"; "closure" ] backend_s
    in
    (* the target netlist comes from the named workload + dataflow; the
       request einsum from --expr/--extents (default: the target itself) *)
    let tstmt, tdesign = resolve w d in
    let target, envelope =
      programmable_target ~rows ~cols ~data_width:dw ~acc_width:aw ~headroom
        tstmt tdesign
    in
    let rstmt = workload_of expr extents w in
    match Compile.find_design ~target rstmt with
    | Error rejections ->
      List.iter
        (fun (name, e) ->
          Printf.eprintf "  %-14s %s\n" name (Compile.error_to_string e))
        rejections;
      failwith
        (Printf.sprintf
           "no dataflow of %s compiles onto the %s target (%d candidates \
            rejected, reasons above)"
           rstmt.Stmt.name tdesign.Design.name
           (List.length rejections))
    | Ok (rdesign, program) ->
      let doc = Compile.program_to_json program in
      let est =
        Perf.estimate_program ~rows ~cols program
      in
      (match out with
       | Some path ->
         let oc = open_out path in
         output_string oc doc;
         output_char oc '\n';
         close_out oc;
         Printf.printf "wrote %s (%d bytes)\n" path (String.length doc)
       | None -> print_endline doc);
      Printf.eprintf
        "compiled %s as %s onto %s (envelope %d cycles / %d passes); %d \
         descriptor words, %d cycles, %d macs\n"
        rstmt.Stmt.name rdesign.Design.name tdesign.Design.name
        envelope.Layout.env_cycles envelope.Layout.env_passes
        est.Perf.pe_program_words est.Perf.pe_cycles est.Perf.pe_macs;
      if run_check then begin
        let renv = Exec.alloc_inputs rstmt in
        let golden = Exec.run rstmt renv in
        let got = Accel.execute_program ~backend target program renv in
        let rom =
          Accel.generate ~rows ~cols ~data_width:dw ~acc_width:aw rdesign
            renv
        in
        let rom_out = Accel.execute ~backend rom in
        let ok_golden = Dense.equal got golden in
        let ok_rom = Dense.equal got rom_out in
        Printf.printf "programmed run : %s golden model\n"
          (if ok_golden then "MATCHES" else "MISMATCH vs");
        Printf.printf "ROM differential: %s per-shape ROM build\n"
          (if ok_rom then "MATCHES" else "MISMATCH vs");
        if not (ok_golden && ok_rom) then exit 1
      end
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:"Compile an einsum onto an already-generated programmable \
             netlist: generate the target (workload + dataflow, schedule \
             tables in writable descriptor memories sized by --headroom), \
             re-run scheduling in software for the request (--expr / \
             --extents), and emit the descriptor program as JSON; with \
             --run, execute it and differential-check against the golden \
             executor and a per-shape ROM build.")
    Term.(const run $ workload_arg $ dataflow_arg $ rows_arg $ cols_arg
          $ data_width_arg $ acc_width_arg $ headroom_arg $ expr_arg
          $ extents_arg $ out_arg $ run_check_arg $ backend_arg)

(* ---------------- sweep / serve ---------------- *)

let network_names () = List.map fst (Network.networks ())

let network_of_string name =
  match List.assoc_opt name (Network.networks ()) with
  | Some layers -> layers
  | None ->
    failwith
      (Printf.sprintf "unknown network %S; valid names: %s%s" name
         (String.concat ", " (network_names ()))
         (Cli_backend.suggest ~valid:(network_names ()) name))

let store_of_path = function
  | None -> Store.open_store ()
  | Some dir ->
    let parent = Filename.dirname dir in
    if not (Sys.file_exists parent && Sys.is_directory parent) then
      failwith
        (Printf.sprintf
           "--store: parent directory %S does not exist (create it first)"
           parent);
    Store.open_store ~root:dir ()

let layer_json (l : Network.layer) =
  let best =
    match l.Network.l_best with
    | None -> Json.Null
    | Some p ->
      Json.Obj
        [ ("design", Json.Str p.Network.p_perf.Perf.design_name);
          ("cycles", Json.Num p.Network.p_perf.Perf.cycles);
          ("runtime_us", Json.Num p.Network.p_perf.Perf.runtime_us);
          ("area", Json.Num p.Network.p_area);
          ("power_mw", Json.Num p.Network.p_power) ]
  in
  Json.Obj
    [ ("name", Json.Str l.Network.l_name);
      ("hit", Json.Bool l.Network.l_hit);
      ("points", Json.Num (float_of_int l.Network.l_points));
      ("frontier", Json.Num (float_of_int (List.length l.Network.l_frontier)));
      ("best", best);
      ("degraded", Json.Bool l.Network.l_degraded);
      ("est_cycles",
       match l.Network.l_est_cycles with
       | None -> Json.Null
       | Some c -> Json.Num c) ]

let report_json (r : Network.report) =
  Json.Obj
    [ ("schema", Json.Str "tensorlib-sweep/1");
      ("network", Json.Str r.Network.r_network);
      ("layers", Json.List (List.map layer_json r.Network.r_layers));
      ("unique_shapes", Json.Num (float_of_int r.Network.r_unique_shapes));
      ("points", Json.Num (float_of_int r.Network.r_points));
      ("total_cycles", Json.Num r.Network.r_total_cycles);
      ("total_runtime_us", Json.Num r.Network.r_total_runtime_us);
      ("total_area", Json.Num r.Network.r_total_area);
      ("total_power_mw", Json.Num r.Network.r_total_power);
      ("hits", Json.Num (float_of_int r.Network.r_hits));
      ("misses", Json.Num (float_of_int r.Network.r_misses));
      ("hit_rate", Json.Num r.Network.r_hit_rate);
      ("digest", Json.Str r.Network.r_digest);
      ("complete", Json.Bool r.Network.r_complete);
      ("degraded_shapes", Json.Num (float_of_int r.Network.r_degraded_shapes));
      ("resumed_shapes", Json.Num (float_of_int r.Network.r_resumed_shapes)) ]

let print_report_text (r : Network.report) =
  List.iter
    (fun (l : Network.layer) ->
      match l.Network.l_best with
      | None when l.Network.l_degraded ->
        Printf.printf "%-12s DEGRADED  estimate only: %10.0f cyc\n"
          l.Network.l_name
          (Option.value l.Network.l_est_cycles ~default:0.)
      | None ->
        Printf.printf "%-12s %s  no evaluable design point\n" l.Network.l_name
          (if l.Network.l_hit then "hit " else "miss")
      | Some p ->
        Printf.printf
          "%-12s %s  %6d pts  %3d pareto  best %-12s %10.0f cyc %8.1f mW\n"
          l.Network.l_name
          (if l.Network.l_hit then "hit " else "miss")
          l.Network.l_points
          (List.length l.Network.l_frontier)
          p.Network.p_perf.Perf.design_name p.Network.p_perf.Perf.cycles
          p.Network.p_power)
    r.Network.r_layers;
  Printf.printf
    "network %s: %d layers, %d unique shapes, %d points, store hit rate \
     %.0f%%\n"
    r.Network.r_network
    (List.length r.Network.r_layers)
    r.Network.r_unique_shapes r.Network.r_points
    (100. *. r.Network.r_hit_rate);
  Printf.printf
    "totals (per-layer winners): %.0f cycles, %.1f us, area %.0f, %.1f mW\n"
    r.Network.r_total_cycles r.Network.r_total_runtime_us
    r.Network.r_total_area r.Network.r_total_power;
  if not r.Network.r_complete then
    Printf.printf
      "PARTIAL result: %d of %d unique shapes degraded to estimates (budget \
       expired or fault injected); totals include per-layer estimates\n"
      r.Network.r_degraded_shapes r.Network.r_unique_shapes;
  if r.Network.r_resumed_shapes > 0 then
    Printf.printf "resumed: %d shapes restored from checkpoint\n"
      r.Network.r_resumed_shapes;
  Printf.printf "result digest: %s\n" r.Network.r_digest

let network_arg =
  let doc = "Network to sweep: resnet18, bert-base or tiny." in
  Arg.(value & opt string "resnet18" & info [ "n"; "network" ] ~doc)

let store_arg =
  Arg.(value & opt (some string) None
       & info [ "store" ]
           ~doc:"Persistent design-store directory (created on first use; \
                 parent must exist).  Omit for an in-memory store."
           ~docv:"DIR")

let limit_arg =
  Arg.(value & opt (some int) None
       & info [ "limit" ]
           ~doc:"Evaluate at most N design points per unique shape (the cap \
                 is part of the store key).")

let resume_arg =
  Arg.(value & flag
       & info [ "resume" ]
           ~doc:"Resume an interrupted sweep from its checkpoint (requires \
                 --store; the checkpoint lives next to the store).  Shapes \
                 completed before the interruption are served from the \
                 store, so the final digest is bit-identical to an \
                 uninterrupted run.")

let deadline_ms_arg =
  Arg.(value & opt (some int) None
       & info [ "deadline-ms" ]
           ~doc:"Wall-clock budget in milliseconds.  On expiry the sweep \
                 returns a PARTIAL result: Pareto frontiers for completed \
                 shapes, estimate-only fallbacks (flagged degraded) for the \
                 rest."
           ~docv:"MS")

let budget_checks_arg =
  Arg.(value & opt (some int) None
       & info [ "budget-checks" ]
           ~doc:"Deterministic work budget: the sweep stops after N \
                 cooperative budget polls (useful for reproducible partial \
                 results in tests; deterministic at pool width 1)."
           ~docv:"N")

let budget_of ~deadline_ms ~budget_checks =
  require_positive_opt "--deadline-ms" deadline_ms;
  require_positive_opt "--budget-checks" budget_checks;
  match (deadline_ms, budget_checks) with
  | Some _, Some _ -> failwith "--deadline-ms and --budget-checks conflict"
  | Some ms, None ->
    Tensorlib.Resil.Budget.of_seconds (float_of_int ms /. 1000.)
  | None, Some n -> Tensorlib.Resil.Budget.of_checks n
  | None, None -> Tensorlib.Resil.Budget.unlimited

let checkpoint_of store_dir name =
  Option.map
    (fun dir -> Filename.concat dir ("sweep-" ^ name ^ ".ckpt"))
    store_dir

let sweep_cmd =
  let run name store_dir limit json resume deadline_ms budget_checks =
    guard @@ fun () ->
    require_positive_opt "--limit" limit;
    if resume && store_dir = None then
      failwith "--resume requires --store (the checkpoint lives next to it)";
    let budget = budget_of ~deadline_ms ~budget_checks in
    let layers = network_of_string name in
    let store = store_of_path store_dir in
    let checkpoint = checkpoint_of store_dir name in
    let progress =
      if json then None
      else
        Some
          (fun (p : Network.progress) ->
            Printf.eprintf "[%d/%d] %-12s %s\n%!" p.Network.pr_done
              p.Network.pr_total p.Network.pr_layer
              (if p.Network.pr_hit then
                 Printf.sprintf "hit  (%d points)" p.Network.pr_points
               else Printf.sprintf "computed %d points" p.Network.pr_points))
    in
    let r =
      Network.sweep ?per_shape_limit:limit ?progress ~budget ?checkpoint
        ~resume ~store ~name layers
    in
    if json then print_endline (Json.to_string (report_json r))
    else print_report_text r
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Whole-network design-space sweep through the persistent design \
             store: dedup layers by canonical shape, enumerate + evaluate \
             each unique shape once (or load it from the store), report \
             per-layer Pareto winners and network totals.  Budgets \
             (--deadline-ms / --budget-checks) degrade gracefully to \
             PARTIAL results; --resume continues an interrupted sweep from \
             its checkpoint.")
    Term.(const run $ network_arg $ store_arg $ limit_arg $ json_arg
          $ resume_arg $ deadline_ms_arg $ budget_checks_arg)

(* serve: one JSON request per stdin line, one JSON response per line.
   Requests: {"id": .., "network": "tiny"}
          or {"id": .., "expr": "C[m,n] += A[m,k] * B[n,k]",
              "extents": "m=64,n=64,k=64"}
   Responses echo the id and carry the sweep roll-up plus the store's
   per-request hit counts; malformed requests answer {"ok": false, ...}
   without stopping the loop. *)

let extents_of_string s =
  List.map
    (fun kv ->
      match String.split_on_char '=' kv with
      | [ k; v ] -> (
        match int_of_string_opt (String.trim v) with
        | Some n -> (String.trim k, n)
        | None -> failwith ("bad extent binding: " ^ kv))
      | _ -> failwith ("bad extent binding: " ^ kv))
    (String.split_on_char ',' s)

(* Program request against the standing programmable netlist
   (--accel-workload): compile the einsum to a descriptor program, load
   and run it on the server's one amortised simulator, verify against the
   golden executor, and answer with the program document itself. *)
let serve_program ~accel ~id req =
  match accel with
  | None ->
    failwith
      "server started without --accel-workload; \"einsum\" requests \
       unavailable"
  | Some ((target : Accel.t), sim) -> (
    let formula = Option.get (Json.mem_string req "einsum") in
    let extents =
      match Json.mem_string req "extents" with
      | None -> failwith "\"einsum\" requires \"extents\""
      | Some s -> extents_of_string s
    in
    let stmt = Parse.stmt formula ~extents in
    match Compile.find_design ~target stmt with
    | Error rejections ->
      let head =
        match rejections with
        | (name, e) :: _ ->
          Printf.sprintf " (%s: %s)" name (Compile.error_to_string e)
        | [] -> ""
      in
      failwith
        (Printf.sprintf
           "no dataflow of %s compiles onto the %s target; %d candidates \
            rejected%s"
           stmt.Stmt.name target.Accel.design.Design.name
           (List.length rejections) head)
    | Ok (design, program) ->
      let env = Exec.alloc_inputs stmt in
      let golden = Exec.run stmt env in
      let got = Accel.execute_program ~sim target program env in
      let verified = Dense.equal got golden in
      if not verified then
        failwith "golden verification of the programmed run failed";
      let est =
        Perf.estimate_program ~rows:target.Accel.rows
          ~cols:target.Accel.cols program
      in
      let program_json =
        match Json.parse (Compile.program_to_json program) with
        | Ok j -> j
        | Error _ -> Json.Null
      in
      Json.Obj
        [ ("id", id);
          ("ok", Json.Bool true);
          ("design", Json.Str design.Design.name);
          ("verified", Json.Bool verified);
          ("cycles", Json.Num (float_of_int est.Perf.pe_cycles));
          ("macs", Json.Num (float_of_int est.Perf.pe_macs));
          ("program_words",
           Json.Num (float_of_int est.Perf.pe_program_words));
          ("program", program_json) ])

let serve_request ?deadline_ms ?accel store limit line =
  let fail id msg =
    Json.Obj
      (("id", id) :: [ ("ok", Json.Bool false); ("error", Json.Str msg) ])
  in
  match Json.parse line with
  | Error msg -> fail Json.Null ("bad request: " ^ msg)
  | Ok req when Json.mem_string req "einsum" <> None -> (
    let id = Option.value (Json.member "id" req) ~default:Json.Null in
    match serve_program ~accel ~id req with
    | exception Failure msg -> fail id msg
    | answer -> answer)
  | Ok req -> (
    let id = Option.value (Json.member "id" req) ~default:Json.Null in
    let layers_of () =
      match (Json.mem_string req "network", Json.mem_string req "expr") with
      | Some name, _ -> (name, network_of_string name)
      | None, Some formula ->
        let extents =
          match Json.mem_string req "extents" with
          | None -> failwith "\"expr\" requires \"extents\""
          | Some s -> extents_of_string s
        in
        let stmt = Parse.stmt formula ~extents in
        ("adhoc", [ (stmt.Stmt.name, stmt) ])
      | None, None ->
        failwith "request needs \"network\", \"expr\" or \"einsum\""
    in
    match layers_of () with
    | exception Failure msg -> fail id msg
    | name, layers -> (
      let before = Store.stats store in
      (* a fresh budget per request: one slow request degrades its own
         answer, never the server or the requests behind it *)
      let budget =
        match deadline_ms with
        | None -> Tensorlib.Resil.Budget.unlimited
        | Some ms ->
          Tensorlib.Resil.Budget.of_seconds ~label:"serve-request"
            (float_of_int ms /. 1000.)
      in
      match Network.sweep ?per_shape_limit:limit ~budget ~store ~name layers with
      | exception Failure msg -> fail id msg
      | r when not r.Network.r_complete -> fail id "deadline"
      | r ->
        let after = Store.stats store in
        let req_hits = after.Par.Cache.hits - before.Par.Cache.hits in
        let req_misses = after.Par.Cache.misses - before.Par.Cache.misses in
        let req_total = req_hits + req_misses in
        Json.Obj
          [ ("id", id);
            ("ok", Json.Bool true);
            ("report", report_json r);
            ("store_hits", Json.Num (float_of_int req_hits));
            ("store_misses", Json.Num (float_of_int req_misses));
            ("store_hit_rate",
             Json.Num
               (if req_total = 0 then 1.
                else float_of_int req_hits /. float_of_int req_total)) ]))

(* Bounded request reader: the server never buffers more than the cap no
   matter what arrives on stdin. *)
type bounded_line =
  | Line of string  (* complete newline-terminated line *)
  | Last of string  (* final line, terminated by EOF instead of '\n' *)
  | Oversized  (* line exceeded the cap; the rest was drained *)
  | Eof  (* clean EOF at a line boundary (or stdin I/O error) *)

let read_bounded_line ~max_bytes ic =
  let buf = Buffer.create 256 in
  let rec drain () =
    match input_char ic with
    | exception (End_of_file | Sys_error _) -> ()
    | '\n' -> ()
    | _ -> drain ()
  in
  let rec go n =
    match input_char ic with
    | exception End_of_file ->
      if Buffer.length buf = 0 then Eof else Last (Buffer.contents buf)
    | exception Sys_error _ -> Eof (* stdin broke: shut down cleanly *)
    | '\n' -> Line (Buffer.contents buf)
    | _ when n >= max_bytes -> drain (); Oversized
    | c ->
      Buffer.add_char buf c;
      go (n + 1)
  in
  go 0

let serve_cmd =
  let run store_dir limit max_request_bytes deadline_ms accel_w accel_d
      accel_rows accel_cols headroom =
    guard @@ fun () ->
    require_positive_opt "--limit" limit;
    require_positive "--max-request-bytes" max_request_bytes;
    require_positive_opt "--deadline-ms" deadline_ms;
    require_positive "--headroom" headroom;
    let accel =
      match accel_w with
      | None -> None
      | Some w ->
        validate_grid ~rows:accel_rows ~cols:accel_cols;
        let stmt, design = resolve w accel_d in
        let target, _ =
          programmable_target ~rows:accel_rows ~cols:accel_cols
            ~data_width:16 ~acc_width:32 ~headroom stmt design
        in
        (* one compiled simulator amortised across every program request *)
        Some (target, Sim.create target.Accel.circuit)
    in
    let store = store_of_path store_dir in
    let served = ref 0 in
    let errors = ref 0 in
    let respond json =
      incr served;
      (match Json.member "ok" json with
      | Some (Json.Bool false) -> incr errors
      | _ -> ());
      print_endline (Json.to_string json);
      flush stdout
    in
    let handle line =
      (* last-resort containment: any unanticipated exception becomes a
         structured error answer, never a dead server *)
      try serve_request ?deadline_ms ?accel store limit line
      with e ->
        Json.Obj
          [ ("id", Json.Null);
            ("ok", Json.Bool false);
            ("error", Json.Str ("internal: " ^ Printexc.to_string e)) ]
    in
    let oversized_answer =
      Json.Obj
        [ ("id", Json.Null);
          ("ok", Json.Bool false);
          ("error",
           Json.Str
             (Printf.sprintf "request exceeds --max-request-bytes=%d"
                max_request_bytes)) ]
    in
    let shutdown () =
      Printf.eprintf "serve: shutdown after %d responses (%d errors)\n%!"
        !served !errors
    in
    let rec loop () =
      match read_bounded_line ~max_bytes:max_request_bytes stdin with
      | Eof -> shutdown ()
      | Oversized -> respond oversized_answer; loop ()
      | Line line when String.trim line = "" -> loop ()
      | Line line -> respond (handle line); loop ()
      | Last line ->
        (* mid-line EOF: answer the partial line, then shut down *)
        if String.trim line <> "" then respond (handle line);
        shutdown ()
    in
    loop ()
  in
  let max_request_bytes_arg =
    Arg.(value & opt int 65536
         & info [ "max-request-bytes" ]
             ~doc:"Cap on one request line; longer lines are drained and \
                   answered with a structured error without stopping the \
                   server."
             ~docv:"BYTES")
  in
  let serve_deadline_arg =
    Arg.(value & opt (some int) None
         & info [ "deadline-ms" ]
             ~doc:"Per-request budget in milliseconds; a request that \
                   cannot finish in time answers {\"ok\": false, \
                   \"error\": \"deadline\"} and the server keeps serving."
             ~docv:"MS")
  in
  let accel_workload_arg =
    Arg.(value & opt (some string) None
         & info [ "accel-workload" ]
             ~doc:"Stand up one programmable netlist at startup (generated \
                   from this workload and --accel-dataflow) and serve \
                   {\"einsum\", \"extents\"} requests against it: each is \
                   compiled to a descriptor program, run on the standing \
                   simulator, golden-verified and answered with the \
                   program document.")
  in
  let accel_dataflow_arg =
    Arg.(value & opt string "MNK-SST"
         & info [ "accel-dataflow" ]
             ~doc:"Dataflow of the standing programmable netlist.")
  in
  let accel_rows_arg =
    Arg.(value & opt int 4
         & info [ "accel-rows" ]
             ~doc:"Rows of the standing programmable netlist.")
  in
  let accel_cols_arg =
    Arg.(value & opt int 4
         & info [ "accel-cols" ]
             ~doc:"Columns of the standing programmable netlist.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Long-running sweep server: read one JSON request per stdin \
             line ({\"id\", \"network\"} or {\"id\", \"expr\", \
             \"extents\"}), answer each with the sweep roll-up from the \
             warm store plus per-request hit counts; with \
             --accel-workload, {\"id\", \"einsum\", \"extents\"} requests \
             are compiled onto a standing programmable netlist and \
             answered with a golden-verified descriptor program.  \
             Malformed or oversized requests get {\"ok\": false} \
             responses and the loop continues.  EOF (even mid-line) shuts \
             down cleanly with a final stats line on stderr and exit \
             status 0.")
    Term.(const run $ store_arg $ limit_arg $ max_request_bytes_arg
          $ serve_deadline_arg $ accel_workload_arg $ accel_dataflow_arg
          $ accel_rows_arg $ accel_cols_arg $ headroom_arg)

let () =
  let info =
    Cmd.info "tensorlib" ~version:Tensorlib.version
      ~doc:"Spatial accelerator generation for tensor algebra (DAC'21)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ analyze_cmd; generate_cmd; simulate_cmd; perf_cmd; list_cmd;
            explore_cmd; lint_cmd; fault_cmd; profile_cmd; compile_cmd;
            sweep_cmd; serve_cmd ]))
