(* Conv2D dataflow exploration on the two ResNet layers of §VI-A.

   Reproduces the paper's observations: KCX selections turn convolution
   into a large-bound GEMM and win; XY-based selections suffer from the
   small kernel (p=3) and, on layer 5, from x=y=7; layer 5 is uniformly
   harder than layer 2 for XY dataflows.

   Run with:  dune exec examples/conv2d_explorer.exe *)

open Tensorlib

let candidates =
  [ "KCX-SST"; "KCX-STS"; "KCX-MTM"; "XYP-MMT"; "XYP-MST"; "KPX-TMM";
    "KYX-SST"; "KCY-SST" ]

let explore name stmt =
  Format.printf "@.=== %s ===@." name;
  Format.printf "%-10s %10s %8s %8s %8s  %s@." "dataflow" "cycles" "util"
    "bw" "norm" "tile";
  let results =
    List.filter_map
      (fun df ->
        Option.map (fun r -> (df, r)) (Perf.evaluate_name stmt df))
      candidates
  in
  let sorted =
    List.sort
      (fun (_, a) (_, b) -> compare a.Perf.cycles b.Perf.cycles)
      results
  in
  List.iter
    (fun (df, r) ->
      Format.printf "%-10s %10.0f %8.2f %8.2f %8.3f  %s@." df r.Perf.cycles
        r.Perf.utilization r.Perf.bw_stall_factor r.Perf.normalized_perf
        (String.concat "x"
           (Array.to_list (Array.map string_of_int r.Perf.tile))))
    sorted;
  match sorted with
  | (best, _) :: _ -> Format.printf "best: %s@." best
  | [] -> ()

let () =
  explore "ResNet layer 2 (56x56x64, 3x3)" Workloads.resnet_layer2;
  explore "ResNet layer 5 (7x7x512, 3x3)" Workloads.resnet_layer5;
  (* functional spot-check: generate and simulate the winning dataflow on a
     scaled-down layer *)
  Format.printf "@.netlist spot-check (4x4x4 conv, KCX-SST on 8x8 array): ";
  let small = Workloads.conv2d ~k:4 ~c:4 ~y:4 ~x:4 ~p:3 ~q:3 in
  let d = design_of_name small "KCX-SST" in
  let env = Exec.alloc_inputs small in
  let acc = generate ~rows:8 ~cols:8 d env in
  let ok = Dense.equal (Exec.run small env) (simulate acc) in
  Format.printf "%s@." (if ok then "hardware matches golden" else "MISMATCH")
