(* Define a brand-new tensor operation textually, explore its dataflow
   space, and generate verified hardware for the best design.

   The operation here is TTM (tensor-times-matrix), which is not in the
   paper's Table II — showing the framework generalises beyond the
   built-in workload set.

   Run with:  dune exec examples/custom_einsum.exe *)

open Tensorlib

let () =
  (* 1. textual definition *)
  let formula = "Y[i,j,k] += X[i,j,l] * U[l,k]" in
  let stmt =
    Parse.stmt ~name:"TTM" formula
      ~extents:[ ("i", 32); ("j", 32); ("k", 32); ("l", 32) ]
  in
  Format.printf "parsed    : %a@." Stmt.pp stmt;

  (* 2. how large is its dataflow space? *)
  let names = Search.all_designs stmt in
  Format.printf "dataflows : %d letter-distinct designs over %d loop \
                 selections@."
    (List.length names)
    (List.length (Search.selections stmt ~n:3));

  (* 3. joint perf x power exploration on the paper's 16x16 setup *)
  let evaluated = Explore.explore ~limit:24 stmt in
  let fastest = Explore.best_performance evaluated in
  let greenest = Explore.best_efficiency evaluated in
  Format.printf "fastest   : %a@." Explore.pp_evaluated fastest;
  Format.printf "efficient : %a@." Explore.pp_evaluated greenest;

  (* 4. generate hardware for the fastest design, on a small array *)
  let small =
    Parse.stmt ~name:"TTM" formula
      ~extents:[ ("i", 4); ("j", 4); ("k", 4); ("l", 4) ]
  in
  let design =
    Search.find_design_exn small fastest.Explore.design.Design.name
  in
  let env = Exec.alloc_inputs small in
  let acc = Accel.generate ~rows:8 ~cols:8 design env in
  let golden = Exec.run small env in
  Format.printf "hardware  : %s, %d cycles, crit path %d units -> %s@."
    design.Design.name acc.Accel.total_cycles
    (Circuit.critical_path acc.Accel.circuit)
    (if Dense.equal golden (Accel.execute acc) then "matches golden"
     else "MISMATCH");

  (* 5. artefacts: module + self-checking testbench *)
  let v = Accel.verilog acc in
  let tb = Accel.verilog_testbench acc ~expected:golden in
  let write path s =
    let oc = open_out path in
    output_string oc s;
    close_out oc
  in
  write "ttm.v" v;
  write "ttm_tb.v" tb;
  Format.printf "artefacts : ttm.v (%d lines), ttm_tb.v (self-checking)@."
    (List.length (String.split_on_char '\n' v))
