(* Fig. 6-style design-space exploration: area/power scatter for GEMM and
   Depthwise-Conv2D on a 16x16 INT16 array at 320 MHz, with the Pareto
   frontier and the paper's headline spreads.

   Run with:  dune exec examples/design_space.exe *)

open Tensorlib

let summarize name points =
  let costed =
    List.map (fun p -> (p, Asic.evaluate p.Enumerate.design)) points
  in
  let powers = List.map (fun (_, r) -> r.Asic.power_mw) costed in
  let areas = List.map (fun (_, r) -> r.Asic.area) costed in
  let mn l = List.fold_left min (List.hd l) l in
  let mx l = List.fold_left max (List.hd l) l in
  Format.printf "@.=== %s: %d design points ===@." name (List.length points);
  Format.printf "power: %.1f .. %.1f mW (%.2fx spread)@." (mn powers)
    (mx powers)
    (mx powers /. mn powers);
  Format.printf "area : %.0f .. %.0f (%.2fx spread)@." (mn areas) (mx areas)
    (mx areas /. mn areas);
  let front =
    Enumerate.pareto_min (fun (_, r) -> (r.Asic.area, r.Asic.power_mw)) costed
  in
  (* several architectures can share a name and cost; show each once *)
  let seen = Hashtbl.create 16 in
  let distinct =
    List.filter
      (fun ((p : Enumerate.point), (r : Asic.report)) ->
        let key = (p.Enumerate.design.Design.name, r.Asic.area, r.Asic.power_mw) in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      front
  in
  Format.printf "pareto frontier (%d points, %d distinct):@."
    (List.length front) (List.length distinct);
  List.iter
    (fun ((p : Enumerate.point), (r : Asic.report)) ->
      Format.printf "  %-12s area=%6.1f power=%5.1f mW@."
        p.Enumerate.design.Design.name r.Asic.area r.Asic.power_mw)
    (List.sort
       (fun (_, (a : Asic.report)) (_, b) -> compare a.Asic.area b.Asic.area)
       distinct);
  (* the paper's qualitative claims *)
  let hottest =
    List.fold_left
      (fun acc (_, r) ->
        match acc with
        | None -> Some r
        | Some b -> if r.Asic.power_mw > b.Asic.power_mw then Some r else acc)
      None costed
  in
  (match hottest with
   | Some r ->
     Format.printf "energy-hungriest design: %s (%.1f mW) -- %s@."
       r.Asic.design_name r.Asic.power_mw
       "double-multicast inputs, as the paper reports"
   | None -> ())

let () =
  let gemm = Workloads.gemm ~m:256 ~n:256 ~k:256 in
  summarize "GEMM" (Enumerate.design_space gemm);
  let dw = Workloads.depthwise_conv ~k:256 ~y:28 ~x:28 ~p:3 ~q:3 in
  summarize "Depthwise-Conv2D" (Enumerate.design_space ~exclude_unicast:true dw)
