(* MTTKRP: a three-input tensor operation from tensor factorisation.

   D[i,j] += A[i,k,l] * B[k,j] * C[l,j]

   Shows per-tensor dataflow classification for a 4-deep nest, the paper's
   bandwidth argument against unicast dataflows (§VI-A), and a simulated
   3-operand accelerator.

   Run with:  dune exec examples/mttkrp_dataflows.exe *)

open Tensorlib

let () =
  let stmt = Workloads.mttkrp ~i:64 ~j:32 ~k:32 ~l:32 in
  Format.printf "workload: %a@.@." Stmt.pp stmt;

  (* classification of the paper's named unicast dataflow *)
  let unicast = design_of_name stmt "IKL-UBBB" in
  Format.printf "%a@." Design.pp_report unicast;

  (* compare against reuse-heavy alternatives under the 32 GB/s budget *)
  Format.printf "@.%-10s %10s %9s %9s %9s@." "dataflow" "cycles" "words/cyc"
    "bw-stall" "norm";
  List.iter
    (fun name ->
      match Perf.evaluate_name stmt name with
      | Some r ->
        Format.printf "%-10s %10.0f %9.1f %9.2f %9.3f@." name r.Perf.cycles
          r.Perf.words_per_cycle r.Perf.bw_stall_factor r.Perf.normalized_perf
      | None -> Format.printf "%-10s not realisable@." name)
    [ "IKL-UBBB"; "IJK-SSMT"; "IJK-MMBT"; "IJL-SMBT" ];
  Format.printf
    "@.unicast reads one word per PE per cycle; at 16x16 PEs that needs 5x@.";
  Format.printf
    "the available bandwidth, so the array stalls -- the paper's argument@.";
  Format.printf "for reuse-aware dataflow selection on MTTKRP/TTMc.@.";

  (* a small 3-operand accelerator, simulated at the netlist level *)
  let small = Workloads.mttkrp ~i:4 ~j:4 ~k:4 ~l:4 in
  let d = design_of_name small "IJK-SSMT" in
  let env = Exec.alloc_inputs small in
  let acc = generate ~rows:8 ~cols:8 d env in
  let ok = Dense.equal (Exec.run small env) (simulate acc) in
  Format.printf "@.3-operand netlist (%s, %d cycles): %s@."
    d.Design.name acc.Accel.total_cycles
    (if ok then "hardware matches golden" else "MISMATCH")
