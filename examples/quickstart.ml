(* Quickstart: generate an output-stationary GEMM systolic array, simulate
   the netlist cycle-accurately, check it against the golden model, and
   emit Verilog.

   Run with:  dune exec examples/quickstart.exe *)

open Tensorlib

let () =
  (* 1. Describe the tensor algebra: C[m,n] += A[m,k] * B[n,k]. *)
  let stmt = Workloads.gemm ~m:4 ~n:4 ~k:6 in
  Format.printf "workload     : %a@." Stmt.pp stmt;

  (* 2. Pick a dataflow.  "MNK-SST" is the classic output-stationary
     systolic array: A and B flow systolically, C stays in the PE. *)
  let design = design_of_name stmt "MNK-SST" in
  Format.printf "%a@." Design.pp_report design;

  (* 3. Feed it data and elaborate the full accelerator netlist. *)
  let env = Exec.alloc_inputs stmt in
  let accelerator = generate ~rows:4 ~cols:4 design env in
  Format.printf "netlist      : %a@."
    Circuit.pp_stats (Circuit.stats accelerator.Accel.circuit);
  Format.printf "schedule     : %d cycles, %d output banks@."
    accelerator.Accel.total_cycles
    (List.length accelerator.Accel.banks);

  (* 4. Simulate and verify against the golden executor. *)
  let golden = Exec.run stmt env in
  let hardware_result = simulate accelerator in
  Format.printf "verification : %s@."
    (if Dense.equal golden hardware_result then "hardware matches golden model"
     else "MISMATCH");

  (* 5. Emit synthesisable Verilog. *)
  let verilog = Accel.verilog accelerator in
  let path = "quickstart_gemm.v" in
  let oc = open_out path in
  output_string oc verilog;
  close_out oc;
  Format.printf "verilog      : %d lines -> %s@."
    (List.length (String.split_on_char '\n' verilog))
    path;

  (* 6. The same design on the paper's 16x16 / 320 MHz setup. *)
  let big = Workloads.gemm ~m:256 ~n:256 ~k:256 in
  let big_design = design_of_name big "MNK-SST" in
  let perf = evaluate_performance big_design in
  Format.printf "performance  : %a@." Perf.pp_result perf;
  let cost = evaluate_asic big_design in
  Format.printf "asic cost    : %a@." Asic.pp_report cost
