(* Tiling, data re-loading, reuse metrics and interconnect reports.

   A 16x16x16 GEMM does not fit a 4x4 array spatially; tiling splits the
   m and n loops so each 4x4 tile maps onto the array and the tile loops
   run as sequential passes.  The same generated accelerator is then
   re-run on a second batch of data by rewriting the input memories only
   (the schedule tables are untouched).

   Run with:  dune exec examples/tiled_reuse.exe *)

open Tensorlib

let () =
  let stmt = Workloads.gemm ~m:16 ~n:16 ~k:16 in
  Format.printf "original  : %a (%d MACs)@." Stmt.pp stmt
    (Stmt.domain_size stmt);

  (* split m and n into 4-sized tiles: the nest becomes (mo,no,m,n,k) *)
  let tiled = Tiling.split stmt [ ("m", 4); ("n", 4) ] in
  Format.printf "tiled nest: %s@."
    (String.concat " "
       (List.map
          (fun i -> Printf.sprintf "%s<%d" i.Iter.name i.Iter.extent)
          tiled.Stmt.iters));

  let design = design_of_name tiled "MNK-SST" in
  Format.printf "design    : %s (tile loops m,n,k on the array; mo,no \
                 sequential)@."
    design.Design.name;

  (* interconnect the generator will build *)
  Format.printf "@.%a@." Topology.pp (Topology.describe ~rows:4 ~cols:4 design);

  (* generate once *)
  let env1 = Exec.alloc_inputs ~seed:11 tiled in
  let acc = generate ~rows:4 ~cols:4 design env1 in
  Format.printf "@.passes    : %d sequential tile passes, %d total cycles@."
    acc.Accel.schedule.Schedule.passes acc.Accel.total_cycles;
  let ok1 = Dense.equal (Exec.run tiled env1) (Accel.execute acc) in
  Format.printf "batch 1   : %s@."
    (if ok1 then "hardware matches golden" else "MISMATCH");

  (* re-run the very same netlist on new data: only the data memories are
     rewritten, exactly like a DMA refill between inferences *)
  let env2 = Exec.alloc_inputs ~seed:22 tiled in
  let ok2 = Dense.equal (Exec.run tiled env2) (Accel.execute_with acc env2) in
  Format.printf "batch 2   : %s (same netlist, reloaded memories)@."
    (if ok2 then "hardware matches golden" else "MISMATCH");

  (* why this dataflow is bandwidth-friendly *)
  Format.printf "@.%a@." Metrics.pp (Metrics.of_design ~rows:4 ~cols:4 design)
