(* Verilog tour: emit one accelerator per dataflow family and print module
   statistics, showing how the generator composes different PE-internal
   modules and interconnects from the same templates.

   Run with:  dune exec examples/verilog_tour.exe *)

open Tensorlib

let emit stmt label name =
  match Search.find_design stmt name with
  | None -> Format.printf "%-28s not realisable@." label
  | Some design ->
    let env = Exec.alloc_inputs stmt in
    (match Accel.generate ~rows:4 ~cols:4 design env with
     | exception Accel.Unsupported msg ->
       Format.printf "%-28s unsupported: %s@." label msg
     | acc ->
       let v = Accel.verilog acc in
       let file =
         Printf.sprintf "tour_%s.v"
           (String.lowercase_ascii
              (String.map (fun c -> if c = '-' then '_' else c)
                 design.Design.name))
       in
       let oc = open_out file in
       output_string oc v;
       close_out oc;
       let st = Circuit.stats acc.Accel.circuit in
       Format.printf "%-28s -> %-22s %a@." label file Circuit.pp_stats st)

let () =
  Format.printf "Each line is a complete generated accelerator (4x4 array).@.";
  let gemm = Workloads.gemm ~m:4 ~n:4 ~k:4 in
  emit gemm "GEMM output-stationary" "MNK-SST";
  emit gemm "GEMM weight-stationary" "MNK-STS";
  emit gemm "GEMM multicast + tree" "MNK-MTM";
  emit gemm "GEMM all-systolic (wavefront)" "MNK-SSS";
  let conv = Workloads.conv2d ~k:3 ~c:3 ~y:3 ~x:3 ~p:2 ~q:2 in
  emit conv "Conv2D KCX (GEMM-like)" "KCX-SST";
  emit conv "Conv2D ShiDianNao-style" "XYP-MST";
  let mt = Workloads.mttkrp ~i:3 ~j:3 ~k:3 ~l:3 in
  emit mt "MTTKRP unicast" "IKL-UBBB";
  let bg = Workloads.batched_gemv ~m:3 ~n:3 ~k:3 in
  emit bg "Batched-GEMV" "MNK-UTM";
  Format.printf
    "@.Note how multicast designs trade registers for wires+trees, and@.";
  Format.printf "stationary designs carry double-buffer registers.@."
