(* Reduced product of known-bits and unsigned/signed intervals.

   Widths 1..61 are represented exactly.  Width 62 fills the OCaml native
   int, where [Signal.mask_to_width] is the identity and simulated values
   can occupy all 63 bits (including the sign); such values are tracked
   only as singleton-or-top, which keeps every transfer trivially sound. *)

open Tl_hw

type t = {
  w : int;
  bv : int;
  bm : int;
  ulo : int;
  uhi : int;
  slo : int;
  shi : int;
}

let native w = w >= 62
let msk w = if native w then -1 else (1 lsl w) - 1
let smin w = if native w then min_int else -(1 lsl (w - 1))
let smax w = if native w then max_int else (1 lsl (w - 1)) - 1

let top w =
  if native w then
    { w; bv = 0; bm = -1; ulo = min_int; uhi = max_int;
      slo = min_int; shi = max_int }
  else
    { w; bv = 0; bm = msk w; ulo = 0; uhi = msk w;
      slo = smin w; shi = smax w }

let const ~width v =
  let m = Signal.mask_to_width width v in
  let s = Signal.to_signed width v in
  { w = width; bv = m; bm = 0; ulo = m; uhi = m; slo = s; shi = s }

let is_const t = if t.bm = 0 then Some t.bv else None

let top_bit_index v =
  (* index of the highest set bit; v > 0 *)
  let rec go i v = if v <= 1 then i else go (i + 1) (v lsr 1) in
  go 0 v

(* One mutual-reduction pass; falls back to a bits-consistent value if a
   meet produced an empty interval (clamps are independently proven, so
   either component alone stays sound). *)
let reduce t =
  if native t.w then t
  else begin
    let m = msk t.w and half = 1 lsl (t.w - 1) in
    let ulo = ref (max t.bv (max t.ulo 0))
    and uhi = ref (min (t.bv lor t.bm) (min t.uhi m)) in
    let slo = ref (max t.slo (smin t.w)) and shi = ref (min t.shi (smax t.w)) in
    (* signed -> unsigned *)
    if !slo >= 0 then begin
      ulo := max !ulo !slo;
      uhi := min !uhi !shi
    end
    else if !shi < 0 then begin
      ulo := max !ulo (!slo + (1 lsl t.w));
      uhi := min !uhi (!shi + (1 lsl t.w))
    end;
    (* unsigned -> signed *)
    if !uhi < half then begin
      slo := max !slo !ulo;
      shi := min !shi !uhi
    end
    else if !ulo >= half then begin
      slo := max !slo (!ulo - (1 lsl t.w));
      shi := min !shi (!uhi - (1 lsl t.w))
    end;
    (* unsigned interval -> common leading known bits *)
    let bv = ref t.bv and bm = ref t.bm in
    if !ulo <= !uhi then begin
      let fixed, value =
        if !ulo = !uhi then (m, !ulo)
        else
          let k = top_bit_index (!ulo lxor !uhi) in
          (m land lnot ((1 lsl (k + 1)) - 1), !ulo)
      in
      let newly = fixed land !bm in
      (* only adopt bits consistent with what is already known *)
      if (value lxor !bv) land fixed land lnot !bm = 0 then begin
        bv := !bv lor (value land newly);
        bm := !bm land lnot newly
      end
    end;
    if !ulo > !uhi || !slo > !shi then
      (* contradictory meet: trust the bits component *)
      let lo = !bv and hi = !bv lor !bm in
      let s_lo, s_hi =
        if hi < half then (lo, hi)
        else if lo >= half then (lo - (1 lsl t.w), hi - (1 lsl t.w))
        else (smin t.w, smax t.w)
      in
      { t with bv = !bv; bm = !bm; ulo = lo; uhi = hi; slo = s_lo; shi = s_hi }
    else
      { t with bv = !bv; bm = !bm; ulo = !ulo; uhi = !uhi;
        slo = !slo; shi = !shi }
  end

let norm t = reduce (reduce t)

let make ~w ~bv ~bm ~ulo ~uhi ~slo ~shi =
  if native w then
    if bm = 0 then const ~width:w bv else top w
  else norm { w; bv = bv land lnot bm; bm; ulo; uhi; slo; shi }

let of_unsigned ~width lo hi =
  if native width then if lo = hi then const ~width lo else top width
  else
    make ~w:width ~bv:0 ~bm:(msk width) ~ulo:(max 0 lo)
      ~uhi:(min (msk width) hi) ~slo:(smin width) ~shi:(smax width)

let of_signed ~width lo hi =
  if native width then if lo = hi then const ~width lo else top width
  else
    make ~w:width ~bv:0 ~bm:(msk width) ~ulo:0 ~uhi:(msk width)
      ~slo:(max (smin width) lo) ~shi:(min (smax width) hi)

let mem v t =
  let m = Signal.mask_to_width t.w v in
  let s = Signal.to_signed t.w v in
  m land lnot t.bm = t.bv && t.ulo <= m && m <= t.uhi && t.slo <= s
  && s <= t.shi

let equal a b =
  a.w = b.w && a.bv = b.bv && a.bm = b.bm && a.ulo = b.ulo && a.uhi = b.uhi
  && a.slo = b.slo && a.shi = b.shi

let join a b =
  if native a.w then
    match (is_const a, is_const b) with
    | Some x, Some y when x = y -> a
    | _ -> top a.w
  else begin
    let agree = lnot (a.bv lxor b.bv) in
    let known = lnot a.bm land lnot b.bm land agree land msk a.w in
    make ~w:a.w ~bv:(a.bv land known) ~bm:(msk a.w land lnot known)
      ~ulo:(min a.ulo b.ulo) ~uhi:(max a.uhi b.uhi)
      ~slo:(min a.slo b.slo) ~shi:(max a.shi b.shi)
  end

let meet a b =
  if native a.w then (match is_const b with Some _ -> b | None -> a)
  else begin
    let both = lnot a.bm land lnot b.bm land msk a.w in
    if (a.bv lxor b.bv) land both <> 0 then a
    else
      let bm = a.bm land b.bm in
      let r =
        make ~w:a.w ~bv:((a.bv lor b.bv) land lnot bm) ~bm
          ~ulo:(max a.ulo b.ulo) ~uhi:(min a.uhi b.uhi)
          ~slo:(max a.slo b.slo) ~shi:(min a.shi b.shi)
      in
      if max a.ulo b.ulo > min a.uhi b.uhi
         || max a.slo b.slo > min a.shi b.shi
      then a
      else r
  end

(* snap a grown bound out to the next power-of-two threshold *)
let widen_up hi cap =
  let rec go t = if t >= hi || t >= cap then min t cap else go ((t * 2) + 1) in
  if hi <= 0 then hi else go 1

let widen_down lo floor =
  let rec go t = if t <= lo || t <= floor then max t floor else go (t * 2) in
  if lo >= 0 then lo else go (-1)

let widen old next =
  let j = join old next in
  if equal j old || native old.w then j
  else
    make ~w:j.w ~bv:j.bv ~bm:j.bm
      ~ulo:(if j.ulo < old.ulo then 0 else j.ulo)
      ~uhi:(if j.uhi > old.uhi then widen_up j.uhi (msk j.w) else j.uhi)
      ~slo:(if j.slo < old.slo then widen_down j.slo (smin j.w) else j.slo)
      ~shi:(if j.shi > old.shi then widen_up j.shi (smax j.w) else j.shi)

let known_high_bits t =
  if native t.w then 0
  else begin
    let n = ref 0 in
    (try
       for i = t.w - 1 downto 0 do
         if t.bm land (1 lsl i) <> 0 then raise Exit;
         incr n
       done
     with Exit -> ());
    !n
  end

let enumerate ?(limit = 64) t =
  if native t.w && t.bm <> 0 then None
  else begin
    let unknown = ref 0 and bit_count = ref 0 in
    while !bit_count < t.w && 1 lsl !bit_count <= t.bm do
      if t.bm land (1 lsl !bit_count) <> 0 then incr unknown;
      incr bit_count
    done;
    let by_bits =
      (* enumerate submasks of bm when the combination count is small *)
      if !unknown <= 12 && 1 lsl !unknown <= 4 * limit then begin
        let acc = ref [] in
        let sub = ref t.bm in
        let continue = ref true in
        while !continue do
          let v = t.bv lor !sub in
          if mem v t then acc := v :: !acc;
          if !sub = 0 then continue := false
          else sub := (!sub - 1) land t.bm
        done;
        Some (List.sort compare !acc)
      end
      else if t.uhi >= t.ulo && t.uhi - t.ulo < 4096 then begin
        let acc = ref [] in
        for v = t.uhi downto t.ulo do
          if mem v t then acc := v :: !acc
        done;
        Some !acc
      end
      else None
    in
    match by_bits with
    | Some vs when List.length vs <= limit -> Some vs
    | _ -> None
  end

(* ---- three-valued ripple adder for the known-bits component ---- *)

let add_bits w abv abm bbv bbm ~carry_v ~carry_k =
  let bv = ref 0 and bm = ref 0 in
  let cv = ref carry_v and ck = ref carry_k in
  for i = 0 to w - 1 do
    let bit m v = (m, v) in
    let a_k, a_v = bit (abm land (1 lsl i) = 0) (abv land (1 lsl i) <> 0) in
    let b_k, b_v = bit (bbm land (1 lsl i) = 0) (bbv land (1 lsl i) <> 0) in
    if a_k && b_k && !ck then begin
      let s = (if a_v then 1 else 0) + (if b_v then 1 else 0)
              + (if !cv then 1 else 0) in
      if s land 1 <> 0 then bv := !bv lor (1 lsl i);
      cv := s >= 2
    end
    else begin
      bm := !bm lor (1 lsl i);
      (* majority(a,b,c): known when two inputs agree and are known *)
      let ones =
        (if a_k && a_v then 1 else 0) + (if b_k && b_v then 1 else 0)
        + (if !ck && !cv then 1 else 0)
      and zeros =
        (if a_k && not a_v then 1 else 0)
        + (if b_k && not b_v then 1 else 0)
        + (if !ck && not !cv then 1 else 0)
      in
      if ones >= 2 then begin cv := true; ck := true end
      else if zeros >= 2 then begin cv := false; ck := true end
      else begin cv := false; ck := false end
    end
  done;
  (!bv, !bm)

let safe_mul a b =
  if a = 0 || b = 0 then Some 0
  else if a = -1 then (if b = min_int then None else Some (-b))
  else if b = -1 then (if a = min_int then None else Some (-a))
  else
    let p = a * b in
    if p / a = b then Some p else None

let block_u w x = x asr w
let wrap_interval w lo hi =
  (* exact when both mathematical bounds fall in the same 2^w block *)
  if block_u w lo = block_u w hi then
    Some (lo land msk w, hi land msk w)
  else None

let wrap_signed w lo hi =
  if (lo - smin w) asr w = (hi - smin w) asr w then
    Some (Signal.to_signed w (lo land msk w), Signal.to_signed w (hi land msk w))
  else None

let arith_make w (bv, bm) u s =
  let ulo, uhi = match u with Some (l, h) -> (l, h) | None -> (0, msk w) in
  let slo, shi =
    match s with Some (l, h) -> (l, h) | None -> (smin w, smax w)
  in
  make ~w ~bv ~bm ~ulo ~uhi ~slo ~shi

let add a b =
  let w = a.w in
  if native w then
    match (is_const a, is_const b) with
    | Some x, Some y -> const ~width:w (x + y)
    | _ -> top w
  else
    let bits = add_bits w a.bv a.bm b.bv b.bm ~carry_v:false ~carry_k:true in
    arith_make w bits
      (wrap_interval w (a.ulo + b.ulo) (a.uhi + b.uhi))
      (wrap_signed w (a.slo + b.slo) (a.shi + b.shi))

let sub a b =
  let w = a.w in
  if native w then
    match (is_const a, is_const b) with
    | Some x, Some y -> const ~width:w (x - y)
    | _ -> top w
  else
    let nbv = lnot b.bv land lnot b.bm land msk w in
    let bits = add_bits w a.bv a.bm nbv b.bm ~carry_v:true ~carry_k:true in
    arith_make w bits
      (wrap_interval w (a.ulo - b.uhi) (a.uhi - b.ulo))
      (wrap_signed w (a.slo - b.shi) (a.shi - b.slo))

let trailing_known_zeros t =
  let n = ref 0 in
  (try
     for i = 0 to t.w - 1 do
       if (t.bm lor t.bv) land (1 lsl i) <> 0 then raise Exit;
       incr n
     done
   with Exit -> ());
  !n

let mul a b =
  let w = a.w in
  if native w then
    match (is_const a, is_const b) with
    | Some x, Some y -> const ~width:w (x * y)
    | _ -> top w
  else begin
    match (is_const a, is_const b) with
    | Some x, Some y -> const ~width:w (x * y)
    | _ ->
      let tz = min w (trailing_known_zeros a + trailing_known_zeros b) in
      let zeros = (1 lsl tz) - 1 in
      let bits = (0, msk w land lnot zeros) in
      let u =
        match safe_mul a.uhi b.uhi with
        | Some hi -> wrap_interval w (a.ulo * b.ulo) hi
        | None -> None
      in
      let s =
        let corners =
          [ safe_mul a.slo b.slo; safe_mul a.slo b.shi;
            safe_mul a.shi b.slo; safe_mul a.shi b.shi ]
        in
        if List.exists (fun c -> c = None) corners then None
        else
          let vs = List.filter_map Fun.id corners in
          wrap_signed w (List.fold_left min max_int vs)
            (List.fold_left max min_int vs)
      in
      arith_make w bits u s
  end

let known_zeros t = msk t.w land lnot t.bm land lnot t.bv
let known_ones t = t.bv

let bitwise_make w ~kz ~ko ?ulo ?uhi () =
  let bm = msk w land lnot (kz lor ko) in
  make ~w ~bv:ko ~bm
    ~ulo:(match ulo with Some l -> l | None -> 0)
    ~uhi:(match uhi with Some h -> h | None -> msk w)
    ~slo:(smin w) ~shi:(smax w)

let logand a b =
  let w = a.w in
  if native w then
    match (is_const a, is_const b) with
    | Some x, Some y -> const ~width:w (x land y)
    | _ -> top w
  else
    bitwise_make w
      ~kz:(known_zeros a lor known_zeros b)
      ~ko:(known_ones a land known_ones b)
      ~uhi:(min a.uhi b.uhi) ()

let logor a b =
  let w = a.w in
  if native w then
    match (is_const a, is_const b) with
    | Some x, Some y -> const ~width:w (x lor y)
    | _ -> top w
  else
    bitwise_make w
      ~kz:(known_zeros a land known_zeros b)
      ~ko:(known_ones a lor known_ones b)
      ~ulo:(max a.ulo b.ulo) ()

let logxor a b =
  let w = a.w in
  if native w then
    match (is_const a, is_const b) with
    | Some x, Some y -> const ~width:w (x lxor y)
    | _ -> top w
  else
    let kz_a = known_zeros a and kz_b = known_zeros b in
    let ko_a = known_ones a and ko_b = known_ones b in
    bitwise_make w
      ~kz:((kz_a land kz_b) lor (ko_a land ko_b))
      ~ko:((kz_a land ko_b) lor (ko_a land kz_b))
      ()

let lognot a =
  let w = a.w in
  if native w then
    match is_const a with
    | Some x -> const ~width:w (lnot x)
    | None -> top w
  else
    make ~w ~bv:(known_zeros a) ~bm:a.bm ~ulo:(msk w - a.uhi)
      ~uhi:(msk w - a.ulo) ~slo:(smin w) ~shi:(smax w)

let bool_av p = const ~width:1 (if p then 1 else 0)

let disjoint a b =
  (not (native a.w))
  && (a.uhi < b.ulo || b.uhi < a.ulo || a.shi < b.slo || b.shi < a.slo
      || (a.bv lxor b.bv) land lnot a.bm land lnot b.bm land msk a.w <> 0)

let eq a b =
  match (is_const a, is_const b) with
  | Some x, Some y -> bool_av (x = y)
  | _ -> if disjoint a b then bool_av false else top 1

let ult a b =
  if native a.w then
    match (is_const a, is_const b) with
    | Some x, Some y -> bool_av (x < y)
    | _ -> top 1
  else if a.uhi < b.ulo then bool_av true
  else if a.ulo >= b.uhi then bool_av false
  else top 1

let slt a b =
  if native a.w then
    match (is_const a, is_const b) with
    | Some x, Some y ->
      bool_av (Signal.to_signed a.w x < Signal.to_signed a.w y)
    | _ -> top 1
  else if a.shi < b.slo then bool_av true
  else if a.slo >= b.shi then bool_av false
  else top 1

let shl a n =
  let w = a.w in
  if n = 0 then a
  else if n >= w || n >= 62 then const ~width:w 0
  else if native w then
    match is_const a with
    | Some x -> const ~width:w (x lsl n)
    | None -> top w
  else
    let u =
      if a.uhi <= max_int asr n then wrap_interval w (a.ulo lsl n) (a.uhi lsl n)
      else None
    in
    arith_make w ((a.bv lsl n) land msk w, (a.bm lsl n) land msk w) u None

let shr a n =
  let w = a.w in
  if n = 0 then a
  else if n >= 62 then const ~width:w 0
  else if native w then
    match is_const a with
    | Some x when x >= 0 -> const ~width:w (x lsr n)
    | _ -> top w
  else
    arith_make w (a.bv lsr n, a.bm lsr n) (Some (a.ulo lsr n, a.uhi lsr n))
      None

let sra a n =
  let w = a.w in
  if n = 0 then a
  else if native w then
    (match is_const a with
     | Some x when n < 62 -> const ~width:w (Signal.to_signed w x asr n)
     | _ -> top w)
  else begin
    let n = min n w in
    let high = msk w land lnot (msk w lsr n) in
    let sign_known = a.bm land (1 lsl (w - 1)) = 0 in
    let sign_one = a.bv land (1 lsl (w - 1)) <> 0 in
    let bv =
      (a.bv lsr n) lor (if sign_known && sign_one then high else 0)
    in
    let bm = (a.bm lsr n) lor (if sign_known then 0 else high) in
    make ~w ~bv ~bm ~ulo:0 ~uhi:(msk w) ~slo:(a.slo asr n) ~shi:(a.shi asr n)
  end

let mux sel a b =
  match is_const sel with
  | Some 0 -> b
  | Some _ -> a
  | None -> join a b

let concat hi lo =
  let w = hi.w + lo.w in
  if native w then
    match (is_const hi, is_const lo) with
    | Some h, Some l -> const ~width:w ((h lsl lo.w) lor l)
    | _ -> top w
  else
    make ~w ~bv:((hi.bv lsl lo.w) lor lo.bv) ~bm:((hi.bm lsl lo.w) lor lo.bm)
      ~ulo:((hi.ulo lsl lo.w) + lo.ulo) ~uhi:((hi.uhi lsl lo.w) + lo.uhi)
      ~slo:(smin w) ~shi:(smax w)

let repl a n =
  let rec go acc k = if k = 0 then acc else go (concat acc a) (k - 1) in
  go a (n - 1)

(* Sign extension of [a] to [width] bits.  [concat (repl sign) a] cannot
   see that the replicated bits equal [a]'s sign bit, so it widens bounded
   signed values to top; here the signed interval carries over verbatim. *)
let sext ~width a =
  if width <= a.w then a
  else if native a.w || native width then
    match is_const a with
    | Some v -> const ~width (Signal.to_signed a.w v)
    | None -> top width
  else
    let ext = msk width land lnot (msk a.w) in
    let bv, bm =
      if a.bm land (1 lsl (a.w - 1)) = 0 then
        (* sign bit known: the extension bits are known too *)
        if a.bv land (1 lsl (a.w - 1)) <> 0 then (a.bv lor ext, a.bm)
        else (a.bv, a.bm)
      else (a.bv, a.bm lor ext)
    in
    make ~w:width ~bv ~bm ~ulo:0 ~uhi:(msk width) ~slo:a.slo ~shi:a.shi

let select a ~hi ~lo =
  let w = hi - lo + 1 in
  if native a.w then
    match is_const a with
    | Some x -> const ~width:w (x asr lo)
    | None -> top w
  else begin
    let m = msk w in
    (* the extracted interval is only sound when no higher bits vary:
       then x = H*2^(hi+1) + y with y spanning a contiguous range, and
       the field is monotone in y *)
    let u =
      if hi >= a.w - 1 || a.uhi lsr (hi + 1) = a.ulo lsr (hi + 1) then
        Some ((a.ulo lsr lo) land m, (a.uhi lsr lo) land m)
      else None
    in
    arith_make w ((a.bv lsr lo) land m, (a.bm lsr lo) land m) u None
  end

let pp ppf t =
  match is_const t with
  | Some v -> Format.fprintf ppf "=%d" v
  | None ->
    Format.fprintf ppf "w%d u[%d..%d] s[%d..%d]" t.w t.ulo t.uhi t.slo t.shi;
    if t.bm <> msk t.w && t.w <= 32 then begin
      Format.fprintf ppf " bits=";
      for i = t.w - 1 downto 0 do
        if t.bm land (1 lsl i) <> 0 then Format.pp_print_char ppf 'x'
        else Format.pp_print_char ppf
            (if t.bv land (1 lsl i) <> 0 then '1' else '0')
      done
    end
