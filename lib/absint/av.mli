(** Abstract values: the reduced product of a known-bits domain and
    unsigned/signed intervals.

    An abstract value of width [w] describes a set of [w]-bit vectors
    (1 <= w <= 62, the {!Tl_hw.Signal} width range).  Three cooperating
    components:

    - {b known bits}: [bv] holds the values of the bits proven constant,
      [bm] masks the bits still unknown ([bv land bm = 0]); a concrete
      value [x] is described iff [x land (lnot bm) = bv];
    - {b unsigned interval} [ulo..uhi] over the masked representation;
    - {b signed interval} [slo..shi] over the two's-complement reading.

    After {!norm} the components are mutually reduced (interval bounds
    tightened from the known bits and vice versa), so clients can read any
    component and get the best information the product holds.

    All transfer functions are sound w.r.t. {!Tl_hw.Sim} semantics:
    arithmetic wraps modulo [2^w], [Mul] keeps the low bits, shifts are by
    immediate counts.  Native-int overflow in interval arithmetic is
    guarded; widths of 62 bits are handled exactly. *)

type t = private {
  w : int;
  bv : int;   (** values of the known bits *)
  bm : int;   (** mask of the unknown bits *)
  ulo : int;
  uhi : int;
  slo : int;
  shi : int;
}

val top : int -> t
(** All values of the given width. *)

val const : width:int -> int -> t
(** Exactly one value (masked to the width). *)

val of_unsigned : width:int -> int -> int -> t
(** [of_unsigned ~width lo hi]: the unsigned interval [lo..hi] (clamped to
    the width's range), bits reduced from the bounds. *)

val of_signed : width:int -> int -> int -> t
(** Signed interval, clamped to the width's two's-complement range. *)

val is_const : t -> int option
(** [Some v] iff the value is a proven singleton. *)

val mem : int -> t -> bool
(** Is the (masked) concrete value described?  The soundness oracle's
    primitive: a simulated value escaping its abstract value is a bug. *)

val equal : t -> t -> bool
val join : t -> t -> t
val meet : t -> t -> t
(** Intersection.  If the components become contradictory (provably empty),
    the result falls back to the first argument — callers use [meet] only
    to apply independently-proven clamps, so either side alone is sound. *)

val widen : t -> t -> t
(** [widen old next]: join, with interval bounds that moved pushed out to
    the next power-of-two threshold so register chains converge quickly
    without losing the magnitude. *)

val known_high_bits : t -> int
(** Number of contiguous known bits at the top of the word. *)

val enumerate : ?limit:int -> t -> int list option
(** Concretise small sets: [Some vs] when at most [limit] (default 64)
    values are described, in increasing unsigned order. *)

(* Transfer functions.  Binary ops require equal widths. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t
val eq : t -> t -> t
val ult : t -> t -> t
val slt : t -> t -> t
val shl : t -> int -> t
val shr : t -> int -> t
val sra : t -> int -> t
val mux : t -> t -> t -> t
(** [mux sel on1 on0] with a 1-bit select. *)

val concat : t -> t -> t
(** [concat hi lo]. *)

val repl : t -> int -> t
val select : t -> hi:int -> lo:int -> t

val sext : width:int -> t -> t
(** Sign-extend to [width] bits, carrying the signed interval over — the
    precise transfer for the [concat (repl sign) x] shape {!Tl_hw.Signal}'s
    [sresize] elaborates, which plain {!concat} widens to top. *)

val pp : Format.formatter -> t -> unit
(** e.g. [w8 bits=0b0000_10xx u[8,11] s[8,11]]. *)
