open Tl_hw

type config = {
  input_av : string -> int -> Av.t;
  ram_override : Signal.ram -> Av.t option;
  widen_after : int;
  hard_cap : int;
}

let default_config =
  { input_av = (fun _ w -> Av.top w);
    ram_override = (fun _ -> None);
    widen_after = 32;
    hard_cap = 160 }

type t = {
  circuit : Circuit.t;
  values : (int, Av.t) Hashtbl.t;       (* node id -> comb value *)
  reg_av : (int, Av.t) Hashtbl.t;       (* reg node id -> state join *)
  ram_av : (int, Av.t) Hashtbl.t;       (* ram id -> content join *)
  rounds : int;
}

let circuit t = t.circuit
let rounds t = t.rounds

let value t (s : Signal.t) =
  match Hashtbl.find_opt t.values s.Signal.id with
  | Some av -> av
  | None -> Av.top s.Signal.width

let ram_state t (r : Signal.ram) =
  match Hashtbl.find_opt t.ram_av r.Signal.ram_id with
  | Some av -> av
  | None -> Av.top r.Signal.ram_width

(* join of a ram's initial contents *)
let init_join (r : Signal.ram) =
  Array.fold_left
    (fun acc v -> Av.join acc (Av.const ~width:r.Signal.ram_width v))
    (Av.const ~width:r.Signal.ram_width r.Signal.init_data.(0))
    r.Signal.init_data

let run ?(config = default_config) ?(reg_clamps = []) ?(ram_clamps = [])
    circuit =
  let nodes = Circuit.nodes circuit in
  let values : (int, Av.t) Hashtbl.t = Hashtbl.create (Array.length nodes) in
  let reg_av : (int, Av.t) Hashtbl.t = Hashtbl.create 64 in
  let ram_av : (int, Av.t) Hashtbl.t = Hashtbl.create 8 in
  let reg_clamp id = List.assoc_opt id reg_clamps in
  let ram_clamp id = List.assoc_opt id ram_clamps in
  let apply_clamp clamp av =
    match clamp with Some c -> Av.meet av c | None -> av
  in
  (* writable = has (or may gain nothing: no port means contents frozen) *)
  let writable (r : Signal.ram) = r.Signal.write_port <> None in
  (* static content summary for rams that never change *)
  let static_join : (int, Av.t) Hashtbl.t = Hashtbl.create 8 in
  let frozen_content (r : Signal.ram) =
    match Hashtbl.find_opt static_join r.Signal.ram_id with
    | Some av -> av
    | None ->
      let av = init_join r in
      Hashtbl.add static_join r.Signal.ram_id av;
      av
  in
  (* initial sequential state *)
  Array.iter
    (fun (s : Signal.t) ->
      match s.Signal.node with
      | Signal.Reg r ->
        Hashtbl.replace reg_av s.Signal.id
          (apply_clamp (reg_clamp s.Signal.id)
             (Av.const ~width:s.Signal.width r.Signal.init))
      | _ -> ())
    nodes;
  List.iter
    (fun (r : Signal.ram) ->
      if writable r then
        Hashtbl.replace ram_av r.Signal.ram_id
          (apply_clamp (ram_clamp r.Signal.ram_id) (init_join r)))
    (Circuit.rams circuit);
  let get (s : Signal.t) =
    match Hashtbl.find_opt values s.Signal.id with
    | Some av -> av
    | None -> Av.top s.Signal.width
  in
  let read_ram (r : Signal.ram) addr_av =
    let w = r.Signal.ram_width in
    let cell_av =
      match config.ram_override r with
      | Some av -> `Summary av
      | None ->
        if writable r then
          `Summary
            (match Hashtbl.find_opt ram_av r.Signal.ram_id with
             | Some av -> av
             | None -> Av.top w)
        else `Cells
    in
    let oob = Av.const ~width:w 0 in
    match Av.enumerate ~limit:64 addr_av with
    | Some addrs ->
      List.fold_left
        (fun acc a ->
          let v =
            if a < 0 || a >= r.Signal.size then oob
            else
              match cell_av with
              | `Summary av -> av
              | `Cells -> Av.const ~width:w r.Signal.init_data.(a)
          in
          match acc with None -> Some v | Some j -> Some (Av.join j v))
        None addrs
      |> Option.value ~default:oob
    | None ->
      let content =
        match cell_av with `Summary av -> av | `Cells -> frozen_content r
      in
      let may_oob = addr_av.Av.uhi >= r.Signal.size || addr_av.Av.ulo < 0 in
      if may_oob then Av.join content oob else content
  in
  let eval (s : Signal.t) =
    match s.Signal.node with
    | Signal.Input n -> config.input_av n s.Signal.width
    | Signal.Const c -> Av.const ~width:s.Signal.width c
    | Signal.Unop (Signal.Not, a) -> Av.lognot (get a)
    | Signal.Binop (op, a, b) -> (
      let va = get a and vb = get b in
      match op with
      | Signal.Add -> Av.add va vb
      | Signal.Sub -> Av.sub va vb
      | Signal.Mul -> Av.mul va vb
      | Signal.And -> Av.logand va vb
      | Signal.Or -> Av.logor va vb
      | Signal.Xor -> Av.logxor va vb
      | Signal.Eq -> Av.eq va vb
      | Signal.Ult -> Av.ult va vb
      | Signal.Slt -> Av.slt va vb
      | Signal.Shl n -> Av.shl va n
      | Signal.Shr n -> Av.shr va n
      | Signal.Sra n -> Av.sra va n)
    | Signal.Mux (c, a, b) -> Av.mux (get c) (get a) (get b)
    | Signal.Concat (hi, lo) -> (
      (* [sresize] elaborates to [concat (repl (bit x (w-1))) x]; route
         that shape through the dedicated sign-extension transfer (met
         with the generic one), or the signed interval widens to top *)
      let generic = Av.concat (get hi) (get lo) in
      let hi_r = Signal.resolve hi and lo_r = Signal.resolve lo in
      let sign_bit =
        match hi_r.Signal.node with
        | Signal.Repl (b, _) -> Some (Signal.resolve b)
        | Signal.Select _ when hi_r.Signal.width = 1 -> Some hi_r
        | _ -> None
      in
      let is_sext =
        match sign_bit with
        | Some b -> (
          match b.Signal.node with
          | Signal.Select (x, h, l) ->
            let x = Signal.resolve x in
            h = l && h = x.Signal.width - 1
            && x.Signal.id = lo_r.Signal.id
          | _ -> false)
        | None -> false
      in
      if is_sext then
        Av.meet generic (Av.sext ~width:s.Signal.width (get lo))
      else generic)
    | Signal.Repl (a, n) -> Av.repl (get a) n
    | Signal.Select (a, hi, lo) -> Av.select (get a) ~hi ~lo
    | Signal.Reg _ -> (
      match Hashtbl.find_opt reg_av s.Signal.id with
      | Some av -> av
      | None -> Av.top s.Signal.width)
    | Signal.Wire r -> (
      match !r with
      | Some d -> get d
      | None -> Av.top s.Signal.width)
    | Signal.Ram_read (r, addr) -> read_ram r (get addr)
  in
  let may v av = Av.mem v av in
  let round = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    let widen_now = !round >= config.widen_after in
    let force_top = !round >= config.hard_cap in
    (* combinational pass in topological order *)
    Array.iter
      (fun (s : Signal.t) -> Hashtbl.replace values s.Signal.id (eval s))
      nodes;
    (* sequential update: registers *)
    Array.iter
      (fun (s : Signal.t) ->
        match s.Signal.node with
        | Signal.Reg r ->
          let cur =
            match Hashtbl.find_opt reg_av s.Signal.id with
            | Some av -> av
            | None -> Av.top s.Signal.width
          in
          let candidates = ref [] in
          let clear_may1, clear_may0 =
            match r.Signal.clear with
            | None -> (false, true)
            | Some c ->
              let av = get c in
              (may 1 av, may 0 av)
          in
          if clear_may1 then
            candidates :=
              Av.const ~width:s.Signal.width r.Signal.clear_to :: !candidates;
          if clear_may0 then begin
            let en_may1, en_may0 =
              match r.Signal.enable with
              | None -> (true, false)
              | Some e ->
                let av = get e in
                (may 1 av, may 0 av)
            in
            if en_may0 then candidates := cur :: !candidates;
            if en_may1 then candidates := get r.Signal.d :: !candidates
          end;
          let next =
            List.fold_left Av.join cur !candidates
          in
          let next =
            apply_clamp (reg_clamp s.Signal.id)
              (if force_top then
                 (if Av.equal next cur then cur else Av.top s.Signal.width)
               else if widen_now then Av.widen cur next
               else next)
          in
          if not (Av.equal next cur) then begin
            changed := true;
            Hashtbl.replace reg_av s.Signal.id next
          end
        | _ -> ())
      nodes;
    (* sequential update: ram write ports *)
    List.iter
      (fun (r : Signal.ram) ->
        match r.Signal.write_port with
        | None -> ()
        | Some wp ->
          let cur =
            match Hashtbl.find_opt ram_av r.Signal.ram_id with
            | Some av -> av
            | None -> Av.top r.Signal.ram_width
          in
          let we_av = get wp.Signal.we in
          let next =
            if may 1 we_av then Av.join cur (get wp.Signal.wdata) else cur
          in
          let next =
            apply_clamp (ram_clamp r.Signal.ram_id)
              (if force_top then
                 (if Av.equal next cur then cur
                  else Av.top r.Signal.ram_width)
               else if widen_now then Av.widen cur next
               else next)
          in
          if not (Av.equal next cur) then begin
            changed := true;
            Hashtbl.replace ram_av r.Signal.ram_id next
          end)
      (Circuit.rams circuit);
    incr round
  done;
  { circuit; values; reg_av; ram_av; rounds = !round }
