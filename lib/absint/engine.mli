(** Fixpoint dataflow engine over elaborated circuits.

    Computes, for every node of a {!Tl_hw.Circuit.t}, an abstract value
    ({!Av.t}) covering the node's simulated value on {e every} cycle of
    {e every} run, for any input stimulus admitted by the configuration
    (inputs default to top, i.e. arbitrary values every cycle).

    Registers and writable rams carry state: their abstract value is the
    join over all reachable cycles, iterated to a post-fixpoint with
    power-of-two interval widening after [widen_after] rounds.  Ram reads
    join over the cells the address can reach — exactly, via
    {!Av.enumerate}, when the address set is small — and include 0 whenever
    the address may leave the ram, mirroring the simulator's semantics
    (out-of-range reads return 0, out-of-range writes are dropped).

    [reg_clamps] / [ram_clamps] install independently-proven invariants
    (e.g. schedule-unrolled accumulator bounds from {!Proof}): the state is
    met with the clamp after every update. *)

type config = {
  input_av : string -> int -> Av.t;
      (** abstract value assumed for an input, per cycle (name, width) *)
  ram_override : Tl_hw.Signal.ram -> Av.t option;
      (** content summary replacing the ram's own (e.g. declared workload
          data bounds for an input data memory) *)
  widen_after : int;  (** plain-join rounds before widening kicks in *)
  hard_cap : int;     (** rounds before still-changing state goes to top *)
}

val default_config : config
(** Inputs top, no overrides, [widen_after = 32], [hard_cap = 160]. *)

type t

val run : ?config:config -> ?reg_clamps:(int * Av.t) list ->
  ?ram_clamps:(int * Av.t) list -> Tl_hw.Circuit.t -> t
(** Clamp lists are keyed by signal id (registers) / ram id. *)

val value : t -> Tl_hw.Signal.t -> Av.t
(** Abstract value of any node of the analysed circuit (top of the node's
    width for nodes outside it). *)

val ram_state : t -> Tl_hw.Signal.ram -> Av.t
(** Join over the cells of a writable ram across all reachable cycles. *)

val rounds : t -> int
(** Fixpoint iterations performed (diagnostic). *)

val circuit : t -> Tl_hw.Circuit.t
