open Tl_hw

type savings = {
  cells_before : int;
  cells_after : int;
  reg_bits_before : int;
  reg_bits_after : int;
  nodes_before : int;
  nodes_after : int;
}

let facts engine (s : Signal.t) =
  if s.Signal.width >= 62 then None
  else
    let av = Engine.value engine s in
    if av.Av.bm = Signal.mask_to_width s.Signal.width (-1) then None
    else Some (av.Av.bv, av.Av.bm)

let cells c =
  let st = Circuit.stats c in
  st.Circuit.adders + st.Circuit.multipliers + st.Circuit.muxes
  + st.Circuit.logic_ops + st.Circuit.regs

let circuit ?engine c =
  let engine =
    match engine with Some e -> e | None -> Engine.run c
  in
  let narrowed, ram_pairs =
    Rewrite.circuit_with_facts ~facts:(facts engine) c
  in
  let sb = Circuit.stats c and sa = Circuit.stats narrowed in
  ( narrowed,
    ram_pairs,
    { cells_before = cells c;
      cells_after = cells narrowed;
      reg_bits_before = sb.Circuit.reg_bits;
      reg_bits_after = sa.Circuit.reg_bits;
      nodes_before = sb.Circuit.nodes;
      nodes_after = sa.Circuit.nodes } )

let pp_savings fmt s =
  Format.fprintf fmt
    "cells %d -> %d (-%d), register bits %d -> %d (-%d), nodes %d -> %d"
    s.cells_before s.cells_after
    (s.cells_before - s.cells_after)
    s.reg_bits_before s.reg_bits_after
    (s.reg_bits_before - s.reg_bits_after)
    s.nodes_before s.nodes_after
