(** Analysis-driven rewriting: feed the engine's proven bit facts to
    {!Tl_hw.Rewrite.circuit_with_facts}.

    Registers and operators whose high bits are proven constant are
    recomputed at the width of their unknown low bits; fully-proven nodes
    (constant registers, constant ram reads) fold away.  The rewrite is
    simulation-equivalent for every stimulus admitted by the engine
    configuration the facts were computed under — with
    {!Engine.default_config} (inputs top) that is {e every} stimulus, which
    is what the differential fuzz oracle exercises. *)

type savings = {
  cells_before : int;
  cells_after : int;   (** adders+multipliers+muxes+logic+regs *)
  reg_bits_before : int;
  reg_bits_after : int;
  nodes_before : int;
  nodes_after : int;
}

val facts : Engine.t -> Tl_hw.Signal.t -> (int * int) option
(** [(bv, bm)] bit facts read off the fixpoint, suitable for
    {!Tl_hw.Rewrite.circuit_with_facts}; [None] when nothing is known (or
    the signal has native width). *)

val circuit : ?engine:Engine.t -> Tl_hw.Circuit.t ->
  Tl_hw.Circuit.t * (Tl_hw.Signal.ram * Tl_hw.Signal.ram) list * savings
(** Narrow a circuit using [engine]'s facts (a fresh default-config
    fixpoint is computed when omitted).  Returns the rewritten circuit, the
    (old, new) ram pairs, and the size deltas. *)

val pp_savings : Format.formatter -> savings -> unit
