open Tl_hw
module F = Tl_lint.Finding

type result = {
  findings : F.t list;
  proofs : string list;
  engine : Engine.t;
  cycles : int;
  saturation : int option;
}

let safety_rules = [ "L200"; "L201"; "L202" ]

let gate findings =
  List.filter
    (fun (f : F.t) ->
      List.mem f.F.rule safety_rules && f.F.severity <> F.Info)
    findings

let describe (s : Signal.t) =
  match s.Signal.name with
  | Some n -> n
  | None ->
    let kind =
      match s.Signal.node with
      | Signal.Reg _ -> "reg"
      | Signal.Ram_read (r, _) -> "read:" ^ r.Signal.ram_name
      | Signal.Input n -> "input:" ^ n
      | _ -> "sig"
    in
    Printf.sprintf "%s#%d" kind s.Signal.id

(* ------------------------------------------------------------------ *)
(* Accumulator detection: [reg d] where [d] resolves (through wires) to
   [self + term], optionally under a mux whose other arm restarts the
   accumulation.  Covers the PE stationary/tree accumulators, the
   performance counters and plain counter registers of the templates. *)

type acc = {
  reg_sig : Signal.t;
  reg : Signal.reg;
  term : Signal.t;
  reset_arm : (Signal.t * Signal.t * int) option;
      (* (select, restart arm, select value that picks the arm) *)
}

let self_add (reg_sig : Signal.t) (d : Signal.t) =
  match d.Signal.node with
  | Signal.Binop (Signal.Add, a, b) ->
    if (Signal.resolve a).Signal.id = reg_sig.Signal.id then Some b
    else if (Signal.resolve b).Signal.id = reg_sig.Signal.id then Some a
    else None
  | _ -> None

let detect_acc (s : Signal.t) =
  match s.Signal.node with
  | Signal.Reg r when s.Signal.width < 62 -> (
    let d = Signal.resolve r.Signal.d in
    match self_add s d with
    | Some term -> Some { reg_sig = s; reg = r; term; reset_arm = None }
    | None -> (
      match d.Signal.node with
      | Signal.Mux (sel, on1, on0) -> (
        match self_add s (Signal.resolve on1) with
        | Some term ->
          Some { reg_sig = s; reg = r; term; reset_arm = Some (sel, on0, 0) }
        | None -> (
          match self_add s (Signal.resolve on0) with
          | Some term ->
            Some
              { reg_sig = s; reg = r; term; reset_arm = Some (sel, on1, 1) }
          | None -> None))
      | _ -> None))
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Interval walks over the schedule.  Mathematical (unbounded) integers;
   the walk bails once magnitudes leave provable territory. *)

type mode = Unsigned | Signed

let interp mode w v =
  match mode with Unsigned -> v | Signed -> Signal.to_signed w v

let av_interval mode (av : Av.t) =
  match mode with
  | Unsigned -> (av.Av.ulo, av.Av.uhi)
  | Signed -> (av.Av.slo, av.Av.shi)

let fits ~w ~mode (mlo, mhi) =
  match mode with
  | Unsigned -> mlo >= 0 && mhi <= (1 lsl w) - 1
  | Signed -> mlo >= -(1 lsl (w - 1)) && mhi <= (1 lsl (w - 1)) - 1

let bail = 1 lsl 59

(* per-cycle interval of a data term: exact when the (resolved) signal is
   a recorded control stream; refined through muxes whose select is a
   control stream (the templates gate data terms with slice "valid" bits,
   which is what makes accumulators provably quiescent after the
   schedule); otherwise the engine's fixpoint interval *)
let rec term_fn depth mode engine run_opt (s : Signal.t) =
  let s = Signal.resolve s in
  let stream_of x =
    match run_opt with Some run -> Stream.values run x | None -> None
  in
  match stream_of s with
  | Some arr ->
    fun c ->
      let v = interp mode s.Signal.width arr.(c) in
      (v, v)
  | None -> (
    let fallback () =
      let lo, hi = av_interval mode (Engine.value engine s) in
      fun _ -> (lo, hi)
    in
    if depth = 0 then fallback ()
    else
      match s.Signal.node with
      | Signal.Mux (g, a, b) -> (
        match stream_of (Signal.resolve g) with
        | Some garr ->
          let fa = term_fn (depth - 1) mode engine run_opt a in
          let fb = term_fn (depth - 1) mode engine run_opt b in
          fun c -> if garr.(c) <> 0 then fa c else fb c
        | None -> fallback ())
      | _ -> fallback ())

let term_fn mode engine run_opt s = term_fn 6 mode engine run_opt s

(* collect the slice signals the walk will want recorded *)
let rec collect_track slice depth (s : Signal.t) acc =
  let s = Signal.resolve s in
  if Stream.in_slice slice s then s :: acc
  else if depth = 0 then acc
  else
    match s.Signal.node with
    | Signal.Mux (g, a, b) when Stream.in_slice slice (Signal.resolve g) ->
      let acc = Signal.resolve g :: acc in
      collect_track slice (depth - 1) a (collect_track slice (depth - 1) b acc)
    | _ -> acc

let collect_track slice s acc = collect_track slice 6 s acc

type walked = {
  env_lo : int;
  env_hi : int;  (* envelope over the walked window, incl. init *)
  forever : bool;  (* envelope proven to hold on every future cycle *)
}

(* walk one accumulator for [n] cycles.  [sel c] says which mux arm fires,
   [en c] whether the register latches, [cl c] whether it clears; each may
   be [`Unknown] when the control is input-dependent.  Returns [None] when
   the magnitudes blow past provability. *)
let walk ~n ~init ~clear_to ~term ~reset ~sel ~en ~cl ~repeat =
  let lo = ref init and hi = ref init in
  let env_lo = ref init and env_hi = ref init in
  (* state interval entering each cycle, for the periodicity check *)
  let entry_lo = Array.make (n + 1) 0 in
  let entry_hi = Array.make (n + 1) 0 in
  let ok = ref true in
  let c = ref 0 in
  entry_lo.(0) <- init;
  entry_hi.(0) <- init;
  while !ok && !c < n do
    let tlo, thi = term !c in
    let add_lo = !lo + tlo and add_hi = !hi + thi in
    let d_lo, d_hi =
      match sel !c with
      | `NoMux | `Acc -> (add_lo, add_hi)
      | `Reset -> reset !c
      | `Unknown ->
        let rlo, rhi = reset !c in
        (min add_lo rlo, max add_hi rhi)
    in
    let e_lo, e_hi =
      match en !c with
      | `On -> (d_lo, d_hi)
      | `Off -> (!lo, !hi)
      | `Unknown -> (min d_lo !lo, max d_hi !hi)
    in
    let n_lo, n_hi =
      match cl !c with
      | `Run -> (e_lo, e_hi)
      | `Clear -> (clear_to, clear_to)
      | `Unknown -> (min e_lo clear_to, max e_hi clear_to)
    in
    lo := n_lo;
    hi := n_hi;
    env_lo := min !env_lo n_lo;
    env_hi := max !env_hi n_hi;
    if n_hi > bail || n_lo < -bail then ok := false;
    incr c;
    if !ok then begin
      entry_lo.(!c) <- n_lo;
      entry_hi.(!c) <- n_hi
    end
  done;
  if not !ok then None
  else
    let forever =
      (* the slice state entering cycle c2 equals the state entering c1,
         so controls repeat with period c2-c1; if the walked interval at
         c2 is included in the interval at c1, monotonicity of the step
         pushes the inclusion forward forever *)
      match repeat with
      | Some (c1, c2) when c2 <= n ->
        entry_lo.(c2) >= entry_lo.(c1) && entry_hi.(c2) <= entry_hi.(c1)
      | _ -> false
    in
    Some { env_lo = !env_lo; env_hi = !env_hi; forever }

(* ------------------------------------------------------------------ *)

let interval_pp (lo, hi) = Printf.sprintf "[%d, %d]" lo hi

let analyze ?(config = Engine.default_config) ?(cycles = 1024) ?target
    circuit =
  let n = max 1 cycles in
  (* evaluate the slice a little past the schedule so a controller that
     reaches its terminal fixpoint exactly at the end (or a cycle after
     it) still shows up as a repeating state; [Stream] repeats always
     satisfy [c2 <= nrec - 1], so every stream access below is in range *)
  let nrec = n + 4 in
  let target =
    match target with Some t -> t | None -> Circuit.name circuit
  in
  let nodes = Circuit.nodes circuit in
  let slice = Stream.build circuit in
  let findings = ref [] in
  let proofs = ref [] in
  let emit f = findings := f :: !findings in
  let prove p = proofs := p :: !proofs in
  (* -- structural detection ---------------------------------------- *)
  let accs =
    Array.to_list nodes |> List.filter_map detect_acc
  in
  let writable_rams =
    List.filter (fun (r : Signal.ram) -> r.Signal.write_port <> None)
      (Circuit.rams circuit)
  in
  (* -- control streams --------------------------------------------- *)
  let track = ref [] in
  let seen_track = Hashtbl.create 32 in
  let add_track (s : Signal.t) =
    if not (Hashtbl.mem seen_track s.Signal.id) then begin
      Hashtbl.replace seen_track s.Signal.id ();
      track := s :: !track
    end
  in
  let track_if_slice s =
    List.iter add_track (collect_track slice s [])
  in
  List.iter
    (fun (r : Signal.ram) ->
      match r.Signal.write_port with
      | Some wp ->
        track_if_slice wp.Signal.we;
        track_if_slice wp.Signal.waddr
      | None -> ())
    writable_rams;
  List.iter
    (fun a ->
      track_if_slice a.term;
      (match a.reset_arm with
       | Some (sel, arm, _) ->
         track_if_slice sel;
         track_if_slice arm
       | None -> ());
      (match a.reg.Signal.enable with
       | Some e -> track_if_slice e
       | None -> ());
      match a.reg.Signal.clear with
      | Some c -> track_if_slice c
      | None -> ())
    accs;
  let done_sig =
    List.assoc_opt "done" (Circuit.outputs circuit)
    |> Option.map Signal.resolve
  in
  (match done_sig with Some d -> track_if_slice d | None -> ());
  let run_opt =
    if !track = [] then None
    else Some (Stream.record slice ~cycles:nrec ~track:!track)
  in
  let repeat = match run_opt with Some r -> r.Stream.repeat | None -> None in
  let saturation =
    match run_opt with Some r -> r.Stream.saturation | None -> None
  in
  let stream_of (s : Signal.t) =
    match run_opt with
    | Some run -> Stream.values run (Signal.resolve s)
    | None -> None
  in
  (* -- phase 1: unconstrained fixpoint ------------------------------ *)
  let e0 = Engine.run ~config circuit in
  (* -- phase 2: accumulator walks -> register clamps ---------------- *)
  let ctl_sel a =
    match a.reset_arm with
    | None -> fun _ -> `NoMux
    | Some (sel, _, on_v) -> (
      match stream_of sel with
      | Some arr -> fun c -> if arr.(c) = on_v then `Reset else `Acc
      | None -> fun _ -> `Unknown)
  in
  let ctl_en a =
    match a.reg.Signal.enable with
    | None -> fun _ -> `On
    | Some e -> (
      match stream_of e with
      | Some arr -> fun c -> if arr.(c) = 0 then `Off else `On
      | None -> fun _ -> `Unknown)
  in
  let ctl_cl a =
    match a.reg.Signal.clear with
    | None -> fun _ -> `Run
    | Some cs -> (
      match stream_of cs with
      | Some arr -> fun c -> if arr.(c) <> 0 then `Clear else `Run
      | None -> fun _ -> `Unknown)
  in
  let try_mode engine a mode =
    let w = a.reg_sig.Signal.width in
    let init = interp mode w (Signal.mask_to_width w a.reg.Signal.init) in
    let clear_to =
      interp mode w (Signal.mask_to_width w a.reg.Signal.clear_to)
    in
    let term = term_fn mode engine run_opt a.term in
    let reset =
      match a.reset_arm with
      | Some (_, arm, _) -> term_fn mode engine run_opt arm
      | None -> fun _ -> (0, 0)
    in
    match
      walk ~n:nrec ~init ~clear_to ~term ~reset ~sel:(ctl_sel a) ~en:(ctl_en a)
        ~cl:(ctl_cl a) ~repeat
    with
    | Some wk when wk.forever && fits ~w ~mode (wk.env_lo, wk.env_hi) ->
      Some (mode, wk)
    | _ -> None
  in
  let reg_clamps = ref [] in
  List.iter
    (fun a ->
      let w = a.reg_sig.Signal.width in
      match
        (match try_mode e0 a Unsigned with
         | Some r -> Some r
         | None -> try_mode e0 a Signed)
      with
      | Some (mode, wk) ->
        let av =
          match mode with
          | Unsigned -> Av.of_unsigned ~width:w wk.env_lo wk.env_hi
          | Signed -> Av.of_signed ~width:w wk.env_lo wk.env_hi
        in
        reg_clamps := (a.reg_sig.Signal.id, av) :: !reg_clamps;
        prove
          (Printf.sprintf
             "L200 %s: accumulator stays in %s (%d-bit %s range) on every \
              cycle"
             (describe a.reg_sig)
             (interval_pp (wk.env_lo, wk.env_hi))
             w
             (match mode with Unsigned -> "unsigned" | Signed -> "signed"))
      | None ->
        emit
          (F.v ~rule:"L200" ~target ~subject:(describe a.reg_sig)
             (Printf.sprintf
                "%d-bit accumulator not proven wrap-free over the %d-cycle \
                 schedule (envelope unbounded or schedule not proven \
                 periodic)"
                w n)))
    accs;
  let e1 =
    if !reg_clamps = [] then e0
    else Engine.run ~config ~reg_clamps:!reg_clamps circuit
  in
  (* -- phase 3: read-modify-write bank bounds -> ram clamps --------- *)
  let rmw_value (r : Signal.ram) (wp : Signal.write_port) =
    match (Signal.resolve wp.Signal.wdata).Signal.node with
    | Signal.Binop (Signal.Add, x, y) -> (
      let is_self_read (s : Signal.t) =
        match (Signal.resolve s).Signal.node with
        | Signal.Ram_read (r2, a2) ->
          r2.Signal.ram_id = r.Signal.ram_id
          && (Signal.resolve a2).Signal.id
             = (Signal.resolve wp.Signal.waddr).Signal.id
        | _ -> false
      in
      if is_self_read x then Some y else if is_self_read y then Some x
      else None)
    | _ -> None
  in
  let ram_clamps = ref [] in
  List.iter
    (fun (r : Signal.ram) ->
      match r.Signal.write_port with
      | None -> ()
      | Some wp -> (
        match rmw_value r wp with
        | None -> ()
        | Some value -> (
          let w = r.Signal.ram_width in
          match (stream_of wp.Signal.we, stream_of wp.Signal.waddr) with
          | Some we_arr, Some addr_arr when w < 62 -> (
            let active_in_period =
              match repeat with
              | Some (c1, c2) ->
                let active = ref false in
                for c = c1 to c2 - 1 do
                  if we_arr.(c) <> 0 && addr_arr.(c) < r.Signal.size then
                    active := true
                done;
                Some !active
              | _ -> None
            in
            match active_in_period with
            | Some false ->
              (* finite write schedule: count per-cell writes *)
              let counts = Array.make r.Signal.size 0 in
              for c = 0 to nrec - 1 do
                if we_arr.(c) <> 0 && addr_arr.(c) < r.Signal.size then
                  counts.(addr_arr.(c)) <- counts.(addr_arr.(c)) + 1
              done;
              let nmax = Array.fold_left max 0 counts in
              let v_av = Engine.value e1 value in
              let try_bank mode =
                let ilo = ref max_int and ihi = ref min_int in
                Array.iter
                  (fun x ->
                    let v = interp mode w (Signal.mask_to_width w x) in
                    ilo := min !ilo v;
                    ihi := max !ihi v)
                  r.Signal.init_data;
                let vlo, vhi = av_interval mode v_av in
                if
                  nmax > 0
                  && (abs vlo > bail / nmax || abs vhi > bail / nmax)
                then None
                else
                  let lo = !ilo + (nmax * min 0 vlo) in
                  let hi = !ihi + (nmax * max 0 vhi) in
                  if fits ~w ~mode (lo, hi) then Some (mode, lo, hi)
                  else None
              in
              let first, second =
                if v_av.Av.slo < 0 then (Signed, Unsigned)
                else (Unsigned, Signed)
              in
              (match
                 (match try_bank first with
                  | Some r -> Some r
                  | None -> try_bank second)
               with
               | Some (mode, lo, hi) ->
                 let av =
                   match mode with
                   | Unsigned -> Av.of_unsigned ~width:w lo hi
                   | Signed -> Av.of_signed ~width:w lo hi
                 in
                 ram_clamps := (r.Signal.ram_id, av) :: !ram_clamps;
                 prove
                   (Printf.sprintf
                      "L200 %s: bank cells stay in %s (at most %d \
                       accumulating write%s per cell)"
                      r.Signal.ram_name
                      (interval_pp (lo, hi))
                      nmax
                      (if nmax = 1 then "" else "s"))
               | None ->
                 emit
                   (F.v ~rule:"L200" ~target ~subject:r.Signal.ram_name
                      (Printf.sprintf
                         "%d-bit read-modify-write bank not proven \
                          wrap-free (up to %d accumulating writes per cell)"
                         w nmax)))
            | _ ->
              emit
                (F.v ~rule:"L200" ~target ~subject:r.Signal.ram_name
                   (Printf.sprintf
                      "read-modify-write bank unproven: write schedule not \
                       proven periodic within %d cycles"
                      n)))
          | _ ->
            emit
              (F.v ~rule:"L200" ~target ~subject:r.Signal.ram_name
                 "read-modify-write bank unproven: write schedule is \
                  input-dependent"))))
    writable_rams;
  let e2 =
    if !ram_clamps = [] then e1
    else
      Engine.run ~config ~reg_clamps:!reg_clamps ~ram_clamps:!ram_clamps
        circuit
  in
  (* -- phase 4: address-range checks (L201) ------------------------- *)
  List.iter
    (fun (r : Signal.ram) ->
      match r.Signal.write_port with
      | None -> ()
      | Some wp -> (
        match (stream_of wp.Signal.we, stream_of wp.Signal.waddr) with
        | Some we_arr, Some addr_arr ->
          let oob = ref None in
          let total = ref 0 in
          for c = 0 to nrec - 1 do
            if we_arr.(c) <> 0 then begin
              incr total;
              if addr_arr.(c) >= r.Signal.size && !oob = None then
                oob := Some (c, addr_arr.(c))
            end
          done;
          (match !oob with
           | Some (c, a) ->
             emit
               (F.v ~rule:"L201" ~severity:F.Error ~target
                  ~subject:r.Signal.ram_name
                  (Printf.sprintf
                     "scheduled write to address %d at cycle %d is out of \
                      range (size %d): the write is dropped and the result \
                      is lost"
                     a c r.Signal.size))
           | None ->
             prove
               (Printf.sprintf
                  "L201 %s: all %d scheduled writes are in range (size %d)"
                  r.Signal.ram_name !total r.Signal.size))
        | _ ->
          let av = Engine.value e2 wp.Signal.waddr in
          if av.Av.ulo >= r.Signal.size then
            emit
              (F.v ~rule:"L201" ~severity:F.Error ~target
                 ~subject:r.Signal.ram_name
                 (Printf.sprintf
                    "write address is always out of range (>= %d, size %d)"
                    av.Av.ulo r.Signal.size))
          else if av.Av.uhi >= r.Signal.size then
            emit
              (F.v ~rule:"L201" ~target ~subject:r.Signal.ram_name
                 (Printf.sprintf
                    "write address not proven in range: interval [%d, %d] \
                     reaches past size %d (out-of-range writes are dropped)"
                    av.Av.ulo av.Av.uhi r.Signal.size))
          else
            prove
              (Printf.sprintf
                 "L201 %s: write address interval [%d, %d] proven in range \
                  (size %d)"
                 r.Signal.ram_name av.Av.ulo av.Av.uhi r.Signal.size)))
    writable_rams;
  (* may-out-of-range reads: harmless (the simulator returns 0) but worth
     a note; one aggregated finding per ram *)
  let read_notes : (int, string * int) Hashtbl.t = Hashtbl.create 8 in
  Array.iter
    (fun (s : Signal.t) ->
      match s.Signal.node with
      | Signal.Ram_read (r, addr) ->
        let av = Engine.value e2 addr in
        if av.Av.uhi >= r.Signal.size then
          let name = r.Signal.ram_name in
          let _, k =
            Option.value ~default:(name, 0)
              (Hashtbl.find_opt read_notes r.Signal.ram_id)
          in
          Hashtbl.replace read_notes r.Signal.ram_id (name, k + 1)
      | _ -> ())
    nodes;
  Hashtbl.iter
    (fun _ (name, k) ->
      emit
        (F.v ~rule:"L201" ~severity:F.Info ~target ~subject:name
           (Printf.sprintf
              "%d read port%s may address past the end of the memory \
               (out-of-range reads return 0)"
              k
              (if k = 1 then "" else "s"))))
    read_notes;
  (* -- phase 5: schedule quiescence (L202) -------------------------- *)
  List.iter
    (fun (r : Signal.ram) ->
      match r.Signal.write_port with
      | None -> ()
      | Some wp -> (
        match stream_of wp.Signal.we with
        | None ->
          emit
            (F.v ~rule:"L202" ~target ~subject:r.Signal.ram_name
               "write enable is input-dependent: bank schedule cannot be \
                statically verified")
        | Some we_arr -> (
          match repeat with
          | Some (c1, c2) ->
            let active = ref false in
            for c = c1 to c2 - 1 do
              if we_arr.(c) <> 0 then active := true
            done;
            if !active then
              emit
                (F.v ~rule:"L202" ~severity:F.Error ~target
                   ~subject:r.Signal.ram_name
                   (Printf.sprintf
                      "write strobe is active in the schedule's repeating \
                       state (cycles %d..%d repeat forever): the bank \
                       re-accumulates indefinitely"
                      c1 (c2 - 1)))
            else begin
              let writes = ref 0 in
              Array.iter (fun v -> if v <> 0 then incr writes) we_arr;
              prove
                (Printf.sprintf
                   "L202 %s: write schedule quiesces (%d writes, none in \
                    the repeating state from cycle %d)"
                   r.Signal.ram_name !writes c1)
            end
          | _ ->
            emit
              (F.v ~rule:"L202" ~target ~subject:r.Signal.ram_name
                 (Printf.sprintf
                    "write schedule not proven to quiesce: no repeating \
                     controller state found within %d cycles"
                    n)))))
    writable_rams;
  (* controller termination: [done] proven to stick at 1 *)
  (match (done_sig, repeat) with
   | Some d, Some (c1, c2) -> (
     match stream_of d with
     | Some arr ->
       let stuck = ref true in
       for c = c1 to c2 - 1 do
         if arr.(c) = 0 then stuck := false
       done;
       if !stuck then
         prove
           (Printf.sprintf
              "controller terminates: done is asserted in the repeating \
               state (from cycle %d)"
              c1)
     | None -> ())
   | _ -> ());
  (* -- phase 6: constant registers (L203) --------------------------- *)
  let const_regs =
    Array.to_list nodes
    |> List.filter_map (fun (s : Signal.t) ->
        match s.Signal.node with
        | Signal.Reg _ -> (
          match Av.is_const (Engine.value e2 s) with
          | Some v -> Some (s, v)
          | None -> None)
        | _ -> None)
  in
  let named, anon =
    List.partition (fun ((s : Signal.t), _) -> s.Signal.name <> None)
      const_regs
  in
  let shown = ref 0 in
  List.iter
    (fun ((s : Signal.t), v) ->
      if !shown < 8 then begin
        incr shown;
        emit
          (F.v ~rule:"L203" ~target ~subject:(describe s)
             (Printf.sprintf
                "register is proven constant (value %d on every reachable \
                 cycle); it can be folded away"
                v))
      end)
    (named @ anon);
  let rest = List.length const_regs - !shown in
  if rest > 0 then
    emit
      (F.v ~rule:"L203" ~target ~subject:"registers"
         (Printf.sprintf "%d more registers are proven constant" rest));
  (* -- phase 7: provably-constant high bits (L204) ------------------ *)
  let narrow_sigs = ref 0 and narrow_bits = ref 0 in
  Array.iter
    (fun (s : Signal.t) ->
      let av = Engine.value e2 s in
      if Av.is_const av = None then begin
        let k = Av.known_high_bits av in
        if k > 0 then begin
          incr narrow_sigs;
          narrow_bits := !narrow_bits + k
        end
      end)
    nodes;
  if !narrow_sigs > 0 then begin
    emit
      (F.v ~rule:"L204" ~target ~subject:"netlist"
         (Printf.sprintf
            "%d signals carry %d provably-constant high bits in total; \
             datapath widths can be narrowed (see the analysis rewrite)"
            !narrow_sigs !narrow_bits));
    prove
      (Printf.sprintf "L204: %d provably-dead or constant high bits across \
                       %d signals"
         !narrow_bits !narrow_sigs)
  end;
  { findings = List.rev !findings;
    proofs = List.rev !proofs;
    engine = e2;
    cycles = n;
    saturation }
