(** Proof rules: the L2xx lint family, driven by the fixpoint engine
    ({!Engine}) and the exact control-slice streams ({!Stream}).

    {!analyze} runs a multi-phase campaign:

    + a first fixpoint over the circuit (inputs/data per the config);
    + accumulator registers are detected structurally
      ([reg d = mux sel reset (self + term)] up to wires, or a plain
      [self + term] with enable/clear) and their {e mathematical} value is
      walked over the schedule, cycle by cycle, using exact control streams
      for select/enable/clear and interval bounds for the data term.  An
      accumulator whose mathematical envelope fits its register width is
      proven wrap-free; the envelope is installed as a clamp and the
      fixpoint re-runs.  Unproven accumulators raise {b L200}.
    + read-modify-write memory banks ([wdata = ram[waddr] + v] with
      ROM-scheduled [we]/[waddr]) are bounded by counting per-cell writes
      in the exact write schedule; proven banks clamp the ram contents and
      the fixpoint runs a final time.
    + remaining rules fire on the final fixpoint: {b L201} out-of-range
      addresses (error for dropped writes, info for reads — the simulator
      returns 0), {b L202} write schedules that fail to quiesce at the
      controller's terminal state (a stuck strobe re-accumulates forever),
      {b L203} registers proven constant, {b L204} provably-constant high
      bits (the narrowing opportunity {!Narrow} exploits). *)

type result = {
  findings : Tl_lint.Finding.t list;
  proofs : string list;
      (** positive facts established (wrap-free accumulators, in-range
          address streams, quiescing schedules, termination) *)
  engine : Engine.t;  (** final fixpoint, accumulator/bank clamps applied *)
  cycles : int;       (** schedule length the control slice was run for *)
  saturation : int option;
      (** terminal settle index of the control slice, when it was run *)
}

val analyze : ?config:Engine.config -> ?cycles:int -> ?target:string ->
  Tl_hw.Circuit.t -> result
(** [cycles] is the schedule length to evaluate the control slice for
    (default 1024; pass the accelerator's planned run length).  [target]
    names the circuit in findings (defaults to the circuit's name). *)

val safety_rules : string list
(** The rules whose findings should gate a build: ["L200"; "L201"; "L202"]
    (at warning severity or above — info-level L201 read notes are
    harmless by simulator semantics). *)

val gate : Tl_lint.Finding.t list -> Tl_lint.Finding.t list
(** The subset of findings that violate {!safety_rules}. *)
