open Tl_hw
module F = Tl_lint.Finding

type t = {
  target : string;
  findings : F.t list;
  proofs : string list;
  cycles : int;
  saturation : int option;
  safe : bool;
  stats_before : Circuit.stats;
  stats_after : Circuit.stats;
  savings : Narrow.savings;
  area_before : float;
  area_after : float;
}

let of_circuit ?config ?cycles ?target circuit =
  let pr = Proof.analyze ?config ?cycles ?target circuit in
  let narrowed, _rams, savings =
    Narrow.circuit ~engine:pr.Proof.engine circuit
  in
  let area c = (Tl_cost.Asic.evaluate_netlist c).Tl_cost.Asic.area in
  { target =
      (match target with Some t -> t | None -> Circuit.name circuit);
    findings = pr.Proof.findings;
    proofs = pr.Proof.proofs;
    cycles = pr.Proof.cycles;
    saturation = pr.Proof.saturation;
    safe = Proof.gate pr.Proof.findings = [];
    stats_before = Circuit.stats circuit;
    stats_after = Circuit.stats narrowed;
    savings;
    area_before = area circuit;
    area_after = area narrowed }

let of_accel ?data_bound (a : Tl_templates.Accel.t) =
  let config =
    match data_bound with
    | None -> Engine.default_config
    | Some b ->
      let b = abs b in
      let data_ids =
        List.map
          (fun (_, (r : Signal.ram)) -> r.Signal.ram_id)
          a.Tl_templates.Accel.input_rams
      in
      { Engine.default_config with
        Engine.ram_override =
          (fun r ->
            if List.mem r.Signal.ram_id data_ids then
              Some (Av.of_signed ~width:r.Signal.ram_width (-b) b)
            else None) }
  in
  of_circuit ~config
    ~cycles:(Tl_templates.Accel.planned_cycles a)
    a.Tl_templates.Accel.circuit

let pp fmt t =
  let errors, warnings, infos = F.count t.findings in
  Format.fprintf fmt "@[<v>analysis of %s (%d-cycle schedule%s)@," t.target
    t.cycles
    (match t.saturation with
     | Some s -> Printf.sprintf ", controller quiesces at cycle %d" s
     | None -> "");
  Format.fprintf fmt "verdict: %s (%d errors, %d warnings, %d notes)@,"
    (if t.safe then "SAFE - all overflow/address/schedule rules proven"
     else "UNPROVEN - safety rules left open")
    errors warnings infos;
  if t.proofs <> [] then begin
    Format.fprintf fmt "proofs:@,";
    List.iter (fun p -> Format.fprintf fmt "  + %s@," p) t.proofs
  end;
  if t.findings <> [] then begin
    Format.fprintf fmt "findings:@,";
    List.iter
      (fun f -> Format.fprintf fmt "  %a@," F.pp f)
      (List.sort F.compare t.findings)
  end;
  Format.fprintf fmt
    "narrowing: %a@,area: %.1f -> %.1f (%+.1f%%)@]" Narrow.pp_savings
    t.savings t.area_before t.area_after
    (if t.area_before > 0. then
       100. *. (t.area_after -. t.area_before) /. t.area_before
     else 0.)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json t =
  let b = Buffer.create 1024 in
  let errors, warnings, infos = F.count t.findings in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf "  \"target\": \"%s\",\n" (json_escape t.target));
  Buffer.add_string b (Printf.sprintf "  \"cycles\": %d,\n" t.cycles);
  Buffer.add_string b
    (Printf.sprintf "  \"saturation\": %s,\n"
       (match t.saturation with Some s -> string_of_int s | None -> "null"));
  Buffer.add_string b
    (Printf.sprintf "  \"safe\": %b,\n  \"errors\": %d,\n  \
                     \"warnings\": %d,\n  \"infos\": %d,\n"
       t.safe errors warnings infos);
  Buffer.add_string b "  \"proofs\": [";
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Printf.sprintf "\"%s\"" (json_escape p)))
    t.proofs;
  Buffer.add_string b "],\n  \"findings\": [";
  List.iteri
    (fun i (f : F.t) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf
           "{\"rule\": \"%s\", \"severity\": \"%s\", \"subject\": \"%s\", \
            \"message\": \"%s\"}"
           f.F.rule
           (F.severity_label f.F.severity)
           (json_escape f.F.subject)
           (json_escape f.F.message)))
    (List.sort F.compare t.findings);
  Buffer.add_string b "],\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"rewrite\": {\"cells_before\": %d, \"cells_after\": %d, \
        \"reg_bits_before\": %d, \"reg_bits_after\": %d, \
        \"nodes_before\": %d, \"nodes_after\": %d},\n"
       t.savings.Narrow.cells_before t.savings.Narrow.cells_after
       t.savings.Narrow.reg_bits_before t.savings.Narrow.reg_bits_after
       t.savings.Narrow.nodes_before t.savings.Narrow.nodes_after);
  Buffer.add_string b
    (Printf.sprintf "  \"area_before\": %.3f,\n  \"area_after\": %.3f\n}"
       t.area_before t.area_after);
  Buffer.contents b
