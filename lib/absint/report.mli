(** Whole-accelerator analysis reports.

    Runs the proof campaign ({!Proof.analyze}) over a circuit or a
    generated accelerator, narrows it with the proven facts ({!Narrow})
    and prices the saving with the ASIC cost model — the user-facing
    product behind [tensorlib analyze] and the [bench-absint] gate. *)

type t = {
  target : string;
  findings : Tl_lint.Finding.t list;
  proofs : string list;
  cycles : int;          (** schedule length the control slice was run for *)
  saturation : int option;
  safe : bool;           (** no L200/L201/L202 finding at warning or above *)
  stats_before : Tl_hw.Circuit.stats;
  stats_after : Tl_hw.Circuit.stats;
  savings : Narrow.savings;
  area_before : float;   (** {!Tl_cost.Asic} area units *)
  area_after : float;
}

val of_circuit : ?config:Engine.config -> ?cycles:int -> ?target:string ->
  Tl_hw.Circuit.t -> t

val of_accel : ?data_bound:int -> Tl_templates.Accel.t -> t
(** Analyse a generated accelerator over its planned schedule length.  The
    pre-loaded input data memories give the engine exact data bounds; pass
    [data_bound] to instead assume every input element lies in
    [-data_bound .. data_bound] (proofs then transfer to {e any} data a
    DMA engine may load within that bound, not just the baked-in arrays). *)

val pp : Format.formatter -> t -> unit
val to_json : t -> string
