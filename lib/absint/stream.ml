open Tl_hw

type t = {
  circuit : Circuit.t;
  tainted : (int, unit) Hashtbl.t;  (* node id -> depends on inputs/ram *)
}

(* dependencies for the taint pass: sequential edges included, ram write
   ports excluded (a read of a writable ram is tainted directly) *)
let taint_children (s : Signal.t) =
  match s.Signal.node with
  | Signal.Reg r ->
    (r.Signal.d :: Option.to_list r.Signal.enable)
    @ Option.to_list r.Signal.clear
  | Signal.Ram_read (r, addr) ->
    if r.Signal.write_port <> None then [] else [ addr ]
  | Signal.Wire w -> ( match !w with Some d -> [ d ] | None -> [])
  | Signal.Input _ | Signal.Const _ -> []
  | Signal.Unop (_, a) | Signal.Repl (a, _) | Signal.Select (a, _, _) -> [ a ]
  | Signal.Binop (_, a, b) | Signal.Concat (a, b) -> [ a; b ]
  | Signal.Mux (c, a, b) -> [ c; a; b ]

let build circuit =
  let nodes = Circuit.nodes circuit in
  let tainted : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  let taint (s : Signal.t) = Hashtbl.replace tainted s.Signal.id () in
  let is_tainted (s : Signal.t) = Hashtbl.mem tainted s.Signal.id in
  (* seed *)
  Array.iter
    (fun (s : Signal.t) ->
      match s.Signal.node with
      | Signal.Input _ -> taint s
      | Signal.Ram_read (r, _) when r.Signal.write_port <> None -> taint s
      | _ -> ())
    nodes;
  (* propagate to a fixpoint; register back-edges need repeated passes *)
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun (s : Signal.t) ->
        if
          (not (is_tainted s)) && List.exists is_tainted (taint_children s)
        then begin
          taint s;
          changed := true
        end)
      nodes
  done;
  { circuit; tainted }

let in_slice t (s : Signal.t) = not (Hashtbl.mem t.tainted s.Signal.id)

type run = {
  cycles : int;
  streams : (int * int array) list;
  saturation : int option;
  repeat : (int * int) option;
}

let record t ~cycles ~track =
  List.iter
    (fun (s : Signal.t) ->
      if not (in_slice t s) then
        invalid_arg
          (Printf.sprintf
             "Stream.record: signal %d is input-dependent (outside the \
              control slice)"
             s.Signal.id))
    track;
  let nodes = Circuit.nodes t.circuit in
  (* dense indices for slice nodes, in topological order *)
  let index : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let slice =
    Array.of_list
      (Array.to_list nodes |> List.filter (fun s -> in_slice t s))
  in
  Array.iteri
    (fun i (s : Signal.t) -> Hashtbl.replace index s.Signal.id i)
    slice;
  let n = Array.length slice in
  let vals = Array.make n 0 in
  let idx (s : Signal.t) = Hashtbl.find index s.Signal.id in
  let v s = vals.(idx s) in
  (* register state, by dense index of the reg node *)
  let regs =
    Array.to_list slice
    |> List.filter_map (fun (s : Signal.t) ->
        match s.Signal.node with
        | Signal.Reg r -> Some (idx s, s.Signal.width, r)
        | _ -> None)
  in
  let state = Hashtbl.create 16 in
  List.iter
    (fun (i, _, (r : Signal.reg)) -> Hashtbl.replace state i r.Signal.init)
    regs;
  let m w x = Signal.mask_to_width w x in
  let settle () =
    Array.iteri
      (fun i (s : Signal.t) ->
        let w = s.Signal.width in
        vals.(i) <-
          (match s.Signal.node with
           | Signal.Input _ -> assert false
           | Signal.Const c -> c
           | Signal.Unop (Signal.Not, a) -> m w (lnot (v a))
           | Signal.Binop (op, a, b) -> (
             let va = v a and vb = v b in
             let aw = a.Signal.width in
             match op with
             | Signal.Add -> m w (va + vb)
             | Signal.Sub -> m w (va - vb)
             | Signal.Mul -> m w (va * vb)
             | Signal.And -> va land vb
             | Signal.Or -> va lor vb
             | Signal.Xor -> va lxor vb
             | Signal.Eq -> if va = vb then 1 else 0
             | Signal.Ult -> if va < vb then 1 else 0
             | Signal.Slt ->
               if Signal.to_signed aw va < Signal.to_signed aw vb then 1
               else 0
             | Signal.Shl k -> m w (va lsl k)
             | Signal.Shr k -> va lsr k
             | Signal.Sra k -> m w (Signal.to_signed aw va asr k))
           | Signal.Mux (c, x, y) -> if v c <> 0 then v x else v y
           | Signal.Concat (hi, lo) ->
             m w ((v hi lsl lo.Signal.width) lor v lo)
           | Signal.Repl (a, k) ->
             let acc = ref 0 in
             let aw = a.Signal.width in
             for _ = 1 to k do
               acc := (!acc lsl aw) lor v a
             done;
             m w !acc
           | Signal.Select (a, _, lo) -> m w (v a lsr lo)
           | Signal.Reg _ -> Hashtbl.find state i
           | Signal.Wire r -> (
             match !r with Some d -> v d | None -> 0)
           | Signal.Ram_read (r, addr) ->
             let a = v addr in
             if a >= 0 && a < r.Signal.size then r.Signal.init_data.(a)
             else 0))
      slice
  in
  let latch () =
    let any_change = ref false in
    let nexts =
      List.map
        (fun (i, w, (r : Signal.reg)) ->
          let cleared =
            match r.Signal.clear with
            | Some c when v c <> 0 -> Some r.Signal.clear_to
            | _ -> None
          in
          let next =
            match cleared with
            | Some cv -> cv
            | None -> (
              match r.Signal.enable with
              | Some e when v e = 0 -> Hashtbl.find state i
              | _ -> m w (v r.Signal.d))
          in
          (i, next))
        regs
    in
    List.iter
      (fun (i, next) ->
        if Hashtbl.find state i <> next then begin
          any_change := true;
          Hashtbl.replace state i next
        end)
      nexts;
    !any_change
  in
  let streams =
    List.map (fun (s : Signal.t) -> (s.Signal.id, Array.make cycles 0)) track
  in
  let saturation = ref None in
  let repeat = ref None in
  let seen : (int list, int) Hashtbl.t = Hashtbl.create 64 in
  let state_key () = List.map (fun (i, _, _) -> Hashtbl.find state i) regs in
  for c = 0 to cycles - 1 do
    if !repeat = None then begin
      let k = state_key () in
      match Hashtbl.find_opt seen k with
      | Some c1 -> repeat := Some (c1, c)
      | None -> Hashtbl.add seen k c
    end;
    settle ();
    List.iter2
      (fun (s : Signal.t) (_, arr) -> arr.(c) <- v s)
      track streams;
    let changed = latch () in
    if (not changed) && !saturation = None then saturation := Some c
  done;
  { cycles; streams; saturation = !saturation; repeat = !repeat }

let values run (s : Signal.t) = List.assoc_opt s.Signal.id run.streams
