(** Exact evaluation of the control slice.

    The {e control slice} of a circuit is the set of nodes whose value
    never depends on an input port or on a writable memory: constants,
    ROM reads, and registers fed only by such nodes.  In generated
    accelerators this covers the whole controller — cycle / pass counters,
    schedule ROMs, write-enable and address streams, validity bitmaps — so
    the slice can be mini-simulated deterministically to give {e exact}
    per-cycle value streams, turning schedule properties (bank-conflict
    freedom, address bounds, termination) into decidable checks.

    The slice simulation mirrors {!Tl_hw.Sim}: out-of-range ROM reads
    return 0; registers latch with clear-priority-over-enable. *)

type t

val build : Tl_hw.Circuit.t -> t
(** Classify every node of the circuit.  No simulation happens yet. *)

val in_slice : t -> Tl_hw.Signal.t -> bool
(** Is the node's value input-independent (deterministic per cycle)? *)

type run = {
  cycles : int;                    (** settles performed *)
  streams : (int * int array) list;  (** tracked signal id -> per-cycle value *)
  saturation : int option;
      (** first settle index [c] such that latching after [c] left every
          slice register unchanged — from then on the slice repeats state
          [c] forever (the controller's terminal fixpoint) *)
  repeat : (int * int) option;
      (** first [(c1, c2)] such that the full slice register state entering
          cycle [c2] equals the state entering cycle [c1 < c2]: the slice
          is periodic from [c1] with period [c2 - c1], so every recorded
          stream repeats that window forever.  A terminal fixpoint shows up
          as period 1. *)
}

val record : t -> cycles:int -> track:Tl_hw.Signal.t list -> run
(** Simulate the slice for [cycles] settle/latch steps, recording the
    settled per-cycle values of each tracked signal.  Tracked signals must
    be in the slice.
    @raise Invalid_argument if a tracked signal is outside the slice. *)

val values : run -> Tl_hw.Signal.t -> int array option
(** The recorded stream of a tracked signal. *)
