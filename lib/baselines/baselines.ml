type t = {
  name : string;
  device : Tl_cost.Fpga.device;
  supports : Tl_stt.Design.t -> bool;
  published : workload:string -> Tl_cost.Fpga.report option;
}

let systolic_only (design : Tl_stt.Design.t) =
  List.for_all
    (fun (ti : Tl_stt.Design.tensor_info) ->
      match ti.Tl_stt.Design.dataflow with
      | Tl_stt.Dataflow.Systolic _ | Tl_stt.Dataflow.Stationary _ -> true
      | Tl_stt.Dataflow.Unicast | Tl_stt.Dataflow.Multicast _
      | Tl_stt.Dataflow.Reuse2d _ | Tl_stt.Dataflow.Reuse_full -> false)
    design.Tl_stt.Design.tensors

let row ~generator ~device ~workload ~macs ~lut ~dsp ~bram ~mhz ~gops =
  { Tl_cost.Fpga.generator; device; workload; macs; lut_pct = lut;
    dsp_pct = dsp; bram_pct = bram; mhz; gops }

let polysa =
  { name = "PolySA";
    device = Tl_cost.Fpga.vu9p;
    supports = systolic_only;
    published =
      (fun ~workload ->
        match workload with
        | "MM" ->
          Some
            (row ~generator:"PolySA" ~device:"VU9P" ~workload:"MM"
               ~macs:1522 ~lut:49. ~dsp:89. ~bram:89. ~mhz:229. ~gops:555.)
        | "Conv" ->
          Some
            (row ~generator:"PolySA" ~device:"VU9P" ~workload:"Conv"
               ~macs:1522 ~lut:49. ~dsp:89. ~bram:71. ~mhz:229. ~gops:548.)
        | _ -> None) }

let susy =
  { name = "Susy";
    device = Tl_cost.Fpga.arria10;
    supports = systolic_only;
    published =
      (fun ~workload ->
        match workload with
        | "MM" ->
          Some
            (row ~generator:"Susy" ~device:"Arria-10" ~workload:"MM"
               ~macs:1412 ~lut:40. ~dsp:93. ~bram:32. ~mhz:202. ~gops:547.)
        | "Conv" ->
          Some
            (row ~generator:"Susy" ~device:"Arria-10" ~workload:"Conv"
               ~macs:1275 ~lut:35. ~dsp:84. ~bram:30. ~mhz:220. ~gops:551.)
        | _ -> None) }

let all = [ susy; polysa ]

let best_supported_design stmt baseline =
  let candidates =
    List.concat_map
      (fun selected ->
        List.filter_map
          (fun m ->
            let t = Tl_stt.Transform.v stmt ~selected ~matrix:m in
            let d = Tl_stt.Design.analyze t in
            if baseline.supports d then Some d else None)
          (Tl_stt.Search.candidate_matrices ~n:3))
      (Tl_stt.Search.selections stmt ~n:3)
  in
  (* distinct names only: evaluating every matrix would repeat work *)
  let seen = Hashtbl.create 32 in
  let distinct =
    List.filter
      (fun d ->
        let name = d.Tl_stt.Design.name in
        if Hashtbl.mem seen name then false
        else begin
          Hashtbl.add seen name ();
          true
        end)
      candidates
  in
  List.fold_left
    (fun best d ->
      let r = Tl_perf.Perf_model.evaluate d in
      match best with
      | None -> Some (d, r)
      | Some (_, rb) ->
        if r.Tl_perf.Perf_model.cycles < rb.Tl_perf.Perf_model.cycles then
          Some (d, r)
        else best)
    None distinct
