(** Baseline generator models: PolySA (ICCAD'18) and Susy (ICCAD'20).

    Both are systolic-array-only generators (§VI-C): their design space is
    the subset of TensorLib's where every tensor moves systolically or
    stays stationary — no multicast buses, reduction trees, unicast ports,
    or 2-D reuse planes.  [supports] implements that restriction, which is
    what makes them unable to generate hardware for e.g. Depthwise
    convolution (no large reduction dimension ⇒ no good systolic design).

    Their Table-III resource/frequency/throughput rows are the numbers
    published for those tools (we cannot run closed external generators;
    see DESIGN.md), exposed as {!Tl_cost.Fpga.report} values so the bench
    prints one homogeneous table. *)

type t = {
  name : string;
  device : Tl_cost.Fpga.device;
  supports : Tl_stt.Design.t -> bool;
  published : workload:string -> Tl_cost.Fpga.report option;
      (** Published Table-III row for "MM" or "Conv". *)
}

val polysa : t
val susy : t
val all : t list

val systolic_only : Tl_stt.Design.t -> bool
(** The dataflow-space restriction shared by both baselines. *)

val best_supported_design :
  Tl_ir.Stmt.t -> t -> (Tl_stt.Design.t * Tl_perf.Perf_model.result) option
(** Best-performing design (by the cycle model) within the baseline's
    restricted space, or [None] when the space is empty for this workload
    — the Depthwise-Conv case. *)
