(* Einsum-to-descriptor compiler: lower a new design onto an existing
   programmable netlist (see Tl_templates.Accel, ~programmable) without
   re-elaborating hardware.  Compilation re-runs scheduling in software
   (Tl_templates.Layout), checks compatibility against the target's
   recorded structure and capacity envelope, and emits a program —
   descriptor-memory images plus data-memory layout — that
   [Accel.load_program] installs in a few memory writes.

   Every rejection is a typed [error]; a successful compile never yields
   a program the loader would refuse. *)

open Tl_templates

type error =
  | Not_programmable
  | Unsupported_design of string
  | Tensor_mismatch of { target : int; requested : int }
  | Dataflow_mismatch of { position : int; target : string; requested : string }
  | Structure_mismatch
  | Capacity_exceeded of { what : string; need : int; capacity : int }
  | Width_overflow of { mem : string; value : int; width : int }

let error_to_string = function
  | Not_programmable -> "target accelerator is not programmable"
  | Unsupported_design msg -> "unsupported design: " ^ msg
  | Tensor_mismatch { target; requested } ->
    Printf.sprintf "tensor count mismatch: target has %d, request has %d"
      target requested
  | Dataflow_mismatch { position; target; requested } ->
    Printf.sprintf
      "dataflow class mismatch at tensor %d: target %s, request %s" position
      target requested
  | Structure_mismatch ->
    "netlist structure mismatch: the schedules differ beyond table contents"
  | Capacity_exceeded { what; need; capacity } ->
    Printf.sprintf "%s exceed the envelope: need %d, capacity %d" what need
      capacity
  | Width_overflow { mem; value; width } ->
    Printf.sprintf "image %s: value %d overflows the generated %d-bit port"
      mem value width

let ( let* ) = Result.bind

let dataflow_check (target : Tl_stt.Design.t) (request : Tl_stt.Design.t) =
  let td = target.Tl_stt.Design.tensors
  and rd = request.Tl_stt.Design.tensors in
  let tn = List.length td and rn = List.length rd in
  if tn <> rn then Error (Tensor_mismatch { target = tn; requested = rn })
  else
    let rec go i = function
      | [], [] -> Ok ()
      | (t : Tl_stt.Design.tensor_info) :: ts,
        (r : Tl_stt.Design.tensor_info) :: rs ->
        let ts' = Tl_stt.Dataflow.to_string t.Tl_stt.Design.dataflow in
        let rs' = Tl_stt.Dataflow.to_string r.Tl_stt.Design.dataflow in
        if ts' <> rs' then
          Error
            (Dataflow_mismatch { position = i; target = ts'; requested = rs' })
        else go (i + 1) (ts, rs)
      | _ -> assert false
    in
    go 0 (td, rd)

(* positional tensor renaming: request tensor i → target tensor i (the
   structure check makes any deeper mismatch fail anyway) *)
let rename_of (target : Tl_stt.Design.t) (request : Tl_stt.Design.t) =
  let name (ti : Tl_stt.Design.tensor_info) =
    ti.Tl_stt.Design.access.Tl_ir.Access.tensor
  in
  let pairs =
    List.map2
      (fun t r -> (name r, name t))
      target.Tl_stt.Design.tensors request.Tl_stt.Design.tensors
  in
  fun n -> match List.assoc_opt n pairs with Some n' -> n' | None -> n

let capacity_check (env : Layout.envelope) (l : Layout.t) =
  let* () =
    if l.Layout.l_total > env.Layout.env_cycles then
      Error
        (Capacity_exceeded
           { what = "schedule cycles"; need = l.Layout.l_total;
             capacity = env.Layout.env_cycles })
    else Ok ()
  in
  let* () =
    if l.Layout.l_passes > env.Layout.env_passes then
      Error
        (Capacity_exceeded
           { what = "schedule passes"; need = l.Layout.l_passes;
             capacity = env.Layout.env_passes })
    else Ok ()
  in
  let* () =
    List.fold_left
      (fun acc (inp : Layout.input) ->
        let* () = acc in
        if inp.Layout.in_elems > env.Layout.env_elems then
          Error
            (Capacity_exceeded
               { what =
                   Printf.sprintf "tensor %s elements" inp.Layout.in_tensor;
                 need = inp.Layout.in_elems;
                 capacity = env.Layout.env_elems })
        else Ok ())
      (Ok ()) l.Layout.l_inputs
  in
  List.fold_left
    (fun acc (name, capacity, _used) ->
      let* () = acc in
      if max 1 capacity > max 1 env.Layout.env_bank then
        Error
          (Capacity_exceeded
             { what = Printf.sprintf "bank %s cells" name;
               need = max 1 capacity; capacity = env.Layout.env_bank })
      else Ok ())
    (Ok ()) l.Layout.l_banks

(* belt-and-suspenders: with the capacity checks above every image value
   fits its envelope-derived port width, but verify against the widths
   the target actually elaborated so a compile success is a load
   guarantee *)
let width_check (pi : Accel.prog_info) (l : Layout.t) =
  List.fold_left
    (fun acc (name, (ram : Tl_hw.Signal.ram)) ->
      let* () = acc in
      match
        List.find_opt (fun (m : Layout.mem) -> m.Layout.m_name = name)
          l.Layout.l_mems
      with
      | None -> Error Structure_mismatch
      | Some m ->
        let w = ram.Tl_hw.Signal.ram_width in
        let lim = if w >= Sys.int_size - 1 then max_int else 1 lsl w in
        let bad = ref None in
        Array.iter
          (fun v -> if (v < 0 || v >= lim) && !bad = None then bad := Some v)
          m.Layout.m_image;
        (match !bad with
         | Some value -> Error (Width_overflow { mem = name; value; width = w })
         | None -> Ok ()))
    (Ok ()) pi.Accel.pi_mems

let compile ~(target : Accel.t) (request : Tl_stt.Design.t) =
  let* pi =
    match target.Accel.prog with
    | Some pi -> Ok pi
    | None -> Error Not_programmable
  in
  let* () =
    if Tl_stt.Design.netlist_supported request then Ok ()
    else
      Error
        (Unsupported_design
           ("no netlist template for " ^ request.Tl_stt.Design.name))
  in
  let* () = dataflow_check target.Accel.design request in
  let rename = rename_of target.Accel.design request in
  let* l =
    try Ok (Layout.build ~rename request ~rows:target.Accel.rows
              ~cols:target.Accel.cols)
    with Layout.Unsupported msg -> Error (Unsupported_design msg)
  in
  let* () =
    if l.Layout.l_structure = pi.Accel.pi_structure then Ok ()
    else Error Structure_mismatch
  in
  let* () = capacity_check pi.Accel.pi_envelope l in
  let* () = width_check pi l in
  Ok (Layout.to_program l)

let find_design ~(target : Accel.t) stmt =
  let candidates = Tl_stt.Search.all_designs stmt in
  let rec go errs = function
    | [] -> Error (List.rev errs)
    | (name, design) :: rest -> (
      match compile ~target design with
      | Ok p -> Ok (design, p)
      | Error e -> go ((name, e) :: errs) rest)
  in
  go [] candidates

(* ------------------------------------------------------------------ *)
(* Program codec: a versioned one-line JSON document.  Decoding
   revalidates everything it can without the target (schema, types,
   non-negative addresses, digest integrity), so a program that parses
   is well-formed; target-dependent checks happen at load time.         *)

module Json = Tl_store.Json

let schema = "tensorlib-program/1"

let json_int n = Json.Num (float_of_int n)

let json_ints l = Json.List (List.map json_int l)

let json_int_array a = Json.List (Array.to_list a |> List.map json_int)

let program_to_json (p : Layout.program) =
  let images =
    List.map
      (fun (name, (domain, data)) ->
        Json.Obj
          [ ("mem", Json.Str name);
            ("domain", Json.Str (Layout.domain_string domain));
            ("data", json_int_array data) ])
      p.Layout.p_images
  in
  let inputs =
    List.map
      (fun (i : Layout.input) ->
        Json.Obj
          [ ("tensor", Json.Str i.Layout.in_tensor);
            ("mem", Json.Str i.Layout.in_mem);
            ("elems", json_int i.Layout.in_elems);
            ("shape", json_int_array i.Layout.in_shape) ])
      p.Layout.p_inputs
  in
  let out =
    List.map
      (fun (idx, (bank, addr)) ->
        Json.Obj
          [ ("index", json_ints idx);
            ("bank", Json.Str bank);
            ("addr", json_int addr) ])
      p.Layout.p_out
  in
  Json.to_string
    (Json.Obj
       [ ("schema", Json.Str schema);
         ("name", Json.Str p.Layout.p_name);
         ("structure_digest",
          Json.Str (Layout.structure_digest p.Layout.p_structure));
         ("structure", Json.Str p.Layout.p_structure);
         ("total", json_int p.Layout.p_total);
         ("passes", json_int p.Layout.p_passes);
         ("events", json_int p.Layout.p_events);
         ("images", Json.List images);
         ("inputs", Json.List inputs);
         ("out", Json.List out);
         ("out_shape", json_int_array p.Layout.p_out_shape) ])

let ( let+ ) r f = Result.map f r

let field j name =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "program: missing field %S" name)

let as_string name j =
  match Json.string_opt j with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "program: field %S must be a string" name)

let as_nat name j =
  match Json.int_opt j with
  | Some n when n >= 0 -> Ok n
  | _ -> Error (Printf.sprintf "program: field %S must be a non-negative int" name)

let as_list name j =
  match j with
  | Json.List l -> Ok l
  | _ -> Error (Printf.sprintf "program: field %S must be a list" name)

let nat_array name j =
  let* l = as_list name j in
  List.fold_left
    (fun acc v ->
      let* acc = acc in
      let* n = as_nat name v in
      Ok (n :: acc))
    (Ok []) l
  |> Result.map (fun l -> Array.of_list (List.rev l))

let str_field j name =
  let* v = field j name in
  as_string name v

let nat_field j name =
  let* v = field j name in
  as_nat name v

let map_result f l =
  List.fold_left
    (fun acc v ->
      let* acc = acc in
      let+ r = f v in
      r :: acc)
    (Ok []) l
  |> Result.map List.rev

let program_of_json s =
  let* j = Json.parse s in
  let* sch = str_field j "schema" in
  let* () =
    if sch = schema then Ok ()
    else Error (Printf.sprintf "program: unknown schema %S (want %S)" sch schema)
  in
  let* name = str_field j "name" in
  let* structure = str_field j "structure" in
  let* digest = str_field j "structure_digest" in
  let* () =
    if Layout.structure_digest structure = digest then Ok ()
    else Error "program: structure digest mismatch (corrupt document)"
  in
  let* total = nat_field j "total" in
  let* passes = nat_field j "passes" in
  let* events = nat_field j "events" in
  let* images_j = field j "images" in
  let* images_l = as_list "images" images_j in
  let* images =
    map_result
      (fun ij ->
        let* mem = str_field ij "mem" in
        let* dom_s = str_field ij "domain" in
        let* domain =
          match dom_s with
          | "cycle" -> Ok Layout.Cycle
          | "pass" -> Ok Layout.Pass
          | d -> Error (Printf.sprintf "program: unknown image domain %S" d)
        in
        let* data_j = field ij "data" in
        let* data = nat_array "data" data_j in
        let* () =
          (* cycle images must cover the whole run the loader will time *)
          if domain = Layout.Cycle && Array.length data <> total then
            Error
              (Printf.sprintf
                 "program: image %s has %d entries, expected total %d" mem
                 (Array.length data) total)
          else if domain = Layout.Pass && Array.length data <> passes + 1 then
            Error
              (Printf.sprintf
                 "program: image %s has %d entries, expected passes+1 = %d"
                 mem (Array.length data) (passes + 1))
          else Ok ()
        in
        Ok (mem, (domain, data)))
      images_l
  in
  let* inputs_j = field j "inputs" in
  let* inputs_l = as_list "inputs" inputs_j in
  let* inputs =
    map_result
      (fun ij ->
        let* in_tensor = str_field ij "tensor" in
        let* in_mem = str_field ij "mem" in
        let* in_elems = nat_field ij "elems" in
        let* shape_j = field ij "shape" in
        let* in_shape = nat_array "shape" shape_j in
        let* () =
          if Array.fold_left ( * ) 1 in_shape = in_elems then Ok ()
          else
            Error
              (Printf.sprintf "program: tensor %s shape/elems disagree"
                 in_tensor)
        in
        Ok { Layout.in_tensor; in_mem; in_elems; in_shape })
      inputs_l
  in
  let* out_j = field j "out" in
  let* out_l = as_list "out" out_j in
  let* out =
    map_result
      (fun oj ->
        let* idx_j = field oj "index" in
        let* idx = nat_array "index" idx_j in
        let* bank = str_field oj "bank" in
        let* addr = nat_field oj "addr" in
        Ok (Array.to_list idx, (bank, addr)))
      out_l
  in
  let* out_shape_j = field j "out_shape" in
  let* p_out_shape = nat_array "out_shape" out_shape_j in
  Ok
    { Layout.p_name = name; p_structure = structure; p_total = total;
      p_passes = passes; p_events = events; p_images = images;
      p_inputs = inputs; p_out = out; p_out_shape }
