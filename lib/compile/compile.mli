(** Einsum-to-descriptor compiler for programmable accelerators.

    A programmable netlist ({!Tl_templates.Accel.generate} with
    [~programmable]) fixes the array geometry, dataflow classes and
    interconnect, but keeps every schedule table in writable descriptor
    memories.  [compile ~target request] re-runs scheduling in software
    ({!Tl_templates.Layout}), checks that [request] is compatible with
    [target] — same netlist structure, schedule and data fitting the
    declared capacity envelope — and emits a {!Tl_templates.Layout.program}
    that {!Tl_templates.Accel.load_program} installs in a handful of
    memory writes, no re-elaboration.

    Compatibility (v1) is exact structural equality: the request must
    elaborate the same canonical structure string as the target's
    generating design.  In practice this admits any einsum differing only
    in the {e temporal} (unselected) extents — e.g. one 4×4 output-
    stationary GEMM array serves every reduction depth that fits the
    envelope — while spatial-extent or dataflow changes are rejected with
    a typed {!error}, never a malformed program. *)

type error =
  | Not_programmable
      (** target was generated without [~programmable] *)
  | Unsupported_design of string
      (** the request has no netlist template, or scheduling it failed
          (footprint overflow, drain-chain conflict, …) *)
  | Tensor_mismatch of { target : int; requested : int }
      (** tensor counts differ — no positional correspondence exists *)
  | Dataflow_mismatch of { position : int; target : string; requested : string }
      (** tensor [position]'s dataflow class differs, so the fixed
          interconnect cannot realise the request *)
  | Structure_mismatch
      (** dataflows match but the elaborated shapes differ (spatial
          extents, active-PE footprint, chain topology, …) *)
  | Capacity_exceeded of { what : string; need : int; capacity : int }
      (** the schedule or data exceeds the envelope dimension [what] *)
  | Width_overflow of { mem : string; value : int; width : int }
      (** an image value does not fit the generated port width (cannot
          occur when the capacity checks pass; kept as a final guarantee
          that a compile success is a load success) *)

val error_to_string : error -> string

val compile : target:Tl_templates.Accel.t -> Tl_stt.Design.t ->
  (Tl_templates.Layout.program, error) result
(** Compile [request] onto [target].  Request tensors are renamed
    positionally onto the target's, so environments keyed by the request's
    own tensor names load directly ([Layout.input.in_tensor] keeps the
    request-side name).  A returned program is guaranteed loadable on
    [target]. *)

val find_design : target:Tl_templates.Accel.t -> Tl_ir.Stmt.t ->
  (Tl_stt.Design.t * Tl_templates.Layout.program,
   (string * error) list) result
(** Sweep every STT candidate for [stmt] ({!Tl_stt.Search.all_designs})
    and return the first that compiles onto [target] — "can this netlist
    run this einsum at all?".  On failure, the per-candidate rejection
    reasons (design name, error), in search order. *)

(** {2 Program codec}

    One-line JSON documents (schema ["tensorlib-program/1"]), carrying
    the full structure string plus its digest so a decoded program is
    integrity-checked before it ever reaches a loader. *)

val schema : string

val program_to_json : Tl_templates.Layout.program -> string

val program_of_json : string ->
  (Tl_templates.Layout.program, string) result
(** Parse and validate: schema, field types, non-negative values, image
    lengths against the declared total/passes, shape/element agreement,
    structure-digest integrity.  A program that decodes is well-formed;
    target-dependent checks remain with {!Tl_templates.Accel.load_program}. *)
