(** TensorLib public facade.

    One-stop API over the framework's layers; see the per-module docs for
    details.  The typical flow is:

    {[
      let stmt   = Tensorlib.Workloads.gemm ~m:64 ~n:64 ~k:64 in
      let design = Tensorlib.design_of_name stmt "MNK-SST" in
      let env    = Tensorlib.Exec.alloc_inputs stmt in
      let acc    = Tensorlib.generate ~rows:8 ~cols:8 design env in
      let out    = Tensorlib.Accel.execute acc in
      print_string (Tensorlib.Accel.verilog acc)
    ]} *)

(* Linear algebra substrate *)
module Rat = Tl_linalg.Rat
module Vec = Tl_linalg.Vec
module Mat = Tl_linalg.Mat

(* Tensor-algebra IR *)
module Iter = Tl_ir.Iter
module Tiling = Tl_ir.Tiling
module Access = Tl_ir.Access
module Stmt = Tl_ir.Stmt
module Dense = Tl_ir.Dense
module Exec = Tl_ir.Exec
module Workloads = Tl_ir.Workloads
module Parse = Tl_ir.Parse

(* Space-time transformation and dataflow analysis *)
module Dataflow = Tl_stt.Dataflow
module Transform = Tl_stt.Transform
module Reuse = Tl_stt.Reuse
module Design = Tl_stt.Design
module Search = Tl_stt.Search
module Signature = Tl_stt.Signature

(* Hardware DSL *)
module Signal = Tl_hw.Signal
module Circuit = Tl_hw.Circuit
module Verilog = Tl_hw.Verilog
module Sim = Tl_hw.Sim
module Vcd = Tl_hw.Vcd
module Activity = Tl_hw.Activity
module Rewrite = Tl_hw.Rewrite

(* Static analysis (lint) *)
module Lint = struct
  module Finding = Tl_lint.Finding
  module Netlist = Tl_lint.Netlist_lint
  module Design = Tl_lint.Design_lint
end

(* Abstract interpretation: fixpoint engine, proof rules, narrowing *)
module Absint = struct
  module Av = Tl_absint.Av
  module Engine = Tl_absint.Engine
  module Stream = Tl_absint.Stream
  module Proof = Tl_absint.Proof
  module Narrow = Tl_absint.Narrow
  module Report = Tl_absint.Report
end

(* Hardware templates and generation *)
module Pe_modules = Tl_templates.Pe_modules
module Reduce_tree = Tl_templates.Reduce_tree
module Schedule = Tl_templates.Schedule
module Topology = Tl_templates.Topology
module Accel = Tl_templates.Accel
module Harden = Tl_templates.Harden
module Layout = Tl_templates.Layout

(* Runtime programming: einsum → descriptor-memory program *)
module Compile = Tl_compile.Compile

(* Fault injection and resilience *)
module Fault = Tl_fault.Fault
module Abft = Tl_fault.Abft
module Campaign = Tl_fault.Campaign

(* Parallel work pool *)
module Par = Tl_par

(* Software-layer resilience: budgets, retries, chaos, checkpoints *)
module Resil = struct
  module Budget = Tl_resil.Budget
  module Retry = Tl_resil.Retry
  module Chaos = Tl_resil.Chaos
  module Checkpoint = Tl_resil.Checkpoint
end

(* Observability: counter validation, measured-activity power, tracing *)
module Obs = struct
  module Counters = Tl_obs.Counters
  module Power = Tl_obs.Power
  module Trace = Tl_obs.Trace
end

(* Models and exploration *)
module Perf = Tl_perf.Perf_model
module Metrics = Tl_perf.Metrics
module Inventory = Tl_cost.Inventory
module Asic = Tl_cost.Asic
module Fpga = Tl_cost.Fpga
module Enumerate = Tl_dse.Enumerate
module Explore = Tl_dse.Explore
module Network = Tl_dse.Network

(* Persistent design store + line-oriented JSON *)
module Store = Tl_store.Store
module Json = Tl_store.Json
module Baselines = Tl_baselines.Baselines

let design_of_name = Search.find_design_exn
let analyze stmt ~select ~matrix =
  Design.analyze (Transform.by_names stmt select ~matrix)

let generate = Accel.generate
let simulate = Accel.execute
let evaluate_performance = Perf.evaluate
let evaluate_asic = Asic.evaluate

let version = "1.0.0"
