type params = {
  p_mult : float;
  p_mac_adder : float;
  p_tree_adder : float;
  p_reg_bit : float;
  p_mux_bit : float;
  p_wire_unit : float;
  p_bank : float;
  p_bank_port : float;
  p_stationary_ctrl : float;
  p_base : float;
  a_mult : float;
  a_adder : float;
  a_reg_bit : float;
  a_mux_bit : float;
  a_wire_unit : float;
  a_bank : float;
  a_stationary_ctrl : float;
  a_base : float;
}

let default_params =
  { p_mult = 0.040;
    p_mac_adder = 0.018;
    p_tree_adder = 0.015;
    p_reg_bit = 0.00045;
    p_mux_bit = 0.00020;
    p_wire_unit = 0.015;
    p_bank = 0.015;
    p_bank_port = 0.030;
    p_stationary_ctrl = 1.5;
    p_base = 4.0;
    a_mult = 1.00;
    a_adder = 0.22;
    a_reg_bit = 0.0025;
    a_mux_bit = 0.0028;
    a_wire_unit = 0.010;
    a_bank = 1.20;
    a_stationary_ctrl = 4.0;
    a_base = 30.0 }

type report = {
  design_name : string;
  area : float;
  power_mw : float;
  breakdown : (string * float) list;
}

(* Reports are memoised per exact design (identity signature — the module
   inventory depends on dataflow directions, so no symmetry folding) and
   geometry.  Custom coefficient sets bypass the cache. *)
let report_cache : report Tl_par.Cache.t =
  Tl_par.Cache.create ~name:"asic.evaluate" ()

let evaluate_uncached ~params ?rows ?cols ?data_width ?acc_width design =
  let inv = Inventory.of_design ?rows ?cols ?data_width ?acc_width design in
  let f = float_of_int in
  let p = params in
  let breakdown =
    [ ("compute",
       (f inv.Inventory.multipliers *. p.p_mult)
       +. (f inv.Inventory.mac_adders *. p.p_mac_adder)
       +. (f inv.Inventory.tree_adders *. p.p_tree_adder));
      ("registers",
       (f inv.Inventory.dw_reg_bits *. p.p_reg_bit)
       +. (f inv.Inventory.aw_reg_bits *. p.p_reg_bit)
       +. (f inv.Inventory.mux_bits *. p.p_mux_bit));
      ("interconnect", inv.Inventory.wire_units *. p.p_wire_unit);
      ("memory",
       (f inv.Inventory.banks *. p.p_bank)
       +. (f inv.Inventory.bank_ports *. p.p_bank_port));
      ("control",
       (f inv.Inventory.stationary_tensors *. p.p_stationary_ctrl)
       +. p.p_base) ]
  in
  let power_mw = List.fold_left (fun acc (_, v) -> acc +. v) 0. breakdown in
  let area =
    (f inv.Inventory.multipliers *. p.a_mult)
    +. (f (inv.Inventory.mac_adders + inv.Inventory.tree_adders) *. p.a_adder)
    +. (f (inv.Inventory.dw_reg_bits + inv.Inventory.aw_reg_bits)
        *. p.a_reg_bit)
    +. (f inv.Inventory.mux_bits *. p.a_mux_bit)
    +. (inv.Inventory.wire_units *. p.a_wire_unit)
    +. (f inv.Inventory.banks *. p.a_bank)
    +. (f inv.Inventory.stationary_tensors *. p.a_stationary_ctrl)
    +. p.a_base
  in
  { design_name = design.Tl_stt.Design.name; area; power_mw; breakdown }

let evaluate ?(params = default_params) ?rows ?cols ?data_width ?acc_width
    design =
  if params != default_params then
    evaluate_uncached ~params ?rows ?cols ?data_width ?acc_width design
  else
    let geom =
      let d = function None -> "-" | Some v -> string_of_int v in
      Printf.sprintf "%s,%s,%s,%s|" (d rows) (d cols) (d data_width)
        (d acc_width)
    in
    let stmt =
      design.Tl_stt.Design.transform.Tl_stt.Transform.stmt
    in
    Tl_par.Cache.find_or_add report_cache
      (geom
      ^ Tl_stt.Signature.stmt_fingerprint stmt
      ^ Tl_stt.Signature.identity_signature design)
      (fun () ->
        evaluate_uncached ~params:default_params ?rows ?cols ?data_width
          ?acc_width design)

type activity = {
  alpha_compute : float;
  alpha_reg : float;
  alpha_mem : float;
}

let full_activity = { alpha_compute = 1.; alpha_reg = 1.; alpha_mem = 1. }

let evaluate_netlist ?(params = default_params) ?(activity = full_activity)
    circuit =
  let st = Tl_hw.Circuit.stats circuit in
  let f = float_of_int in
  let p = params in
  (* dynamic categories scale with their measured (or assumed) switching
     activity; the control/base term is treated as static *)
  let breakdown =
    [ ("compute",
       activity.alpha_compute
       *. ((f st.Tl_hw.Circuit.multipliers *. p.p_mult)
           +. (f st.Tl_hw.Circuit.adders *. p.p_mac_adder)));
      ("registers",
       activity.alpha_reg
       *. ((f st.Tl_hw.Circuit.reg_bits *. p.p_reg_bit)
           +. (f st.Tl_hw.Circuit.muxes *. 16. *. p.p_mux_bit)));
      ("memory",
       activity.alpha_mem
       *. ((f st.Tl_hw.Circuit.rams *. p.p_bank)
           +. (f st.Tl_hw.Circuit.ram_bits *. 0.00001)));
      ("control", p.p_base) ]
  in
  let power_mw = List.fold_left (fun acc (_, v) -> acc +. v) 0. breakdown in
  let area =
    (f st.Tl_hw.Circuit.multipliers *. p.a_mult)
    +. (f st.Tl_hw.Circuit.adders *. p.a_adder)
    +. (f st.Tl_hw.Circuit.reg_bits *. p.a_reg_bit)
    +. (f st.Tl_hw.Circuit.muxes *. 16. *. p.a_mux_bit)
    +. (f st.Tl_hw.Circuit.rams *. p.a_bank)
    +. p.a_base
  in
  { design_name = Tl_hw.Circuit.name circuit; area; power_mw; breakdown }

let pp_report ppf r =
  Format.fprintf ppf "@[%-12s area=%.1f power=%.1fmW (%s)@]" r.design_name
    r.area r.power_mw
    (String.concat ", "
       (List.map (fun (k, v) -> Printf.sprintf "%s=%.1f" k v) r.breakdown))
