(** ASIC area/power model (Fig. 6).

    Charges each design exactly the modules its dataflows instantiate
    ({!Inventory}), with per-module area/energy coefficients calibrated to
    the paper's 55 nm synthesis ranges (GEMM 16×16 INT16 at 320 MHz:
    ~35–63 mW, ~1.8× energy spread, ~1.16× area spread).  Absolute numbers
    are a calibrated model, not a synthesis run (see DESIGN.md); the
    *relative* structure — which dataflows cost more and why — comes
    entirely from the module inventory. *)

type params = {
  p_mult : float;        (** mW per 16-bit multiplier at full activity *)
  p_mac_adder : float;
  p_tree_adder : float;
  p_reg_bit : float;
  p_mux_bit : float;
  p_wire_unit : float;
  p_bank : float;
  p_bank_port : float;
  p_stationary_ctrl : float;  (** stage control per stationary tensor *)
  p_base : float;             (** controller + clock tree *)
  a_mult : float;        (** area units (≈ kGE/10) per module *)
  a_adder : float;
  a_reg_bit : float;
  a_mux_bit : float;
  a_wire_unit : float;
  a_bank : float;
  a_stationary_ctrl : float;
  a_base : float;
}

val default_params : params

type report = {
  design_name : string;
  area : float;        (** arbitrary units; see {!params} *)
  power_mw : float;
  breakdown : (string * float) list;  (** power by category *)
}

val evaluate : ?params:params -> ?rows:int -> ?cols:int -> ?data_width:int ->
  ?acc_width:int -> Tl_stt.Design.t -> report

type activity = {
  alpha_compute : float;  (** MAC datapath activity (multipliers, adders) *)
  alpha_reg : float;      (** register/mux switching activity *)
  alpha_mem : float;      (** memory port access activity *)
}
(** Per-category switching-activity factors scaling the dynamic terms of
    {!evaluate_netlist}; the control/base term is treated as static.
    Measured factors come from a {!Tl_hw.Activity} probe run
    (see [Tl_obs.Power]); the default assumes full activity. *)

val full_activity : activity
(** All factors 1.0 — the assumption the un-instrumented model makes. *)

val evaluate_netlist : ?params:params -> ?activity:activity ->
  Tl_hw.Circuit.t -> report
(** Cost an {i elaborated} circuit from its actual cell counts (registers,
    adders, multipliers, muxes, memory bits) with the same coefficients —
    a cross-check of the analytic {!Inventory}-based model against the
    generated netlist (interconnect length is not recoverable from a flat
    netlist and is priced at zero here).  With [activity] (default
    {!full_activity}, numerically identical to the historical behaviour)
    the compute / register / memory power categories are scaled by their
    measured activity factors; area is unaffected. *)

val pp_report : Format.formatter -> report -> unit
