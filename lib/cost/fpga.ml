type device = {
  dev_name : string;
  luts : int;
  dsps : int;
  brams : int;
  fabric_mhz : float;
  dsp_per_fp32_mac : float;
  dsp_per_int16_mac : float;
}

let vu9p =
  { dev_name = "VU9P"; luts = 1_182_000; dsps = 6840; brams = 2160;
    fabric_mhz = 350.; dsp_per_fp32_mac = 4.; dsp_per_int16_mac = 1. }

let arria10 =
  { dev_name = "Arria-10"; luts = 854_400; dsps = 1518; brams = 2713;
    fabric_mhz = 300.; dsp_per_fp32_mac = 1.; dsp_per_int16_mac = 1. }

type style = {
  style_name : string;
  freq_factor : float;
  lut_per_mac : float;
  lut_per_pe_ctrl : float;
  bram_per_bank : float;
  bram_buffer : float;
}

let rtl_style =
  { style_name = "tensorlib-rtl"; freq_factor = 0.87; lut_per_mac = 560.;
    lut_per_pe_ctrl = 600.; bram_per_bank = 8.; bram_buffer = 880. }

let rtl_floorplanned = { rtl_style with style_name = "tensorlib-rtl+floorplan"; freq_factor = 0.94 }

type datatype = Fp32 | Int16

type report = {
  generator : string;
  device : string;
  workload : string;
  macs : int;
  lut_pct : float;
  dsp_pct : float;
  bram_pct : float;
  mhz : float;
  gops : float;
}

(* long fan-out nets and deep trees lower achievable frequency *)
let dataflow_freq_factor (design : Tl_stt.Design.t) =
  let penalty =
    List.fold_left
      (fun acc (ti : Tl_stt.Design.tensor_info) ->
        match ti.Tl_stt.Design.dataflow with
        | Tl_stt.Dataflow.Multicast _ -> acc *. 0.96
        | Tl_stt.Dataflow.Reuse2d Tl_stt.Dataflow.Broadcast -> acc *. 0.92
        | Tl_stt.Dataflow.Reuse2d _ -> acc *. 0.96
        | Tl_stt.Dataflow.Unicast -> acc *. 0.95
        | Tl_stt.Dataflow.Systolic _ | Tl_stt.Dataflow.Stationary _
        | Tl_stt.Dataflow.Reuse_full -> acc)
      1.0 design.Tl_stt.Design.tensors
  in
  penalty

let evaluate ?(style = rtl_style) ?(buffer_scale = 1.0) ~device ~rows ~cols
    ~vec ~datatype ~efficiency ~workload design =
  let inv =
    Inventory.of_design ~rows ~cols
      ~data_width:(match datatype with Fp32 -> 32 | Int16 -> 16)
      design
  in
  let pes = rows * cols in
  let macs = pes * vec in
  let dsp_per_mac =
    match datatype with
    | Fp32 -> device.dsp_per_fp32_mac
    | Int16 -> device.dsp_per_int16_mac
  in
  let dsps = float_of_int macs *. dsp_per_mac in
  let luts =
    (float_of_int macs *. style.lut_per_mac)
    +. (float_of_int pes *. style.lut_per_pe_ctrl)
    +. (float_of_int inv.Inventory.banks *. 120.)
  in
  let brams =
    (float_of_int inv.Inventory.banks *. style.bram_per_bank)
    +. (style.bram_buffer *. buffer_scale)
  in
  let bram_frac = brams /. float_of_int device.brams in
  (* memory-macro congestion lowers fmax for RTL flows; baselines publish
     flat frequencies *)
  let mhz =
    device.fabric_mhz *. style.freq_factor
    *. dataflow_freq_factor design
    *. (if style.style_name = "tensorlib-rtl" then 1. -. (0.268 *. bram_frac)
        else 1.)
  in
  let gops = 2. *. float_of_int macs *. mhz *. 1e6 *. efficiency /. 1e9 in
  { generator = style.style_name;
    device = device.dev_name;
    workload;
    macs;
    lut_pct = 100. *. luts /. float_of_int device.luts;
    dsp_pct = 100. *. dsps /. float_of_int device.dsps;
    bram_pct = 100. *. brams /. float_of_int device.brams;
    mhz;
    gops }

let pp_report ppf r =
  Format.fprintf ppf
    "@[%-24s %-9s %-5s LUT=%2.0f%% DSP=%2.0f%% BRAM=%2.0f%% %3.0fMHz %4.0f \
     Gop/s@]"
    r.generator r.device r.workload r.lut_pct r.dsp_pct r.bram_pct r.mhz
    r.gops
