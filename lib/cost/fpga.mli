(** FPGA resource / frequency / throughput model (Table III).

    Structure (MAC count, bank count, interconnect class) comes from the
    design; unit costs and fabric characteristics are per-device and
    per-generator-style constants calibrated against published numbers
    (Vivado is not available in this environment — see DESIGN.md).  The
    headline comparison (TensorLib ≈ +21% Gop/s over the best baseline
    generator) emerges from the frequency model (RTL vs HLS styles) and the
    MAC budget each generator reaches. *)

type device = {
  dev_name : string;
  luts : int;
  dsps : int;
  brams : int;
  fabric_mhz : float;  (** achievable fmax for hand-tuned RTL *)
  dsp_per_fp32_mac : float;
  dsp_per_int16_mac : float;
}

val vu9p : device
val arria10 : device

type style = {
  style_name : string;
  freq_factor : float;      (** fraction of fabric fmax the flow reaches *)
  lut_per_mac : float;
  lut_per_pe_ctrl : float;
  bram_per_bank : float;
  bram_buffer : float;      (** double-buffered tile storage *)
}

val rtl_style : style
(** TensorLib: generated Chisel/Verilog RTL. *)

val rtl_floorplanned : style
(** TensorLib + AutoBridge-style floorplanning (§VI-C: MM → 328 MHz). *)

type datatype = Fp32 | Int16

type report = {
  generator : string;
  device : string;
  workload : string;
  macs : int;
  lut_pct : float;
  dsp_pct : float;
  bram_pct : float;
  mhz : float;
  gops : float;
}

val evaluate : ?style:style -> ?buffer_scale:float -> device:device ->
  rows:int -> cols:int -> vec:int -> datatype:datatype -> efficiency:float ->
  workload:string -> Tl_stt.Design.t -> report
(** [vec] is the per-PE vectorisation degree (the paper uses 8);
    [efficiency] is sustained/peak throughput (take it from
    {!Tl_perf.Perf_model.result.pipelined_perf} for TensorLib designs);
    [buffer_scale] scales the double-buffered tile storage (convolutions
    hold halos and weights: ≈1.45). *)

val pp_report : Format.formatter -> report -> unit
