type t = {
  pes : int;
  multipliers : int;
  mac_adders : int;
  tree_adders : int;
  dw_reg_bits : int;
  aw_reg_bits : int;
  mux_bits : int;
  wire_units : float;
  banks : int;
  bank_ports : int;
  stationary_tensors : int;
  has_unicast : bool;
}

(* number of distinct lines of an R×C grid along direction d *)
let line_count rows cols d =
  let total = rows * cols in
  let len =
    (* length of a maximal line segment inside the grid *)
    let steps_r = if d.(0) = 0 then max_int else (rows - 1) / abs d.(0) in
    let steps_c = if d.(1) = 0 then max_int else (cols - 1) / abs d.(1) in
    1 + min steps_r steps_c
  in
  (total + len - 1) / len

let of_design ?(rows = 16) ?(cols = 16) ?(data_width = 16) ?(acc_width = 32)
    (design : Tl_stt.Design.t) =
  let pes = rows * cols in
  let n_inputs = List.length (Tl_stt.Design.input_infos design) in
  let inv =
    ref
      { pes;
        multipliers = pes * max 1 (n_inputs - 1);
        mac_adders = 0;
        tree_adders = 0;
        dw_reg_bits = 0;
        aw_reg_bits = 0;
        mux_bits = 0;
        wire_units = 0.;
        banks = 0;
        bank_ports = 0;
        stationary_tensors = 0;
        has_unicast = false }
  in
  let add f = inv := f !inv in
  let boundary dp =
    (* number of chain-entry PEs for a systolic direction *)
    line_count rows cols dp
  in
  let input_tensor (df : Tl_stt.Dataflow.t) =
    match df with
    | Tl_stt.Dataflow.Unicast ->
      add (fun i ->
          { i with banks = i.banks + pes; bank_ports = i.bank_ports + pes;
            has_unicast = true })
    | Tl_stt.Dataflow.Stationary _ ->
      add (fun i ->
          { i with
            dw_reg_bits = i.dw_reg_bits + (2 * pes * data_width);
            mux_bits = i.mux_bits + (pes * data_width);
            stationary_tensors = i.stationary_tensors + 1;
            banks = i.banks + 1;
            bank_ports = i.bank_ports + 1 })
    | Tl_stt.Dataflow.Systolic { dp; dt } ->
      let feeders = boundary dp in
      add (fun i ->
          { i with
            dw_reg_bits = i.dw_reg_bits + (dt * pes * data_width);
            wire_units = i.wire_units +. float_of_int pes;
            banks = i.banks + feeders;
            bank_ports = i.bank_ports + feeders })
    | Tl_stt.Dataflow.Multicast { dp } ->
      (* long fan-out nets: heavier switching per pitch than systolic hops *)
      let lines = line_count rows cols dp in
      add (fun i ->
          { i with
            wire_units = i.wire_units +. (4.0 *. float_of_int pes);
            banks = i.banks + lines;
            bank_ports = i.bank_ports + lines })
    | Tl_stt.Dataflow.Reuse2d Tl_stt.Dataflow.Broadcast ->
      add (fun i ->
          { i with
            wire_units = i.wire_units +. (4.5 *. float_of_int pes);
            banks = i.banks + 1;
            bank_ports = i.bank_ports + 1 })
    | Tl_stt.Dataflow.Reuse2d
        (Tl_stt.Dataflow.Multicast_stationary { multicast }) ->
      let lines = line_count rows cols multicast in
      add (fun i ->
          { i with
            dw_reg_bits = i.dw_reg_bits + (2 * pes * data_width);
            mux_bits = i.mux_bits + (pes * data_width);
            wire_units = i.wire_units +. float_of_int pes;
            stationary_tensors = i.stationary_tensors + 1;
            banks = i.banks + lines;
            bank_ports = i.bank_ports + lines })
    | Tl_stt.Dataflow.Reuse2d
        (Tl_stt.Dataflow.Systolic_multicast { multicast; systolic }) ->
      let lines = line_count rows cols multicast in
      add (fun i ->
          { i with
            dw_reg_bits =
              i.dw_reg_bits
              + (systolic.Tl_stt.Dataflow.dt * pes * data_width);
            wire_units = i.wire_units +. (2. *. float_of_int pes);
            banks = i.banks + lines;
            bank_ports = i.bank_ports + lines })
    | Tl_stt.Dataflow.Reuse_full ->
      add (fun i ->
          { i with
            dw_reg_bits = i.dw_reg_bits + (pes * data_width);
            wire_units = i.wire_units +. (1.5 *. float_of_int pes);
            banks = i.banks + 1;
            bank_ports = i.bank_ports + 1 })
  in
  let output_tensor (df : Tl_stt.Dataflow.t) =
    match df with
    | Tl_stt.Dataflow.Unicast ->
      add (fun i ->
          { i with
            mac_adders = i.mac_adders + pes;
            banks = i.banks + pes;
            bank_ports = i.bank_ports + pes;
            has_unicast = true })
    | Tl_stt.Dataflow.Stationary _ ->
      add (fun i ->
          { i with
            mac_adders = i.mac_adders + pes;
            aw_reg_bits = i.aw_reg_bits + (2 * pes * acc_width);
            mux_bits = i.mux_bits + (pes * acc_width);
            stationary_tensors = i.stationary_tensors + 1;
            banks = i.banks + cols;
            bank_ports = i.bank_ports + cols })
    | Tl_stt.Dataflow.Systolic { dp; dt } ->
      let exits = boundary dp in
      add (fun i ->
          { i with
            mac_adders = i.mac_adders + pes;
            aw_reg_bits = i.aw_reg_bits + (dt * pes * acc_width);
            wire_units = i.wire_units +. (2. *. float_of_int pes);
            banks = i.banks + exits;
            bank_ports = i.bank_ports + exits })
    | Tl_stt.Dataflow.Multicast { dp } ->
      let lines = line_count rows cols dp in
      add (fun i ->
          { i with
            tree_adders = i.tree_adders + (pes - lines);
            wire_units = i.wire_units +. (2. *. float_of_int pes);
            banks = i.banks + lines;
            bank_ports = i.bank_ports + lines })
    | Tl_stt.Dataflow.Reuse2d
        (Tl_stt.Dataflow.Multicast_stationary { multicast }) ->
      let lines = line_count rows cols multicast in
      add (fun i ->
          { i with
            tree_adders = i.tree_adders + (pes - lines);
            mac_adders = i.mac_adders + lines;
            aw_reg_bits = i.aw_reg_bits + (lines * acc_width);
            wire_units = i.wire_units +. (2. *. float_of_int pes);
            stationary_tensors = i.stationary_tensors + 1;
            banks = i.banks + lines;
            bank_ports = i.bank_ports + lines })
    | Tl_stt.Dataflow.Reuse2d Tl_stt.Dataflow.Broadcast ->
      add (fun i ->
          { i with
            tree_adders = i.tree_adders + (pes - 1);
            wire_units = i.wire_units +. (3. *. float_of_int pes);
            banks = i.banks + 1;
            bank_ports = i.bank_ports + 1 })
    | Tl_stt.Dataflow.Reuse2d (Tl_stt.Dataflow.Systolic_multicast { multicast; systolic }) ->
      let lines = line_count rows cols multicast in
      add (fun i ->
          { i with
            tree_adders = i.tree_adders + (pes - lines);
            aw_reg_bits =
              i.aw_reg_bits + (systolic.Tl_stt.Dataflow.dt * lines * acc_width);
            wire_units = i.wire_units +. (4.0 *. float_of_int pes);
            banks = i.banks + lines;
            bank_ports = i.bank_ports + lines })
    | Tl_stt.Dataflow.Reuse_full ->
      add (fun i ->
          { i with
            tree_adders = i.tree_adders + (pes - 1);
            aw_reg_bits = i.aw_reg_bits + acc_width;
            wire_units = i.wire_units +. (3. *. float_of_int pes);
            banks = i.banks + 1;
            bank_ports = i.bank_ports + 1 })
  in
  List.iter
    (fun (ti : Tl_stt.Design.tensor_info) ->
      match ti.Tl_stt.Design.role with
      | Tl_stt.Design.Input -> input_tensor ti.Tl_stt.Design.dataflow
      | Tl_stt.Design.Output -> output_tensor ti.Tl_stt.Design.dataflow)
    design.Tl_stt.Design.tensors;
  !inv

let pp ppf i =
  Format.fprintf ppf
    "@[pes=%d mul=%d macadd=%d treeadd=%d dwregs=%db awregs=%db mux=%db \
     wires=%.0f banks=%d ports=%d stationary=%d%s@]"
    i.pes i.multipliers i.mac_adders i.tree_adders i.dw_reg_bits
    i.aw_reg_bits i.mux_bits i.wire_units i.banks i.bank_ports
    i.stationary_tensors
    (if i.has_unicast then " unicast" else "")
