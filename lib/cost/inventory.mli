(** Hardware module inventory of a design.

    Counts the modules the generator instantiates for each tensor's
    dataflow class on an [rows × cols] array — the same selection logic as
    the netlist backend, kept analytic so the full design space (Fig. 6)
    can be costed without elaborating 181 netlists.  Units:

    - register counts are in {i bits};
    - [wire_units] approximates interconnect length in PE pitches (a
      systolic hop is 1 unit per PE, a multicast line of length L driven
      every cycle contributes L units, a broadcast spans the array). *)

type t = {
  pes : int;
  multipliers : int;       (** one per extra input operand per PE *)
  mac_adders : int;        (** accumulator adders (stationary/systolic out) *)
  tree_adders : int;       (** reduction-tree adders *)
  dw_reg_bits : int;       (** pipeline/hold registers at data width *)
  aw_reg_bits : int;       (** registers at accumulator width *)
  mux_bits : int;
  wire_units : float;
  banks : int;
  bank_ports : int;        (** simultaneous scratchpad ports needed *)
  stationary_tensors : int;
  has_unicast : bool;
}

val of_design : ?rows:int -> ?cols:int -> ?data_width:int -> ?acc_width:int ->
  Tl_stt.Design.t -> t
(** Defaults: 16×16, 16-bit data, 32-bit accumulators. *)

val pp : Format.formatter -> t -> unit
