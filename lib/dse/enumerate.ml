type point = {
  design : Tl_stt.Design.t;
  signature : string;
}

(* Two designs whose interconnects differ only by a rotation/reflection of
   the square array are the same hardware; canonicalisation under the
   dihedral group D4 lives in {!Tl_stt.Signature}. *)
let signature = Tl_stt.Signature.signature

let design_space ?max_unselected ?(exclude_unicast = false)
    ?max_bank_ports ?domains ?(budget = Tl_resil.Budget.unlimited) stmt =
  let depth = Tl_ir.Stmt.depth stmt in
  let selections =
    List.filter
      (fun sel ->
        match max_unselected with
        | None -> true
        | Some k -> depth - Array.length sel <= k)
      (Tl_stt.Search.selections stmt ~n:3)
  in
  let matrices = Tl_stt.Search.candidate_matrices ~n:3 in
  (* analyse each selection's matrix sweep in its own task; the dedup stays
     sequential over the concatenated (selection-order, matrix-order)
     stream, so the kept representative and the output order are identical
     to the serial enumeration *)
  let per_selection selected =
    let analyze = Tl_stt.Design.analyzer stmt ~selected in
    (* within one selection the identity signature is a function of the
       dataflow list alone (fixed tensor names, injective rendering), so
       repeats can be dropped on the structural key before paying for the
       string render; the kept representative (first in matrix order) is
       the one the global dedup would keep *)
    let local : (Tl_stt.Dataflow.t list, unit) Hashtbl.t =
      Hashtbl.create 512
    in
    List.filter_map
      (fun m ->
        (* cooperative cancellation: one budget unit per candidate
           matrix; expiry raises [Budget.Expired] between matrices so
           the caller always observes a consistent prefix *)
        Tl_resil.Budget.check budget;
        let t = Tl_stt.Transform.v stmt ~selected ~matrix:m in
        let d = analyze t in
        let dfs =
          List.map (fun ti -> ti.Tl_stt.Design.dataflow) d.Tl_stt.Design.tensors
        in
        let excluded =
          List.exists
            (fun df ->
              df = Tl_stt.Dataflow.Reuse_full
              || (exclude_unicast && df = Tl_stt.Dataflow.Unicast))
            dfs
          ||
          match max_bank_ports with
          | None -> false
          | Some limit ->
            (Tl_cost.Inventory.of_design d).Tl_cost.Inventory.bank_ports
            > limit
        in
        if excluded || Hashtbl.mem local dfs then None
        else begin
          Hashtbl.add local dfs ();
          Some (d, Tl_stt.Signature.identity_signature d)
        end)
      matrices
  in
  (* two-stage dedup: drop repeats of the cheap identity render first, and
     pay the 8-fold canonical render only for survivors.  Equal identity
     signatures imply equal canonical signatures, so the kept
     representative (first in stream order per canonical class) and the
     output order are unchanged. *)
  let seen_id : (string, unit) Hashtbl.t = Hashtbl.create 1024 in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  Tl_par.map ?domains ~label:"dse-enumerate" per_selection selections
  |> List.concat
  |> List.filter_map (fun (d, id_sig) ->
      if Hashtbl.mem seen_id id_sig then None
      else begin
        Hashtbl.add seen_id id_sig ();
        let s = signature d in
        if Hashtbl.mem seen s then None
        else begin
          Hashtbl.add seen s ();
          Some { design = d; signature = s }
        end
      end)

(* A point is dominated iff some point has both objectives <= with one
   strict: either a strictly smaller x with y' <= y, or an equal x with a
   strictly smaller y.  One sweep over the points sorted by (x, y) decides
   both cases — running min-y over strictly-smaller x, and the group's
   min-y for equal x — in O(n log n) instead of the all-pairs scan.
   Output keeps the input order; points with equal projections never
   dominate each other, so duplicates are all kept, exactly as the
   quadratic reference did. *)
let pareto_min project items =
  match items with
  | [] -> []
  | _ ->
    let proj = Array.of_list (List.map project items) in
    let n = Array.length proj in
    let order = Array.init n Fun.id in
    Array.sort
      (fun i j ->
        let x1, y1 = proj.(i) and x2, y2 = proj.(j) in
        match compare x1 x2 with 0 -> compare y1 y2 | c -> c)
      order;
    let keep = Array.make n true in
    let min_y_before = ref infinity in
    let i = ref 0 in
    while !i < n do
      let x0 = fst proj.(order.(!i)) in
      let group_min_y = snd proj.(order.(!i)) in
      let j = ref !i in
      while !j < n && fst proj.(order.(!j)) = x0 do
        let y = snd proj.(order.(!j)) in
        if !min_y_before <= y || group_min_y < y then
          keep.(order.(!j)) <- false;
        incr j
      done;
      if group_min_y < !min_y_before then min_y_before := group_min_y;
      i := !j
    done;
    List.filteri (fun k _ -> keep.(k)) items
