type point = {
  design : Tl_stt.Design.t;
  signature : string;
}

(* Two designs whose interconnects differ only by a rotation/reflection of
   the square array are the same hardware; canonicalise signatures under
   the dihedral group D4 acting on all direction vectors at once. *)
let d4 =
  [ (fun (r, c) -> (r, c));
    (fun (r, c) -> (c, r));
    (fun (r, c) -> (-r, c));
    (fun (r, c) -> (r, -c));
    (fun (r, c) -> (-r, -c));
    (fun (r, c) -> (-c, r));
    (fun (r, c) -> (c, -r));
    (fun (r, c) -> (-c, -r)) ]

let map_vec g v =
  let r, c = g (v.(0), v.(1)) in
  [| r; c |]

let map_dataflow g (df : Tl_stt.Dataflow.t) : Tl_stt.Dataflow.t =
  match df with
  | Tl_stt.Dataflow.Unicast | Tl_stt.Dataflow.Stationary _
  | Tl_stt.Dataflow.Reuse_full
  | Tl_stt.Dataflow.Reuse2d Tl_stt.Dataflow.Broadcast -> df
  | Tl_stt.Dataflow.Systolic { dp; dt } ->
    Tl_stt.Dataflow.Systolic { dp = map_vec g dp; dt }
  | Tl_stt.Dataflow.Multicast { dp } ->
    Tl_stt.Dataflow.Multicast { dp = map_vec g dp }
  | Tl_stt.Dataflow.Reuse2d (Tl_stt.Dataflow.Multicast_stationary { multicast })
    ->
    Tl_stt.Dataflow.Reuse2d
      (Tl_stt.Dataflow.Multicast_stationary { multicast = map_vec g multicast })
  | Tl_stt.Dataflow.Reuse2d
      (Tl_stt.Dataflow.Systolic_multicast { multicast; systolic }) ->
    Tl_stt.Dataflow.Reuse2d
      (Tl_stt.Dataflow.Systolic_multicast
         { multicast = map_vec g multicast;
           systolic =
             { systolic with Tl_stt.Dataflow.dp = map_vec g systolic.Tl_stt.Dataflow.dp } })

let signature (d : Tl_stt.Design.t) =
  let render g =
    let tensor ti =
      Printf.sprintf "%s:%s" ti.Tl_stt.Design.access.Tl_ir.Access.tensor
        (Tl_stt.Dataflow.to_string (map_dataflow g ti.Tl_stt.Design.dataflow))
    in
    Tl_stt.Transform.selection_label d.Tl_stt.Design.transform
    ^ "|"
    ^ String.concat "|" (List.map tensor d.Tl_stt.Design.tensors)
  in
  List.fold_left
    (fun best g ->
      let s = render g in
      if String.compare s best < 0 then s else best)
    (render (List.hd d4))
    (List.tl d4)

let design_space ?max_unselected ?(exclude_unicast = false)
    ?max_bank_ports ?domains stmt =
  let depth = Tl_ir.Stmt.depth stmt in
  let selections =
    List.filter
      (fun sel ->
        match max_unselected with
        | None -> true
        | Some k -> depth - Array.length sel <= k)
      (Tl_stt.Search.selections stmt ~n:3)
  in
  let matrices = Tl_stt.Search.candidate_matrices ~n:3 in
  (* analyse each selection's matrix sweep in its own task; the dedup stays
     sequential over the concatenated (selection-order, matrix-order)
     stream, so the kept representative and the output order are identical
     to the serial enumeration *)
  let per_selection selected =
    List.filter_map
      (fun m ->
        let t = Tl_stt.Transform.v stmt ~selected ~matrix:m in
        let d = Tl_stt.Design.analyze t in
        let excluded =
          List.exists
            (fun ti ->
              ti.Tl_stt.Design.dataflow = Tl_stt.Dataflow.Reuse_full
              || (exclude_unicast
                  && ti.Tl_stt.Design.dataflow = Tl_stt.Dataflow.Unicast))
            d.Tl_stt.Design.tensors
          ||
          match max_bank_ports with
          | None -> false
          | Some limit ->
            (Tl_cost.Inventory.of_design d).Tl_cost.Inventory.bank_ports
            > limit
        in
        if excluded then None
        else Some { design = d; signature = signature d })
      matrices
  in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  Tl_par.map ?domains per_selection selections
  |> List.concat
  |> List.filter (fun p ->
      if Hashtbl.mem seen p.signature then false
      else begin
        Hashtbl.add seen p.signature ();
        true
      end)

let pareto_min project items =
  let dominated (x1, y1) (x2, y2) =
    x2 <= x1 && y2 <= y1 && (x2 < x1 || y2 < y1)
  in
  List.filter
    (fun a ->
      let pa = project a in
      not (List.exists (fun b -> b != a && dominated pa (project b)) items))
    items
