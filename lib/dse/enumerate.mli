(** Design-space enumeration (Fig. 6).

    A design point is a distinct hardware architecture: the loop selection
    plus every tensor's dataflow class {i including} its direction vectors
    (two systolic designs with different flow directions are different
    interconnects).  Enumeration sweeps all loop selections and all
    candidate STT matrices, canonicalises each analysis into a signature,
    and keeps one representative transformation per signature. *)

type point = {
  design : Tl_stt.Design.t;
  signature : string;
}

val signature : Tl_stt.Design.t -> string
(** Canonical textual form of the architecture (selection label + each
    tensor's dataflow with direction vectors). *)

val design_space : ?max_unselected:int -> ?exclude_unicast:bool ->
  ?max_bank_ports:int -> ?domains:int -> ?budget:Tl_resil.Budget.t ->
  Tl_ir.Stmt.t -> point list
(** All distinct design points reachable with {-1,0,1} transformation
    matrices over every 3-loop selection.  [max_unselected] (default: no
    limit) can restrict how many loops are left sequential — the paper's
    Fig. 6 spaces keep every selection.  Points with [Reuse_full] tensors
    are excluded (no hardware mapping).  The per-selection matrix sweeps
    run on a {!Tl_par} pool ([?domains], default auto-detected); the
    result set and order are identical to the serial enumeration.
    [budget] (default unlimited) is polled once per candidate matrix;
    expiry raises {!Tl_resil.Budget.Expired} — cooperative, so a caller
    catching it has lost nothing but the un-enumerated tail. *)

val pareto_min : ('a -> float * float) -> 'a list -> 'a list
(** Pareto frontier minimising both objectives, in input order; points
    with equal projections are all kept.  O(n log n). *)
