type evaluated = {
  design : Tl_stt.Design.t;
  perf : Tl_perf.Perf_model.result;
  asic : Tl_cost.Asic.report;
  gops_per_watt : float;
}

let explore ?(config = Tl_perf.Perf_model.default_config) ?(limit = 64)
    ?domains ?(budget = Tl_resil.Budget.unlimited) stmt =
  let names = Tl_stt.Search.all_designs stmt in
  let capped = List.filteri (fun i _ -> i < limit) names in
  (* [all_designs] already carries the realising design for every name:
     evaluate and cost that design directly instead of re-resolving the
     whole candidate-matrix space per name (the costed design is by
     construction the evaluated one). *)
  Tl_par.map ?domains ~label:"dse-explore"
    (fun (_, design) ->
      (* one budget unit per evaluated design; expiry raises between
         evaluations (lowest-index first out of the pool) *)
      Tl_resil.Budget.check budget;
      match Tl_perf.Perf_model.evaluate ~config design with
      | exception Invalid_argument _ -> None
      | perf ->
        let asic =
          Tl_cost.Asic.evaluate ~rows:config.Tl_perf.Perf_model.rows
            ~cols:config.Tl_perf.Perf_model.cols design
        in
        let gops_per_watt =
          perf.Tl_perf.Perf_model.gops /. (asic.Tl_cost.Asic.power_mw /. 1000.)
        in
        Some { design; perf; asic; gops_per_watt })
    capped
  |> List.filter_map Fun.id

let best_by f = function
  | [] -> invalid_arg "Explore: empty evaluation list"
  | first :: rest ->
    List.fold_left (fun acc e -> if f e > f acc then e else acc) first rest

let best_performance evaluated =
  best_by (fun e -> -.e.perf.Tl_perf.Perf_model.cycles) evaluated

let best_efficiency evaluated = best_by (fun e -> e.gops_per_watt) evaluated

let pareto_perf_power evaluated =
  Enumerate.pareto_min
    (fun e -> (e.perf.Tl_perf.Perf_model.cycles, e.asic.Tl_cost.Asic.power_mw))
    evaluated

let pp_evaluated ppf e =
  Format.fprintf ppf
    "@[%-12s cycles=%-10.0f norm=%.3f power=%.1fmW area=%.0f %.1f Gop/s/W@]"
    e.design.Tl_stt.Design.name e.perf.Tl_perf.Perf_model.cycles
    e.perf.Tl_perf.Perf_model.normalized_perf e.asic.Tl_cost.Asic.power_mw
    e.asic.Tl_cost.Asic.area e.gops_per_watt
