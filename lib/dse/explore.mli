(** Joint design-space exploration: performance × power × area.

    Evaluates the cycle model and the ASIC cost model over the dataflow
    space of a workload and exposes the tradeoffs the paper's abstract
    promises ("a rich design space with tradeoffs in performance, area,
    and power"): fastest design, most energy-efficient design
    (throughput per watt), and the performance/power Pareto frontier. *)

type evaluated = {
  design : Tl_stt.Design.t;
  perf : Tl_perf.Perf_model.result;
  asic : Tl_cost.Asic.report;
  gops_per_watt : float;
}

val explore : ?config:Tl_perf.Perf_model.config -> ?limit:int ->
  ?domains:int -> ?budget:Tl_resil.Budget.t -> Tl_ir.Stmt.t -> evaluated list
(** Evaluate every letter-distinct dataflow of the workload (capped at
    [limit], default 64, cheapest-estimate first).  Designs whose space
    mapping cannot fit the array are skipped.  Each design is evaluated
    and costed directly (the realising design found by the enumeration is
    threaded through — no re-resolution), fanned over a {!Tl_par} pool
    ([?domains], default auto-detected); results are deterministic and
    name-ordered regardless of the pool width.  [budget] is polled once
    per evaluated design; expiry raises {!Tl_resil.Budget.Expired}. *)

val best_performance : evaluated list -> evaluated
(** @raise Invalid_argument on an empty list. *)

val best_efficiency : evaluated list -> evaluated
(** Highest Gop/s per watt. *)

val pareto_perf_power : evaluated list -> evaluated list
(** Non-dominated set minimising (cycles, power). *)

val pp_evaluated : Format.formatter -> evaluated -> unit
