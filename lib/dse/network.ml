(* Whole-network design-space sweep through the persistent design store.

   A network is a list of named statements (layers).  Layers are deduped
   by a canonical shape key — config fingerprint + statement fingerprint
   — before any enumeration happens, and the {e unique} shapes are
   sharded across the [Tl_par] pool shape-major: each worker owns whole
   shapes, so no two domains ever race on one store key.  Inside a
   worker everything runs with [domains:1] (no nested pools), which
   together with the deterministic enumeration order makes the sweep's
   results — including the roll-up digest — independent of the pool
   width.

   Per unique shape the full design space is enumerated, every point
   evaluated (performance + ASIC cost), and the evaluated set serialized
   into one store payload with exact hex-float encoding.  Both the cold
   and the warm path then {e decode the payload} to build the report, so
   a warm sweep reproduces a cold sweep bit-for-bit by construction. *)

module Perf = Tl_perf.Perf_model
module Asic = Tl_cost.Asic
module Store = Tl_store.Store

type point = {
  p_area : float;  (** um^2, ASIC cost model *)
  p_power : float;  (** mW *)
  p_perf : Perf.result;
}

type layer = {
  l_name : string;
  l_key : string;  (** store key of the layer's shape *)
  l_hit : bool;  (** served from the warm store *)
  l_points : int;  (** evaluable design points *)
  l_frontier : point list;  (** Pareto frontier on (cycles, power) *)
  l_best : point option;  (** min-cycles winner; [None] if no point *)
}

type report = {
  r_network : string;
  r_layers : layer list;  (** in network order *)
  r_unique_shapes : int;
  r_points : int;  (** evaluable points summed over unique shapes *)
  r_total_cycles : float;  (** sum of per-layer winners *)
  r_total_runtime_us : float;
  r_total_area : float;  (** sum of per-layer winner areas *)
  r_total_power : float;  (** sum of per-layer winner powers *)
  r_hits : int;  (** unique shapes served from the store *)
  r_misses : int;
  r_hit_rate : float;
  r_digest : string;  (** MD5 over all shape payloads, shape order *)
}

type progress = {
  pr_done : int;  (** unique shapes finished so far *)
  pr_total : int;
  pr_layer : string;  (** first layer name using the shape *)
  pr_hit : bool;
  pr_points : int;
}

let networks () = Tl_ir.Workloads.networks ()

(* ------------------------------------------------------------------ *)
(* Shape keys and payload codec. *)

let shape_key ?(config = Perf.default_config) ?per_shape_limit stmt =
  let limit =
    match per_shape_limit with None -> "all" | Some n -> string_of_int n
  in
  Printf.sprintf "tlnet/1|%s|limit=%s|%s"
    (Perf.config_fingerprint config)
    limit
    (Tl_stt.Signature.stmt_fingerprint stmt)

let payload_magic = "tlnetpts/1"

let encode_points pts =
  let buf = Buffer.create (List.length pts * 256) in
  Buffer.add_string buf
    (Printf.sprintf "%s %d\n" payload_magic (List.length pts));
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "%h\t%h\t%s\n" p.p_area p.p_power
           (Perf.result_to_string p.p_perf)))
    pts;
  Buffer.contents buf

let decode_points payload =
  match String.index_opt payload '\n' with
  | None -> None
  | Some nl -> (
    match String.split_on_char ' ' (String.sub payload 0 nl) with
    | [ m; count ] when m = payload_magic -> (
      match int_of_string_opt count with
      | None -> None
      | Some count ->
        let body = String.sub payload (nl + 1) (String.length payload - nl - 1) in
        let lines =
          String.split_on_char '\n' body
          |> List.filter (fun l -> l <> "")
        in
        if List.length lines <> count then None
        else
          let pts =
            List.filter_map
              (fun line ->
                match String.index_opt line '\t' with
                | None -> None
                | Some t1 -> (
                  match String.index_from_opt line (t1 + 1) '\t' with
                  | None -> None
                  | Some t2 -> (
                    let area = String.sub line 0 t1 in
                    let power = String.sub line (t1 + 1) (t2 - t1 - 1) in
                    let rest =
                      String.sub line (t2 + 1) (String.length line - t2 - 1)
                    in
                    match
                      ( float_of_string_opt area,
                        float_of_string_opt power,
                        Perf.result_of_string rest )
                    with
                    | Some p_area, Some p_power, Some p_perf ->
                      Some { p_area; p_power; p_perf }
                    | _ -> None)))
              lines
          in
          if List.length pts = count then Some pts else None)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Evaluation of one unique shape (always single-domain: the sweep
   parallelises across shapes, never inside one). *)

let evaluate_shape ~config ?per_shape_limit stmt =
  let pts = Enumerate.design_space ~domains:1 stmt in
  let pts =
    match per_shape_limit with
    | None -> pts
    | Some n -> List.filteri (fun i _ -> i < n) pts
  in
  List.filter_map
    (fun (p : Enumerate.point) ->
      match Perf.evaluate ~config p.Enumerate.design with
      | exception Invalid_argument _ -> None
      | perf ->
        let asic =
          Asic.evaluate ~rows:config.Perf.rows ~cols:config.Perf.cols
            p.Enumerate.design
        in
        Some
          {
            p_area = asic.Asic.area;
            p_power = asic.Asic.power_mw;
            p_perf = perf;
          })
    pts

(* ------------------------------------------------------------------ *)

let frontier_of pts =
  Enumerate.pareto_min (fun p -> (p.p_perf.Perf.cycles, p.p_power)) pts

let best_of pts =
  List.fold_left
    (fun acc p ->
      match acc with
      | None -> Some p
      | Some b ->
        if p.p_perf.Perf.cycles < b.p_perf.Perf.cycles then Some p else acc)
    None pts

let sweep ?(config = Perf.default_config) ?domains ?per_shape_limit ?progress
    ~store ~name layers =
  (* dedup by shape key, preserving first-occurrence order *)
  let keyed =
    List.map
      (fun (lname, stmt) -> (lname, stmt, shape_key ~config ?per_shape_limit stmt))
      layers
  in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let unique =
    List.filter_map
      (fun (lname, stmt, key) ->
        if Hashtbl.mem seen key then None
        else begin
          Hashtbl.add seen key ();
          Some (lname, stmt, key)
        end)
      keyed
  in
  let total = List.length unique in
  let done_ctr = Atomic.make 0 in
  let progress_lock = Mutex.create () in
  let note lname hit points =
    match progress with
    | None -> ignore (Atomic.fetch_and_add done_ctr 1)
    | Some f ->
      let d = Atomic.fetch_and_add done_ctr 1 + 1 in
      Mutex.lock progress_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock progress_lock)
        (fun () ->
          f
            {
              pr_done = d;
              pr_total = total;
              pr_layer = lname;
              pr_hit = hit;
              pr_points = points;
            })
  in
  (* shape-major sharding: every worker owns whole shapes, and keys are
     unique within [unique], so no two domains touch the same store key *)
  let shards =
    Tl_par.map ?domains ~label:"network-sweep"
      (fun (lname, stmt, key) ->
        let from_store =
          match Store.find store key with
          | None -> None
          | Some payload -> (
            match decode_points payload with
            | Some pts -> Some (payload, pts)
            | None -> None (* stale codec version: recompute *))
        in
        let hit, payload, pts =
          match from_store with
          | Some (payload, pts) -> (true, payload, pts)
          | None ->
            let computed = evaluate_shape ~config ?per_shape_limit stmt in
            let payload = encode_points computed in
            Store.put store key payload;
            (* decode our own payload so cold and warm sweeps flow
               through the identical code path (and the identical
               floats) *)
            let pts =
              match decode_points payload with
              | Some pts -> pts
              | None -> computed (* unreachable: own codec round-trips *)
            in
            (false, payload, pts)
        in
        note lname hit (List.length pts);
        (key, hit, payload, pts))
      unique
  in
  let by_key : (string, bool * string * point list) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun (key, hit, payload, pts) ->
      Hashtbl.replace by_key key (hit, payload, pts))
    shards;
  let layers_out =
    List.map
      (fun (lname, _stmt, key) ->
        let hit, _payload, pts = Hashtbl.find by_key key in
        {
          l_name = lname;
          l_key = key;
          l_hit = hit;
          l_points = List.length pts;
          l_frontier = frontier_of pts;
          l_best = best_of pts;
        })
      keyed
  in
  let digest =
    (* payloads in unique-shape (first occurrence) order: deterministic
       and independent of the pool width *)
    let buf = Buffer.create 4096 in
    List.iter
      (fun (_, _, key) ->
        let _, payload, _ = Hashtbl.find by_key key in
        Buffer.add_string buf payload)
      unique;
    Tl_stt.Signature.key_digest (Buffer.contents buf)
  in
  let hits =
    List.length (List.filter (fun (_, hit, _, _) -> hit) shards)
  in
  let misses = total - hits in
  let sum f =
    List.fold_left
      (fun acc l -> match l.l_best with Some p -> acc +. f p | None -> acc)
      0. layers_out
  in
  {
    r_network = name;
    r_layers = layers_out;
    r_unique_shapes = total;
    r_points =
      List.fold_left (fun acc (_, _, _, pts) -> acc + List.length pts) 0 shards;
    r_total_cycles = sum (fun p -> p.p_perf.Perf.cycles);
    r_total_runtime_us = sum (fun p -> p.p_perf.Perf.runtime_us);
    r_total_area = sum (fun p -> p.p_area);
    r_total_power = sum (fun p -> p.p_power);
    r_hits = hits;
    r_misses = misses;
    r_hit_rate = (if total = 0 then 1. else float_of_int hits /. float_of_int total);
    r_digest = digest;
  }

let sweep_named ?config ?domains ?per_shape_limit ?progress ~store name =
  match List.assoc_opt name (networks ()) with
  | None -> None
  | Some layers ->
    Some (sweep ?config ?domains ?per_shape_limit ?progress ~store ~name layers)
