(* Whole-network design-space sweep through the persistent design store.

   A network is a list of named statements (layers).  Layers are deduped
   by a canonical shape key — config fingerprint + statement fingerprint
   — before any enumeration happens, and the {e unique} shapes are
   sharded across the [Tl_par] pool shape-major: each worker owns whole
   shapes, so no two domains ever race on one store key.  Inside a
   worker everything runs with [domains:1] (no nested pools), which
   together with the deterministic enumeration order makes the sweep's
   results — including the roll-up digest — independent of the pool
   width.

   Per unique shape the full design space is enumerated, every point
   evaluated (performance + ASIC cost), and the evaluated set serialized
   into one store payload with exact hex-float encoding.  Both the cold
   and the warm path then {e decode the payload} to build the report, so
   a warm sweep reproduces a cold sweep bit-for-bit by construction. *)

module Perf = Tl_perf.Perf_model
module Asic = Tl_cost.Asic
module Store = Tl_store.Store

type point = {
  p_area : float;  (** um^2, ASIC cost model *)
  p_power : float;  (** mW *)
  p_perf : Perf.result;
}

type layer = {
  l_name : string;
  l_key : string;  (** store key of the layer's shape *)
  l_hit : bool;  (** served from the warm store *)
  l_points : int;  (** evaluable design points *)
  l_frontier : point list;  (** Pareto frontier on (cycles, power) *)
  l_best : point option;  (** min-cycles winner; [None] if no point *)
  l_degraded : bool;  (** shape not swept (budget/fault); estimate only *)
  l_est_cycles : float option;  (** fallback estimate for degraded layers *)
}

type report = {
  r_network : string;
  r_layers : layer list;  (** in network order *)
  r_unique_shapes : int;
  r_points : int;  (** evaluable points summed over unique shapes *)
  r_total_cycles : float;  (** sum of per-layer winners *)
  r_total_runtime_us : float;
  r_total_area : float;  (** sum of per-layer winner areas *)
  r_total_power : float;  (** sum of per-layer winner powers *)
  r_hits : int;  (** unique shapes served from the store *)
  r_misses : int;
  r_hit_rate : float;
  r_digest : string;  (** MD5 over all shape payloads, shape order *)
  r_complete : bool;  (** every unique shape fully swept *)
  r_degraded_shapes : int;  (** unique shapes answered estimate-only *)
  r_resumed_shapes : int;  (** unique shapes found in a loaded checkpoint *)
}

type progress = {
  pr_done : int;  (** unique shapes finished so far *)
  pr_total : int;
  pr_layer : string;  (** first layer name using the shape *)
  pr_hit : bool;
  pr_points : int;
}

let networks () = Tl_ir.Workloads.networks ()

(* ------------------------------------------------------------------ *)
(* Shape keys and payload codec. *)

let shape_key ?(config = Perf.default_config) ?per_shape_limit stmt =
  let limit =
    match per_shape_limit with None -> "all" | Some n -> string_of_int n
  in
  Printf.sprintf "tlnet/1|%s|limit=%s|%s"
    (Perf.config_fingerprint config)
    limit
    (Tl_stt.Signature.stmt_fingerprint stmt)

let payload_magic = "tlnetpts/1"

let encode_points pts =
  let buf = Buffer.create (List.length pts * 256) in
  Buffer.add_string buf
    (Printf.sprintf "%s %d\n" payload_magic (List.length pts));
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "%h\t%h\t%s\n" p.p_area p.p_power
           (Perf.result_to_string p.p_perf)))
    pts;
  Buffer.contents buf

let decode_points payload =
  match String.index_opt payload '\n' with
  | None -> None
  | Some nl -> (
    match String.split_on_char ' ' (String.sub payload 0 nl) with
    | [ m; count ] when m = payload_magic -> (
      match int_of_string_opt count with
      | None -> None
      | Some count ->
        let body = String.sub payload (nl + 1) (String.length payload - nl - 1) in
        let lines =
          String.split_on_char '\n' body
          |> List.filter (fun l -> l <> "")
        in
        if List.length lines <> count then None
        else
          let pts =
            List.filter_map
              (fun line ->
                match String.index_opt line '\t' with
                | None -> None
                | Some t1 -> (
                  match String.index_from_opt line (t1 + 1) '\t' with
                  | None -> None
                  | Some t2 -> (
                    let area = String.sub line 0 t1 in
                    let power = String.sub line (t1 + 1) (t2 - t1 - 1) in
                    let rest =
                      String.sub line (t2 + 1) (String.length line - t2 - 1)
                    in
                    match
                      ( float_of_string_opt area,
                        float_of_string_opt power,
                        Perf.result_of_string rest )
                    with
                    | Some p_area, Some p_power, Some p_perf ->
                      Some { p_area; p_power; p_perf }
                    | _ -> None)))
              lines
          in
          if List.length pts = count then Some pts else None)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Evaluation of one unique shape (always single-domain: the sweep
   parallelises across shapes, never inside one). *)

let evaluate_shape ~config ?per_shape_limit
    ?(budget = Tl_resil.Budget.unlimited) stmt =
  let pts = Enumerate.design_space ~domains:1 ~budget stmt in
  let pts =
    match per_shape_limit with
    | None -> pts
    | Some n -> List.filteri (fun i _ -> i < n) pts
  in
  List.filter_map
    (fun (p : Enumerate.point) ->
      Tl_resil.Budget.check budget;
      match Perf.evaluate ~config p.Enumerate.design with
      | exception Invalid_argument _ -> None
      | perf ->
        let asic =
          Asic.evaluate ~rows:config.Perf.rows ~cols:config.Perf.cols
            p.Enumerate.design
        in
        Some
          {
            p_area = asic.Asic.area;
            p_power = asic.Asic.power_mw;
            p_perf = perf;
          })
    pts

(* ------------------------------------------------------------------ *)

let frontier_of pts =
  Enumerate.pareto_min (fun p -> (p.p_perf.Perf.cycles, p.p_power)) pts

let best_of pts =
  List.fold_left
    (fun acc p ->
      match acc with
      | None -> Some p
      | Some b ->
        if p.p_perf.Perf.cycles < b.p_perf.Perf.cycles then Some p else acc)
    None pts

(* The checkpoint tag binds a checkpoint file to one exact sweep: the
   network name plus every unique shape key (which already embeds the
   config fingerprint and the per-shape limit).  A checkpoint written by
   any other sweep is silently ignored on resume. *)
let checkpoint_tag ~name unique_keys =
  Tl_stt.Signature.key_digest (String.concat "\n" (name :: unique_keys))

(* O(1) fallback when a shape could not be swept: ideal MACs/cycle on a
   fully-busy [rows x cols] array.  Deliberately design-agnostic — it
   needs no enumeration, no evaluation, and no store access. *)
let estimate_cycles ~config stmt =
  let pes = float_of_int (config.Perf.rows * config.Perf.cols) in
  float_of_int (Tl_ir.Stmt.domain_size stmt) /. Float.max 1. pes

let sweep ?(config = Perf.default_config) ?domains ?per_shape_limit ?progress
    ?(budget = Tl_resil.Budget.unlimited) ?checkpoint ?(resume = false)
    ~store ~name layers =
  (* dedup by shape key, preserving first-occurrence order *)
  let keyed =
    List.map
      (fun (lname, stmt) -> (lname, stmt, shape_key ~config ?per_shape_limit stmt))
      layers
  in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let unique =
    List.filter_map
      (fun (lname, stmt, key) ->
        if Hashtbl.mem seen key then None
        else begin
          Hashtbl.add seen key ();
          Some (lname, stmt, key)
        end)
      keyed
  in
  let total = List.length unique in
  let unique_keys = List.map (fun (_, _, key) -> key) unique in
  let tag = checkpoint_tag ~name unique_keys in
  let resumed_keys : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  (match checkpoint with
  | Some path when resume -> (
    match Tl_resil.Checkpoint.load ~path ~tag with
    | None -> ()
    | Some keys ->
      List.iter
        (fun k -> if Hashtbl.mem seen k then Hashtbl.replace resumed_keys k ())
        keys)
  | _ -> ());
  (* completed-shape journal: mutated only under [ckpt_lock]; the
     checkpoint file is rewritten atomically after every finished shape
     so an interrupted sweep can resume from the last completed one *)
  let ckpt_lock = Mutex.create () in
  let completed : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let mark_done key =
    Mutex.lock ckpt_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock ckpt_lock)
      (fun () ->
        Hashtbl.replace completed key ();
        match checkpoint with
        | None -> ()
        | Some path ->
          let keys =
            List.filter (fun k -> Hashtbl.mem completed k) unique_keys
          in
          Tl_resil.Checkpoint.save ~path ~tag keys)
  in
  let done_ctr = Atomic.make 0 in
  let progress_lock = Mutex.create () in
  let note lname hit points =
    match progress with
    | None -> ignore (Atomic.fetch_and_add done_ctr 1)
    | Some f ->
      let d = Atomic.fetch_and_add done_ctr 1 + 1 in
      Mutex.lock progress_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock progress_lock)
        (fun () ->
          f
            {
              pr_done = d;
              pr_total = total;
              pr_layer = lname;
              pr_hit = hit;
              pr_points = points;
            })
  in
  (* shape-major sharding: every worker owns whole shapes, and keys are
     unique within [unique], so no two domains touch the same store key.
     [try_map] contains per-shape faults (budget expiry, injected chaos,
     evaluation crashes): a failed shape degrades to an estimate instead
     of killing the sweep, and the Ok/Error pattern is deterministic and
     pool-width independent. *)
  let results =
    Tl_par.try_map ?domains ~label:"network-sweep"
      (fun (lname, stmt, key) ->
        let from_store =
          match Store.find store key with
          | None -> None
          | Some payload -> (
            match decode_points payload with
            | Some pts -> Some (payload, pts)
            | None -> None (* stale codec version: recompute *))
        in
        let hit, payload, pts =
          match from_store with
          | Some (payload, pts) -> (true, payload, pts)
          | None ->
            (* store hits above are served even on an expired budget;
               only fresh computation is gated *)
            Tl_resil.Budget.check budget;
            let computed = evaluate_shape ~config ?per_shape_limit ~budget stmt in
            let payload = encode_points computed in
            Store.put store key payload;
            (* decode our own payload so cold and warm sweeps flow
               through the identical code path (and the identical
               floats) *)
            let pts =
              match decode_points payload with
              | Some pts -> pts
              | None -> computed (* unreachable: own codec round-trips *)
            in
            (false, payload, pts)
        in
        mark_done key;
        note lname hit (List.length pts);
        (hit, payload, pts))
      unique
  in
  let shards = List.map2 (fun (_, _, key) r -> (key, r)) unique results in
  let by_key : (string, (bool * string * point list, exn) result) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter (fun (key, r) -> Hashtbl.replace by_key key r) shards;
  let layers_out =
    List.map
      (fun (lname, stmt, key) ->
        match Hashtbl.find by_key key with
        | Ok (hit, _payload, pts) ->
          {
            l_name = lname;
            l_key = key;
            l_hit = hit;
            l_points = List.length pts;
            l_frontier = frontier_of pts;
            l_best = best_of pts;
            l_degraded = false;
            l_est_cycles = None;
          }
        | Error _ ->
          {
            l_name = lname;
            l_key = key;
            l_hit = false;
            l_points = 0;
            l_frontier = [];
            l_best = None;
            l_degraded = true;
            l_est_cycles = Some (estimate_cycles ~config stmt);
          })
      keyed
  in
  let digest =
    (* completed payloads in unique-shape (first occurrence) order:
       deterministic and independent of the pool width.  A partial
       sweep's digest covers exactly the completed prefix set. *)
    let buf = Buffer.create 4096 in
    List.iter
      (fun (_, _, key) ->
        match Hashtbl.find by_key key with
        | Ok (_, payload, _) -> Buffer.add_string buf payload
        | Error _ -> ())
      unique;
    Tl_stt.Signature.key_digest (Buffer.contents buf)
  in
  let degraded =
    List.length (List.filter (fun (_, r) -> Result.is_error r) shards)
  in
  let completed_n = total - degraded in
  let hits =
    List.length
      (List.filter (function _, Ok (hit, _, _) -> hit | _ -> false) shards)
  in
  let misses = completed_n - hits in
  let complete = degraded = 0 in
  (* a finished sweep leaves nothing to resume from *)
  (match checkpoint with
  | Some path when complete -> Tl_resil.Checkpoint.remove ~path
  | _ -> ());
  let sum f =
    List.fold_left
      (fun acc l -> match l.l_best with Some p -> acc +. f p | None -> acc)
      0. layers_out
  in
  let est_sum =
    List.fold_left
      (fun acc l ->
        match l.l_est_cycles with Some c -> acc +. c | None -> acc)
      0. layers_out
  in
  {
    r_network = name;
    r_layers = layers_out;
    r_unique_shapes = total;
    r_points =
      List.fold_left
        (fun acc (_, r) ->
          match r with Ok (_, _, pts) -> acc + List.length pts | Error _ -> acc)
        0 shards;
    r_total_cycles = sum (fun p -> p.p_perf.Perf.cycles) +. est_sum;
    r_total_runtime_us = sum (fun p -> p.p_perf.Perf.runtime_us);
    r_total_area = sum (fun p -> p.p_area);
    r_total_power = sum (fun p -> p.p_power);
    r_hits = hits;
    r_misses = misses;
    r_hit_rate =
      (if completed_n = 0 then 1.
       else float_of_int hits /. float_of_int completed_n);
    r_digest = digest;
    r_complete = complete;
    r_degraded_shapes = degraded;
    r_resumed_shapes = Hashtbl.length resumed_keys;
  }

let sweep_named ?config ?domains ?per_shape_limit ?progress ?budget ?checkpoint
    ?resume ~store name =
  match List.assoc_opt name (networks ()) with
  | None -> None
  | Some layers ->
    Some
      (sweep ?config ?domains ?per_shape_limit ?progress ?budget ?checkpoint
         ?resume ~store ~name layers)
