(** Whole-network design-space sweep through the persistent design store.

    A network is a list of named statements (layers).  Layers are deduped
    by canonical shape key (config fingerprint + statement fingerprint)
    before any enumeration; the unique shapes are sharded across the
    {!Tl_par} pool {e shape-major} — each worker owns whole shapes, so no
    two domains ever race on one store key — and everything inside a
    shape runs single-domain.  Results (including {!report.r_digest}) are
    deterministic and independent of the pool width.

    Both cold and warm sweeps build their reports by decoding the stored
    payload (exact hex-float codec), so a warm sweep reproduces a cold
    sweep bit-for-bit. *)

type point = {
  p_area : float;  (** ASIC area *)
  p_power : float;  (** mW *)
  p_perf : Tl_perf.Perf_model.result;
}

type layer = {
  l_name : string;
  l_key : string;
  l_hit : bool;  (** served from the warm store *)
  l_points : int;
  l_frontier : point list;  (** Pareto frontier on (cycles, power) *)
  l_best : point option;  (** min-cycles winner *)
  l_degraded : bool;  (** not swept (budget expiry or injected fault) *)
  l_est_cycles : float option;
      (** estimate-only fallback for degraded layers: ideal MACs/cycle on
          a fully-busy array; [None] on fully-swept layers *)
}

type report = {
  r_network : string;
  r_layers : layer list;  (** network order *)
  r_unique_shapes : int;
  r_points : int;
  r_total_cycles : float;
      (** per-layer winners, plus the estimate for degraded layers *)
  r_total_runtime_us : float;  (** fully-swept layers only *)
  r_total_area : float;
  r_total_power : float;
  r_hits : int;
  r_misses : int;
  r_hit_rate : float;  (** hits over {e completed} unique shapes *)
  r_digest : string;
      (** MD5 over completed shape payloads, unique-shape order; on a
          complete sweep this covers every shape *)
  r_complete : bool;  (** no shape degraded *)
  r_degraded_shapes : int;
  r_resumed_shapes : int;  (** unique shapes listed in a loaded checkpoint *)
}

type progress = {
  pr_done : int;
  pr_total : int;
  pr_layer : string;  (** first layer name using the finished shape *)
  pr_hit : bool;
  pr_points : int;
}

val networks : unit -> (string * (string * Tl_ir.Stmt.t) list) list
(** The named network tables ({!Tl_ir.Workloads.networks}). *)

val shape_key :
  ?config:Tl_perf.Perf_model.config ->
  ?per_shape_limit:int ->
  Tl_ir.Stmt.t ->
  string
(** The store key of a layer shape under a config (and optional point
    cap, which changes the evaluated set and therefore the key). *)

val evaluate_shape :
  config:Tl_perf.Perf_model.config ->
  ?per_shape_limit:int ->
  ?budget:Tl_resil.Budget.t ->
  Tl_ir.Stmt.t ->
  point list
(** Enumerate ([domains:1]) and evaluate one shape's design space;
    points that fail evaluation are dropped.  [budget] is polled per
    candidate matrix and per evaluated point; expiry raises
    {!Tl_resil.Budget.Expired}. *)

val encode_points : point list -> string
val decode_points : string -> point list option
(** Versioned exact payload codec; [None] on any malformed content. *)

val sweep :
  ?config:Tl_perf.Perf_model.config ->
  ?domains:int ->
  ?per_shape_limit:int ->
  ?progress:(progress -> unit) ->
  ?budget:Tl_resil.Budget.t ->
  ?checkpoint:string ->
  ?resume:bool ->
  store:Tl_store.Store.t ->
  name:string ->
  (string * Tl_ir.Stmt.t) list ->
  report
(** Sweep a layer list.  [progress] is invoked (serialised under a
    mutex) once per finished unique shape, from worker domains.

    Resilience:
    {ul
    {- [budget] (default unlimited) gates fresh computation only — store
       hits are served even on an expired budget.  An expired shape (or
       one killed by an injected fault) degrades to an estimate-only
       layer instead of failing the sweep; see {!report.r_complete}.}
    {- [checkpoint] names a file that is atomically rewritten after
       every completed unique shape and removed when the sweep
       completes.  With [resume:true] (default false), completed shape
       keys listed in a checkpoint whose tag matches this exact sweep
       are counted in {!report.r_resumed_shapes}; their payloads are
       served from the store, so an interrupted-then-resumed sweep's
       digest is bit-identical to an uninterrupted one.}}

    The Ok/degraded pattern, the report and its digest are deterministic
    and independent of the pool width (for [Budget.of_checks] budgets,
    deterministic at [domains:1]). *)

val sweep_named :
  ?config:Tl_perf.Perf_model.config ->
  ?domains:int ->
  ?per_shape_limit:int ->
  ?progress:(progress -> unit) ->
  ?budget:Tl_resil.Budget.t ->
  ?checkpoint:string ->
  ?resume:bool ->
  store:Tl_store.Store.t ->
  string ->
  report option
(** {!sweep} on a named network table; [None] for unknown names. *)
