(** Whole-network design-space sweep through the persistent design store.

    A network is a list of named statements (layers).  Layers are deduped
    by canonical shape key (config fingerprint + statement fingerprint)
    before any enumeration; the unique shapes are sharded across the
    {!Tl_par} pool {e shape-major} — each worker owns whole shapes, so no
    two domains ever race on one store key — and everything inside a
    shape runs single-domain.  Results (including {!report.r_digest}) are
    deterministic and independent of the pool width.

    Both cold and warm sweeps build their reports by decoding the stored
    payload (exact hex-float codec), so a warm sweep reproduces a cold
    sweep bit-for-bit. *)

type point = {
  p_area : float;  (** ASIC area *)
  p_power : float;  (** mW *)
  p_perf : Tl_perf.Perf_model.result;
}

type layer = {
  l_name : string;
  l_key : string;
  l_hit : bool;  (** served from the warm store *)
  l_points : int;
  l_frontier : point list;  (** Pareto frontier on (cycles, power) *)
  l_best : point option;  (** min-cycles winner *)
}

type report = {
  r_network : string;
  r_layers : layer list;  (** network order *)
  r_unique_shapes : int;
  r_points : int;
  r_total_cycles : float;  (** summed over per-layer winners *)
  r_total_runtime_us : float;
  r_total_area : float;
  r_total_power : float;
  r_hits : int;
  r_misses : int;
  r_hit_rate : float;
  r_digest : string;  (** MD5 over all shape payloads, shape order *)
}

type progress = {
  pr_done : int;
  pr_total : int;
  pr_layer : string;  (** first layer name using the finished shape *)
  pr_hit : bool;
  pr_points : int;
}

val networks : unit -> (string * (string * Tl_ir.Stmt.t) list) list
(** The named network tables ({!Tl_ir.Workloads.networks}). *)

val shape_key :
  ?config:Tl_perf.Perf_model.config ->
  ?per_shape_limit:int ->
  Tl_ir.Stmt.t ->
  string
(** The store key of a layer shape under a config (and optional point
    cap, which changes the evaluated set and therefore the key). *)

val evaluate_shape :
  config:Tl_perf.Perf_model.config ->
  ?per_shape_limit:int ->
  Tl_ir.Stmt.t ->
  point list
(** Enumerate ([domains:1]) and evaluate one shape's design space;
    points that fail evaluation are dropped. *)

val encode_points : point list -> string
val decode_points : string -> point list option
(** Versioned exact payload codec; [None] on any malformed content. *)

val sweep :
  ?config:Tl_perf.Perf_model.config ->
  ?domains:int ->
  ?per_shape_limit:int ->
  ?progress:(progress -> unit) ->
  store:Tl_store.Store.t ->
  name:string ->
  (string * Tl_ir.Stmt.t) list ->
  report
(** Sweep a layer list.  [progress] is invoked (serialised under a
    mutex) once per finished unique shape, from worker domains. *)

val sweep_named :
  ?config:Tl_perf.Perf_model.config ->
  ?domains:int ->
  ?per_shape_limit:int ->
  ?progress:(progress -> unit) ->
  store:Tl_store.Store.t ->
  string ->
  report option
(** {!sweep} on a named network table; [None] for unknown names. *)
