open Tl_ir

let is_unit_row ~depth row i =
  Array.length row = depth
  && Array.for_all (fun v -> v = 0 || v = 1) row
  && Array.to_list row = List.init depth (fun j -> if j = i then 1 else 0)

let matrix_is m rows =
  Array.length m.Access.matrix = List.length rows
  && List.for_all2
       (fun row i -> is_unit_row ~depth:3 row i)
       (Array.to_list m.Access.matrix)
       rows

(* C[i0,i1] += A[i0,i2] * B[i1,i2] with 3 iterators. *)
let gemm_shape (stmt : Stmt.t) =
  match stmt.Stmt.iters, stmt.Stmt.inputs with
  | [ im; inn; ik ], [ a; b ]
    when matrix_is stmt.Stmt.output [ 0; 1 ]
         && matrix_is a [ 0; 2 ]
         && matrix_is b [ 1; 2 ] ->
    Some (im, inn, ik, a, b)
  | _ -> None

let supported stmt = gemm_shape stmt <> None

let augment stmt env =
  match gemm_shape stmt with
  | None -> None
  | Some (im, inn, ik, a, b) ->
    let m = im.Iter.extent and n = inn.Iter.extent and k = ik.Iter.extent in
    let stmt' =
      Stmt.v
        (stmt.Stmt.name ^ "_abft")
        ~iters:
          [ Iter.v im.Iter.name (m + 1);
            Iter.v inn.Iter.name (n + 1);
            Iter.v ik.Iter.name k ]
        ~output:stmt.Stmt.output ~inputs:stmt.Stmt.inputs
    in
    let checksum_rows rows base =
      (* base is rows×k; result is (rows+1)×k with a column-sum last row *)
      Dense.init [| rows + 1; k |] (fun ix ->
          if ix.(0) < rows then Dense.get base ix
          else begin
            let s = ref 0 in
            for i = 0 to rows - 1 do
              s := !s + Dense.get base [| i; ix.(1) |]
            done;
            !s
          end)
    in
    let dense_of t = List.assoc t.Access.tensor env in
    let env' =
      [ (a.Access.tensor, checksum_rows m (dense_of a));
        (b.Access.tensor, checksum_rows n (dense_of b)) ]
    in
    Some (stmt', env')

let mask_to w v = if w >= 62 then v else v land ((1 lsl w) - 1)

let check ?(acc_width = 32) out =
  match Dense.shape out with
  | [| m1; n1 |] when m1 >= 2 && n1 >= 2 ->
    let mask = mask_to acc_width in
    let ok = ref true in
    for j = 0 to n1 - 1 do
      let s = ref 0 in
      for i = 0 to m1 - 2 do
        s := !s + Dense.get out [| i; j |]
      done;
      if mask !s <> mask (Dense.get out [| m1 - 1; j |]) then ok := false
    done;
    for i = 0 to m1 - 1 do
      let s = ref 0 in
      for j = 0 to n1 - 2 do
        s := !s + Dense.get out [| i; j |]
      done;
      if mask !s <> mask (Dense.get out [| i; n1 - 1 |]) then ok := false
    done;
    !ok
  | _ -> invalid_arg "Abft.check: expected a checksum-augmented matrix"

let strip out =
  match Dense.shape out with
  | [| m1; n1 |] when m1 >= 2 && n1 >= 2 ->
    Dense.init [| m1 - 1; n1 - 1 |] (fun ix -> Dense.get out ix)
  | _ -> invalid_arg "Abft.strip: expected a checksum-augmented matrix"
