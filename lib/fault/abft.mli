(** Algorithm-based fault tolerance (row/column checksums) for
    GEMM-class workloads.

    For [C\[m,n\] += A\[m,k\] * B\[n,k\]] (the canonical
    {!Tl_ir.Workloads.gemm} shape), augment the operands with checksum
    rows — [A' (m+1)×k] whose last row is the column sums of [A], and
    [B' (n+1)×k] likewise — and run the {e same} design on the
    [(m+1)×(n+1)] problem.  The fault-free result then satisfies, for
    every column [j], [Σ_{i<m} C'\[i,j\] = C'\[m,j\]], and for every row
    [i], [Σ_{j<n} C'\[i,j\] = C'\[i,n\]] (both modulo [2^acc_width]).
    Any single corrupted output element breaks at least one of these
    identities — a transient fault inside the array corrupts entries in
    at most one accumulation chain's row or column, so the corresponding
    checksum equation catches it at the array boundary, with zero extra
    hardware: the cost is the larger [(m+1)×(n+1)] problem. *)

val supported : Tl_ir.Stmt.t -> bool
(** True iff the statement has the canonical 3-deep GEMM access pattern
    ([C\[i0,i1\] += A\[i0,i2\] * B\[i1,i2\]]). *)

val augment :
  Tl_ir.Stmt.t -> Tl_ir.Exec.env -> (Tl_ir.Stmt.t * Tl_ir.Exec.env) option
(** Checksum-augmented statement (extents [m+1], [n+1], same iterator
    and tensor names, name suffixed ["_abft"]) and matching operand
    environment.  [None] if the statement is not {!supported}. *)

val check : ?acc_width:int -> Tl_ir.Dense.t -> bool
(** Verify every row/column checksum identity of an augmented output
    (modulo [2^acc_width], default 32 — the accumulator width the
    accelerator wrapped its sums at).
    @raise Invalid_argument if the tensor is not a matrix with both
    dimensions at least 2. *)

val strip : Tl_ir.Dense.t -> Tl_ir.Dense.t
(** Drop the checksum row and column, recovering the [m×n] result. *)
