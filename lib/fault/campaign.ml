open Tl_hw
module Accel = Tl_templates.Accel
module Harden = Tl_templates.Harden
module Dense = Tl_ir.Dense

type outcome = Masked | Sdc | Detected | Hang

let outcome_label = function
  | Masked -> "masked"
  | Sdc -> "sdc"
  | Detected -> "detected"
  | Hang -> "hang"

type config = {
  trials : int;
  seed : int;
  kinds : Fault.kind list;
  classes : Fault.module_class list option;
  backend : Sim.backend;
  abft : bool;
  domains : int option;
}

let default_config =
  { trials = 1000;
    seed = 42;
    kinds = [ Fault.Transient; Fault.Stuck_at ];
    classes = None;
    backend = `Tape;
    abft = false;
    domains = None }

type trial = {
  fault : Fault.fault;
  outcome : outcome;
  detected_by : string option;
}

type class_stats = {
  cls : Fault.module_class;
  total : int;
  masked : int;
  sdc : int;
  detected : int;
  hang : int;
}

type report = {
  design : string;
  hardening : string;
  backend : string;
  trials : int;
  seed : int;
  masked : int;
  sdc : int;
  detected : int;
  hang : int;
  sdc_rate : float;
  per_class : class_stats list;
  results : trial list;
}

(* End-of-run sweep over the hardened (data ram, parity ram) pairs:
   catches corrupted cells whose parity mismatch never crossed a
   scheduled read (e.g. a bank cell flipped after its last accumulate). *)
let parity_sweep_ok_lane sim lane (acc : Accel.t) =
  List.for_all
    (fun (r, p) ->
      let data = Sim.ram_contents_lane sim lane r in
      let par = Sim.ram_contents_lane sim lane p in
      let ok = ref true in
      Array.iteri
        (fun i v -> if Harden.parity_bit v <> par.(i) then ok := false)
        data;
      !ok)
    acc.Accel.hardening.Harden.parity_pairs

(* Classify one finished trial (lane [l] of [sim]) against the golden
   output — the shared decision tree for the scalar and batch paths.
   [check] is an {!Accel.output_checker} bound to [sim]: the dominant
   outcome is Masked, and proving it needs only one pre-resolved cell
   read per output element, so the allocating tensor rebuild is reserved
   for the rare lanes that actually differ. *)
let classify_lane (acc : Accel.t) sim config golden check l fault =
  let outcome, detected_by =
    if Sim.output_lane sim l "done" <> 1 then (Hang, Some "watchdog")
    else if check l then (Masked, None)
    else begin
      let out = Accel.read_output_lane acc sim l in
      if Dense.equal out golden then (Masked, None)
      else begin
        let parity_flag =
          try Sim.output_lane sim l "error_detected" <> 0
          with Not_found -> false
        in
        if parity_flag then (Detected, Some "parity")
        else if
          acc.Accel.hardening.Harden.parity_pairs <> []
          && not (parity_sweep_ok_lane sim l acc)
        then (Detected, Some "parity-sweep")
        else if
          config.abft && not (Abft.check ~acc_width:acc.Accel.acc_width out)
        then (Detected, Some "abft")
        else (Sdc, None)
      end
    end
  in
  { fault; outcome; detected_by }

let run_one (acc : Accel.t) sim config golden check fault =
  Sim.reset sim;
  Fault.install sim fault;
  let planned = Accel.planned_cycles acc in
  (match Fault.trigger_cycle fault with
  | None -> Sim.cycles sim planned
  | Some tc ->
    for c = 0 to planned - 1 do
      if c = tc then Fault.trigger sim fault;
      Sim.cycle sim
    done);
  classify_lane acc sim config golden check 0 fault

(* One bit-sliced pass: up to [Sim.lanes sim] faults, one per lane.
   [reset] drops the previous group's per-lane forces and re-broadcasts
   the power-on image, so groups are independent. *)
let run_group (acc : Accel.t) sim config golden check faults =
  Sim.reset sim;
  let faults = Array.of_list faults in
  Array.iteri (fun l f -> Fault.install_lane sim l f) faults;
  let planned = Accel.planned_cycles acc in
  let triggers = Array.make (max 1 planned) [] in
  Array.iteri
    (fun l f ->
      match Fault.trigger_cycle f with
      | Some tc when tc < planned -> triggers.(tc) <- (l, f) :: triggers.(tc)
      | Some _ | None -> ())
    faults;
  for c = 0 to planned - 1 do
    List.iter (fun (l, f) -> Fault.trigger_lane sim l f) triggers.(c);
    Sim.cycle sim
  done;
  Array.to_list
    (Array.mapi
       (fun l f -> classify_lane acc sim config golden check l f)
       faults)

(* Contiguous chunks preserving order; one simulator per chunk. *)
let chunk n lst =
  let len = List.length lst in
  let n = max 1 (min n len) in
  let per = (len + n - 1) / n in
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if k = per then go (List.rev cur :: acc) [ x ] 1 rest
      else go acc (x :: cur) (k + 1) rest
  in
  if len = 0 then [] else go [] [] 0 lst

let summarize (acc : Accel.t) (config : config) results =
  let count p = List.length (List.filter p results) in
  let of_outcome o = count (fun t -> t.outcome = o) in
  let masked = of_outcome Masked
  and sdc = of_outcome Sdc
  and detected = of_outcome Detected
  and hang = of_outcome Hang in
  let trials = List.length results in
  let per_class =
    List.filter_map
      (fun cls ->
        let hits = List.filter (fun t -> Fault.fault_class t.fault = cls) results in
        if hits = [] then None
        else
          let n o = List.length (List.filter (fun t -> t.outcome = o) hits) in
          Some
            { cls;
              total = List.length hits;
              masked = n Masked;
              sdc = n Sdc;
              detected = n Detected;
              hang = n Hang })
      Fault.all_classes
  in
  { design = acc.Accel.design.Tl_stt.Design.name;
    hardening = Harden.label acc.Accel.hardening.Harden.config;
    backend =
      (match config.backend with
      | `Tape -> "tape"
      | `Closure -> "closure"
      | `Batch -> "batch");
    trials;
    seed = config.seed;
    masked;
    sdc;
    detected;
    hang;
    sdc_rate = (if trials = 0 then 0.0 else float_of_int sdc /. float_of_int trials);
    per_class;
    results }

let golden_of (config : config) golden acc =
  match golden with
  | Some g -> g
  | None ->
    (* the golden run is a single fault-free trial — no batching to
       exploit, so compute it on the scalar tape *)
    let backend =
      match config.backend with `Batch -> `Tape | b -> b
    in
    Accel.execute ~backend acc

(* Split [lst] into consecutive groups of at most [n]. *)
let groups_of n lst =
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if k = n then go (List.rev cur :: acc) [ x ] 1 rest
      else go acc (x :: cur) (k + 1) rest
  in
  go [] [] 0 lst

let run_faults ?(config = default_config) ?golden (acc : Accel.t) faults =
  let golden = golden_of config golden acc in
  let gcells = Accel.golden_cells acc golden in
  let domains =
    match config.domains with Some d -> max 1 d | None -> Tl_par.n_domains ()
  in
  match config.backend with
  | `Tape | `Closure ->
    let chunks = chunk domains faults in
    Tl_par.map ~domains ~label:"fault-campaign"
      (fun chunk ->
        let sim = Sim.create ~backend:config.backend acc.Accel.circuit in
        let check = Accel.output_checker acc sim gcells in
        List.map (run_one acc sim config golden check) chunk)
      chunks
    |> List.concat
    |> summarize acc config
  | `Batch ->
    (* ⌈trials/max_lanes⌉ bit-sliced passes instead of [trials] scalar
       runs.  Lanes are packed from a site-sorted plan: faults in one
       pass hit the same or neighbouring state elements, so their fan-out
       cones overlap and most word slots stay lane-uniform — scattered
       packing would diverge the whole circuit and forfeit the batch
       speedup.  Plan order is restored afterwards so reports match the
       scalar path trial for trial. *)
    let indexed = List.mapi (fun i f -> (i, f)) faults in
    let sorted =
      List.stable_sort
        (fun (_, a) (_, b) ->
          compare (Fault.site_ord a) (Fault.site_ord b))
        indexed
    in
    let groups = groups_of Sim.max_lanes sorted in
    let chunks = chunk domains groups in
    Tl_par.map ~domains ~label:"fault-campaign"
      (fun chunk ->
        let sim =
          Sim.create ~backend:`Batch ~lanes:Sim.max_lanes acc.Accel.circuit
        in
        let check = Accel.output_checker acc sim gcells in
        List.concat_map
          (fun group ->
            let res =
              run_group acc sim config golden check (List.map snd group)
            in
            List.map2 (fun (i, _) r -> (i, r)) group res)
          chunk)
      chunks
    |> List.concat
    |> List.sort (fun (i, _) (j, _) -> compare i j)
    |> List.map snd
    |> summarize acc config

let run ?(config = default_config) ?golden (acc : Accel.t) =
  let table = Fault.table ?classes:config.classes acc.Accel.circuit in
  let faults =
    Fault.plan ~seed:config.seed ~trials:config.trials ~kinds:config.kinds
      ~cycles:(Accel.planned_cycles acc) table
  in
  run_faults ~config ?golden acc faults

let pp ppf r =
  Format.fprintf ppf
    "fault campaign: %s (hardening=%s, backend=%s)@\n\
     trials=%d seed=%d@\n\
     masked=%d detected=%d hang=%d sdc=%d  (SDC rate %.4f)@\n"
    r.design r.hardening r.backend r.trials r.seed r.masked r.detected
    r.hang r.sdc r.sdc_rate;
  List.iter
    (fun c ->
      Format.fprintf ppf
        "  %-12s total=%-5d masked=%-5d detected=%-5d hang=%-4d sdc=%d@\n"
        (Fault.class_label c.cls) c.total c.masked c.detected c.hang c.sdc)
    r.per_class

let to_json ?(extra = []) r =
  let b = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{";
  add "\"design\": %S, " r.design;
  add "\"hardening\": %S, " r.hardening;
  add "\"backend\": %S, " r.backend;
  add "\"trials\": %d, " r.trials;
  add "\"seed\": %d, " r.seed;
  add
    "\"outcomes\": {\"masked\": %d, \"sdc\": %d, \"detected\": %d, \"hang\": \
     %d}, "
    r.masked r.sdc r.detected r.hang;
  add "\"sdc_rate\": %.6f, " r.sdc_rate;
  add "\"per_class\": [";
  List.iteri
    (fun i c ->
      if i > 0 then add ", ";
      add
        "{\"class\": %S, \"total\": %d, \"masked\": %d, \"sdc\": %d, \
         \"detected\": %d, \"hang\": %d}"
        (Fault.class_label c.cls) c.total c.masked c.sdc c.detected c.hang)
    r.per_class;
  add "]";
  List.iter (fun (k, v) -> add ", %S: %s" k v) extra;
  add "}";
  Buffer.contents b
