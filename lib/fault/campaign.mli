(** Monte-Carlo fault-injection campaigns over a generated accelerator.

    Each trial resets one long-lived simulator instance, installs /
    fires one fault from a deterministic {!Fault.plan}, runs the full
    bounded schedule and classifies the result:

    - [Hang]: the controller never asserted [done] — the cycle watchdog
      caught a wedged control path;
    - [Masked]: the output is bit-identical to the fault-free golden
      run;
    - [Detected]: the output is wrong {e and} a checker flagged it — the
      [error_detected] parity port, the end-of-run parity sweep over the
      hardened memories, or the ABFT checksum verification;
    - [Sdc]: silent data corruption — wrong output, no flag.

    Every trial lands in exactly one bucket.  Trials fan out over the
    {!Tl_par} domain pool in contiguous chunks (one simulator per
    chunk); results are independent of the pool width. *)

type outcome = Masked | Sdc | Detected | Hang

val outcome_label : outcome -> string

type config = {
  trials : int;
  seed : int;
  kinds : Fault.kind list;
  classes : Fault.module_class list option;
      (** restrict injection to these module classes *)
  backend : Tl_hw.Sim.backend;
  abft : bool;
      (** the accelerator computes a checksum-augmented problem (see
          {!Abft.augment}); verify the checksums of faulty outputs *)
  domains : int option;  (** pool width; default {!Tl_par.n_domains} *)
}

val default_config : config
(** 1000 trials, seed 42, both fault kinds, all classes, tape backend,
    no ABFT. *)

type trial = {
  fault : Fault.fault;
  outcome : outcome;
  detected_by : string option;
      (** ["watchdog"], ["parity"], ["parity-sweep"] or ["abft"] *)
}

type class_stats = {
  cls : Fault.module_class;
  total : int;
  masked : int;
  sdc : int;
  detected : int;
  hang : int;
}

type report = {
  design : string;
  hardening : string;  (** {!Tl_templates.Harden.label} of the design *)
  backend : string;
  trials : int;
  seed : int;
  masked : int;
  sdc : int;
  detected : int;
  hang : int;
  sdc_rate : float;
  per_class : class_stats list;  (** only classes with at least one trial *)
  results : trial list;  (** per-trial detail, in plan order *)
}

val run : ?config:config -> ?golden:Tl_ir.Dense.t -> Tl_templates.Accel.t ->
  report
(** Plan [config.trials] faults over the accelerator's fault-site table
    and run them.  [golden] is the fault-free reference output; computed
    with a clean run on [config.backend] when omitted (pass it when the
    accelerator was generated on rewritten data memories). *)

val run_faults : ?config:config -> ?golden:Tl_ir.Dense.t ->
  Tl_templates.Accel.t -> Fault.fault list -> report
(** Run an explicit fault list (targeted experiments, replays). *)

val pp : Format.formatter -> report -> unit
(** Human-readable summary table. *)

val to_json : ?extra:(string * string) list -> report -> string
(** Render the report (without per-trial detail) as JSON.  [extra] pairs
    of (key, pre-rendered JSON value) are appended to the top-level
    object — the bench gate uses this for hardening-overhead figures. *)
