open Tl_hw

type module_class = Controller | Pe | Interconnect | Memory | Rom

let class_label = function
  | Controller -> "controller"
  | Pe -> "pe"
  | Interconnect -> "interconnect"
  | Memory -> "memory"
  | Rom -> "rom"

let all_classes = [ Controller; Pe; Interconnect; Memory; Rom ]

let has_prefix p n =
  String.length n >= String.length p && String.sub n 0 (String.length p) = p

let has_suffix suf n =
  let ls = String.length suf and ln = String.length n in
  ln >= ls && String.sub n (ln - ls) ls = suf

let contains sub n =
  let ls = String.length sub and ln = String.length n in
  let rec go i = i + ls <= ln && (String.sub n i ls = sub || go (i + 1)) in
  go 0

let controller_prefixes =
  [ "cycle_ctr"; "in_pass"; "pass_ctr"; "stage_start"; "drain_ctr";
    "stage_load"; "parity_sticky" ]

let classify_reg (s : Signal.t) =
  match s.Signal.name with
  | None -> Pe
  | Some n ->
    if List.exists (fun p -> has_prefix p n) controller_prefixes then
      Controller
    else if contains "_sysin" n || contains "_sysout" n then Interconnect
    else Pe

let classify_ram (r : Signal.ram) =
  let n = r.Signal.ram_name in
  (* schedule tables attached to a bank (write-address / write-enable /
     stage-address ROMs) are control state, not data state: their
     corruption misdirects writes, which data parity cannot see *)
  if has_suffix "_addr" n || has_suffix "_we" n || has_suffix "_saddr" n then
    Rom
  else if contains "bank" n || has_suffix "_mem" n || contains "parity" n
  then Memory
  else Rom

type target = Reg of Signal.t | Mem of Signal.ram
type site = { target : target; cls : module_class }

let site_name s =
  match s.target with
  | Reg r -> (
    match r.Signal.name with
    | Some n -> n
    | None -> Printf.sprintf "reg#%d" r.Signal.id)
  | Mem m -> m.Signal.ram_name

let site_bits s =
  match s.target with
  | Reg r -> r.Signal.width
  | Mem m -> m.Signal.size * m.Signal.ram_width

type table = { circuit : Circuit.t; sites : site list; total_bits : int }

let table ?classes circuit =
  let keep cls =
    match classes with None -> true | Some l -> List.mem cls l
  in
  let sites = ref [] in
  Array.iter
    (fun (s : Signal.t) ->
      match s.Signal.node with
      | Signal.Reg _ ->
        let cls = classify_reg s in
        if keep cls then sites := { target = Reg s; cls } :: !sites
      | _ -> ())
    (Circuit.nodes circuit);
  List.iter
    (fun (r : Signal.ram) ->
      let cls = classify_ram r in
      if keep cls then sites := { target = Mem r; cls } :: !sites)
    (Circuit.rams circuit);
  let sites = List.rev !sites in
  { circuit; sites;
    total_bits = List.fold_left (fun acc s -> acc + site_bits s) 0 sites }

let injectable_reg t (s : Signal.t) =
  List.exists
    (fun site ->
      match site.target with
      | Reg r -> r.Signal.id = s.Signal.id
      | Mem _ -> false)
    t.sites

type kind = Transient | Stuck_at

type fault =
  | Flip_reg of { reg : Signal.t; cls : module_class; bit : int; cycle : int }
  | Stuck_reg of { reg : Signal.t; cls : module_class; bit : int; value : int }
  | Flip_mem of
      { ram : Signal.ram;
        cls : module_class;
        addr : int;
        bit : int;
        cycle : int }

let fault_class = function
  | Flip_reg { cls; _ } | Stuck_reg { cls; _ } | Flip_mem { cls; _ } -> cls

let reg_name (r : Signal.t) =
  match r.Signal.name with
  | Some n -> n
  | None -> Printf.sprintf "reg#%d" r.Signal.id

let fault_label = function
  | Flip_reg { reg; bit; cycle; _ } ->
    Printf.sprintf "flip reg %s bit %d @ cycle %d" (reg_name reg) bit cycle
  | Stuck_reg { reg; bit; value; _ } ->
    Printf.sprintf "stuck-at-%d reg %s bit %d" value (reg_name reg) bit
  | Flip_mem { ram; addr; bit; cycle; _ } ->
    Printf.sprintf "flip mem %s[%d] bit %d @ cycle %d" ram.Signal.ram_name
      addr bit cycle

(* Locate the site covering global state-bit [b] (uniform over bits). *)
let locate sites b =
  let rec go b = function
    | [] -> invalid_arg "Fault.locate: bit out of range"
    | s :: rest ->
      let w = site_bits s in
      if b < w then (s, b) else go (b - w) rest
  in
  go b sites

let plan ~seed ~trials ?(kinds = [ Transient; Stuck_at ]) ~cycles t =
  if trials < 0 then invalid_arg "Fault.plan: trials < 0";
  if t.sites = [] || t.total_bits = 0 then
    invalid_arg "Fault.plan: empty fault site table";
  if kinds = [] then invalid_arg "Fault.plan: empty kind list";
  let kinds = Array.of_list kinds in
  let horizon = max 1 cycles in
  List.init trials (fun i ->
      let rng = Random.State.make [| seed; i |] in
      let site, off = locate t.sites (Random.State.int rng t.total_bits) in
      let kind = kinds.(Random.State.int rng (Array.length kinds)) in
      match site.target with
      | Reg reg -> (
        let bit = off in
        match kind with
        | Transient ->
          Flip_reg
            { reg; cls = site.cls; bit; cycle = Random.State.int rng horizon }
        | Stuck_at ->
          Stuck_reg
            { reg; cls = site.cls; bit; value = Random.State.int rng 2 })
      | Mem ram ->
        let w = ram.Signal.ram_width in
        let addr = off / w and bit = off mod w in
        let cycle =
          (* stuck-at on a memory: the cell is corrupted before the run
             starts and stays corrupted until something overwrites it *)
          match kind with
          | Transient -> Random.State.int rng horizon
          | Stuck_at -> 0
        in
        Flip_mem { ram; cls = site.cls; addr; bit; cycle })

(* Structural-locality key.  Faults that compare close under this key hit
   the same (or a neighbouring) state element, so their fan-out cones
   overlap heavily.  Bit-sliced campaigns sort the plan by this key before
   packing lanes: the union of 62 overlapping cones diverges far fewer
   simulator slots than 62 scattered ones, which keeps the [`Batch]
   backend's lane-uniformity fast path effective during the pass. *)
let site_ord = function
  | Flip_reg { reg; bit; cycle; _ } -> ((reg.Signal.id * 2, bit), cycle)
  | Stuck_reg { reg; bit; value; _ } -> ((reg.Signal.id * 2, bit), value)
  | Flip_mem { ram; addr; bit; cycle; _ } ->
    (((ram.Signal.ram_id * 2) + 1, (addr * ram.Signal.ram_width) + bit), cycle)

let install sim = function
  | Stuck_reg { reg; bit; value; _ } ->
    if value = 0 then
      Sim.force sim reg ~and_mask:(lnot (1 lsl bit)) ~or_mask:0
    else Sim.force sim reg ~and_mask:(-1) ~or_mask:(1 lsl bit)
  | Flip_reg _ | Flip_mem _ -> ()

let trigger_cycle = function
  | Flip_reg { cycle; _ } | Flip_mem { cycle; _ } -> Some cycle
  | Stuck_reg _ -> None

let trigger sim = function
  | Flip_reg { reg; bit; _ } ->
    Sim.poke sim reg (Sim.peek sim reg lxor (1 lsl bit))
  | Flip_mem { ram; addr; bit; _ } ->
    let cur = (Sim.ram_contents sim ram).(addr) in
    Sim.poke_ram sim ram addr (cur lxor (1 lsl bit))
  | Stuck_reg _ -> ()

(* Lane-targeted variants: one trial per lane of a [`Batch] simulator.
   On a scalar simulator lane 0 degrades to the plain install/trigger. *)

let install_lane sim lane = function
  | Stuck_reg { reg; bit; value; _ } ->
    if value = 0 then
      Sim.force_lane sim lane reg ~and_mask:(lnot (1 lsl bit)) ~or_mask:0
    else Sim.force_lane sim lane reg ~and_mask:(-1) ~or_mask:(1 lsl bit)
  | Flip_reg _ | Flip_mem _ -> ()

let trigger_lane sim lane = function
  | Flip_reg { reg; bit; _ } ->
    Sim.poke_lane sim lane reg
      (Sim.peek_lane sim lane reg lxor (1 lsl bit))
  | Flip_mem { ram; addr; bit; _ } ->
    let cur = (Sim.ram_contents_lane sim lane ram).(addr) in
    Sim.poke_ram_lane sim lane ram addr (cur lxor (1 lsl bit))
  | Stuck_reg _ -> ()
