(** Fault models over a netlist's architectural state.

    A {e fault site} is a piece of state whose corruption both simulator
    backends ({!Tl_hw.Sim}) observe identically: a register (its dense
    value slot is never aliased or CSE-merged by the tape compiler) or a
    memory cell (both backends share the contents arrays).  Arbitrary
    combinational wires are {e not} injectable — the tape backend may
    alias or merge them, so a wire-level upset could legally diverge
    between backends.  Stuck-at faults on "wires" are therefore realised
    as stuck bits on register outputs, which is where a synthesised
    netlist latches them anyway.

    Three fault models:
    - {b transient register bit-flip}: one bit of one register inverted
      at one cycle, persisting until the register next latches;
    - {b stuck-at-0/1}: one register output bit forced for the whole
      run (both backends re-apply the force around every settle/latch);
    - {b memory-cell corruption}: one bit of one ram cell inverted at
      one cycle (at cycle 0 for the stuck-at kind: a cell corrupted
      before the run, persisting until overwritten).

    Plans are deterministic: trial [i] of [plan ~seed] draws from
    [Random.State.make [| seed; i |]], so any (seed, trial) pair can be
    replayed in isolation. *)

type module_class = Controller | Pe | Interconnect | Memory | Rom
(** Vulnerability-report buckets.  Generated accelerators name their
    registers so sites classify structurally: controller counters and
    strobes ([cycle_ctr], [pass_ctr], ...), systolic chain registers
    ([*_sysin]/[*_sysout] — interconnect), everything else in a PE's
    datapath ([Pe], the default for unnamed registers).  Rams split into
    data/bank memories and their parity companions ([Memory]) versus
    schedule-table ROMs ([Rom]) — including a bank's write-address /
    write-enable tables, whose corruption misdirects writes and is
    therefore a control fault, not a data fault. *)

val class_label : module_class -> string
val all_classes : module_class list

val classify_reg : Tl_hw.Signal.t -> module_class
val classify_ram : Tl_hw.Signal.ram -> module_class

type target = Reg of Tl_hw.Signal.t | Mem of Tl_hw.Signal.ram
type site = { target : target; cls : module_class }

val site_name : site -> string
val site_bits : site -> int
(** Register width, or [size * width] for a memory. *)

type table = {
  circuit : Tl_hw.Circuit.t;
  sites : site list;  (** deterministic order: registers in topological
                          order, then rams in declaration order *)
  total_bits : int;
}

val table : ?classes:module_class list -> Tl_hw.Circuit.t -> table
(** Enumerate the injectable state of a circuit.  [classes] restricts
    the table to the given module classes (default: everything). *)

val injectable_reg : table -> Tl_hw.Signal.t -> bool
(** Is this register in the table?  (Feeds the L014 lint rule.) *)

type kind = Transient | Stuck_at

type fault =
  | Flip_reg of
      { reg : Tl_hw.Signal.t; cls : module_class; bit : int; cycle : int }
  | Stuck_reg of
      { reg : Tl_hw.Signal.t; cls : module_class; bit : int; value : int }
  | Flip_mem of
      { ram : Tl_hw.Signal.ram;
        cls : module_class;
        addr : int;
        bit : int;
        cycle : int }

val fault_class : fault -> module_class
val fault_label : fault -> string
(** Human-readable one-liner, stable across runs (used for report
    determinism checks). *)

val site_ord : fault -> (int * int) * int
(** Structural-locality sort key: faults that compare close hit the same
    or a neighbouring state element, so their fan-out cones overlap.
    Bit-sliced campaigns sort the plan by this key before packing lanes
    so each 62-lane pass stays mostly lane-uniform. *)

val plan : seed:int -> trials:int -> ?kinds:kind list -> cycles:int ->
  table -> fault list
(** [trials] faults, uniform over the table's state {e bits} (so a
    32-bit accumulator is 32× as likely as a 1-bit strobe, matching a
    uniform physical upset model).  Transient faults strike at a
    uniform cycle in [\[0, cycles)].
    @raise Invalid_argument on an empty table or [trials < 0]. *)

(** {2 Applying a fault to a live simulator} *)

val install : Tl_hw.Sim.t -> fault -> unit
(** Install the persistent part of a fault ({!Stuck_reg} forces).
    Transient faults are a no-op here — fire them with {!trigger} at
    {!trigger_cycle}. *)

val trigger_cycle : fault -> int option
(** The cycle a transient fault strikes at; [None] for stuck-at. *)

val trigger : Tl_hw.Sim.t -> fault -> unit
(** Flip the targeted bit now (reads current state, xors, writes back).
    No-op for {!Stuck_reg}. *)

val install_lane : Tl_hw.Sim.t -> int -> fault -> unit
(** Lane-targeted {!install} for [`Batch] simulators: the stuck-at force
    lands on one lane only, so up to [Sim.lanes] independent fault plans
    run side by side.  Lane 0 on a scalar simulator behaves like
    {!install}. *)

val trigger_lane : Tl_hw.Sim.t -> int -> fault -> unit
(** Lane-targeted {!trigger}. *)
