(* Switching-activity probe over a running simulation.

   Registers are observed at their dense storage slots — register slots are
   never aliased or CSE-merged by the tape compiler (same invariant the
   fault-injection hooks rely on), so the probe behaves identically on both
   backends.  Toggles are counted across the latch edge: popcount of
   (old lxor new) per register per cycle.  Ram read ports count an access
   on every settled address change (plus the first cycle); write ports
   count cycles where the enable is high and the address in range, which
   is exactly when the simulator commits a write. *)

type rreg = { r_slot : int; r_label : string option; mutable r_prev : int;
              mutable r_toggles : int }

type rport = { p_slot : int; mutable p_prev : int option }

type wport = { w_we : int; w_waddr : int; w_size : int }

type t = {
  sim : Sim.t;
  regs : rreg array;
  reads : rport array;
  writes : wport array;
  mutable cycles : int;
  mutable ram_reads : int;
  mutable ram_writes : int;
  reg_bits : int;
}

type report = {
  cycles : int;
  reg_count : int;
  reg_bits : int;
  reg_toggles : int;
  read_ports : int;
  write_ports : int;
  ram_reads : int;
  ram_writes : int;
  per_reg : (string * int) list;
}

let popcount v =
  let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + (v land 1)) in
  go v 0

let create sim circuit =
  (* a bit-sliced simulator interleaves up to 62 independent trials, so a
     single toggle count is meaningless — refuse rather than silently
     report lane 0 *)
  if Sim.backend sim = `Batch then
    invalid_arg "Activity.create: batch simulators are not supported";
  let nodes = Circuit.nodes circuit in
  let regs = ref [] and reads = ref [] and bits = ref 0 in
  Array.iter
    (fun (s : Signal.t) ->
      match s.Signal.node with
      | Signal.Reg _ -> (
        match Sim.slot sim s with
        | Some slot ->
          bits := !bits + s.Signal.width;
          regs :=
            { r_slot = slot; r_label = s.Signal.name;
              r_prev = Sim.read_slot sim slot; r_toggles = 0 }
            :: !regs
        | None -> ())
      | Signal.Ram_read (_, addr) -> (
        match Sim.slot sim addr with
        | Some slot -> reads := { p_slot = slot; p_prev = None } :: !reads
        | None -> ())
      | _ -> ())
    nodes;
  let writes =
    List.filter_map
      (fun (r : Signal.ram) ->
        match r.Signal.write_port with
        | None -> None
        | Some wp -> (
          match (Sim.slot sim wp.Signal.we, Sim.slot sim wp.Signal.waddr) with
          | Some we, Some waddr ->
            Some { w_we = we; w_waddr = waddr; w_size = r.Signal.size }
          | _ -> None))
      (Circuit.rams circuit)
  in
  { sim;
    regs = Array.of_list (List.rev !regs);
    reads = Array.of_list (List.rev !reads);
    writes = Array.of_list writes;
    cycles = 0; ram_reads = 0; ram_writes = 0; reg_bits = !bits }

let cycle t =
  Sim.settle t.sim;
  Array.iter
    (fun p ->
      let a = Sim.read_slot t.sim p.p_slot in
      (match p.p_prev with
      | Some old when old = a -> ()
      | _ -> t.ram_reads <- t.ram_reads + 1);
      p.p_prev <- Some a)
    t.reads;
  Array.iter
    (fun w ->
      if
        Sim.read_slot t.sim w.w_we <> 0
        && Sim.read_slot t.sim w.w_waddr < w.w_size
      then t.ram_writes <- t.ram_writes + 1)
    t.writes;
  Sim.latch t.sim;
  Array.iter
    (fun r ->
      let v = Sim.read_slot t.sim r.r_slot in
      r.r_toggles <- r.r_toggles + popcount (v lxor r.r_prev);
      r.r_prev <- v)
    t.regs;
  t.cycles <- t.cycles + 1

let cycles t n =
  for _ = 1 to n do
    cycle t
  done

let report t =
  let reg_toggles =
    Array.fold_left (fun acc r -> acc + r.r_toggles) 0 t.regs
  in
  let per_reg =
    Array.to_list t.regs
    |> List.filter_map (fun r ->
        match r.r_label with
        | Some l -> Some (l, r.r_toggles)
        | None -> None)
  in
  { cycles = t.cycles;
    reg_count = Array.length t.regs;
    reg_bits = t.reg_bits;
    reg_toggles;
    read_ports = Array.length t.reads;
    write_ports = Array.length t.writes;
    ram_reads = t.ram_reads;
    ram_writes = t.ram_writes;
    per_reg }

let alpha_reg r =
  if r.cycles = 0 || r.reg_bits = 0 then 0.
  else float_of_int r.reg_toggles /. (float_of_int r.reg_bits *. float_of_int r.cycles)

let alpha_mem r =
  let ports = r.read_ports + r.write_ports in
  if r.cycles = 0 || ports = 0 then 0.
  else
    float_of_int (r.ram_reads + r.ram_writes)
    /. (float_of_int ports *. float_of_int r.cycles)
