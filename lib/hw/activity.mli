(** Switching-activity probe.

    Drives a {!Sim} run while counting per-register toggles (popcount of
    the latch-edge XOR) and per-ram access events, to replace the assumed
    activity factors in the ASIC power model with {e measured} ones.

    Works identically on both scalar simulator backends: registers are
    observed
    at their canonical dense slots (never aliased by the tape compiler),
    ram read ports count an access per settled address change, and write
    ports count exactly the cycles the simulator commits a write
    (enable high, address in range). *)

type t

type report = {
  cycles : int;
  reg_count : int;
  reg_bits : int;        (** total state bits observed *)
  reg_toggles : int;     (** sum over cycles of popcount(old lxor new) *)
  read_ports : int;
  write_ports : int;
  ram_reads : int;       (** read-address-change events *)
  ram_writes : int;      (** committed write events *)
  per_reg : (string * int) list;  (** toggles per {e named} register *)
}

val create : Sim.t -> Circuit.t -> t
(** Attach a probe.  Registers' initial values are captured immediately,
    so create the probe before running any cycles.
    @raise Invalid_argument on a [`Batch] simulator: a bit-sliced run
    interleaves up to 62 independent trials, so a single toggle count
    would be meaningless. *)

val cycle : t -> unit
(** One full clock cycle ({!Sim.settle} + {!Sim.latch}) with observation
    interleaved: ram ports are sampled post-settle, register toggles are
    accumulated across the latch edge.  Drive the simulation through the
    probe (don't mix with {!Sim.cycle}) or toggle counts will miss
    edges. *)

val cycles : t -> int -> unit

val report : t -> report

val alpha_reg : report -> float
(** Measured register activity factor: toggles / (bits x cycles); 0 on an
    empty probe. *)

val alpha_mem : report -> float
(** Measured memory port activity factor:
    (reads + writes) / (ports x cycles); 0 on an empty probe. *)
