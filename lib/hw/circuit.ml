type t = {
  name : string;
  outputs : (string * Signal.t) list;
  nodes : Signal.t array;
  inputs : (string * int) list;
  rams : Signal.ram list;
}

type stats = {
  nodes : int;
  regs : int;
  reg_bits : int;
  adders : int;
  multipliers : int;
  muxes : int;
  logic_ops : int;
  rams : int;
  ram_bits : int;
  inputs : int;
  outputs : int;
}

exception Combinational_cycle of string
exception Unassigned_wire of string

let describe (s : Signal.t) =
  match s.Signal.name with
  | Some n -> Printf.sprintf "%s (id %d)" n s.Signal.id
  | None -> Printf.sprintf "id %d" s.Signal.id

(* Children that must be *reachable* (sequential deps included). *)
let all_children (s : Signal.t) =
  match s.Signal.node with
  | Signal.Input _ | Signal.Const _ -> []
  | Signal.Unop (_, a) -> [ a ]
  | Signal.Binop (_, a, b) -> if a == b then [ a ] else [ a; b ]
  | Signal.Mux (c, a, b) -> [ c; a; b ]
  | Signal.Concat (a, b) -> [ a; b ]
  | Signal.Repl (a, _) -> [ a ]
  | Signal.Select (a, _, _) -> [ a ]
  | Signal.Reg r ->
    (r.Signal.d :: Option.to_list r.Signal.enable)
    @ Option.to_list r.Signal.clear
  | Signal.Wire r -> (
    match !r with
    | Some d -> [ d ]
    | None -> raise (Unassigned_wire (describe s)))
  | Signal.Ram_read (ram, addr) ->
    addr
    :: (match ram.Signal.write_port with
        | None -> []
        | Some w -> [ w.Signal.we; w.Signal.waddr; w.Signal.wdata ])

(* Children a node depends on *combinationally* (same cycle). *)
let comb_children (s : Signal.t) =
  match s.Signal.node with
  | Signal.Reg _ -> []
  | Signal.Ram_read (_, addr) -> [ addr ]
  | Signal.Input _ | Signal.Const _ | Signal.Unop _ | Signal.Binop _
  | Signal.Mux _ | Signal.Concat _ | Signal.Repl _ | Signal.Select _
  | Signal.Wire _ ->
    all_children s

let create ~name ~outputs =
  (* duplicate output names *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (n, _) ->
      if Hashtbl.mem seen n then
        invalid_arg ("Circuit.create: duplicate output " ^ n);
      Hashtbl.add seen n ())
    outputs;
  (* reachability *)
  let visited : (int, unit) Hashtbl.t = Hashtbl.create 1024 in
  let collected = ref [] in
  let rec visit ~out_name stack s =
    if not (Hashtbl.mem visited s.Signal.id) then begin
      Hashtbl.add visited s.Signal.id ();
      let children =
        try all_children s
        with Unassigned_wire _ ->
          (* [s] is the unassigned wire; name the nearest user-named
             signal on the path from the output so the wire can be found *)
          let named =
            List.find_opt (fun p -> p.Signal.name <> None) stack
          in
          raise
            (Unassigned_wire
               (Printf.sprintf "%s (in the cone of output %S%s)"
                  (describe s) out_name
                  (match named with
                   | Some p ->
                     ", nearest named signal " ^ describe p
                   | None -> "")))
      in
      List.iter (visit ~out_name (s :: stack)) children;
      collected := s :: !collected
    end
  in
  List.iter (fun (out_name, s) -> visit ~out_name [] s) outputs;
  let all = List.rev !collected in
  (* combinational topological sort with cycle detection *)
  let color : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  let order = ref [] in
  let rec dfs stack s =
    match Hashtbl.find_opt color s.Signal.id with
    | Some 2 -> ()
    | Some 1 ->
      (* [stack] holds the grey path back to [s]; data flows from each
         child to its parent, so the cycle reads s -> ... -> s *)
      let rec upto acc = function
        | [] -> acc
        | p :: rest -> if p == s then acc else upto (p :: acc) rest
      in
      let through = List.rev (upto [] stack) in
      raise
        (Combinational_cycle
           (String.concat " -> "
              (List.map describe ((s :: through) @ [ s ]))))
    | Some _ | None ->
      Hashtbl.replace color s.Signal.id 1;
      List.iter (dfs (s :: stack)) (comb_children s);
      Hashtbl.replace color s.Signal.id 2;
      order := s :: !order
  in
  List.iter (dfs []) all;
  let nodes = Array.of_list (List.rev !order) in
  (* inputs *)
  let input_table = Hashtbl.create 16 in
  Array.iter
    (fun s ->
      match s.Signal.node with
      | Signal.Input n -> (
        match Hashtbl.find_opt input_table n with
        | None -> Hashtbl.add input_table n s.Signal.width
        | Some w when w = s.Signal.width -> ()
        | Some w ->
          invalid_arg
            (Printf.sprintf
               "Circuit.create: input %s declared with widths %d and %d" n w
               s.Signal.width))
      | _ -> ())
    nodes;
  let inputs =
    List.sort compare
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) input_table [])
  in
  (* rams *)
  let ram_table = Hashtbl.create 8 in
  Array.iter
    (fun s ->
      match s.Signal.node with
      | Signal.Ram_read (r, _) ->
        if not (Hashtbl.mem ram_table r.Signal.ram_id) then
          Hashtbl.add ram_table r.Signal.ram_id r
      | _ -> ())
    nodes;
  let rams =
    List.sort
      (fun a b -> compare a.Signal.ram_id b.Signal.ram_id)
      (Hashtbl.fold (fun _ r acc -> r :: acc) ram_table [])
  in
  { name; outputs; nodes; inputs; rams }

let name (t : t) = t.name
let outputs (t : t) = t.outputs
let inputs (t : t) = t.inputs
let nodes (t : t) = t.nodes
let rams (t : t) = t.rams

let stats (t : t) =
  let regs = ref 0 and reg_bits = ref 0 and adders = ref 0 in
  let multipliers = ref 0 and muxes = ref 0 and logic_ops = ref 0 in
  Array.iter
    (fun s ->
      match s.Signal.node with
      | Signal.Reg _ ->
        incr regs;
        reg_bits := !reg_bits + s.Signal.width
      | Signal.Binop ((Signal.Add | Signal.Sub), _, _) -> incr adders
      | Signal.Binop (Signal.Mul, _, _) -> incr multipliers
      | Signal.Binop _ | Signal.Unop _ -> incr logic_ops
      | Signal.Mux _ -> incr muxes
      | Signal.Input _ | Signal.Const _ | Signal.Concat _ | Signal.Repl _
      | Signal.Select _ | Signal.Wire _ | Signal.Ram_read _ -> ())
    t.nodes;
  { nodes = Array.length t.nodes;
    regs = !regs;
    reg_bits = !reg_bits;
    adders = !adders;
    multipliers = !multipliers;
    muxes = !muxes;
    logic_ops = !logic_ops;
    rams = List.length t.rams;
    ram_bits =
      List.fold_left
        (fun acc r -> acc + (r.Signal.size * r.Signal.ram_width))
        0 t.rams;
    inputs = List.length t.inputs;
    outputs = List.length t.outputs }

let default_delay (s : Signal.t) =
  match s.Signal.node with
  | Signal.Binop (Signal.Mul, _, _) -> 4
  | Signal.Binop ((Signal.Add | Signal.Sub | Signal.Ult | Signal.Slt), _, _)
    -> 2
  | Signal.Binop (_, _, _) | Signal.Unop _ | Signal.Mux _ -> 1
  | Signal.Ram_read _ -> 2
  | Signal.Input _ | Signal.Const _ | Signal.Concat _ | Signal.Repl _
  | Signal.Select _ | Signal.Reg _ | Signal.Wire _ -> 0

let critical_path ?(delay = default_delay) (t : t) =
  (* nodes are already in combinational topological order; registers and
     inputs start paths at depth 0 *)
  let depth : (int, int) Hashtbl.t = Hashtbl.create (Array.length t.nodes) in
  let get s =
    match Hashtbl.find_opt depth s.Signal.id with Some d -> d | None -> 0
  in
  Array.iter
    (fun s ->
      let arrival =
        match s.Signal.node with
        | Signal.Reg _ | Signal.Input _ | Signal.Const _ -> 0
        | _ ->
          List.fold_left (fun acc c -> max acc (get c)) 0 (comb_children s)
          + delay s
      in
      Hashtbl.replace depth s.Signal.id arrival)
    t.nodes;
  (* path endpoints: register/ram-write inputs and circuit outputs *)
  let worst = ref 0 in
  let visit e = if get e > !worst then worst := get e in
  Array.iter
    (fun s ->
      match s.Signal.node with
      | Signal.Reg r ->
        List.iter visit
          ((r.Signal.d :: Option.to_list r.Signal.enable)
           @ Option.to_list r.Signal.clear)
      | _ -> ())
    t.nodes;
  List.iter
    (fun (r : Signal.ram) ->
      match r.Signal.write_port with
      | None -> ()
      | Some wp ->
        List.iter visit [ wp.Signal.we; wp.Signal.waddr; wp.Signal.wdata ])
    t.rams;
  List.iter (fun (_, s) -> visit s) t.outputs;
  !worst

let pp_stats ppf s =
  Format.fprintf ppf
    "@[nodes=%d regs=%d (%d bits) adders=%d muls=%d muxes=%d logic=%d \
     rams=%d (%d bits) io=%d/%d@]"
    s.nodes s.regs s.reg_bits s.adders s.multipliers s.muxes s.logic_ops
    s.rams s.ram_bits s.inputs s.outputs
