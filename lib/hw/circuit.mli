(** Elaborated circuits.

    A circuit is the transitive fan-in of a set of named outputs.  Building
    one validates the netlist: all wires assigned, no combinational cycles,
    consistent input declarations.  The node list is returned in
    combinational topological order (registers and ram reads act as
    sequential sources; their data inputs are ordinary nodes evaluated
    within the same cycle and latched at the clock edge). *)

type t

type stats = {
  nodes : int;
  regs : int;
  reg_bits : int;
  adders : int;     (** Add/Sub nodes *)
  multipliers : int;
  muxes : int;
  logic_ops : int;  (** And/Or/Xor/Not/compare/shift *)
  rams : int;
  ram_bits : int;
  inputs : int;
  outputs : int;
}

exception Combinational_cycle of string
exception Unassigned_wire of string

val create : name:string -> outputs:(string * Signal.t) list -> t
(** @raise Unassigned_wire, @raise Combinational_cycle,
    @raise Invalid_argument on duplicate output names or inputs redeclared
    at different widths. *)

val name : t -> string
val outputs : t -> (string * Signal.t) list
val inputs : t -> (string * int) list
(** Distinct input names with widths, sorted. *)

val nodes : t -> Signal.t array
(** All reachable nodes in topological (evaluation) order. *)

val rams : t -> Signal.ram list
val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit

val critical_path : ?delay:(Signal.t -> int) -> t -> int
(** Longest register-to-register combinational path, in delay units.  The
    default delay model charges multipliers 4, adders/subtractors and
    comparators 2, muxes and logic 1, wiring/selection 0 — a coarse
    gate-level proxy good enough to compare dataflow families (reduction
    trees and long fan-in cones show up as deeper paths and therefore lower
    achievable frequency). *)
