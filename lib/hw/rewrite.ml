(* The circuit is rebuilt by a memoised recursive walk.  Register feedback
   loops are broken by pre-creating every register with wire placeholders
   for its data/enable/clear, which are assigned after the walk.  Rams are
   duplicated (same geometry and contents) so their write ports can point
   at rewritten signals. *)

let is_const (s : Signal.t) =
  match s.Signal.node with Signal.Const c -> Some c | _ -> None

let all_ones w = Signal.mask_to_width w (-1)

(* facts-driven narrowing: a fact [(bv, bm)] on a signal asserts that on
   every reachable cycle the signal's value [x] satisfies
   [x land (lnot bm) = bv] (the bits outside [bm] are constant).  A fully
   known node folds to a constant; a node whose high bits are known can be
   computed at the width of its lowest unknown run and re-extended with a
   free constant concat — sound for the wrap-around ops (add/sub/mul),
   bitwise ops, muxes and registers, whose low result bits depend only on
   low operand bits. *)

(* highest unknown bit [h] and the known bits above it, when a known high
   run exists *)
let narrow_info w fact =
  match fact with
  | Some (bv, bm) when bm <> 0 ->
    let h = ref 0 in
    for i = 0 to w - 1 do
      if bm land (1 lsl i) <> 0 then h := i
    done;
    if !h < w - 1 then Some (!h, bv lsr (!h + 1)) else None
  | _ -> None

(* low [nw] bits of a signal, folding constants and width-preserving
   selections *)
let sel_low nw (s : Signal.t) =
  if s.Signal.width = nw then s
  else
    match is_const s with
    | Some c -> Signal.const ~width:nw (Signal.mask_to_width nw c)
    | None -> Signal.select s ~hi:(nw - 1) ~lo:0

let circuit_with_facts ?(facts = fun _ -> None) original =
  let memo : (int, Signal.t) Hashtbl.t = Hashtbl.create 1024 in
  let reg_fixups : (Signal.t * Signal.reg * int) list ref = ref [] in
  let ram_map : (int, Signal.ram) Hashtbl.t = Hashtbl.create 8 in
  let ram_pairs = ref [] in
  let new_ram (r : Signal.ram) =
    match Hashtbl.find_opt ram_map r.Signal.ram_id with
    | Some nr -> nr
    | None ->
      let nr =
        Signal.ram ~name:r.Signal.ram_name ~read_only:r.Signal.read_only
          ~size:r.Signal.size ~width:r.Signal.ram_width
          ~init:r.Signal.init_data ()
      in
      Hashtbl.add ram_map r.Signal.ram_id nr;
      ram_pairs := (r, nr) :: !ram_pairs;
      nr
  in
  let keep_name (old : Signal.t) (fresh : Signal.t) =
    (match (old.Signal.name, fresh.Signal.name) with
     | Some n, None -> ignore (Signal.set_name fresh n)
     | _ -> ());
    fresh
  in
  let rec walk (s : Signal.t) =
    match Hashtbl.find_opt memo s.Signal.id with
    | Some s' -> s'
    | None ->
      let fact = facts s in
      let result =
        match (fact, s.Signal.node) with
        | Some (bv, 0), node when (match node with
                                   | Signal.Input _ -> false
                                   | _ -> true) ->
          (* every bit proven constant: the whole node (registers and ram
             reads included) folds to its value *)
          Signal.const ~width:s.Signal.width bv
        | _, Signal.Input n -> Signal.input n s.Signal.width
        | _, Signal.Const c -> Signal.const ~width:s.Signal.width c
        | _, Signal.Wire _ -> walk (Signal.resolve s)
        | _, Signal.Reg r -> (
          match narrow_info s.Signal.width fact with
          | Some (h, top) ->
            (* keep only the unknown low bits in the register; the known
               high bits come back as a free constant concat *)
            let nw = h + 1 in
            let dw = Signal.wire nw in
            let en = Option.map (fun _ -> Signal.wire 1) r.Signal.enable in
            let cl = Option.map (fun _ -> Signal.wire 1) r.Signal.clear in
            let narrow =
              Signal.reg ?enable:en ?clear:cl
                ~clear_to:(Signal.mask_to_width nw r.Signal.clear_to)
                ~init:(Signal.mask_to_width nw r.Signal.init) dw
            in
            let fresh =
              Signal.concat
                [ Signal.const ~width:(s.Signal.width - nw) top; narrow ]
            in
            Hashtbl.add memo s.Signal.id fresh;
            reg_fixups := (narrow, r, nw) :: !reg_fixups;
            fresh
          | None ->
            (* placeholder wires close the feedback loop *)
            let dw = Signal.wire s.Signal.width in
            let en = Option.map (fun _ -> Signal.wire 1) r.Signal.enable in
            let cl = Option.map (fun _ -> Signal.wire 1) r.Signal.clear in
            let fresh =
              Signal.reg ?enable:en ?clear:cl ~clear_to:r.Signal.clear_to
                ~init:r.Signal.init dw
            in
            Hashtbl.add memo s.Signal.id fresh;
            reg_fixups := (fresh, r, s.Signal.width) :: !reg_fixups;
            fresh)
        | _, Signal.Unop (Signal.Not, a) -> (
          let a' = walk a in
          match is_const a' with
          | Some c ->
            Signal.const ~width:s.Signal.width
              (Signal.mask_to_width s.Signal.width (lnot c))
          | None -> Signal.not_ a')
        | _, Signal.Binop (op, a, b) -> (
          let a' = walk a and b' = walk b in
          let w = s.Signal.width in
          match (op, narrow_info w fact) with
          | ( ( Signal.Add | Signal.Sub | Signal.Mul | Signal.And
              | Signal.Or | Signal.Xor ),
              Some (h, top) ) ->
            let nw = h + 1 in
            let nr = rebuild_binop nw op (sel_low nw a') (sel_low nw b') in
            Signal.concat [ Signal.const ~width:(w - nw) top; nr ]
          | _ -> rebuild_binop w op a' b')
        | _, Signal.Mux (c, t, f) -> (
          let c' = walk c in
          match is_const c' with
          | Some 0 -> walk f
          | Some _ -> walk t
          | None -> (
            let t' = walk t and f' = walk f in
            if t' == f' then t'
            else
              match narrow_info s.Signal.width fact with
              | Some (h, top) ->
                let nw = h + 1 in
                Signal.concat
                  [ Signal.const ~width:(s.Signal.width - nw) top;
                    Signal.mux2 c' (sel_low nw t') (sel_low nw f') ]
              | None -> Signal.mux2 c' t' f'))
        | _, Signal.Concat (hi, lo) -> (
          let hi' = walk hi and lo' = walk lo in
          match (is_const hi', is_const lo') with
          | Some h, Some l ->
            Signal.const ~width:s.Signal.width
              ((h lsl lo'.Signal.width) lor l)
          | _ -> Signal.concat [ hi'; lo' ])
        | _, Signal.Repl (a, n) -> (
          let a' = walk a in
          match is_const a' with
          | Some c ->
            let acc = ref 0 in
            for _ = 1 to n do
              acc := (!acc lsl a'.Signal.width) lor c
            done;
            Signal.const ~width:s.Signal.width
              (Signal.mask_to_width s.Signal.width !acc)
          | None -> rebuild_repl a' n)
        | _, Signal.Select (a, hi, lo) -> (
          let a' = walk a in
          match is_const a' with
          | Some c ->
            Signal.const ~width:s.Signal.width (c lsr lo)
          | None -> Signal.select a' ~hi ~lo)
        | _, Signal.Ram_read (r, addr) ->
          Signal.ram_read (new_ram r) (walk addr)
      in
      let result = keep_name s result in
      Hashtbl.replace memo s.Signal.id result;
      result
  and rebuild_repl a n = Signal.repl a n
  and rebuild_binop w op a b =
    let open Signal in
    let fold f =
      match (is_const a, is_const b) with
      | Some x, Some y -> Some (const ~width:w (mask_to_width w (f x y)))
      | _ -> None
    in
    let redo () =
      match op with
      | Add -> a +: b
      | Sub -> a -: b
      | Mul -> a *: b
      | And -> a &: b
      | Or -> a |: b
      | Xor -> a ^: b
      | Eq -> eq a b
      | Ult -> ult a b
      | Slt -> slt a b
      | Shl n -> shift_left a n
      | Shr n -> shift_right_l a n
      | Sra n -> shift_right_a a n
    in
    match op with
    | Add -> (
      match fold ( + ) with
      | Some c -> c
      | None ->
        if is_const b = Some 0 then a
        else if is_const a = Some 0 then b
        else redo ())
    | Sub -> (
      match fold ( - ) with
      | Some c -> c
      | None -> if is_const b = Some 0 then a else redo ())
    | Mul -> (
      match fold ( * ) with
      | Some c -> c
      | None ->
        if is_const b = Some 0 || is_const a = Some 0 then const ~width:w 0
        else if is_const b = Some 1 then a
        else if is_const a = Some 1 then b
        else redo ())
    | And -> (
      match fold ( land ) with
      | Some c -> c
      | None ->
        if is_const b = Some 0 || is_const a = Some 0 then const ~width:w 0
        else if is_const b = Some (all_ones w) then a
        else if is_const a = Some (all_ones w) then b
        else redo ())
    | Or -> (
      match fold ( lor ) with
      | Some c -> c
      | None ->
        if is_const b = Some 0 then a
        else if is_const a = Some 0 then b
        else redo ())
    | Xor -> (
      match fold ( lxor ) with
      | Some c -> c
      | None ->
        if is_const b = Some 0 then a
        else if is_const a = Some 0 then b
        else redo ())
    | Eq -> (
      match (is_const a, is_const b) with
      | Some x, Some y -> const ~width:1 (if x = y then 1 else 0)
      | _ -> redo ())
    | Ult -> (
      match (is_const a, is_const b) with
      | Some x, Some y -> const ~width:1 (if x < y then 1 else 0)
      | _ -> redo ())
    | Slt -> (
      match (is_const a, is_const b) with
      | Some x, Some y ->
        let aw = a.Signal.width in
        const ~width:1
          (if Signal.to_signed aw x < Signal.to_signed aw y then 1 else 0)
      | _ -> redo ())
    | Shl n -> (
      match is_const a with
      | Some x -> const ~width:w (x lsl n)
      | None -> if n = 0 then a else redo ())
    | Shr n -> (
      match is_const a with
      | Some x -> const ~width:w (x lsr n)
      | None -> if n = 0 then a else redo ())
    | Sra n -> (
      match is_const a with
      | Some x ->
        const ~width:w (Signal.to_signed a.Signal.width x asr n)
      | None -> if n = 0 then a else redo ())
  in
  let outputs =
    List.map (fun (name, s) -> (name, walk s)) (Circuit.outputs original)
  in
  (* Close register loops and rebuild ram write ports.  Walking a
     register's data cone can discover further registers and rams, so the
     fixups are drained as worklists until none remain. *)
  let done_rams : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let fix_reg ((fresh : Signal.t), (old_reg : Signal.reg), nw) =
    match fresh.Signal.node with
    | Signal.Reg nr ->
      Signal.assign nr.Signal.d (sel_low nw (walk old_reg.Signal.d));
      (match (nr.Signal.enable, old_reg.Signal.enable) with
       | Some w, Some e -> Signal.assign w (walk e)
       | None, None -> ()
       | _ -> assert false);
      (match (nr.Signal.clear, old_reg.Signal.clear) with
       | Some w, Some c -> Signal.assign w (walk c)
       | None, None -> ()
       | _ -> assert false)
    | _ -> assert false
  in
  let fix_ram ((old_ram : Signal.ram), (nr : Signal.ram)) =
    if not (Hashtbl.mem done_rams old_ram.Signal.ram_id) then begin
      Hashtbl.add done_rams old_ram.Signal.ram_id ();
      match old_ram.Signal.write_port with
      | None -> ()
      | Some wp ->
        Signal.ram_write nr ~we:(walk wp.Signal.we)
          ~addr:(walk wp.Signal.waddr) ~data:(walk wp.Signal.wdata)
    end
  in
  let rec drain () =
    match (!reg_fixups, !ram_pairs) with
    | [], pending
      when List.for_all
             (fun ((r : Signal.ram), _) ->
               Hashtbl.mem done_rams r.Signal.ram_id)
             pending -> ()
    | regs, rams ->
      reg_fixups := [];
      List.iter fix_reg regs;
      List.iter fix_ram rams;
      drain ()
  in
  drain ();
  let optimized =
    Circuit.create ~name:(Circuit.name original) ~outputs
  in
  (optimized, !ram_pairs)

let circuit_with_ram_map original = circuit_with_facts original

let circuit original = fst (circuit_with_ram_map original)

(* wires are free aliases; compare actual cells *)
let cells c =
  let st = Circuit.stats c in
  st.Circuit.adders + st.Circuit.multipliers + st.Circuit.muxes
  + st.Circuit.logic_ops + st.Circuit.regs

let count_removed ~before ~after = cells before - cells after
