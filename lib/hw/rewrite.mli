(** Netlist optimisation: constant folding and algebraic simplification.

    Rebuilds a circuit bottom-up, applying local rewrites:

    - operators over two constants fold to a constant;
    - [x + 0], [x - 0], [x * 1], [x & ones], [x | 0], [x ^ 0] become [x],
      and [x * 0], [x & 0] become [0];
    - muxes with a constant select collapse to the taken branch; muxes with
      identical branches collapse to the branch;
    - selects/concats/replications of constants fold;
    - wires are shorted to their drivers.

    Registers, rams, and inputs are preserved (same semantics cycle by
    cycle); user-assigned names survive on nodes that remain.  Typical
    generated accelerators shrink noticeably because validity gating and
    boundary muxes often see constant operands. *)

val circuit : Circuit.t -> Circuit.t
(** Optimised copy of the circuit (same outputs, same observable
    behaviour). *)

val circuit_with_ram_map : Circuit.t -> Circuit.t * (Signal.ram * Signal.ram) list
(** Also returns the (old, new) pairs for the rams the optimised circuit
    duplicates, so callers holding ram handles can remap them. *)

val count_removed : before:Circuit.t -> after:Circuit.t -> int
(** Cell-count reduction (adders, multipliers, muxes, logic, registers);
    wires and constants are free. *)
