(** Netlist optimisation: constant folding and algebraic simplification.

    Rebuilds a circuit bottom-up, applying local rewrites:

    - operators over two constants fold to a constant;
    - [x + 0], [x - 0], [x * 1], [x & ones], [x | 0], [x ^ 0] become [x],
      and [x * 0], [x & 0] become [0];
    - muxes with a constant select collapse to the taken branch; muxes with
      identical branches collapse to the branch;
    - selects/concats/replications of constants fold;
    - wires are shorted to their drivers.

    Registers, rams, and inputs are preserved (same semantics cycle by
    cycle); user-assigned names survive on nodes that remain.  Typical
    generated accelerators shrink noticeably because validity gating and
    boundary muxes often see constant operands. *)

val circuit : Circuit.t -> Circuit.t
(** Optimised copy of the circuit (same outputs, same observable
    behaviour). *)

val circuit_with_ram_map : Circuit.t -> Circuit.t * (Signal.ram * Signal.ram) list
(** Also returns the (old, new) pairs for the rams the optimised circuit
    duplicates, so callers holding ram handles can remap them. *)

val circuit_with_facts :
  ?facts:(Signal.t -> (int * int) option) ->
  Circuit.t -> Circuit.t * (Signal.ram * Signal.ram) list
(** Like {!circuit_with_ram_map}, additionally consuming externally-proven
    bit facts about the {e original} circuit's signals.  [facts s = Some
    (bv, bm)] asserts that on every reachable cycle [s]'s value [x]
    satisfies [x land (lnot bm) = bv] — the bits outside the mask [bm] are
    constant.  Fully known nodes (registers and ram reads included) fold to
    constants; nodes with a proven-constant high run are computed at the
    width of their unknown low bits and re-extended with a free constant
    concat (sound for add/sub/mul, bitwise ops, muxes and registers, whose
    low result bits depend only on low operand bits).  Facts are typically
    produced by the abstract-interpretation engine ([Tl_absint]); unsound
    facts yield an inequivalent circuit. *)

val count_removed : before:Circuit.t -> after:Circuit.t -> int
(** Cell-count reduction (adders, multipliers, muxes, logic, registers);
    wires and constants are free. *)
