type t = { id : int; width : int; node : node; mutable name : string option }

and node =
  | Input of string
  | Const of int
  | Unop of unop * t
  | Binop of binop * t * t
  | Mux of t * t * t
  | Concat of t * t
  | Repl of t * int
  | Select of t * int * int
  | Reg of reg
  | Wire of t option ref
  | Ram_read of ram * t

and unop = Not

and binop =
  | Add | Sub | Mul | And | Or | Xor
  | Eq | Ult | Slt
  | Shl of int | Shr of int | Sra of int

and reg = {
  d : t;
  enable : t option;
  clear : t option;
  clear_to : int;
  init : int;
}

and ram = {
  ram_id : int;
  ram_name : string;
  size : int;
  ram_width : int;
  read_only : bool;
  init_data : int array;
  mutable write_port : write_port option;
}

and write_port = { we : t; waddr : t; wdata : t }

exception Width_mismatch of string

(* Atomic counters: netlists may be elaborated concurrently from several
   domains (Tl_par fans out DSE sweeps and fuzz trials), and signal ids
   must stay unique across all of them. *)
let next_id = Atomic.make 0
let next_ram_id = Atomic.make 0

let fresh width node =
  if width <= 0 || width > 62 then
    invalid_arg (Printf.sprintf "Signal: unsupported width %d" width);
  { id = Atomic.fetch_and_add next_id 1 + 1; width; node; name = None }

let mask_to_width w v = if w >= 62 then v else v land ((1 lsl w) - 1)

let to_signed w v =
  let m = mask_to_width w v in
  if w >= 62 then m
  else if m land (1 lsl (w - 1)) <> 0 then m - (1 lsl w)
  else m

let input name width = fresh width (Input name)
let const ~width v = fresh width (Const (mask_to_width width v))
let vdd = const ~width:1 1
let gnd = const ~width:1 0
let width s = s.width
let wire w = fresh w (Wire (ref None))

let node_children s =
  match s.node with
  | Input _ | Const _ -> []
  | Unop (_, a) | Repl (a, _) | Select (a, _, _) -> [ a ]
  | Binop (_, a, b) | Concat (a, b) -> [ a; b ]
  | Mux (c, a, b) -> [ c; a; b ]
  | Reg r -> (r.d :: Option.to_list r.enable) @ Option.to_list r.clear
  | Wire r -> ( match !r with Some d -> [ d ] | None -> [])
  | Ram_read (_, a) -> [ a ]

let own_name s =
  match s.name with
  | Some n -> Some n
  | None -> ( match s.node with Input n -> Some n | _ -> None)

(* breadth-first through the fan-in so width-mismatch diagnostics can
   anchor an anonymous intermediate expression to the closest signal the
   user actually named *)
let nearest_named s =
  match own_name s with
  | Some n -> Some n
  | None ->
    let visited = Hashtbl.create 64 in
    let budget = ref 10_000 in
    let rec bfs frontier =
      if frontier = [] || !budget <= 0 then None
      else
        match
          List.find_map own_name frontier
        with
        | Some n -> Some n
        | None ->
          let next =
            List.concat_map
              (fun x ->
                List.filter
                  (fun c ->
                    if Hashtbl.mem visited c.id then false
                    else begin
                      Hashtbl.replace visited c.id ();
                      decr budget;
                      true
                    end)
                  (node_children x))
              frontier
          in
          bfs next
    in
    bfs (node_children s)

(* "'acc_0_0'", or "signal #42 (near 'cycle_ctr')" for anonymous nodes *)
let blame s =
  match own_name s with
  | Some n -> Printf.sprintf "'%s'" n
  | None -> (
    match nearest_named s with
    | Some n -> Printf.sprintf "signal #%d (near '%s')" s.id n
    | None -> Printf.sprintf "signal #%d" s.id)

let assign w s =
  match w.node with
  | Wire r ->
    if !r <> None then invalid_arg "Signal.assign: wire already assigned";
    if w.width <> s.width then
      raise
        (Width_mismatch
           (Printf.sprintf
              "assign: wire %s is %d bits, driver %s is %d bits" (blame w)
              w.width (blame s) s.width));
    r := Some s
  | Input _ | Const _ | Unop _ | Binop _ | Mux _ | Concat _ | Repl _
  | Select _ | Reg _ | Ram_read _ ->
    invalid_arg "Signal.assign: not a wire"

let reg ?enable ?clear ?(clear_to = 0) ?(init = 0) d =
  (match enable with
   | Some e when e.width <> 1 -> raise (Width_mismatch "reg enable")
   | _ -> ());
  (match clear with
   | Some c when c.width <> 1 -> raise (Width_mismatch "reg clear")
   | _ -> ());
  fresh d.width
    (Reg
       { d; enable; clear;
         clear_to = mask_to_width d.width clear_to;
         init = mask_to_width d.width init })

let binop_mismatch name a b =
  raise
    (Width_mismatch
       (Printf.sprintf "%s: %d vs %d (%s vs %s)" name a.width b.width
          (blame a) (blame b)))

let binop name op a b =
  if a.width <> b.width then binop_mismatch name a b;
  fresh a.width (Binop (op, a, b))

let cmp name op a b =
  if a.width <> b.width then binop_mismatch name a b;
  fresh 1 (Binop (op, a, b))

let ( +: ) = binop "add" Add
let ( -: ) = binop "sub" Sub
let ( *: ) = binop "mul" Mul
let ( &: ) = binop "and" And
let ( |: ) = binop "or" Or
let ( ^: ) = binop "xor" Xor
let not_ a = fresh a.width (Unop (Not, a))
let eq = cmp "eq" Eq
let ult = cmp "ult" Ult
let slt = cmp "slt" Slt
let ne a b = not_ (eq a b)
let ule a b = not_ (ult b a)
let sle a b = not_ (slt b a)
let shift_left a n = fresh a.width (Binop (Shl n, a, a))
let shift_right_l a n = fresh a.width (Binop (Shr n, a, a))
let shift_right_a a n = fresh a.width (Binop (Sra n, a, a))

let mux2 sel on1 on0 =
  if sel.width <> 1 then
    raise
      (Width_mismatch
         (Printf.sprintf "mux2 select must be 1 bit, got %d (%s)" sel.width
            (blame sel)));
  if on1.width <> on0.width then binop_mismatch "mux2 branches" on1 on0;
  fresh on1.width (Mux (sel, on1, on0))

let concat = function
  | [] -> invalid_arg "Signal.concat: empty"
  | first :: rest ->
    List.fold_left
      (fun hi lo -> fresh (hi.width + lo.width) (Concat (hi, lo)))
      first rest

let repl s n =
  if n <= 0 then invalid_arg "Signal.repl: non-positive count";
  if n = 1 then s else fresh (s.width * n) (Repl (s, n))

let select s ~hi ~lo =
  if lo < 0 || hi >= s.width || hi < lo then
    invalid_arg
      (Printf.sprintf "Signal.select: [%d:%d] of width %d" hi lo s.width);
  if lo = 0 && hi = s.width - 1 then s else fresh (hi - lo + 1) (Select (s, hi, lo))

let bit s i = select s ~hi:i ~lo:i

let uresize s w =
  if w = s.width then s
  else if w < s.width then select s ~hi:(w - 1) ~lo:0
  else concat [ const ~width:(w - s.width) 0; s ]

let sresize s w =
  if w = s.width then s
  else if w < s.width then select s ~hi:(w - 1) ~lo:0
  else begin
    let sign = bit s (s.width - 1) in
    concat [ repl sign (w - s.width); s ]
  end

let ram ?name ?(read_only = false) ~size ~width ~init () =
  if Array.length init <> size then
    invalid_arg "Signal.ram: init length must equal size";
  if size <= 0 then invalid_arg "Signal.ram: empty ram";
  let rid = Atomic.fetch_and_add next_ram_id 1 + 1 in
  let ram_name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "ram%d" rid
  in
  { ram_id = rid; ram_name; size; ram_width = width; read_only;
    init_data = Array.map (mask_to_width width) init;
    write_port = None }

let rom ?name ~width data =
  ram ?name ~read_only:true ~size:(Array.length data) ~width ~init:data ()

let ram_read r addr = fresh r.ram_width (Ram_read (r, addr))

let ram_write r ~we ~addr ~data =
  if r.read_only then
    invalid_arg ("Signal.ram_write: " ^ r.ram_name ^ " is a rom");
  if r.write_port <> None then
    invalid_arg "Signal.ram_write: write port already attached";
  if we.width <> 1 then raise (Width_mismatch "ram_write we");
  if data.width <> r.ram_width then raise (Width_mismatch "ram_write data");
  r.write_port <- Some { we; waddr = addr; wdata = data }

let set_name s n =
  s.name <- Some n;
  s

let ( -- ) = set_name
let is_wire s = match s.node with Wire _ -> true | _ -> false

let rec resolve s =
  match s.node with
  | Wire r -> (
    match !r with
    | Some driver -> resolve driver
    | None -> invalid_arg "Signal.resolve: unassigned wire")
  | _ -> s
