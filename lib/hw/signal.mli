(** Structural RTL signal DSL.

    This plays the role Chisel plays in the paper: hardware templates are
    OCaml functions that elaborate into a netlist of typed signals, which is
    then emitted as Verilog ({!module:Verilog}) or simulated cycle-accurately
    ({!module:Sim}).

    Semantics match Verilog's two-valued subset: a signal is a bit-vector of
    fixed [width]; arithmetic wraps modulo [2^width]; registers update on the
    (implicit, single) clock edge.  Signed interpretation is two's
    complement and only matters for [slt]/[sle]/[sresize]/[shift_right_a].

    Feedback loops are built with {!wire} + {!assign}: create a placeholder,
    use it, assign its driver later.  Every wire must be assigned exactly
    once before the netlist is consumed. *)

type t = private {
  id : int;
  width : int;
  node : node;
  mutable name : string option;
}

and node =
  | Input of string
  | Const of int
  | Unop of unop * t
  | Binop of binop * t * t
  | Mux of t * t * t  (** select (1 bit), on-1, on-0 *)
  | Concat of t * t  (** high bits, low bits *)
  | Repl of t * int  (** bit-pattern replicated n times *)
  | Select of t * int * int  (** source, hi, lo (inclusive) *)
  | Reg of reg
  | Wire of t option ref
  | Ram_read of ram * t

and unop = Not

and binop =
  | Add | Sub | Mul | And | Or | Xor
  | Eq | Ult | Slt
  | Shl of int | Shr of int | Sra of int

and reg = {
  d : t;
  enable : t option;
  clear : t option;  (** synchronous clear, priority over enable *)
  clear_to : int;
  init : int;
}

and ram = {
  ram_id : int;
  ram_name : string;
  size : int;
  ram_width : int;
  read_only : bool;  (** built by {!rom} (or a pre-loaded data memory):
                         no write port may ever be attached *)
  init_data : int array;  (** initial contents, length [size] *)
  mutable write_port : write_port option;
}

and write_port = { we : t; waddr : t; wdata : t }

exception Width_mismatch of string

val input : string -> int -> t
val const : width:int -> int -> t
(** Value is masked to [width] bits (negative values are two's complement).
    @raise Invalid_argument if [width <= 0] or [width > 62]. *)

val vdd : t
(** 1-bit constant 1. *)

val gnd : t
(** 1-bit constant 0. *)

val width : t -> int

val wire : int -> t
val assign : t -> t -> unit
(** [assign w s] drives wire [w] with [s].
    @raise Invalid_argument if [w] is not a wire or is already assigned.
    @raise Width_mismatch if the widths differ; the message names the
    nearest named signal in each operand's fan-in (see {!nearest_named}) so
    the offending expression can be located in a large netlist. *)

val nearest_named : t -> string option
(** The signal's own name, or the name of the closest named signal in its
    fan-in cone (breadth-first, bounded).  Used to anchor width-mismatch
    diagnostics to something the user actually wrote. *)

val blame : t -> string
(** Human-readable identity for diagnostics: ["'acc_0_0'"] for a named
    signal, ["signal #42 (near 'cycle_ctr')"] otherwise. *)

val reg : ?enable:t -> ?clear:t -> ?clear_to:int -> ?init:int -> t -> t
(** [reg d] is a register with input [d]; see {!type:reg} for semantics. *)

val ( +: ) : t -> t -> t
val ( -: ) : t -> t -> t
val ( *: ) : t -> t -> t
(** Same-width multiply keeping the low bits (sign-agnostic). *)

val ( &: ) : t -> t -> t
val ( |: ) : t -> t -> t
val ( ^: ) : t -> t -> t
val not_ : t -> t
val eq : t -> t -> t
val ne : t -> t -> t
val ult : t -> t -> t
val ule : t -> t -> t
val slt : t -> t -> t
val sle : t -> t -> t
val shift_left : t -> int -> t
val shift_right_l : t -> int -> t
val shift_right_a : t -> int -> t

val mux2 : t -> t -> t -> t
(** [mux2 sel on1 on0]. @raise Width_mismatch unless [sel] is 1 bit wide and
    the branches agree. *)

val concat : t list -> t
(** MSB-first. @raise Invalid_argument on empty list. *)

val repl : t -> int -> t
(** [repl s n] is [s] replicated [n] times (MSB-first). *)

val select : t -> hi:int -> lo:int -> t
val bit : t -> int -> t
val uresize : t -> int -> t
val sresize : t -> int -> t

val ram : ?name:string -> ?read_only:bool -> size:int -> width:int ->
  init:int array -> unit -> ram
(** @raise Invalid_argument if [init] length differs from [size].
    [read_only] (default false) marks the memory as a rom: attaching a
    write port is rejected, and the lint treats its contents as
    intentional. *)

val rom : ?name:string -> width:int -> int array -> ram
(** Read-only ram initialised with the given contents. *)

val ram_read : ram -> t -> t
(** Asynchronous read port. *)

val ram_write : ram -> we:t -> addr:t -> data:t -> unit
(** Attach the single synchronous write port.
    @raise Invalid_argument if already attached, the ram is read-only, or
    widths disagree. *)

val set_name : t -> string -> t
(** Attach a human-readable name used in emitted Verilog / VCD. *)

val ( -- ) : t -> string -> t
(** Infix {!set_name}. *)

val is_wire : t -> bool
val resolve : t -> t
(** Follow wire indirections to the driving signal.
    @raise Invalid_argument on an unassigned wire. *)

val mask_to_width : int -> int -> int
(** [mask_to_width width v]: two's-complement truncation helper, exposed for
    the simulator and tests. *)

val to_signed : int -> int -> int
(** [to_signed width v]: reinterpret a masked value as signed. *)
