(* Two execution backends over one simulator state:

   - [`Tape] (default): the netlist is compiled at [create] time into a flat
     int-array instruction tape (opcode + dense operand indices + immediates)
     evaluated by a tight match loop.  The sequential phase is compiled too:
     register next-state and ram write ports are pre-resolved to dense
     indices, so [latch] performs zero hashing and zero allocation per cycle.

   - [`Closure]: the original interpreter — one closure per combinational
     node, and a latch that resolves register operands through the
     signal-id hash table each cycle.  Kept as an independently implemented
     reference for differential testing and as the baseline the benchmark
     gate reports speedups against.

   - [`Batch]: a bit-sliced evaluator over the same compiled tape, packing
     up to 62 independent trials into the bit lanes of each native int.
     Width-1 slots are {e packed} (one int, bit [l] = lane [l]) so bitwise
     control logic executes once per batch; wider slots are {e word
     batched} (one int per lane) so arithmetic loops over lanes but pays
     the tape-decode cost once.  The representation is chosen per slot at
     compile time.

     On top of the static representation, word slots carry a dynamic
     {e uniformity} flag: while every lane of a slot holds the same value
     only lane 0 is maintained and each word instruction costs O(1), the
     same as a scalar tape step — so a batch of 62 trials that agree on
     most of the circuit (the fault-campaign case: lanes differ only in
     the injected fault's fan-out cone) costs barely more than one scalar
     pass.  A slot {e materializes} (lane 0 is replicated into the stale
     lanes and the flag drops) the first time divergence reaches it:
     per-lane stimuli, pokes, forces, or a diverged operand. *)

type backend = [ `Closure | `Tape | `Batch ]

(* Compiled register: dense [values] indices, -1 for an absent control. *)
type creg = {
  self : int;
  d : int;
  en : int;
  clr : int;
  clear_to : int;
  rinit : int;
}

(* Compiled ram write port. [wcontents] aliases the array in [ram_state];
   [reset] refills that array in place so the alias stays valid. *)
type cwport = {
  we : int;
  waddr : int;
  wdata : int;
  wsize : int;
  wcontents : int array;
}

(* Compiled batch register.  Packed registers ([bp]) latch all lanes with
   a handful of bitwise ops; word registers loop over lanes.  Enables and
   clears are width-1 by construction, hence always packed slots. *)
type bcreg = {
  bp : bool;
  bself : int;  (** packed slot, or word base *)
  bd : int;
  bdp : bool;  (** d operand resolves to a packed slot (word regs only) *)
  ben : int;  (** packed slot, -1 when absent *)
  bclr : int;
  bct : int;  (** packed: clear_to broadcast over lanes; word: clear_to *)
}

type bwport2 = {
  bwe : int;  (** packed slot *)
  bwaddr : int;
  bwaddr_p : bool;
  bwdata : int;
  bwdata_p : bool;
  bwsize : int;
  bwram : int;  (** dense ram slot *)
}

(* Per-lane stuck-at force.  [fand]/[forr] hold one (and, or) mask pair
   per lane; for packed slots the single-bit masks are additionally kept
   pre-transposed in [fpand]/[fpor] so applying the force is two bitwise
   ops for all lanes. *)
type bforce = {
  fslot : int;  (** dense slot *)
  fpacked : bool;
  fbase : int;  (** word base (word slots only) *)
  fand : int array;
  forr : int array;
  mutable fpand : int;
  mutable fpor : int;
  mutable fwuni : bool;
      (** word slots: every lane carries the same mask pair, so a slot
          that is still lane-uniform can stay that way under the force *)
}

type batch = {
  lanes : int;
  lmask : int;  (** (1 lsl lanes) - 1 over the usable 62 bits *)
  brep : bool array;  (** dense slot → packed? *)
  bwbase : int array;  (** dense slot → word base, -1 for packed slots *)
  bcode : int array;  (** translated batch instruction tape *)
  pvals : int array;  (** packed slot values *)
  wvals : int array;  (** word slot values, [base + lane] *)
  wuni : Bytes.t;
      (** ['\001'] at a word base: all lanes equal, lane 0 holds the
          value, lanes 1.. are stale *)
  binputs : int array;  (** input slot values, [slot * lanes + lane] *)
  binuni : Bytes.t;
      (** ['\001'] at an input base: all lanes equal (every lane is kept
          valid for inputs, uniform or not) *)
  brams : int array array;  (** dense ram slot → contents, [addr*lanes+lane] *)
  bruni : bool array;
      (** per ram slot: all lanes equal, the lane-0 column holds the
          contents, other columns are stale *)
  bram_sizes : int array;
  bram_inits : int array array;
  bram_slot_of : (int, int) Hashtbl.t;  (** ram id → dense ram slot *)
  bcregs : bcreg array;
  bnext_p : int array;  (** latch scratch, one per register *)
  bnext_w : int array;  (** latch scratch, [reg * lanes + lane] *)
  bnext_u : Bytes.t;  (** latch scratch: word register next state uniform? *)
  bwports : bwport2 array;
  mutable bforces : bforce array;
  bpacked_insts : int;
  btotal_insts : int;
}

type t = {
  circuit : Circuit.t;
  backend : backend;
  index_of : (int, int) Hashtbl.t;  (** signal id → dense index *)
  values : int array;
  (* compiled combinational phase *)
  code : int array;  (** instruction tape ([`Tape] only) *)
  tape_rams : int array array;  (** dense ram slot → contents *)
  program : (unit -> unit) array;  (** closure schedule ([`Closure] only) *)
  (* compiled sequential phase *)
  cregs : creg array;
  reg_next : int array;  (** latch scratch, one slot per register *)
  cwports : cwport array;
  reg_state : (int * Signal.reg) array;  (** reference-latch view *)
  (* state and cached lookups *)
  ram_state : (int, int array) Hashtbl.t;  (** ram id → contents *)
  writable_inits : (int array * int array) array;
      (** contents, init_data for every ram with a write port: the only
          rams [reset] must restore (plus any the testbench dirtied) *)
  ram_init_of : (int, int array) Hashtbl.t;  (** ram id → init_data *)
  dirty_rams : (int, unit) Hashtbl.t;
      (** read-only rams rewritten through {!load_ram} *)
  input_slots : int array;
  input_slot_of : (string, int * int) Hashtbl.t;  (** name → slot, width *)
  out_slot_of : (string, int * int) Hashtbl.t;  (** name → dense idx, width *)
  init_image : int array;
      (** [values] as first constructed (constants, folded slots, register
          init values) — [reset] restores it with one blit *)
  mutable clock : int;
  mutable forces : (int * int * int) array;
      (** (register slot, and_mask, or_mask) stuck-at forces, re-applied
          around every settle/latch; empty in fault-free operation *)
  batch : batch option;  (** lane state ([`Batch] only) *)
}

let backend t = t.backend

(* [land]-able immediates: a full-width (62-bit) signal needs no masking,
   exactly like Signal.mask_to_width. *)
let mask_of w = if w >= 62 then -1 else (1 lsl w) - 1

(* Biased-comparison sign bit: (v lxor sign) orders like to_signed v.  Zero
   (the identity) for full-width signals, where to_signed is the identity. *)
let sign_of w = if w >= 62 then 0 else 1 lsl (w - 1)

(* ------------------------------------------------------------------ *)
(* Instruction tape.                                                   *)

let op_input = 0 (* dst slot *)
let op_not = 1 (* dst a mask *)
let op_add = 2 (* dst a b mask *)
let op_sub = 3 (* dst a b mask *)
let op_mul = 4 (* dst a b mask *)
let op_and = 5 (* dst a b *)
let op_or = 6 (* dst a b *)
let op_xor = 7 (* dst a b *)
let op_eq = 8 (* dst a b *)
let op_ult = 9 (* dst a b *)
let op_slt = 10 (* dst a b sign *)
let op_shl = 11 (* dst a n mask *)
let op_shr = 12 (* dst a n *)
let op_sra = 13 (* dst a n sign mask *)
let op_mux = 14 (* dst c x y *)
let op_concat = 15 (* dst hi lo lw mask *)
let op_repl = 16 (* dst a n aw mask *)
let op_select = 17 (* dst a lo mask *)
let op_copy = 18 (* dst d *)
let op_ramrd = 19 (* dst ram addr size *)

(* Immediate-operand variants, emitted when one operand is a compile-time
   constant: the constant rides in the tape (a sequential read) instead of
   costing a second random [values] load. *)
let op_addi = 20 (* dst a imm mask *)
let op_subi = 21 (* dst a imm mask : a - imm *)
let op_isub = 22 (* dst a imm mask : imm - a *)
let op_muli = 23 (* dst a imm mask *)
let op_andi = 24 (* dst a imm *)
let op_ori = 25 (* dst a imm *)
let op_xori = 26 (* dst a imm *)
let op_eqi = 27 (* dst a imm *)
let op_ulti = 28 (* dst a imm : a < imm *)
let op_iult = 29 (* dst a imm : imm < a *)
let op_slti = 30 (* dst a sign imm' : (a lxor sign) < imm' *)
let op_islt = 31 (* dst a sign imm' : imm' < (a lxor sign) *)
let op_mux_ix = 32 (* dst c imm y : c <> 0 ? imm : values.(y) *)
let op_mux_iy = 33 (* dst c x imm *)
let op_shl_ori = 34 (* dst a sh imm mask : ((a lsl sh) land mask) lor imm *)

(* words per scalar-tape instruction, shared by the CSE post-pass and
   the batch translator *)
let stride_of op =
  match op with
  | 0 | 18 -> 3
  | 1 | 5 | 6 | 7 | 8 | 9 | 12 | 24 | 25 | 26 | 27 | 28 | 29 -> 4
  | 13 | 15 | 16 | 34 -> 6
  | _ -> 5

let is_pow2 v = v > 0 && v land (v - 1) = 0

let log2 v =
  let k = ref 0 in
  let x = ref v in
  while !x > 1 do
    incr k;
    x := !x lsr 1
  done;
  !k

(* Compile the combinational nodes to the instruction tape, running a
   constant-folding / peephole pass as it goes:

   - a node whose operands are all compile-time constants is evaluated now
     and preloaded into [values] (returned in the folded list) — no
     instruction is emitted;
   - a node provably equal to one of its operands (wire, zero-extension,
     [x + 0], [x * 1], mux with constant select, ...) is {e aliased}: its
     entry in [index_of] is redirected to the operand's slot, so consumers
     and [peek] read the operand directly and no instruction is emitted;
   - a node with one constant operand uses an immediate-form opcode.

   Mutates [index_of] (alias redirection) — the caller must resolve
   registers, write ports and outputs through [index_of] {e after} this
   pass.  Width invariants relied on (enforced by {!Signal}): binop
   operands and result share one width; mux branches match the result
   width; widths never exceed 62. *)
let compile_tape nodes ~index_of ~slot_of_input ~ram_slot =
  let idx (s : Signal.t) = Hashtbl.find index_of s.Signal.id in
  let known : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let kv i = Hashtbl.find_opt known i in
  let folded = ref [] in
  let len = ref 0 in
  let buf = ref (Array.make 1024 0) in
  let push v =
    if !len = Array.length !buf then begin
      let bigger = Array.make (2 * !len) 0 in
      Array.blit !buf 0 bigger 0 !len;
      buf := bigger
    end;
    !buf.(!len) <- v;
    incr len
  in
  Array.iter
    (fun (s : Signal.t) ->
      let i = idx s in
      let w = s.Signal.width in
      let m = Signal.mask_to_width w in
      (* node evaluates to the constant [v]: preload, emit nothing *)
      let fold v =
        Hashtbl.replace known i v;
        folded := (i, v) :: !folded
      in
      (* node always equals the value in slot [j]: redirect reads *)
      let alias j =
        Hashtbl.replace index_of s.Signal.id j;
        match kv j with Some v -> Hashtbl.replace known i v | None -> ()
      in
      match s.Signal.node with
      | Signal.Const c -> Hashtbl.replace known i c (* preloaded by create *)
      | Signal.Reg _ -> ()
      | Signal.Input n -> push op_input; push i; push (slot_of_input n)
      | Signal.Unop (Signal.Not, a) -> (
        let ai = idx a in
        match kv ai with
        | Some v -> fold (m (lnot v))
        | None -> push op_not; push i; push ai; push (mask_of w))
      | Signal.Binop (op, a, b) -> (
        let aw = a.Signal.width in
        let ai = idx a and bi = idx b in
        let ka = kv ai and kb = kv bi in
        let emit2 o x imm = push o; push i; push x; push imm in
        let emit3 o x imm extra = push o; push i; push x; push imm; push extra
        in
        match op, ka, kb with
        (* --- both operands constant: evaluate at compile time --- *)
        | Signal.Add, Some va, Some vb -> fold (m (va + vb))
        | Signal.Sub, Some va, Some vb -> fold (m (va - vb))
        | Signal.Mul, Some va, Some vb -> fold (m (va * vb))
        | Signal.And, Some va, Some vb -> fold (va land vb)
        | Signal.Or, Some va, Some vb -> fold (va lor vb)
        | Signal.Xor, Some va, Some vb -> fold (va lxor vb)
        | Signal.Eq, Some va, Some vb -> fold (if va = vb then 1 else 0)
        | Signal.Ult, Some va, Some vb -> fold (if va < vb then 1 else 0)
        | Signal.Slt, Some va, Some vb ->
          fold
            (if Signal.to_signed aw va < Signal.to_signed aw vb then 1 else 0)
        | Signal.Shl n, Some va, _ -> fold (m (va lsl n))
        | Signal.Shr n, Some va, _ -> fold (va lsr n)
        | Signal.Sra n, Some va, _ -> fold (m (Signal.to_signed aw va asr n))
        (* --- identities (operand and result widths are equal) --- *)
        | Signal.Add, Some 0, None -> alias bi
        | Signal.Add, None, Some 0 -> alias ai
        | (Signal.Sub | Signal.Or | Signal.Xor), None, Some 0 -> alias ai
        | (Signal.Or | Signal.Xor), Some 0, None -> alias bi
        | Signal.Mul, Some 0, None | Signal.Mul, None, Some 0 -> fold 0
        | Signal.And, Some 0, None | Signal.And, None, Some 0 -> fold 0
        | Signal.Mul, Some 1, None -> alias bi
        | Signal.Mul, None, Some 1 -> alias ai
        | Signal.And, Some v, None when v = mask_of w -> alias bi
        | Signal.And, None, Some v when v = mask_of w -> alias ai
        | Signal.Ult, None, Some 0 -> fold 0 (* nothing is < 0 unsigned *)
        (* --- one constant operand: immediate form --- *)
        | Signal.Add, Some v, None -> emit3 op_addi bi v (mask_of w)
        | Signal.Add, None, Some v -> emit3 op_addi ai v (mask_of w)
        | Signal.Sub, None, Some v -> emit3 op_subi ai v (mask_of w)
        | Signal.Sub, Some v, None -> emit3 op_isub bi v (mask_of w)
        | Signal.Mul, Some v, None when is_pow2 v ->
          emit3 op_shl bi (log2 v) (mask_of w)
        | Signal.Mul, None, Some v when is_pow2 v ->
          emit3 op_shl ai (log2 v) (mask_of w)
        | Signal.Mul, Some v, None -> emit3 op_muli bi v (mask_of w)
        | Signal.Mul, None, Some v -> emit3 op_muli ai v (mask_of w)
        | Signal.And, Some v, None -> emit2 op_andi bi v
        | Signal.And, None, Some v -> emit2 op_andi ai v
        | Signal.Or, Some v, None -> emit2 op_ori bi v
        | Signal.Or, None, Some v -> emit2 op_ori ai v
        | Signal.Xor, Some v, None -> emit2 op_xori bi v
        | Signal.Xor, None, Some v -> emit2 op_xori ai v
        | Signal.Eq, Some v, None -> emit2 op_eqi bi v
        | Signal.Eq, None, Some v -> emit2 op_eqi ai v
        | Signal.Ult, None, Some v -> emit2 op_ulti ai v
        | Signal.Ult, Some v, None -> emit2 op_iult bi v
        | Signal.Slt, None, Some v ->
          let sg = sign_of aw in
          emit3 op_slti ai sg (v lxor sg)
        | Signal.Slt, Some v, None ->
          let sg = sign_of aw in
          emit3 op_islt bi sg (v lxor sg)
        (* --- general forms --- *)
        | Signal.Add, None, None ->
          push op_add; push i; push ai; push bi; push (mask_of w)
        | Signal.Sub, None, None ->
          push op_sub; push i; push ai; push bi; push (mask_of w)
        | Signal.Mul, None, None ->
          push op_mul; push i; push ai; push bi; push (mask_of w)
        | Signal.And, None, None -> push op_and; push i; push ai; push bi
        | Signal.Or, None, None -> push op_or; push i; push ai; push bi
        | Signal.Xor, None, None -> push op_xor; push i; push ai; push bi
        | Signal.Eq, None, None -> push op_eq; push i; push ai; push bi
        | Signal.Ult, None, None -> push op_ult; push i; push ai; push bi
        | Signal.Slt, None, None ->
          push op_slt; push i; push ai; push bi; push (sign_of aw)
        | Signal.Shl n, None, _ ->
          if n = 0 then alias ai
          else emit3 op_shl ai n (mask_of w)
        | Signal.Shr n, None, _ ->
          if n = 0 then alias ai else emit2 op_shr ai n
        | Signal.Sra n, None, _ ->
          if n = 0 then alias ai
          else begin
            push op_sra; push i; push ai; push n; push (sign_of aw);
            push (mask_of w)
          end)
      | Signal.Mux (c, x, y) -> (
        let ci = idx c and xi = idx x and yi = idx y in
        match kv ci with
        | Some vc -> alias (if vc <> 0 then xi else yi)
        | None -> (
          if xi = yi then alias xi
          else
            match kv xi, kv yi with
            | Some vx, Some vy when vx = vy -> fold vx
            | Some vx, _ ->
              push op_mux_ix; push i; push ci; push vx; push yi
            | None, Some vy ->
              push op_mux_iy; push i; push ci; push xi; push vy
            | None, None ->
              push op_mux; push i; push ci; push xi; push yi))
      | Signal.Concat (hi, lo) -> (
        let lw = lo.Signal.width in
        let hi_i = idx hi and lo_i = idx lo in
        match kv hi_i, kv lo_i with
        | Some vh, Some vl -> fold (m ((vh lsl lw) lor vl))
        | Some vh, None ->
          let imm = m (vh lsl lw) in
          if imm = 0 then alias lo_i (* zero-extension *)
          else begin push op_ori; push i; push lo_i; push imm end
        | None, Some vl ->
          push op_shl_ori; push i; push hi_i; push lw; push vl;
          push (mask_of w)
        | None, None ->
          push op_concat; push i; push hi_i; push lo_i; push lw;
          push (mask_of w))
      | Signal.Repl (a, n) -> (
        let ai = idx a in
        let aw = a.Signal.width in
        match kv ai with
        | Some v ->
          let acc = ref 0 in
          for _ = 1 to n do
            acc := (!acc lsl aw) lor v
          done;
          fold (m !acc)
        | None ->
          push op_repl; push i; push ai; push n; push aw; push (mask_of w))
      | Signal.Select (a, _, lo) -> (
        let ai = idx a in
        match kv ai with
        | Some v -> fold (m (v lsr lo))
        | None ->
          if lo = 0 && w = a.Signal.width then alias ai
          else begin
            push op_select; push i; push ai; push lo; push (mask_of w)
          end)
      | Signal.Wire r -> (
        match !r with
        | Some direct ->
          (* follow the wire chain to its non-wire driver and alias; a
             degenerate wire cycle falls back to an explicit copy *)
          let rec driver_of (n : Signal.t) seen =
            match n.Signal.node with
            | Signal.Wire { contents = Some d }
              when not (List.mem n.Signal.id seen) ->
              driver_of d (n.Signal.id :: seen)
            | _ -> n
          in
          let d = driver_of s [] in
          if d != s then alias (idx d)
          else begin push op_copy; push i; push (idx direct) end
        | None -> invalid_arg "Sim: unassigned wire")
      | Signal.Ram_read (ram, addr) ->
        push op_ramrd; push i; push (ram_slot ram.Signal.ram_id);
        push (idx addr); push ram.Signal.size)
    nodes;
  let code0 = Array.sub !buf 0 !len in
  (* Post-pass: common-subexpression elimination.  Every instruction runs
     on every settle, so two instructions with the same opcode, immediates
     and (remapped) value operands always hold equal results — the later
     one is dropped and its slot redirected to the earlier one's.  The
     tape's dst field is always at offset 1; [val_fields] lists which of
     the remaining fields are [values] indices (as opposed to immediates,
     input slots or ram slots). *)
  let val_fields op =
    match op with
    | 0 -> []
    | 14 -> [ 2; 3; 4 ]
    | 2 | 3 | 4 | 5 | 6 | 7 | 8 | 9 | 10 | 15 -> [ 2; 3 ]
    | 19 -> [ 3 ]
    | 32 -> [ 2; 4 ]
    | 33 -> [ 2; 3 ]
    | _ -> [ 2 ]
  in
  let n_nodes = Array.length nodes in
  let remap = Array.init n_nodes (fun k -> k) in
  let seen = Hashtbl.create 256 in
  len := 0;
  let p = ref 0 in
  while !p < Array.length code0 do
    let op = code0.(!p) in
    let st = stride_of op in
    let inst = Array.sub code0 !p st in
    List.iter (fun f -> inst.(f) <- remap.(inst.(f))) (val_fields op);
    let key =
      op :: List.filteri (fun k _ -> k > 1) (Array.to_list inst)
    in
    (match Hashtbl.find_opt seen key with
    | Some prior -> remap.(inst.(1)) <- prior
    | None ->
      Hashtbl.add seen key inst.(1);
      Array.iter push inst);
    p := !p + st
  done;
  (* point aliased / eliminated nodes at the surviving slots *)
  let updates =
    Hashtbl.fold
      (fun id di acc -> if remap.(di) <> di then (id, remap.(di)) :: acc
        else acc)
      index_of []
  in
  List.iter (fun (id, di) -> Hashtbl.replace index_of id di) updates;
  (Array.sub !buf 0 !len, Array.of_list (List.rev !folded))

let exec_tape t =
  let code = t.code in
  let values = t.values in
  let slots = t.input_slots in
  let rams = t.tape_rams in
  let n = Array.length code in
  let pc = ref 0 in
  while !pc < n do
    let p = !pc in
    let d = Array.unsafe_get code (p + 1) in
    match Array.unsafe_get code p with
    | 0 (* input *) ->
      Array.unsafe_set values d
        (Array.unsafe_get slots (Array.unsafe_get code (p + 2)));
      pc := p + 3
    | 1 (* not *) ->
      Array.unsafe_set values d
        (lnot (Array.unsafe_get values (Array.unsafe_get code (p + 2)))
         land Array.unsafe_get code (p + 3));
      pc := p + 4
    | 2 (* add *) ->
      Array.unsafe_set values d
        ((Array.unsafe_get values (Array.unsafe_get code (p + 2))
          + Array.unsafe_get values (Array.unsafe_get code (p + 3)))
         land Array.unsafe_get code (p + 4));
      pc := p + 5
    | 3 (* sub *) ->
      Array.unsafe_set values d
        ((Array.unsafe_get values (Array.unsafe_get code (p + 2))
          - Array.unsafe_get values (Array.unsafe_get code (p + 3)))
         land Array.unsafe_get code (p + 4));
      pc := p + 5
    | 4 (* mul *) ->
      Array.unsafe_set values d
        (Array.unsafe_get values (Array.unsafe_get code (p + 2))
         * Array.unsafe_get values (Array.unsafe_get code (p + 3))
         land Array.unsafe_get code (p + 4));
      pc := p + 5
    | 5 (* and *) ->
      Array.unsafe_set values d
        (Array.unsafe_get values (Array.unsafe_get code (p + 2))
         land Array.unsafe_get values (Array.unsafe_get code (p + 3)));
      pc := p + 4
    | 6 (* or *) ->
      Array.unsafe_set values d
        (Array.unsafe_get values (Array.unsafe_get code (p + 2))
         lor Array.unsafe_get values (Array.unsafe_get code (p + 3)));
      pc := p + 4
    | 7 (* xor *) ->
      Array.unsafe_set values d
        (Array.unsafe_get values (Array.unsafe_get code (p + 2))
         lxor Array.unsafe_get values (Array.unsafe_get code (p + 3)));
      pc := p + 4
    | 8 (* eq *) ->
      Array.unsafe_set values d
        (if
           Array.unsafe_get values (Array.unsafe_get code (p + 2))
           = Array.unsafe_get values (Array.unsafe_get code (p + 3))
         then 1
         else 0);
      pc := p + 4
    | 9 (* ult *) ->
      Array.unsafe_set values d
        (if
           Array.unsafe_get values (Array.unsafe_get code (p + 2))
           < Array.unsafe_get values (Array.unsafe_get code (p + 3))
         then 1
         else 0);
      pc := p + 4
    | 10 (* slt *) ->
      let s = Array.unsafe_get code (p + 4) in
      Array.unsafe_set values d
        (if
           Array.unsafe_get values (Array.unsafe_get code (p + 2)) lxor s
           < Array.unsafe_get values (Array.unsafe_get code (p + 3)) lxor s
         then 1
         else 0);
      pc := p + 5
    | 11 (* shl *) ->
      Array.unsafe_set values d
        (Array.unsafe_get values (Array.unsafe_get code (p + 2))
           lsl Array.unsafe_get code (p + 3)
         land Array.unsafe_get code (p + 4));
      pc := p + 5
    | 12 (* shr *) ->
      Array.unsafe_set values d
        (Array.unsafe_get values (Array.unsafe_get code (p + 2))
         lsr Array.unsafe_get code (p + 3));
      pc := p + 4
    | 13 (* sra *) ->
      let s = Array.unsafe_get code (p + 4) in
      Array.unsafe_set values d
        (((Array.unsafe_get values (Array.unsafe_get code (p + 2)) lxor s) - s)
           asr Array.unsafe_get code (p + 3)
         land Array.unsafe_get code (p + 5));
      pc := p + 6
    | 14 (* mux *) ->
      Array.unsafe_set values d
        (Array.unsafe_get values
           (if Array.unsafe_get values (Array.unsafe_get code (p + 2)) <> 0
            then Array.unsafe_get code (p + 3)
            else Array.unsafe_get code (p + 4)));
      pc := p + 5
    | 15 (* concat *) ->
      Array.unsafe_set values d
        ((Array.unsafe_get values (Array.unsafe_get code (p + 2))
            lsl Array.unsafe_get code (p + 4)
          lor Array.unsafe_get values (Array.unsafe_get code (p + 3)))
         land Array.unsafe_get code (p + 5));
      pc := p + 6
    | 16 (* repl *) ->
      let v = Array.unsafe_get values (Array.unsafe_get code (p + 2)) in
      let times = Array.unsafe_get code (p + 3) in
      let aw = Array.unsafe_get code (p + 4) in
      let acc = ref 0 in
      for _ = 1 to times do
        acc := (!acc lsl aw) lor v
      done;
      Array.unsafe_set values d (!acc land Array.unsafe_get code (p + 5));
      pc := p + 6
    | 17 (* select *) ->
      Array.unsafe_set values d
        (Array.unsafe_get values (Array.unsafe_get code (p + 2))
           lsr Array.unsafe_get code (p + 3)
         land Array.unsafe_get code (p + 4));
      pc := p + 5
    | 18 (* copy *) ->
      Array.unsafe_set values d
        (Array.unsafe_get values (Array.unsafe_get code (p + 2)));
      pc := p + 3
    | 19 (* ramrd *) ->
      let a = Array.unsafe_get values (Array.unsafe_get code (p + 3)) in
      Array.unsafe_set values d
        (if a < Array.unsafe_get code (p + 4) then
           (Array.unsafe_get rams (Array.unsafe_get code (p + 2))).(a)
         else 0);
      pc := p + 5
    | 20 (* addi *) ->
      Array.unsafe_set values d
        ((Array.unsafe_get values (Array.unsafe_get code (p + 2))
          + Array.unsafe_get code (p + 3))
         land Array.unsafe_get code (p + 4));
      pc := p + 5
    | 21 (* subi *) ->
      Array.unsafe_set values d
        ((Array.unsafe_get values (Array.unsafe_get code (p + 2))
          - Array.unsafe_get code (p + 3))
         land Array.unsafe_get code (p + 4));
      pc := p + 5
    | 22 (* isub *) ->
      Array.unsafe_set values d
        ((Array.unsafe_get code (p + 3)
          - Array.unsafe_get values (Array.unsafe_get code (p + 2)))
         land Array.unsafe_get code (p + 4));
      pc := p + 5
    | 23 (* muli *) ->
      Array.unsafe_set values d
        (Array.unsafe_get values (Array.unsafe_get code (p + 2))
         * Array.unsafe_get code (p + 3)
         land Array.unsafe_get code (p + 4));
      pc := p + 5
    | 24 (* andi *) ->
      Array.unsafe_set values d
        (Array.unsafe_get values (Array.unsafe_get code (p + 2))
         land Array.unsafe_get code (p + 3));
      pc := p + 4
    | 25 (* ori *) ->
      Array.unsafe_set values d
        (Array.unsafe_get values (Array.unsafe_get code (p + 2))
         lor Array.unsafe_get code (p + 3));
      pc := p + 4
    | 26 (* xori *) ->
      Array.unsafe_set values d
        (Array.unsafe_get values (Array.unsafe_get code (p + 2))
         lxor Array.unsafe_get code (p + 3));
      pc := p + 4
    | 27 (* eqi *) ->
      Array.unsafe_set values d
        (if
           Array.unsafe_get values (Array.unsafe_get code (p + 2))
           = Array.unsafe_get code (p + 3)
         then 1
         else 0);
      pc := p + 4
    | 28 (* ulti *) ->
      Array.unsafe_set values d
        (if
           Array.unsafe_get values (Array.unsafe_get code (p + 2))
           < Array.unsafe_get code (p + 3)
         then 1
         else 0);
      pc := p + 4
    | 29 (* iult *) ->
      Array.unsafe_set values d
        (if
           Array.unsafe_get code (p + 3)
           < Array.unsafe_get values (Array.unsafe_get code (p + 2))
         then 1
         else 0);
      pc := p + 4
    | 30 (* slti *) ->
      Array.unsafe_set values d
        (if
           Array.unsafe_get values (Array.unsafe_get code (p + 2))
           lxor Array.unsafe_get code (p + 3)
           < Array.unsafe_get code (p + 4)
         then 1
         else 0);
      pc := p + 5
    | 31 (* islt *) ->
      Array.unsafe_set values d
        (if
           Array.unsafe_get code (p + 4)
           < Array.unsafe_get values (Array.unsafe_get code (p + 2))
             lxor Array.unsafe_get code (p + 3)
         then 1
         else 0);
      pc := p + 5
    | 32 (* mux_ix *) ->
      Array.unsafe_set values d
        (if Array.unsafe_get values (Array.unsafe_get code (p + 2)) <> 0
         then Array.unsafe_get code (p + 3)
         else Array.unsafe_get values (Array.unsafe_get code (p + 4)));
      pc := p + 5
    | 33 (* mux_iy *) ->
      Array.unsafe_set values d
        (if Array.unsafe_get values (Array.unsafe_get code (p + 2)) <> 0
         then Array.unsafe_get values (Array.unsafe_get code (p + 3))
         else Array.unsafe_get code (p + 4));
      pc := p + 5
    | _ (* shl_ori *) ->
      Array.unsafe_set values d
        (Array.unsafe_get values (Array.unsafe_get code (p + 2))
           lsl Array.unsafe_get code (p + 3)
         land Array.unsafe_get code (p + 5)
         lor Array.unsafe_get code (p + 4));
      pc := p + 6
  done

(* ------------------------------------------------------------------ *)
(* Batch (bit-sliced) backend.                                         *)

let max_lanes = 62

let lane_mask_of lanes = if lanes >= max_lanes then max_int else (1 lsl lanes) - 1

(* Batch opcodes.  [bp_*] write a packed destination; [bw_*] write a word
   destination.  Word-context reads of packed slots go through scratch
   slots materialised by [bw_unpack] at translation time. *)
let bp_and = 0 (* d a b *)
let bp_or = 1 (* d a b *)
let bp_xor = 2 (* d a b *)
let bp_not = 3 (* d a *)
let bp_copy = 4 (* d a *)
let bp_andn = 5 (* d a b : ~a & b *)
let bp_orn = 6 (* d a b : ~a | b *)
let bp_xnor = 7 (* d a b *)
let bp_set0 = 8 (* d *)
let bp_set1 = 9 (* d *)
let bp_mux = 10 (* d c x y *)
let bp_eq_w = 11 (* d a b *)
let bp_ult_w = 12 (* d a b *)
let bp_slt_w = 13 (* d a b sign *)
let bp_eqi_w = 14 (* d a imm *)
let bp_ulti_w = 15 (* d a imm *)
let bp_iult_w = 16 (* d a imm *)
let bp_slti_w = 17 (* d a sign imm' *)
let bp_islt_w = 18 (* d a sign imm' *)
let bp_sel_w = 19 (* d a lo *)
let bp_ram = 20 (* d ram addr size *)
let bp_input = 21 (* d slotbase *)
let bw_not = 22 (* d a m *)
let bw_add = 23 (* d a b m *)
let bw_sub = 24 (* d a b m *)
let bw_mul = 25 (* d a b m *)
let bw_and = 26 (* d a b *)
let bw_or = 27 (* d a b *)
let bw_xor = 28 (* d a b *)
let bw_shl = 29 (* d a n m *)
let bw_shr = 30 (* d a n *)
let bw_sra = 31 (* d a n sign m *)
let bw_mux = 32 (* d c x y : c packed *)
let bw_mux_ix = 33 (* d c imm y : c packed *)
let bw_mux_iy = 34 (* d c x imm : c packed *)
let bw_concat = 35 (* d hi lo lw m *)
let bw_repl = 36 (* d a n aw m *)
let bw_sel = 37 (* d a lo m *)
let bw_copy = 38 (* d a *)
let bw_ram = 39 (* d ram addr size *)
let bw_input = 40 (* d slotbase *)
let bw_addi = 41 (* d a imm m *)
let bw_subi = 42 (* d a imm m *)
let bw_isub = 43 (* d a imm m *)
let bw_muli = 44 (* d a imm m *)
let bw_andi = 45 (* d a imm *)
let bw_ori = 46 (* d a imm *)
let bw_xori = 47 (* d a imm *)
let bw_shlori = 48 (* d a sh imm m *)
let bw_unpack = 49 (* d a : w.(d + l) <- bit l of p.(a) *)
let bw_set0 = 50 (* d *)
let bp_pack = 51 (* d a : bit l of p.(d) <- w.(a + l) land 1 *)

(* Translate the scalar instruction tape into the batch tape, choosing a
   lane representation per slot at compile time:

   - {e packed} (width-1 slots): all lanes in the bits of one int in
     [pvals] — bitwise control logic vectorizes for free;
   - {e word} (wider slots): one int per lane in [wvals] at
     [bwbase.(slot) + lane] — arithmetic loops over lanes but decodes the
     instruction once per batch.

   Representation mismatches are bridged by scratch slots emitted at an
   operand's first mismatched use: a word-context operand resolving to a
   packed slot (zero-extension aliasing points wide signals at width-1
   producers) reads a [bw_unpack] scratch; a packed-context operand
   resolving to a word slot (the CSE pass can merge a width-1 node into
   an equal-valued wider instruction's slot) reads a [bp_pack] scratch.
   The scalar tape is in topological order and each slot is written at
   most once per settle, so one conversion per settle stays fresh for
   all later consumers.  [latch_slots] lists the dense slots the
   sequential phase must read as packed (register enables/clears,
   1-bit register data, ram write enables); their conversions are
   guaranteed emitted even if no combinational instruction needs them.

   Returns
   [(bcode, rep, wbase, n_word_slots, n_packed_slots, pscratch,
     packed_insts, total_insts)] where [pscratch] maps a word slot to
   its packed scratch slot. *)
let translate_batch code ~widths ~lanes ~latch_slots =
  let n = Array.length widths in
  let rep = Array.map (fun w -> w = 1) widths in
  let wbase = Array.make (max 1 n) (-1) in
  let nword = ref 0 in
  Array.iteri
    (fun i packed ->
      if not packed then begin
        wbase.(i) <- !nword * lanes;
        incr nword
      end)
    rep;
  let len = ref 0 in
  let buf = ref (Array.make 1024 0) in
  let push v =
    if !len = Array.length !buf then begin
      let bigger = Array.make (2 * !len) 0 in
      Array.blit !buf 0 bigger 0 !len;
      buf := bigger
    end;
    !buf.(!len) <- v;
    incr len
  in
  let packed_insts = ref 0 and total_insts = ref 0 in
  let emit l =
    List.iter push l;
    incr total_insts
  in
  let emitp l =
    emit l;
    incr packed_insts
  in
  let scratch = Hashtbl.create 16 in
  let unpack i =
    match Hashtbl.find_opt scratch i with
    | Some base -> base
    | None ->
      let base = !nword * lanes in
      incr nword;
      Hashtbl.add scratch i base;
      emit [ bw_unpack; base; i ];
      base
  in
  (* word base of operand slot [i], unpacking packed slots on demand *)
  let wof i = if rep.(i) then unpack i else wbase.(i) in
  (* packed slot holding operand [i]'s value.  A width-1 node can land
     on a word slot when CSE merges it into an equal-valued wider
     instruction; the merged value is still 0/1, so packing bit 0 of
     each lane recovers it exactly. *)
  let npacked = ref (max 1 n) in
  let pscratch = Hashtbl.create 16 in
  let pof i =
    if rep.(i) then i
    else
      match Hashtbl.find_opt pscratch i with
      | Some s -> s
      | None ->
        let s = !npacked in
        incr npacked;
        Hashtbl.add pscratch i s;
        emit [ bp_pack; s; wbase.(i) ];
        s
  in
  let p = ref 0 in
  let code_len = Array.length code in
  while !p < code_len do
    let q = !p in
    let op = code.(q) in
    let d = code.(q + 1) in
    (match op with
    | 0 (* input *) ->
      let slot = code.(q + 2) in
      if rep.(d) then emitp [ bp_input; d; slot * lanes ]
      else emit [ bw_input; wbase.(d); slot * lanes ]
    | 1 (* not *) ->
      let a = code.(q + 2) in
      if rep.(d) then emitp [ bp_not; d; pof a ]
      else emit [ bw_not; wbase.(d); wof a; code.(q + 3) ]
    | 2 | 3 (* add, sub: mod 2 both reduce to xor *) ->
      let a = code.(q + 2) and b = code.(q + 3) in
      if rep.(d) then emitp [ bp_xor; d; pof a; pof b ]
      else
        emit
          [ (if op = 2 then bw_add else bw_sub); wbase.(d); wof a; wof b;
            code.(q + 4) ]
    | 4 (* mul: mod 2 reduces to and *) ->
      let a = code.(q + 2) and b = code.(q + 3) in
      if rep.(d) then emitp [ bp_and; d; pof a; pof b ]
      else emit [ bw_mul; wbase.(d); wof a; wof b; code.(q + 4) ]
    | 5 (* and *) ->
      let a = code.(q + 2) and b = code.(q + 3) in
      if rep.(d) then emitp [ bp_and; d; pof a; pof b ]
      else emit [ bw_and; wbase.(d); wof a; wof b ]
    | 6 (* or *) ->
      let a = code.(q + 2) and b = code.(q + 3) in
      if rep.(d) then emitp [ bp_or; d; pof a; pof b ]
      else emit [ bw_or; wbase.(d); wof a; wof b ]
    | 7 (* xor *) ->
      let a = code.(q + 2) and b = code.(q + 3) in
      if rep.(d) then emitp [ bp_xor; d; pof a; pof b ]
      else emit [ bw_xor; wbase.(d); wof a; wof b ]
    | 8 (* eq *) ->
      let a = code.(q + 2) and b = code.(q + 3) in
      if rep.(a) && rep.(b) then emitp [ bp_xnor; d; a; b ]
      else emit [ bp_eq_w; d; wof a; wof b ]
    | 9 (* ult *) ->
      let a = code.(q + 2) and b = code.(q + 3) in
      if rep.(a) && rep.(b) then emitp [ bp_andn; d; a; b ]
      else emit [ bp_ult_w; d; wof a; wof b ]
    | 10 (* slt *) ->
      let a = code.(q + 2) and b = code.(q + 3) in
      let sign = code.(q + 4) in
      if rep.(a) && rep.(b) then
        (* 1-bit signed: 1 reads as -1, so a < b iff a=1 and b=0; wider
           packed operands hold 0/1, both non-negative, so a < b iff a=0
           and b=1 *)
        if sign = 1 then emitp [ bp_andn; d; b; a ]
        else emitp [ bp_andn; d; a; b ]
      else emit [ bp_slt_w; d; wof a; wof b; sign ]
    | 11 (* shl: a 1-bit value shifted left is 0 (n >= 1 here) *) ->
      if rep.(d) then emitp [ bp_set0; d ]
      else emit [ bw_shl; wbase.(d); wof (code.(q + 2)); code.(q + 3);
                  code.(q + 4) ]
    | 12 (* shr *) ->
      if rep.(d) then emitp [ bp_set0; d ]
      else emit [ bw_shr; wbase.(d); wof (code.(q + 2)); code.(q + 3) ]
    | 13 (* sra: on one bit the sign replicates into itself *) ->
      let a = code.(q + 2) in
      if rep.(d) then emitp [ bp_copy; d; pof a ]
      else
        emit
          [ bw_sra; wbase.(d); wof a; code.(q + 3); code.(q + 4);
            code.(q + 5) ]
    | 14 (* mux: the select is width-1, hence packed (via [pof]) *) ->
      let c = code.(q + 2) and x = code.(q + 3) and y = code.(q + 4) in
      if rep.(d) then emitp [ bp_mux; d; pof c; pof x; pof y ]
      else emit [ bw_mux; wbase.(d); pof c; wof x; wof y ]
    | 15 (* concat: destination is always at least 2 bits wide *) ->
      emit
        [ bw_concat; wbase.(d); wof (code.(q + 2)); wof (code.(q + 3));
          code.(q + 4); code.(q + 5) ]
    | 16 (* repl: a width-1 destination means n = 1, aw = 1 *) ->
      let a = code.(q + 2) in
      if rep.(d) then emitp [ bp_copy; d; pof a ]
      else
        emit
          [ bw_repl; wbase.(d); wof a; code.(q + 3); code.(q + 4);
            code.(q + 5) ]
    | 17 (* select *) ->
      let a = code.(q + 2) and lo = code.(q + 3) in
      if rep.(d) then
        if rep.(a) then
          (* packed operand holds 0/1: bit 0 is the value, higher bits 0 *)
          if lo = 0 then emitp [ bp_copy; d; a ] else emitp [ bp_set0; d ]
        else emit [ bp_sel_w; d; wbase.(a); lo ]
      else if rep.(a) then
        if lo = 0 then emit [ bw_unpack; wbase.(d); a ]
        else emit [ bw_set0; wbase.(d) ]
      else emit [ bw_sel; wbase.(d); wbase.(a); lo; code.(q + 4) ]
    | 18 (* copy: source and destination widths match *) ->
      let a = code.(q + 2) in
      if rep.(d) then emitp [ bp_copy; d; pof a ]
      else emit [ bw_copy; wbase.(d); wof a ]
    | 19 (* ramrd *) ->
      let ram = code.(q + 2) and addr = code.(q + 3) and size = code.(q + 4) in
      if rep.(d) then emit [ bp_ram; d; ram; wof addr; size ]
      else emit [ bw_ram; wbase.(d); ram; wof addr; size ]
    | 20 | 21 (* addi, subi: width-1 immediate is 1 (0 was aliased) *) ->
      let a = code.(q + 2) and imm = code.(q + 3) in
      if rep.(d) then
        if imm land 1 = 1 then emitp [ bp_not; d; pof a ]
        else emitp [ bp_copy; d; pof a ]
      else
        emit
          [ (if op = 20 then bw_addi else bw_subi); wbase.(d); wof a; imm;
            code.(q + 4) ]
    | 22 (* isub: (imm - a) land 1 *) ->
      let a = code.(q + 2) and imm = code.(q + 3) in
      if rep.(d) then
        if imm land 1 = 1 then emitp [ bp_not; d; pof a ]
        else emitp [ bp_copy; d; pof a ]
      else emit [ bw_isub; wbase.(d); wof a; imm; code.(q + 4) ]
    | 23 (* muli *) ->
      let a = code.(q + 2) and imm = code.(q + 3) in
      if rep.(d) then
        if imm land 1 = 1 then emitp [ bp_copy; d; pof a ]
        else emitp [ bp_set0; d ]
      else emit [ bw_muli; wbase.(d); wof a; imm; code.(q + 4) ]
    | 24 (* andi *) ->
      let a = code.(q + 2) and imm = code.(q + 3) in
      if rep.(d) then
        if imm land 1 = 1 then emitp [ bp_copy; d; pof a ]
        else emitp [ bp_set0; d ]
      else emit [ bw_andi; wbase.(d); wof a; imm ]
    | 25 (* ori *) ->
      let a = code.(q + 2) and imm = code.(q + 3) in
      if rep.(d) then
        if imm land 1 = 1 then emitp [ bp_set1; d ]
        else emitp [ bp_copy; d; pof a ]
      else emit [ bw_ori; wbase.(d); wof a; imm ]
    | 26 (* xori *) ->
      let a = code.(q + 2) and imm = code.(q + 3) in
      if rep.(d) then
        if imm land 1 = 1 then emitp [ bp_not; d; pof a ]
        else emitp [ bp_copy; d; pof a ]
      else emit [ bw_xori; wbase.(d); wof a; imm ]
    | 27 (* eqi: a packed operand holds 0/1 so the compare folds *) ->
      let a = code.(q + 2) and imm = code.(q + 3) in
      if rep.(a) then
        if imm = 1 then emitp [ bp_copy; d; a ]
        else if imm = 0 then emitp [ bp_not; d; a ]
        else emitp [ bp_set0; d ]
      else emit [ bp_eqi_w; d; wbase.(a); imm ]
    | 28 (* ulti *) ->
      let a = code.(q + 2) and imm = code.(q + 3) in
      if rep.(a) then
        if imm = 0 then emitp [ bp_set0; d ]
        else if imm = 1 then emitp [ bp_not; d; a ]
        else emitp [ bp_set1; d ]
      else emit [ bp_ulti_w; d; wbase.(a); imm ]
    | 29 (* iult *) ->
      let a = code.(q + 2) and imm = code.(q + 3) in
      if rep.(a) then
        if imm = 0 then emitp [ bp_copy; d; a ] else emitp [ bp_set0; d ]
      else emit [ bp_iult_w; d; wbase.(a); imm ]
    | 30 (* slti *) ->
      let a = code.(q + 2) and sign = code.(q + 3) and imm = code.(q + 4) in
      if rep.(a) && sign = 1 then
        if imm = 1 then emitp [ bp_copy; d; a ] else emitp [ bp_set0; d ]
      else emit [ bp_slti_w; d; wof a; sign; imm ]
    | 31 (* islt *) ->
      let a = code.(q + 2) and sign = code.(q + 3) and imm = code.(q + 4) in
      if rep.(a) && sign = 1 then
        if imm = 0 then emitp [ bp_not; d; a ] else emitp [ bp_set0; d ]
      else emit [ bp_islt_w; d; wof a; sign; imm ]
    | 32 (* mux_ix: c ? imm : y *) ->
      let c = code.(q + 2) and imm = code.(q + 3) and y = code.(q + 4) in
      if rep.(d) then
        if imm land 1 = 1 then emitp [ bp_or; d; pof c; pof y ]
        else emitp [ bp_andn; d; pof c; pof y ]
      else emit [ bw_mux_ix; wbase.(d); pof c; imm; wof y ]
    | 33 (* mux_iy: c ? x : imm *) ->
      let c = code.(q + 2) and x = code.(q + 3) and imm = code.(q + 4) in
      if rep.(d) then
        if imm land 1 = 1 then emitp [ bp_orn; d; pof c; pof x ]
        else emitp [ bp_and; d; pof c; pof x ]
      else emit [ bw_mux_iy; wbase.(d); pof c; wof x; imm ]
    | _ (* shl_ori: concat destination, always wider than 1 bit *) ->
      emit
        [ bw_shlori; wbase.(d); wof (code.(q + 2)); code.(q + 3);
          code.(q + 4); code.(q + 5) ]);
    p := q + stride_of op
  done;
  (* the sequential phase reads these as packed after every settle, so
     make sure each has a packed resolution in the tape *)
  List.iter (fun i -> if i >= 0 then ignore (pof i)) latch_slots;
  ( Array.sub !buf 0 !len, rep, wbase, !nword, !npacked, pscratch,
    !packed_insts, !total_insts )

let exec_batch b =
  let code = b.bcode in
  let p = b.pvals in
  let w = b.wvals in
  let u = b.wuni in
  let ins = b.binputs in
  let inu = b.binuni in
  let rams = b.brams in
  let runi = b.bruni in
  let l = b.lanes in
  let lm = b.lmask in
  (* Demote a uniform word slot: replicate lane 0 into the stale lanes so
     the per-lane path below can read every lane.  Slow path only, and at
     most once per slot per settle. *)
  let mat base =
    if Bytes.unsafe_get u base = '\001' then begin
      Array.fill w (base + 1) (l - 1) (Array.unsafe_get w base);
      Bytes.unsafe_set u base '\000'
    end
  in
  (* Convergence detection: a per-lane op just wrote all lanes of [d] —
     if they came out equal the slot is uniform again.  Fault effects
     mask out constantly (AND with zero, mux select away, saturation), so
     without this check one transient upset would diverge its whole
     fan-out cone for the rest of the run. *)
  let setu d =
    let v0 = Array.unsafe_get w d in
    let rec go k =
      k >= l || (Array.unsafe_get w (d + k) = v0 && go (k + 1))
    in
    Bytes.unsafe_set u d (if go 1 then '\001' else '\000')
  in
  let n = Array.length code in
  let pc = ref 0 in
  while !pc < n do
    let q = !pc in
    let d = Array.unsafe_get code (q + 1) in
    match Array.unsafe_get code q with
    | 0 (* bp_and *) ->
      Array.unsafe_set p d
        (Array.unsafe_get p (Array.unsafe_get code (q + 2))
         land Array.unsafe_get p (Array.unsafe_get code (q + 3)));
      pc := q + 4
    | 1 (* bp_or *) ->
      Array.unsafe_set p d
        (Array.unsafe_get p (Array.unsafe_get code (q + 2))
         lor Array.unsafe_get p (Array.unsafe_get code (q + 3)));
      pc := q + 4
    | 2 (* bp_xor *) ->
      Array.unsafe_set p d
        (Array.unsafe_get p (Array.unsafe_get code (q + 2))
         lxor Array.unsafe_get p (Array.unsafe_get code (q + 3)));
      pc := q + 4
    | 3 (* bp_not *) ->
      Array.unsafe_set p d
        (lnot (Array.unsafe_get p (Array.unsafe_get code (q + 2))) land lm);
      pc := q + 3
    | 4 (* bp_copy *) ->
      Array.unsafe_set p d (Array.unsafe_get p (Array.unsafe_get code (q + 2)));
      pc := q + 3
    | 5 (* bp_andn *) ->
      Array.unsafe_set p d
        (lnot (Array.unsafe_get p (Array.unsafe_get code (q + 2)))
         land Array.unsafe_get p (Array.unsafe_get code (q + 3)));
      pc := q + 4
    | 6 (* bp_orn *) ->
      Array.unsafe_set p d
        ((lnot (Array.unsafe_get p (Array.unsafe_get code (q + 2)))
          lor Array.unsafe_get p (Array.unsafe_get code (q + 3)))
         land lm);
      pc := q + 4
    | 7 (* bp_xnor *) ->
      Array.unsafe_set p d
        (lnot
           (Array.unsafe_get p (Array.unsafe_get code (q + 2))
            lxor Array.unsafe_get p (Array.unsafe_get code (q + 3)))
         land lm);
      pc := q + 4
    | 8 (* bp_set0 *) ->
      Array.unsafe_set p d 0;
      pc := q + 2
    | 9 (* bp_set1 *) ->
      Array.unsafe_set p d lm;
      pc := q + 2
    | 10 (* bp_mux *) ->
      let c = Array.unsafe_get p (Array.unsafe_get code (q + 2)) in
      Array.unsafe_set p d
        (c land Array.unsafe_get p (Array.unsafe_get code (q + 3))
         lor (lnot c land Array.unsafe_get p (Array.unsafe_get code (q + 4))));
      pc := q + 5
    | 11 (* bp_eq_w *) ->
      let a = Array.unsafe_get code (q + 2) in
      let b' = Array.unsafe_get code (q + 3) in
      if Bytes.unsafe_get u a = '\001' && Bytes.unsafe_get u b' = '\001'
      then
        Array.unsafe_set p d
          (if Array.unsafe_get w a = Array.unsafe_get w b' then lm else 0)
      else begin
        mat a;
        mat b';
        let acc = ref 0 in
        for k = 0 to l - 1 do
          if Array.unsafe_get w (a + k) = Array.unsafe_get w (b' + k) then
            acc := !acc lor (1 lsl k)
        done;
        Array.unsafe_set p d !acc
      end;
      pc := q + 4
    | 12 (* bp_ult_w *) ->
      let a = Array.unsafe_get code (q + 2) in
      let b' = Array.unsafe_get code (q + 3) in
      if Bytes.unsafe_get u a = '\001' && Bytes.unsafe_get u b' = '\001'
      then
        Array.unsafe_set p d
          (if Array.unsafe_get w a < Array.unsafe_get w b' then lm else 0)
      else begin
        mat a;
        mat b';
        let acc = ref 0 in
        for k = 0 to l - 1 do
          if Array.unsafe_get w (a + k) < Array.unsafe_get w (b' + k) then
            acc := !acc lor (1 lsl k)
        done;
        Array.unsafe_set p d !acc
      end;
      pc := q + 4
    | 13 (* bp_slt_w *) ->
      let a = Array.unsafe_get code (q + 2) in
      let b' = Array.unsafe_get code (q + 3) in
      let s = Array.unsafe_get code (q + 4) in
      if Bytes.unsafe_get u a = '\001' && Bytes.unsafe_get u b' = '\001'
      then
        Array.unsafe_set p d
          (if Array.unsafe_get w a lxor s < Array.unsafe_get w b' lxor s
           then lm
           else 0)
      else begin
        mat a;
        mat b';
        let acc = ref 0 in
        for k = 0 to l - 1 do
          if
            Array.unsafe_get w (a + k) lxor s
            < Array.unsafe_get w (b' + k) lxor s
          then acc := !acc lor (1 lsl k)
        done;
        Array.unsafe_set p d !acc
      end;
      pc := q + 5
    | 14 (* bp_eqi_w *) ->
      let a = Array.unsafe_get code (q + 2) in
      let imm = Array.unsafe_get code (q + 3) in
      if Bytes.unsafe_get u a = '\001' then
        Array.unsafe_set p d (if Array.unsafe_get w a = imm then lm else 0)
      else begin
        let acc = ref 0 in
        for k = 0 to l - 1 do
          if Array.unsafe_get w (a + k) = imm then acc := !acc lor (1 lsl k)
        done;
        Array.unsafe_set p d !acc
      end;
      pc := q + 4
    | 15 (* bp_ulti_w *) ->
      let a = Array.unsafe_get code (q + 2) in
      let imm = Array.unsafe_get code (q + 3) in
      if Bytes.unsafe_get u a = '\001' then
        Array.unsafe_set p d (if Array.unsafe_get w a < imm then lm else 0)
      else begin
        let acc = ref 0 in
        for k = 0 to l - 1 do
          if Array.unsafe_get w (a + k) < imm then acc := !acc lor (1 lsl k)
        done;
        Array.unsafe_set p d !acc
      end;
      pc := q + 4
    | 16 (* bp_iult_w *) ->
      let a = Array.unsafe_get code (q + 2) in
      let imm = Array.unsafe_get code (q + 3) in
      if Bytes.unsafe_get u a = '\001' then
        Array.unsafe_set p d (if imm < Array.unsafe_get w a then lm else 0)
      else begin
        let acc = ref 0 in
        for k = 0 to l - 1 do
          if imm < Array.unsafe_get w (a + k) then acc := !acc lor (1 lsl k)
        done;
        Array.unsafe_set p d !acc
      end;
      pc := q + 4
    | 17 (* bp_slti_w *) ->
      let a = Array.unsafe_get code (q + 2) in
      let s = Array.unsafe_get code (q + 3) in
      let imm = Array.unsafe_get code (q + 4) in
      if Bytes.unsafe_get u a = '\001' then
        Array.unsafe_set p d
          (if Array.unsafe_get w a lxor s < imm then lm else 0)
      else begin
        let acc = ref 0 in
        for k = 0 to l - 1 do
          if Array.unsafe_get w (a + k) lxor s < imm then
            acc := !acc lor (1 lsl k)
        done;
        Array.unsafe_set p d !acc
      end;
      pc := q + 5
    | 18 (* bp_islt_w *) ->
      let a = Array.unsafe_get code (q + 2) in
      let s = Array.unsafe_get code (q + 3) in
      let imm = Array.unsafe_get code (q + 4) in
      if Bytes.unsafe_get u a = '\001' then
        Array.unsafe_set p d
          (if imm < Array.unsafe_get w a lxor s then lm else 0)
      else begin
        let acc = ref 0 in
        for k = 0 to l - 1 do
          if imm < Array.unsafe_get w (a + k) lxor s then
            acc := !acc lor (1 lsl k)
        done;
        Array.unsafe_set p d !acc
      end;
      pc := q + 5
    | 19 (* bp_sel_w *) ->
      let a = Array.unsafe_get code (q + 2) in
      let lo = Array.unsafe_get code (q + 3) in
      if Bytes.unsafe_get u a = '\001' then
        Array.unsafe_set p d
          (- (Array.unsafe_get w a lsr lo land 1) land lm)
      else begin
        let acc = ref 0 in
        for k = 0 to l - 1 do
          acc :=
            !acc lor ((Array.unsafe_get w (a + k) lsr lo land 1) lsl k)
        done;
        Array.unsafe_set p d !acc
      end;
      pc := q + 4
    | 20 (* bp_ram *) ->
      let r = Array.unsafe_get code (q + 2) in
      let contents = Array.unsafe_get rams r in
      let a = Array.unsafe_get code (q + 3) in
      let size = Array.unsafe_get code (q + 4) in
      (if Bytes.unsafe_get u a = '\001' then begin
         let addr = Array.unsafe_get w a in
         if addr >= size then Array.unsafe_set p d 0
         else if Array.unsafe_get runi r then
           Array.unsafe_set p d
             (- (Array.unsafe_get contents (addr * l) land 1) land lm)
         else begin
           let base = addr * l in
           let acc = ref 0 in
           for k = 0 to l - 1 do
             acc := !acc lor (Array.unsafe_get contents (base + k) lsl k)
           done;
           Array.unsafe_set p d !acc
         end
       end
       else begin
         mat a;
         let acc = ref 0 in
         if Array.unsafe_get runi r then
           for k = 0 to l - 1 do
             let addr = Array.unsafe_get w (a + k) in
             if addr < size then
               acc := !acc lor (Array.unsafe_get contents (addr * l) lsl k)
           done
         else
           for k = 0 to l - 1 do
             let addr = Array.unsafe_get w (a + k) in
             if addr < size then
               acc :=
                 !acc lor (Array.unsafe_get contents ((addr * l) + k) lsl k)
           done;
         Array.unsafe_set p d !acc
       end);
      pc := q + 5
    | 21 (* bp_input *) ->
      let base = Array.unsafe_get code (q + 2) in
      if Bytes.unsafe_get inu base = '\001' then
        Array.unsafe_set p d (- (Array.unsafe_get ins base land 1) land lm)
      else begin
        let acc = ref 0 in
        for k = 0 to l - 1 do
          acc := !acc lor ((Array.unsafe_get ins (base + k) land 1) lsl k)
        done;
        Array.unsafe_set p d !acc
      end;
      pc := q + 3
    | 22 (* bw_not *) ->
      let a = Array.unsafe_get code (q + 2) in
      let m = Array.unsafe_get code (q + 3) in
      if Bytes.unsafe_get u a = '\001' then begin
        Array.unsafe_set w d (lnot (Array.unsafe_get w a) land m);
        Bytes.unsafe_set u d '\001'
      end
      else begin
        for k = 0 to l - 1 do
          Array.unsafe_set w (d + k)
            (lnot (Array.unsafe_get w (a + k)) land m)
        done;
        setu d
      end;
      pc := q + 4
    | 23 (* bw_add *) ->
      let a = Array.unsafe_get code (q + 2) in
      let b' = Array.unsafe_get code (q + 3) in
      let m = Array.unsafe_get code (q + 4) in
      if Bytes.unsafe_get u a = '\001' && Bytes.unsafe_get u b' = '\001'
      then begin
        Array.unsafe_set w d
          ((Array.unsafe_get w a + Array.unsafe_get w b') land m);
        Bytes.unsafe_set u d '\001'
      end
      else begin
        mat a;
        mat b';
        for k = 0 to l - 1 do
          Array.unsafe_set w (d + k)
            ((Array.unsafe_get w (a + k) + Array.unsafe_get w (b' + k))
             land m)
        done;
        setu d
      end;
      pc := q + 5
    | 24 (* bw_sub *) ->
      let a = Array.unsafe_get code (q + 2) in
      let b' = Array.unsafe_get code (q + 3) in
      let m = Array.unsafe_get code (q + 4) in
      if Bytes.unsafe_get u a = '\001' && Bytes.unsafe_get u b' = '\001'
      then begin
        Array.unsafe_set w d
          ((Array.unsafe_get w a - Array.unsafe_get w b') land m);
        Bytes.unsafe_set u d '\001'
      end
      else begin
        mat a;
        mat b';
        for k = 0 to l - 1 do
          Array.unsafe_set w (d + k)
            ((Array.unsafe_get w (a + k) - Array.unsafe_get w (b' + k))
             land m)
        done;
        setu d
      end;
      pc := q + 5
    | 25 (* bw_mul *) ->
      let a = Array.unsafe_get code (q + 2) in
      let b' = Array.unsafe_get code (q + 3) in
      let m = Array.unsafe_get code (q + 4) in
      if Bytes.unsafe_get u a = '\001' && Bytes.unsafe_get u b' = '\001'
      then begin
        Array.unsafe_set w d
          (Array.unsafe_get w a * Array.unsafe_get w b' land m);
        Bytes.unsafe_set u d '\001'
      end
      else begin
        mat a;
        mat b';
        for k = 0 to l - 1 do
          Array.unsafe_set w (d + k)
            (Array.unsafe_get w (a + k) * Array.unsafe_get w (b' + k)
             land m)
        done;
        setu d
      end;
      pc := q + 5
    | 26 (* bw_and *) ->
      let a = Array.unsafe_get code (q + 2) in
      let b' = Array.unsafe_get code (q + 3) in
      if Bytes.unsafe_get u a = '\001' && Bytes.unsafe_get u b' = '\001'
      then begin
        Array.unsafe_set w d
          (Array.unsafe_get w a land Array.unsafe_get w b');
        Bytes.unsafe_set u d '\001'
      end
      else begin
        mat a;
        mat b';
        for k = 0 to l - 1 do
          Array.unsafe_set w (d + k)
            (Array.unsafe_get w (a + k) land Array.unsafe_get w (b' + k))
        done;
        setu d
      end;
      pc := q + 4
    | 27 (* bw_or *) ->
      let a = Array.unsafe_get code (q + 2) in
      let b' = Array.unsafe_get code (q + 3) in
      if Bytes.unsafe_get u a = '\001' && Bytes.unsafe_get u b' = '\001'
      then begin
        Array.unsafe_set w d
          (Array.unsafe_get w a lor Array.unsafe_get w b');
        Bytes.unsafe_set u d '\001'
      end
      else begin
        mat a;
        mat b';
        for k = 0 to l - 1 do
          Array.unsafe_set w (d + k)
            (Array.unsafe_get w (a + k) lor Array.unsafe_get w (b' + k))
        done;
        setu d
      end;
      pc := q + 4
    | 28 (* bw_xor *) ->
      let a = Array.unsafe_get code (q + 2) in
      let b' = Array.unsafe_get code (q + 3) in
      if Bytes.unsafe_get u a = '\001' && Bytes.unsafe_get u b' = '\001'
      then begin
        Array.unsafe_set w d
          (Array.unsafe_get w a lxor Array.unsafe_get w b');
        Bytes.unsafe_set u d '\001'
      end
      else begin
        mat a;
        mat b';
        for k = 0 to l - 1 do
          Array.unsafe_set w (d + k)
            (Array.unsafe_get w (a + k) lxor Array.unsafe_get w (b' + k))
        done;
        setu d
      end;
      pc := q + 4
    | 29 (* bw_shl *) ->
      let a = Array.unsafe_get code (q + 2) in
      let sh = Array.unsafe_get code (q + 3) in
      let m = Array.unsafe_get code (q + 4) in
      if Bytes.unsafe_get u a = '\001' then begin
        Array.unsafe_set w d (Array.unsafe_get w a lsl sh land m);
        Bytes.unsafe_set u d '\001'
      end
      else begin
        for k = 0 to l - 1 do
          Array.unsafe_set w (d + k)
            (Array.unsafe_get w (a + k) lsl sh land m)
        done;
        setu d
      end;
      pc := q + 5
    | 30 (* bw_shr *) ->
      let a = Array.unsafe_get code (q + 2) in
      let sh = Array.unsafe_get code (q + 3) in
      if Bytes.unsafe_get u a = '\001' then begin
        Array.unsafe_set w d (Array.unsafe_get w a lsr sh);
        Bytes.unsafe_set u d '\001'
      end
      else begin
        for k = 0 to l - 1 do
          Array.unsafe_set w (d + k) (Array.unsafe_get w (a + k) lsr sh)
        done;
        setu d
      end;
      pc := q + 4
    | 31 (* bw_sra *) ->
      let a = Array.unsafe_get code (q + 2) in
      let sh = Array.unsafe_get code (q + 3) in
      let s = Array.unsafe_get code (q + 4) in
      let m = Array.unsafe_get code (q + 5) in
      if Bytes.unsafe_get u a = '\001' then begin
        Array.unsafe_set w d
          (((Array.unsafe_get w a lxor s) - s) asr sh land m);
        Bytes.unsafe_set u d '\001'
      end
      else begin
        for k = 0 to l - 1 do
          Array.unsafe_set w (d + k)
            (((Array.unsafe_get w (a + k) lxor s) - s) asr sh land m)
        done;
        setu d
      end;
      pc := q + 6
    | 32 (* bw_mux *) ->
      let c = Array.unsafe_get p (Array.unsafe_get code (q + 2)) in
      let x = Array.unsafe_get code (q + 3) in
      let y = Array.unsafe_get code (q + 4) in
      (if c = lm then
         if Bytes.unsafe_get u x = '\001' then begin
           Array.unsafe_set w d (Array.unsafe_get w x);
           Bytes.unsafe_set u d '\001'
         end
         else begin
           Array.blit w x w d l;
           setu d
         end
       else if c = 0 then
         if Bytes.unsafe_get u y = '\001' then begin
           Array.unsafe_set w d (Array.unsafe_get w y);
           Bytes.unsafe_set u d '\001'
         end
         else begin
           Array.blit w y w d l;
           setu d
         end
       else begin
         mat x;
         mat y;
         for k = 0 to l - 1 do
           Array.unsafe_set w (d + k)
             (if c lsr k land 1 <> 0 then Array.unsafe_get w (x + k)
              else Array.unsafe_get w (y + k))
         done;
         setu d
       end);
      pc := q + 5
    | 33 (* bw_mux_ix *) ->
      let c = Array.unsafe_get p (Array.unsafe_get code (q + 2)) in
      let imm = Array.unsafe_get code (q + 3) in
      let y = Array.unsafe_get code (q + 4) in
      (if c = lm then begin
         Array.unsafe_set w d imm;
         Bytes.unsafe_set u d '\001'
       end
       else if c = 0 then
         if Bytes.unsafe_get u y = '\001' then begin
           Array.unsafe_set w d (Array.unsafe_get w y);
           Bytes.unsafe_set u d '\001'
         end
         else begin
           Array.blit w y w d l;
           setu d
         end
       else begin
         mat y;
         for k = 0 to l - 1 do
           Array.unsafe_set w (d + k)
             (if c lsr k land 1 <> 0 then imm
              else Array.unsafe_get w (y + k))
         done;
         setu d
       end);
      pc := q + 5
    | 34 (* bw_mux_iy *) ->
      let c = Array.unsafe_get p (Array.unsafe_get code (q + 2)) in
      let x = Array.unsafe_get code (q + 3) in
      let imm = Array.unsafe_get code (q + 4) in
      (if c = 0 then begin
         Array.unsafe_set w d imm;
         Bytes.unsafe_set u d '\001'
       end
       else if c = lm then
         if Bytes.unsafe_get u x = '\001' then begin
           Array.unsafe_set w d (Array.unsafe_get w x);
           Bytes.unsafe_set u d '\001'
         end
         else begin
           Array.blit w x w d l;
           setu d
         end
       else begin
         mat x;
         for k = 0 to l - 1 do
           Array.unsafe_set w (d + k)
             (if c lsr k land 1 <> 0 then Array.unsafe_get w (x + k)
              else imm)
         done;
         setu d
       end);
      pc := q + 5
    | 35 (* bw_concat *) ->
      let hi = Array.unsafe_get code (q + 2) in
      let lo = Array.unsafe_get code (q + 3) in
      let lw = Array.unsafe_get code (q + 4) in
      let m = Array.unsafe_get code (q + 5) in
      if Bytes.unsafe_get u hi = '\001' && Bytes.unsafe_get u lo = '\001'
      then begin
        Array.unsafe_set w d
          ((Array.unsafe_get w hi lsl lw lor Array.unsafe_get w lo)
           land m);
        Bytes.unsafe_set u d '\001'
      end
      else begin
        mat hi;
        mat lo;
        for k = 0 to l - 1 do
          Array.unsafe_set w (d + k)
            ((Array.unsafe_get w (hi + k) lsl lw
              lor Array.unsafe_get w (lo + k))
             land m)
        done;
        setu d
      end;
      pc := q + 6
    | 36 (* bw_repl *) ->
      let a = Array.unsafe_get code (q + 2) in
      let times = Array.unsafe_get code (q + 3) in
      let aw = Array.unsafe_get code (q + 4) in
      let m = Array.unsafe_get code (q + 5) in
      if Bytes.unsafe_get u a = '\001' then begin
        let v = Array.unsafe_get w a in
        let acc = ref 0 in
        for _ = 1 to times do
          acc := (!acc lsl aw) lor v
        done;
        Array.unsafe_set w d (!acc land m);
        Bytes.unsafe_set u d '\001'
      end
      else begin
        for k = 0 to l - 1 do
          let v = Array.unsafe_get w (a + k) in
          let acc = ref 0 in
          for _ = 1 to times do
            acc := (!acc lsl aw) lor v
          done;
          Array.unsafe_set w (d + k) (!acc land m)
        done;
        setu d
      end;
      pc := q + 6
    | 37 (* bw_sel *) ->
      let a = Array.unsafe_get code (q + 2) in
      let lo = Array.unsafe_get code (q + 3) in
      let m = Array.unsafe_get code (q + 4) in
      if Bytes.unsafe_get u a = '\001' then begin
        Array.unsafe_set w d (Array.unsafe_get w a lsr lo land m);
        Bytes.unsafe_set u d '\001'
      end
      else begin
        for k = 0 to l - 1 do
          Array.unsafe_set w (d + k)
            (Array.unsafe_get w (a + k) lsr lo land m)
        done;
        setu d
      end;
      pc := q + 5
    | 38 (* bw_copy *) ->
      let a = Array.unsafe_get code (q + 2) in
      if Bytes.unsafe_get u a = '\001' then begin
        Array.unsafe_set w d (Array.unsafe_get w a);
        Bytes.unsafe_set u d '\001'
      end
      else begin
        Array.blit w a w d l;
        setu d
      end;
      pc := q + 3
    | 39 (* bw_ram *) ->
      let r = Array.unsafe_get code (q + 2) in
      let contents = Array.unsafe_get rams r in
      let a = Array.unsafe_get code (q + 3) in
      let size = Array.unsafe_get code (q + 4) in
      (if Bytes.unsafe_get u a = '\001' then begin
         let addr = Array.unsafe_get w a in
         if addr >= size then begin
           Array.unsafe_set w d 0;
           Bytes.unsafe_set u d '\001'
         end
         else if Array.unsafe_get runi r then begin
           Array.unsafe_set w d (Array.unsafe_get contents (addr * l));
           Bytes.unsafe_set u d '\001'
         end
         else begin
           Array.blit contents (addr * l) w d l;
           setu d
         end
       end
       else begin
         (if Array.unsafe_get runi r then
            for k = 0 to l - 1 do
              let addr = Array.unsafe_get w (a + k) in
              Array.unsafe_set w (d + k)
                (if addr < size then Array.unsafe_get contents (addr * l)
                 else 0)
            done
          else
            for k = 0 to l - 1 do
              let addr = Array.unsafe_get w (a + k) in
              Array.unsafe_set w (d + k)
                (if addr < size then
                   Array.unsafe_get contents ((addr * l) + k)
                 else 0)
            done);
         setu d
       end);
      pc := q + 5
    | 40 (* bw_input *) ->
      let base = Array.unsafe_get code (q + 2) in
      if Bytes.unsafe_get inu base = '\001' then begin
        Array.unsafe_set w d (Array.unsafe_get ins base);
        Bytes.unsafe_set u d '\001'
      end
      else begin
        Array.blit ins base w d l;
        setu d
      end;
      pc := q + 3
    | 41 (* bw_addi *) ->
      let a = Array.unsafe_get code (q + 2) in
      let imm = Array.unsafe_get code (q + 3) in
      let m = Array.unsafe_get code (q + 4) in
      if Bytes.unsafe_get u a = '\001' then begin
        Array.unsafe_set w d ((Array.unsafe_get w a + imm) land m);
        Bytes.unsafe_set u d '\001'
      end
      else begin
        for k = 0 to l - 1 do
          Array.unsafe_set w (d + k)
            ((Array.unsafe_get w (a + k) + imm) land m)
        done;
        setu d
      end;
      pc := q + 5
    | 42 (* bw_subi *) ->
      let a = Array.unsafe_get code (q + 2) in
      let imm = Array.unsafe_get code (q + 3) in
      let m = Array.unsafe_get code (q + 4) in
      if Bytes.unsafe_get u a = '\001' then begin
        Array.unsafe_set w d ((Array.unsafe_get w a - imm) land m);
        Bytes.unsafe_set u d '\001'
      end
      else begin
        for k = 0 to l - 1 do
          Array.unsafe_set w (d + k)
            ((Array.unsafe_get w (a + k) - imm) land m)
        done;
        setu d
      end;
      pc := q + 5
    | 43 (* bw_isub *) ->
      let a = Array.unsafe_get code (q + 2) in
      let imm = Array.unsafe_get code (q + 3) in
      let m = Array.unsafe_get code (q + 4) in
      if Bytes.unsafe_get u a = '\001' then begin
        Array.unsafe_set w d ((imm - Array.unsafe_get w a) land m);
        Bytes.unsafe_set u d '\001'
      end
      else begin
        for k = 0 to l - 1 do
          Array.unsafe_set w (d + k)
            ((imm - Array.unsafe_get w (a + k)) land m)
        done;
        setu d
      end;
      pc := q + 5
    | 44 (* bw_muli *) ->
      let a = Array.unsafe_get code (q + 2) in
      let imm = Array.unsafe_get code (q + 3) in
      let m = Array.unsafe_get code (q + 4) in
      if Bytes.unsafe_get u a = '\001' then begin
        Array.unsafe_set w d (Array.unsafe_get w a * imm land m);
        Bytes.unsafe_set u d '\001'
      end
      else begin
        for k = 0 to l - 1 do
          Array.unsafe_set w (d + k)
            (Array.unsafe_get w (a + k) * imm land m)
        done;
        setu d
      end;
      pc := q + 5
    | 45 (* bw_andi *) ->
      let a = Array.unsafe_get code (q + 2) in
      let imm = Array.unsafe_get code (q + 3) in
      if Bytes.unsafe_get u a = '\001' then begin
        Array.unsafe_set w d (Array.unsafe_get w a land imm);
        Bytes.unsafe_set u d '\001'
      end
      else begin
        for k = 0 to l - 1 do
          Array.unsafe_set w (d + k) (Array.unsafe_get w (a + k) land imm)
        done;
        setu d
      end;
      pc := q + 4
    | 46 (* bw_ori *) ->
      let a = Array.unsafe_get code (q + 2) in
      let imm = Array.unsafe_get code (q + 3) in
      if Bytes.unsafe_get u a = '\001' then begin
        Array.unsafe_set w d (Array.unsafe_get w a lor imm);
        Bytes.unsafe_set u d '\001'
      end
      else begin
        for k = 0 to l - 1 do
          Array.unsafe_set w (d + k) (Array.unsafe_get w (a + k) lor imm)
        done;
        setu d
      end;
      pc := q + 4
    | 47 (* bw_xori *) ->
      let a = Array.unsafe_get code (q + 2) in
      let imm = Array.unsafe_get code (q + 3) in
      if Bytes.unsafe_get u a = '\001' then begin
        Array.unsafe_set w d (Array.unsafe_get w a lxor imm);
        Bytes.unsafe_set u d '\001'
      end
      else begin
        for k = 0 to l - 1 do
          Array.unsafe_set w (d + k) (Array.unsafe_get w (a + k) lxor imm)
        done;
        setu d
      end;
      pc := q + 4
    | 48 (* bw_shlori *) ->
      let a = Array.unsafe_get code (q + 2) in
      let sh = Array.unsafe_get code (q + 3) in
      let imm = Array.unsafe_get code (q + 4) in
      let m = Array.unsafe_get code (q + 5) in
      if Bytes.unsafe_get u a = '\001' then begin
        Array.unsafe_set w d
          (Array.unsafe_get w a lsl sh land m lor imm);
        Bytes.unsafe_set u d '\001'
      end
      else begin
        for k = 0 to l - 1 do
          Array.unsafe_set w (d + k)
            (Array.unsafe_get w (a + k) lsl sh land m lor imm)
        done;
        setu d
      end;
      pc := q + 6
    | 49 (* bw_unpack *) ->
      let v = Array.unsafe_get p (Array.unsafe_get code (q + 2)) in
      (if v = 0 then begin
         Array.unsafe_set w d 0;
         Bytes.unsafe_set u d '\001'
       end
       else if v = lm then begin
         Array.unsafe_set w d 1;
         Bytes.unsafe_set u d '\001'
       end
       else begin
         for k = 0 to l - 1 do
           Array.unsafe_set w (d + k) (v lsr k land 1)
         done;
         setu d
       end);
      pc := q + 3
    | 50 (* bw_set0 *) ->
      Array.unsafe_set w d 0;
      Bytes.unsafe_set u d '\001';
      pc := q + 2
    | _ (* bp_pack *) ->
      let a = Array.unsafe_get code (q + 2) in
      if Bytes.unsafe_get u a = '\001' then
        Array.unsafe_set p d (- (Array.unsafe_get w a land 1) land lm)
      else begin
        let acc = ref 0 in
        for k = 0 to l - 1 do
          acc := !acc lor ((Array.unsafe_get w (a + k) land 1) lsl k)
        done;
        Array.unsafe_set p d !acc
      end;
      pc := q + 3
  done

(* Per-lane stuck-at forces: two bitwise ops for a packed register, one
   masked store per lane for word registers — or a single masked store
   when the masks agree across lanes and the slot is still uniform. *)
let apply_bforces b =
  let fs = b.bforces in
  if Array.length fs > 0 then begin
    let w = b.wvals in
    let u = b.wuni in
    Array.iter
      (fun f ->
        if f.fpacked then
          b.pvals.(f.fslot) <- b.pvals.(f.fslot) land f.fpand lor f.fpor
        else begin
          let base = f.fbase in
          if f.fwuni && Bytes.unsafe_get u base = '\001' then
            w.(base) <- w.(base) land f.fand.(0) lor f.forr.(0)
          else begin
            if Bytes.unsafe_get u base = '\001' then begin
              Array.fill w (base + 1) (b.lanes - 1) w.(base);
              Bytes.unsafe_set u base '\000'
            end;
            for k = 0 to b.lanes - 1 do
              w.(base + k) <- w.(base + k) land f.fand.(k) lor f.forr.(k)
            done
          end
        end)
      fs
  end

(* Compiled batch latch: next states into the scratch arrays, ram writes
   against pre-edge values, then commit.  Packed registers latch all
   lanes in a handful of bitwise ops; a word register whose lanes agree
   on clear/enable and whose data is uniform latches in O(1) and keeps
   its uniformity. *)
let latch_batch b =
  let p = b.pvals in
  let w = b.wvals in
  let u = b.wuni in
  let l = b.lanes in
  let lm = b.lmask in
  let cregs = b.bcregs in
  let np = b.bnext_p in
  let nw = b.bnext_w in
  let nu = b.bnext_u in
  let mat base =
    if Bytes.unsafe_get u base = '\001' then begin
      Array.fill w (base + 1) (l - 1) (Array.unsafe_get w base);
      Bytes.unsafe_set u base '\000'
    end
  in
  for k = 0 to Array.length cregs - 1 do
    let r = Array.unsafe_get cregs k in
    if r.bp then begin
      let dv = Array.unsafe_get p r.bd in
      let nx =
        if r.ben >= 0 then begin
          let e = Array.unsafe_get p r.ben in
          e land dv lor (lnot e land Array.unsafe_get p r.bself)
        end
        else dv
      in
      let nx =
        if r.bclr >= 0 then begin
          let c = Array.unsafe_get p r.bclr in
          c land r.bct lor (lnot c land nx)
        end
        else nx
      in
      Array.unsafe_set np k nx
    end
    else begin
      let base = k * l in
      let cm = if r.bclr >= 0 then Array.unsafe_get p r.bclr else 0 in
      let em = if r.ben >= 0 then Array.unsafe_get p r.ben else lm in
      if cm = lm then begin
        (* every lane clears *)
        Array.unsafe_set nw base r.bct;
        Bytes.unsafe_set nu k '\001'
      end
      else if cm = 0 && em = 0 then begin
        (* every lane holds *)
        if Bytes.unsafe_get u r.bself = '\001' then begin
          Array.unsafe_set nw base (Array.unsafe_get w r.bself);
          Bytes.unsafe_set nu k '\001'
        end
        else begin
          Array.blit w r.bself nw base l;
          Bytes.unsafe_set nu k '\000'
        end
      end
      else if cm = 0 && em = lm then begin
        (* every lane loads d *)
        if r.bdp then begin
          let dv = Array.unsafe_get p r.bd in
          if dv = 0 || dv = lm then begin
            Array.unsafe_set nw base (dv land 1);
            Bytes.unsafe_set nu k '\001'
          end
          else begin
            for j = 0 to l - 1 do
              Array.unsafe_set nw (base + j) (dv lsr j land 1)
            done;
            Bytes.unsafe_set nu k '\000'
          end
        end
        else if Bytes.unsafe_get u r.bd = '\001' then begin
          Array.unsafe_set nw base (Array.unsafe_get w r.bd);
          Bytes.unsafe_set nu k '\001'
        end
        else begin
          Array.blit w r.bd nw base l;
          Bytes.unsafe_set nu k '\000'
        end
      end
      else begin
        (* lanes disagree on clear/enable *)
        mat r.bself;
        if not r.bdp then mat r.bd;
        for j = 0 to l - 1 do
          let nx =
            if
              r.bclr >= 0
              && Array.unsafe_get p r.bclr lsr j land 1 <> 0
            then r.bct
            else if
              r.ben >= 0 && Array.unsafe_get p r.ben lsr j land 1 = 0
            then Array.unsafe_get w (r.bself + j)
            else if r.bdp then Array.unsafe_get p r.bd lsr j land 1
            else Array.unsafe_get w (r.bd + j)
          in
          Array.unsafe_set nw (base + j) nx
        done;
        Bytes.unsafe_set nu k '\000'
      end
    end
  done;
  let wps = b.bwports in
  for k = 0 to Array.length wps - 1 do
    let wp = Array.unsafe_get wps k in
    let we = Array.unsafe_get p wp.bwe in
    if we <> 0 then begin
      let r = wp.bwram in
      let contents = b.brams.(r) in
      let auni =
        if wp.bwaddr_p then begin
          let av = Array.unsafe_get p wp.bwaddr in
          av = 0 || av = lm
        end
        else Bytes.unsafe_get u wp.bwaddr = '\001'
      in
      let duni =
        if wp.bwdata_p then begin
          let dv = Array.unsafe_get p wp.bwdata in
          dv = 0 || dv = lm
        end
        else Bytes.unsafe_get u wp.bwdata = '\001'
      in
      if we = lm && auni && duni then begin
        (* one address, one datum, every lane writing *)
        let a =
          if wp.bwaddr_p then Array.unsafe_get p wp.bwaddr land 1
          else Array.unsafe_get w wp.bwaddr
        in
        if a < wp.bwsize then begin
          let v =
            if wp.bwdata_p then Array.unsafe_get p wp.bwdata land 1
            else Array.unsafe_get w wp.bwdata
          in
          if b.bruni.(r) then contents.(a * l) <- v
          else Array.fill contents (a * l) l v
        end
      end
      else begin
        if b.bruni.(r) then begin
          (* the lanes are about to disagree on contents: replicate the
             lane-0 column before the per-lane writes land *)
          for a = 0 to b.bram_sizes.(r) - 1 do
            Array.fill contents ((a * l) + 1) (l - 1)
              (Array.unsafe_get contents (a * l))
          done;
          b.bruni.(r) <- false
        end;
        if not wp.bwaddr_p then mat wp.bwaddr;
        if not wp.bwdata_p then mat wp.bwdata;
        for j = 0 to l - 1 do
          if we lsr j land 1 <> 0 then begin
            let a =
              if wp.bwaddr_p then Array.unsafe_get p wp.bwaddr lsr j land 1
              else Array.unsafe_get w (wp.bwaddr + j)
            in
            if a < wp.bwsize then
              contents.((a * l) + j) <-
                (if wp.bwdata_p then
                   Array.unsafe_get p wp.bwdata lsr j land 1
                 else Array.unsafe_get w (wp.bwdata + j))
          end
        done
      end
    end
  done;
  for k = 0 to Array.length cregs - 1 do
    let r = Array.unsafe_get cregs k in
    if r.bp then Array.unsafe_set p r.bself (Array.unsafe_get np k)
    else if Bytes.unsafe_get nu k = '\001' then begin
      Array.unsafe_set w r.bself (Array.unsafe_get nw (k * l));
      Bytes.unsafe_set u r.bself '\001'
    end
    else begin
      (* convergence detection at the register boundary: if every lane
         latched the same value the register is uniform again, and the
         cheap store keeps its fan-out uniform on the next cycle *)
      let base = k * l in
      let v0 = Array.unsafe_get nw base in
      let rec same j =
        j >= l || (Array.unsafe_get nw (base + j) = v0 && same (j + 1))
      in
      if same 1 then begin
        Array.unsafe_set w r.bself v0;
        Bytes.unsafe_set u r.bself '\001'
      end
      else begin
        Array.blit nw base w r.bself l;
        Bytes.unsafe_set u r.bself '\000'
      end
    end
  done

(* Re-broadcast the scalar power-on image into every lane — and drop all
   per-lane forces, so a reused simulator cannot leak stuck bits into the
   next batch.  Every word slot and every ram comes back lane-uniform, so
   only lane 0 (and the lane-0 ram column) is actually written: a reset
   costs O(state), not O(state × lanes).  Scratch word slots get a
   uniform flag over a stale lane-0 value, which is safe because the tape
   rewrites each scratch (value and flag) before its first read of every
   settle. *)
let broadcast_init ~init_image b =
  let l = b.lanes in
  Bytes.fill b.wuni 0 (Bytes.length b.wuni) '\001';
  for i = 0 to Array.length b.brep - 1 do
    if b.brep.(i) then
      b.pvals.(i) <- - (init_image.(i) land 1) land b.lmask
    else b.wvals.(b.bwbase.(i)) <- init_image.(i)
  done;
  Array.iteri
    (fun k contents ->
      let init = b.bram_inits.(k) in
      for a = 0 to b.bram_sizes.(k) - 1 do
        contents.(a * l) <- init.(a)
      done;
      b.bruni.(k) <- true)
    b.brams;
  Array.fill b.binputs 0 (Array.length b.binputs) 0;
  Bytes.fill b.binuni 0 (Bytes.length b.binuni) '\001';
  b.bforces <- [||]

(* ------------------------------------------------------------------ *)
(* Reference interpreter: one closure per combinational node.          *)

let compile_closures nodes ~idx ~slot_of_input ~values ~input_slots
    ~ram_contents =
  let steps =
    Array.to_list nodes
    |> List.filter_map (fun (s : Signal.t) ->
        let i = idx s in
        let w = s.Signal.width in
        let m = Signal.mask_to_width w in
        match s.Signal.node with
        | Signal.Reg _ | Signal.Const _ -> None (* sequential / preloaded *)
        | Signal.Input n ->
          let slot = slot_of_input n in
          Some (fun () -> values.(i) <- input_slots.(slot))
        | Signal.Unop (Signal.Not, a) ->
          let a = idx a in
          Some (fun () -> values.(i) <- m (lnot values.(a)))
        | Signal.Binop (op, a, b) -> (
          let aw = a.Signal.width in
          let a = idx a and b = idx b in
          match op with
          | Signal.Add -> Some (fun () -> values.(i) <- m (values.(a) + values.(b)))
          | Signal.Sub -> Some (fun () -> values.(i) <- m (values.(a) - values.(b)))
          | Signal.Mul -> Some (fun () -> values.(i) <- m (values.(a) * values.(b)))
          | Signal.And -> Some (fun () -> values.(i) <- values.(a) land values.(b))
          | Signal.Or -> Some (fun () -> values.(i) <- values.(a) lor values.(b))
          | Signal.Xor -> Some (fun () -> values.(i) <- values.(a) lxor values.(b))
          | Signal.Eq ->
            Some (fun () -> values.(i) <- (if values.(a) = values.(b) then 1 else 0))
          | Signal.Ult ->
            Some (fun () -> values.(i) <- (if values.(a) < values.(b) then 1 else 0))
          | Signal.Slt ->
            Some
              (fun () ->
                values.(i) <-
                  (if Signal.to_signed aw values.(a) < Signal.to_signed aw values.(b)
                   then 1
                   else 0))
          | Signal.Shl n -> Some (fun () -> values.(i) <- m (values.(a) lsl n))
          | Signal.Shr n -> Some (fun () -> values.(i) <- values.(a) lsr n)
          | Signal.Sra n ->
            Some (fun () -> values.(i) <- m (Signal.to_signed aw values.(a) asr n)))
        | Signal.Mux (c, x, y) ->
          let c = idx c and x = idx x and y = idx y in
          Some
            (fun () ->
              values.(i) <- (if values.(c) <> 0 then values.(x) else values.(y)))
        | Signal.Concat (hi, lo) ->
          let lw = lo.Signal.width in
          let hi = idx hi and lo = idx lo in
          Some (fun () -> values.(i) <- m ((values.(hi) lsl lw) lor values.(lo)))
        | Signal.Repl (a, n) ->
          let aw = a.Signal.width in
          let a = idx a in
          Some
            (fun () ->
              let v = values.(a) in
              let acc = ref 0 in
              for _ = 1 to n do
                acc := (!acc lsl aw) lor v
              done;
              values.(i) <- m !acc)
        | Signal.Select (a, _, lo) ->
          let a = idx a in
          Some (fun () -> values.(i) <- m (values.(a) lsr lo))
        | Signal.Wire r -> (
          match !r with
          | Some d ->
            let d = idx d in
            Some (fun () -> values.(i) <- values.(d))
          | None -> invalid_arg "Sim: unassigned wire")
        | Signal.Ram_read (ram, addr) ->
          let contents = ram_contents ram.Signal.ram_id in
          let size = ram.Signal.size in
          let addr = idx addr in
          Some
            (fun () ->
              let a = values.(addr) in
              values.(i) <- (if a < size then contents.(a) else 0)))
  in
  Array.of_list steps

(* ------------------------------------------------------------------ *)

let create ?(backend = `Tape) ?lanes circuit =
  let lanes =
    match (backend, lanes) with
    | (`Tape | `Closure), Some _ ->
      invalid_arg "Sim.create: ~lanes requires the `Batch backend"
    | (`Tape | `Closure), None -> 1
    | `Batch, None -> max_lanes
    | `Batch, Some l ->
      if l < 1 || l > max_lanes then
        invalid_arg
          (Printf.sprintf "Sim.create: lanes must be in 1..%d" max_lanes);
      l
  in
  let nodes = Circuit.nodes circuit in
  let n = Array.length nodes in
  let index_of = Hashtbl.create (max 16 n) in
  Array.iteri (fun i s -> Hashtbl.add index_of s.Signal.id i) nodes;
  let values = Array.make (max 1 n) 0 in
  (* inputs: one dense slot per distinct name *)
  let inputs = Circuit.inputs circuit in
  let input_slots = Array.make (max 1 (List.length inputs)) 0 in
  let input_slot_of = Hashtbl.create 16 in
  List.iteri (fun k (nm, w) -> Hashtbl.add input_slot_of nm (k, w)) inputs;
  let slot_of_input nm = fst (Hashtbl.find input_slot_of nm) in
  (* rams: hash table keyed by id for the testbench API, dense slots for
     the tape *)
  let rams = Circuit.rams circuit in
  let ram_state = Hashtbl.create 8 in
  let tape_rams = Array.make (max 1 (List.length rams)) [||] in
  let ram_slot_of = Hashtbl.create 8 in
  List.iteri
    (fun k (r : Signal.ram) ->
      let contents = Array.copy r.Signal.init_data in
      Hashtbl.add ram_state r.Signal.ram_id contents;
      Hashtbl.add ram_slot_of r.Signal.ram_id k;
      tape_rams.(k) <- contents)
    rams;
  (* Compile the tape first: its folding pass redirects aliased nodes in
     [index_of], and everything below (registers, write ports, outputs)
     must resolve through the redirected table. *)
  let code, folded =
    match backend with
    | `Tape | `Batch ->
      compile_tape nodes ~index_of ~slot_of_input
        ~ram_slot:(Hashtbl.find ram_slot_of)
    | `Closure -> ([||], [||])
  in
  let idx (s : Signal.t) = Hashtbl.find index_of s.Signal.id in
  (* registers *)
  let regs = ref [] in
  Array.iteri
    (fun i s ->
      match s.Signal.node with
      | Signal.Reg r -> regs := (i, r) :: !regs
      | _ -> ())
    nodes;
  let reg_state = Array.of_list (List.rev !regs) in
  let cregs =
    Array.map
      (fun (i, (r : Signal.reg)) ->
        { self = i;
          d = idx r.Signal.d;
          en = (match r.Signal.enable with Some e -> idx e | None -> -1);
          clr = (match r.Signal.clear with Some c -> idx c | None -> -1);
          clear_to = r.Signal.clear_to;
          rinit = r.Signal.init })
      reg_state
  in
  let ram_init_of = Hashtbl.create 8 in
  List.iter
    (fun (r : Signal.ram) ->
      Hashtbl.add ram_init_of r.Signal.ram_id r.Signal.init_data)
    rams;
  let writable_inits =
    List.filter_map
      (fun (r : Signal.ram) ->
        match r.Signal.write_port with
        | None -> None
        | Some _ ->
          Some (Hashtbl.find ram_state r.Signal.ram_id, r.Signal.init_data))
      rams
    |> Array.of_list
  in
  let cwports =
    List.filter_map
      (fun (ram : Signal.ram) ->
        match ram.Signal.write_port with
        | None -> None
        | Some wp ->
          Some
            { we = idx wp.Signal.we;
              waddr = idx wp.Signal.waddr;
              wdata = idx wp.Signal.wdata;
              wsize = ram.Signal.size;
              wcontents = Hashtbl.find ram_state ram.Signal.ram_id })
      rams
    |> Array.of_list
  in
  (* preload constants: literal Const nodes, slots the tape compiler
     folded, register init values — then snapshot for [reset] *)
  Array.iter
    (fun (s : Signal.t) ->
      match s.Signal.node with
      | Signal.Const c -> values.(idx s) <- c
      | _ -> ())
    nodes;
  Array.iter (fun (i, c) -> values.(i) <- c) folded;
  Array.iter (fun r -> values.(r.self) <- r.rinit) cregs;
  let init_image = Array.copy values in
  let out_slot_of = Hashtbl.create 8 in
  List.iter
    (fun (nm, (s : Signal.t)) ->
      if not (Hashtbl.mem out_slot_of nm) then
        Hashtbl.add out_slot_of nm (idx s, s.Signal.width))
    (Circuit.outputs circuit);
  let program =
    match backend with
    | `Closure ->
      compile_closures nodes ~idx ~slot_of_input ~values ~input_slots
        ~ram_contents:(Hashtbl.find ram_state)
    | `Tape | `Batch -> [||]
  in
  let batch =
    match backend with
    | `Tape | `Closure -> None
    | `Batch ->
      let widths = Array.make (max 1 n) 1 in
      Array.iteri (fun i s -> widths.(i) <- s.Signal.width) nodes;
      (* slots the latch reads as packed: enables, clears, 1-bit register
         data, write enables — all width-1 signals, but CSE can have
         parked one on a word slot, so [translate_batch] guarantees each
         a packed resolution *)
      let latch_slots =
        Array.to_list
          (Array.concat
             [ Array.map (fun r -> r.en) cregs;
               Array.map (fun r -> r.clr) cregs;
               Array.map
                 (fun r -> if widths.(r.self) = 1 then r.d else -1)
                 cregs;
               Array.map (fun (wp : cwport) -> wp.we) cwports ])
      in
      let bcode, brep, bwbase, nword, npacked, pscratch, packed, total =
        translate_batch code ~widths ~lanes ~latch_slots
      in
      (* packed slot carrying the value of slot [i] (identity unless the
         slot is word-represented, in which case its pack scratch) *)
      let pof i = if brep.(i) then i else Hashtbl.find pscratch i in
      let lmask = lane_mask_of lanes in
      let bcregs =
        Array.map
          (fun r ->
            let bp = brep.(r.self) in
            { bp;
              bself = (if bp then r.self else bwbase.(r.self));
              bd = (if bp then pof r.d
                    else if brep.(r.d) then r.d
                    else bwbase.(r.d));
              bdp = brep.(r.d);
              ben = (if r.en >= 0 then pof r.en else -1);
              bclr = (if r.clr >= 0 then pof r.clr else -1);
              bct =
                (if bp then - (r.clear_to land 1) land lmask
                 else r.clear_to) })
          cregs
      in
      let nrams = List.length rams in
      let brams = Array.make (max 1 nrams) [||] in
      let bram_sizes = Array.make (max 1 nrams) 0 in
      let bram_inits = Array.make (max 1 nrams) [||] in
      List.iteri
        (fun k (r : Signal.ram) ->
          brams.(k) <- Array.make (r.Signal.size * lanes) 0;
          bram_sizes.(k) <- r.Signal.size;
          bram_inits.(k) <- r.Signal.init_data)
        rams;
      let bwports =
        List.filter_map
          (fun (r : Signal.ram) ->
            match r.Signal.write_port with
            | None -> None
            | Some wp ->
              let ai = idx wp.Signal.waddr and di = idx wp.Signal.wdata in
              Some
                { bwe = pof (idx wp.Signal.we);
                  bwaddr = (if brep.(ai) then ai else bwbase.(ai));
                  bwaddr_p = brep.(ai);
                  bwdata = (if brep.(di) then di else bwbase.(di));
                  bwdata_p = brep.(di);
                  bwsize = r.Signal.size;
                  bwram = Hashtbl.find ram_slot_of r.Signal.ram_id })
          rams
        |> Array.of_list
      in
      let nregs = Array.length cregs in
      let b =
        { lanes; lmask; brep; bwbase; bcode;
          pvals = Array.make (max 1 npacked) 0;
          wvals = Array.make (max 1 (nword * lanes)) 0;
          wuni = Bytes.make (max 1 (nword * lanes)) '\000';
          binputs = Array.make (Array.length input_slots * lanes) 0;
          binuni = Bytes.make (Array.length input_slots * lanes) '\001';
          brams;
          bruni = Array.make (max 1 nrams) true;
          bram_sizes; bram_inits; bram_slot_of = ram_slot_of;
          bcregs;
          bnext_p = Array.make (max 1 nregs) 0;
          bnext_w = Array.make (max 1 (nregs * lanes)) 0;
          bnext_u = Bytes.make (max 1 nregs) '\000';
          bwports; bforces = [||];
          bpacked_insts = packed; btotal_insts = total }
      in
      broadcast_init ~init_image b;
      Some b
  in
  { circuit; backend; index_of; values; code; tape_rams; program; cregs;
    reg_next = Array.make (max 1 (Array.length cregs)) 0;
    cwports; reg_state; ram_state; writable_inits; ram_init_of;
    dirty_rams = Hashtbl.create 4;
    input_slots; input_slot_of; out_slot_of; init_image; clock = 0;
    forces = [||]; batch }

(* The compiled programs (tape and closures) read state only through
   [values], [input_slots] and the ram contents arrays, all of which are
   restored in place — no recompilation needed. *)
let reset t =
  Array.blit t.init_image 0 t.values 0 (Array.length t.values);
  (* Read-only rams cannot have drifted from their init image, so only
     rams with a write port — plus any the testbench rewrote through
     [load_ram] — need restoring. *)
  Array.iter
    (fun (c, init) -> Array.blit init 0 c 0 (Array.length c))
    t.writable_inits;
  Hashtbl.iter
    (fun id () ->
      let c = Hashtbl.find t.ram_state id in
      Array.blit (Hashtbl.find t.ram_init_of id) 0 c 0 (Array.length c))
    t.dirty_rams;
  Hashtbl.reset t.dirty_rams;
  Array.fill t.input_slots 0 (Array.length t.input_slots) 0;
  t.clock <- 0;
  t.forces <- [||];
  (* per-lane state, including any stale per-lane force masks, must not
     survive into the next batch of trials *)
  match t.batch with
  | Some b -> broadcast_init ~init_image:t.init_image b
  | None -> ()

let lanes t = match t.batch with Some b -> b.lanes | None -> 1

let check_lane t lane =
  let l = lanes t in
  if lane < 0 || lane >= l then
    invalid_arg
      (Printf.sprintf "Sim: lane %d out of range (simulator has %d)" lane l)

let packed_fraction t =
  match t.batch with
  | None -> 0.
  | Some b ->
    if b.btotal_insts = 0 then 1.
    else float_of_int b.bpacked_insts /. float_of_int b.btotal_insts

(* Demote a uniform word slot so individual lanes can be addressed:
   replicate lane 0 into the stale lanes and drop the flag. *)
let mat_slot b base =
  if Bytes.get b.wuni base = '\001' then begin
    Array.fill b.wvals (base + 1) (b.lanes - 1) b.wvals.(base);
    Bytes.set b.wuni base '\000'
  end

(* Same for a ram: replicate the lane-0 column into the stale lanes. *)
let mat_ram b k =
  if b.bruni.(k) then begin
    let l = b.lanes in
    let contents = b.brams.(k) in
    for a = 0 to b.bram_sizes.(k) - 1 do
      Array.fill contents ((a * l) + 1) (l - 1) contents.(a * l)
    done;
    b.bruni.(k) <- false
  end

(* per-lane read of a dense slot on the batch backend *)
let read_slot_lane_b b lane i =
  if b.brep.(i) then b.pvals.(i) lsr lane land 1
  else begin
    let base = b.bwbase.(i) in
    if Bytes.get b.wuni base = '\001' then b.wvals.(base)
    else b.wvals.(base + lane)
  end

let set_input t name v =
  match Hashtbl.find_opt t.input_slot_of name with
  | None -> raise Not_found
  | Some (slot, w) -> (
    let v = Signal.mask_to_width w v in
    match t.batch with
    | None -> t.input_slots.(slot) <- v
    | Some b ->
      Array.fill b.binputs (slot * b.lanes) b.lanes v;
      Bytes.set b.binuni (slot * b.lanes) '\001')

let set_input_lane t lane name v =
  check_lane t lane;
  match t.batch with
  | None -> set_input t name v
  | Some b -> (
    match Hashtbl.find_opt t.input_slot_of name with
    | None -> raise Not_found
    | Some (slot, w) ->
      let v = Signal.mask_to_width w v in
      let base = slot * b.lanes in
      if Bytes.get b.binuni base = '\001' && b.binputs.(base) <> v then
        Bytes.set b.binuni base '\000';
      b.binputs.(base + lane) <- v)

let value t (s : Signal.t) = t.values.(Hashtbl.find t.index_of s.Signal.id)

(* Stuck-at forces target register slots only, which nothing writes
   during the combinational phase in either backend — applying them just
   before settle and just after latch keeps every reader consistent. *)
let apply_forces t =
  let forces = t.forces in
  if Array.length forces > 0 then
    Array.iter
      (fun (i, am, om) -> t.values.(i) <- t.values.(i) land am lor om)
      forces

let settle t =
  apply_forces t;
  match t.backend with
  | `Tape -> exec_tape t
  | `Batch -> (
    match t.batch with
    | Some b ->
      apply_bforces b;
      exec_batch b
    | None -> assert false)
  | `Closure ->
    let program = t.program in
    for i = 0 to Array.length program - 1 do
      (Array.unsafe_get program i) ()
    done

(* Compiled latch: next states into the preallocated scratch array, ram
   writes, then commit — registers and write ports see pre-edge values. *)
let latch_compiled t =
  let values = t.values in
  let cregs = t.cregs in
  let nexts = t.reg_next in
  for k = 0 to Array.length cregs - 1 do
    let r = Array.unsafe_get cregs k in
    let next =
      if r.clr >= 0 && Array.unsafe_get values r.clr <> 0 then r.clear_to
      else if r.en >= 0 && Array.unsafe_get values r.en = 0 then
        Array.unsafe_get values r.self
      else Array.unsafe_get values r.d
    in
    Array.unsafe_set nexts k next
  done;
  let wps = t.cwports in
  for k = 0 to Array.length wps - 1 do
    let w = Array.unsafe_get wps k in
    if Array.unsafe_get values w.we <> 0 then begin
      let a = Array.unsafe_get values w.waddr in
      if a < w.wsize then w.wcontents.(a) <- Array.unsafe_get values w.wdata
    end
  done;
  for k = 0 to Array.length cregs - 1 do
    Array.unsafe_set values (Array.unsafe_get cregs k).self
      (Array.unsafe_get nexts k)
  done;
  t.clock <- t.clock + 1

(* Reference latch: resolves every operand through the id hash table, as
   the original interpreter did. *)
let latch_reference t =
  let v = value t in
  let nexts =
    Array.map
      (fun (i, (r : Signal.reg)) ->
        let q = t.values.(i) in
        let next =
          match r.Signal.clear with
          | Some c when v c <> 0 -> r.Signal.clear_to
          | Some _ | None -> (
            match r.Signal.enable with
            | Some e when v e = 0 -> q
            | Some _ | None -> v r.Signal.d)
        in
        (i, next))
      t.reg_state
  in
  List.iter
    (fun (ram : Signal.ram) ->
      match ram.Signal.write_port with
      | None -> ()
      | Some wp ->
        if v wp.Signal.we <> 0 then begin
          let a = v wp.Signal.waddr in
          if a < ram.Signal.size then begin
            let contents = Hashtbl.find t.ram_state ram.Signal.ram_id in
            contents.(a) <- v wp.Signal.wdata
          end
        end)
    (Circuit.rams t.circuit);
  Array.iter (fun (i, next) -> t.values.(i) <- next) nexts;
  t.clock <- t.clock + 1

let latch t =
  (match t.backend with
  | `Tape -> latch_compiled t
  | `Batch -> (
    match t.batch with
    | Some b ->
      latch_batch b;
      t.clock <- t.clock + 1;
      apply_bforces b
    | None -> assert false)
  | `Closure -> latch_reference t);
  apply_forces t

let cycle t =
  settle t;
  latch t

let cycles t n =
  for _ = 1 to n do
    cycle t
  done

let peek_lane t lane s =
  check_lane t lane;
  match Hashtbl.find_opt t.index_of s.Signal.id with
  | None -> raise Not_found
  | Some i -> (
    match t.batch with
    | None -> t.values.(i)
    | Some b -> read_slot_lane_b b lane i)

let peek t s =
  match Hashtbl.find_opt t.index_of s.Signal.id with
  | None -> raise Not_found
  | Some i -> (
    match t.batch with
    | None -> t.values.(i)
    | Some b -> read_slot_lane_b b 0 i)

let peek_signed t s = Signal.to_signed s.Signal.width (peek t s)

let slot t (s : Signal.t) = Hashtbl.find_opt t.index_of s.Signal.id

let read_slot t i =
  match t.batch with
  | None -> t.values.(i)
  | Some b -> read_slot_lane_b b 0 i

let output_lane t lane name =
  check_lane t lane;
  match Hashtbl.find_opt t.out_slot_of name with
  | None -> raise Not_found
  | Some (i, _) -> (
    match t.batch with
    | None -> t.values.(i)
    | Some b -> read_slot_lane_b b lane i)

let output_lane_signed t lane name =
  check_lane t lane;
  match Hashtbl.find_opt t.out_slot_of name with
  | None -> raise Not_found
  | Some (i, w) -> (
    match t.batch with
    | None -> Signal.to_signed w t.values.(i)
    | Some b -> Signal.to_signed w (read_slot_lane_b b lane i))

let output t name = output_lane t 0 name
let output_signed t name = output_lane_signed t 0 name

(* all lanes of a width-1 output in one word: bit [l] is lane [l] *)
let output_packed t name =
  match t.batch with
  | None -> invalid_arg "Sim.output_packed: requires the `Batch backend"
  | Some b -> (
    match Hashtbl.find_opt t.out_slot_of name with
    | None -> raise Not_found
    | Some (i, w) ->
      if w <> 1 then
        invalid_arg "Sim.output_packed: output is wider than 1 bit";
      if b.brep.(i) then b.pvals.(i)
      else begin
        let base = b.bwbase.(i) in
        if Bytes.get b.wuni base = '\001' then
          - (b.wvals.(base) land 1) land b.lmask
        else begin
          let acc = ref 0 in
          for k = 0 to b.lanes - 1 do
            acc := !acc lor ((b.wvals.(base + k) land 1) lsl k)
          done;
          !acc
        end
      end)

let ram_contents_lane t lane (r : Signal.ram) =
  check_lane t lane;
  match t.batch with
  | None -> Array.copy (Hashtbl.find t.ram_state r.Signal.ram_id)
  | Some b ->
    let k = Hashtbl.find b.bram_slot_of r.Signal.ram_id in
    let contents = b.brams.(k) in
    if b.bruni.(k) then
      Array.init r.Signal.size (fun a -> contents.(a * b.lanes))
    else Array.init r.Signal.size (fun a -> contents.((a * b.lanes) + lane))

let ram_contents t (r : Signal.ram) = ram_contents_lane t 0 r

let ram_cell_lane t lane (r : Signal.ram) addr =
  check_lane t lane;
  match t.batch with
  | None -> (Hashtbl.find t.ram_state r.Signal.ram_id).(addr)
  | Some b ->
    let k = Hashtbl.find b.bram_slot_of r.Signal.ram_id in
    let contents = b.brams.(k) in
    if b.bruni.(k) then contents.(addr * b.lanes)
    else contents.((addr * b.lanes) + lane)

(* Resolve the ram slot once and capture the contents array — sound
   across {!reset}, which refills arrays in place.  The returned closure
   is the hot-loop form of {!ram_cell_lane}: fault campaigns call it
   O(lanes × output-cells) times per pass. *)
let ram_reader t (r : Signal.ram) =
  match t.batch with
  | None ->
    let contents = Hashtbl.find t.ram_state r.Signal.ram_id in
    fun _lane addr -> contents.(addr)
  | Some b ->
    let k = Hashtbl.find b.bram_slot_of r.Signal.ram_id in
    let contents = b.brams.(k) in
    let l = b.lanes in
    fun lane addr ->
      if b.bruni.(k) then contents.(addr * l)
      else contents.((addr * l) + lane)

let load_ram_lane t lane (r : Signal.ram) data =
  check_lane t lane;
  if Array.length data <> r.Signal.size then
    invalid_arg "Sim.load_ram: size mismatch";
  match t.batch with
  | None ->
    (match r.Signal.write_port with
    | None -> Hashtbl.replace t.dirty_rams r.Signal.ram_id ()
    | Some _ -> ());
    let contents = Hashtbl.find t.ram_state r.Signal.ram_id in
    Array.iteri
      (fun i v -> contents.(i) <- Signal.mask_to_width r.Signal.ram_width v)
      data
  | Some b ->
    let k = Hashtbl.find b.bram_slot_of r.Signal.ram_id in
    mat_ram b k;
    let contents = b.brams.(k) in
    Array.iteri
      (fun a v ->
        contents.((a * b.lanes) + lane) <-
          Signal.mask_to_width r.Signal.ram_width v)
      data

let load_ram t (r : Signal.ram) data =
  match t.batch with
  | None -> load_ram_lane t 0 r data
  | Some b ->
    if Array.length data <> r.Signal.size then
      invalid_arg "Sim.load_ram: size mismatch";
    let k = Hashtbl.find b.bram_slot_of r.Signal.ram_id in
    let contents = b.brams.(k) in
    (* every address of every lane is overwritten with one value per
       address, so the ram comes out uniform whatever it was before *)
    Array.iteri
      (fun a v ->
        contents.(a * b.lanes) <-
          Signal.mask_to_width r.Signal.ram_width v)
      data;
    b.bruni.(k) <- true

(* Prefix load: [data] to addresses 0..len-1, zeros above — [load_ram]
   without materialising a full-size padded image first.  This is the
   configuration fast path for programmable netlists, whose
   envelope-sized memories are mostly tail zeros. *)
let load_ram_prefix_lane t lane (r : Signal.ram) data =
  check_lane t lane;
  let n = Array.length data in
  if n > r.Signal.size then invalid_arg "Sim.load_ram_prefix: image too large";
  match t.batch with
  | None ->
    (match r.Signal.write_port with
    | None -> Hashtbl.replace t.dirty_rams r.Signal.ram_id ()
    | Some _ -> ());
    let contents = Hashtbl.find t.ram_state r.Signal.ram_id in
    for i = 0 to n - 1 do
      contents.(i) <- Signal.mask_to_width r.Signal.ram_width data.(i)
    done;
    Array.fill contents n (r.Signal.size - n) 0
  | Some b ->
    let k = Hashtbl.find b.bram_slot_of r.Signal.ram_id in
    mat_ram b k;
    let contents = b.brams.(k) in
    for a = 0 to n - 1 do
      contents.((a * b.lanes) + lane) <-
        Signal.mask_to_width r.Signal.ram_width data.(a)
    done;
    for a = n to r.Signal.size - 1 do
      contents.((a * b.lanes) + lane) <- 0
    done

let load_ram_prefix t (r : Signal.ram) data =
  match t.batch with
  | None -> load_ram_prefix_lane t 0 r data
  | Some b ->
    let n = Array.length data in
    if n > r.Signal.size then
      invalid_arg "Sim.load_ram_prefix: image too large";
    let k = Hashtbl.find b.bram_slot_of r.Signal.ram_id in
    let contents = b.brams.(k) in
    for a = 0 to n - 1 do
      contents.(a * b.lanes) <-
        Signal.mask_to_width r.Signal.ram_width data.(a)
    done;
    Array.fill contents (n * b.lanes) ((r.Signal.size - n) * b.lanes) 0;
    b.bruni.(k) <- true

let cycle_count t = t.clock

(* ------------------------------------------------------------------ *)
(* Fault-injection hooks.                                              *)

let poke_lane t lane (s : Signal.t) v =
  check_lane t lane;
  match Hashtbl.find_opt t.index_of s.Signal.id with
  | None -> raise Not_found
  | Some i -> (
    let v = Signal.mask_to_width s.Signal.width v in
    match t.batch with
    | None -> t.values.(i) <- v
    | Some b ->
      if b.brep.(i) then
        b.pvals.(i) <-
          b.pvals.(i) land lnot (1 lsl lane) land b.lmask
          lor ((v land 1) lsl lane)
      else begin
        let base = b.bwbase.(i) in
        mat_slot b base;
        b.wvals.(base + lane) <- v
      end)

let poke t (s : Signal.t) v =
  match Hashtbl.find_opt t.index_of s.Signal.id with
  | None -> raise Not_found
  | Some i -> (
    let v = Signal.mask_to_width s.Signal.width v in
    match t.batch with
    | None -> t.values.(i) <- v
    | Some b ->
      if b.brep.(i) then b.pvals.(i) <- - (v land 1) land b.lmask
      else begin
        let base = b.bwbase.(i) in
        b.wvals.(base) <- v;
        Bytes.set b.wuni base '\001'
      end)

let poke_ram_lane t lane (r : Signal.ram) addr v =
  check_lane t lane;
  if addr < 0 || addr >= r.Signal.size then
    invalid_arg "Sim.poke_ram: address out of range";
  let v = Signal.mask_to_width r.Signal.ram_width v in
  match t.batch with
  | None ->
    let contents = Hashtbl.find t.ram_state r.Signal.ram_id in
    (* a corrupted read-only ram must be restored by [reset], exactly
       like one rewritten through [load_ram] *)
    (match r.Signal.write_port with
    | None -> Hashtbl.replace t.dirty_rams r.Signal.ram_id ()
    | Some _ -> ());
    contents.(addr) <- v
  | Some b ->
    let k = Hashtbl.find b.bram_slot_of r.Signal.ram_id in
    mat_ram b k;
    b.brams.(k).((addr * b.lanes) + lane) <- v

let poke_ram t (r : Signal.ram) addr v =
  match t.batch with
  | None -> poke_ram_lane t 0 r addr v
  | Some b ->
    if addr < 0 || addr >= r.Signal.size then
      invalid_arg "Sim.poke_ram: address out of range";
    let k = Hashtbl.find b.bram_slot_of r.Signal.ram_id in
    let v = Signal.mask_to_width r.Signal.ram_width v in
    if b.bruni.(k) then b.brams.(k).(addr * b.lanes) <- v
    else Array.fill b.brams.(k) (addr * b.lanes) b.lanes v

let require_reg (s : Signal.t) =
  match s.Signal.node with
  | Signal.Reg _ -> ()
  | _ -> invalid_arg "Sim.force: only registers can carry stuck-at forces"

let force_scalar t (s : Signal.t) ~and_mask ~or_mask =
  require_reg s;
  let i = Hashtbl.find t.index_of s.Signal.id in
  let full = mask_of s.Signal.width in
  let entry = (i, and_mask land full, or_mask land full) in
  t.forces <- Array.append t.forces [| entry |];
  apply_forces t

(* Find or create the per-slot force entry (a handful per campaign trial
   at most, so a linear scan is fine). *)
let bforce_entry b ~slot ~width =
  let n = Array.length b.bforces in
  let rec find k =
    if k >= n then None
    else if b.bforces.(k).fslot = slot then Some b.bforces.(k)
    else find (k + 1)
  in
  match find 0 with
  | Some f -> f
  | None ->
    let packed = b.brep.(slot) in
    let full = mask_of width in
    let f =
      { fslot = slot; fpacked = packed;
        fbase = (if packed then -1 else b.bwbase.(slot));
        fand = Array.make b.lanes full;
        forr = Array.make b.lanes 0;
        fpand = (if packed then b.lmask else 0);
        fpor = 0;
        fwuni = true }
    in
    b.bforces <- Array.append b.bforces [| f |];
    f

(* keep the fast-path views in sync with the per-lane masks: the packed
   transposition for packed slots, the lanes-agree flag for word slots *)
let refresh_packed_masks b f =
  if f.fpacked then begin
    let pand = ref 0 and por = ref 0 in
    for k = 0 to b.lanes - 1 do
      pand := !pand lor ((f.fand.(k) land 1) lsl k);
      por := !por lor ((f.forr.(k) land 1) lsl k)
    done;
    f.fpand <- !pand;
    f.fpor <- !por
  end
  else begin
    let same = ref true in
    for k = 1 to b.lanes - 1 do
      if f.fand.(k) <> f.fand.(0) || f.forr.(k) <> f.forr.(0) then
        same := false
    done;
    f.fwuni <- !same
  end

let force_lane t lane (s : Signal.t) ~and_mask ~or_mask =
  check_lane t lane;
  match t.batch with
  | None -> force_scalar t s ~and_mask ~or_mask
  | Some b ->
    require_reg s;
    let i = Hashtbl.find t.index_of s.Signal.id in
    let full = mask_of s.Signal.width in
    let am = and_mask land full and om = or_mask land full in
    let f = bforce_entry b ~slot:i ~width:s.Signal.width in
    (* compose like sequential scalar forces: v&a1|o1 then &a2|o2 *)
    f.fand.(lane) <- f.fand.(lane) land am;
    f.forr.(lane) <- f.forr.(lane) land am lor om;
    refresh_packed_masks b f;
    apply_bforces b

let force t (s : Signal.t) ~and_mask ~or_mask =
  match t.batch with
  | None -> force_scalar t s ~and_mask ~or_mask
  | Some b ->
    for lane = 0 to b.lanes - 1 do
      force_lane t lane s ~and_mask ~or_mask
    done

let clear_forces t =
  t.forces <- [||];
  match t.batch with Some b -> b.bforces <- [||] | None -> ()
