type t = {
  circuit : Circuit.t;
  index_of : (int, int) Hashtbl.t;  (** signal id → dense index *)
  values : int array;
  reg_state : (int * Signal.reg) array;  (** dense index, reg info *)
  ram_state : (int, int array) Hashtbl.t;  (** ram id → contents *)
  input_values : (string, int) Hashtbl.t;
  input_widths : (string, int) Hashtbl.t;
  mutable clock : int;
  mutable program : (unit -> unit) array;
      (** compiled combinational schedule: one closure per non-register
          node, in topological order, reading/writing [values] through
          captured dense indices — no hashing on the hot path *)
}

(* Compile each combinational node into a closure over dense indices so the
   per-cycle loop performs no hashing or dispatch beyond one indirect call. *)
let compile t =
  let values = t.values in
  let idx (s : Signal.t) = Hashtbl.find t.index_of s.Signal.id in
  let steps =
    Array.to_list (Circuit.nodes t.circuit)
    |> List.filter_map (fun (s : Signal.t) ->
        let i = idx s in
        let w = s.Signal.width in
        let m = Signal.mask_to_width w in
        match s.Signal.node with
        | Signal.Reg _ -> None (* state element *)
        | Signal.Const c ->
          values.(i) <- c;
          None (* constants never change *)
        | Signal.Input n ->
          let tbl = t.input_values in
          Some (fun () -> values.(i) <- Hashtbl.find tbl n)
        | Signal.Unop (Signal.Not, a) ->
          let a = idx a in
          Some (fun () -> values.(i) <- m (lnot values.(a)))
        | Signal.Binop (op, a, b) -> (
          let aw = a.Signal.width in
          let a = idx a and b = idx b in
          match op with
          | Signal.Add -> Some (fun () -> values.(i) <- m (values.(a) + values.(b)))
          | Signal.Sub -> Some (fun () -> values.(i) <- m (values.(a) - values.(b)))
          | Signal.Mul -> Some (fun () -> values.(i) <- m (values.(a) * values.(b)))
          | Signal.And -> Some (fun () -> values.(i) <- values.(a) land values.(b))
          | Signal.Or -> Some (fun () -> values.(i) <- values.(a) lor values.(b))
          | Signal.Xor -> Some (fun () -> values.(i) <- values.(a) lxor values.(b))
          | Signal.Eq ->
            Some (fun () -> values.(i) <- (if values.(a) = values.(b) then 1 else 0))
          | Signal.Ult ->
            Some (fun () -> values.(i) <- (if values.(a) < values.(b) then 1 else 0))
          | Signal.Slt ->
            Some
              (fun () ->
                values.(i) <-
                  (if Signal.to_signed aw values.(a) < Signal.to_signed aw values.(b)
                   then 1
                   else 0))
          | Signal.Shl n -> Some (fun () -> values.(i) <- m (values.(a) lsl n))
          | Signal.Shr n -> Some (fun () -> values.(i) <- values.(a) lsr n)
          | Signal.Sra n ->
            Some (fun () -> values.(i) <- m (Signal.to_signed aw values.(a) asr n)))
        | Signal.Mux (c, x, y) ->
          let c = idx c and x = idx x and y = idx y in
          Some
            (fun () ->
              values.(i) <- (if values.(c) <> 0 then values.(x) else values.(y)))
        | Signal.Concat (hi, lo) ->
          let lw = lo.Signal.width in
          let hi = idx hi and lo = idx lo in
          Some (fun () -> values.(i) <- m ((values.(hi) lsl lw) lor values.(lo)))
        | Signal.Repl (a, n) ->
          let aw = a.Signal.width in
          let a = idx a in
          Some
            (fun () ->
              let v = values.(a) in
              let acc = ref 0 in
              for _ = 1 to n do
                acc := (!acc lsl aw) lor v
              done;
              values.(i) <- m !acc)
        | Signal.Select (a, _, lo) ->
          let a = idx a in
          Some (fun () -> values.(i) <- m (values.(a) lsr lo))
        | Signal.Wire r -> (
          match !r with
          | Some d ->
            let d = idx d in
            Some (fun () -> values.(i) <- values.(d))
          | None -> invalid_arg "Sim: unassigned wire")
        | Signal.Ram_read (ram, addr) ->
          let contents = Hashtbl.find t.ram_state ram.Signal.ram_id in
          let size = ram.Signal.size in
          let addr = idx addr in
          Some
            (fun () ->
              let a = values.(addr) in
              values.(i) <- (if a < size then contents.(a) else 0)))
  in
  Array.of_list steps

let create circuit =
  let nodes = Circuit.nodes circuit in
  let index_of = Hashtbl.create (Array.length nodes) in
  Array.iteri (fun i s -> Hashtbl.add index_of s.Signal.id i) nodes;
  let regs = ref [] in
  Array.iteri
    (fun i s ->
      match s.Signal.node with
      | Signal.Reg r -> regs := (i, r) :: !regs
      | _ -> ())
    nodes;
  let values = Array.make (Array.length nodes) 0 in
  List.iter (fun (i, r) -> values.(i) <- r.Signal.init) !regs;
  let ram_state = Hashtbl.create 8 in
  List.iter
    (fun r ->
      Hashtbl.add ram_state r.Signal.ram_id (Array.copy r.Signal.init_data))
    (Circuit.rams circuit);
  let input_values = Hashtbl.create 16 in
  let input_widths = Hashtbl.create 16 in
  List.iter
    (fun (n, w) ->
      Hashtbl.add input_values n 0;
      Hashtbl.add input_widths n w)
    (Circuit.inputs circuit);
  let t =
    { circuit; index_of; values;
      reg_state = Array.of_list (List.rev !regs);
      ram_state; input_values; input_widths; clock = 0; program = [||] }
  in
  t.program <- compile t;
  t

let reset t =
  Array.iteri
    (fun i (s : Signal.t) ->
      match s.Signal.node with
      | Signal.Reg r -> t.values.(i) <- r.Signal.init
      | Signal.Const c -> t.values.(i) <- c (* constants are set once *)
      | _ -> t.values.(i) <- 0)
    (Circuit.nodes t.circuit);
  List.iter
    (fun r ->
      let c = Hashtbl.find t.ram_state r.Signal.ram_id in
      Array.blit r.Signal.init_data 0 c 0 r.Signal.size)
    (Circuit.rams t.circuit);
  Hashtbl.iter
    (fun k _ -> Hashtbl.replace t.input_values k 0)
    (Hashtbl.copy t.input_values);
  t.clock <- 0

let set_input t name v =
  match Hashtbl.find_opt t.input_widths name with
  | None -> raise Not_found
  | Some w -> Hashtbl.replace t.input_values name (Signal.mask_to_width w v)

let value t (s : Signal.t) = t.values.(Hashtbl.find t.index_of s.Signal.id)

let settle t =
  let program = t.program in
  for i = 0 to Array.length program - 1 do
    (Array.unsafe_get program i) ()
  done

let latch t =
  let v = value t in
  (* compute all next values first, then commit (registers see old values) *)
  let nexts =
    Array.map
      (fun (i, (r : Signal.reg)) ->
        let q = t.values.(i) in
        let next =
          match r.Signal.clear with
          | Some c when v c <> 0 -> r.Signal.clear_to
          | Some _ | None -> (
            match r.Signal.enable with
            | Some e when v e = 0 -> q
            | Some _ | None -> v r.Signal.d)
        in
        (i, next))
      t.reg_state
  in
  List.iter
    (fun (ram : Signal.ram) ->
      match ram.Signal.write_port with
      | None -> ()
      | Some wp ->
        if v wp.Signal.we <> 0 then begin
          let a = v wp.Signal.waddr in
          if a < ram.Signal.size then begin
            let contents = Hashtbl.find t.ram_state ram.Signal.ram_id in
            contents.(a) <- v wp.Signal.wdata
          end
        end)
    (Circuit.rams t.circuit);
  Array.iter (fun (i, next) -> t.values.(i) <- next) nexts;
  t.clock <- t.clock + 1

let cycle t =
  settle t;
  latch t

let cycles t n =
  for _ = 1 to n do
    cycle t
  done

let find_output t name =
  match List.assoc_opt name (Circuit.outputs t.circuit) with
  | Some s -> s
  | None -> raise Not_found

let peek t s =
  match Hashtbl.find_opt t.index_of s.Signal.id with
  | Some i -> t.values.(i)
  | None -> raise Not_found

let peek_signed t s = Signal.to_signed s.Signal.width (peek t s)
let output t name = peek t (find_output t name)

let output_signed t name =
  let s = find_output t name in
  Signal.to_signed s.Signal.width (peek t s)

let ram_contents t (r : Signal.ram) =
  Array.copy (Hashtbl.find t.ram_state r.Signal.ram_id)

let load_ram t (r : Signal.ram) data =
  if Array.length data <> r.Signal.size then
    invalid_arg "Sim.load_ram: size mismatch";
  let contents = Hashtbl.find t.ram_state r.Signal.ram_id in
  Array.iteri
    (fun i v -> contents.(i) <- Signal.mask_to_width r.Signal.ram_width v)
    data

let cycle_count t = t.clock
