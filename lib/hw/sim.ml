(* Two execution backends over one simulator state:

   - [`Tape] (default): the netlist is compiled at [create] time into a flat
     int-array instruction tape (opcode + dense operand indices + immediates)
     evaluated by a tight match loop.  The sequential phase is compiled too:
     register next-state and ram write ports are pre-resolved to dense
     indices, so [latch] performs zero hashing and zero allocation per cycle.

   - [`Closure]: the original interpreter — one closure per combinational
     node, and a latch that resolves register operands through the
     signal-id hash table each cycle.  Kept as an independently implemented
     reference for differential testing and as the baseline the benchmark
     gate reports speedups against. *)

type backend = [ `Closure | `Tape ]

(* Compiled register: dense [values] indices, -1 for an absent control. *)
type creg = {
  self : int;
  d : int;
  en : int;
  clr : int;
  clear_to : int;
  rinit : int;
}

(* Compiled ram write port. [wcontents] aliases the array in [ram_state];
   [reset] refills that array in place so the alias stays valid. *)
type cwport = {
  we : int;
  waddr : int;
  wdata : int;
  wsize : int;
  wcontents : int array;
}

type t = {
  circuit : Circuit.t;
  backend : backend;
  index_of : (int, int) Hashtbl.t;  (** signal id → dense index *)
  values : int array;
  (* compiled combinational phase *)
  code : int array;  (** instruction tape ([`Tape] only) *)
  tape_rams : int array array;  (** dense ram slot → contents *)
  program : (unit -> unit) array;  (** closure schedule ([`Closure] only) *)
  (* compiled sequential phase *)
  cregs : creg array;
  reg_next : int array;  (** latch scratch, one slot per register *)
  cwports : cwport array;
  reg_state : (int * Signal.reg) array;  (** reference-latch view *)
  (* state and cached lookups *)
  ram_state : (int, int array) Hashtbl.t;  (** ram id → contents *)
  writable_inits : (int array * int array) array;
      (** contents, init_data for every ram with a write port: the only
          rams [reset] must restore (plus any the testbench dirtied) *)
  ram_init_of : (int, int array) Hashtbl.t;  (** ram id → init_data *)
  dirty_rams : (int, unit) Hashtbl.t;
      (** read-only rams rewritten through {!load_ram} *)
  input_slots : int array;
  input_slot_of : (string, int * int) Hashtbl.t;  (** name → slot, width *)
  out_slot_of : (string, int * int) Hashtbl.t;  (** name → dense idx, width *)
  init_image : int array;
      (** [values] as first constructed (constants, folded slots, register
          init values) — [reset] restores it with one blit *)
  mutable clock : int;
  mutable forces : (int * int * int) array;
      (** (register slot, and_mask, or_mask) stuck-at forces, re-applied
          around every settle/latch; empty in fault-free operation *)
}

let backend t = t.backend

(* [land]-able immediates: a full-width (62-bit) signal needs no masking,
   exactly like Signal.mask_to_width. *)
let mask_of w = if w >= 62 then -1 else (1 lsl w) - 1

(* Biased-comparison sign bit: (v lxor sign) orders like to_signed v.  Zero
   (the identity) for full-width signals, where to_signed is the identity. *)
let sign_of w = if w >= 62 then 0 else 1 lsl (w - 1)

(* ------------------------------------------------------------------ *)
(* Instruction tape.                                                   *)

let op_input = 0 (* dst slot *)
let op_not = 1 (* dst a mask *)
let op_add = 2 (* dst a b mask *)
let op_sub = 3 (* dst a b mask *)
let op_mul = 4 (* dst a b mask *)
let op_and = 5 (* dst a b *)
let op_or = 6 (* dst a b *)
let op_xor = 7 (* dst a b *)
let op_eq = 8 (* dst a b *)
let op_ult = 9 (* dst a b *)
let op_slt = 10 (* dst a b sign *)
let op_shl = 11 (* dst a n mask *)
let op_shr = 12 (* dst a n *)
let op_sra = 13 (* dst a n sign mask *)
let op_mux = 14 (* dst c x y *)
let op_concat = 15 (* dst hi lo lw mask *)
let op_repl = 16 (* dst a n aw mask *)
let op_select = 17 (* dst a lo mask *)
let op_copy = 18 (* dst d *)
let op_ramrd = 19 (* dst ram addr size *)

(* Immediate-operand variants, emitted when one operand is a compile-time
   constant: the constant rides in the tape (a sequential read) instead of
   costing a second random [values] load. *)
let op_addi = 20 (* dst a imm mask *)
let op_subi = 21 (* dst a imm mask : a - imm *)
let op_isub = 22 (* dst a imm mask : imm - a *)
let op_muli = 23 (* dst a imm mask *)
let op_andi = 24 (* dst a imm *)
let op_ori = 25 (* dst a imm *)
let op_xori = 26 (* dst a imm *)
let op_eqi = 27 (* dst a imm *)
let op_ulti = 28 (* dst a imm : a < imm *)
let op_iult = 29 (* dst a imm : imm < a *)
let op_slti = 30 (* dst a sign imm' : (a lxor sign) < imm' *)
let op_islt = 31 (* dst a sign imm' : imm' < (a lxor sign) *)
let op_mux_ix = 32 (* dst c imm y : c <> 0 ? imm : values.(y) *)
let op_mux_iy = 33 (* dst c x imm *)
let op_shl_ori = 34 (* dst a sh imm mask : ((a lsl sh) land mask) lor imm *)

let is_pow2 v = v > 0 && v land (v - 1) = 0

let log2 v =
  let k = ref 0 in
  let x = ref v in
  while !x > 1 do
    incr k;
    x := !x lsr 1
  done;
  !k

(* Compile the combinational nodes to the instruction tape, running a
   constant-folding / peephole pass as it goes:

   - a node whose operands are all compile-time constants is evaluated now
     and preloaded into [values] (returned in the folded list) — no
     instruction is emitted;
   - a node provably equal to one of its operands (wire, zero-extension,
     [x + 0], [x * 1], mux with constant select, ...) is {e aliased}: its
     entry in [index_of] is redirected to the operand's slot, so consumers
     and [peek] read the operand directly and no instruction is emitted;
   - a node with one constant operand uses an immediate-form opcode.

   Mutates [index_of] (alias redirection) — the caller must resolve
   registers, write ports and outputs through [index_of] {e after} this
   pass.  Width invariants relied on (enforced by {!Signal}): binop
   operands and result share one width; mux branches match the result
   width; widths never exceed 62. *)
let compile_tape nodes ~index_of ~slot_of_input ~ram_slot =
  let idx (s : Signal.t) = Hashtbl.find index_of s.Signal.id in
  let known : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let kv i = Hashtbl.find_opt known i in
  let folded = ref [] in
  let len = ref 0 in
  let buf = ref (Array.make 1024 0) in
  let push v =
    if !len = Array.length !buf then begin
      let bigger = Array.make (2 * !len) 0 in
      Array.blit !buf 0 bigger 0 !len;
      buf := bigger
    end;
    !buf.(!len) <- v;
    incr len
  in
  Array.iter
    (fun (s : Signal.t) ->
      let i = idx s in
      let w = s.Signal.width in
      let m = Signal.mask_to_width w in
      (* node evaluates to the constant [v]: preload, emit nothing *)
      let fold v =
        Hashtbl.replace known i v;
        folded := (i, v) :: !folded
      in
      (* node always equals the value in slot [j]: redirect reads *)
      let alias j =
        Hashtbl.replace index_of s.Signal.id j;
        match kv j with Some v -> Hashtbl.replace known i v | None -> ()
      in
      match s.Signal.node with
      | Signal.Const c -> Hashtbl.replace known i c (* preloaded by create *)
      | Signal.Reg _ -> ()
      | Signal.Input n -> push op_input; push i; push (slot_of_input n)
      | Signal.Unop (Signal.Not, a) -> (
        let ai = idx a in
        match kv ai with
        | Some v -> fold (m (lnot v))
        | None -> push op_not; push i; push ai; push (mask_of w))
      | Signal.Binop (op, a, b) -> (
        let aw = a.Signal.width in
        let ai = idx a and bi = idx b in
        let ka = kv ai and kb = kv bi in
        let emit2 o x imm = push o; push i; push x; push imm in
        let emit3 o x imm extra = push o; push i; push x; push imm; push extra
        in
        match op, ka, kb with
        (* --- both operands constant: evaluate at compile time --- *)
        | Signal.Add, Some va, Some vb -> fold (m (va + vb))
        | Signal.Sub, Some va, Some vb -> fold (m (va - vb))
        | Signal.Mul, Some va, Some vb -> fold (m (va * vb))
        | Signal.And, Some va, Some vb -> fold (va land vb)
        | Signal.Or, Some va, Some vb -> fold (va lor vb)
        | Signal.Xor, Some va, Some vb -> fold (va lxor vb)
        | Signal.Eq, Some va, Some vb -> fold (if va = vb then 1 else 0)
        | Signal.Ult, Some va, Some vb -> fold (if va < vb then 1 else 0)
        | Signal.Slt, Some va, Some vb ->
          fold
            (if Signal.to_signed aw va < Signal.to_signed aw vb then 1 else 0)
        | Signal.Shl n, Some va, _ -> fold (m (va lsl n))
        | Signal.Shr n, Some va, _ -> fold (va lsr n)
        | Signal.Sra n, Some va, _ -> fold (m (Signal.to_signed aw va asr n))
        (* --- identities (operand and result widths are equal) --- *)
        | Signal.Add, Some 0, None -> alias bi
        | Signal.Add, None, Some 0 -> alias ai
        | (Signal.Sub | Signal.Or | Signal.Xor), None, Some 0 -> alias ai
        | (Signal.Or | Signal.Xor), Some 0, None -> alias bi
        | Signal.Mul, Some 0, None | Signal.Mul, None, Some 0 -> fold 0
        | Signal.And, Some 0, None | Signal.And, None, Some 0 -> fold 0
        | Signal.Mul, Some 1, None -> alias bi
        | Signal.Mul, None, Some 1 -> alias ai
        | Signal.And, Some v, None when v = mask_of w -> alias bi
        | Signal.And, None, Some v when v = mask_of w -> alias ai
        | Signal.Ult, None, Some 0 -> fold 0 (* nothing is < 0 unsigned *)
        (* --- one constant operand: immediate form --- *)
        | Signal.Add, Some v, None -> emit3 op_addi bi v (mask_of w)
        | Signal.Add, None, Some v -> emit3 op_addi ai v (mask_of w)
        | Signal.Sub, None, Some v -> emit3 op_subi ai v (mask_of w)
        | Signal.Sub, Some v, None -> emit3 op_isub bi v (mask_of w)
        | Signal.Mul, Some v, None when is_pow2 v ->
          emit3 op_shl bi (log2 v) (mask_of w)
        | Signal.Mul, None, Some v when is_pow2 v ->
          emit3 op_shl ai (log2 v) (mask_of w)
        | Signal.Mul, Some v, None -> emit3 op_muli bi v (mask_of w)
        | Signal.Mul, None, Some v -> emit3 op_muli ai v (mask_of w)
        | Signal.And, Some v, None -> emit2 op_andi bi v
        | Signal.And, None, Some v -> emit2 op_andi ai v
        | Signal.Or, Some v, None -> emit2 op_ori bi v
        | Signal.Or, None, Some v -> emit2 op_ori ai v
        | Signal.Xor, Some v, None -> emit2 op_xori bi v
        | Signal.Xor, None, Some v -> emit2 op_xori ai v
        | Signal.Eq, Some v, None -> emit2 op_eqi bi v
        | Signal.Eq, None, Some v -> emit2 op_eqi ai v
        | Signal.Ult, None, Some v -> emit2 op_ulti ai v
        | Signal.Ult, Some v, None -> emit2 op_iult bi v
        | Signal.Slt, None, Some v ->
          let sg = sign_of aw in
          emit3 op_slti ai sg (v lxor sg)
        | Signal.Slt, Some v, None ->
          let sg = sign_of aw in
          emit3 op_islt bi sg (v lxor sg)
        (* --- general forms --- *)
        | Signal.Add, None, None ->
          push op_add; push i; push ai; push bi; push (mask_of w)
        | Signal.Sub, None, None ->
          push op_sub; push i; push ai; push bi; push (mask_of w)
        | Signal.Mul, None, None ->
          push op_mul; push i; push ai; push bi; push (mask_of w)
        | Signal.And, None, None -> push op_and; push i; push ai; push bi
        | Signal.Or, None, None -> push op_or; push i; push ai; push bi
        | Signal.Xor, None, None -> push op_xor; push i; push ai; push bi
        | Signal.Eq, None, None -> push op_eq; push i; push ai; push bi
        | Signal.Ult, None, None -> push op_ult; push i; push ai; push bi
        | Signal.Slt, None, None ->
          push op_slt; push i; push ai; push bi; push (sign_of aw)
        | Signal.Shl n, None, _ ->
          if n = 0 then alias ai
          else emit3 op_shl ai n (mask_of w)
        | Signal.Shr n, None, _ ->
          if n = 0 then alias ai else emit2 op_shr ai n
        | Signal.Sra n, None, _ ->
          if n = 0 then alias ai
          else begin
            push op_sra; push i; push ai; push n; push (sign_of aw);
            push (mask_of w)
          end)
      | Signal.Mux (c, x, y) -> (
        let ci = idx c and xi = idx x and yi = idx y in
        match kv ci with
        | Some vc -> alias (if vc <> 0 then xi else yi)
        | None -> (
          if xi = yi then alias xi
          else
            match kv xi, kv yi with
            | Some vx, Some vy when vx = vy -> fold vx
            | Some vx, _ ->
              push op_mux_ix; push i; push ci; push vx; push yi
            | None, Some vy ->
              push op_mux_iy; push i; push ci; push xi; push vy
            | None, None ->
              push op_mux; push i; push ci; push xi; push yi))
      | Signal.Concat (hi, lo) -> (
        let lw = lo.Signal.width in
        let hi_i = idx hi and lo_i = idx lo in
        match kv hi_i, kv lo_i with
        | Some vh, Some vl -> fold (m ((vh lsl lw) lor vl))
        | Some vh, None ->
          let imm = m (vh lsl lw) in
          if imm = 0 then alias lo_i (* zero-extension *)
          else begin push op_ori; push i; push lo_i; push imm end
        | None, Some vl ->
          push op_shl_ori; push i; push hi_i; push lw; push vl;
          push (mask_of w)
        | None, None ->
          push op_concat; push i; push hi_i; push lo_i; push lw;
          push (mask_of w))
      | Signal.Repl (a, n) -> (
        let ai = idx a in
        let aw = a.Signal.width in
        match kv ai with
        | Some v ->
          let acc = ref 0 in
          for _ = 1 to n do
            acc := (!acc lsl aw) lor v
          done;
          fold (m !acc)
        | None ->
          push op_repl; push i; push ai; push n; push aw; push (mask_of w))
      | Signal.Select (a, _, lo) -> (
        let ai = idx a in
        match kv ai with
        | Some v -> fold (m (v lsr lo))
        | None ->
          if lo = 0 && w = a.Signal.width then alias ai
          else begin
            push op_select; push i; push ai; push lo; push (mask_of w)
          end)
      | Signal.Wire r -> (
        match !r with
        | Some direct ->
          (* follow the wire chain to its non-wire driver and alias; a
             degenerate wire cycle falls back to an explicit copy *)
          let rec driver_of (n : Signal.t) seen =
            match n.Signal.node with
            | Signal.Wire { contents = Some d }
              when not (List.mem n.Signal.id seen) ->
              driver_of d (n.Signal.id :: seen)
            | _ -> n
          in
          let d = driver_of s [] in
          if d != s then alias (idx d)
          else begin push op_copy; push i; push (idx direct) end
        | None -> invalid_arg "Sim: unassigned wire")
      | Signal.Ram_read (ram, addr) ->
        push op_ramrd; push i; push (ram_slot ram.Signal.ram_id);
        push (idx addr); push ram.Signal.size)
    nodes;
  let code0 = Array.sub !buf 0 !len in
  (* Post-pass: common-subexpression elimination.  Every instruction runs
     on every settle, so two instructions with the same opcode, immediates
     and (remapped) value operands always hold equal results — the later
     one is dropped and its slot redirected to the earlier one's.  The
     tape's dst field is always at offset 1; [val_fields] lists which of
     the remaining fields are [values] indices (as opposed to immediates,
     input slots or ram slots). *)
  let stride_of op =
    match op with
    | 0 | 18 -> 3
    | 1 | 5 | 6 | 7 | 8 | 9 | 12 | 24 | 25 | 26 | 27 | 28 | 29 -> 4
    | 13 | 15 | 16 | 34 -> 6
    | _ -> 5
  in
  let val_fields op =
    match op with
    | 0 -> []
    | 14 -> [ 2; 3; 4 ]
    | 2 | 3 | 4 | 5 | 6 | 7 | 8 | 9 | 10 | 15 -> [ 2; 3 ]
    | 19 -> [ 3 ]
    | 32 -> [ 2; 4 ]
    | 33 -> [ 2; 3 ]
    | _ -> [ 2 ]
  in
  let n_nodes = Array.length nodes in
  let remap = Array.init n_nodes (fun k -> k) in
  let seen = Hashtbl.create 256 in
  len := 0;
  let p = ref 0 in
  while !p < Array.length code0 do
    let op = code0.(!p) in
    let st = stride_of op in
    let inst = Array.sub code0 !p st in
    List.iter (fun f -> inst.(f) <- remap.(inst.(f))) (val_fields op);
    let key =
      op :: List.filteri (fun k _ -> k > 1) (Array.to_list inst)
    in
    (match Hashtbl.find_opt seen key with
    | Some prior -> remap.(inst.(1)) <- prior
    | None ->
      Hashtbl.add seen key inst.(1);
      Array.iter push inst);
    p := !p + st
  done;
  (* point aliased / eliminated nodes at the surviving slots *)
  let updates =
    Hashtbl.fold
      (fun id di acc -> if remap.(di) <> di then (id, remap.(di)) :: acc
        else acc)
      index_of []
  in
  List.iter (fun (id, di) -> Hashtbl.replace index_of id di) updates;
  (Array.sub !buf 0 !len, Array.of_list (List.rev !folded))

let exec_tape t =
  let code = t.code in
  let values = t.values in
  let slots = t.input_slots in
  let rams = t.tape_rams in
  let n = Array.length code in
  let pc = ref 0 in
  while !pc < n do
    let p = !pc in
    let d = Array.unsafe_get code (p + 1) in
    match Array.unsafe_get code p with
    | 0 (* input *) ->
      Array.unsafe_set values d
        (Array.unsafe_get slots (Array.unsafe_get code (p + 2)));
      pc := p + 3
    | 1 (* not *) ->
      Array.unsafe_set values d
        (lnot (Array.unsafe_get values (Array.unsafe_get code (p + 2)))
         land Array.unsafe_get code (p + 3));
      pc := p + 4
    | 2 (* add *) ->
      Array.unsafe_set values d
        ((Array.unsafe_get values (Array.unsafe_get code (p + 2))
          + Array.unsafe_get values (Array.unsafe_get code (p + 3)))
         land Array.unsafe_get code (p + 4));
      pc := p + 5
    | 3 (* sub *) ->
      Array.unsafe_set values d
        ((Array.unsafe_get values (Array.unsafe_get code (p + 2))
          - Array.unsafe_get values (Array.unsafe_get code (p + 3)))
         land Array.unsafe_get code (p + 4));
      pc := p + 5
    | 4 (* mul *) ->
      Array.unsafe_set values d
        (Array.unsafe_get values (Array.unsafe_get code (p + 2))
         * Array.unsafe_get values (Array.unsafe_get code (p + 3))
         land Array.unsafe_get code (p + 4));
      pc := p + 5
    | 5 (* and *) ->
      Array.unsafe_set values d
        (Array.unsafe_get values (Array.unsafe_get code (p + 2))
         land Array.unsafe_get values (Array.unsafe_get code (p + 3)));
      pc := p + 4
    | 6 (* or *) ->
      Array.unsafe_set values d
        (Array.unsafe_get values (Array.unsafe_get code (p + 2))
         lor Array.unsafe_get values (Array.unsafe_get code (p + 3)));
      pc := p + 4
    | 7 (* xor *) ->
      Array.unsafe_set values d
        (Array.unsafe_get values (Array.unsafe_get code (p + 2))
         lxor Array.unsafe_get values (Array.unsafe_get code (p + 3)));
      pc := p + 4
    | 8 (* eq *) ->
      Array.unsafe_set values d
        (if
           Array.unsafe_get values (Array.unsafe_get code (p + 2))
           = Array.unsafe_get values (Array.unsafe_get code (p + 3))
         then 1
         else 0);
      pc := p + 4
    | 9 (* ult *) ->
      Array.unsafe_set values d
        (if
           Array.unsafe_get values (Array.unsafe_get code (p + 2))
           < Array.unsafe_get values (Array.unsafe_get code (p + 3))
         then 1
         else 0);
      pc := p + 4
    | 10 (* slt *) ->
      let s = Array.unsafe_get code (p + 4) in
      Array.unsafe_set values d
        (if
           Array.unsafe_get values (Array.unsafe_get code (p + 2)) lxor s
           < Array.unsafe_get values (Array.unsafe_get code (p + 3)) lxor s
         then 1
         else 0);
      pc := p + 5
    | 11 (* shl *) ->
      Array.unsafe_set values d
        (Array.unsafe_get values (Array.unsafe_get code (p + 2))
           lsl Array.unsafe_get code (p + 3)
         land Array.unsafe_get code (p + 4));
      pc := p + 5
    | 12 (* shr *) ->
      Array.unsafe_set values d
        (Array.unsafe_get values (Array.unsafe_get code (p + 2))
         lsr Array.unsafe_get code (p + 3));
      pc := p + 4
    | 13 (* sra *) ->
      let s = Array.unsafe_get code (p + 4) in
      Array.unsafe_set values d
        (((Array.unsafe_get values (Array.unsafe_get code (p + 2)) lxor s) - s)
           asr Array.unsafe_get code (p + 3)
         land Array.unsafe_get code (p + 5));
      pc := p + 6
    | 14 (* mux *) ->
      Array.unsafe_set values d
        (Array.unsafe_get values
           (if Array.unsafe_get values (Array.unsafe_get code (p + 2)) <> 0
            then Array.unsafe_get code (p + 3)
            else Array.unsafe_get code (p + 4)));
      pc := p + 5
    | 15 (* concat *) ->
      Array.unsafe_set values d
        ((Array.unsafe_get values (Array.unsafe_get code (p + 2))
            lsl Array.unsafe_get code (p + 4)
          lor Array.unsafe_get values (Array.unsafe_get code (p + 3)))
         land Array.unsafe_get code (p + 5));
      pc := p + 6
    | 16 (* repl *) ->
      let v = Array.unsafe_get values (Array.unsafe_get code (p + 2)) in
      let times = Array.unsafe_get code (p + 3) in
      let aw = Array.unsafe_get code (p + 4) in
      let acc = ref 0 in
      for _ = 1 to times do
        acc := (!acc lsl aw) lor v
      done;
      Array.unsafe_set values d (!acc land Array.unsafe_get code (p + 5));
      pc := p + 6
    | 17 (* select *) ->
      Array.unsafe_set values d
        (Array.unsafe_get values (Array.unsafe_get code (p + 2))
           lsr Array.unsafe_get code (p + 3)
         land Array.unsafe_get code (p + 4));
      pc := p + 5
    | 18 (* copy *) ->
      Array.unsafe_set values d
        (Array.unsafe_get values (Array.unsafe_get code (p + 2)));
      pc := p + 3
    | 19 (* ramrd *) ->
      let a = Array.unsafe_get values (Array.unsafe_get code (p + 3)) in
      Array.unsafe_set values d
        (if a < Array.unsafe_get code (p + 4) then
           (Array.unsafe_get rams (Array.unsafe_get code (p + 2))).(a)
         else 0);
      pc := p + 5
    | 20 (* addi *) ->
      Array.unsafe_set values d
        ((Array.unsafe_get values (Array.unsafe_get code (p + 2))
          + Array.unsafe_get code (p + 3))
         land Array.unsafe_get code (p + 4));
      pc := p + 5
    | 21 (* subi *) ->
      Array.unsafe_set values d
        ((Array.unsafe_get values (Array.unsafe_get code (p + 2))
          - Array.unsafe_get code (p + 3))
         land Array.unsafe_get code (p + 4));
      pc := p + 5
    | 22 (* isub *) ->
      Array.unsafe_set values d
        ((Array.unsafe_get code (p + 3)
          - Array.unsafe_get values (Array.unsafe_get code (p + 2)))
         land Array.unsafe_get code (p + 4));
      pc := p + 5
    | 23 (* muli *) ->
      Array.unsafe_set values d
        (Array.unsafe_get values (Array.unsafe_get code (p + 2))
         * Array.unsafe_get code (p + 3)
         land Array.unsafe_get code (p + 4));
      pc := p + 5
    | 24 (* andi *) ->
      Array.unsafe_set values d
        (Array.unsafe_get values (Array.unsafe_get code (p + 2))
         land Array.unsafe_get code (p + 3));
      pc := p + 4
    | 25 (* ori *) ->
      Array.unsafe_set values d
        (Array.unsafe_get values (Array.unsafe_get code (p + 2))
         lor Array.unsafe_get code (p + 3));
      pc := p + 4
    | 26 (* xori *) ->
      Array.unsafe_set values d
        (Array.unsafe_get values (Array.unsafe_get code (p + 2))
         lxor Array.unsafe_get code (p + 3));
      pc := p + 4
    | 27 (* eqi *) ->
      Array.unsafe_set values d
        (if
           Array.unsafe_get values (Array.unsafe_get code (p + 2))
           = Array.unsafe_get code (p + 3)
         then 1
         else 0);
      pc := p + 4
    | 28 (* ulti *) ->
      Array.unsafe_set values d
        (if
           Array.unsafe_get values (Array.unsafe_get code (p + 2))
           < Array.unsafe_get code (p + 3)
         then 1
         else 0);
      pc := p + 4
    | 29 (* iult *) ->
      Array.unsafe_set values d
        (if
           Array.unsafe_get code (p + 3)
           < Array.unsafe_get values (Array.unsafe_get code (p + 2))
         then 1
         else 0);
      pc := p + 4
    | 30 (* slti *) ->
      Array.unsafe_set values d
        (if
           Array.unsafe_get values (Array.unsafe_get code (p + 2))
           lxor Array.unsafe_get code (p + 3)
           < Array.unsafe_get code (p + 4)
         then 1
         else 0);
      pc := p + 5
    | 31 (* islt *) ->
      Array.unsafe_set values d
        (if
           Array.unsafe_get code (p + 4)
           < Array.unsafe_get values (Array.unsafe_get code (p + 2))
             lxor Array.unsafe_get code (p + 3)
         then 1
         else 0);
      pc := p + 5
    | 32 (* mux_ix *) ->
      Array.unsafe_set values d
        (if Array.unsafe_get values (Array.unsafe_get code (p + 2)) <> 0
         then Array.unsafe_get code (p + 3)
         else Array.unsafe_get values (Array.unsafe_get code (p + 4)));
      pc := p + 5
    | 33 (* mux_iy *) ->
      Array.unsafe_set values d
        (if Array.unsafe_get values (Array.unsafe_get code (p + 2)) <> 0
         then Array.unsafe_get values (Array.unsafe_get code (p + 3))
         else Array.unsafe_get code (p + 4));
      pc := p + 5
    | _ (* shl_ori *) ->
      Array.unsafe_set values d
        (Array.unsafe_get values (Array.unsafe_get code (p + 2))
           lsl Array.unsafe_get code (p + 3)
         land Array.unsafe_get code (p + 5)
         lor Array.unsafe_get code (p + 4));
      pc := p + 6
  done

(* ------------------------------------------------------------------ *)
(* Reference interpreter: one closure per combinational node.          *)

let compile_closures nodes ~idx ~slot_of_input ~values ~input_slots
    ~ram_contents =
  let steps =
    Array.to_list nodes
    |> List.filter_map (fun (s : Signal.t) ->
        let i = idx s in
        let w = s.Signal.width in
        let m = Signal.mask_to_width w in
        match s.Signal.node with
        | Signal.Reg _ | Signal.Const _ -> None (* sequential / preloaded *)
        | Signal.Input n ->
          let slot = slot_of_input n in
          Some (fun () -> values.(i) <- input_slots.(slot))
        | Signal.Unop (Signal.Not, a) ->
          let a = idx a in
          Some (fun () -> values.(i) <- m (lnot values.(a)))
        | Signal.Binop (op, a, b) -> (
          let aw = a.Signal.width in
          let a = idx a and b = idx b in
          match op with
          | Signal.Add -> Some (fun () -> values.(i) <- m (values.(a) + values.(b)))
          | Signal.Sub -> Some (fun () -> values.(i) <- m (values.(a) - values.(b)))
          | Signal.Mul -> Some (fun () -> values.(i) <- m (values.(a) * values.(b)))
          | Signal.And -> Some (fun () -> values.(i) <- values.(a) land values.(b))
          | Signal.Or -> Some (fun () -> values.(i) <- values.(a) lor values.(b))
          | Signal.Xor -> Some (fun () -> values.(i) <- values.(a) lxor values.(b))
          | Signal.Eq ->
            Some (fun () -> values.(i) <- (if values.(a) = values.(b) then 1 else 0))
          | Signal.Ult ->
            Some (fun () -> values.(i) <- (if values.(a) < values.(b) then 1 else 0))
          | Signal.Slt ->
            Some
              (fun () ->
                values.(i) <-
                  (if Signal.to_signed aw values.(a) < Signal.to_signed aw values.(b)
                   then 1
                   else 0))
          | Signal.Shl n -> Some (fun () -> values.(i) <- m (values.(a) lsl n))
          | Signal.Shr n -> Some (fun () -> values.(i) <- values.(a) lsr n)
          | Signal.Sra n ->
            Some (fun () -> values.(i) <- m (Signal.to_signed aw values.(a) asr n)))
        | Signal.Mux (c, x, y) ->
          let c = idx c and x = idx x and y = idx y in
          Some
            (fun () ->
              values.(i) <- (if values.(c) <> 0 then values.(x) else values.(y)))
        | Signal.Concat (hi, lo) ->
          let lw = lo.Signal.width in
          let hi = idx hi and lo = idx lo in
          Some (fun () -> values.(i) <- m ((values.(hi) lsl lw) lor values.(lo)))
        | Signal.Repl (a, n) ->
          let aw = a.Signal.width in
          let a = idx a in
          Some
            (fun () ->
              let v = values.(a) in
              let acc = ref 0 in
              for _ = 1 to n do
                acc := (!acc lsl aw) lor v
              done;
              values.(i) <- m !acc)
        | Signal.Select (a, _, lo) ->
          let a = idx a in
          Some (fun () -> values.(i) <- m (values.(a) lsr lo))
        | Signal.Wire r -> (
          match !r with
          | Some d ->
            let d = idx d in
            Some (fun () -> values.(i) <- values.(d))
          | None -> invalid_arg "Sim: unassigned wire")
        | Signal.Ram_read (ram, addr) ->
          let contents = ram_contents ram.Signal.ram_id in
          let size = ram.Signal.size in
          let addr = idx addr in
          Some
            (fun () ->
              let a = values.(addr) in
              values.(i) <- (if a < size then contents.(a) else 0)))
  in
  Array.of_list steps

(* ------------------------------------------------------------------ *)

let create ?(backend = `Tape) circuit =
  let nodes = Circuit.nodes circuit in
  let n = Array.length nodes in
  let index_of = Hashtbl.create (max 16 n) in
  Array.iteri (fun i s -> Hashtbl.add index_of s.Signal.id i) nodes;
  let values = Array.make (max 1 n) 0 in
  (* inputs: one dense slot per distinct name *)
  let inputs = Circuit.inputs circuit in
  let input_slots = Array.make (max 1 (List.length inputs)) 0 in
  let input_slot_of = Hashtbl.create 16 in
  List.iteri (fun k (nm, w) -> Hashtbl.add input_slot_of nm (k, w)) inputs;
  let slot_of_input nm = fst (Hashtbl.find input_slot_of nm) in
  (* rams: hash table keyed by id for the testbench API, dense slots for
     the tape *)
  let rams = Circuit.rams circuit in
  let ram_state = Hashtbl.create 8 in
  let tape_rams = Array.make (max 1 (List.length rams)) [||] in
  let ram_slot_of = Hashtbl.create 8 in
  List.iteri
    (fun k (r : Signal.ram) ->
      let contents = Array.copy r.Signal.init_data in
      Hashtbl.add ram_state r.Signal.ram_id contents;
      Hashtbl.add ram_slot_of r.Signal.ram_id k;
      tape_rams.(k) <- contents)
    rams;
  (* Compile the tape first: its folding pass redirects aliased nodes in
     [index_of], and everything below (registers, write ports, outputs)
     must resolve through the redirected table. *)
  let code, folded =
    match backend with
    | `Tape ->
      compile_tape nodes ~index_of ~slot_of_input
        ~ram_slot:(Hashtbl.find ram_slot_of)
    | `Closure -> ([||], [||])
  in
  let idx (s : Signal.t) = Hashtbl.find index_of s.Signal.id in
  (* registers *)
  let regs = ref [] in
  Array.iteri
    (fun i s ->
      match s.Signal.node with
      | Signal.Reg r -> regs := (i, r) :: !regs
      | _ -> ())
    nodes;
  let reg_state = Array.of_list (List.rev !regs) in
  let cregs =
    Array.map
      (fun (i, (r : Signal.reg)) ->
        { self = i;
          d = idx r.Signal.d;
          en = (match r.Signal.enable with Some e -> idx e | None -> -1);
          clr = (match r.Signal.clear with Some c -> idx c | None -> -1);
          clear_to = r.Signal.clear_to;
          rinit = r.Signal.init })
      reg_state
  in
  let ram_init_of = Hashtbl.create 8 in
  List.iter
    (fun (r : Signal.ram) ->
      Hashtbl.add ram_init_of r.Signal.ram_id r.Signal.init_data)
    rams;
  let writable_inits =
    List.filter_map
      (fun (r : Signal.ram) ->
        match r.Signal.write_port with
        | None -> None
        | Some _ ->
          Some (Hashtbl.find ram_state r.Signal.ram_id, r.Signal.init_data))
      rams
    |> Array.of_list
  in
  let cwports =
    List.filter_map
      (fun (ram : Signal.ram) ->
        match ram.Signal.write_port with
        | None -> None
        | Some wp ->
          Some
            { we = idx wp.Signal.we;
              waddr = idx wp.Signal.waddr;
              wdata = idx wp.Signal.wdata;
              wsize = ram.Signal.size;
              wcontents = Hashtbl.find ram_state ram.Signal.ram_id })
      rams
    |> Array.of_list
  in
  (* preload constants: literal Const nodes, slots the tape compiler
     folded, register init values — then snapshot for [reset] *)
  Array.iter
    (fun (s : Signal.t) ->
      match s.Signal.node with
      | Signal.Const c -> values.(idx s) <- c
      | _ -> ())
    nodes;
  Array.iter (fun (i, c) -> values.(i) <- c) folded;
  Array.iter (fun r -> values.(r.self) <- r.rinit) cregs;
  let init_image = Array.copy values in
  let out_slot_of = Hashtbl.create 8 in
  List.iter
    (fun (nm, (s : Signal.t)) ->
      if not (Hashtbl.mem out_slot_of nm) then
        Hashtbl.add out_slot_of nm (idx s, s.Signal.width))
    (Circuit.outputs circuit);
  let program =
    match backend with
    | `Closure ->
      compile_closures nodes ~idx ~slot_of_input ~values ~input_slots
        ~ram_contents:(Hashtbl.find ram_state)
    | `Tape -> [||]
  in
  { circuit; backend; index_of; values; code; tape_rams; program; cregs;
    reg_next = Array.make (max 1 (Array.length cregs)) 0;
    cwports; reg_state; ram_state; writable_inits; ram_init_of;
    dirty_rams = Hashtbl.create 4;
    input_slots; input_slot_of; out_slot_of; init_image; clock = 0;
    forces = [||] }

(* The compiled programs (tape and closures) read state only through
   [values], [input_slots] and the ram contents arrays, all of which are
   restored in place — no recompilation needed. *)
let reset t =
  Array.blit t.init_image 0 t.values 0 (Array.length t.values);
  (* Read-only rams cannot have drifted from their init image, so only
     rams with a write port — plus any the testbench rewrote through
     [load_ram] — need restoring. *)
  Array.iter
    (fun (c, init) -> Array.blit init 0 c 0 (Array.length c))
    t.writable_inits;
  Hashtbl.iter
    (fun id () ->
      let c = Hashtbl.find t.ram_state id in
      Array.blit (Hashtbl.find t.ram_init_of id) 0 c 0 (Array.length c))
    t.dirty_rams;
  Hashtbl.reset t.dirty_rams;
  Array.fill t.input_slots 0 (Array.length t.input_slots) 0;
  t.clock <- 0;
  t.forces <- [||]

let set_input t name v =
  match Hashtbl.find_opt t.input_slot_of name with
  | None -> raise Not_found
  | Some (slot, w) -> t.input_slots.(slot) <- Signal.mask_to_width w v

let value t (s : Signal.t) = t.values.(Hashtbl.find t.index_of s.Signal.id)

(* Stuck-at forces target register slots only, which nothing writes
   during the combinational phase in either backend — applying them just
   before settle and just after latch keeps every reader consistent. *)
let apply_forces t =
  let forces = t.forces in
  if Array.length forces > 0 then
    Array.iter
      (fun (i, am, om) -> t.values.(i) <- t.values.(i) land am lor om)
      forces

let settle t =
  apply_forces t;
  match t.backend with
  | `Tape -> exec_tape t
  | `Closure ->
    let program = t.program in
    for i = 0 to Array.length program - 1 do
      (Array.unsafe_get program i) ()
    done

(* Compiled latch: next states into the preallocated scratch array, ram
   writes, then commit — registers and write ports see pre-edge values. *)
let latch_compiled t =
  let values = t.values in
  let cregs = t.cregs in
  let nexts = t.reg_next in
  for k = 0 to Array.length cregs - 1 do
    let r = Array.unsafe_get cregs k in
    let next =
      if r.clr >= 0 && Array.unsafe_get values r.clr <> 0 then r.clear_to
      else if r.en >= 0 && Array.unsafe_get values r.en = 0 then
        Array.unsafe_get values r.self
      else Array.unsafe_get values r.d
    in
    Array.unsafe_set nexts k next
  done;
  let wps = t.cwports in
  for k = 0 to Array.length wps - 1 do
    let w = Array.unsafe_get wps k in
    if Array.unsafe_get values w.we <> 0 then begin
      let a = Array.unsafe_get values w.waddr in
      if a < w.wsize then w.wcontents.(a) <- Array.unsafe_get values w.wdata
    end
  done;
  for k = 0 to Array.length cregs - 1 do
    Array.unsafe_set values (Array.unsafe_get cregs k).self
      (Array.unsafe_get nexts k)
  done;
  t.clock <- t.clock + 1

(* Reference latch: resolves every operand through the id hash table, as
   the original interpreter did. *)
let latch_reference t =
  let v = value t in
  let nexts =
    Array.map
      (fun (i, (r : Signal.reg)) ->
        let q = t.values.(i) in
        let next =
          match r.Signal.clear with
          | Some c when v c <> 0 -> r.Signal.clear_to
          | Some _ | None -> (
            match r.Signal.enable with
            | Some e when v e = 0 -> q
            | Some _ | None -> v r.Signal.d)
        in
        (i, next))
      t.reg_state
  in
  List.iter
    (fun (ram : Signal.ram) ->
      match ram.Signal.write_port with
      | None -> ()
      | Some wp ->
        if v wp.Signal.we <> 0 then begin
          let a = v wp.Signal.waddr in
          if a < ram.Signal.size then begin
            let contents = Hashtbl.find t.ram_state ram.Signal.ram_id in
            contents.(a) <- v wp.Signal.wdata
          end
        end)
    (Circuit.rams t.circuit);
  Array.iter (fun (i, next) -> t.values.(i) <- next) nexts;
  t.clock <- t.clock + 1

let latch t =
  (match t.backend with
  | `Tape -> latch_compiled t
  | `Closure -> latch_reference t);
  apply_forces t

let cycle t =
  settle t;
  latch t

let cycles t n =
  for _ = 1 to n do
    cycle t
  done

let peek t s =
  match Hashtbl.find_opt t.index_of s.Signal.id with
  | Some i -> t.values.(i)
  | None -> raise Not_found

let peek_signed t s = Signal.to_signed s.Signal.width (peek t s)

let slot t (s : Signal.t) = Hashtbl.find_opt t.index_of s.Signal.id
let read_slot t i = t.values.(i)

let output t name =
  match Hashtbl.find_opt t.out_slot_of name with
  | Some (i, _) -> t.values.(i)
  | None -> raise Not_found

let output_signed t name =
  match Hashtbl.find_opt t.out_slot_of name with
  | Some (i, w) -> Signal.to_signed w t.values.(i)
  | None -> raise Not_found

let ram_contents t (r : Signal.ram) =
  Array.copy (Hashtbl.find t.ram_state r.Signal.ram_id)

let load_ram t (r : Signal.ram) data =
  if Array.length data <> r.Signal.size then
    invalid_arg "Sim.load_ram: size mismatch";
  (match r.Signal.write_port with
  | None -> Hashtbl.replace t.dirty_rams r.Signal.ram_id ()
  | Some _ -> ());
  let contents = Hashtbl.find t.ram_state r.Signal.ram_id in
  Array.iteri
    (fun i v -> contents.(i) <- Signal.mask_to_width r.Signal.ram_width v)
    data

let cycle_count t = t.clock

(* ------------------------------------------------------------------ *)
(* Fault-injection hooks.                                              *)

let poke t (s : Signal.t) v =
  match Hashtbl.find_opt t.index_of s.Signal.id with
  | Some i -> t.values.(i) <- Signal.mask_to_width s.Signal.width v
  | None -> raise Not_found

let poke_ram t (r : Signal.ram) addr v =
  if addr < 0 || addr >= r.Signal.size then
    invalid_arg "Sim.poke_ram: address out of range";
  let contents = Hashtbl.find t.ram_state r.Signal.ram_id in
  (* a corrupted read-only ram must be restored by [reset], exactly like
     one rewritten through [load_ram] *)
  (match r.Signal.write_port with
  | None -> Hashtbl.replace t.dirty_rams r.Signal.ram_id ()
  | Some _ -> ());
  contents.(addr) <- Signal.mask_to_width r.Signal.ram_width v

let force t (s : Signal.t) ~and_mask ~or_mask =
  (match s.Signal.node with
  | Signal.Reg _ -> ()
  | _ -> invalid_arg "Sim.force: only registers can carry stuck-at forces");
  let i = Hashtbl.find t.index_of s.Signal.id in
  let full = mask_of s.Signal.width in
  let entry = (i, and_mask land full, or_mask land full) in
  t.forces <- Array.append t.forces [| entry |];
  apply_forces t

let clear_forces t = t.forces <- [||]
