(** Cycle-accurate netlist simulator.

    Two-phase semantics per clock cycle: all combinational nodes are
    evaluated in topological order ({i settle}), then registers and ram
    write ports latch their next values ({i latch}).  This matches the
    standard synchronous-RTL evaluation model used by Verilog simulators on
    the single-clock subset the DSL generates. *)

type t

val create : Circuit.t -> t
(** Registers start at their [init] value, rams at their [init_data]. *)

val reset : t -> unit

val set_input : t -> string -> int -> unit
(** @raise Not_found on an unknown input.  The value is masked to the
    input's width. *)

val settle : t -> unit
(** Recompute all combinational values from current inputs and state. *)

val cycle : t -> unit
(** {!settle} then latch: one full clock cycle. *)

val cycles : t -> int -> unit

val output : t -> string -> int
(** Value of a named output after the last {!settle}/{!cycle}.
    @raise Not_found on an unknown output. *)

val output_signed : t -> string -> int

val peek : t -> Signal.t -> int
(** Value of any signal in the circuit (post-settle).
    @raise Not_found if the signal is not part of the circuit. *)

val peek_signed : t -> Signal.t -> int

val ram_contents : t -> Signal.ram -> int array
(** Snapshot of a ram's current contents. *)

val load_ram : t -> Signal.ram -> int array -> unit
(** Overwrite a ram's contents (testbench backdoor, e.g. re-loading the
    input data memories of a generated accelerator).  Values are masked to
    the ram width. @raise Invalid_argument on a size mismatch,
    @raise Not_found if the ram is not part of the circuit. *)

val cycle_count : t -> int
