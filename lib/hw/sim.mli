(** Cycle-accurate netlist simulator.

    Two-phase semantics per clock cycle: all combinational nodes are
    evaluated in topological order ({i settle}), then registers and ram
    write ports latch their next values ({i latch}).  This matches the
    standard synchronous-RTL evaluation model used by Verilog simulators on
    the single-clock subset the DSL generates.

    Two interchangeable execution backends implement these semantics:

    - [`Tape] (default): the netlist is compiled at {!create} time into a
      flat int-array instruction tape (opcode, dense operand indices,
      pre-computed masks) evaluated by a tight match loop, and the
      sequential phase is pre-resolved to dense indices so {!cycle}
      performs no hashing and no allocation.
    - [`Closure]: the reference interpreter — one closure per
      combinational node and a hash-resolved latch.  Slower; kept for
      differential testing ({i tape vs closure must agree cycle-for-cycle})
      and as the baseline for the [bench-sim] benchmark gate. *)

type t

type backend = [ `Closure | `Tape ]

val create : ?backend:backend -> Circuit.t -> t
(** Compile the circuit for the chosen backend (default [`Tape]).
    Registers start at their [init] value, rams at their [init_data]. *)

val backend : t -> backend

val reset : t -> unit
(** Restore registers, rams, inputs and the clock counter to their
    power-on state.  The compiled program is reused as-is. *)

val set_input : t -> string -> int -> unit
(** @raise Not_found on an unknown input.  The value is masked to the
    input's width. *)

val settle : t -> unit
(** Recompute all combinational values from current inputs and state. *)

val cycle : t -> unit
(** {!settle} then latch: one full clock cycle. *)

val latch : t -> unit
(** The sequential half of {!cycle} alone: registers and ram write ports
    capture the values computed by the last {!settle}.  Exposed so probes
    (waveform dumpers, {!Activity} counters) can observe the settled
    combinational state {e before} it is clocked away. *)

val cycles : t -> int -> unit

val output : t -> string -> int
(** Value of a named output after the last {!settle}/{!cycle}.  Output
    names are resolved to dense indices once at {!create} time, so this is
    cheap enough for testbench polling loops.
    @raise Not_found on an unknown output. *)

val output_signed : t -> string -> int

val peek : t -> Signal.t -> int
(** Value of any signal in the circuit (post-settle).
    @raise Not_found if the signal is not part of the circuit. *)

val peek_signed : t -> Signal.t -> int

val slot : t -> Signal.t -> int option
(** The canonical dense storage slot a signal resolves to, {e after} the
    tape compiler's alias redirection and CSE merging — i.e. the slot
    {!peek} reads.  [None] when the signal is not part of the circuit.
    Two signals the tape backend merged share a slot; under the closure
    backend every signal keeps its own.  Stable for the lifetime of [t]. *)

val read_slot : t -> int -> int
(** Value currently held in a dense slot returned by {!slot}.  Cheaper
    than {!peek} in per-cycle probe loops (no hashing). *)

val ram_contents : t -> Signal.ram -> int array
(** Snapshot of a ram's current contents. *)

val load_ram : t -> Signal.ram -> int array -> unit
(** Overwrite a ram's contents (testbench backdoor, e.g. re-loading the
    input data memories of a generated accelerator).  Values are masked to
    the ram width. @raise Invalid_argument on a size mismatch,
    @raise Not_found if the ram is not part of the circuit. *)

val cycle_count : t -> int

(** {1 Fault-injection hooks}

    Backdoors used by {!Tl_fault} to corrupt architectural state.  They
    operate on the shared [values] array / ram contents, so the two
    backends observe identical injection semantics: register slots are
    never aliased or CSE-merged by the tape compiler (a [Reg] node emits
    no instruction), hence a register's dense slot is the same storage
    the closure backend latches into.  Only registers and memory cells
    are injectable for this reason — arbitrary combinational wires may
    be aliased away by the tape backend. *)

val poke : t -> Signal.t -> int -> unit
(** Overwrite the current value of a signal's slot (masked to its
    width).  Intended for {e register} slots, where the write models a
    transient bit upset that persists until the register next latches.
    @raise Not_found if the signal is not part of the circuit. *)

val poke_ram : t -> Signal.ram -> int -> int -> unit
(** [poke_ram t ram addr v] corrupts one memory cell (masked to the ram
    width).  Read-only rams are marked dirty so {!reset} restores them.
    @raise Invalid_argument on an out-of-range address,
    @raise Not_found if the ram is not part of the circuit. *)

val force : t -> Signal.t -> and_mask:int -> or_mask:int -> unit
(** Install a persistent stuck-at force on a register's output:
    every {!settle} and {!latch} re-applies
    [(value land and_mask) lor or_mask] to the register's slot, so all
    readers in either backend observe the stuck bits.  Stuck-at-0 on bit
    [b] is [~and_mask:(lnot (1 lsl b)) ~or_mask:0]; stuck-at-1 is
    [~and_mask:(-1) ~or_mask:(1 lsl b)].  Forces accumulate until
    {!clear_forces} or {!reset}.
    @raise Invalid_argument if the signal is not a register. *)

val clear_forces : t -> unit
(** Remove all forces installed by {!force}. *)
