(** Cycle-accurate netlist simulator.

    Two-phase semantics per clock cycle: all combinational nodes are
    evaluated in topological order ({i settle}), then registers and ram
    write ports latch their next values ({i latch}).  This matches the
    standard synchronous-RTL evaluation model used by Verilog simulators on
    the single-clock subset the DSL generates.

    Three interchangeable execution backends implement these semantics:

    - [`Tape] (default): the netlist is compiled at {!create} time into a
      flat int-array instruction tape (opcode, dense operand indices,
      pre-computed masks) evaluated by a tight match loop, and the
      sequential phase is pre-resolved to dense indices so {!cycle}
      performs no hashing and no allocation.
    - [`Closure]: the reference interpreter — one closure per
      combinational node and a hash-resolved latch.  Slower; kept for
      differential testing ({i tape vs closure must agree cycle-for-cycle})
      and as the baseline for the [bench-sim] benchmark gate.
    - [`Batch]: a bit-sliced evaluator over the same compiled tape,
      packing up to {!max_lanes} independent trials into the bit lanes of
      each native int and executing all of them in one pass.  Width-1
      slots are {e packed} (bit [l] of one int is lane [l], so bitwise
      control logic vectorizes for free); wider slots are {e word
      batched} (one int per lane, the instruction decoded once per
      batch).  Lane [l] of every API below is bit-identical to a scalar
      simulation fed lane [l]'s stimuli. *)

type t

type backend = [ `Closure | `Tape | `Batch ]

val max_lanes : int
(** Maximum number of lanes a [`Batch] simulator can carry: 62 (OCaml
    ints are 63-bit; the packed representation needs one bit per lane
    with headroom to stay within non-negative range). *)

val create : ?backend:backend -> ?lanes:int -> Circuit.t -> t
(** Compile the circuit for the chosen backend (default [`Tape]).
    Registers start at their [init] value, rams at their [init_data].
    [?lanes] (default {!max_lanes}) selects the batch width and is only
    accepted with [~backend:`Batch].
    @raise Invalid_argument if [lanes] is outside [1 .. max_lanes] or
    given with a scalar backend. *)

val backend : t -> backend

val lanes : t -> int
(** Number of parallel trials this simulator carries: the [~lanes] given
    at {!create} for [`Batch], [1] for the scalar backends. *)

val packed_fraction : t -> float
(** Fraction of batch instructions that execute fully packed (one
    bitwise op covering all lanes at once, no per-lane loop).  [0.] on
    scalar backends. *)

val reset : t -> unit
(** Restore registers, rams, inputs and the clock counter to their
    power-on state.  The compiled program is reused as-is. *)

val set_input : t -> string -> int -> unit
(** @raise Not_found on an unknown input.  The value is masked to the
    input's width.  On a [`Batch] simulator the value is broadcast to
    every lane. *)

(** {1 Per-lane access}

    Each function takes the lane index directly after [t] and raises
    [Invalid_argument] when it is outside [0 .. lanes t - 1].  On the
    scalar backends (where [lanes t = 1]) lane [0] is accepted and the
    call behaves exactly like its scalar counterpart, so batch-aware
    drivers run unchanged on any backend. *)

val set_input_lane : t -> int -> string -> int -> unit
(** [set_input_lane t lane name v] drives one lane's copy of an input. *)

val output_lane : t -> int -> string -> int
val output_lane_signed : t -> int -> string -> int

val output_packed : t -> string -> int
(** All lanes of a width-1 output in one word: bit [l] is lane [l]'s
    value.  The cheap way to scan for per-lane completion ([done]) or
    sticky error flags across a whole batch.
    @raise Invalid_argument on a scalar backend or an output wider than
    one bit. *)

val peek_lane : t -> int -> Signal.t -> int
val ram_contents_lane : t -> int -> Signal.ram -> int array
val ram_cell_lane : t -> int -> Signal.ram -> int -> int
(** One cell of one lane, without copying the whole ram — the
    allocation-free read fault campaigns use to compare a lane's output
    cells against the golden run. *)

val ram_reader : t -> Signal.ram -> int -> int -> int
(** [ram_reader t r] resolves [r]'s slot once and returns
    [fun lane addr -> cell], the hot-loop form of {!ram_cell_lane}.
    Stays valid across {!reset} (contents are refilled in place). *)

val load_ram_lane : t -> int -> Signal.ram -> int array -> unit

val settle : t -> unit
(** Recompute all combinational values from current inputs and state. *)

val cycle : t -> unit
(** {!settle} then latch: one full clock cycle. *)

val latch : t -> unit
(** The sequential half of {!cycle} alone: registers and ram write ports
    capture the values computed by the last {!settle}.  Exposed so probes
    (waveform dumpers, {!Activity} counters) can observe the settled
    combinational state {e before} it is clocked away. *)

val cycles : t -> int -> unit

val output : t -> string -> int
(** Value of a named output after the last {!settle}/{!cycle}.  Output
    names are resolved to dense indices once at {!create} time, so this is
    cheap enough for testbench polling loops.
    @raise Not_found on an unknown output. *)

val output_signed : t -> string -> int

val peek : t -> Signal.t -> int
(** Value of any signal in the circuit (post-settle).
    @raise Not_found if the signal is not part of the circuit. *)

val peek_signed : t -> Signal.t -> int

val slot : t -> Signal.t -> int option
(** The canonical dense storage slot a signal resolves to, {e after} the
    tape compiler's alias redirection and CSE merging — i.e. the slot
    {!peek} reads.  [None] when the signal is not part of the circuit.
    Two signals the tape backend merged share a slot; under the closure
    backend every signal keeps its own.  Stable for the lifetime of [t]. *)

val read_slot : t -> int -> int
(** Value currently held in a dense slot returned by {!slot}.  Cheaper
    than {!peek} in per-cycle probe loops (no hashing). *)

val ram_contents : t -> Signal.ram -> int array
(** Snapshot of a ram's current contents. *)

val load_ram : t -> Signal.ram -> int array -> unit
(** Overwrite a ram's contents (testbench backdoor, e.g. re-loading the
    input data memories of a generated accelerator).  Values are masked to
    the ram width. @raise Invalid_argument on a size mismatch,
    @raise Not_found if the ram is not part of the circuit. *)

val load_ram_prefix : t -> Signal.ram -> int array -> unit
(** [load_ram_prefix t r data] writes [data] to addresses
    [0 .. length data - 1] and zero-fills the rest, without requiring the
    caller to materialise a full-size padded image.  This is the
    configuration fast path for programmable accelerators, whose
    envelope-sized memories hold a natural-size image followed by a zero
    tail.  Equivalent to {!load_ram} with a zero-padded copy of [data].
    @raise Invalid_argument if [data] is larger than the ram. *)

val load_ram_prefix_lane : t -> int -> Signal.ram -> int array -> unit
(** Per-lane {!load_ram_prefix} (batch backend); lane must be 0 on the
    scalar backends, as with {!load_ram_lane}. *)

val cycle_count : t -> int

(** {1 Fault-injection hooks}

    Backdoors used by {!Tl_fault} to corrupt architectural state.  They
    operate on the shared [values] array / ram contents, so the two
    backends observe identical injection semantics: register slots are
    never aliased or CSE-merged by the tape compiler (a [Reg] node emits
    no instruction), hence a register's dense slot is the same storage
    the closure backend latches into.  Only registers and memory cells
    are injectable for this reason — arbitrary combinational wires may
    be aliased away by the tape backend. *)

val poke : t -> Signal.t -> int -> unit
(** Overwrite the current value of a signal's slot (masked to its
    width).  Intended for {e register} slots, where the write models a
    transient bit upset that persists until the register next latches.
    @raise Not_found if the signal is not part of the circuit. *)

val poke_ram : t -> Signal.ram -> int -> int -> unit
(** [poke_ram t ram addr v] corrupts one memory cell (masked to the ram
    width).  Read-only rams are marked dirty so {!reset} restores them.
    @raise Invalid_argument on an out-of-range address,
    @raise Not_found if the ram is not part of the circuit. *)

val force : t -> Signal.t -> and_mask:int -> or_mask:int -> unit
(** Install a persistent stuck-at force on a register's output:
    every {!settle} and {!latch} re-applies
    [(value land and_mask) lor or_mask] to the register's slot, so all
    readers in either backend observe the stuck bits.  Stuck-at-0 on bit
    [b] is [~and_mask:(lnot (1 lsl b)) ~or_mask:0]; stuck-at-1 is
    [~and_mask:(-1) ~or_mask:(1 lsl b)].  Forces accumulate until
    {!clear_forces} or {!reset}.
    @raise Invalid_argument if the signal is not a register. *)

val poke_lane : t -> int -> Signal.t -> int -> unit
(** Lane-targeted {!poke}: corrupt one lane's copy of a register slot,
    leaving the other lanes' trials untouched. *)

val poke_ram_lane : t -> int -> Signal.ram -> int -> int -> unit
(** Lane-targeted {!poke_ram}. *)

val force_lane : t -> int -> Signal.t -> and_mask:int -> or_mask:int -> unit
(** Lane-targeted {!force}: the stuck-at masks compose into that lane's
    per-lane force state only, so up to [lanes t] independent stuck-at
    plans run side by side.  On a [`Batch] simulator the plain {!force}
    broadcasts its masks to every lane. *)

val clear_forces : t -> unit
(** Remove all forces installed by {!force} / {!force_lane}.  {!reset}
    also drops them (scalar and per-lane alike), so a reused simulator
    can never leak stuck bits into the next batch of trials. *)
