(** VCD (Value Change Dump) waveform capture.

    Wraps a {!Sim} run and records the named signals (inputs, outputs and
    every signal given a {!Signal.set_name} label) into the standard IEEE
    1364 VCD text format, viewable in GTKWave & co.  Useful when debugging
    a generated accelerator's schedule. *)

type t

val create : ?signals:Signal.t list -> Sim.t -> Circuit.t -> t
(** Trace the circuit's inputs, outputs, and named signals (or exactly
    [signals] when given).  Labels are sanitised to legal VCD identifiers
    (mirroring the Verilog namer: non-alphanumerics become ['_'], leading
    digits are prefixed) and colliding labels are uniquified with [_1],
    [_2], … suffixes.  Each traced signal is resolved once through the
    backend's canonical storage slot ({!Sim.slot}), so wires the tape
    compiler aliased or CSE-merged dump the correct merged value; signals
    not present in the simulated circuit are silently dropped.  The first
    {!record} emits a full [$dumpvars] snapshot at its timestamp, so
    signals that hold their reset value for the whole run still appear.
    @raise Invalid_argument on a [`Batch] simulator (one VCD stream
    cannot represent 62 interleaved trials). *)

val cycle : t -> unit
(** Advance the simulator one clock cycle, recording changes. *)

val cycles : t -> int -> unit

val contents : t -> string
(** The VCD document for everything recorded so far. *)

val write_file : string -> t -> unit
