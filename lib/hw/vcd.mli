(** VCD (Value Change Dump) waveform capture.

    Wraps a {!Sim} run and records the named signals (inputs, outputs and
    every signal given a {!Signal.set_name} label) into the standard IEEE
    1364 VCD text format, viewable in GTKWave & co.  Useful when debugging
    a generated accelerator's schedule. *)

type t

val create : ?signals:Signal.t list -> Sim.t -> Circuit.t -> t
(** Trace the circuit's inputs, outputs, and named signals (or exactly
    [signals] when given). *)

val cycle : t -> unit
(** Advance the simulator one clock cycle, recording changes. *)

val cycles : t -> int -> unit

val contents : t -> string
(** The VCD document for everything recorded so far. *)

val write_file : string -> t -> unit
