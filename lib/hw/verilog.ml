let sanitize name =
  let b = Buffer.create (String.length name) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  let s = Buffer.contents b in
  if s = "" then "_"
  else
    match s.[0] with
    | '0' .. '9' -> "_" ^ s
    | _ -> s

let keywords =
  [ "module"; "endmodule"; "input"; "output"; "wire"; "reg"; "assign";
    "always"; "initial"; "begin"; "end"; "if"; "else"; "posedge"; "negedge";
    "signed"; "integer"; "for"; "case"; "endcase"; "default" ]

type namer = {
  by_id : (int, string) Hashtbl.t;
  used : (string, unit) Hashtbl.t;
  input_ports : (string, string) Hashtbl.t;  (* declared name -> port *)
  output_ports : (string, string) Hashtbl.t; (* output name -> port *)
  ram_names : (int, string) Hashtbl.t;       (* ram id -> identifier *)
}

let unique n base =
  if not (Hashtbl.mem n.used base) then begin
    Hashtbl.add n.used base ();
    base
  end
  else
    let rec go i =
      let cand = Printf.sprintf "%s_%d" base i in
      if Hashtbl.mem n.used cand then go (i + 1)
      else begin
        Hashtbl.add n.used cand ();
        cand
      end
    in
    go 1

(* Port and ram identifiers are uniquified through the same [used] table as
   everything else, in a fixed order (inputs, outputs, rams), so signals
   whose sanitised names collide — or collide with a Verilog keyword — emit
   distinct, deterministic identifiers. *)
let make_namer circuit =
  let n =
    { by_id = Hashtbl.create 64;
      used = Hashtbl.create 64;
      input_ports = Hashtbl.create 16;
      output_ports = Hashtbl.create 16;
      ram_names = Hashtbl.create 8 }
  in
  List.iter (fun k -> Hashtbl.add n.used k ()) keywords;
  Hashtbl.add n.used "clock" ();
  List.iter
    (fun (name, _) ->
      Hashtbl.replace n.input_ports name (unique n (sanitize name)))
    (Circuit.inputs circuit);
  List.iter
    (fun (name, _) ->
      Hashtbl.replace n.output_ports name (unique n (sanitize name)))
    (Circuit.outputs circuit);
  List.iter
    (fun (ram : Signal.ram) ->
      Hashtbl.replace n.ram_names ram.Signal.ram_id
        (unique n (sanitize ram.Signal.ram_name)))
    (Circuit.rams circuit);
  n

let input_port n name =
  match Hashtbl.find_opt n.input_ports name with
  | Some p -> p
  | None -> sanitize name

let output_port n name =
  match Hashtbl.find_opt n.output_ports name with
  | Some p -> p
  | None -> sanitize name

let ram_name n (ram : Signal.ram) =
  match Hashtbl.find_opt n.ram_names ram.Signal.ram_id with
  | Some r -> r
  | None -> sanitize ram.Signal.ram_name

let node_name n (s : Signal.t) =
  match Hashtbl.find_opt n.by_id s.Signal.id with
  | Some name -> name
  | None ->
    let name =
      match s.Signal.node with
      | Signal.Input i -> input_port n i
      | _ -> (
        match s.Signal.name with
        | Some u -> unique n (sanitize u)
        | None -> unique n (Printf.sprintf "s%d" s.Signal.id))
    in
    Hashtbl.replace n.by_id s.Signal.id name;
    name

let width_decl w = if w = 1 then "" else Printf.sprintf "[%d:0] " (w - 1)

let const_lit w v = Printf.sprintf "%d'd%d" w v

let expr n (s : Signal.t) =
  let nm x = node_name n x in
  match s.Signal.node with
  | Signal.Input _ | Signal.Const _ | Signal.Reg _ -> assert false
  | Signal.Unop (Signal.Not, a) -> Printf.sprintf "~%s" (nm a)
  | Signal.Binop (op, a, b) -> (
    let sa = nm a and sb = nm b in
    match op with
    | Signal.Add -> Printf.sprintf "%s + %s" sa sb
    | Signal.Sub -> Printf.sprintf "%s - %s" sa sb
    | Signal.Mul -> Printf.sprintf "%s * %s" sa sb
    | Signal.And -> Printf.sprintf "%s & %s" sa sb
    | Signal.Or -> Printf.sprintf "%s | %s" sa sb
    | Signal.Xor -> Printf.sprintf "%s ^ %s" sa sb
    | Signal.Eq -> Printf.sprintf "%s == %s" sa sb
    | Signal.Ult -> Printf.sprintf "%s < %s" sa sb
    | Signal.Slt -> Printf.sprintf "$signed(%s) < $signed(%s)" sa sb
    | Signal.Shl k -> Printf.sprintf "%s << %d" sa k
    | Signal.Shr k -> Printf.sprintf "%s >> %d" sa k
    | Signal.Sra k -> Printf.sprintf "$signed(%s) >>> %d" sa k)
  | Signal.Mux (c, a, b) ->
    Printf.sprintf "%s ? %s : %s" (nm c) (nm a) (nm b)
  | Signal.Concat (hi, lo) -> Printf.sprintf "{%s, %s}" (nm hi) (nm lo)
  | Signal.Repl (a, n) -> Printf.sprintf "{%d{%s}}" n (nm a)
  | Signal.Select (a, hi, lo) ->
    if hi = lo then Printf.sprintf "%s[%d]" (nm a) hi
    else Printf.sprintf "%s[%d:%d]" (nm a) hi lo
  | Signal.Wire r -> (
    match !r with
    | Some d -> nm d
    | None -> invalid_arg "Verilog: unassigned wire")
  | Signal.Ram_read (ram, addr) ->
    Printf.sprintf "%s[%s]" (ram_name n ram) (nm addr)

let emit buf circuit =
  let n = make_namer circuit in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let nodes = Circuit.nodes circuit in
  (* pre-assign names for all nodes so forward refs are stable *)
  Array.iter (fun s -> ignore (node_name n s)) nodes;
  let out_ports = Circuit.outputs circuit in
  add "module %s(\n  input clock" (sanitize (Circuit.name circuit));
  List.iter
    (fun (name, w) ->
      add ",\n  input %s%s" (width_decl w) (input_port n name))
    (Circuit.inputs circuit);
  List.iter
    (fun (name, (s : Signal.t)) ->
      add ",\n  output %s%s" (width_decl s.Signal.width) (output_port n name))
    out_ports;
  add "\n);\n\n";
  (* ram declarations *)
  List.iter
    (fun (ram : Signal.ram) ->
      let rname = ram_name n ram in
      add "  reg %s%s [0:%d];\n"
        (width_decl ram.Signal.ram_width)
        rname (ram.Signal.size - 1);
      add "  initial begin\n";
      Array.iteri
        (fun i v -> add "    %s[%d] = %s;\n" rname i
            (const_lit ram.Signal.ram_width v))
        ram.Signal.init_data;
      add "  end\n")
    (Circuit.rams circuit);
  (* combinational nodes and registers *)
  Array.iter
    (fun (s : Signal.t) ->
      let name = node_name n s in
      match s.Signal.node with
      | Signal.Input _ -> ()
      | Signal.Const c ->
        add "  wire %s%s = %s;\n" (width_decl s.Signal.width) name
          (const_lit s.Signal.width c)
      | Signal.Reg r ->
        add "  reg %s%s = %s;\n" (width_decl s.Signal.width) name
          (const_lit s.Signal.width r.Signal.init)
      | _ ->
        add "  wire %s%s = %s;\n" (width_decl s.Signal.width) name (expr n s))
    nodes;
  (* sequential block *)
  let regs =
    Array.to_list nodes
    |> List.filter_map (fun (s : Signal.t) ->
        match s.Signal.node with
        | Signal.Reg r -> Some (s, r)
        | _ -> None)
  in
  let ram_writes =
    List.filter_map
      (fun (ram : Signal.ram) ->
        Option.map (fun wp -> (ram, wp)) ram.Signal.write_port)
      (Circuit.rams circuit)
  in
  if regs <> [] || ram_writes <> [] then begin
    add "\n  always @(posedge clock) begin\n";
    List.iter
      (fun ((s : Signal.t), (r : Signal.reg)) ->
        let name = node_name n s in
        let d = node_name n r.Signal.d in
        let update =
          match r.Signal.enable with
          | None -> Printf.sprintf "%s <= %s;" name d
          | Some e ->
            Printf.sprintf "if (%s) %s <= %s;" (node_name n e) name d
        in
        match r.Signal.clear with
        | None -> add "    %s\n" update
        | Some c ->
          add "    if (%s) %s <= %s; else %s\n" (node_name n c) name
            (const_lit s.Signal.width r.Signal.clear_to)
            update)
      regs;
    List.iter
      (fun ((ram : Signal.ram), (wp : Signal.write_port)) ->
        add "    if (%s) %s[%s] <= %s;\n"
          (node_name n wp.Signal.we) (ram_name n ram)
          (node_name n wp.Signal.waddr)
          (node_name n wp.Signal.wdata))
      ram_writes;
    add "  end\n"
  end;
  add "\n";
  List.iter
    (fun (name, s) ->
      add "  assign %s = %s;\n" (output_port n name) (node_name n s))
    out_ports;
  add "endmodule\n"

let to_string circuit =
  let buf = Buffer.create 4096 in
  emit buf circuit;
  Buffer.contents buf

let to_channel oc circuit = output_string oc (to_string circuit)

let write_file path circuit =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> to_channel oc circuit)
