(** Verilog (2001) emitter.

    Emits a single flat module per circuit: one [wire] declaration and
    [assign] per combinational node, one [always @(posedge clock)] block
    for registers and ram write ports, [reg] arrays with [initial] blocks
    for rams/roms.  Signal names use the user-provided {!Signal.set_name}
    labels when available (sanitised and uniquified), [s<id>] otherwise. *)

val to_string : Circuit.t -> string
val to_channel : out_channel -> Circuit.t -> unit
val write_file : string -> Circuit.t -> unit
