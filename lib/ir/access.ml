type t = { tensor : string; matrix : int array array }

let v tensor matrix =
  if Array.length matrix = 0 then invalid_arg "Access.v: empty matrix";
  let d = Array.length matrix.(0) in
  if d = 0 then invalid_arg "Access.v: empty row";
  Array.iter
    (fun r ->
      if Array.length r <> d then invalid_arg "Access.v: ragged matrix")
    matrix;
  { tensor; matrix }

let of_terms tensor ~depth rows =
  let build positions =
    let r = Array.make depth 0 in
    List.iter
      (fun j ->
        if j < 0 || j >= depth then invalid_arg "Access.of_terms: bad index";
        r.(j) <- r.(j) + 1)
      positions;
    r
  in
  v tensor (Array.of_list (List.map build rows))

let rank a = Array.length a.matrix
let depth a = Array.length a.matrix.(0)

let index a x =
  if Array.length x <> depth a then invalid_arg "Access.index: bad depth";
  Array.map
    (fun row ->
      let acc = ref 0 in
      Array.iteri (fun j c -> acc := !acc + (c * x.(j))) row;
      !acc)
    a.matrix

let to_mat a =
  Tl_linalg.Mat.make ~rows:(rank a) ~cols:(depth a) (fun i j ->
      Tl_linalg.Rat.of_int a.matrix.(i).(j))

let shape a iters =
  let extents = Array.of_list (List.map (fun i -> i.Iter.extent) iters) in
  if Array.length extents <> depth a then
    invalid_arg "Access.shape: iterator count mismatch";
  Array.map
    (fun row ->
      let hi = ref 0 and lo = ref 0 in
      Array.iteri
        (fun j c ->
          if c > 0 then hi := !hi + (c * (extents.(j) - 1))
          else if c < 0 then lo := !lo + (c * (extents.(j) - 1)))
        row;
      if !lo < 0 then
        invalid_arg "Access.shape: index can go negative (offsets unsupported)";
      !hi + 1)
    a.matrix

let pp_row names ppf row =
  let first = ref true in
  Array.iteri
    (fun j c ->
      if c <> 0 then begin
        if not !first then Format.fprintf ppf "+";
        if c <> 1 then Format.fprintf ppf "%d*" c;
        Format.fprintf ppf "%s" names.(j);
        first := false
      end)
    row;
  if !first then Format.fprintf ppf "0"

let pp_gen names ppf a =
  Format.fprintf ppf "%s[" a.tensor;
  Array.iteri
    (fun i row ->
      if i > 0 then Format.fprintf ppf ", ";
      pp_row names ppf row)
    a.matrix;
  Format.fprintf ppf "]"

let pp ppf a =
  let names = Array.init (depth a) (fun j -> Printf.sprintf "i%d" j) in
  pp_gen names ppf a

let pp_with iters ppf a =
  let names = Array.of_list (List.map (fun i -> i.Iter.name) iters) in
  pp_gen names ppf a
