(** Affine tensor access functions.

    An access reads/writes tensor element [I = A x] where [x] is the loop
    iteration vector and [A] the access matrix (tensor rank × nest depth).
    All Table-II workloads are purely linear (entries in {0,1}, no constant
    offsets), but arbitrary integer entries are supported. *)

type t = {
  tensor : string;        (** tensor name, e.g. "A" *)
  matrix : int array array;  (** [rank × depth] access matrix *)
}

val v : string -> int array array -> t
(** @raise Invalid_argument on an empty or ragged matrix. *)

val of_terms : string -> depth:int -> int list list -> t
(** [of_terms name ~depth rows] builds the matrix from per-dimension lists of
    iterator positions, each contributing coefficient 1.  E.g. Conv2D input
    [A[c, y+p, x+q]] over iterators [k;c;y;x;p;q] is
    [of_terms "A" ~depth:6 [[1]; [2; 4]; [3; 5]]]. *)

val rank : t -> int
(** Number of tensor dimensions. *)

val depth : t -> int
(** Loop-nest depth the access was built for. *)

val index : t -> int array -> int array
(** [index a x] evaluates [A x]. *)

val to_mat : t -> Tl_linalg.Mat.t
val shape : t -> Iter.t list -> int array
(** Tensor extents implied by the iteration domain: for each dimension the
    maximum reachable index + 1 (entries may be negative; the minimum
    reachable index must be 0 for the dense golden executor).
    @raise Invalid_argument if some index can go negative. *)

val pp : Format.formatter -> t -> unit
(** Prints e.g. [A[c, y+p, x+q]] given no iterator names are available;
    indices are rendered from matrix rows using [i0..in] placeholders. *)

val pp_with : Iter.t list -> Format.formatter -> t -> unit
(** Pretty-print with real iterator names. *)
