type t = { shape : int array; strides : int array; data : int array }

let compute_strides shape =
  let n = Array.length shape in
  let strides = Array.make n 1 in
  for i = n - 2 downto 0 do
    strides.(i) <- strides.(i + 1) * shape.(i + 1)
  done;
  strides

let create shape =
  if Array.length shape = 0 then invalid_arg "Dense.create: empty shape";
  Array.iter
    (fun e -> if e <= 0 then invalid_arg "Dense.create: non-positive extent")
    shape;
  let size = Array.fold_left ( * ) 1 shape in
  { shape = Array.copy shape;
    strides = compute_strides shape;
    data = Array.make size 0 }

let shape t = Array.copy t.shape
let size t = Array.length t.data
let strides t = Array.copy t.strides

let offset t idx =
  if Array.length idx <> Array.length t.shape then
    invalid_arg "Dense.offset: rank mismatch";
  let off = ref 0 in
  Array.iteri
    (fun d i ->
      if i < 0 || i >= t.shape.(d) then
        invalid_arg
          (Printf.sprintf "Dense.offset: index %d out of bounds [0,%d) at dim %d"
             i t.shape.(d) d);
      off := !off + (i * t.strides.(d)))
    idx;
  !off

let get t idx = t.data.(offset t idx)
let set t idx v = t.data.(offset t idx) <- v
let flat_get t i = t.data.(i)
let flat_set t i v = t.data.(i) <- v
let fill t v = Array.fill t.data 0 (Array.length t.data) v

let copy t =
  { shape = Array.copy t.shape;
    strides = Array.copy t.strides;
    data = Array.copy t.data }

let equal a b = a.shape = b.shape && a.data = b.data
let map f t = { t with data = Array.map f t.data }

let iteri f t =
  let n = Array.length t.shape in
  let idx = Array.make n 0 in
  Array.iteri
    (fun flat v ->
      let rem = ref flat in
      for d = 0 to n - 1 do
        idx.(d) <- !rem / t.strides.(d);
        rem := !rem mod t.strides.(d)
      done;
      f idx v)
    t.data

let init shape f =
  let t = create shape in
  iteri (fun idx _ -> set t idx (f idx)) t;
  t

let pp ppf t =
  Format.fprintf ppf "tensor%a[@[%a@]]"
    (fun ppf s ->
      Format.fprintf ppf "(%s)"
        (String.concat "x" (Array.to_list (Array.map string_of_int s))))
    t.shape
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       Format.pp_print_int)
    t.data
