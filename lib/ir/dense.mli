(** Dense integer tensors with row-major layout.

    Used by the golden executor and as the data source/sink when driving
    generated accelerators.  Values are native ints; the hardware datapath
    width (e.g. INT16 inputs, INT32 accumulators) is enforced by the netlist
    simulator, not here. *)

type t

val create : int array -> t
(** Zero-filled tensor of the given shape. @raise Invalid_argument on an
    empty shape or non-positive extent. *)

val init : int array -> (int array -> int) -> t
val shape : t -> int array
val size : t -> int
val get : t -> int array -> int
val set : t -> int array -> int -> unit
val flat_get : t -> int -> int
val flat_set : t -> int -> int -> unit
val offset : t -> int array -> int
(** Row-major linear offset of a multi-index. @raise Invalid_argument when
    out of bounds. *)

val strides : t -> int array
val fill : t -> int -> unit
val copy : t -> t
val equal : t -> t -> bool
val map : (int -> int) -> t -> t
val iteri : (int array -> int -> unit) -> t -> unit
(** The index array is reused across calls; copy it if retained. *)

val pp : Format.formatter -> t -> unit
