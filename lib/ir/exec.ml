type env = (string * Dense.t) list

(* xorshift-style deterministic generator: keeps tests reproducible without
   touching the global Random state. *)
let small_values ~seed n =
  let state = ref (seed lxor 0x9e3779b9) in
  Array.init n (fun _ ->
      let x = !state in
      let x = x lxor (x lsl 13) in
      let x = x lxor (x lsr 7) in
      let x = x lxor (x lsl 17) in
      state := x land max_int;
      (x mod 17) - 8)

let alloc_inputs ?(seed = 42) stmt =
  List.mapi
    (fun k (a : Access.t) ->
      let t = Dense.create (Access.shape a stmt.Stmt.iters) in
      let vals = small_values ~seed:(seed + (k * 7919)) (Dense.size t) in
      Array.iteri (fun i v -> Dense.flat_set t i v) vals;
      (a.Access.tensor, t))
    stmt.Stmt.inputs

let alloc_output stmt =
  Dense.create (Access.shape stmt.Stmt.output stmt.Stmt.iters)

let run_with stmt env out =
  let inputs =
    List.map
      (fun (a : Access.t) -> (a, List.assoc a.Access.tensor env))
      stmt.Stmt.inputs
  in
  let out_access = stmt.Stmt.output in
  Stmt.iter_domain stmt (fun x ->
      let product =
        List.fold_left
          (fun acc (a, t) -> acc * Dense.get t (Access.index a x))
          1 inputs
      in
      let oi = Access.index out_access x in
      Dense.set out oi (Dense.get out oi + product))

let run stmt env =
  let out = alloc_output stmt in
  run_with stmt env out;
  out
