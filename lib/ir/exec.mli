(** Golden (reference) executor for tensor statements.

    Runs the statement's full loop nest directly on dense tensors; every
    generated accelerator is verified element-wise against this. *)

type env = (string * Dense.t) list
(** Tensor name → storage. *)

val alloc_inputs : ?seed:int -> Stmt.t -> env
(** Allocate every input tensor of the statement with deterministic
    pseudo-random small values (range [-8, 8] so INT16 accumulation never
    saturates in the test sizes). *)

val alloc_output : Stmt.t -> Dense.t

val run : Stmt.t -> env -> Dense.t
(** Execute the statement: fresh zero output, accumulate the product of the
    inputs over the whole iteration domain.
    @raise Not_found if an input tensor is missing from the environment. *)

val run_with : Stmt.t -> env -> Dense.t -> unit
(** Same, accumulating into an existing output tensor. *)
