type t = { name : string; extent : int }

let v name extent =
  if extent <= 0 then invalid_arg "Iter.v: extent must be positive";
  if String.length name = 0 then invalid_arg "Iter.v: empty name";
  { name; extent }

let equal a b = String.equal a.name b.name && a.extent = b.extent
let pp ppf i = Format.fprintf ppf "%s<%d" i.name i.extent

let index_of iters name =
  let rec go k = function
    | [] -> raise Not_found
    | i :: rest -> if String.equal i.name name then k else go (k + 1) rest
  in
  go 0 iters
