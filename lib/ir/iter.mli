(** Loop iterators of a perfect nest.

    Every Table-II tensor algebra is a perfect loop nest over iterators with
    rectangular bounds [0, extent).  Iterators are referred to by name
    (lower-case in the IR; the paper's dataflow names use the upper-cased
    initial, e.g. the [KCX] in [KCX-SST]). *)

type t = { name : string; extent : int }

val v : string -> int -> t
(** [v name extent] is an iterator. @raise Invalid_argument if [extent <= 0]
    or [name] is empty. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val index_of : t list -> string -> int
(** Position of the named iterator in a nest. @raise Not_found. *)
