exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

(* --- tiny scanner ------------------------------------------------- *)

type token =
  | Ident of string
  | Int of int
  | Lbracket
  | Rbracket
  | Comma
  | Plus_eq
  | Plus
  | Star

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let i = ref 0 in
  let peek () = if !i < n then Some src.[!i] else None in
  while !i < n do
    (match src.[!i] with
     | ' ' | '\t' | '\n' -> incr i
     | '[' ->
       tokens := Lbracket :: !tokens;
       incr i
     | ']' ->
       tokens := Rbracket :: !tokens;
       incr i
     | ',' ->
       tokens := Comma :: !tokens;
       incr i
     | '*' ->
       tokens := Star :: !tokens;
       incr i
     | '+' ->
       incr i;
       if peek () = Some '=' then begin
         tokens := Plus_eq :: !tokens;
         incr i
       end
       else tokens := Plus :: !tokens
     | '0' .. '9' ->
       let start = !i in
       while !i < n && src.[!i] >= '0' && src.[!i] <= '9' do
         incr i
       done;
       tokens := Int (int_of_string (String.sub src start (!i - start))) :: !tokens
     | 'a' .. 'z' | 'A' .. 'Z' | '_' ->
       let start = !i in
       let is_ident c =
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_'
       in
       while !i < n && is_ident src.[!i] do
         incr i
       done;
       tokens := Ident (String.sub src start (!i - start)) :: !tokens
     | c -> fail "unexpected character '%c'" c)
  done;
  List.rev !tokens

(* --- recursive-descent parser ------------------------------------- *)

type term = { coeff : int; iter : string }

type access_ast = { tensor : string; dims : term list list }

let parse_formula tokens =
  let toks = ref tokens in
  let next () =
    match !toks with
    | [] -> None
    | t :: rest ->
      toks := rest;
      Some t
  in
  let expect what = function
    | Some t -> t
    | None -> fail "unexpected end of formula (wanted %s)" what
  in
  (* term := [int] ident   (2y means coefficient 2 on iterator y) *)
  let parse_term first =
    match first with
    | Int c -> (
      match next () with
      | Some (Ident it) -> { coeff = c; iter = it }
      | _ -> fail "coefficient %d must be followed by an iterator" c)
    | Ident it -> { coeff = 1; iter = it }
    | _ -> fail "expected an index term"
  in
  (* dim := term (+ term)* *)
  let rec parse_dim acc =
    match next () with
    | Some Comma -> (List.rev acc, `More)
    | Some Rbracket -> (List.rev acc, `Done)
    | Some Plus -> parse_dim acc
    | Some t -> parse_dim (parse_term t :: acc)
    | None -> fail "unterminated index expression"
  in
  let parse_access name =
    (match expect "'['" (next ()) with
     | Lbracket -> ()
     | _ -> fail "tensor %s must be followed by '['" name);
    let rec dims acc =
      match parse_dim [] with
      | [], _ -> fail "empty index expression in %s" name
      | d, `More -> dims (d :: acc)
      | d, `Done -> List.rev (d :: acc)
    in
    { tensor = name; dims = dims [] }
  in
  let output =
    match expect "output tensor" (next ()) with
    | Ident name -> parse_access name
    | _ -> fail "formula must start with the output tensor"
  in
  (match expect "'+='" (next ()) with
   | Plus_eq -> ()
   | _ -> fail "expected '+=' after the output access");
  let rec inputs acc =
    let a =
      match expect "input tensor" (next ()) with
      | Ident name -> parse_access name
      | _ -> fail "expected an input tensor"
    in
    match next () with
    | None -> List.rev (a :: acc)
    | Some Star -> inputs (a :: acc)
    | Some _ -> fail "expected '*' or end of formula after %s" a.tensor
  in
  (output, inputs [])

(* --- elaboration --------------------------------------------------- *)

let stmt ?name src ~extents =
  let output_ast, input_asts = parse_formula (tokenize src) in
  let iters = List.map (fun (n, e) -> Iter.v n e) extents in
  let pos name =
    match Iter.index_of iters name with
    | i -> i
    | exception Not_found ->
      fail "iterator %s is not declared in extents" name
  in
  let depth = List.length iters in
  let build (a : access_ast) =
    let matrix =
      Array.of_list
        (List.map
           (fun dim ->
             let row = Array.make depth 0 in
             List.iter
               (fun { coeff; iter } ->
                 if coeff <= 0 then fail "non-positive coefficient on %s" iter;
                 row.(pos iter) <- row.(pos iter) + coeff)
               dim;
             row)
           a.dims)
    in
    Access.v a.tensor matrix
  in
  let name = match name with Some n -> n | None -> output_ast.tensor in
  match
    Stmt.v name ~iters ~output:(build output_ast)
      ~inputs:(List.map build input_asts)
  with
  | s -> s
  | exception Invalid_argument m -> fail "%s" m
