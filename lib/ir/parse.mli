(** Einsum-style workload parser: the textual front-end.

    [stmt "C[m,n] += A[m,k] * B[n,k]" ~extents:[("m",64);("n",64);("k",64)]]
    builds the corresponding {!Stmt.t}.  Index expressions are sums of
    iterators with optional positive integer coefficients:

    {v
      C[k, y, x] += A[c, y+p, x+q] * B[k, c, p, q]       (Conv2D)
      C[k, y, x] += A[c, 2y+p, 2x+q] * B[k, c, p, q]     (stride 2)
      D[i, j] += A[i, k, l] * B[k, j] * C[l, j]          (MTTKRP)
    v}

    Iterators are single lower-case identifiers; the nest order is the
    order of [extents].  Whitespace is insignificant. *)

exception Parse_error of string

val stmt : ?name:string -> string -> extents:(string * int) list -> Stmt.t
(** @raise Parse_error on malformed input (with a description), including
    iterators used in the formula but missing from [extents]. *)
