type t = {
  name : string;
  iters : Iter.t list;
  output : Access.t;
  inputs : Access.t list;
}

let v name ~iters ~output ~inputs =
  let d = List.length iters in
  if d = 0 then invalid_arg "Stmt.v: empty nest";
  if inputs = [] then invalid_arg "Stmt.v: no inputs";
  let check a =
    if Access.depth a <> d then
      invalid_arg
        (Printf.sprintf "Stmt.v: access %s has depth %d, nest has %d"
           a.Access.tensor (Access.depth a) d)
  in
  check output;
  List.iter check inputs;
  { name; iters; output; inputs }

let depth s = List.length s.iters
let extents s = Array.of_list (List.map (fun i -> i.Iter.extent) s.iters)

let domain_size s =
  List.fold_left (fun acc i -> acc * i.Iter.extent) 1 s.iters

let tensors s = s.output :: s.inputs

let find_tensor s name =
  List.find (fun a -> String.equal a.Access.tensor name) (tensors s)

let iter_domain s f =
  let ext = extents s in
  let n = Array.length ext in
  let x = Array.make n 0 in
  let rec go d = if d = n then f x
    else
      for v = 0 to ext.(d) - 1 do
        x.(d) <- v;
        go (d + 1)
      done
  in
  go 0

let pp ppf s =
  let pp_acc = Access.pp_with s.iters in
  Format.fprintf ppf "%a +=" pp_acc s.output;
  List.iteri
    (fun k a ->
      if k > 0 then Format.fprintf ppf " *";
      Format.fprintf ppf " %a" pp_acc a)
    s.inputs
