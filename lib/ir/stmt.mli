(** Einsum-style tensor statements: a perfect loop nest computing

    [out[A_out x] += in1[A_1 x] * in2[A_2 x] * ...]

    which covers every Table-II workload (MTTKRP and TTMc have three
    inputs). *)

type t = {
  name : string;
  iters : Iter.t list;      (** nest order; defines the iteration vector *)
  output : Access.t;
  inputs : Access.t list;   (** at least one *)
}

val v : string -> iters:Iter.t list -> output:Access.t ->
  inputs:Access.t list -> t
(** @raise Invalid_argument if the access depths disagree with the nest
    depth, or [inputs] is empty. *)

val depth : t -> int
val extents : t -> int array
val domain_size : t -> int
(** Total number of iteration points (= number of MACs). *)

val tensors : t -> Access.t list
(** Output first, then inputs. *)

val find_tensor : t -> string -> Access.t
(** @raise Not_found *)

val iter_domain : t -> (int array -> unit) -> unit
(** Enumerate every iteration point in lexicographic nest order.  The array
    passed to the callback is reused; copy it if retained. *)

val pp : Format.formatter -> t -> unit
(** Formula rendering comparable to Table II, e.g.
    [C[m, n] += A[m, k] * B[n, k]]. *)
