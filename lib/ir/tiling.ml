let split (stmt : Stmt.t) tiles =
  let iters = stmt.Stmt.iters in
  let existing = List.map (fun i -> i.Iter.name) iters in
  List.iter
    (fun (name, tile) ->
      let it =
        match List.find_opt (fun i -> String.equal i.Iter.name name) iters with
        | Some it -> it
        | None -> invalid_arg ("Tiling.split: unknown iterator " ^ name)
      in
      if tile <= 0 || it.Iter.extent mod tile <> 0 then
        invalid_arg
          (Printf.sprintf "Tiling.split: tile %d does not divide extent %d of %s"
             tile it.Iter.extent name);
      if List.mem (name ^ "o") existing then
        invalid_arg ("Tiling.split: iterator name collision on " ^ name ^ "o"))
    tiles;
  let tile_of name = List.assoc_opt name tiles in
  (* nest order: all outer iterators (in [tiles] order), then the original
     iterators with tiled extents *)
  let outer_iters =
    List.map
      (fun (name, tile) ->
        let it = List.find (fun i -> String.equal i.Iter.name name) iters in
        Iter.v (name ^ "o") (it.Iter.extent / tile))
      tiles
  in
  let inner_iters =
    List.map
      (fun it ->
        match tile_of it.Iter.name with
        | Some tile -> Iter.v it.Iter.name tile
        | None -> it)
      iters
  in
  let new_iters = outer_iters @ inner_iters in
  let n_outer = List.length outer_iters in
  let old_pos name =
    let rec go k = function
      | [] -> assert false
      | it :: rest ->
        if String.equal it.Iter.name name then k else go (k + 1) rest
    in
    go 0 iters
  in
  let retarget (a : Access.t) =
    let depth = List.length new_iters in
    let matrix =
      Array.map
        (fun row ->
          let new_row = Array.make depth 0 in
          (* inner (original) columns keep their coefficients *)
          Array.iteri (fun j c -> new_row.(n_outer + j) <- c) row;
          (* outer columns get coefficient * tile *)
          List.iteri
            (fun k (name, tile) ->
              new_row.(k) <- row.(old_pos name) * tile)
            tiles;
          new_row)
        a.Access.matrix
    in
    Access.v a.Access.tensor matrix
  in
  Stmt.v stmt.Stmt.name ~iters:new_iters
    ~output:(retarget stmt.Stmt.output)
    ~inputs:(List.map retarget stmt.Stmt.inputs)

let tile_to_fit (stmt : Stmt.t) ~names ~budget =
  List.filter_map
    (fun name ->
      let it =
        match
          List.find_opt
            (fun i -> String.equal i.Iter.name name)
            stmt.Stmt.iters
        with
        | Some it -> it
        | None -> invalid_arg ("Tiling.tile_to_fit: unknown iterator " ^ name)
      in
      if it.Iter.extent <= budget then None
      else begin
        (* largest divisor of the extent that fits the budget *)
        let rec best d acc =
          if d > budget then acc
          else if it.Iter.extent mod d = 0 then best (d + 1) d
          else best (d + 1) acc
        in
        Some (name, best 1 1)
      end)
    names
