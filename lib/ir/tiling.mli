(** Loop tiling (§IV: "when PE and memory sizes are determined, the loops
    are performed tiling to fit the hardware resources").

    [split stmt [("m", 4); ("n", 4)]] rewrites the statement's loop nest so
    each named iterator [i] of extent [e] becomes an outer iterator [io]
    (extent [e / tile]) followed, later in the nest, by [i] with extent
    [tile]; every access coefficient [c] on [i] contributes [c * tile] on
    [io] and [c] on [i].  Outer iterators come first in nest order, so a
    subsequent STT selection of the original names maps the {i intra-tile}
    loops onto the array while the outer loops run as sequential passes —
    which is exactly how the accelerator generator executes them.

    The computed function is unchanged: tensor shapes and the
    iteration→element mapping are identical to the original statement. *)

val split : Stmt.t -> (string * int) list -> Stmt.t
(** @raise Invalid_argument if a name is unknown, a tile size does not
    divide the extent, or an outer name ([<i>o]) collides with an existing
    iterator. *)

val tile_to_fit : Stmt.t -> names:string list -> budget:int ->
  (string * int) list
(** Convenience: pick power-of-two-ish tile sizes for the given iterators
    so each is at most [budget], preferring exact divisors. *)
