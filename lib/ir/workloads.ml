let gemm ~m ~n ~k =
  let iters = [ Iter.v "m" m; Iter.v "n" n; Iter.v "k" k ] in
  Stmt.v "GEMM" ~iters
    ~output:(Access.of_terms "C" ~depth:3 [ [ 0 ]; [ 1 ] ])
    ~inputs:
      [ Access.of_terms "A" ~depth:3 [ [ 0 ]; [ 2 ] ];
        Access.of_terms "B" ~depth:3 [ [ 1 ]; [ 2 ] ] ]

let batched_gemv ~m ~n ~k =
  let iters = [ Iter.v "m" m; Iter.v "n" n; Iter.v "k" k ] in
  Stmt.v "Batched-GEMV" ~iters
    ~output:(Access.of_terms "C" ~depth:3 [ [ 0 ]; [ 1 ] ])
    ~inputs:
      [ Access.of_terms "A" ~depth:3 [ [ 0 ]; [ 2 ]; [ 1 ] ];
        Access.of_terms "B" ~depth:3 [ [ 0 ]; [ 2 ] ] ]

let conv2d ~k ~c ~y ~x ~p ~q =
  let iters =
    [ Iter.v "k" k; Iter.v "c" c; Iter.v "y" y; Iter.v "x" x;
      Iter.v "p" p; Iter.v "q" q ]
  in
  Stmt.v "Conv2D" ~iters
    ~output:(Access.of_terms "C" ~depth:6 [ [ 0 ]; [ 2 ]; [ 3 ] ])
    ~inputs:
      [ Access.of_terms "A" ~depth:6 [ [ 1 ]; [ 2; 4 ]; [ 3; 5 ] ];
        Access.of_terms "B" ~depth:6 [ [ 0 ]; [ 1 ]; [ 4 ]; [ 5 ] ] ]

let depthwise_conv ~k ~y ~x ~p ~q =
  let iters =
    [ Iter.v "k" k; Iter.v "y" y; Iter.v "x" x; Iter.v "p" p; Iter.v "q" q ]
  in
  Stmt.v "Depthwise-Conv" ~iters
    ~output:(Access.of_terms "C" ~depth:5 [ [ 0 ]; [ 1 ]; [ 2 ] ])
    ~inputs:
      [ Access.of_terms "A" ~depth:5 [ [ 0 ]; [ 1; 3 ]; [ 2; 4 ] ];
        Access.of_terms "B" ~depth:5 [ [ 0 ]; [ 3 ]; [ 4 ] ] ]

let mttkrp ~i ~j ~k ~l =
  let iters = [ Iter.v "i" i; Iter.v "j" j; Iter.v "k" k; Iter.v "l" l ] in
  Stmt.v "MTTKRP" ~iters
    ~output:(Access.of_terms "D" ~depth:4 [ [ 0 ]; [ 1 ] ])
    ~inputs:
      [ Access.of_terms "A" ~depth:4 [ [ 0 ]; [ 2 ]; [ 3 ] ];
        Access.of_terms "B" ~depth:4 [ [ 2 ]; [ 1 ] ];
        Access.of_terms "C" ~depth:4 [ [ 3 ]; [ 1 ] ] ]

let ttmc ~i ~j ~k ~l ~m =
  let iters =
    [ Iter.v "i" i; Iter.v "j" j; Iter.v "k" k; Iter.v "l" l; Iter.v "m" m ]
  in
  Stmt.v "TTMc" ~iters
    ~output:(Access.of_terms "D" ~depth:5 [ [ 0 ]; [ 1 ]; [ 2 ] ])
    ~inputs:
      [ Access.of_terms "A" ~depth:5 [ [ 0 ]; [ 3 ]; [ 4 ] ];
        Access.of_terms "B" ~depth:5 [ [ 3 ]; [ 1 ] ];
        Access.of_terms "C" ~depth:5 [ [ 4 ]; [ 2 ] ] ]

let conv2d_strided ~stride ~k ~c ~y ~x ~p ~q =
  let iters =
    [ Iter.v "k" k; Iter.v "c" c; Iter.v "y" y; Iter.v "x" x;
      Iter.v "p" p; Iter.v "q" q ]
  in
  (* of_terms adds 1 per listed position, so repeating y encodes stride*y *)
  let rep n j = List.init n (fun _ -> j) in
  Stmt.v "Conv2D-strided" ~iters
    ~output:(Access.of_terms "C" ~depth:6 [ [ 0 ]; [ 2 ]; [ 3 ] ])
    ~inputs:
      [ Access.of_terms "A" ~depth:6
          [ [ 1 ]; rep stride 2 @ [ 4 ]; rep stride 3 @ [ 5 ] ];
        Access.of_terms "B" ~depth:6 [ [ 0 ]; [ 1 ]; [ 4 ]; [ 5 ] ] ]

let pointwise_conv ~k ~c ~y ~x =
  let iters = [ Iter.v "k" k; Iter.v "c" c; Iter.v "y" y; Iter.v "x" x ] in
  Stmt.v "Pointwise-Conv" ~iters
    ~output:(Access.of_terms "C" ~depth:4 [ [ 0 ]; [ 2 ]; [ 3 ] ])
    ~inputs:
      [ Access.of_terms "A" ~depth:4 [ [ 1 ]; [ 2 ]; [ 3 ] ];
        Access.of_terms "B" ~depth:4 [ [ 0 ]; [ 1 ] ] ]

let gemv ~m ~k =
  let iters = [ Iter.v "m" m; Iter.v "k" k ] in
  Stmt.v "GEMV" ~iters
    ~output:(Access.of_terms "y" ~depth:2 [ [ 0 ] ])
    ~inputs:
      [ Access.of_terms "A" ~depth:2 [ [ 0 ]; [ 1 ] ];
        Access.of_terms "x" ~depth:2 [ [ 1 ] ] ]

let resnet_layer2 = conv2d ~k:64 ~c:64 ~y:56 ~x:56 ~p:3 ~q:3
let resnet_layer5 = conv2d ~k:512 ~c:512 ~y:7 ~x:7 ~p:3 ~q:3

(* ---------------------------------------------------------------- *)
(* Whole networks: named layer lists for the network sweep.  Names are
   per-layer (conv3_1, ffn_up, ...); many layers share one shape, and the
   sweep dedups them by canonical statement fingerprint — ResNet-18's 21
   layers reduce to 12 unique shapes, BERT-base's 8 to 5. *)

let resnet18 () =
  let block prefix ~k ~y =
    (* one residual stage: entry 3x3 stride-2 + 1x1 downsample projection,
       then three plain 3x3 convs at the stage's resolution *)
    [ (prefix ^ "_1a", conv2d_strided ~stride:2 ~k ~c:(k / 2) ~y ~x:y ~p:3 ~q:3);
      (prefix ^ "_proj", conv2d_strided ~stride:2 ~k ~c:(k / 2) ~y ~x:y ~p:1 ~q:1);
      (prefix ^ "_1b", conv2d ~k ~c:k ~y ~x:y ~p:3 ~q:3);
      (prefix ^ "_2a", conv2d ~k ~c:k ~y ~x:y ~p:3 ~q:3);
      (prefix ^ "_2b", conv2d ~k ~c:k ~y ~x:y ~p:3 ~q:3) ]
  in
  [ ("conv1", conv2d_strided ~stride:2 ~k:64 ~c:3 ~y:112 ~x:112 ~p:7 ~q:7);
    ("conv2_1a", conv2d ~k:64 ~c:64 ~y:56 ~x:56 ~p:3 ~q:3);
    ("conv2_1b", conv2d ~k:64 ~c:64 ~y:56 ~x:56 ~p:3 ~q:3);
    ("conv2_2a", conv2d ~k:64 ~c:64 ~y:56 ~x:56 ~p:3 ~q:3);
    ("conv2_2b", conv2d ~k:64 ~c:64 ~y:56 ~x:56 ~p:3 ~q:3) ]
  @ block "conv3" ~k:128 ~y:28
  @ block "conv4" ~k:256 ~y:14
  @ block "conv5" ~k:512 ~y:7
  @ [ ("fc", gemm ~m:8 ~n:1000 ~k:512) ]

let bert_base () =
  (* one encoder layer at sequence length 128, hidden 768, 12 heads of 64;
     the three QKV projections and the output projection share one GEMM
     shape, so 8 layers dedup to 5 unique shapes *)
  [ ("q_proj", gemm ~m:128 ~n:768 ~k:768);
    ("k_proj", gemm ~m:128 ~n:768 ~k:768);
    ("v_proj", gemm ~m:128 ~n:768 ~k:768);
    ("attn_scores", gemm ~m:128 ~n:128 ~k:64);
    ("attn_ctx", gemm ~m:128 ~n:64 ~k:128);
    ("attn_out", gemm ~m:128 ~n:768 ~k:768);
    ("ffn_up", gemm ~m:128 ~n:3072 ~k:768);
    ("ffn_down", gemm ~m:128 ~n:768 ~k:3072) ]

let tiny_net () =
  (* smoke-gate network: small extents, one duplicated shape so the gates
     can watch both inter-layer dedup and store warm-up *)
  [ ("conv_a", conv2d ~k:8 ~c:8 ~y:8 ~x:8 ~p:3 ~q:3);
    ("conv_b", conv2d ~k:8 ~c:8 ~y:8 ~x:8 ~p:3 ~q:3);
    ("gemm_a", gemm ~m:32 ~n:32 ~k:32);
    ("gemv_a", batched_gemv ~m:8 ~n:16 ~k:16) ]

let networks () =
  [ ("resnet18", resnet18 ());
    ("bert-base", bert_base ());
    ("tiny", tiny_net ()) ]

let all_named () =
  [ ("GEMM", gemm ~m:256 ~n:256 ~k:256);
    ("Batched-GEMV", batched_gemv ~m:64 ~n:256 ~k:256);
    ("Conv2D-L2", resnet_layer2);
    ("Conv2D-L5", resnet_layer5);
    ("Depthwise-Conv", depthwise_conv ~k:256 ~y:28 ~x:28 ~p:3 ~q:3);
    ("MTTKRP", mttkrp ~i:128 ~j:64 ~k:64 ~l:64);
    ("TTMc", ttmc ~i:64 ~j:32 ~k:32 ~l:64 ~m:64) ]

let default_sizes = all_named ()
