(** The six tensor algebras evaluated in the paper (Table II), plus the
    ResNet Conv2D layer shapes used in §VI-A.

    Iterator order follows the paper's formulas; dataflow names such as
    [KCX-SST] pick iterators by their (upper-cased) names. *)

val gemm : m:int -> n:int -> k:int -> Stmt.t
(** [C[m,n] += A[m,k] * B[n,k]] *)

val batched_gemv : m:int -> n:int -> k:int -> Stmt.t
(** [C[m,n] += A[m,k,n] * B[m,k]] — tensor A is touched exactly once per
    MAC, hence only unicast dataflows exist for it. *)

val conv2d : k:int -> c:int -> y:int -> x:int -> p:int -> q:int -> Stmt.t
(** [C[k,y,x] += A[c,y+p,x+q] * B[k,c,p,q]] *)

val depthwise_conv : k:int -> y:int -> x:int -> p:int -> q:int -> Stmt.t
(** [C[k,y,x] += A[k,y+p,x+q] * B[k,p,q]] *)

val mttkrp : i:int -> j:int -> k:int -> l:int -> Stmt.t
(** [D[i,j] += A[i,k,l] * B[k,j] * C[l,j]] *)

val ttmc : i:int -> j:int -> k:int -> l:int -> m:int -> Stmt.t
(** [D[i,j,k] += A[i,l,m] * B[l,j] * C[m,k]] *)

val conv2d_strided : stride:int -> k:int -> c:int -> y:int -> x:int ->
  p:int -> q:int -> Stmt.t
(** [C[k,y,x] += A[c, stride*y+p, stride*x+q] * B[k,c,p,q]] — strided
    convolution; exercises access-matrix coefficients > 1. *)

val pointwise_conv : k:int -> c:int -> y:int -> x:int -> Stmt.t
(** 1×1 convolution [C[k,y,x] += A[c,y,x] * B[k,c]]. *)

val gemv : m:int -> k:int -> Stmt.t
(** [y[m] += A[m,k] * x[k]] — a rank-1-output corner case. *)

val resnet_layer2 : Stmt.t
(** Conv2D, ResNet-18 conv2_x: 64 ch in/out, 56×56 activations, 3×3. *)

val resnet_layer5 : Stmt.t
(** Conv2D, ResNet-18 conv5_x: 512 ch in/out, 7×7 activations, 3×3 —
    the small [x = y = 7] bounds that hurt PE utilisation in Fig. 5. *)

val resnet18 : unit -> (string * Stmt.t) list
(** ResNet-18 inference, all 21 weight layers (conv1 ... fc) with
    per-layer names; 12 unique shapes after dedup. *)

val bert_base : unit -> (string * Stmt.t) list
(** One BERT-base encoder layer at sequence length 128 as 8 GEMMs
    (QKV/output projections, attention score/context, FFN up/down);
    5 unique shapes after dedup. *)

val tiny_net : unit -> (string * Stmt.t) list
(** Four small layers (one duplicated shape) — the smoke-gate network. *)

val networks : unit -> (string * (string * Stmt.t) list) list
(** All whole-network tables by name: ["resnet18"], ["bert-base"],
    ["tiny"]. *)

val all_named : unit -> (string * Stmt.t) list
(** Evaluation-sized instances of every workload, keyed by the names used in
    Fig. 5 ("GEMM", "Batched-GEMV", "Conv2D-L2", "Conv2D-L5",
    "Depthwise-Conv", "MTTKRP", "TTMc"). *)

val default_sizes : (string * Stmt.t) list
(** Alias of {!all_named} evaluated once. *)
