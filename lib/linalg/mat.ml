type t = { m : Rat.t array array; rows : int; cols : int }

let make ~rows ~cols f =
  if rows <= 0 || cols <= 0 then invalid_arg "Mat.make: empty matrix";
  { m = Array.init rows (fun i -> Array.init cols (fun j -> f i j));
    rows; cols }

let of_rows rs =
  let rows = Array.length rs in
  if rows = 0 then invalid_arg "Mat.of_rows: empty matrix";
  let cols = Array.length rs.(0) in
  if cols = 0 then invalid_arg "Mat.of_rows: empty row";
  Array.iter
    (fun r -> if Array.length r <> cols then invalid_arg "Mat.of_rows: ragged")
    rs;
  { m = Array.map Array.copy rs; rows; cols }

let of_int_rows ls =
  of_rows
    (Array.of_list
       (List.map (fun r -> Array.of_list (List.map Rat.of_int r)) ls))

let rows a = a.rows
let cols a = a.cols
let get a i j = a.m.(i).(j)
let row a i = Array.copy a.m.(i)
let col a j = Array.init a.rows (fun i -> a.m.(i).(j))

let to_int_rows a =
  List.init a.rows (fun i ->
      List.init a.cols (fun j -> Rat.to_int a.m.(i).(j)))

let identity n =
  make ~rows:n ~cols:n (fun i j -> if i = j then Rat.one else Rat.zero)

let zero ~rows ~cols = make ~rows ~cols (fun _ _ -> Rat.zero)
let transpose a = make ~rows:a.cols ~cols:a.rows (fun i j -> a.m.(j).(i))

let lift2 name f a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg ("Mat." ^ name ^ ": shape mismatch");
  make ~rows:a.rows ~cols:a.cols (fun i j -> f a.m.(i).(j) b.m.(i).(j))

let add = lift2 "add" Rat.add
let sub = lift2 "sub" Rat.sub
let scale k a = make ~rows:a.rows ~cols:a.cols (fun i j -> Rat.mul k a.m.(i).(j))
let map f a = make ~rows:a.rows ~cols:a.cols (fun i j -> f a.m.(i).(j))

let mul a b =
  if a.cols <> b.rows then invalid_arg "Mat.mul: shape mismatch";
  make ~rows:a.rows ~cols:b.cols (fun i j ->
      let acc = ref Rat.zero in
      for k = 0 to a.cols - 1 do
        acc := Rat.add !acc (Rat.mul a.m.(i).(k) b.m.(k).(j))
      done;
      !acc)

let mul_vec a v =
  if a.cols <> Vec.dim v then invalid_arg "Mat.mul_vec: shape mismatch";
  Array.init a.rows (fun i -> Vec.dot a.m.(i) v)

let equal a b =
  a.rows = b.rows && a.cols = b.cols
  && Array.for_all2 (Array.for_all2 Rat.equal) a.m b.m

(* Gauss–Jordan elimination to reduced row-echelon form. *)
let rref a =
  let m = Array.map Array.copy a.m in
  let pivots = ref [] in
  let r = ref 0 in
  for c = 0 to a.cols - 1 do
    if !r < a.rows then begin
      (* find a pivot row *)
      let p = ref (-1) in
      for i = !r to a.rows - 1 do
        if !p < 0 && not (Rat.is_zero m.(i).(c)) then p := i
      done;
      if !p >= 0 then begin
        let tmp = m.(!r) in
        m.(!r) <- m.(!p);
        m.(!p) <- tmp;
        let inv = Rat.inv m.(!r).(c) in
        m.(!r) <- Array.map (Rat.mul inv) m.(!r);
        for i = 0 to a.rows - 1 do
          if i <> !r && not (Rat.is_zero m.(i).(c)) then begin
            let f = m.(i).(c) in
            for j = 0 to a.cols - 1 do
              m.(i).(j) <- Rat.sub m.(i).(j) (Rat.mul f m.(!r).(j))
            done
          end
        done;
        pivots := c :: !pivots;
        incr r
      end
    end
  done;
  ({ a with m }, List.rev !pivots)

let rank a =
  let _, pivots = rref a in
  List.length pivots

let det a =
  if a.rows <> a.cols then invalid_arg "Mat.det: non-square";
  let m = Array.map Array.copy a.m in
  let n = a.rows in
  let d = ref Rat.one in
  (try
     for c = 0 to n - 1 do
       let p = ref (-1) in
       for i = c to n - 1 do
         if !p < 0 && not (Rat.is_zero m.(i).(c)) then p := i
       done;
       if !p < 0 then begin
         d := Rat.zero;
         raise Exit
       end;
       if !p <> c then begin
         let tmp = m.(c) in
         m.(c) <- m.(!p);
         m.(!p) <- tmp;
         d := Rat.neg !d
       end;
       d := Rat.mul !d m.(c).(c);
       let inv = Rat.inv m.(c).(c) in
       for i = c + 1 to n - 1 do
         if not (Rat.is_zero m.(i).(c)) then begin
           let f = Rat.mul inv m.(i).(c) in
           for j = c to n - 1 do
             m.(i).(j) <- Rat.sub m.(i).(j) (Rat.mul f m.(c).(j))
           done
         end
       done
     done
   with Exit -> ());
  !d

let hcat a b =
  if a.rows <> b.rows then invalid_arg "Mat.hcat: row mismatch";
  make ~rows:a.rows ~cols:(a.cols + b.cols) (fun i j ->
      if j < a.cols then a.m.(i).(j) else b.m.(i).(j - a.cols))

let vcat a b =
  if a.cols <> b.cols then invalid_arg "Mat.vcat: col mismatch";
  make ~rows:(a.rows + b.rows) ~cols:a.cols (fun i j ->
      if i < a.rows then a.m.(i).(j) else b.m.(i - a.rows).(j))

let inverse a =
  if a.rows <> a.cols then invalid_arg "Mat.inverse: non-square";
  let n = a.rows in
  let aug, pivots = rref (hcat a (identity n)) in
  if List.length pivots <> n || List.exists (fun c -> c >= n) pivots then None
  else Some (make ~rows:n ~cols:n (fun i j -> get aug i (j + n)))

let null_space a =
  let r, pivots = rref a in
  let is_pivot = Array.make a.cols false in
  List.iter (fun c -> is_pivot.(c) <- true) pivots;
  let pivot_row = Array.make a.cols (-1) in
  List.iteri (fun i c -> pivot_row.(c) <- i) pivots;
  let free = ref [] in
  for c = a.cols - 1 downto 0 do
    if not is_pivot.(c) then free := c :: !free
  done;
  let basis_for f =
    Array.init a.cols (fun j ->
        if j = f then Rat.one
        else if is_pivot.(j) then Rat.neg (get r pivot_row.(j) f)
        else Rat.zero)
  in
  List.map basis_for !free

let solve a b =
  if a.rows <> Vec.dim b then invalid_arg "Mat.solve: shape mismatch";
  let bm = make ~rows:a.rows ~cols:1 (fun i _ -> b.(i)) in
  let aug, pivots = rref (hcat a bm) in
  if List.exists (fun c -> c = a.cols) pivots then None
  else begin
    let x = Array.make a.cols Rat.zero in
    List.iteri (fun i c -> x.(c) <- get aug i a.cols) pivots;
    Some x
  end

(* Full-rank decomposition: A = C F where C stacks the pivot columns of A
   and F is the nonzero rows of rref A. *)
let pseudo_inverse a =
  let r, pivots = rref a in
  match pivots with
  | [] -> zero ~rows:a.cols ~cols:a.rows
  | _ ->
    let k = List.length pivots in
    let pivot_cols = Array.of_list pivots in
    let c = make ~rows:a.rows ~cols:k (fun i j -> a.m.(i).(pivot_cols.(j))) in
    let f = make ~rows:k ~cols:a.cols (fun i j -> get r i j) in
    let ct = transpose c and ft = transpose f in
    let inv_exn m =
      match inverse m with
      | Some x -> x
      | None -> assert false (* C, F have full rank by construction *)
    in
    mul ft (mul (inv_exn (mul f ft)) (mul (inv_exn (mul ct c)) ct))

let pp ppf a =
  Format.fprintf ppf "@[<v>";
  for i = 0 to a.rows - 1 do
    Format.fprintf ppf "[@[%a@]]"
      (Format.pp_print_array
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
         Rat.pp)
      a.m.(i);
    if i < a.rows - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
