(** Dense rational matrices with the exact algorithms the STT analysis
    needs: Gauss–Jordan reduction, rank, inverse, null space, linear solve,
    and Moore–Penrose pseudo-inverse (exact over the rationals). *)

type t
(** Row-major rational matrix. *)

val make : rows:int -> cols:int -> (int -> int -> Rat.t) -> t
val of_int_rows : int list list -> t
(** Build from integer entries, one inner list per row.
    @raise Invalid_argument on ragged rows or the empty matrix. *)

val of_rows : Rat.t array array -> t
val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> Rat.t
val row : t -> int -> Vec.t
val col : t -> int -> Vec.t
val to_int_rows : t -> int list list
(** @raise Invalid_argument if an entry is not an integer. *)

val identity : int -> t
val zero : rows:int -> cols:int -> t
val transpose : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : Rat.t -> t -> t
val mul : t -> t -> t
val mul_vec : t -> Vec.t -> Vec.t
val equal : t -> t -> bool

val rref : t -> t * int list
(** Reduced row-echelon form and the list of pivot column indices. *)

val rank : t -> int
val det : t -> Rat.t
(** @raise Invalid_argument on a non-square matrix. *)

val inverse : t -> t option
(** [None] when singular. *)

val null_space : t -> Vec.t list
(** A basis of the right null space [{x | Ax = 0}]; empty list when the
    matrix has full column rank.  Basis vectors come from the RREF free
    columns, so they are deterministic. *)

val solve : t -> Vec.t -> Vec.t option
(** [solve a b] finds one [x] with [a x = b], or [None] if inconsistent. *)

val pseudo_inverse : t -> t
(** Exact Moore–Penrose pseudo-inverse via full-rank decomposition
    [A = C F], [A⁺ = Fᵀ (F Fᵀ)⁻¹ (Cᵀ C)⁻¹ Cᵀ].  For the zero matrix the
    pseudo-inverse is the zero matrix of transposed shape. *)

val hcat : t -> t -> t
val vcat : t -> t -> t
val map : (Rat.t -> Rat.t) -> t -> t
val pp : Format.formatter -> t -> unit
