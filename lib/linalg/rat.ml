type t = { num : int; den : int }

exception Overflow
exception Division_by_zero

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(* Detect overflow of [a * b] without Int64: check the division back. *)
let mul_check a b =
  let p = a * b in
  if a <> 0 && (p / a <> b || (a = -1 && b = min_int)) then raise Overflow;
  p

let add_check a b =
  let s = a + b in
  if (a >= 0 && b >= 0 && s < 0) || (a < 0 && b < 0 && s >= 0) then
    raise Overflow;
  s

let make num den =
  if den = 0 then raise Division_by_zero;
  if num = 0 then { num = 0; den = 1 }
  else
    let s = if den < 0 then -1 else 1 in
    let num = num * s and den = den * s in
    let g = gcd (abs num) den in
    { num = num / g; den = den / g }

let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)

let add a b =
  make (add_check (mul_check a.num b.den) (mul_check b.num a.den))
    (mul_check a.den b.den)

let neg a = { a with num = -a.num }
let sub a b = add a (neg b)
let mul a b = make (mul_check a.num b.num) (mul_check a.den b.den)

let inv a =
  if a.num = 0 then raise Division_by_zero;
  make a.den a.num

let div a b = mul a (inv b)
let abs a = { a with num = Stdlib.abs a.num }
let equal a b = a.num = b.num && a.den = b.den

let compare a b =
  Stdlib.compare (mul_check a.num b.den) (mul_check b.num a.den)

let sign a = Stdlib.compare a.num 0
let is_zero a = a.num = 0
let is_integer a = a.den = 1

let to_int a =
  if a.den <> 1 then invalid_arg "Rat.to_int: not an integer";
  a.num

let to_float a = float_of_int a.num /. float_of_int a.den

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( ~- ) = neg
let ( = ) = equal

let pp ppf a =
  if Stdlib.( = ) a.den 1 then Format.fprintf ppf "%d" a.num
  else Format.fprintf ppf "%d/%d" a.num a.den

let to_string a = Format.asprintf "%a" pp a
