(** Exact rational arithmetic over native integers.

    All STT matrices handled by TensorLib are tiny (at most 6×6) with small
    entries, so native [int] numerators/denominators normalised by gcd are
    exact for every computation the framework performs.  Arithmetic that
    would overflow raises {!Overflow} instead of wrapping silently. *)

type t = private { num : int; den : int }
(** A rational [num/den] with [den > 0] and [gcd |num| den = 1]. *)

exception Overflow
(** Raised when an intermediate product would exceed native-int range. *)

exception Division_by_zero

val make : int -> int -> t
(** [make num den] is the normalised rational [num/den].
    @raise Division_by_zero if [den = 0]. *)

val of_int : int -> t

val zero : t
val one : t
val minus_one : t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero if the divisor is {!zero}. *)

val neg : t -> t
val abs : t -> t
val inv : t -> t
(** @raise Division_by_zero on {!zero}. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val sign : t -> int
val is_zero : t -> bool
val is_integer : t -> bool

val to_int : t -> int
(** @raise Invalid_argument if the value is not an integer. *)

val to_float : t -> float

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( ~- ) : t -> t
val ( = ) : t -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
