type t = Rat.t array

let make n v = Array.make n v
let of_ints l = Array.of_list (List.map Rat.of_int l)
let of_list l = Array.of_list l
let dim = Array.length
let get v i = v.(i)
let map2 f a b =
  if dim a <> dim b then invalid_arg "Vec: dimension mismatch";
  Array.init (dim a) (fun i -> f a.(i) b.(i))

let add = map2 Rat.add
let sub = map2 Rat.sub
let scale k = Array.map (Rat.mul k)
let neg = Array.map Rat.neg

let dot a b =
  let products = map2 Rat.mul a b in
  Array.fold_left Rat.add Rat.zero products

let is_zero = Array.for_all Rat.is_zero
let equal a b = dim a = dim b && Array.for_all2 Rat.equal a b

let basis n i =
  Array.init n (fun j -> if j = i then Rat.one else Rat.zero)

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let to_integer v =
  if is_zero v then invalid_arg "Vec.to_integer: zero vector";
  let lcm a b = a / gcd a b * b in
  let denominators = Array.map (fun (r : Rat.t) -> r.Rat.den) v in
  let m = Array.fold_left lcm 1 denominators in
  let ints =
    Array.map (fun (r : Rat.t) -> r.Rat.num * (m / r.Rat.den)) v
  in
  let g =
    Array.fold_left (fun acc x -> gcd acc (abs x)) 0 ints
  in
  let ints = Array.map (fun x -> x / g) ints in
  (* first nonzero entry positive *)
  let rec first_sign i =
    if i >= Array.length ints then 1
    else if ints.(i) <> 0 then compare ints.(i) 0
    else first_sign (i + 1)
  in
  if first_sign 0 < 0 then Array.map (fun x -> -x) ints else ints

let pp ppf v =
  Format.fprintf ppf "(@[%a@])"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       Rat.pp)
    v
