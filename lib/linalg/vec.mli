(** Rational vectors (dense, immutable in practice). *)

type t = Rat.t array

val make : int -> Rat.t -> t
val of_ints : int list -> t
val of_list : Rat.t list -> t
val dim : t -> int
val get : t -> int -> Rat.t

val add : t -> t -> t
val sub : t -> t -> t
val scale : Rat.t -> t -> t
val dot : t -> t -> Rat.t
val neg : t -> t

val is_zero : t -> bool
val equal : t -> t -> bool

val basis : int -> int -> t
(** [basis n i] is the [i]-th standard basis vector of dimension [n]. *)

val to_integer : t -> int array
(** Scale a rational vector by the lcm of denominators and divide by the gcd
    of numerators, producing the primitive integer vector spanning the same
    ray.  The sign convention makes the first nonzero entry positive.
    @raise Invalid_argument on the zero vector. *)

val pp : Format.formatter -> t -> unit
