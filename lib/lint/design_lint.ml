open Tl_stt

let tensor_name (ti : Design.tensor_info) = ti.Design.access.Tl_ir.Access.tensor

(* Footprint bounding box over the selected domain, mirroring
   [Schedule.build]: the first space row indexes array rows, the second
   (when present) array columns. *)
let footprint_dims transform =
  let fp = Transform.space_footprint transform in
  let sd = Transform.space_dims transform in
  let lo = Array.make sd max_int and hi = Array.make sd min_int in
  Hashtbl.iter
    (fun p () ->
      Array.iteri
        (fun i v ->
          if v < lo.(i) then lo.(i) <- v;
          if v > hi.(i) then hi.(i) <- v)
        p)
    fp;
  Array.init sd (fun i -> hi.(i) - lo.(i) + 1)

let check_design ?(rows = 16) ?(cols = 16) ?(suppress = []) design =
  let target = design.Design.name in
  let transform = design.Design.transform in
  let findings = ref [] in
  let add f = findings := f :: !findings in
  (* L102: PE bounds *)
  let dims = footprint_dims transform in
  let fits =
    match Array.length dims with
    | 1 -> dims.(0) <= rows
    | 2 -> dims.(0) <= rows && dims.(1) <= cols
    | _ -> false
  in
  if not fits then
    add
      (Finding.v ~rule:"L102" ~target ~subject:"space footprint"
         (Printf.sprintf "footprint %s exceeds the %dx%d PE array"
            (String.concat "x"
               (Array.to_list (Array.map string_of_int dims)))
            rows cols));
  (* L103: output accumulations must be separated in time or reduced by a
     tree; a reuse plane perpendicular to the time axis (or full reuse)
     makes every PE update the same element in the same cycle. *)
  let out = Design.output_info design in
  (match out.Design.dataflow with
   | Dataflow.Reuse2d Dataflow.Broadcast ->
     add
       (Finding.v ~rule:"L103" ~target ~subject:(tensor_name out)
          "output reuse plane is perpendicular to the time axis: all PEs \
           accumulate the same element in the same cycle with no \
           reduction-tree realisation")
   | Dataflow.Reuse_full ->
     add
       (Finding.v ~rule:"L103" ~target ~subject:(tensor_name out)
          "output ignores every selected iterator: the whole array \
           accumulates one element every cycle")
   | _ -> ());
  (* L104: raw reuse directions with dt < 0 (classification normalises the
     orientation, but the raw transform maps reuse backwards in time) *)
  List.iter
    (fun (ti : Design.tensor_info) ->
      List.iter
        (fun v ->
          let ints = Tl_linalg.Vec.to_integer v in
          let dt = ints.(Array.length ints - 1) in
          if dt < 0 then
            add
              (Finding.v ~rule:"L104" ~target ~subject:(tensor_name ti)
                 (Printf.sprintf
                    "raw reuse direction [%s] points backwards in time \
                     (dt = %d); normalised during classification"
                    (String.concat "; "
                       (Array.to_list (Array.map string_of_int ints)))
                    dt)))
        (Reuse.reuse_basis transform ti.Design.access))
    design.Design.tensors;
  (* L105: dataflows without a structural RTL template *)
  if not (Design.netlist_supported design) then
    List.iter
      (fun (ti : Design.tensor_info) ->
        let unsupported =
          match (ti.Design.role, ti.Design.dataflow) with
          | _, Dataflow.Reuse_full -> true
          | Design.Output, Dataflow.Reuse2d (Dataflow.Systolic_multicast _)
          | Design.Output, Dataflow.Reuse2d Dataflow.Broadcast -> true
          | _, _ -> false
        in
        if unsupported then
          add
            (Finding.v ~rule:"L105" ~target ~subject:(tensor_name ti)
               (Format.asprintf
                  "no netlist template for %s dataflow %a"
                  (match ti.Design.role with
                   | Design.Input -> "input"
                   | Design.Output -> "output")
                  Dataflow.pp ti.Design.dataflow)))
      design.Design.tensors;
  Finding.suppress ~rules:suppress (List.rev !findings)

let check_matrix ?rows ?cols ?(suppress = []) stmt ~selected ~matrix =
  let target =
    Printf.sprintf "stt[%s]"
      (String.concat ","
         (Array.to_list (Array.map string_of_int selected)))
  in
  let structural = ref [] in
  let add_struct msg =
    structural :=
      Finding.v ~rule:"L100" ~target ~subject:"selection/matrix" msg
      :: !structural
  in
  let n = Array.length selected in
  let depth = Tl_ir.Stmt.depth stmt in
  if n < 2 then add_struct "need at least 2 selected iterators";
  Array.iter
    (fun i ->
      if i < 0 || i >= depth then
        add_struct
          (Printf.sprintf "selected iterator %d out of range [0, %d)" i
             depth))
    selected;
  let sorted = Array.copy selected in
  Array.sort compare sorted;
  for i = 0 to n - 2 do
    if sorted.(i) = sorted.(i + 1) then
      add_struct
        (Printf.sprintf "iterator %d selected more than once" sorted.(i))
  done;
  if
    List.length matrix <> n
    || List.exists (fun row -> List.length row <> n) matrix
  then
    add_struct
      (Printf.sprintf "matrix must be %dx%d for %d selected iterators" n n n);
  match !structural with
  | _ :: _ as fs -> (Finding.suppress ~rules:suppress (List.rev fs), None)
  | [] ->
    let m = Tl_linalg.Mat.of_int_rows matrix in
    if Tl_linalg.Rat.is_zero (Tl_linalg.Mat.det m) then
      ( Finding.suppress ~rules:suppress
          [ Finding.v ~rule:"L101" ~target ~subject:"matrix"
              "the STT matrix is singular: distinct iterations collide on \
               the same (PE, cycle) slot" ],
        None )
    else
      let design = Design.analyze (Transform.v stmt ~selected ~matrix) in
      (check_design ?rows ?cols ~suppress design, Some design)
