(** Design lint: rule-based validity checks over space-time transformations.

    Where {!Tl_stt.Transform.v} raises on a malformed or singular STT, this
    front end reports rule-tagged findings (L100/L101) and goes on to check
    properties elaboration would only discover later: the PE-array bounds
    (L102), schedule causality of output accumulation (L103), raw reuse
    directions pointing backwards in time (L104), and dataflows the
    structural RTL backend has no template for (L105).

    See docs/LINT.md for the rule catalog. *)

val check_matrix : ?rows:int -> ?cols:int -> ?suppress:string list ->
  Tl_ir.Stmt.t -> selected:int array -> matrix:int list list ->
  Finding.t list * Tl_stt.Design.t option
(** Validate a raw selection + matrix.  Structural problems (L100, L101)
    are reported instead of raised; when the transformation is well-formed
    the analysed design is returned together with its {!check_design}
    findings.  Defaults: 16×16 array, no suppressions. *)

val check_design : ?rows:int -> ?cols:int -> ?suppress:string list ->
  Tl_stt.Design.t -> Finding.t list
(** Rules L102–L105 over an analysed design. *)
