type severity = Error | Warning | Info

type t = {
  rule : string;
  severity : severity;
  target : string;
  subject : string;
  message : string;
}

type rule_info = {
  id : string;
  title : string;
  default_severity : severity;
  summary : string;
}

let catalog =
  [ { id = "L001"; title = "unassigned-wire"; default_severity = Error;
      summary = "a wire placeholder is never assigned a driver" };
    { id = "L002"; title = "combinational-cycle"; default_severity = Error;
      summary = "combinational feedback loop (no register on the path)" };
    { id = "L003"; title = "frozen-register"; default_severity = Warning;
      summary =
        "register data input is a constant equal to its initial value" };
    { id = "L004"; title = "mux-identical-branches"; default_severity = Warning;
      summary = "mux branches are the same signal; the select is dead" };
    { id = "L005"; title = "mux-constant-select"; default_severity = Warning;
      summary = "mux select is a constant; one branch is dead" };
    { id = "L006"; title = "constant-enable"; default_severity = Warning;
      summary = "register enable is tied to a constant" };
    { id = "L007"; title = "constant-clear"; default_severity = Warning;
      summary = "register clear is tied to a constant" };
    { id = "L008"; title = "writeless-ram"; default_severity = Warning;
      summary =
        "read-write ram has no write port; reads only see the initial \
         contents" };
    { id = "L009"; title = "ram-address-out-of-range"; default_severity = Error;
      summary = "constant ram address is outside the ram" };
    { id = "L010"; title = "unreachable-logic"; default_severity = Warning;
      summary = "logic not in the fan-in cone of any output" };
    { id = "L011"; title = "unobservable-register"; default_severity = Warning;
      summary = "register that can never influence an output" };
    { id = "L012"; title = "fanout-hotspot"; default_severity = Info;
      summary = "signal fanout above the configured threshold" };
    { id = "L013"; title = "unused-input"; default_severity = Warning;
      summary = "declared input is not read by any output cone" };
    { id = "L014"; title = "fault-surface-gap"; default_severity = Warning;
      summary = "register excluded from the fault-injectable signal table" };
    { id = "L015"; title = "unprotected-memory"; default_severity = Warning;
      summary =
        "writable memory bank without a parity companion under hardening" };
    { id = "L100"; title = "stt-malformed"; default_severity = Error;
      summary = "iterator selection or matrix shape is invalid" };
    { id = "L101"; title = "stt-singular"; default_severity = Error;
      summary = "STT matrix is singular; the mapping is not one-to-one" };
    { id = "L102"; title = "pe-bounds"; default_severity = Error;
      summary = "space footprint exceeds the PE array" };
    { id = "L103"; title = "schedule-causality"; default_severity = Error;
      summary =
        "output accumulations collide in the same cycle with no \
         reduction-tree realisation" };
    { id = "L104"; title = "reuse-negative-dt"; default_severity = Info;
      summary =
        "raw reuse direction points backwards in time (normalised during \
         classification)" };
    { id = "L105"; title = "netlist-unsupported"; default_severity = Warning;
      summary = "no structural RTL template for a tensor's dataflow" };
    { id = "L106"; title = "generation-rejected"; default_severity = Warning;
      summary =
        "the accelerator generator rejected the design at elaboration \
         time" };
    { id = "L200"; title = "accumulator-may-wrap"; default_severity = Warning;
      summary =
        "accumulating register or read-modify-write bank not proven to \
         stay within its width over the schedule" };
    { id = "L201"; title = "ram-address-unproven"; default_severity = Warning;
      summary =
        "memory address not proven in range (out-of-range writes are \
         dropped, reads return 0)" };
    { id = "L202"; title = "write-schedule-unproven"; default_severity = Warning;
      summary =
        "bank write schedule not proven to quiesce; a stuck strobe \
         re-accumulates cells indefinitely" };
    { id = "L203"; title = "constant-register"; default_severity = Info;
      summary =
        "register proven constant on every reachable cycle; it can be \
         folded away" };
    { id = "L204"; title = "dead-high-bits"; default_severity = Info;
      summary =
        "signals carry provably-constant high bits; datapath widths can \
         be narrowed" } ]

let rule_info id = List.find_opt (fun r -> String.equal r.id id) catalog

let v ~rule ?severity ~target ~subject message =
  let severity =
    match severity with
    | Some s -> s
    | None -> (
      match rule_info rule with
      | Some r -> r.default_severity
      | None -> Warning)
  in
  { rule; severity; target; subject; message }

let severity_label = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare a b =
  let c = Stdlib.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.rule b.rule in
    if c <> 0 then c
    else
      let c = String.compare a.target b.target in
      if c <> 0 then c else String.compare a.subject b.subject

let suppress ~rules findings =
  List.filter (fun f -> not (List.mem f.rule rules)) findings

let errors findings = List.filter (fun f -> f.severity = Error) findings
let has_errors findings = errors findings <> []

let count findings =
  List.fold_left
    (fun (e, w, i) f ->
      match f.severity with
      | Error -> (e + 1, w, i)
      | Warning -> (e, w + 1, i)
      | Info -> (e, w, i + 1))
    (0, 0, 0) findings

let pp ppf f =
  Format.fprintf ppf "%s %-7s [%s] %s: %s" f.rule (severity_label f.severity)
    f.target f.subject f.message

let pp_report ppf findings =
  let sorted = List.sort compare findings in
  Format.fprintf ppf "@[<v>";
  List.iter (fun f -> Format.fprintf ppf "%a@," pp f) sorted;
  let e, w, i = count findings in
  Format.fprintf ppf "%d error%s, %d warning%s, %d info@]" e
    (if e = 1 then "" else "s")
    w
    (if w = 1 then "" else "s")
    i

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json findings =
  let sorted = List.sort compare findings in
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"findings\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"rule\":\"%s\",\"severity\":\"%s\",\"target\":\"%s\",\
            \"subject\":\"%s\",\"message\":\"%s\"}"
           (json_escape f.rule)
           (severity_label f.severity)
           (json_escape f.target) (json_escape f.subject)
           (json_escape f.message)))
    sorted;
  let e, w, i = count findings in
  Buffer.add_string b
    (Printf.sprintf "],\"errors\":%d,\"warnings\":%d,\"infos\":%d}" e w i);
  Buffer.contents b

(* SARIF 2.1.0 static-analysis interchange: one run, the emitting rules
   described in the driver, each finding as a result with a logical
   location [target/subject].  Severity [Info] maps to SARIF's "note". *)
let sarif_level = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "note"

let to_sarif ?(tool = "tensorlib-lint") findings =
  let sorted = List.sort compare findings in
  let rules_used =
    List.sort_uniq String.compare (List.map (fun f -> f.rule) sorted)
  in
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    "  \"$schema\": \
     \"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  Buffer.add_string b "  \"version\": \"2.1.0\",\n";
  Buffer.add_string b "  \"runs\": [{\n";
  Buffer.add_string b
    (Printf.sprintf
       "    \"tool\": {\"driver\": {\"name\": \"%s\", \"rules\": ["
       (json_escape tool));
  List.iteri
    (fun i id ->
      if i > 0 then Buffer.add_string b ", ";
      match rule_info id with
      | Some r ->
        Buffer.add_string b
          (Printf.sprintf
             "{\"id\": \"%s\", \"name\": \"%s\", \"shortDescription\": \
              {\"text\": \"%s\"}, \"defaultConfiguration\": {\"level\": \
              \"%s\"}}"
             (json_escape r.id) (json_escape r.title)
             (json_escape r.summary)
             (sarif_level r.default_severity))
      | None ->
        Buffer.add_string b (Printf.sprintf "{\"id\": \"%s\"}" (json_escape id)))
    rules_used;
  Buffer.add_string b "]}},\n    \"results\": [";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf
           "{\"ruleId\": \"%s\", \"level\": \"%s\", \"message\": {\"text\": \
            \"%s\"}, \"locations\": [{\"logicalLocations\": \
            [{\"fullyQualifiedName\": \"%s/%s\"}]}]}"
           (json_escape f.rule)
           (sarif_level f.severity)
           (json_escape f.message)
           (json_escape f.target) (json_escape f.subject)))
    sorted;
  Buffer.add_string b "]\n  }]\n}";
  Buffer.contents b
