(** Lint findings: rule catalog, severities, suppression, reporting.

    Shared core of the two lint front ends ({!Netlist_lint} over elaborated
    circuits, {!Design_lint} over space-time transformations).  Every
    finding carries a stable rule ID (see {!catalog} and docs/LINT.md), a
    severity, the lint target (circuit or design name) and the specific
    subject (signal, tensor, ram) it is about. *)

type severity = Error | Warning | Info

type t = {
  rule : string;      (** stable rule ID, e.g. ["L003"] *)
  severity : severity;
  target : string;    (** circuit / design the finding belongs to *)
  subject : string;   (** offending signal / tensor / memory *)
  message : string;
}

type rule_info = {
  id : string;
  title : string;              (** short kebab-case rule name *)
  default_severity : severity;
  summary : string;            (** one-line rationale *)
}

val catalog : rule_info list
(** Every rule the two front ends can emit, in ID order. *)

val rule_info : string -> rule_info option

val v : rule:string -> ?severity:severity -> target:string ->
  subject:string -> string -> t
(** Build a finding; the severity defaults to the rule's catalog entry
    (Warning for unknown rules). *)

val severity_label : severity -> string
(** ["error"], ["warning"], ["info"]. *)

val compare : t -> t -> int
(** Errors first, then by rule ID, target, subject. *)

val suppress : rules:string list -> t list -> t list
(** Drop findings whose rule ID is in [rules] (per-rule suppression). *)

val errors : t list -> t list
val has_errors : t list -> bool

val count : t list -> int * int * int
(** (errors, warnings, infos). *)

val pp : Format.formatter -> t -> unit
(** One-line rendering: [L003 warning [target] subject: message]. *)

val pp_report : Format.formatter -> t list -> unit
(** Human-readable multi-line report, sorted with {!compare}, ending in a
    summary line. *)

val to_json : t list -> string
(** Machine-readable report:
    [{"findings":[...],"errors":N,"warnings":N,"infos":N}]. *)

val to_sarif : ?tool:string -> t list -> string
(** SARIF 2.1.0 interchange document (one run): every emitting rule is
    described in the tool driver, each finding becomes a result with a
    logical location [target/subject].  [Info] maps to SARIF level
    ["note"].  Shared by [tensorlib lint --sarif] and
    [tensorlib analyze --sarif]. *)
