open Tl_hw

type config = { suppress : string list; fanout_threshold : int }

let default_config = { suppress = []; fanout_threshold = 64 }

type source = {
  name : string;
  outputs : (string * Signal.t) list;
  roots : Signal.t list;
  declared_inputs : (string * int) list;
}

let source ?(roots = []) ?(declared_inputs = []) ~name outputs =
  { name; outputs; roots; declared_inputs }

let describe (s : Signal.t) =
  match s.Signal.name with
  | Some n -> Printf.sprintf "%s (id %d)" n s.Signal.id
  | None -> Printf.sprintf "id %d" s.Signal.id

(* Follow wire aliases; unlike [Signal.resolve] an unassigned wire is
   returned as itself so the lint never raises mid-analysis. *)
let rec chase (s : Signal.t) =
  match s.Signal.node with
  | Signal.Wire { contents = Some d } -> chase d
  | _ -> s

let const_of s =
  match (chase s).Signal.node with Signal.Const c -> Some c | _ -> None

(* Structural children, tolerating unassigned wires (treated as leaves).
   Ram reads contribute only their address here; write-port signals are
   charged once per ram by the callers that need them. *)
let children (s : Signal.t) =
  match s.Signal.node with
  | Signal.Input _ | Signal.Const _ -> []
  | Signal.Unop (_, a) -> [ a ]
  | Signal.Binop (_, a, b) -> [ a; b ]
  | Signal.Mux (c, a, b) -> [ c; a; b ]
  | Signal.Concat (a, b) -> [ a; b ]
  | Signal.Repl (a, _) -> [ a ]
  | Signal.Select (a, _, _) -> [ a ]
  | Signal.Reg r ->
    (r.Signal.d :: Option.to_list r.Signal.enable)
    @ Option.to_list r.Signal.clear
  | Signal.Wire { contents = Some d } -> [ d ]
  | Signal.Wire { contents = None } -> []
  | Signal.Ram_read (_, addr) -> [ addr ]

(* ---------------- rules over a validated circuit ---------------- *)

let reg_rules ~target (s : Signal.t) (r : Signal.reg) =
  let fs = ref [] in
  let add f = fs := f :: !fs in
  (match const_of r.Signal.d with
   | Some c
     when c = r.Signal.init
          && (r.Signal.clear = None || r.Signal.clear_to = r.Signal.init) ->
     add
       (Finding.v ~rule:"L003" ~target ~subject:(describe s)
          (Printf.sprintf
             "register data input is constant %d = init; the register can \
              never change value"
             c))
   | _ -> ());
  (match r.Signal.enable with
   | Some e -> (
     match const_of e with
     | Some 0 ->
       add
         (Finding.v ~rule:"L006" ~target ~subject:(describe s)
            "enable is tied to 0: the register never loads")
     | Some _ ->
       add
         (Finding.v ~rule:"L006" ~target ~subject:(describe s)
            "enable is tied to 1: the enable gating is redundant")
     | None -> ())
   | None -> ());
  (match r.Signal.clear with
   | Some c -> (
     match const_of c with
     | Some 0 ->
       add
         (Finding.v ~rule:"L007" ~target ~subject:(describe s)
            "clear is tied to 0: the clear logic is dead")
     | Some _ ->
       add
         (Finding.v ~rule:"L007" ~target ~subject:(describe s)
            (Printf.sprintf
               "clear is tied to 1: the register is held at %d"
               r.Signal.clear_to))
     | None -> ())
   | None -> ());
  !fs

let mux_rules ~target (s : Signal.t) sel a b =
  let fs = ref [] in
  let add f = fs := f :: !fs in
  if chase a == chase b then
    add
      (Finding.v ~rule:"L004" ~target ~subject:(describe s)
         (Printf.sprintf "both branches are %s; the select is dead"
            (describe (chase a))));
  (match const_of sel with
   | Some v ->
     add
       (Finding.v ~rule:"L005" ~target ~subject:(describe s)
          (Printf.sprintf
             "select is tied to %d: the %s branch is dead logic" v
             (if v = 0 then "on-1" else "on-0")))
   | None -> ());
  !fs

let ram_addr_rule ~target ~what (ram : Signal.ram) addr =
  match const_of addr with
  | Some a when a >= ram.Signal.size ->
    [ Finding.v ~rule:"L009" ~target
        ~subject:(Printf.sprintf "%s (ram %d)" ram.Signal.ram_name
                    ram.Signal.ram_id)
        (Printf.sprintf
           "constant %s address %d is out of range for size %d" what a
           ram.Signal.size) ]
  | _ -> []

let check_circuit ?(config = default_config) circuit =
  let target = Circuit.name circuit in
  let findings = ref [] in
  let add fs = findings := fs @ !findings in
  let nodes = Circuit.nodes circuit in
  (* per-node rules *)
  Array.iter
    (fun (s : Signal.t) ->
      match s.Signal.node with
      | Signal.Reg r -> add (reg_rules ~target s r)
      | Signal.Mux (sel, a, b) -> add (mux_rules ~target s sel a b)
      | Signal.Ram_read (ram, addr) ->
        add (ram_addr_rule ~target ~what:"read" ram addr)
      | _ -> ())
    nodes;
  (* ram-level rules *)
  List.iter
    (fun (ram : Signal.ram) ->
      (match ram.Signal.write_port with
       | None ->
         if not ram.Signal.read_only then
           add
             [ Finding.v ~rule:"L008" ~target
                 ~subject:
                   (Printf.sprintf "%s (ram %d)" ram.Signal.ram_name
                      ram.Signal.ram_id)
                 "read-write ram has no write port: reads only ever see \
                  the initial contents (did you mean a rom?)" ]
       | Some wp ->
         add (ram_addr_rule ~target ~what:"write" ram wp.Signal.waddr)))
    (Circuit.rams circuit);
  (* fanout: count structural references to each (wire-resolved) signal;
     wires are free aliases and constants are free literals, so neither is
     a hotspot subject *)
  let fanout : (int, int * Signal.t) Hashtbl.t =
    Hashtbl.create (Array.length nodes)
  in
  let charge c =
    let c = chase c in
    match c.Signal.node with
    | Signal.Const _ -> ()
    | _ ->
      let n = match Hashtbl.find_opt fanout c.Signal.id with
        | Some (n, _) -> n
        | None -> 0
      in
      Hashtbl.replace fanout c.Signal.id (n + 1, c)
  in
  Array.iter
    (fun (s : Signal.t) ->
      match s.Signal.node with
      | Signal.Wire _ -> ()
      | _ -> List.iter charge (children s))
    nodes;
  List.iter
    (fun (ram : Signal.ram) ->
      match ram.Signal.write_port with
      | None -> ()
      | Some wp ->
        List.iter charge [ wp.Signal.we; wp.Signal.waddr; wp.Signal.wdata ])
    (Circuit.rams circuit);
  Hashtbl.iter
    (fun _ (n, s) ->
      if n > config.fanout_threshold then
        add
          [ Finding.v ~rule:"L012" ~target ~subject:(describe s)
              (Printf.sprintf "fanout %d exceeds threshold %d" n
                 config.fanout_threshold) ])
    fanout;
  Finding.suppress ~rules:config.suppress (List.rev !findings)

(* ---------------- raw-source rules ---------------- *)

let cone_ids outputs =
  let seen : (int, unit) Hashtbl.t = Hashtbl.create 1024 in
  let rec visit s =
    if not (Hashtbl.mem seen s.Signal.id) then begin
      Hashtbl.add seen s.Signal.id ();
      List.iter visit (children s);
      match s.Signal.node with
      | Signal.Ram_read (ram, _) -> (
        match ram.Signal.write_port with
        | Some wp ->
          List.iter visit
            [ wp.Signal.we; wp.Signal.waddr; wp.Signal.wdata ]
        | None -> ())
      | _ -> ()
    end
  in
  List.iter visit outputs;
  seen

let unreachable_rules ~target ~circuit_cone roots =
  List.concat_map
    (fun root ->
      let root_cone : (int, Signal.t) Hashtbl.t = Hashtbl.create 64 in
      let rec visit s =
        if not (Hashtbl.mem root_cone s.Signal.id) then begin
          Hashtbl.add root_cone s.Signal.id s;
          List.iter visit (children s)
        end
      in
      visit root;
      let stray =
        Hashtbl.fold
          (fun id s acc ->
            if Hashtbl.mem circuit_cone id then acc
            else
              match s.Signal.node with
              | Signal.Wire _ | Signal.Const _ -> acc (* free aliases *)
              | _ -> s :: acc)
          root_cone []
      in
      if stray = [] then []
      else
        let regs =
          List.filter
            (fun (s : Signal.t) ->
              match s.Signal.node with Signal.Reg _ -> true | _ -> false)
            stray
        in
        Finding.v ~rule:"L010" ~target ~subject:(describe root)
          (Printf.sprintf
             "%d node%s in this cone cannot reach any output" (List.length stray)
             (if List.length stray = 1 then "" else "s"))
        :: List.map
             (fun (s : Signal.t) ->
               Finding.v ~rule:"L011" ~target ~subject:(describe s)
                 "register state can never be observed at an output")
             (List.sort
                (fun (a : Signal.t) (b : Signal.t) ->
                  compare a.Signal.id b.Signal.id)
                regs))
    roots

let declared_input_rules ~target ~used declared =
  List.filter_map
    (fun (name, w) ->
      match List.assoc_opt name used with
      | None ->
        Some
          (Finding.v ~rule:"L013" ~target ~subject:name
             (Printf.sprintf
                "declared input (%d bits) is not read by any output cone" w))
      | Some w' when w' <> w ->
        Some
          (Finding.v ~rule:"L013" ~target ~subject:name
             (Printf.sprintf "declared %d bits wide but read as %d bits" w w'))
      | Some _ -> None)
    declared

let check_source ?(config = default_config) src =
  match Circuit.create ~name:src.name ~outputs:src.outputs with
  | exception Circuit.Unassigned_wire msg ->
    ( Finding.suppress ~rules:config.suppress
        [ Finding.v ~rule:"L001" ~target:src.name ~subject:"netlist"
            ("unassigned wire: " ^ msg) ],
      None )
  | exception Circuit.Combinational_cycle msg ->
    ( Finding.suppress ~rules:config.suppress
        [ Finding.v ~rule:"L002" ~target:src.name ~subject:"netlist"
            ("combinational cycle: " ^ msg) ],
      None )
  | circuit ->
    let fs = check_circuit ~config circuit in
    let circuit_cone = cone_ids (List.map snd src.outputs) in
    let extra =
      unreachable_rules ~target:src.name ~circuit_cone src.roots
      @ declared_input_rules ~target:src.name
          ~used:(Circuit.inputs circuit) src.declared_inputs
    in
    (fs @ Finding.suppress ~rules:config.suppress extra, Some circuit)

(* ------------------------------------------------------------------ *)
(* Resilience rules (fault-injection / hardening support).             *)

let describe_reg (s : Signal.t) =
  match s.Signal.name with
  | Some n -> n
  | None -> Printf.sprintf "reg #%d" s.Signal.id

let check_fault_surface ?(config = default_config) ~injectable circuit =
  let target = Circuit.name circuit in
  let findings = ref [] in
  Array.iter
    (fun (s : Signal.t) ->
      match s.Signal.node with
      | Signal.Reg _ when not (injectable s) ->
        findings :=
          Finding.v ~rule:"L014" ~target ~subject:(describe_reg s)
            "register is excluded from the fault-injectable signal table; \
             campaign coverage has a blind spot"
          :: !findings
      | _ -> ())
    (Circuit.nodes circuit);
  Finding.suppress ~rules:config.suppress (List.rev !findings)

let check_hardening ?(config = default_config) ~protected circuit =
  let target = Circuit.name circuit in
  let findings =
    List.filter_map
      (fun (r : Signal.ram) ->
        match r.Signal.write_port with
        | Some _ when not (protected r) ->
          Some
            (Finding.v ~rule:"L015" ~target
               ~subject:
                 (Printf.sprintf "%s (ram %d)" r.Signal.ram_name
                    r.Signal.ram_id)
               "writable memory bank has no parity companion although \
                hardening was requested")
        | Some _ | None -> None)
      (Circuit.rams circuit)
  in
  Finding.suppress ~rules:config.suppress findings
