(** Netlist lint: rule-based static analysis over elaborated circuits.

    Two entry points:

    - {!check_circuit} analyses an already-validated {!Tl_hw.Circuit.t}
      (rules L003–L009, L012);
    - {!check_source} analyses a {i raw} netlist — named outputs plus,
      optionally, extra root signals and a declared input interface — so it
      can also report what [Circuit.create] would reject (L001 unassigned
      wires, L002 combinational cycles, with the full named cycle path) and
      what it would silently prune (L010/L011 unreachable logic and
      registers, L013 unused declared inputs).

    See docs/LINT.md for the rule catalog. *)

type config = {
  suppress : string list;  (** rule IDs to drop from the result *)
  fanout_threshold : int;  (** L012 fires strictly above this *)
}

val default_config : config
(** No suppressions, fanout threshold 64. *)

type source = {
  name : string;
  outputs : (string * Tl_hw.Signal.t) list;
  roots : Tl_hw.Signal.t list;
      (** additional signals the generator created; any root whose cone
          does not meet an output cone is reported unreachable *)
  declared_inputs : (string * int) list;
      (** the intended input interface, checked against the inputs the
          output cones actually read *)
}

val source : ?roots:Tl_hw.Signal.t list ->
  ?declared_inputs:(string * int) list -> name:string ->
  (string * Tl_hw.Signal.t) list -> source

val check_circuit : ?config:config -> Tl_hw.Circuit.t -> Finding.t list

val check_source : ?config:config -> source ->
  Finding.t list * Tl_hw.Circuit.t option
(** The circuit is [None] exactly when elaboration failed (the findings
    then contain the L001/L002 explanation). *)

(** {2 Resilience rules}

    Generic over predicates so the lint layer stays independent of
    {!Tl_fault} / {!Tl_templates}; callers build them from a fault-site
    table and an accelerator's hardening metadata. *)

val check_fault_surface : ?config:config ->
  injectable:(Tl_hw.Signal.t -> bool) -> Tl_hw.Circuit.t -> Finding.t list
(** L014: one warning per register for which [injectable] is false —
    state a restricted fault-injection campaign can never corrupt, i.e.
    a coverage blind spot. *)

val check_hardening : ?config:config ->
  protected:(Tl_hw.Signal.ram -> bool) -> Tl_hw.Circuit.t -> Finding.t list
(** L015: one warning per ram with a write port for which [protected] is
    false — intended for designs where parity hardening was requested;
    parity companions themselves count as protected. *)
