(* Measured-vs-modeled cross-check: read the hardware performance
   counters of an instrumented accelerator after a full run and compare
   them, count for count, against Perf_model's streaming schedule
   statistics.  The two sides share nothing below the Schedule frame —
   the hardware counts real valid strobes, write enables and feeder
   fetches; the model counts events analytically — so equality is a
   genuine validation of both. *)

open Tl_hw
open Tl_templates

type expected = {
  e_cycles : int;
  e_active_pe_cycles : int;
  e_reads : (string * int) list;   (* per input memory *)
  e_writes_total : int;            (* aggregate over collector banks *)
}

(* same fold as the generator's drain margin: the model-side prediction
   of the total cycle count is f_compute_end + rows + max_dt + 4 *)
let max_dt (design : Tl_stt.Design.t) =
  List.fold_left
    (fun acc (ti : Tl_stt.Design.tensor_info) ->
      match ti.Tl_stt.Design.dataflow with
      | Tl_stt.Dataflow.Systolic { dt; _ } -> max acc dt
      | Tl_stt.Dataflow.Reuse2d
          (Tl_stt.Dataflow.Systolic_multicast { systolic; _ }) ->
        max acc systolic.Tl_stt.Dataflow.dt
      | _ -> acc)
    1 design.Tl_stt.Design.tensors

let iround f = int_of_float (Float.round f)

let expected (acc : Accel.t) =
  let design = acc.Accel.design in
  let fr = Schedule.frame design ~rows:acc.Accel.rows ~cols:acc.Accel.cols in
  let stats = Tl_perf.Perf_model.tile_statistics_streaming design fr in
  let passes = fr.Schedule.f_passes in
  let per_tensor name =
    match List.assoc_opt name stats.Tl_perf.Perf_model.per_tensor with
    | Some words -> iround (words *. float_of_int passes)
    | None -> 0
  in
  let e_reads =
    List.map
      (fun (ti : Tl_stt.Design.tensor_info) ->
        let t = ti.Tl_stt.Design.access.Tl_ir.Access.tensor in
        (t, per_tensor t))
      (Tl_stt.Design.input_infos design)
  in
  let out =
    (Tl_stt.Design.output_info design).Tl_stt.Design.access
      .Tl_ir.Access.tensor
  in
  { e_cycles = fr.Schedule.f_compute_end + acc.Accel.rows + max_dt design + 4;
    e_active_pe_cycles =
      passes * stats.Tl_perf.Perf_model.active_pe_cycles;
    e_reads;
    e_writes_total = per_tensor out }

type check = { c_name : string; measured : int; modeled : int }

type validation = {
  v_design : string;
  v_backend : string;
  v_counters : (string * int) list;  (** every raw counter read-out *)
  v_checks : check list;
  v_ok : bool;
}

let backend_label = function
  | `Tape -> "tape"
  | `Closure -> "closure"
  | `Batch -> "batch"

(* Compare a finished run's counters against the model.  The caller owns
   the simulator: it must have completed the full bounded run. *)
let validate_sim ?(backend = `Tape) (acc : Accel.t) sim =
  if acc.Accel.counter_ports = [] then
    invalid_arg "Obs.Counters: accelerator generated without ~counters";
  let counters = Accel.read_counters acc sim in
  let e = expected acc in
  let get name = try List.assoc name counters with Not_found -> -1 in
  let writes_total =
    List.fold_left
      (fun sum (name, v) ->
        if String.length name >= 7 && String.sub name 0 7 = "ctr_wr_" then
          sum + v
        else sum)
      0 counters
  in
  let checks =
    { c_name = "cycles"; measured = get "ctr_cycles"; modeled = e.e_cycles }
    :: { c_name = "active_pe_cycles";
         measured = get "ctr_active_pe_cycles";
         modeled = e.e_active_pe_cycles }
    :: { c_name = "writes_total"; measured = writes_total;
         modeled = e.e_writes_total }
    :: List.map
         (fun (t, exp) ->
           { c_name = "reads_" ^ t; measured = get ("ctr_rd_" ^ t);
             modeled = exp })
         e.e_reads
  in
  { v_design = acc.Accel.design.Tl_stt.Design.name;
    v_backend = backend_label backend;
    v_counters = counters;
    v_checks = checks;
    v_ok = List.for_all (fun c -> c.measured = c.modeled) checks }

let validate ?(backend = `Tape) (acc : Accel.t) =
  let sim = Sim.create ~backend acc.Accel.circuit in
  Sim.cycles sim (Accel.planned_cycles acc);
  Accel.check_done acc sim;
  validate_sim ~backend acc sim

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json v =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{ \"design\": \"%s\", \"backend\": \"%s\", \"ok\": %b,\n"
    (json_escape v.v_design) v.v_backend v.v_ok;
  add "  \"counters\": { %s },\n"
    (String.concat ", "
       (List.map
          (fun (n, x) -> Printf.sprintf "\"%s\": %d" (json_escape n) x)
          v.v_counters));
  add "  \"checks\": [ %s ] }"
    (String.concat ", "
       (List.map
          (fun c ->
            Printf.sprintf
              "{ \"name\": \"%s\", \"measured\": %d, \"modeled\": %d, \
               \"ok\": %b }"
              (json_escape c.c_name) c.measured c.modeled
              (c.measured = c.modeled))
          v.v_checks));
  Buffer.contents b

let pp ppf v =
  Fmt.pf ppf "@[<v>%s (%s) counters %s@," v.v_design v.v_backend
    (if v.v_ok then "OK" else "MISMATCH");
  List.iter
    (fun c ->
      Fmt.pf ppf "  %-24s measured=%-8d modeled=%-8d %s@," c.c_name
        c.measured c.modeled
        (if c.measured = c.modeled then "ok" else "MISMATCH"))
    v.v_checks;
  Fmt.pf ppf "@]"
