(** Measured-vs-modeled counter validation.

    Reads the hardware performance counters of an accelerator generated
    with [Accel.generate ~counters:true] after a full simulated run and
    compares them against {!Tl_perf.Perf_model}'s streaming schedule
    statistics.  The hardware side counts real valid strobes, write
    enables and feeder fetches; the model side counts events
    analytically from the schedule frame — equality validates both. *)

type expected = {
  e_cycles : int;
      (** model-side total cycles: [f_compute_end + rows + max_dt + 4] *)
  e_active_pe_cycles : int;
      (** [f_passes x active_pe_cycles] from the streaming statistics *)
  e_reads : (string * int) list;
      (** useful reads per input memory: [per_tensor x passes] *)
  e_writes_total : int;
      (** aggregate collector-bank writes: output [per_tensor x passes] *)
}

val expected : Tl_templates.Accel.t -> expected
(** Model-side prediction of every cross-checked counter, computed from
    the streaming statistics only (no netlist involved). *)

type check = { c_name : string; measured : int; modeled : int }

type validation = {
  v_design : string;
  v_backend : string;
  v_counters : (string * int) list;  (** every raw counter read-out *)
  v_checks : check list;
  v_ok : bool;  (** all checks measured = modeled *)
}

val validate : ?backend:Tl_hw.Sim.backend -> Tl_templates.Accel.t ->
  validation
(** Run the accelerator to completion on a fresh simulator and
    cross-check (default backend: the compiled tape).
    @raise Invalid_argument if the accelerator was generated without
    [~counters],
    @raise Tl_templates.Accel.Simulation_timeout if [done] never rises. *)

val validate_sim : ?backend:Tl_hw.Sim.backend -> Tl_templates.Accel.t ->
  Tl_hw.Sim.t -> validation
(** Same cross-check against a caller-owned simulator that has already
    completed the full bounded run ([backend] only labels the report). *)

val to_json : validation -> string

val pp : Format.formatter -> validation -> unit
