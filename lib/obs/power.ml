(* Measured-activity power: run the accelerator under an Activity probe,
   convert the observed toggle/access counts into per-category activity
   factors, and report the ASIC power model's answer under assumed
   (full) and measured activity side by side. *)

open Tl_hw
open Tl_templates

type comparison = {
  p_design : string;
  p_backend : string;
  p_cycles : int;
  probe : Activity.report;
  alpha : Tl_cost.Asic.activity;
  modeled : Tl_cost.Asic.report;   (* assumed full activity *)
  measured : Tl_cost.Asic.report;  (* measured activity factors *)
}

let backend_label = function
  | `Tape -> "tape"
  | `Closure -> "closure"
  | `Batch -> "batch"

let measure ?(backend = `Tape) ?params (acc : Accel.t) =
  let sim = Sim.create ~backend acc.Accel.circuit in
  let probe = Activity.create sim acc.Accel.circuit in
  Activity.cycles probe (Accel.planned_cycles acc);
  Accel.check_done acc sim;
  let rep = Activity.report probe in
  (* MAC activity from the schedule: events per PE-cycle over the whole
     array and run — the same quantity the hardware's active-PE-cycle
     counter accumulates, normalised by capacity *)
  let fr =
    Schedule.frame acc.Accel.design ~rows:acc.Accel.rows ~cols:acc.Accel.cols
  in
  let capacity = acc.Accel.rows * acc.Accel.cols * acc.Accel.total_cycles in
  let alpha =
    { Tl_cost.Asic.alpha_compute =
        (if capacity = 0 then 0.
         else float_of_int fr.Schedule.f_event_count /. float_of_int capacity);
      alpha_reg = Activity.alpha_reg rep;
      alpha_mem = Activity.alpha_mem rep }
  in
  { p_design = acc.Accel.design.Tl_stt.Design.name;
    p_backend = backend_label backend;
    p_cycles = rep.Activity.cycles;
    probe = rep;
    alpha;
    modeled = Tl_cost.Asic.evaluate_netlist ?params acc.Accel.circuit;
    measured = Tl_cost.Asic.evaluate_netlist ?params ~activity:alpha
        acc.Accel.circuit }

let to_json c =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let breakdown (r : Tl_cost.Asic.report) =
    String.concat ", "
      (List.map
         (fun (k, v) -> Printf.sprintf "\"%s\": %.4f" k v)
         r.Tl_cost.Asic.breakdown)
  in
  add "{ \"design\": \"%s\", \"backend\": \"%s\", \"cycles\": %d,\n"
    c.p_design c.p_backend c.p_cycles;
  add
    "  \"probe\": { \"reg_bits\": %d, \"reg_toggles\": %d, \"ram_reads\": \
     %d, \"ram_writes\": %d, \"read_ports\": %d, \"write_ports\": %d },\n"
    c.probe.Activity.reg_bits c.probe.Activity.reg_toggles
    c.probe.Activity.ram_reads c.probe.Activity.ram_writes
    c.probe.Activity.read_ports c.probe.Activity.write_ports;
  add
    "  \"alpha\": { \"compute\": %.6f, \"reg\": %.6f, \"mem\": %.6f },\n"
    c.alpha.Tl_cost.Asic.alpha_compute c.alpha.Tl_cost.Asic.alpha_reg
    c.alpha.Tl_cost.Asic.alpha_mem;
  add "  \"modeled_power_mw\": %.4f, \"measured_power_mw\": %.4f,\n"
    c.modeled.Tl_cost.Asic.power_mw c.measured.Tl_cost.Asic.power_mw;
  add "  \"modeled_breakdown\": { %s },\n" (breakdown c.modeled);
  add "  \"measured_breakdown\": { %s } }" (breakdown c.measured);
  Buffer.contents b

let pp ppf c =
  Fmt.pf ppf
    "@[<v>%s (%s): %d cycles@,\
     activity: compute=%.3f reg=%.3f mem=%.3f@,\
     power: modeled=%.2f mW, measured=%.2f mW@]"
    c.p_design c.p_backend c.p_cycles c.alpha.Tl_cost.Asic.alpha_compute
    c.alpha.Tl_cost.Asic.alpha_reg c.alpha.Tl_cost.Asic.alpha_mem
    c.modeled.Tl_cost.Asic.power_mw c.measured.Tl_cost.Asic.power_mw
