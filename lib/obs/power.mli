(** Measured-activity power reporting.

    Runs an accelerator to completion under a {!Tl_hw.Activity} probe,
    converts the observed register toggles and memory accesses into
    per-category activity factors, and evaluates the {!Tl_cost.Asic}
    netlist power model under assumed (full) and measured activity side
    by side.  Works with or without [~counters] — the probe observes
    simulator state, not read-out ports. *)

type comparison = {
  p_design : string;
  p_backend : string;
  p_cycles : int;
  probe : Tl_hw.Activity.report;
  alpha : Tl_cost.Asic.activity;
      (** measured factors: register toggles / (bits x cycles), memory
          accesses / (ports x cycles), and schedule MAC events /
          (PEs x cycles) for the compute category *)
  modeled : Tl_cost.Asic.report;   (** assumed full activity *)
  measured : Tl_cost.Asic.report;  (** scaled by [alpha] *)
}

val measure : ?backend:Tl_hw.Sim.backend -> ?params:Tl_cost.Asic.params ->
  Tl_templates.Accel.t -> comparison
(** @raise Tl_templates.Accel.Simulation_timeout if [done] never rises. *)

val to_json : comparison -> string

val pp : Format.formatter -> comparison -> unit
