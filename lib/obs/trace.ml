(* Chrome trace_event span export (chrome://tracing / Perfetto "X"
   complete events).  The collector is mutex-guarded so Tl_par pool
   workers can record concurrently; [pool_wrapper] installs spans around
   every pool task with tid = worker ordinal, which is what attributes
   DSE enumeration or fault-campaign work to pool workers in the viewer.

   The library takes the clock as a parameter (a [unit -> float] in
   seconds, e.g. [Unix.gettimeofday] from the CLI or bench executables)
   so it needs no unix dependency of its own. *)

type span = {
  s_name : string;
  s_cat : string;
  s_ts_us : float;
  s_dur_us : float;
  s_pid : int;
  s_tid : int;
  s_args : (string * string) list;
}

type t = { lock : Mutex.t; mutable spans : span list (* newest first *) }

let create () = { lock = Mutex.create (); spans = [] }

let add t ?(cat = "tensorlib") ?(pid = 0) ?(tid = 0) ?(args = []) ~name
    ~ts_us ~dur_us () =
  let s =
    { s_name = name; s_cat = cat; s_ts_us = ts_us; s_dur_us = dur_us;
      s_pid = pid; s_tid = tid; s_args = args }
  in
  Mutex.lock t.lock;
  t.spans <- s :: t.spans;
  Mutex.unlock t.lock

let span t ~clock ?cat ?pid ?tid ?args ~name f =
  let t0 = clock () in
  let finish () =
    let t1 = clock () in
    add t ?cat ?pid ?tid ?args ~name ~ts_us:(t0 *. 1e6)
      ~dur_us:((t1 -. t0) *. 1e6) ()
  in
  match f () with
  | v ->
    finish ();
    v
  | exception e ->
    finish ();
    raise e

let pool_wrapper t ~clock =
  { Tl_par.wrap =
      (fun ~label ~domain ~index f ->
        span t ~clock ~cat:"tl_par" ~tid:domain
          ~args:[ ("index", string_of_int index) ]
          ~name:label f) }

let length t =
  Mutex.lock t.lock;
  let n = List.length t.spans in
  Mutex.unlock t.lock;
  n

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json t =
  Mutex.lock t.lock;
  let spans = List.rev t.spans in
  Mutex.unlock t.lock;
  let b = Buffer.create 4096 in
  Buffer.add_string b "{ \"traceEvents\": [\n";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string b ",\n";
      let args =
        match s.s_args with
        | [] -> ""
        | l ->
          Printf.sprintf ", \"args\": { %s }"
            (String.concat ", "
               (List.map
                  (fun (k, v) ->
                    Printf.sprintf "\"%s\": \"%s\"" (json_escape k)
                      (json_escape v))
                  l))
      in
      Buffer.add_string b
        (Printf.sprintf
           "  { \"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", \"ts\": \
            %.3f, \"dur\": %.3f, \"pid\": %d, \"tid\": %d%s }"
           (json_escape s.s_name) (json_escape s.s_cat) s.s_ts_us s.s_dur_us
           s.s_pid s.s_tid args))
    spans;
  Buffer.add_string b "\n], \"displayTimeUnit\": \"ms\" }\n";
  Buffer.contents b

let write_file path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json t))
