(** Chrome-trace ([trace_event] JSON) span export.

    Collects "X" (complete) events viewable in [chrome://tracing] or
    Perfetto.  The collector is mutex-guarded, so {!Tl_par} pool workers
    record concurrently; {!pool_wrapper} builds a {!Tl_par.wrapper} that
    spans every pool task with [tid] = worker ordinal, attributing DSE
    enumeration and fault-campaign work to pool workers.

    Timestamps come from a caller-supplied [clock] (seconds, e.g.
    [Unix.gettimeofday]); the library has no unix dependency. *)

type t

val create : unit -> t

val add : t -> ?cat:string -> ?pid:int -> ?tid:int ->
  ?args:(string * string) list -> name:string -> ts_us:float ->
  dur_us:float -> unit -> unit
(** Record one complete event (timestamps in microseconds). *)

val span : t -> clock:(unit -> float) -> ?cat:string -> ?pid:int ->
  ?tid:int -> ?args:(string * string) list -> name:string ->
  (unit -> 'a) -> 'a
(** Time a thunk and record it; the span is recorded even when the thunk
    raises (the exception is re-raised). *)

val pool_wrapper : t -> clock:(unit -> float) -> Tl_par.wrapper
(** Task observer for {!Tl_par.set_wrapper}: each pool task becomes a
    span named by the pool's label, [cat = "tl_par"], [tid] = worker
    ordinal, with the item index in [args]. *)

val length : t -> int
(** Number of spans recorded so far. *)

val to_json : t -> string
(** The [{ "traceEvents": [...] }] document, events in recording order. *)

val write_file : string -> t -> unit
