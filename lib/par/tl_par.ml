(* Domain-based work pool for the embarrassingly parallel outer loops of
   the repo: DSE sweeps, fuzz trials, benchmark sections.

   One pool per call: [d - 1] helper domains are spawned, the calling
   domain works too, and all items are pulled from a shared atomic
   counter.  Results land in a per-index slot, so the output order (and
   the exception raised, if any) is independent of scheduling — two runs
   of the same deterministic [f] produce identical ordered results. *)

let n_domains () =
  match Sys.getenv_opt "TL_DOMAINS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None -> max 1 (Domain.recommended_domain_count ()))
  | None -> max 1 (Domain.recommended_domain_count ())

(* Optional task observer: a polymorphic wrapper invoked around every
   pool task with (pool label, worker ordinal, item index).  Installed
   globally (observability tooling — the Chrome-trace exporter), read
   atomically by every worker; the wrapper itself must be domain-safe.
   [None] (the default) adds no per-task overhead beyond one atomic
   load. *)
type wrapper = {
  wrap : 'a. label:string -> domain:int -> index:int -> (unit -> 'a) -> 'a;
}

let observer : wrapper option Atomic.t = Atomic.make None

let set_wrapper w = Atomic.set observer w

(* Optional chaos probe: invoked before every pool task with the pool
   label and the item index (never the worker ordinal — probes keyed by
   index fire identically at every pool width).  It may raise, which
   counts as the task failing, or delay.  Installed by the software
   chaos harness (Tl_resil); [None] costs one atomic load per task. *)
let task_probe : (label:string -> index:int -> unit) option Atomic.t =
  Atomic.make None

let set_task_probe p = Atomic.set task_probe p

let run_task label domain index f x =
  (match Atomic.get task_probe with
  | None -> ()
  | Some p -> p ~label ~index);
  match Atomic.get observer with
  | None -> f x
  | Some w -> w.wrap ~label ~domain ~index (fun () -> f x)

(* Shared fan-out core: every task's outcome is captured per-index, so
   callers choose between fail-fast commit ([map_array]) and failure
   isolation ([try_map_array]) over the same deterministic results. *)
let run_all ?domains ?(label = "tl_par") f xs =
  let n = Array.length xs in
  let d =
    min (match domains with Some d -> max 1 d | None -> n_domains ()) n
  in
  if d <= 1 || n <= 1 then
    Array.mapi
      (fun i x ->
        match run_task label 0 i f x with
        | v -> Ok v
        | exception e -> Error e)
      xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker who () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else
          results.(i) <-
            Some
              (match run_task label who i f xs.(i) with
              | v -> Ok v
              | exception e -> Error e)
      done
    in
    let helpers = List.init (d - 1) (fun h -> Domain.spawn (worker (h + 1))) in
    worker 0 ();
    List.iter Domain.join helpers;
    Array.map (function Some r -> r | None -> assert false) results
  end

let map_array ?domains ?label f xs =
  (* commit in index order: the first (lowest-index) failure is the one
     re-raised, regardless of which domain hit it *)
  Array.map
    (function Ok v -> v | Error e -> raise e)
    (run_all ?domains ?label f xs)

let try_map_array ?domains ?label f xs = run_all ?domains ?label f xs

let map ?domains ?label f xs =
  Array.to_list (map_array ?domains ?label f (Array.of_list xs))

let try_map ?domains ?label f xs =
  Array.to_list (try_map_array ?domains ?label f (Array.of_list xs))

(* ------------------------------------------------------------------ *)
(* String-keyed memoisation shared across the pool.                    *)

module Cache = struct
  type stats = {
    name : string;
    hits : int;
    misses : int;
    entries : int;
    evictions : int;
  }

  type 'a t = {
    c_name : string;
    tbl : (string, 'a) Hashtbl.t;
    lock : Mutex.t;
    hits : int Atomic.t;
    misses : int Atomic.t;
  }

  type registered = {
    r_stats : unit -> stats;
    r_clear : unit -> unit;
  }

  let registry : registered list Atomic.t = Atomic.make []

  let register_entry r =
    let rec push () =
      let old = Atomic.get registry in
      if not (Atomic.compare_and_set registry old (r :: old)) then push ()
    in
    push ()

  (* External stat sources (the persistent design store) join the same
     registry, so [all_stats] / [clear_all] cover them alongside the
     in-memory memo tables. *)
  let register ~stats ~clear = register_entry { r_stats = stats; r_clear = clear }

  let stats c =
    { name = c.c_name;
      hits = Atomic.get c.hits;
      misses = Atomic.get c.misses;
      entries = Hashtbl.length c.tbl;
      evictions = 0 }

  let clear c =
    Mutex.lock c.lock;
    Hashtbl.reset c.tbl;
    Atomic.set c.hits 0;
    Atomic.set c.misses 0;
    Mutex.unlock c.lock

  let create ~name () =
    let c =
      { c_name = name;
        tbl = Hashtbl.create 256;
        lock = Mutex.create ();
        hits = Atomic.make 0;
        misses = Atomic.make 0 }
    in
    register_entry
      { r_stats = (fun () -> stats c); r_clear = (fun () -> clear c) };
    c

  let find_or_add c key f =
    Mutex.lock c.lock;
    match Hashtbl.find_opt c.tbl key with
    | Some v ->
      Mutex.unlock c.lock;
      Atomic.incr c.hits;
      v
    | None ->
      Mutex.unlock c.lock;
      Atomic.incr c.misses;
      (* compute outside the lock: [f] can be expensive and may itself
         consult other caches.  Two domains racing on the same key both
         compute the same value (f is deterministic); the first insertion
         wins, so the merged cache is deterministic. *)
      let v = f () in
      Mutex.lock c.lock;
      let kept =
        match Hashtbl.find_opt c.tbl key with
        | Some v0 -> v0
        | None ->
          Hashtbl.add c.tbl key v;
          v
      in
      Mutex.unlock c.lock;
      kept

  let all_stats () =
    List.rev_map (fun r -> r.r_stats ()) (Atomic.get registry)

  let clear_all () = List.iter (fun r -> r.r_clear ()) (Atomic.get registry)
end

let mapi ?domains ?label f xs =
  Array.to_list
    (map_array ?domains ?label
       (fun (i, x) -> f i x)
       (Array.of_list (List.mapi (fun i x -> (i, x)) xs)))

let iter ?domains ?label f xs = ignore (map ?domains ?label f xs)
