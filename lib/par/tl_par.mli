(** Domain-based work pool (OCaml 5 [Domain]s).

    Fans a list of independent items over [domains] workers pulling from a
    shared atomic counter.  Results are returned {b in input order}, and
    the first (lowest-index) exception is re-raised, so for a
    deterministic [f] the observable behaviour is identical to [List.map]
    — only faster.  With [domains = 1] (or a singleton input) no domain is
    spawned at all: plain sequential [map].

    Workers run genuinely concurrently: [f] must not touch non-atomic
    shared mutable state.  Netlist elaboration is safe ({!Tl_hw.Signal}
    id counters are atomic), as are the STT / performance / cost models,
    which share nothing. *)

val n_domains : unit -> int
(** Pool width used when [?domains] is omitted:
    [Domain.recommended_domain_count ()], overridable with the
    [TL_DOMAINS] environment variable (clamped to at least 1). *)

val map : ?domains:int -> ?label:string -> ('a -> 'b) -> 'a list -> 'b list
val mapi : ?domains:int -> ?label:string -> (int -> 'a -> 'b) -> 'a list -> 'b list
val map_array : ?domains:int -> ?label:string -> ('a -> 'b) -> 'a array -> 'b array
val iter : ?domains:int -> ?label:string -> ('a -> unit) -> 'a list -> unit
(** [label] names the pool for the task observer (default ["tl_par"]);
    it has no effect on scheduling or results. *)

(** {1 Failure isolation}

    [map] is fail-fast: the first (lowest-index) task exception is
    re-raised and the whole fan-out is lost.  [try_map] is the
    crash-containment variant — a task exception poisons only its own
    slot.  Every task still runs, results stay in input order, and for a
    deterministic [f] the [Ok]/[Error] pattern is identical at every
    pool width, so degraded sweeps report reproducibly. *)

val try_map :
  ?domains:int -> ?label:string -> ('a -> 'b) -> 'a list -> ('b, exn) result list

val try_map_array :
  ?domains:int -> ?label:string -> ('a -> 'b) -> 'a array -> ('b, exn) result array

val set_task_probe : (label:string -> index:int -> unit) option -> unit
(** Install (or remove) the global chaos probe, invoked before every
    pool task with the pool's [label] and the item [index] — never the
    worker ordinal, so index-keyed probes fire identically at every pool
    width.  A probe that raises makes that task fail; installed by
    [Tl_resil.Chaos], [None] (default) costs one atomic load per task. *)

(** {1 Task observer}

    Observability hook: when installed, the wrapper is invoked around
    {e every} pool task — including the sequential [domains = 1] fast
    path — with the pool's [label], the worker ordinal [domain]
    (0 = the calling domain) and the item [index].  The span exporter in
    [Tl_obs.Trace] uses it to attribute DSE / fault-campaign work to
    pool workers.  The wrapper runs concurrently on all workers and must
    be domain-safe; it must call the thunk exactly once and return its
    value. *)

type wrapper = {
  wrap : 'a. label:string -> domain:int -> index:int -> (unit -> 'a) -> 'a;
}

val set_wrapper : wrapper option -> unit
(** Install (or, with [None], remove) the global task observer. *)

(** String-keyed memoisation safe to share across the pool.

    A cache is a mutex-guarded hash table with atomic hit/miss counters.
    [find_or_add] computes misses {e outside} the lock and keeps the
    {b first} insertion when two domains race on the same key, so for a
    deterministic [f] the cache contents (and every returned value) are
    independent of scheduling.  Every cache registers itself at [create]
    so consumers (the benchmark gate) can report or reset them all. *)
module Cache : sig
  type 'a t

  type stats = {
    name : string;
    hits : int;
    misses : int;
    entries : int;
    evictions : int;
        (** entries dropped by a capacity policy; always [0] for the
            unbounded in-memory caches, nonzero only for external
            registered sources (the persistent design store) *)
  }

  val create : name:string -> unit -> 'a t
  val find_or_add : 'a t -> string -> (unit -> 'a) -> 'a
  val stats : 'a t -> stats
  val clear : 'a t -> unit

  val register : stats:(unit -> stats) -> clear:(unit -> unit) -> unit
  (** Register an external stat source (e.g. the on-disk design store)
      into the same registry that {!all_stats} and {!clear_all} walk.
      [clear] is the source's own notion of reset — a persistent store
      resets its counters, not its disk contents. *)

  val all_stats : unit -> stats list
  (** Stats of every cache ever created, in creation order. *)

  val clear_all : unit -> unit
end
