type tensor_metrics = {
  tensor : string;
  role : Tl_stt.Design.role;
  footprint : int;
  accesses : int;
  fetches : float;
  reuse_factor : float;
}

type t = {
  design_name : string;
  macs : int;
  tensors : tensor_metrics list;
  total_traffic_words : float;
  arithmetic_intensity : float;
}

let of_design ?(rows = 16) ?(cols = 16) (design : Tl_stt.Design.t) =
  let config = { Perf_model.default_config with rows; cols } in
  let result = Perf_model.evaluate ~config design in
  let stmt = design.Tl_stt.Design.transform.Tl_stt.Transform.stmt in
  let accesses = Tl_ir.Stmt.domain_size stmt in
  let tensors =
    List.map
      (fun (ti : Tl_stt.Design.tensor_info) ->
        let name = ti.Tl_stt.Design.access.Tl_ir.Access.tensor in
        let shape =
          Tl_ir.Access.shape ti.Tl_stt.Design.access stmt.Tl_ir.Stmt.iters
        in
        let footprint = Array.fold_left ( * ) 1 shape in
        let fetches =
          match List.assoc_opt name result.Perf_model.traffic_words with
          | Some w -> w
          | None -> float_of_int accesses
        in
        { tensor = name;
          role = ti.Tl_stt.Design.role;
          footprint;
          accesses;
          fetches;
          reuse_factor = float_of_int accesses /. Float.max 1. fetches })
      design.Tl_stt.Design.tensors
  in
  let total =
    List.fold_left (fun acc tm -> acc +. tm.fetches) 0. tensors
  in
  { design_name = design.Tl_stt.Design.name;
    macs = accesses;
    tensors;
    total_traffic_words = total;
    arithmetic_intensity = float_of_int accesses /. Float.max 1. total }

let pp ppf m =
  Format.fprintf ppf "@[<v>metrics for %s:@," m.design_name;
  List.iter
    (fun tm ->
      Format.fprintf ppf
        "  %s %-3s: footprint=%d accesses=%d fetches=%.0f reuse=%.1fx@,"
        (match tm.role with
         | Tl_stt.Design.Input -> "in "
         | Tl_stt.Design.Output -> "out")
        tm.tensor tm.footprint tm.accesses tm.fetches tm.reuse_factor)
    m.tensors;
  Format.fprintf ppf "  traffic=%.0f words, intensity=%.1f MACs/word@]"
    m.total_traffic_words m.arithmetic_intensity
