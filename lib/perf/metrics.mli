(** Dataflow metrics: reuse factors, data traffic, arithmetic intensity.

    The quantities TENET-style analyses derive from a space-time mapping,
    computed here exactly from the reuse classification: how many times an
    average element of each tensor is used per fetch, the total words moved
    between scratchpad and array, and MACs per word (arithmetic
    intensity).  These explain the Fig. 5 bandwidth effects analytically:
    unicast ⇒ reuse 1 ⇒ intensity ≈ 1 ⇒ bandwidth-bound. *)

type tensor_metrics = {
  tensor : string;
  role : Tl_stt.Design.role;
  footprint : int;     (** distinct elements over the whole computation *)
  accesses : int;      (** loop-nest touches of the tensor *)
  fetches : float;     (** scratchpad↔array word transfers after reuse *)
  reuse_factor : float;  (** accesses / fetches *)
}

type t = {
  design_name : string;
  macs : int;
  tensors : tensor_metrics list;
  total_traffic_words : float;
  arithmetic_intensity : float;  (** macs / total traffic *)
}

val of_design : ?rows:int -> ?cols:int -> Tl_stt.Design.t -> t
(** Exact analysis on the design's own workload sizes (tiled to the array
    with the performance model's tiler, amortised over all passes). *)

val pp : Format.formatter -> t -> unit
