module Schedule = Tl_templates.Schedule
module Geometry = Tl_templates.Geometry

type config = {
  rows : int;
  cols : int;
  freq_mhz : float;
  bandwidth_gbps : float;
  elem_bytes : int;
  scratchpad_kbytes : float;
}

let default_config =
  { rows = 16; cols = 16; freq_mhz = 320.; bandwidth_gbps = 32.;
    elem_bytes = 2; scratchpad_kbytes = 256. }

type result = {
  design_name : string;
  tile : int array;
  selected_passes : int;
  total_passes : int;
  span : int;
  tail : int;
  cycles : float;
  macs : int;
  utilization : float;
  normalized_perf : float;
  bw_stall_factor : float;
  words_per_cycle : float;
  runtime_us : float;
  gops : float;
  pipelined_cycles : float;
  pipelined_perf : float;
  traffic_words : (string * float) list;
      (* scratchpad<->array words over the whole run, per tensor *)
}

(* ---------------------------------------------------------------- *)
(* Tile statement: selected loops shrunk to the tile, unselected = 1 *)

let tile_stmt stmt selected tile =
  let iters =
    List.mapi
      (fun i (it : Tl_ir.Iter.t) ->
        let ext =
          match Array.to_list selected |> List.mapi (fun k s -> (k, s))
                |> List.find_opt (fun (_, s) -> s = i)
          with
          | Some (k, _) -> tile.(k)
          | None -> 1
        in
        Tl_ir.Iter.v it.Tl_ir.Iter.name ext)
      stmt.Tl_ir.Stmt.iters
  in
  Tl_ir.Stmt.v stmt.Tl_ir.Stmt.name ~iters ~output:stmt.Tl_ir.Stmt.output
    ~inputs:stmt.Tl_ir.Stmt.inputs

(* bounding-box feasibility and analytic span from the matrix rows *)
let row_extent matrix row tile =
  let n = Array.length tile in
  let acc = ref 1 in
  for j = 0 to n - 1 do
    let c = abs (Tl_linalg.Rat.to_int (Tl_linalg.Mat.get matrix row j)) in
    acc := !acc + (c * (tile.(j) - 1))
  done;
  !acc

let candidate_sizes extent limit =
  let base =
    [ 1; 2; 3; 4; 5; 6; 7; 8; 10; 12; 14; 16; 24; 32; 48; 64; 96; 128;
      192; 256; 384; 512 ]
  in
  List.sort_uniq compare
    (List.filter (fun s -> s <= extent && s <= limit) (min extent limit :: base))

(* working-set estimate of a tile: sum of per-tensor bounding boxes *)
let tile_working_set (design : Tl_stt.Design.t) selected tile =
  List.fold_left
    (fun acc (ti : Tl_stt.Design.tensor_info) ->
      let a = Tl_ir.Access.to_mat ti.Tl_stt.Design.access in
      let dims = Tl_linalg.Mat.rows a in
      let per_dim = ref 1 in
      for i = 0 to dims - 1 do
        let e = ref 1 in
        Array.iteri
          (fun k s ->
            let c = abs (Tl_linalg.Rat.to_int (Tl_linalg.Mat.get a i s)) in
            e := !e + (c * (tile.(k) - 1)))
          selected;
        per_dim := !per_dim * !e
      done;
      acc + !per_dim)
    0 design.Tl_stt.Design.tensors

(* ---------------------------------------------------------------- *)
(* Exact per-tile statistics via the elaboration schedule.           *)

type tile_stats = {
  t_span : int;
  active_pes : int;
  active_pe_cycles : int;
  busiest_pe : int;  (* events at the most-loaded PE: steady-state bound *)
  demand : float array;  (* memory words demanded per schedule cycle *)
  per_tensor : (string * float) list;  (* words per pass, by tensor *)
}

(* dense integer keys keep the per-tile statistics fast: tensor indices,
   PE positions and cycles are packed into single ints *)
let index_code idx =
  Array.fold_left (fun acc v -> (acc * 1024) + v + 1) 7 idx

let pos_cycle_code (r, c) cycle = (((cycle * 64) + r) * 64) + c

let entry_count_per_cycle sched access ~dp ~dt span offset count_into ~group =
  (* count reuse-chain entries per cycle, optionally grouped into lines *)
  let module S = Schedule in
  let tbl : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  let rows = sched.S.rows and cols = sched.S.cols in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      List.iter
        (fun ev ->
          Hashtbl.replace tbl
            (pos_cycle_code (r, c) ev.S.cycle)
            (index_code (S.tensor_index sched access ev)))
        sched.S.by_pe.(r).(c)
    done
  done;
  let groups : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      List.iter
        (fun ev ->
          let idx = index_code (S.tensor_index sched access ev) in
          let pr, pc = (r - dp.(0), c - dp.(1)) in
          let is_entry =
            pr < 0 || pr >= rows || pc < 0 || pc >= cols
            ||
            match Hashtbl.find_opt tbl (pos_cycle_code (pr, pc) (ev.S.cycle - dt)) with
            | Some idx' -> idx' <> idx
            | None -> true
          in
          if is_entry then begin
            let t = ev.S.cycle - offset in
            if t >= 0 && t < span then
              match group with
              | None -> count_into.(t) <- count_into.(t) +. 1.
              | Some dir ->
                let rr, rc = Geometry.line_rep ~rows ~cols ~dir (r, c) in
                let key = pos_cycle_code (rr, rc) t in
                if not (Hashtbl.mem groups key) then begin
                  Hashtbl.add groups key ();
                  count_into.(t) <- count_into.(t) +. 1.
                end
          end)
        sched.S.by_pe.(r).(c)
    done
  done

let tile_statistics (design : Tl_stt.Design.t) sched =
  let module S = Schedule in
  let rows = sched.S.rows and cols = sched.S.cols in
  let span = sched.S.span in
  let offset = sched.S.preload in
  let demand = Array.make span 0. in
  let active = Array.make span 0 in
  let active_pes = ref 0 in
  let active_pe_cycles = ref 0 in
  let busiest = ref 0 in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let evs = sched.S.by_pe.(r).(c) in
      if evs <> [] then incr active_pes;
      busiest := max !busiest (List.length evs);
      List.iter
        (fun ev ->
          let t = ev.S.cycle - offset in
          if t >= 0 && t < span then begin
            active.(t) <- active.(t) + 1;
            incr active_pe_cycles
          end)
        evs
    done
  done;
  let per_cycle_distinct access ~group =
    (* distinct elements (or line-groups) touched per cycle *)
    let seen : (int, unit) Hashtbl.t = Hashtbl.create 1024 in
    let counts = Array.make span 0. in
    for r = 0 to rows - 1 do
      for c = 0 to cols - 1 do
        List.iter
          (fun ev ->
            let t = ev.S.cycle - offset in
            if t >= 0 && t < span then begin
              let key =
                match group with
                | None -> (index_code (S.tensor_index sched access ev) * 2048) + t
                | Some dir ->
                  let rr, rc = Geometry.line_rep ~rows ~cols ~dir (r, c) in
                  pos_cycle_code (rr, rc) t
              in
              if not (Hashtbl.mem seen key) then begin
                Hashtbl.add seen key ();
                counts.(t) <- counts.(t) +. 1.
              end
            end)
          sched.S.by_pe.(r).(c)
      done
    done;
    counts
  in
  let per_tensor = ref [] in
  let current_tensor = ref "" in
  let credit total =
    per_tensor := (!current_tensor, total) :: !per_tensor
  in
  let add arr =
    credit (Array.fold_left ( +. ) 0. arr);
    Array.iteri (fun i v -> demand.(i) <- demand.(i) +. v) arr
  in
  let add_amortized total =
    credit total;
    let per = total /. float_of_int span in
    Array.iteri (fun i v -> demand.(i) <- v +. per) demand
  in
  let line_count dir =
    let reps = Hashtbl.create 16 in
    for r = 0 to rows - 1 do
      for c = 0 to cols - 1 do
        if sched.S.by_pe.(r).(c) <> [] then
          Hashtbl.replace reps (Geometry.line_rep ~rows ~cols ~dir (r, c)) ()
      done
    done;
    Hashtbl.length reps
  in
  List.iter
    (fun (ti : Tl_stt.Design.tensor_info) ->
      let access = ti.Tl_stt.Design.access in
      current_tensor := access.Tl_ir.Access.tensor;
      match ti.Tl_stt.Design.dataflow with
      | Tl_stt.Dataflow.Unicast ->
        add (per_cycle_distinct access ~group:None)
      | Tl_stt.Dataflow.Stationary _ -> add_amortized (float_of_int !active_pes)
      | Tl_stt.Dataflow.Systolic { dp; dt } ->
        let counts = Array.make span 0. in
        entry_count_per_cycle sched access ~dp ~dt span offset counts
          ~group:None;
        add counts
      | Tl_stt.Dataflow.Multicast { dp } ->
        add (per_cycle_distinct access ~group:(Some dp))
      | Tl_stt.Dataflow.Reuse2d Tl_stt.Dataflow.Broadcast ->
        add
          (Array.map (fun a -> if a > 0 then 1. else 0.) active)
      | Tl_stt.Dataflow.Reuse2d
          (Tl_stt.Dataflow.Multicast_stationary { multicast }) ->
        add_amortized (float_of_int (line_count multicast))
      | Tl_stt.Dataflow.Reuse2d
          (Tl_stt.Dataflow.Systolic_multicast { multicast; systolic }) ->
        let counts = Array.make span 0. in
        entry_count_per_cycle sched access ~dp:systolic.Tl_stt.Dataflow.dp
          ~dt:systolic.Tl_stt.Dataflow.dt span offset counts
          ~group:(Some multicast);
        add counts
      | Tl_stt.Dataflow.Reuse_full -> credit 1.)
    design.Tl_stt.Design.tensors;
  { t_span = span;
    active_pes = !active_pes;
    active_pe_cycles = !active_pe_cycles;
    busiest_pe = !busiest;
    demand;
    per_tensor = List.rev !per_tensor }

(* ---------------------------------------------------------------- *)

let evaluate ?(config = default_config) (design : Tl_stt.Design.t) =
  let transform = design.Tl_stt.Design.transform in
  if Tl_stt.Transform.space_dims transform <> 2 then
    invalid_arg "Perf_model.evaluate: only 2-D arrays";
  let stmt = transform.Tl_stt.Transform.stmt in
  let selected = transform.Tl_stt.Transform.selected in
  let matrix = transform.Tl_stt.Transform.matrix in
  let sel_ext = Tl_stt.Transform.selected_extents transform in
  let n = Array.length selected in
  let unsel_product =
    List.fold_left ( * ) 1
      (List.map
         (fun (it : Tl_ir.Iter.t) -> it.Tl_ir.Iter.extent)
         (Tl_stt.Transform.unselected_iters transform))
  in
  (* candidate tiles: bbox + scratchpad feasibility, ranked by analytic
     cycle estimate *)
  let limit = 512 in
  let spad_words =
    int_of_float (config.scratchpad_kbytes *. 1024.)
    / config.elem_bytes
  in
  let cand = Array.init n (fun j -> candidate_sizes sel_ext.(j) limit) in
  let feasible = ref [] in
  let rec enum j tile =
    if j = n then begin
      let t = Array.of_list (List.rev tile) in
      if
        row_extent matrix 0 t <= config.rows
        && row_extent matrix 1 t <= config.cols
        && tile_working_set design selected t <= spad_words
      then begin
        let span = row_extent matrix 2 t in
        let sel_passes =
          Array.to_list (Array.mapi (fun j tj -> (sel_ext.(j) + tj - 1) / tj) t)
          |> List.fold_left ( * ) 1
        in
        let est = float_of_int (sel_passes * span) in
        feasible := (est, t, sel_passes, span) :: !feasible
      end
    end
    else List.iter (fun s -> enum (j + 1) (s :: tile)) cand.(j)
  in
  enum 0 [];
  (match !feasible with
   | [] -> invalid_arg "Perf_model.evaluate: no feasible tile (array too small)"
   | _ -> ());
  let ranked =
    List.sort (fun (a, _, _, _) (b, _, _, _) -> compare a b) !feasible
  in
  let top = List.filteri (fun i _ -> i < 3) ranked in
  let capacity =
    config.bandwidth_gbps *. 1e9
    /. (config.freq_mhz *. 1e6)
    /. float_of_int config.elem_bytes
  in
  let evaluate_tile (_, tile, sel_passes, _) =
    let ts = tile_stmt stmt selected tile in
    let tt = Tl_stt.Transform.v ts ~selected ~matrix:(Tl_linalg.Mat.to_int_rows matrix) in
    let td = Tl_stt.Design.analyze tt in
    let sched = Schedule.build td ~rows:config.rows ~cols:config.cols in
    let stats = tile_statistics td sched in
    let eff_span =
      Array.fold_left
        (fun acc d -> acc +. Stdlib.max 1. (d /. capacity))
        0. stats.demand
    in
    let total_passes = sel_passes * unsel_product in
    let tail = config.rows in
    let cycles = (float_of_int total_passes *. eff_span) +. float_of_int tail in
    (tile, sel_passes, total_passes, stats, eff_span, cycles)
  in
  let results = List.map evaluate_tile top in
  let best =
    List.fold_left
      (fun acc r ->
        match acc with
        | None -> Some r
        | Some (_, _, _, _, _, c) ->
          let _, _, _, _, _, c' = r in
          if c' < c then Some r else acc)
      None results
  in
  let tile, sel_passes, total_passes, stats, eff_span, cycles =
    match best with Some r -> r | None -> assert false
  in
  (* steady-state throughput when consecutive passes pipeline through the
     array: the per-pass skew is paid once, each pass then costs the
     busiest PE's occupancy (plus any bandwidth stall) *)
  let busy = float_of_int stats.busiest_pe in
  let busy_eff = busy +. Stdlib.max 0. (eff_span -. float_of_int stats.t_span) in
  let pipelined_cycles =
    (float_of_int total_passes *. busy_eff)
    +. (float_of_int stats.t_span -. busy)
    +. float_of_int config.rows
  in
  let macs = Tl_ir.Stmt.domain_size stmt in
  let array_size = float_of_int (config.rows * config.cols) in
  let utilization =
    float_of_int stats.active_pe_cycles
    /. (array_size *. float_of_int stats.t_span)
  in
  let normalized_perf = float_of_int macs /. (array_size *. cycles) in
  let bw_stall_factor = eff_span /. float_of_int stats.t_span in
  let words_per_cycle =
    Array.fold_left ( +. ) 0. stats.demand /. float_of_int stats.t_span
  in
  let runtime_us = cycles /. config.freq_mhz in
  let ops_per_mac =
    float_of_int (List.length stmt.Tl_ir.Stmt.inputs + 1)
  in
  let gops = ops_per_mac *. float_of_int macs /. runtime_us /. 1e3 in
  { design_name = design.Tl_stt.Design.name;
    tile;
    selected_passes = sel_passes;
    total_passes;
    span = stats.t_span;
    tail = config.rows;
    cycles;
    macs;
    utilization;
    normalized_perf;
    bw_stall_factor;
    words_per_cycle;
    runtime_us;
    gops;
    pipelined_cycles;
    pipelined_perf = float_of_int macs /. (array_size *. pipelined_cycles);
    traffic_words =
      List.map
        (fun (t, per_pass) -> (t, per_pass *. float_of_int total_passes))
        stats.per_tensor }

(* Several transformation matrices can realise the same dataflow name; the
   best choice (e.g. a [0,1,1] space row that packs y+p Conv2D loops into
   one array dimension) can differ from the simplest.  Rank the matches by
   a cheap analytic estimate, exactly evaluate the front-runners. *)
let quick_estimate config (design : Tl_stt.Design.t) =
  let transform = design.Tl_stt.Design.transform in
  let matrix = transform.Tl_stt.Transform.matrix in
  let sel_ext = Tl_stt.Transform.selected_extents transform in
  let n = Array.length sel_ext in
  let tile = Array.make n 1 in
  (* greedy growth, two sweeps *)
  for _ = 1 to 2 do
    for j = 0 to n - 1 do
      List.iter
        (fun s ->
          let old = tile.(j) in
          tile.(j) <- s;
          if
            not
              (row_extent matrix 0 tile <= config.rows
               && row_extent matrix 1 tile <= config.cols)
          then tile.(j) <- old)
        (candidate_sizes sel_ext.(j) 512)
    done
  done;
  let span = row_extent matrix 2 tile in
  (* a one-to-one schedule always satisfies span >= macs / PEs, so the pass
     cost is bounded below by both quantities *)
  let per_pe =
    (Array.fold_left ( * ) 1 tile + (config.rows * config.cols) - 1)
    / (config.rows * config.cols)
  in
  let sel_passes = ref 1 in
  Array.iteri
    (fun j tj -> sel_passes := !sel_passes * ((sel_ext.(j) + tj - 1) / tj))
    tile;
  float_of_int (!sel_passes * max span per_pe)

let evaluate_name ?(config = default_config) stmt name =
  match Tl_stt.Search.matching_designs stmt name with
  | [] -> None
  | candidates ->
    let ranked =
      List.stable_sort compare
        (List.map (fun d -> (quick_estimate config d, d)) candidates)
    in
    let top = List.filteri (fun i _ -> i < 6) ranked in
    let results = List.map (fun (_, d) -> evaluate ~config d) top in
    List.fold_left
      (fun acc r ->
        match acc with
        | None -> Some r
        | Some best -> if r.cycles < best.cycles then Some r else acc)
      None results

let pp_result ppf r =
  Format.fprintf ppf
    "@[%-12s tile=%s span=%d passes=%d cycles=%.0f util=%.2f bw=%.2fx \
     norm=%.3f@]"
    r.design_name
    (String.concat "x" (Array.to_list (Array.map string_of_int r.tile)))
    r.span r.total_passes r.cycles r.utilization r.bw_stall_factor
    r.normalized_perf
