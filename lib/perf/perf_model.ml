module Schedule = Tl_templates.Schedule
module Geometry = Tl_templates.Geometry

type config = {
  rows : int;
  cols : int;
  freq_mhz : float;
  bandwidth_gbps : float;
  elem_bytes : int;
  scratchpad_kbytes : float;
}

let default_config =
  { rows = 16; cols = 16; freq_mhz = 320.; bandwidth_gbps = 32.;
    elem_bytes = 2; scratchpad_kbytes = 256. }

type result = {
  design_name : string;
  tile : int array;
  selected_passes : int;
  total_passes : int;
  span : int;
  tail : int;
  cycles : float;
  macs : int;
  utilization : float;
  normalized_perf : float;
  bw_stall_factor : float;
  words_per_cycle : float;
  runtime_us : float;
  gops : float;
  pipelined_cycles : float;
  pipelined_perf : float;
  traffic_words : (string * float) list;
      (* scratchpad<->array words over the whole run, per tensor *)
}

(* ---------------------------------------------------------------- *)
(* Tile statement: selected loops shrunk to the tile, unselected = 1 *)

let tile_stmt stmt selected tile =
  let iters =
    List.mapi
      (fun i (it : Tl_ir.Iter.t) ->
        let ext =
          match Array.to_list selected |> List.mapi (fun k s -> (k, s))
                |> List.find_opt (fun (_, s) -> s = i)
          with
          | Some (k, _) -> tile.(k)
          | None -> 1
        in
        Tl_ir.Iter.v it.Tl_ir.Iter.name ext)
      stmt.Tl_ir.Stmt.iters
  in
  Tl_ir.Stmt.v stmt.Tl_ir.Stmt.name ~iters ~output:stmt.Tl_ir.Stmt.output
    ~inputs:stmt.Tl_ir.Stmt.inputs

(* bounding-box feasibility and analytic span from the (integer) matrix
   rows; monotone nondecreasing in every tile dimension *)
let row_extent imatrix row tile =
  let n = Array.length tile in
  let acc = ref 1 in
  let r = imatrix.(row) in
  for j = 0 to n - 1 do
    acc := !acc + (abs r.(j) * (tile.(j) - 1))
  done;
  !acc

let candidate_sizes extent limit =
  let base =
    [ 1; 2; 3; 4; 5; 6; 7; 8; 10; 12; 14; 16; 24; 32; 48; 64; 96; 128;
      192; 256; 384; 512 ]
  in
  List.sort_uniq compare
    (List.filter (fun s -> s <= extent && s <= limit) (min extent limit :: base))

(* working-set estimate of a tile: sum of per-tensor bounding boxes;
   monotone nondecreasing in every tile dimension *)
let tile_working_set (design : Tl_stt.Design.t) selected tile =
  List.fold_left
    (fun acc (ti : Tl_stt.Design.tensor_info) ->
      let am = ti.Tl_stt.Design.access.Tl_ir.Access.matrix in
      let per_dim = ref 1 in
      for i = 0 to Array.length am - 1 do
        let e = ref 1 in
        let row = am.(i) in
        Array.iteri
          (fun k s -> e := !e + (abs row.(s) * (tile.(k) - 1)))
          selected;
        per_dim := !per_dim * !e
      done;
      acc + !per_dim)
    0 design.Tl_stt.Design.tensors

(* ---------------------------------------------------------------- *)
(* Exact per-tile statistics via the elaboration schedule.           *)

type tile_stats = {
  t_span : int;
  active_pes : int;
  active_pe_cycles : int;
  busiest_pe : int;  (* events at the most-loaded PE: steady-state bound *)
  demand : float array;  (* memory words demanded per schedule cycle *)
  per_tensor : (string * float) list;  (* words per pass, by tensor *)
}

(* dense integer keys keep the per-tile statistics fast: tensor indices,
   PE positions and cycles are packed into single ints.  Packing that
   cannot represent its input raises instead of silently colliding. *)
let index_code idx =
  if Array.length idx > 4 then
    invalid_arg "Perf_model.index_code: more than 4 index components";
  Array.fold_left
    (fun acc v ->
      let v1 = v + 1 in
      if v1 < 0 || v1 >= 16384 then
        invalid_arg "Perf_model.index_code: index component out of range";
      (acc * 16384) + v1)
    7 idx

let pos_cycle_code (r, c) cycle =
  if r < 0 || r >= 0x20_0000 || c < 0 || c >= 0x20_0000 then
    invalid_arg "Perf_model.pos_cycle_code: PE coordinate out of range";
  if cycle < 0 || cycle >= 0x10_0000 then
    invalid_arg "Perf_model.pos_cycle_code: cycle out of range";
  (((cycle * 0x20_0000) + r) * 0x20_0000) + c

let entry_count_per_cycle sched access ~dp ~dt span offset count_into ~group =
  (* count reuse-chain entries per cycle, optionally grouped into lines *)
  let module S = Schedule in
  let tbl : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  let rows = sched.S.rows and cols = sched.S.cols in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      List.iter
        (fun ev ->
          Hashtbl.replace tbl
            (pos_cycle_code (r, c) ev.S.cycle)
            (index_code (S.tensor_index sched access ev)))
        sched.S.by_pe.(r).(c)
    done
  done;
  let groups : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      List.iter
        (fun ev ->
          let idx = index_code (S.tensor_index sched access ev) in
          let pr, pc = (r - dp.(0), c - dp.(1)) in
          let is_entry =
            pr < 0 || pr >= rows || pc < 0 || pc >= cols
            ||
            match Hashtbl.find_opt tbl (pos_cycle_code (pr, pc) (ev.S.cycle - dt)) with
            | Some idx' -> idx' <> idx
            | None -> true
          in
          if is_entry then begin
            let t = ev.S.cycle - offset in
            if t >= 0 && t < span then
              match group with
              | None -> count_into.(t) <- count_into.(t) +. 1.
              | Some dir ->
                let rr, rc = Geometry.line_rep ~rows ~cols ~dir (r, c) in
                let key = pos_cycle_code (rr, rc) t in
                if not (Hashtbl.mem groups key) then begin
                  Hashtbl.add groups key ();
                  count_into.(t) <- count_into.(t) +. 1.
                end
          end)
        sched.S.by_pe.(r).(c)
    done
  done

let tile_statistics (design : Tl_stt.Design.t) sched =
  let module S = Schedule in
  let rows = sched.S.rows and cols = sched.S.cols in
  let span = sched.S.span in
  let offset = sched.S.preload in
  let demand = Array.make span 0. in
  let active = Array.make span 0 in
  let active_pes = ref 0 in
  let active_pe_cycles = ref 0 in
  let busiest = ref 0 in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let evs = sched.S.by_pe.(r).(c) in
      if evs <> [] then incr active_pes;
      busiest := max !busiest (List.length evs);
      List.iter
        (fun ev ->
          let t = ev.S.cycle - offset in
          if t >= 0 && t < span then begin
            active.(t) <- active.(t) + 1;
            incr active_pe_cycles
          end)
        evs
    done
  done;
  let per_cycle_distinct access ~group =
    (* distinct elements (or line-groups) touched per cycle; two-int keys
       so a widened index code cannot overflow when mixed with the cycle *)
    let seen : (int * int, unit) Hashtbl.t = Hashtbl.create 1024 in
    let counts = Array.make span 0. in
    for r = 0 to rows - 1 do
      for c = 0 to cols - 1 do
        List.iter
          (fun ev ->
            let t = ev.S.cycle - offset in
            if t >= 0 && t < span then begin
              let key =
                match group with
                | None -> (index_code (S.tensor_index sched access ev), t)
                | Some dir ->
                  let rr, rc = Geometry.line_rep ~rows ~cols ~dir (r, c) in
                  (pos_cycle_code (rr, rc) t, -1)
              in
              if not (Hashtbl.mem seen key) then begin
                Hashtbl.add seen key ();
                counts.(t) <- counts.(t) +. 1.
              end
            end)
          sched.S.by_pe.(r).(c)
      done
    done;
    counts
  in
  let per_tensor = ref [] in
  let current_tensor = ref "" in
  let credit total =
    per_tensor := (!current_tensor, total) :: !per_tensor
  in
  let add arr =
    credit (Array.fold_left ( +. ) 0. arr);
    Array.iteri (fun i v -> demand.(i) <- demand.(i) +. v) arr
  in
  let add_amortized total =
    credit total;
    let per = total /. float_of_int span in
    Array.iteri (fun i v -> demand.(i) <- v +. per) demand
  in
  let line_count dir =
    let reps = Hashtbl.create 16 in
    for r = 0 to rows - 1 do
      for c = 0 to cols - 1 do
        if sched.S.by_pe.(r).(c) <> [] then
          Hashtbl.replace reps (Geometry.line_rep ~rows ~cols ~dir (r, c)) ()
      done
    done;
    Hashtbl.length reps
  in
  List.iter
    (fun (ti : Tl_stt.Design.tensor_info) ->
      let access = ti.Tl_stt.Design.access in
      current_tensor := access.Tl_ir.Access.tensor;
      match ti.Tl_stt.Design.dataflow with
      | Tl_stt.Dataflow.Unicast ->
        add (per_cycle_distinct access ~group:None)
      | Tl_stt.Dataflow.Stationary _ -> add_amortized (float_of_int !active_pes)
      | Tl_stt.Dataflow.Systolic { dp; dt } ->
        let counts = Array.make span 0. in
        entry_count_per_cycle sched access ~dp ~dt span offset counts
          ~group:None;
        add counts
      | Tl_stt.Dataflow.Multicast { dp } ->
        add (per_cycle_distinct access ~group:(Some dp))
      | Tl_stt.Dataflow.Reuse2d Tl_stt.Dataflow.Broadcast ->
        add
          (Array.map (fun a -> if a > 0 then 1. else 0.) active)
      | Tl_stt.Dataflow.Reuse2d
          (Tl_stt.Dataflow.Multicast_stationary { multicast }) ->
        add_amortized (float_of_int (line_count multicast))
      | Tl_stt.Dataflow.Reuse2d
          (Tl_stt.Dataflow.Systolic_multicast { multicast; systolic }) ->
        let counts = Array.make span 0. in
        entry_count_per_cycle sched access ~dp:systolic.Tl_stt.Dataflow.dp
          ~dt:systolic.Tl_stt.Dataflow.dt span offset counts
          ~group:(Some multicast);
        add counts
      | Tl_stt.Dataflow.Reuse_full -> credit 1.)
    design.Tl_stt.Design.tensors;
  { t_span = span;
    active_pes = !active_pes;
    active_pe_cycles = !active_pe_cycles;
    busiest_pe = !busiest;
    demand;
    per_tensor = List.rev !per_tensor }

(* ---------------------------------------------------------------- *)
(* Streaming statistics: the same numbers as {!tile_statistics}, computed
   in one elaboration sweep per dataflow over {!Schedule.iter_events}
   without materialising any event list.

   Key facts that make this exact (checked differentially by the tests):
   - the [t = cycle - preload ∈ [0, span)] window of {!tile_statistics}
     selects exactly the pass-0 events;
   - every pass maps the same selected box to the same PEs with the same
     per-PE multiplicity, so [busiest_pe = passes × busiest-in-pass-0] and
     the active PE set is the pass-0 PE set;
   - (pe, cycle) is unique across all events (the STT is nonsingular and
     passes occupy disjoint cycle ranges), and a systolic predecessor of a
     window event lives at [cycle < preload + span], so a dense
     [PE × cycle] table over that horizon replaces the hash table;
   - a unicast access is injective on the selected iterators (its
     restricted null space is trivial), so the distinct elements touched
     per window cycle equal the active events of that cycle.

   Demand accumulation replicates [add]/[add_amortized]/[credit] with the
   same float operations in the same order, so results are bit-identical
   to the materialised path. *)

let tile_statistics_streaming (design : Tl_stt.Design.t)
    (fr : Schedule.frame) =
  let module S = Schedule in
  let rows = fr.S.f_rows and cols = fr.S.f_cols in
  let span = fr.S.f_span in
  let offset = fr.S.f_preload in
  let passes = fr.S.f_passes in
  let n_pes = rows * cols in
  let stmt = design.Tl_stt.Design.transform.Tl_stt.Transform.stmt in
  let extents = Tl_ir.Stmt.extents stmt in
  (* sweep 1: pass-0 occupancy *)
  let pe_count = Array.make n_pes 0 in
  let active = Array.make span 0 in
  S.iter_events fr (fun ~pass ~cycle ~r ~c _x ->
      if pass = 0 then begin
        active.(cycle - offset) <- active.(cycle - offset) + 1;
        let k = (r * cols) + c in
        pe_count.(k) <- pe_count.(k) + 1
      end);
  let active_pes = ref 0 and busiest0 = ref 0 in
  Array.iter
    (fun k ->
      if k > 0 then incr active_pes;
      if k > !busiest0 then busiest0 := k)
    pe_count;
  let active_pe_cycles = Array.fold_left ( + ) 0 active in
  (* collision-free dense code (≥ 1) for a tensor index: mixed radix over
     the analytic per-dimension bounds of the access rows *)
  let coder am =
    let dims = Array.length am in
    let lo = Array.make dims 0 and radix = Array.make dims 1 in
    let cap = ref 1 in
    for i = 0 to dims - 1 do
      let l = ref 0 and h = ref 0 in
      Array.iteri
        (fun j c ->
          let contrib = c * (extents.(j) - 1) in
          if contrib >= 0 then h := !h + contrib else l := !l + contrib)
        am.(i);
      lo.(i) <- !l;
      radix.(i) <- !h - !l + 1;
      if !cap > max_int / 2 / radix.(i) then
        invalid_arg "Perf_model: tensor index exceeds the dense code range";
      cap := !cap * radix.(i)
    done;
    fun x ->
      let code = ref 1 in
      for i = 0 to dims - 1 do
        let row = am.(i) in
        let v = ref 0 in
        for j = 0 to Array.length row - 1 do
          v := !v + (row.(j) * x.(j))
        done;
        code := (!code * radix.(i)) + (!v - lo.(i))
      done;
      !code
  in
  (* reuse-chain entries per window cycle, optionally deduplicated into
     multicast lines: dense predecessor table over cycles < preload+span *)
  let systolic_entries am ~dp ~dt ~group =
    let horizon = offset + span in
    let idx_at = Array.make (n_pes * horizon) 0 in
    let code = coder am in
    S.iter_events fr (fun ~pass:_ ~cycle ~r ~c x ->
        if cycle < horizon then
          idx_at.((((r * cols) + c) * horizon) + cycle) <- code x);
    let counts = Array.make span 0. in
    let groups =
      match group with None -> [||] | Some _ -> Array.make (n_pes * span) false
    in
    S.iter_events fr (fun ~pass ~cycle ~r ~c x ->
        if pass = 0 then begin
          let idx = code x in
          let pr = r - dp.(0) and pc = c - dp.(1) in
          let pcyc = cycle - dt in
          let is_entry =
            pr < 0 || pr >= rows || pc < 0 || pc >= cols || pcyc < 0
            || pcyc >= horizon
            || idx_at.((((pr * cols) + pc) * horizon) + pcyc) <> idx
          in
          if is_entry then begin
            let t = cycle - offset in
            match group with
            | None -> counts.(t) <- counts.(t) +. 1.
            | Some dir ->
              let rr, rc = Geometry.line_rep ~rows ~cols ~dir (r, c) in
              let k = ((((rr * cols) + rc) * span) + t) in
              if not groups.(k) then begin
                groups.(k) <- true;
                counts.(t) <- counts.(t) +. 1.
              end
          end
        end);
    counts
  in
  let multicast_counts ~dir =
    let seen = Array.make (n_pes * span) false in
    let counts = Array.make span 0. in
    S.iter_events fr (fun ~pass ~cycle ~r ~c _x ->
        if pass = 0 then begin
          let t = cycle - offset in
          let rr, rc = Geometry.line_rep ~rows ~cols ~dir (r, c) in
          let k = ((((rr * cols) + rc) * span) + t) in
          if not seen.(k) then begin
            seen.(k) <- true;
            counts.(t) <- counts.(t) +. 1.
          end
        end);
    counts
  in
  let line_count dir =
    let seen = Array.make n_pes false in
    let count = ref 0 in
    for r = 0 to rows - 1 do
      for c = 0 to cols - 1 do
        if pe_count.((r * cols) + c) > 0 then begin
          let rr, rc = Geometry.line_rep ~rows ~cols ~dir (r, c) in
          let k = (rr * cols) + rc in
          if not seen.(k) then begin
            seen.(k) <- true;
            incr count
          end
        end
      done
    done;
    !count
  in
  let demand = Array.make span 0. in
  let per_tensor = ref [] in
  let current_tensor = ref "" in
  let credit total = per_tensor := (!current_tensor, total) :: !per_tensor in
  let add arr =
    credit (Array.fold_left ( +. ) 0. arr);
    Array.iteri (fun i v -> demand.(i) <- demand.(i) +. v) arr
  in
  let add_amortized total =
    credit total;
    let per = total /. float_of_int span in
    Array.iteri (fun i v -> demand.(i) <- v +. per) demand
  in
  List.iter
    (fun (ti : Tl_stt.Design.tensor_info) ->
      let access = ti.Tl_stt.Design.access in
      let am = access.Tl_ir.Access.matrix in
      current_tensor := access.Tl_ir.Access.tensor;
      match ti.Tl_stt.Design.dataflow with
      | Tl_stt.Dataflow.Unicast -> add (Array.map float_of_int active)
      | Tl_stt.Dataflow.Stationary _ ->
        add_amortized (float_of_int !active_pes)
      | Tl_stt.Dataflow.Systolic { dp; dt } ->
        add (systolic_entries am ~dp ~dt ~group:None)
      | Tl_stt.Dataflow.Multicast { dp } -> add (multicast_counts ~dir:dp)
      | Tl_stt.Dataflow.Reuse2d Tl_stt.Dataflow.Broadcast ->
        add (Array.map (fun a -> if a > 0 then 1. else 0.) active)
      | Tl_stt.Dataflow.Reuse2d
          (Tl_stt.Dataflow.Multicast_stationary { multicast }) ->
        add_amortized (float_of_int (line_count multicast))
      | Tl_stt.Dataflow.Reuse2d
          (Tl_stt.Dataflow.Systolic_multicast { multicast; systolic }) ->
        add
          (systolic_entries am ~dp:systolic.Tl_stt.Dataflow.dp
             ~dt:systolic.Tl_stt.Dataflow.dt ~group:(Some multicast))
      | Tl_stt.Dataflow.Reuse_full -> credit 1.)
    design.Tl_stt.Design.tensors;
  { t_span = span;
    active_pes = !active_pes;
    active_pe_cycles;
    busiest_pe = passes * !busiest0;
    demand;
    per_tensor = List.rev !per_tensor }

(* ---------------------------------------------------------------- *)
(* Tile search instrumentation (cumulative, process-wide) *)

let c_tile_nodes = Atomic.make 0 (* partial tiles visited by the search *)
let c_tile_leaves = Atomic.make 0 (* feasible full tiles scored *)
let c_tile_pruned = Atomic.make 0 (* subtrees cut by the estimate bound *)
let c_tiles_evaluated = Atomic.make 0 (* tiles exactly evaluated *)

let counters () =
  [ ("tile_nodes", Atomic.get c_tile_nodes);
    ("tile_leaves", Atomic.get c_tile_leaves);
    ("tile_pruned", Atomic.get c_tile_pruned);
    ("tiles_evaluated", Atomic.get c_tiles_evaluated) ]

let reset_counters () =
  Atomic.set c_tile_nodes 0;
  Atomic.set c_tile_leaves 0;
  Atomic.set c_tile_pruned 0;
  Atomic.set c_tiles_evaluated 0

(* ---------------------------------------------------------------- *)

let evaluate_core ~config ~tile_search ~stats (design : Tl_stt.Design.t) =
  let transform = design.Tl_stt.Design.transform in
  if Tl_stt.Transform.space_dims transform <> 2 then
    invalid_arg "Perf_model.evaluate: only 2-D arrays";
  let stmt = transform.Tl_stt.Transform.stmt in
  let selected = transform.Tl_stt.Transform.selected in
  let im = transform.Tl_stt.Transform.imatrix in
  let sel_ext = Tl_stt.Transform.selected_extents transform in
  let n = Array.length selected in
  let unsel_product =
    List.fold_left ( * ) 1
      (List.map
         (fun (it : Tl_ir.Iter.t) -> it.Tl_ir.Iter.extent)
         (Tl_stt.Transform.unselected_iters transform))
  in
  (* candidate tiles: bbox + scratchpad feasibility, ranked by analytic
     cycle estimate *)
  let limit = 512 in
  let spad_words =
    int_of_float (config.scratchpad_kbytes *. 1024.)
    / config.elem_bytes
  in
  let cand = Array.init n (fun j -> candidate_sizes sel_ext.(j) limit) in
  (* Both searches return the best three feasible tiles as
     (est, tile, sel_passes, span), ordered by estimate ascending with
     ties broken towards the LATER enumeration index — the order the
     reference's reversed-prepend list assumes under a stable sort. *)
  let search_exhaustive () =
    let feasible = ref [] in
    let rec enum j tile =
      if j = n then begin
        let t = Array.of_list (List.rev tile) in
        if
          row_extent im 0 t <= config.rows
          && row_extent im 1 t <= config.cols
          && tile_working_set design selected t <= spad_words
        then begin
          let span = row_extent im 2 t in
          let sel_passes =
            Array.to_list
              (Array.mapi (fun j tj -> (sel_ext.(j) + tj - 1) / tj) t)
            |> List.fold_left ( * ) 1
          in
          let est = float_of_int (sel_passes * span) in
          feasible := (est, t, sel_passes, span) :: !feasible
        end
      end
      else List.iter (fun s -> enum (j + 1) (s :: tile)) cand.(j)
    in
    enum 0 [];
    let ranked =
      List.sort (fun (a, _, _, _) (b, _, _, _) -> compare a b) !feasible
    in
    List.filteri (fun i _ -> i < 3) ranked
  in
  (* Branch-and-bound over the same lexicographic enumeration.  Feasibility
     (row extents, working set) is monotone in every tile dimension, so an
     infeasible size cuts the rest of its ascending candidate list; a
     partial tile is cut when a lower bound on every completion's estimate
     already exceeds the current third-best.  Pruned leaves are strictly
     worse than all final survivors, so ties are unaffected. *)
  let search_pruned () =
    let cand_a = Array.map Array.of_list cand in
    let tile = Array.make n 1 in
    (* fewest passes dims >= j can contribute (each at its largest size) *)
    let suffix_min = Array.make (n + 1) 1 in
    for j = n - 1 downto 0 do
      let cs = cand_a.(j) in
      let max_c = cs.(Array.length cs - 1) in
      suffix_min.(j) <- suffix_min.(j + 1) * ((sel_ext.(j) + max_c - 1) / max_c)
    done;
    let best3 = ref [] in
    let worst () =
      match !best3 with [ _; _; (e, _, _, _, _) ] -> e | _ -> infinity
    in
    let insert ((e1, i1, _, _, _) as entry) =
      let before (e2, i2, _, _, _) = e1 < e2 || (e1 = e2 && i1 > i2) in
      let rec ins = function
        | [] -> [ entry ]
        | x :: rest -> if before x then entry :: x :: rest else x :: ins rest
      in
      best3 :=
        (match ins !best3 with a :: b :: c :: _ -> [ a; b; c ] | l -> l)
    in
    let next_idx = ref 0 in
    let rec go j passes_so_far =
      if j = n then begin
        Atomic.incr c_tile_leaves;
        let span = row_extent im 2 tile in
        let est = float_of_int (passes_so_far * span) in
        let idx = !next_idx in
        incr next_idx;
        insert (est, idx, Array.copy tile, passes_so_far, span)
      end
      else begin
        let cs = cand_a.(j) in
        let len = Array.length cs in
        let i = ref 0 and fits = ref true in
        while !fits && !i < len do
          let s = cs.(!i) in
          tile.(j) <- s;
          Atomic.incr c_tile_nodes;
          if
            row_extent im 0 tile > config.rows
            || row_extent im 1 tile > config.cols
            || tile_working_set design selected tile > spad_words
          then fits := false
          else begin
            let passes = passes_so_far * ((sel_ext.(j) + s - 1) / s) in
            let lb =
              float_of_int (passes * suffix_min.(j + 1) * row_extent im 2 tile)
            in
            if List.length !best3 = 3 && lb > worst () then
              Atomic.incr c_tile_pruned
            else go (j + 1) passes
          end;
          incr i
        done;
        tile.(j) <- 1
      end
    in
    go 0 1;
    List.map (fun (e, _, t, p, s) -> (e, t, p, s)) !best3
  in
  let top =
    match tile_search with
    | `Pruned -> search_pruned ()
    | `Exhaustive -> search_exhaustive ()
  in
  (match top with
   | [] -> invalid_arg "Perf_model.evaluate: no feasible tile (array too small)"
   | _ -> ());
  let capacity =
    config.bandwidth_gbps *. 1e9
    /. (config.freq_mhz *. 1e6)
    /. float_of_int config.elem_bytes
  in
  let int_rows = Array.to_list (Array.map Array.to_list im) in
  let evaluate_tile (_, tile, sel_passes, _) =
    Atomic.incr c_tiles_evaluated;
    let ts = tile_stmt stmt selected tile in
    let tt = Tl_stt.Transform.v ts ~selected ~matrix:int_rows in
    let td = Tl_stt.Design.analyze tt in
    let stats =
      match stats with
      | `Materialised ->
        tile_statistics td
          (Schedule.build td ~rows:config.rows ~cols:config.cols)
      | `Streaming ->
        tile_statistics_streaming td
          (Schedule.frame td ~rows:config.rows ~cols:config.cols)
    in
    let eff_span =
      Array.fold_left
        (fun acc d -> acc +. Stdlib.max 1. (d /. capacity))
        0. stats.demand
    in
    let total_passes = sel_passes * unsel_product in
    let tail = config.rows in
    let cycles = (float_of_int total_passes *. eff_span) +. float_of_int tail in
    (tile, sel_passes, total_passes, stats, eff_span, cycles)
  in
  let results = List.map evaluate_tile top in
  let best =
    List.fold_left
      (fun acc r ->
        match acc with
        | None -> Some r
        | Some (_, _, _, _, _, c) ->
          let _, _, _, _, _, c' = r in
          if c' < c then Some r else acc)
      None results
  in
  let tile, sel_passes, total_passes, stats, eff_span, cycles =
    match best with Some r -> r | None -> assert false
  in
  (* steady-state throughput when consecutive passes pipeline through the
     array: the per-pass skew is paid once, each pass then costs the
     busiest PE's occupancy (plus any bandwidth stall) *)
  let busy = float_of_int stats.busiest_pe in
  let busy_eff = busy +. Stdlib.max 0. (eff_span -. float_of_int stats.t_span) in
  let pipelined_cycles =
    (float_of_int total_passes *. busy_eff)
    +. (float_of_int stats.t_span -. busy)
    +. float_of_int config.rows
  in
  let macs = Tl_ir.Stmt.domain_size stmt in
  let array_size = float_of_int (config.rows * config.cols) in
  let utilization =
    float_of_int stats.active_pe_cycles
    /. (array_size *. float_of_int stats.t_span)
  in
  let normalized_perf = float_of_int macs /. (array_size *. cycles) in
  let bw_stall_factor = eff_span /. float_of_int stats.t_span in
  let words_per_cycle =
    Array.fold_left ( +. ) 0. stats.demand /. float_of_int stats.t_span
  in
  let runtime_us = cycles /. config.freq_mhz in
  let ops_per_mac =
    float_of_int (List.length stmt.Tl_ir.Stmt.inputs + 1)
  in
  let gops = ops_per_mac *. float_of_int macs /. runtime_us /. 1e3 in
  { design_name = design.Tl_stt.Design.name;
    tile;
    selected_passes = sel_passes;
    total_passes;
    span = stats.t_span;
    tail = config.rows;
    cycles;
    macs;
    utilization;
    normalized_perf;
    bw_stall_factor;
    words_per_cycle;
    runtime_us;
    gops;
    pipelined_cycles;
    pipelined_perf = float_of_int macs /. (array_size *. pipelined_cycles);
    traffic_words =
      List.map
        (fun (t, per_pass) -> (t, per_pass *. float_of_int total_passes))
        stats.per_tensor }

(* ---------------------------------------------------------------- *)
(* Evaluation cache: results are keyed by the config fingerprint and the
   D4-canonical evaluation signature, so symmetry-equivalent designs (which
   provably evaluate identically on a square array) share one entry.  Only
   the default fast path is cached — the reference combinations always
   recompute, so differential tests compare independent computations. *)

let eval_cache : (result, exn) Stdlib.result Tl_par.Cache.t =
  Tl_par.Cache.create ~name:"perf.evaluate" ()

let config_fingerprint c =
  Printf.sprintf "%d,%d,%h,%h,%d,%h" c.rows c.cols c.freq_mhz
    c.bandwidth_gbps c.elem_bytes c.scratchpad_kbytes

(* The full memo key: config fingerprint joined with the symmetry-canonical
   evaluation signature.  Stable across processes (pure text, hex floats),
   so the persistent design store can reuse it verbatim. *)
let cache_key ?(config = default_config) (design : Tl_stt.Design.t) =
  config_fingerprint config ^ "|"
  ^ Tl_stt.Signature.eval_key ~square:(config.rows = config.cols) design

let evaluate ?(config = default_config) ?(tile_search = `Pruned)
    ?(stats = `Streaming) ?(cache = true) (design : Tl_stt.Design.t) =
  let run () = evaluate_core ~config ~tile_search ~stats design in
  if cache && tile_search = `Pruned && stats = `Streaming then
    let key = cache_key ~config design in
    match
      Tl_par.Cache.find_or_add eval_cache key (fun () ->
          match run () with r -> Ok r | exception e -> Error e)
    with
    | Ok r -> r
    | Error e -> raise e
  else run ()

(* Several transformation matrices can realise the same dataflow name; the
   best choice (e.g. a [0,1,1] space row that packs y+p Conv2D loops into
   one array dimension) can differ from the simplest.  Rank the matches by
   a cheap analytic estimate, exactly evaluate the front-runners. *)
let quick_estimate config (design : Tl_stt.Design.t) =
  let transform = design.Tl_stt.Design.transform in
  let matrix = transform.Tl_stt.Transform.imatrix in
  let sel_ext = Tl_stt.Transform.selected_extents transform in
  let n = Array.length sel_ext in
  let tile = Array.make n 1 in
  (* greedy growth, two sweeps *)
  for _ = 1 to 2 do
    for j = 0 to n - 1 do
      List.iter
        (fun s ->
          let old = tile.(j) in
          tile.(j) <- s;
          if
            not
              (row_extent matrix 0 tile <= config.rows
               && row_extent matrix 1 tile <= config.cols)
          then tile.(j) <- old)
        (candidate_sizes sel_ext.(j) 512)
    done
  done;
  let span = row_extent matrix 2 tile in
  (* a one-to-one schedule always satisfies span >= macs / PEs, so the pass
     cost is bounded below by both quantities *)
  let per_pe =
    (Array.fold_left ( * ) 1 tile + (config.rows * config.cols) - 1)
    / (config.rows * config.cols)
  in
  let sel_passes = ref 1 in
  Array.iteri
    (fun j tj -> sel_passes := !sel_passes * ((sel_ext.(j) + tj - 1) / tj))
    tile;
  float_of_int (!sel_passes * max span per_pe)

let evaluate_name ?(config = default_config) stmt name =
  match Tl_stt.Search.matching_designs stmt name with
  | [] -> None
  | candidates ->
    (* compare estimates only: a polymorphic compare on the pair would
       tie-break on the opaque Design.t structure, making the candidate
       order depend on representation internals rather than search order *)
    let ranked =
      List.stable_sort (fun (a, _) (b, _) -> Float.compare a b)
        (List.map (fun d -> (quick_estimate config d, d)) candidates)
    in
    let top = List.filteri (fun i _ -> i < 6) ranked in
    let results = List.map (fun (_, d) -> evaluate ~config d) top in
    List.fold_left
      (fun acc r ->
        match acc with
        | None -> Some r
        | Some best -> if r.cycles < best.cycles then Some r else acc)
      None results

let pp_result ppf r =
  Format.fprintf ppf
    "@[%-12s tile=%s span=%d passes=%d cycles=%.0f util=%.2f bw=%.2fx \
     norm=%.3f@]"
    r.design_name
    (String.concat "x" (Array.to_list (Array.map string_of_int r.tile)))
    r.span r.total_passes r.cycles r.utilization r.bw_stall_factor
    r.normalized_perf

(* ---------------------------------------------------------------- *)
(* Exact textual codec for [result], used by the persistent design
   store.  Versioned, tab-separated; floats render as hex ([%h]), which
   [float_of_string] round-trips bit-exactly, so a decoded result is
   structurally equal to the original — warm-store sweeps reproduce
   cold-run frontiers to the last bit.  Names are percent-escaped so
   tabs/newlines/separators in user-chosen statement names can never
   break the framing. *)

let codec_magic = "tlperf/1"

let escape_name s =
  let plain c =
    match c with
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '-' | ':' | '[' | ']'
      ->
      true
    | _ -> false
  in
  if String.for_all plain s then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        if plain c then Buffer.add_char buf c
        else Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c)))
      s;
    Buffer.contents buf
  end

let unescape_name s =
  if not (String.contains s '%') then s
  else begin
    let buf = Buffer.create (String.length s) in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      if s.[!i] = '%' && !i + 2 < n then begin
        (match int_of_string_opt ("0x" ^ String.sub s (!i + 1) 2) with
        | Some code -> Buffer.add_char buf (Char.chr code)
        | None -> Buffer.add_char buf s.[!i]);
        i := !i + 3
      end
      else begin
        Buffer.add_char buf s.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  end

let result_to_string (r : result) =
  let ints a = String.concat "," (List.map string_of_int (Array.to_list a)) in
  let traffic =
    String.concat ","
      (List.map
         (fun (name, w) -> Printf.sprintf "%s=%h" (escape_name name) w)
         r.traffic_words)
  in
  String.concat "\t"
    [ codec_magic;
      escape_name r.design_name;
      ints r.tile;
      string_of_int r.selected_passes;
      string_of_int r.total_passes;
      string_of_int r.span;
      string_of_int r.tail;
      Printf.sprintf "%h" r.cycles;
      string_of_int r.macs;
      Printf.sprintf "%h" r.utilization;
      Printf.sprintf "%h" r.normalized_perf;
      Printf.sprintf "%h" r.bw_stall_factor;
      Printf.sprintf "%h" r.words_per_cycle;
      Printf.sprintf "%h" r.runtime_us;
      Printf.sprintf "%h" r.gops;
      Printf.sprintf "%h" r.pipelined_cycles;
      Printf.sprintf "%h" r.pipelined_perf;
      traffic ]

let result_of_string s =
  match String.split_on_char '\t' s with
  | [ magic; name; tile; sel_passes; tot_passes; span; tail; cycles; macs;
      util; norm; bw; wpc; runtime; gops; pcycles; pperf; traffic ]
    when magic = codec_magic -> (
    let int_of = int_of_string_opt in
    let float_of = float_of_string_opt in
    let tile =
      if tile = "" then Some [||]
      else
        let parts = String.split_on_char ',' tile in
        let vals = List.filter_map int_of parts in
        if List.length vals = List.length parts then
          Some (Array.of_list vals)
        else None
    in
    let traffic =
      if traffic = "" then Some []
      else
        let parts = String.split_on_char ',' traffic in
        let decoded =
          List.filter_map
            (fun p ->
              match String.index_opt p '=' with
              | None -> None
              | Some eq ->
                let name = unescape_name (String.sub p 0 eq) in
                let v =
                  float_of
                    (String.sub p (eq + 1) (String.length p - eq - 1))
                in
                Option.map (fun v -> (name, v)) v)
            parts
        in
        if List.length decoded = List.length parts then Some decoded
        else None
    in
    match
      ( tile, int_of sel_passes, int_of tot_passes, int_of span, int_of tail,
        float_of cycles, int_of macs, float_of util, float_of norm,
        float_of bw, float_of wpc, float_of runtime, float_of gops,
        float_of pcycles, float_of pperf, traffic )
    with
    | ( Some tile, Some selected_passes, Some total_passes, Some span,
        Some tail, Some cycles, Some macs, Some utilization,
        Some normalized_perf, Some bw_stall_factor, Some words_per_cycle,
        Some runtime_us, Some gops, Some pipelined_cycles,
        Some pipelined_perf, Some traffic_words ) ->
      Some
        { design_name = unescape_name name;
          tile;
          selected_passes;
          total_passes;
          span;
          tail;
          cycles;
          macs;
          utilization;
          normalized_perf;
          bw_stall_factor;
          words_per_cycle;
          runtime_us;
          gops;
          pipelined_cycles;
          pipelined_perf;
          traffic_words }
    | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Program-aware estimates: when a compiled program (not a design) is
   what will run — the runtime-programmable netlist of Tl_compile — the
   exact cycle count and MAC tally are already in the program, so the
   estimate needs no tile search at all. *)

type program_estimate = {
  pe_name : string;
  pe_cycles : int;
  pe_macs : int;
  pe_utilization : float;
  pe_program_words : int;
  pe_runtime_us : float;
  pe_gops : float;
}

let estimate_program ?(config = default_config) ~rows ~cols
    (p : Tl_templates.Layout.program) =
  let pe_cycles = p.Tl_templates.Layout.p_total + 1 in
  let pe_macs = p.Tl_templates.Layout.p_events in
  let pe_program_words =
    List.fold_left
      (fun acc (_, (_, img)) -> acc + Array.length img)
      0 p.Tl_templates.Layout.p_images
  in
  let pe_utilization =
    float_of_int pe_macs /. float_of_int (rows * cols * pe_cycles)
  in
  let pe_runtime_us = float_of_int pe_cycles /. config.freq_mhz in
  let pe_gops =
    if pe_runtime_us = 0. then 0.
    else 2. *. float_of_int pe_macs /. (pe_runtime_us *. 1000.)
  in
  { pe_name = p.Tl_templates.Layout.p_name; pe_cycles; pe_macs;
    pe_utilization; pe_program_words; pe_runtime_us; pe_gops }

let pp_program_estimate fmt e =
  Format.fprintf fmt
    "@[<v>program %s:@;\
     <1 2>cycles      : %d@;\
     <1 2>macs        : %d@;\
     <1 2>utilization : %.3f@;\
     <1 2>prog words  : %d@;\
     <1 2>runtime     : %.2f us (%.1f GOPS)@]"
    e.pe_name e.pe_cycles e.pe_macs e.pe_utilization e.pe_program_words
    e.pe_runtime_us e.pe_gops
