(** Cycle-level performance model (Fig. 5).

    Estimates execution cycles of a design on a fixed PE array under a
    bandwidth budget, reproducing the §VI-A observations:

    - the per-tile latency is the exact time span of the tile's space-time
      image (computed from the schedule), which charges systolic fill/drain
      automatically and explains why multicast dataflows beat systolic ones
      on raw cycles;
    - PE under-utilisation from small loop bounds (Conv2D p=3 → 15/16 rows)
      appears because the footprint of the best legal tile covers only part
      of the array;
    - unicast dataflows are throttled cycle-by-cycle when their memory
      traffic exceeds the array's bandwidth (the MTTKRP/TTMc effect);
    - stationary tensors add a drain/fill tail per pass.

    Tiling: selected loops are tiled so the footprint fits the array; the
    model searches candidate tile shapes (bounding-box feasibility, then
    exact evaluation of the best few) and reports the best. *)

type config = {
  rows : int;
  cols : int;
  freq_mhz : float;
  bandwidth_gbps : float;  (** array ↔ scratchpad *)
  elem_bytes : int;
  scratchpad_kbytes : float;  (** bounds the tile working set *)
}

val default_config : config
(** 16×16, 320 MHz, 32 GB/s, INT16 — the paper's Fig. 5 setup. *)

type result = {
  design_name : string;
  tile : int array;          (** chosen tile of the selected loops *)
  selected_passes : int;     (** number of tiles over the selected loops *)
  total_passes : int;        (** including unselected sequential loops *)
  span : int;                (** cycles of one pass (fill/drain included) *)
  tail : int;                (** end-of-run drain cycles *)
  cycles : float;            (** bandwidth-throttled total *)
  macs : int;                (** total multiply-accumulates *)
  utilization : float;       (** active PE-cycles / (array × compute cycles) *)
  normalized_perf : float;   (** macs / (rows*cols*cycles): 1.0 = peak *)
  bw_stall_factor : float;   (** cycles inflation due to bandwidth, ≥ 1 *)
  words_per_cycle : float;   (** average memory words demanded per cycle *)
  runtime_us : float;
  gops : float;              (** 2·macs / runtime *)
  pipelined_cycles : float;
      (** steady-state cycles when consecutive passes overlap in the array
          (per-pass skew paid once); the sustained-throughput figure used
          for Table III *)
  pipelined_perf : float;
  traffic_words : (string * float) list;
      (** scratchpad ↔ array word transfers over the whole run, per tensor
          (reuse already exploited by the interconnect) *)
}

type tile_stats = {
  t_span : int;
  active_pes : int;
  active_pe_cycles : int;
  busiest_pe : int;   (** events at the most-loaded PE *)
  demand : float array;  (** memory words demanded per schedule cycle *)
  per_tensor : (string * float) list;  (** words per pass, by tensor *)
}
(** Exact per-tile schedule statistics; exposed for differential testing
    of the two computation paths. *)

val tile_statistics : Tl_stt.Design.t -> Tl_templates.Schedule.t -> tile_stats
(** Reference path: statistics from a materialised schedule. *)

val tile_statistics_streaming :
  Tl_stt.Design.t -> Tl_templates.Schedule.frame -> tile_stats
(** Fast path: the same statistics (bit-identical, including float demand)
    from streaming elaboration sweeps — no event lists, no hash tables.
    @raise Invalid_argument if a tensor index exceeds the dense code range. *)

val evaluate :
  ?config:config ->
  ?tile_search:[ `Pruned | `Exhaustive ] ->
  ?stats:[ `Streaming | `Materialised ] ->
  ?cache:bool ->
  Tl_stt.Design.t ->
  result
(** Evaluate a design.  [tile_search] picks branch-and-bound pruning
    (default) or the exhaustive reference enumeration; [stats] picks the
    streaming or the materialised statistics path.  All four combinations
    return identical results.  Results are memoised by D4-canonical design
    signature and config fingerprint when [cache] is true (default) and
    both fast paths are selected; [cache:false] or any reference choice
    bypasses the memo entirely.
    @raise Invalid_argument for non-2-D space transformations. *)

val config_fingerprint : config -> string
(** Stable textual form of a config (ints + hex floats): equal strings
    iff the configs evaluate identically.  Part of {!cache_key}. *)

val cache_key : ?config:config -> Tl_stt.Design.t -> string
(** The exact memoisation key {!evaluate} uses: config fingerprint joined
    with the symmetry-canonical evaluation signature.  Pure text, stable
    across processes and sessions — the persistent design store keys its
    entries with it. *)

val result_to_string : result -> string
(** Versioned exact codec (hex floats): [result_of_string (result_to_string
    r) = Some r] with structural equality, bit-for-bit on every float. *)

val result_of_string : string -> result option
(** [None] on version mismatch or any malformed field — corrupted store
    payloads degrade to a miss, never a crash. *)

val counters : unit -> (string * int) list
(** Cumulative tile-search counters: [tile_nodes], [tile_leaves],
    [tile_pruned], [tiles_evaluated]. *)

val reset_counters : unit -> unit

val evaluate_name : ?config:config -> Tl_ir.Stmt.t -> string -> result option
(** Resolve a paper-style dataflow name then evaluate. *)

val pp_result : Format.formatter -> result -> unit

(** {2 Program-aware estimates}

    For a compiled descriptor program ({!Tl_compile}) the schedule is
    already fully resolved, so the estimate is exact arithmetic over the
    program header — no tile search, no schedule elaboration. *)

type program_estimate = {
  pe_name : string;
  pe_cycles : int;         (** simulated cycles, [p_total + 1] *)
  pe_macs : int;           (** MAC events ([p_events]) *)
  pe_utilization : float;  (** macs / (rows·cols·cycles) *)
  pe_program_words : int;  (** descriptor words {!Tl_templates.Accel.load_program} writes *)
  pe_runtime_us : float;   (** at [config.freq_mhz] *)
  pe_gops : float;         (** 2·macs / runtime *)
}

val estimate_program : ?config:config -> rows:int -> cols:int ->
  Tl_templates.Layout.program -> program_estimate
(** Exact performance of [program] on a [rows]×[cols] programmable array
    (only [config.freq_mhz] is read — a loaded program is never
    bandwidth-throttled, its feeders replay from on-array memories). *)

val pp_program_estimate : Format.formatter -> program_estimate -> unit
