(* Cooperative cancellation budgets.

   A budget is threaded into the inner loops of the expensive sweeps
   (matrix enumeration, point evaluation, whole-network shards), which
   poll it between units of work.  Expiry never interrupts a unit in
   flight — the loops are cooperative — so a caller that catches
   [Expired] always observes a consistent prefix of the work.

   Two concrete shapes:

   - [of_seconds] — a wall-clock deadline against an injectable
     monotone clock (tests pass a fake clock; production uses
     [Unix.gettimeofday]).
   - [of_checks] — a deterministic unit budget: every poll consumes one
     unit, so at pool width 1 the cut point is bit-reproducible with no
     wall-clock involved at all.

   [unlimited] polls to [false] with a single pattern match — the
   budgeted loops pay nothing when nobody asked for a deadline. *)

exception Expired of string

type t =
  | Unlimited
  | Deadline of { clock : unit -> float; until : float; label : string }
  | Checks of { remaining : int Atomic.t; label : string }

let unlimited = Unlimited

let of_seconds ?(clock = Unix.gettimeofday) ?(label = "deadline") seconds =
  if seconds < 0. then invalid_arg "Budget.of_seconds: negative";
  Deadline { clock; until = clock () +. seconds; label }

let of_checks ?(label = "checks") n =
  if n < 0 then invalid_arg "Budget.of_checks: negative";
  Checks { remaining = Atomic.make n; label }

let is_unlimited = function Unlimited -> true | _ -> false

(* Polling a check budget consumes one unit (that is its unit of
   measure); polling a deadline only reads the clock. *)
let expired = function
  | Unlimited -> false
  | Deadline d -> d.clock () >= d.until
  | Checks c -> Atomic.fetch_and_add c.remaining (-1) <= 0

let label = function
  | Unlimited -> "unlimited"
  | Deadline d -> d.label
  | Checks c -> c.label

let check t = if expired t then raise (Expired (label t))

let remaining_s = function
  | Unlimited -> infinity
  | Deadline d -> Float.max 0. (d.until -. d.clock ())
  | Checks c -> float_of_int (max 0 (Atomic.get c.remaining))
