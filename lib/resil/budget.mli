(** Cooperative cancellation budgets for the DSE / serving stack.

    A budget is polled ({!check} / {!expired}) between units of work
    inside the expensive loops — matrix enumeration, per-point
    evaluation, whole-network shards.  Expiry is cooperative: a unit in
    flight always completes, so catching {!Expired} leaves a consistent
    prefix of the work behind (the sweep turns it into a typed partial
    result rather than dying).

    The default {!unlimited} budget polls to [false] with one pattern
    match, so budget-threaded code costs nothing when no deadline was
    requested. *)

exception Expired of string
(** Raised by {!check}; the payload is the budget's label. *)

type t

val unlimited : t

val of_seconds : ?clock:(unit -> float) -> ?label:string -> float -> t
(** Wall-clock deadline [clock () + seconds].  The clock is injectable
    so tests never touch real time (default [Unix.gettimeofday]).
    @raise Invalid_argument on a negative duration. *)

val of_checks : ?label:string -> int -> t
(** Deterministic unit budget: every {!expired} / {!check} poll consumes
    one unit; the budget expires once [n] units are gone.  At pool width
    1 the cut point is bit-reproducible — no wall clock involved.
    @raise Invalid_argument on a negative count. *)

val expired : t -> bool
(** Poll the budget.  Consumes one unit of a check budget. *)

val check : t -> unit
(** {!expired}, raising {!Expired} when the budget is gone. *)

val is_unlimited : t -> bool
val label : t -> string

val remaining_s : t -> float
(** Seconds left on a deadline, units left on a check budget,
    [infinity] for {!unlimited}; never negative. *)
