(* Seeded software chaos injection.

   The toolchain carries a handful of named probe points — store entry
   writes ("store.write"), store entry reads ("store.read"), and every
   Tl_par pool task ("par:<pool label>").  When a chaos plan is armed,
   each probe draws deterministically from the plan: whether to fire and
   which action, as a pure function of (seed, site, key).  Pool-task
   probes are keyed by the task *index*, so the same faults hit the same
   tasks at every pool width — the determinism the chaos gates assert.
   Store probes default to a per-site occurrence counter (concurrent
   writers make the counter assignment racy, which is fine: the store
   assertions are "no crash, degrade to miss", not replay).

   Disarmed (the default), every probe is one atomic load. *)

type action =
  | Fail of string  (* raise Sys_error at the probe *)
  | Truncate of float  (* keep this fraction of a written payload *)
  | Corrupt  (* flip one byte of a written payload *)
  | Delay of int  (* spin this many iterations *)

type config = {
  seed : int;
  rate : float;  (* fire probability per probe, in [0, 1] *)
  sites : (string * action list) list;  (* probes not listed never fire *)
}

type state = {
  cfg : config;
  counters : (string, int Atomic.t) Hashtbl.t;  (* default keys *)
  counters_lock : Mutex.t;
}

let armed_state : state option Atomic.t = Atomic.make None
let injected_ctr = Atomic.make 0

let injected () = Atomic.get injected_ctr
let reset_injected () = Atomic.set injected_ctr 0
let armed () = Atomic.get armed_state <> None

(* Pure fire/choose function, exposed so harnesses can pick seeds that
   hit (or spare) specific task indices. *)
let draw_pure ~seed ~rate ~site ~key actions =
  let st = Random.State.make [| seed; Hashtbl.hash site; key |] in
  if Random.State.float st 1.0 >= rate then None
  else
    match actions with
    | [] -> None
    | _ -> Some (List.nth actions (Random.State.int st (List.length actions)))

let would_fire ~seed ~rate ~site ~key =
  draw_pure ~seed ~rate ~site ~key [ Fail "probe" ] <> None

let next_key st site =
  Mutex.lock st.counters_lock;
  let ctr =
    match Hashtbl.find_opt st.counters site with
    | Some c -> c
    | None ->
      let c = Atomic.make 0 in
      Hashtbl.add st.counters site c;
      c
  in
  Mutex.unlock st.counters_lock;
  Atomic.fetch_and_add ctr 1

let draw ?key site =
  match Atomic.get armed_state with
  | None -> None
  | Some st -> (
    match List.assoc_opt site st.cfg.sites with
    | None | Some [] -> None
    | Some actions -> (
      let key = match key with Some k -> k | None -> next_key st site in
      match
        draw_pure ~seed:st.cfg.seed ~rate:st.cfg.rate ~site ~key actions
      with
      | None -> None
      | Some a ->
        Atomic.incr injected_ctr;
        Some a))

let spin n =
  for _ = 1 to n do
    ignore (Sys.opaque_identity n)
  done

(* Exception / delay probe: write-mangling actions are meaningless here
   and ignored. *)
let probe ?key ~site () =
  match draw ?key site with
  | None | Some (Truncate _) | Some Corrupt -> ()
  | Some (Fail msg) -> raise (Sys_error (Printf.sprintf "chaos:%s: %s" site msg))
  | Some (Delay n) -> spin n

(* Payload-mangling probe for write paths: returns the (possibly torn or
   corrupted) bytes that actually reach the disk. *)
let mangle ?key ~site content =
  match draw ?key site with
  | None -> content
  | Some (Fail msg) -> raise (Sys_error (Printf.sprintf "chaos:%s: %s" site msg))
  | Some (Delay n) ->
    spin n;
    content
  | Some (Truncate frac) ->
    let n = String.length content in
    let keep =
      max 0 (min (n - 1) (int_of_float (frac *. float_of_int n)))
    in
    if n = 0 then content else String.sub content 0 keep
  | Some Corrupt ->
    let n = String.length content in
    if n = 0 then content
    else
      let pos = abs (Hashtbl.hash (site, Option.value key ~default:0, n)) mod n in
      let b = Bytes.of_string content in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
      Bytes.to_string b

let par_probe ~label ~index =
  probe ~key:index ~site:("par:" ^ label) ()

let arm cfg =
  if cfg.rate < 0. || cfg.rate > 1. then invalid_arg "Chaos.arm: rate";
  Atomic.set armed_state
    (Some
       {
         cfg;
         counters = Hashtbl.create 8;
         counters_lock = Mutex.create ();
       });
  (* pool-task probes fire through Tl_par's hook, keyed by task index so
     the injected faults are independent of the pool width *)
  if List.exists (fun (s, _) -> String.length s > 4 && String.sub s 0 4 = "par:") cfg.sites
  then Tl_par.set_task_probe (Some par_probe)

let disarm () =
  Atomic.set armed_state None;
  Tl_par.set_task_probe None
