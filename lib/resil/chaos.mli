(** Seeded software chaos injection over the toolchain's probe points.

    Probe sites: ["store.write"] (entry bytes may be torn, corrupted, or
    fail with [Sys_error]), ["store.read"] (reads may fail or stall),
    and ["par:<pool label>"] (every {!Tl_par} task of that pool may be
    delayed or killed, keyed by task index so injections are independent
    of the pool width).  A probe at an unarmed site — or with no plan
    armed at all, the default — costs one atomic load and does nothing.

    Whether a probe fires, and which action, is a pure function of
    (seed, site, key); {!would_fire} exposes it so gates can pick seeds
    that hit specific tasks deterministically. *)

type action =
  | Fail of string  (** raise [Sys_error] at the probe *)
  | Truncate of float  (** keep this fraction of a written payload *)
  | Corrupt  (** flip one byte of a written payload *)
  | Delay of int  (** spin this many iterations *)

type config = {
  seed : int;
  rate : float;  (** fire probability per probe, in [0, 1] *)
  sites : (string * action list) list;
      (** actions drawn uniformly per firing probe; unlisted sites never
          fire *)
}

val arm : config -> unit
(** Install the plan (replacing any armed one).  Arming any ["par:*"]
    site installs the {!Tl_par} task probe.
    @raise Invalid_argument when [rate] is outside [0, 1]. *)

val disarm : unit -> unit
(** Remove the plan and the {!Tl_par} task probe. *)

val armed : unit -> bool

val injected : unit -> int
(** Faults fired since the last {!reset_injected} — cumulative across
    arm/disarm cycles so a multi-phase campaign can total its weather. *)

val reset_injected : unit -> unit

val draw : ?key:int -> string -> action option
(** Draw at a site.  [key] defaults to a per-site occurrence counter;
    pool probes pass the task index. Counts toward {!injected} when it
    fires. *)

val probe : ?key:int -> site:string -> unit -> unit
(** Exception/delay probe point: may raise [Sys_error] or spin;
    write-mangling actions are ignored here. *)

val mangle : ?key:int -> site:string -> string -> string
(** Write probe point: returns the bytes that actually reach the disk —
    possibly truncated or byte-flipped — or raises [Sys_error]. *)

val would_fire : seed:int -> rate:float -> site:string -> key:int -> bool
(** The pure fire decision, for seed selection in tests and gates. *)
