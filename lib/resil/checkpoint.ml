(* Sweep checkpoints: a versioned list of completed shape keys.

   Layout (one file, written tempfile + fsync + atomic rename):

     tlckpt/1 <tag> <n> <body_md5>\n
     <key 1>\n
     ...
     <key n>\n

   The tag binds the checkpoint to one exact sweep (network layer keys +
   config); a resume against a different sweep, a truncated file, or any
   digest mismatch silently loads as [None] — the sweep just starts
   cold.  Keys must be newline-free (shape keys are). *)

let magic = "tlckpt/1"

let encode ~tag keys =
  let body =
    String.concat "" (List.map (fun k -> k ^ "\n") keys)
  in
  Printf.sprintf "%s %s %d %s\n%s" magic tag (List.length keys)
    (Digest.to_hex (Digest.string body))
    body

let save ~path ~tag keys =
  List.iter
    (fun k ->
      if String.contains k '\n' then
        invalid_arg "Checkpoint.save: key contains a newline")
    keys;
  if String.contains tag ' ' || String.contains tag '\n' then
    invalid_arg "Checkpoint.save: tag contains whitespace";
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (encode ~tag keys);
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc));
  Sys.rename tmp path

let load ~path ~tag =
  let content =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let n = in_channel_length ic in
          Some (really_input_string ic n))
    with Sys_error _ | End_of_file -> None
  in
  match content with
  | None -> None
  | Some content -> (
    match String.index_opt content '\n' with
    | None -> None
    | Some nl -> (
      let header = String.sub content 0 nl in
      let body =
        String.sub content (nl + 1) (String.length content - nl - 1)
      in
      match String.split_on_char ' ' header with
      | [ m; t; n; md5 ]
        when m = magic && t = tag
             && int_of_string_opt n <> None
             && Digest.to_hex (Digest.string body) = md5 -> (
        let n = Option.get (int_of_string_opt n) in
        let keys =
          String.split_on_char '\n' body |> List.filter (fun l -> l <> "")
        in
        if List.length keys = n then Some keys else None)
      | _ -> None))

let remove ~path = try Sys.remove path with Sys_error _ -> ()
