(** Atomic sweep checkpoints: the list of completed shape keys.

    One versioned file per sweep, rewritten (tempfile + fsync + atomic
    rename) after every completed shape — an interrupted sweep can only
    ever leave a complete, verifiable checkpoint behind.  The [tag]
    binds the file to one exact sweep (layer keys + config fingerprint);
    any mismatch, truncation, or corruption loads as [None] and the
    sweep starts cold instead of resuming wrongly. *)

val save : path:string -> tag:string -> string list -> unit
(** Atomically replace the checkpoint with [keys] (order preserved).
    @raise Invalid_argument when a key contains a newline or the tag
    contains whitespace. *)

val load : path:string -> tag:string -> string list option
(** [None] when the file is missing, malformed, digest-mismatched, or
    tagged for a different sweep. *)

val remove : path:string -> unit
(** Delete the checkpoint; missing files are fine. *)
