(* Seeded retry-with-backoff.

   The combinator retries transient failures (by default [Sys_error] /
   [Unix_error] — I/O weather, not logic bugs) with exponential backoff
   and deterministic jitter: the k-th delay for a given (seed, label) is
   a pure function, so campaigns replay bit-identically.  The sleep is
   injectable — tests pass a recording no-op and never touch the wall
   clock; production keeps [Unix.sleepf].

   Global atomic counters record re-attempts and give-ups so the
   resilience gates can report how much weather a run absorbed. *)

type policy = {
  attempts : int;  (* total attempts, including the first *)
  base_delay_s : float;
  multiplier : float;
  jitter : float;  (* fraction of each delay drawn uniformly *)
  sleep : float -> unit;
  retry_on : exn -> bool;
}

let transient = function
  | Sys_error _ | Unix.Unix_error _ -> true
  | _ -> false

let default =
  {
    attempts = 3;
    base_delay_s = 0.001;
    multiplier = 4.0;
    jitter = 0.5;
    sleep = Unix.sleepf;
    retry_on = transient;
  }

let no_retry = { default with attempts = 1 }

let retries_ctr = Atomic.make 0
let giveups_ctr = Atomic.make 0

let retries () = Atomic.get retries_ctr
let giveups () = Atomic.get giveups_ctr

let reset_counters () =
  Atomic.set retries_ctr 0;
  Atomic.set giveups_ctr 0

(* k-th backoff delay (k = 0 for the first re-attempt): exponential with
   deterministic jitter from (seed, label, k). *)
let delay_s policy ~seed ~label k =
  let base = policy.base_delay_s *. (policy.multiplier ** float_of_int k) in
  if policy.jitter <= 0. then base
  else
    let st = Random.State.make [| seed; Hashtbl.hash label; k |] in
    base *. (1. -. policy.jitter +. (policy.jitter *. Random.State.float st 1.))

let with_retry ?(policy = default) ?(seed = 0) ~label f =
  let rec go attempt =
    match f () with
    | v -> v
    | exception e when attempt + 1 < policy.attempts && policy.retry_on e ->
      Atomic.incr retries_ctr;
      policy.sleep (delay_s policy ~seed ~label attempt);
      go (attempt + 1)
    | exception e ->
      if policy.retry_on e then Atomic.incr giveups_ctr;
      raise e
  in
  go 0

let with_retry_opt ?policy ?seed ~label f =
  let retry_on = (match policy with Some p -> p | None -> default).retry_on in
  match with_retry ?policy ?seed ~label f with
  | v -> Some v
  | exception e when retry_on e -> None
