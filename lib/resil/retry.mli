(** Seeded retry-with-backoff for transient (I/O-weather) failures.

    Delays are exponential with deterministic jitter: the k-th delay for
    a given (seed, label) pair is a pure function, so a retried campaign
    replays bit-identically.  The sleep is injectable; tests pass a
    recording no-op and never depend on the wall clock. *)

type policy = {
  attempts : int;  (** total attempts including the first; [1] = no retry *)
  base_delay_s : float;  (** first backoff delay *)
  multiplier : float;  (** delay growth per attempt *)
  jitter : float;  (** fraction of each delay drawn uniformly in [1-j, 1] *)
  sleep : float -> unit;  (** injectable; [Unix.sleepf] in production *)
  retry_on : exn -> bool;  (** which exceptions are transient *)
}

val transient : exn -> bool
(** [Sys_error] and [Unix.Unix_error] — the exceptions disk and network
    weather raises, as opposed to logic bugs. *)

val default : policy
(** 3 attempts, 1 ms base delay x4 per attempt, 50 % jitter,
    [Unix.sleepf], retrying {!transient} exceptions. *)

val no_retry : policy

val with_retry : ?policy:policy -> ?seed:int -> label:string -> (unit -> 'a) -> 'a
(** Run [f], re-attempting transient failures up to [policy.attempts]
    total tries with seeded backoff between them.  Non-retryable
    exceptions propagate immediately; the final transient failure is
    re-raised after counting a give-up. *)

val with_retry_opt :
  ?policy:policy -> ?seed:int -> label:string -> (unit -> 'a) -> 'a option
(** {!with_retry} that degrades an exhausted transient failure to
    [None] instead of re-raising (non-retryable exceptions still
    propagate) — the shape store I/O wants: a persistently failing read
    is a miss, not a crash. *)

val delay_s : policy -> seed:int -> label:string -> int -> float
(** The deterministic k-th backoff delay (exposed for tests). *)

val retries : unit -> int
(** Re-attempts made since the last {!reset_counters} (global). *)

val giveups : unit -> int
(** Transient failures that exhausted their attempts (global). *)

val reset_counters : unit -> unit
