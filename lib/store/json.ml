(* Minimal JSON: just enough for the [tensorlib serve] request/response
   protocol (one object per line) and for the gate scripts that parse the
   sweep reports back.  No external dependency; numbers are floats, as in
   JSON itself.  The parser is strict about structure but deliberately
   forgiving about whitespace; any syntax error is a [Error _], never an
   exception. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Bad of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let skip_ws c =
  let n = String.length c.src in
  while
    c.pos < n
    && (match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | Some x -> bad "expected %C at offset %d, found %C" ch c.pos x
  | None -> bad "expected %C at offset %d, found end of input" ch c.pos

let literal c word value =
  let n = String.length word in
  if
    c.pos + n <= String.length c.src
    && String.sub c.src c.pos n = word
  then begin
    c.pos <- c.pos + n;
    value
  end
  else bad "bad literal at offset %d" c.pos

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> bad "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' ->
      c.pos <- c.pos + 1;
      (match peek c with
       | None -> bad "unterminated escape"
       | Some ch ->
         c.pos <- c.pos + 1;
         (match ch with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
            if c.pos + 4 > String.length c.src then bad "bad \\u escape";
            let hex = String.sub c.src c.pos 4 in
            c.pos <- c.pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> bad "bad \\u escape %S" hex
            in
            (* encode the BMP code point as UTF-8 (surrogates untreated:
               the protocol carries ASCII identifiers) *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf
                (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
          | _ -> bad "bad escape \\%C" ch));
      go ()
    | Some ch ->
      c.pos <- c.pos + 1;
      Buffer.add_char buf ch;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let n = String.length c.src in
  let is_num ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while c.pos < n && is_num c.src.[c.pos] do
    c.pos <- c.pos + 1
  done;
  let s = String.sub c.src start (c.pos - start) in
  match float_of_string_opt s with
  | Some f -> Num f
  | None -> bad "bad number %S at offset %d" s start

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> bad "empty input"
  | Some '"' -> Str (parse_string c)
  | Some '{' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some '}' then begin
      c.pos <- c.pos + 1;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws c;
        let key = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          members ((key, v) :: acc)
        | Some '}' ->
          c.pos <- c.pos + 1;
          List.rev ((key, v) :: acc)
        | _ -> bad "expected ',' or '}' at offset %d" c.pos
      in
      Obj (members [])
    end
  | Some '[' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some ']' then begin
      c.pos <- c.pos + 1;
      List []
    end
    else begin
      let rec elements acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          elements (v :: acc)
        | Some ']' ->
          c.pos <- c.pos + 1;
          List.rev (v :: acc)
        | _ -> bad "expected ',' or ']' at offset %d" c.pos
      in
      List (elements [])
    end
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let parse s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos <> String.length s then
      Error (Printf.sprintf "trailing garbage at offset %d" c.pos)
    else Ok v
  | exception Bad m -> Error m

(* ------------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let number f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else
    let s = Printf.sprintf "%.17g" f in
    if Float.is_finite f then s else "null"

let rec render buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Num f -> Buffer.add_string buf (number f)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string buf ", ";
        render buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\": ";
        render buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  render buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Accessors. *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let string_opt = function Str s -> Some s | _ -> None

let number_opt = function Num f -> Some f | _ -> None

let int_opt = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let mem_string j key = Option.bind (member key j) string_opt
let mem_number j key = Option.bind (member key j) number_opt
let mem_int j key = Option.bind (member key j) int_opt
