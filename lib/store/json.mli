(** Minimal JSON values: the [tensorlib serve] request/response protocol
    (one object per line) and the sweep-report parsing done by the gate
    scripts.  The parser never raises — malformed input is [Error _]. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one complete JSON document (trailing garbage is an error). *)

val to_string : t -> string
(** Render on one line (no newlines are ever emitted), suitable for a
    line-oriented protocol.  Non-finite numbers render as [null]. *)

val member : string -> t -> t option
(** Object field lookup; [None] for non-objects and missing keys. *)

val string_opt : t -> string option
val number_opt : t -> float option
val int_opt : t -> int option

val mem_string : t -> string -> string option
val mem_number : t -> string -> float option
val mem_int : t -> string -> int option
