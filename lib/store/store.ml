(* Persistent, content-addressed design store.

   Entries are keyed by an arbitrary string (in practice: a config
   fingerprint joined with a D4-canonical statement signature).  The key
   is hashed to an MD5 hex digest, and the entry lives in a single file

     <root>/entries/<digest>

   with the layout

     tlstore/1 <payload_md5> <payload_len> <key_len>\n
     <key>\n
     <payload>\n

   The header carries enough redundancy that a truncated, corrupted or
   half-written file is detected on load and treated as a miss — the
   store never crashes on bad bytes and never returns a payload that
   doesn't verify.  Writes go through a tempfile in <root>/tmp followed
   by [Sys.rename], which is atomic on POSIX, so concurrent writers of
   the same key can only ever race complete files into place.

   An index file <root>/index.tsv (one digest per line) gives O(1)
   warm-open: it is loaded into a hash table at [open_store] and
   rewritten atomically whenever it grows.  A missing or stale index is
   never fatal — [find] falls back to probing the entry file directly
   (which also picks up entries written by other processes), and the
   index is rebuilt by scanning entries/ when absent.

   A store registers its stats/clear hooks into [Tl_par.Cache]'s
   registry, so `bench` and the observability surface report disk hits
   and misses alongside the in-memory memo tables. *)

type t = {
  root : string option; (* None = in-memory only *)
  mem : (string, string) Hashtbl.t; (* key -> payload (in-memory mode) *)
  index : (string, unit) Hashtbl.t; (* digest -> present (disk mode) *)
  lock : Mutex.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
  max_entries : int option;
  tmp_ctr : int Atomic.t;
  retry : Tl_resil.Retry.policy;
  degraded_reads : int Atomic.t; (* reads that exhausted their retries *)
  dropped_writes : int Atomic.t; (* puts that exhausted their retries *)
}

let magic = "tlstore/1"

let digest_hex s = Digest.to_hex (Digest.string s)

let entries_dir root = Filename.concat root "entries"
let tmp_dir root = Filename.concat root "tmp"
let index_file root = Filename.concat root "index.tsv"
let entry_path root key = Filename.concat (entries_dir root) (digest_hex key)

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let n = in_channel_length ic in
        Some (really_input_string ic n))
  with Sys_error _ | End_of_file -> None

(* Atomic write: tempfile in <root>/tmp, then rename into place.  The
   temp name carries pid + a per-store counter so concurrent writers
   never collide on the temp path either.  The tempfile is fsynced
   before the rename so a crash at any point can only ever leave the old
   state (or nothing) visible — never an entry whose bytes were still in
   the page cache; renamed-but-torn entries are then impossible, not
   merely detectable.  The "store.write" chaos probe sits where the
   write syscall would tear: the bytes it returns are the bytes that
   reach the disk. *)
let write_atomic st root ~dest content =
  let content = Tl_resil.Chaos.mangle ~site:"store.write" content in
  let tmp =
    Filename.concat (tmp_dir root)
      (Printf.sprintf "%s.%d.%d"
         (Filename.basename dest)
         (Unix.getpid ())
         (Atomic.fetch_and_add st.tmp_ctr 1))
  in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc content;
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc));
  Sys.rename tmp dest

let encode_entry ~key ~payload =
  Printf.sprintf "%s %s %d %d\n%s\n%s\n" magic
    (digest_hex payload)
    (String.length payload)
    (String.length key)
    key payload

(* Decode and verify one entry file.  Any structural or digest mismatch
   returns [None]: the caller treats it as a miss. *)
let decode_entry ~key content =
  match String.index_opt content '\n' with
  | None -> None
  | Some nl -> (
    let header = String.sub content 0 nl in
    match String.split_on_char ' ' header with
    | [ m; payload_md5; payload_len; key_len ] when m = magic -> (
      match (int_of_string_opt payload_len, int_of_string_opt key_len) with
      | Some plen, Some klen
        when plen >= 0 && klen >= 0
             && String.length content = nl + 1 + klen + 1 + plen + 1 ->
        let stored_key = String.sub content (nl + 1) klen in
        let payload = String.sub content (nl + 1 + klen + 1) plen in
        if stored_key = key && digest_hex payload = payload_md5 then
          Some payload
        else None
      | _ -> None)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Index maintenance (disk mode only). *)

let load_index st root =
  match read_file (index_file root) with
  | Some content ->
    String.split_on_char '\n' content
    |> List.iter (fun line ->
           let line = String.trim line in
           if String.length line = 32 then Hashtbl.replace st.index line ())
  | None -> (
    (* no index: rebuild by scanning entries/ *)
    match Sys.readdir (entries_dir root) with
    | names ->
      Array.iter
        (fun name ->
          if String.length name = 32 then Hashtbl.replace st.index name ())
        names
    | exception Sys_error _ -> ())

let save_index st root =
  let buf = Buffer.create (Hashtbl.length st.index * 33) in
  Hashtbl.iter
    (fun digest () ->
      Buffer.add_string buf digest;
      Buffer.add_char buf '\n')
    st.index;
  write_atomic st root ~dest:(index_file root) (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* Eviction: drop oldest-mtime entries until back under the cap. *)

let evict_locked st root cap =
  let entries =
    Hashtbl.fold
      (fun digest () acc ->
        let path = Filename.concat (entries_dir root) digest in
        match Unix.stat path with
        | { Unix.st_mtime; _ } -> (st_mtime, digest) :: acc
        | exception Unix.Unix_error _ ->
          (* file vanished: just forget it *)
          Hashtbl.remove st.index digest;
          acc)
      st.index []
  in
  let n = List.length entries in
  if n > cap then begin
    let by_age = List.sort compare entries in
    let doomed = ref (n - cap) in
    List.iter
      (fun (_, digest) ->
        if !doomed > 0 then begin
          decr doomed;
          (try Sys.remove (Filename.concat (entries_dir root) digest)
           with Sys_error _ -> ());
          Hashtbl.remove st.index digest;
          Atomic.incr st.evictions
        end)
      by_age;
    save_index st root
  end

(* ------------------------------------------------------------------ *)

let open_store ?max_entries ?(retry = Tl_resil.Retry.default) ?root () =
  let st =
    {
      root;
      mem = Hashtbl.create 64;
      index = Hashtbl.create 256;
      lock = Mutex.create ();
      hits = Atomic.make 0;
      misses = Atomic.make 0;
      evictions = Atomic.make 0;
      max_entries;
      tmp_ctr = Atomic.make 0;
      retry;
      degraded_reads = Atomic.make 0;
      dropped_writes = Atomic.make 0;
    }
  in
  (match root with
  | None -> ()
  | Some root ->
    mkdir_p (entries_dir root);
    mkdir_p (tmp_dir root);
    load_index st root);
  let label =
    match root with None -> "store:mem" | Some r -> "store:" ^ r
  in
  Tl_par.Cache.register
    ~stats:(fun () ->
      {
        Tl_par.Cache.name = label;
        hits = Atomic.get st.hits;
        misses = Atomic.get st.misses;
        entries =
          (match st.root with
          | None -> Hashtbl.length st.mem
          | Some _ -> Hashtbl.length st.index);
        evictions = Atomic.get st.evictions;
      })
    ~clear:(fun () ->
      (* reset counters, never disk contents *)
      Atomic.set st.hits 0;
      Atomic.set st.misses 0;
      Atomic.set st.evictions 0);
  st

let root st = st.root

let find st key =
  let result =
    match st.root with
    | None ->
      Mutex.lock st.lock;
      let v = Hashtbl.find_opt st.mem key in
      Mutex.unlock st.lock;
      v
    | Some root -> (
      (* no lock needed for the read itself: entry files only ever
         appear complete (rename) and are immutable once present.
         Transient I/O failures (the "store.read" chaos probe, real disk
         weather) are retried with seeded backoff; a read that exhausts
         its retries degrades to a miss — the caller recomputes. *)
      let attempt () =
        Tl_resil.Chaos.probe ~site:"store.read" ();
        read_file (entry_path root key)
      in
      match
        Tl_resil.Retry.with_retry_opt ~policy:st.retry ~label:"store.find"
          attempt
      with
      | None ->
        Atomic.incr st.degraded_reads;
        None
      | Some None -> None
      | Some (Some content) -> decode_entry ~key content)
  in
  (match result with
  | Some _ -> Atomic.incr st.hits
  | None -> Atomic.incr st.misses);
  result

let put st key payload =
  match st.root with
  | None ->
    Mutex.lock st.lock;
    if not (Hashtbl.mem st.mem key) then Hashtbl.replace st.mem key payload;
    Mutex.unlock st.lock
  | Some root -> (
    let dest = entry_path root key in
    (* retried as one idempotent unit (entry write + index update): a
       failure between the two just rewrites the same complete entry.
       A put that exhausts its retries is dropped — the store is a
       cache, so the only consequence is a future miss. *)
    let attempt () =
      write_atomic st root ~dest (encode_entry ~key ~payload);
      Mutex.lock st.lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock st.lock)
        (fun () ->
          let digest = Filename.basename dest in
          if not (Hashtbl.mem st.index digest) then begin
            Hashtbl.replace st.index digest ();
            save_index st root
          end;
          match st.max_entries with
          | Some cap when Hashtbl.length st.index > cap ->
            evict_locked st root cap
          | _ -> ())
    in
    match
      Tl_resil.Retry.with_retry_opt ~policy:st.retry ~label:"store.put"
        attempt
    with
    | Some () -> ()
    | None -> Atomic.incr st.dropped_writes)

let find_or_add st key f =
  match find st key with
  | Some payload -> payload
  | None ->
    let payload = f () in
    put st key payload;
    payload

let stats st =
  let label =
    match st.root with None -> "store:mem" | Some r -> "store:" ^ r
  in
  {
    Tl_par.Cache.name = label;
    hits = Atomic.get st.hits;
    misses = Atomic.get st.misses;
    entries =
      (match st.root with
      | None -> Hashtbl.length st.mem
      | Some _ -> Hashtbl.length st.index);
    evictions = Atomic.get st.evictions;
  }

let reset_counters st =
  Atomic.set st.hits 0;
  Atomic.set st.misses 0;
  Atomic.set st.evictions 0;
  Atomic.set st.degraded_reads 0;
  Atomic.set st.dropped_writes 0

let io_failures st =
  (Atomic.get st.degraded_reads, Atomic.get st.dropped_writes)
