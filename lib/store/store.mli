(** Persistent, content-addressed design store.

    Maps string keys (config fingerprint + D4-canonical statement
    signature) to string payloads (serialized evaluated design points).
    With a [root] directory the store is on-disk and shared across
    processes: each entry is one file named by the MD5 of its key, with
    a versioned header carrying payload length and digest so corrupted
    or truncated entries are detected at load and degrade to a miss —
    never a crash, never a bad payload.  Writes are tempfile + rename,
    so concurrent writers (same key or not) can only race {e complete}
    files into place.  Without a [root] the store is a plain in-memory
    table with the same interface.

    Every store registers its hit/miss/eviction counters into
    {!Tl_par.Cache}'s registry so benchmark and observability code
    report it alongside the in-memory memo tables ([clear_all] resets
    the counters, not the disk contents). *)

type t

val open_store :
  ?max_entries:int -> ?retry:Tl_resil.Retry.policy -> ?root:string -> unit -> t
(** Open (creating directories as needed) a store rooted at [root], or
    an in-memory store when [root] is omitted.  [max_entries] caps the
    on-disk entry count: when exceeded after a {!put}, oldest-mtime
    entries are evicted (and counted) until back at the cap.

    Disk I/O is wrapped in [retry] (default {!Tl_resil.Retry.default}:
    3 attempts, seeded exponential backoff on [Sys_error]-class
    failures).  A read that exhausts its retries degrades to a miss and
    a write that exhausts them is dropped (future miss) — the store
    never propagates transient I/O failures to its caller.  Entry
    tempfiles are fsynced before the atomic rename, so a crash cannot
    surface a renamed-but-torn entry. *)

val root : t -> string option

val find : t -> string -> string option
(** Look up a key.  On disk the entry file is probed directly, so
    entries written by other processes since {!open_store} are found.
    A missing, truncated, corrupted or key-mismatched entry is a miss. *)

val put : t -> string -> string -> unit
(** Insert a payload.  First insertion wins semantics: concurrent
    writers of one key each write a complete file; whichever rename
    lands last is the visible one, and since payloads for a given key
    are deterministic this is indistinguishable from first-wins. *)

val find_or_add : t -> string -> (unit -> string) -> string
(** [find] then, on a miss, compute + [put] + return. *)

val stats : t -> Tl_par.Cache.stats
val reset_counters : t -> unit

val io_failures : t -> int * int
(** [(degraded_reads, dropped_writes)]: transient I/O failures that
    exhausted their retries and were absorbed (miss / dropped put)
    rather than raised.  Reset by {!reset_counters}. *)

val digest_hex : string -> string
(** MD5 hex digest — the entry-file naming function, exposed so tests
    and gates can locate (and deliberately corrupt) specific entries. *)
