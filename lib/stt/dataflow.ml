type vector = { dp : int array; dt : int }

type shape2d =
  | Broadcast
  | Multicast_stationary of { multicast : int array }
  | Systolic_multicast of { multicast : int array; systolic : vector }

type t =
  | Unicast
  | Stationary of { dt : int }
  | Systolic of vector
  | Multicast of { dp : int array }
  | Reuse2d of shape2d
  | Reuse_full

let letter = function
  | Unicast -> 'U'
  | Stationary _ -> 'T'
  | Systolic _ -> 'S'
  | Multicast _ -> 'M'
  | Reuse2d _ | Reuse_full -> 'B'

let subspace_dim = function
  | Unicast -> 0
  | Stationary _ | Systolic _ | Multicast _ -> 1
  | Reuse2d _ -> 2
  | Reuse_full -> 3

let equal (a : t) (b : t) = a = b

let pp_ints ppf a =
  Format.fprintf ppf "(%s)"
    (String.concat "," (Array.to_list (Array.map string_of_int a)))

let pp_vector ppf v = Format.fprintf ppf "dp=%a dt=%d" pp_ints v.dp v.dt

let pp ppf = function
  | Unicast -> Format.fprintf ppf "unicast"
  | Stationary { dt } -> Format.fprintf ppf "stationary(dt=%d)" dt
  | Systolic v -> Format.fprintf ppf "systolic(%a)" pp_vector v
  | Multicast { dp } -> Format.fprintf ppf "multicast(dp=%a)" pp_ints dp
  | Reuse2d Broadcast -> Format.fprintf ppf "2d-broadcast"
  | Reuse2d (Multicast_stationary { multicast }) ->
    Format.fprintf ppf "2d-multicast+stationary(m=%a)" pp_ints multicast
  | Reuse2d (Systolic_multicast { multicast; systolic }) ->
    Format.fprintf ppf "2d-systolic+multicast(m=%a, s=%a)" pp_ints multicast
      pp_vector systolic
  | Reuse_full -> Format.fprintf ppf "full-reuse"

let to_string d = Format.asprintf "%a" pp d
