type vector = { dp : int array; dt : int }

type shape2d =
  | Broadcast
  | Multicast_stationary of { multicast : int array }
  | Systolic_multicast of { multicast : int array; systolic : vector }

type t =
  | Unicast
  | Stationary of { dt : int }
  | Systolic of vector
  | Multicast of { dp : int array }
  | Reuse2d of shape2d
  | Reuse_full

let letter = function
  | Unicast -> 'U'
  | Stationary _ -> 'T'
  | Systolic _ -> 'S'
  | Multicast _ -> 'M'
  | Reuse2d _ | Reuse_full -> 'B'

let subspace_dim = function
  | Unicast -> 0
  | Stationary _ | Systolic _ | Multicast _ -> 1
  | Reuse2d _ -> 2
  | Reuse_full -> 3

let equal (a : t) (b : t) = a = b

(* Rendering goes through [Buffer] rather than [Format]: dataflow strings
   are the unit of work of signature canonicalisation (8 renders per
   enumerated design), and [Format.asprintf] is an order of magnitude
   slower than direct buffer appends. *)

let render_ints buf a =
  Buffer.add_char buf '(';
  Array.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int v))
    a;
  Buffer.add_char buf ')'

let render_vector buf v =
  Buffer.add_string buf "dp=";
  render_ints buf v.dp;
  Buffer.add_string buf " dt=";
  Buffer.add_string buf (string_of_int v.dt)

let render buf = function
  | Unicast -> Buffer.add_string buf "unicast"
  | Stationary { dt } ->
    Buffer.add_string buf "stationary(dt=";
    Buffer.add_string buf (string_of_int dt);
    Buffer.add_char buf ')'
  | Systolic v ->
    Buffer.add_string buf "systolic(";
    render_vector buf v;
    Buffer.add_char buf ')'
  | Multicast { dp } ->
    Buffer.add_string buf "multicast(dp=";
    render_ints buf dp;
    Buffer.add_char buf ')'
  | Reuse2d Broadcast -> Buffer.add_string buf "2d-broadcast"
  | Reuse2d (Multicast_stationary { multicast }) ->
    Buffer.add_string buf "2d-multicast+stationary(m=";
    render_ints buf multicast;
    Buffer.add_char buf ')'
  | Reuse2d (Systolic_multicast { multicast; systolic }) ->
    Buffer.add_string buf "2d-systolic+multicast(m=";
    render_ints buf multicast;
    Buffer.add_string buf ", s=";
    render_vector buf systolic;
    Buffer.add_char buf ')'
  | Reuse_full -> Buffer.add_string buf "full-reuse"

let to_string d =
  let buf = Buffer.create 48 in
  render buf d;
  Buffer.contents buf

let pp_vector ppf v =
  let buf = Buffer.create 24 in
  render_vector buf v;
  Format.pp_print_string ppf (Buffer.contents buf)

let pp ppf d = Format.pp_print_string ppf (to_string d)
