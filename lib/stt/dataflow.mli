(** Per-tensor dataflow taxonomy (Table I).

    The reuse subspace of a tensor under a space-time transformation has
    dimension 0, 1 or 2 (or 3 when the tensor ignores every selected loop).
    Directions are given in space-time coordinates as [(dp, dt)] with [dp]
    the PE-array displacement (length 2 for a 2-D array) and [dt] the time
    displacement, normalised to a primitive integer vector with [dt >= 0]
    (and, when [dt = 0], first nonzero [dp] component positive). *)

type vector = { dp : int array; dt : int }
(** A primitive reuse direction in space-time. *)

type shape2d =
  | Broadcast
      (** Plane perpendicular to the t-axis: the element reaches every PE of
          the plane in the same cycle. *)
  | Multicast_stationary of { multicast : int array }
      (** t-axis lies in the plane: broadcast once along [multicast], then
          each copy stays inside its PE. *)
  | Systolic_multicast of { multicast : int array; systolic : vector }
      (** Plane intersects the t-axis: broadcast along [multicast], then the
          copies traverse PEs systolically along [systolic]. *)

type t =
  | Unicast        (** 0-D reuse: every use fetched independently. *)
  | Stationary of { dt : int }
      (** 1-D, [dp = 0]: element pinned in one PE across [dt]-spaced uses. *)
  | Systolic of vector
      (** 1-D, [dp <> 0, dt <> 0]: neighbour-to-neighbour pipelining. *)
  | Multicast of { dp : int array }
      (** 1-D, [dt = 0]: same-cycle fan-out along [dp]; for an *output*
          tensor this is realised as a reduction tree. *)
  | Reuse2d of shape2d  (** 2-D reuse plane. *)
  | Reuse_full
      (** The tensor ignores all selected loops (3-D reuse): broadcast once,
          stationary everywhere.  Rare; kept for totality. *)

val letter : t -> char
(** The paper's naming letters: S (systolic), T (stationary), M (multicast /
    reduction tree), U (unicast), B (2-D or full reuse). *)

val subspace_dim : t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val pp_vector : Format.formatter -> vector -> unit
val to_string : t -> string

val render : Buffer.t -> t -> unit
(** Append exactly [to_string d] to the buffer without the intermediate
    string.  The fast path for signature canonicalisation. *)
