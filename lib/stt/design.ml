type role = Input | Output

type tensor_info = {
  access : Tl_ir.Access.t;
  role : role;
  dataflow : Dataflow.t;
}

type t = {
  transform : Transform.t;
  tensors : tensor_info list;
  name : string;
}

let analyze transform =
  let stmt = transform.Transform.stmt in
  let info role access =
    { access; role; dataflow = Reuse.classify transform access }
  in
  let tensors =
    List.map (info Input) stmt.Tl_ir.Stmt.inputs
    @ [ info Output stmt.Tl_ir.Stmt.output ]
  in
  let letters =
    String.init (List.length tensors) (fun i ->
        Dataflow.letter (List.nth tensors i).dataflow)
  in
  let name = Transform.selection_label transform ^ "-" ^ letters in
  { transform; tensors; name }

(* Hoists the per-(selection, tensor) null-space work out of a matrix
   sweep: the returned closure analyses any transform over the same
   statement and selection with pure integer classification, producing a
   design structurally identical to {!analyze}'s. *)
let analyzer stmt ~selected =
  let prep role access = (access, role, Reuse.prepare ~selected access) in
  let preps =
    List.map (prep Input) stmt.Tl_ir.Stmt.inputs
    @ [ prep Output stmt.Tl_ir.Stmt.output ]
  in
  fun transform ->
    let tensors =
      List.map
        (fun (access, role, p) ->
          { access; role; dataflow = Reuse.classify_prepared p transform })
        preps
    in
    let letters =
      String.init (List.length tensors) (fun i ->
          Dataflow.letter (List.nth tensors i).dataflow)
    in
    let name = Transform.selection_label transform ^ "-" ^ letters in
    { transform; tensors; name }

let letters d =
  String.init (List.length d.tensors) (fun i ->
      Dataflow.letter (List.nth d.tensors i).dataflow)

let output_info d =
  match List.rev d.tensors with
  | out :: _ -> out
  | [] -> assert false (* Stmt.v guarantees at least two tensors *)

let input_infos d =
  List.filter (fun ti -> ti.role = Input) d.tensors

let find_tensor d name =
  List.find (fun ti -> String.equal ti.access.Tl_ir.Access.tensor name)
    d.tensors

let netlist_supported d =
  List.for_all
    (fun ti ->
      match (ti.role, ti.dataflow) with
      | _, Dataflow.Reuse_full -> false
      | Output, Dataflow.Reuse2d (Dataflow.Systolic_multicast _) -> false
      | Output, Dataflow.Reuse2d Dataflow.Broadcast -> false
      | _, _ -> true)
    d.tensors

let pp ppf d = Format.fprintf ppf "%s" d.name

let pp_report ppf d =
  Format.fprintf ppf "@[<v>design %s on %s@,%a@," d.name
    d.transform.Transform.stmt.Tl_ir.Stmt.name Transform.pp d.transform;
  List.iter
    (fun ti ->
      Format.fprintf ppf "  %s %-3s: %a@,"
        (match ti.role with Input -> "in " | Output -> "out")
        ti.access.Tl_ir.Access.tensor Dataflow.pp ti.dataflow)
    d.tensors;
  Format.fprintf ppf "@]"
