(** Whole-design dataflow analysis and the paper's naming scheme.

    A design = a statement + an STT.  Analysis classifies every tensor
    (inputs and output) and derives the name used throughout §VI:
    [<selected iterators>-<letter per tensor>] with inputs first and the
    output last, e.g. [KCX-SST] (output-stationary Conv2D systolic array).  *)

type role = Input | Output

type tensor_info = {
  access : Tl_ir.Access.t;
  role : role;
  dataflow : Dataflow.t;
}

type t = {
  transform : Transform.t;
  tensors : tensor_info list;  (** inputs in formula order, output last *)
  name : string;
}

val analyze : Transform.t -> t

val analyzer : Tl_ir.Stmt.t -> selected:int array -> Transform.t -> t
(** [analyzer stmt ~selected] hoists the per-(selection, tensor) null-space
    analysis out of a matrix sweep; applying the result to a transform over
    the same statement and selection yields exactly [analyze transform],
    computed with integer-only classification ({!Reuse.classify_prepared}). *)

val letters : t -> string
(** Just the dataflow letters, e.g. ["SST"]. *)

val output_info : t -> tensor_info
val input_infos : t -> tensor_info list

val find_tensor : t -> string -> tensor_info
(** @raise Not_found *)

val netlist_supported : t -> bool
(** Whether the structural RTL backend has templates for every tensor's
    dataflow in this design (the performance and cost models support all
    designs).  Unsupported today: 2-D systolic+multicast *outputs* and
    full-reuse tensors. *)

val pp : Format.formatter -> t -> unit
val pp_report : Format.formatter -> t -> unit
(** Multi-line report: transformation matrix, per-tensor reuse analysis. *)
