open Tl_linalg

let reuse_basis t access =
  let a_sel = Transform.restricted_access t access in
  let null = Mat.null_space a_sel in
  List.map (fun v -> Mat.mul_vec t.Transform.matrix v) null

let projector t access =
  let a_sel = Transform.restricted_access t access in
  let at = Mat.mul a_sel (Transform.inverse t) in
  let n = Mat.cols at in
  Mat.sub (Mat.identity n) (Mat.mul (Mat.pseudo_inverse at) at)

(* Normalise a rational space-time vector to a primitive integer vector with
   dt >= 0 (and first nonzero dp positive when dt = 0). *)
let normalize v =
  let ints = Vec.to_integer v in
  let n = Array.length ints in
  let dt = ints.(n - 1) in
  let ints = if dt < 0 then Array.map (fun x -> -x) ints else ints in
  (Array.sub ints 0 (n - 1), ints.(n - 1))

(* Reduce a systolic direction by integer multiples of the multicast
   direction to obtain a canonical small representative. *)
let reduce_against ~multicast (dp, dt) =
  let l1 a = Array.fold_left (fun acc x -> acc + abs x) 0 a in
  let sub k = Array.mapi (fun i x -> x - (k * multicast.(i))) dp in
  let rec improve best =
    let better =
      List.find_opt
        (fun k -> l1 (sub k) < l1 (sub best))
        [ best - 1; best + 1 ]
    in
    match better with Some k -> improve k | None -> best
  in
  let k = improve 0 in
  (sub k, dt)

let classify t access =
  let basis = reuse_basis t access in
  let sd = Transform.space_dims t in
  (* 1-D arrays are handled uniformly by padding directions to 2-D: the
     second (unused) array dimension never moves *)
  let pad dp = if sd = 1 then [| dp.(0); 0 |] else dp in
  match basis with
  | [] -> Dataflow.Unicast
  | [ r ] ->
    let dp, dt = normalize r in
    let dp = pad dp in
    if Array.for_all (fun x -> x = 0) dp then Dataflow.Stationary { dt }
    else if dt = 0 then Dataflow.Multicast { dp }
    else Dataflow.Systolic { dp; dt }
  | [ r1; r2 ] when sd = 2 ->
    let time_of v = v.(Vec.dim v - 1) in
    let t1 = time_of r1 and t2 = time_of r2 in
    if Rat.is_zero t1 && Rat.is_zero t2 then Dataflow.Reuse2d Dataflow.Broadcast
    else begin
      (* plane /\ {dt = 0} is spanned by w = t2*r1 - t1*r2 (nonzero since
         r1, r2 are independent and not both have zero time). *)
      let w = Vec.sub (Vec.scale t2 r1) (Vec.scale t1 r2) in
      let multicast, _ = normalize w in
      (* e_t in plane <=> [r1 r2] c = e_t solvable *)
      let n = Vec.dim r1 in
      let plane =
        Mat.make ~rows:n ~cols:2 (fun i j -> if j = 0 then r1.(i) else r2.(i))
      in
      let e_t = Vec.basis n (n - 1) in
      match Mat.solve plane e_t with
      | Some _ ->
        Dataflow.Reuse2d (Dataflow.Multicast_stationary { multicast })
      | None ->
        let base = if Rat.is_zero t1 then r2 else r1 in
        let dp, dt = reduce_against ~multicast (normalize base) in
        Dataflow.Reuse2d
          (Dataflow.Systolic_multicast
             { multicast; systolic = { Dataflow.dp; dt } })
    end
  | _ -> Dataflow.Reuse_full

(* ------------------------------------------------------------------ *)
(* Prepared fast path.

   [null(A_sel)] depends only on the selection and the access — not on the
   STT matrix — so enumeration sweeps can compute it once per
   (selection, tensor) and classify each candidate matrix with pure
   integer arithmetic.  The basis vectors are the exact [Mat.null_space]
   output pre-scaled to primitive integers ([Vec.to_integer]); per-vector
   scaling and sign are invisible to [classify]'s normalisations, so
   {!classify_prepared} returns structurally identical dataflows to
   {!classify} (the property suite checks this differentially). *)

type prepared = { null_int : int array array }

let prepare ~selected (access : Tl_ir.Access.t) =
  let am = access.Tl_ir.Access.matrix in
  let a_sel =
    Mat.make ~rows:(Array.length am) ~cols:(Array.length selected) (fun i j ->
        Rat.of_int am.(i).(selected.(j)))
  in
  { null_int =
      Array.of_list (List.map Vec.to_integer (Mat.null_space a_sel)) }

let rec gcd_int a b = if b = 0 then a else gcd_int b (a mod b)

(* Same contract as [normalize] on the rational ray spanned by [v]:
   primitive, [dt > 0] when nonzero, else first nonzero dp positive. *)
let normalize_int v =
  let n = Array.length v in
  let g = Array.fold_left (fun acc x -> gcd_int (abs x) acc) 0 v in
  let v = if g > 1 then Array.map (fun x -> x / g) v else v in
  let dt = v.(n - 1) in
  let flip =
    if dt <> 0 then dt < 0
    else begin
      let rec first i = if v.(i) <> 0 then v.(i) < 0 else first (i + 1) in
      first 0
    end
  in
  let v = if flip then Array.map (fun x -> -x) v else v in
  (Array.sub v 0 (n - 1), v.(n - 1))

let classify_prepared prep (t : Transform.t) =
  let m = t.Transform.imatrix in
  let n = Array.length m in
  let mulv v =
    Array.init n (fun i ->
        let row = m.(i) in
        let acc = ref 0 in
        Array.iteri (fun j x -> acc := !acc + (row.(j) * x)) v;
        !acc)
  in
  let sd = n - 1 in
  let pad dp = if sd = 1 then [| dp.(0); 0 |] else dp in
  match prep.null_int with
  | [||] -> Dataflow.Unicast
  | [| v |] ->
    let dp, dt = normalize_int (mulv v) in
    let dp = pad dp in
    if Array.for_all (fun x -> x = 0) dp then Dataflow.Stationary { dt }
    else if dt = 0 then Dataflow.Multicast { dp }
    else Dataflow.Systolic { dp; dt }
  | [| v1; v2 |] when sd = 2 ->
    let r1 = mulv v1 and r2 = mulv v2 in
    let t1 = r1.(n - 1) and t2 = r2.(n - 1) in
    if t1 = 0 && t2 = 0 then Dataflow.Reuse2d Dataflow.Broadcast
    else begin
      let w = Array.init n (fun i -> (t2 * r1.(i)) - (t1 * r2.(i))) in
      let multicast, _ = normalize_int w in
      (* e_t ∈ span(r1, r2) iff the spatial projections of the two
         (independent) basis vectors are linearly dependent — the exact
         condition [Mat.solve plane e_t] tests on the rational path. *)
      if (r1.(0) * r2.(1)) - (r1.(1) * r2.(0)) = 0 then
        Dataflow.Reuse2d (Dataflow.Multicast_stationary { multicast })
      else begin
        let base = if t1 = 0 then r2 else r1 in
        let dp, dt = reduce_against ~multicast (normalize_int base) in
        Dataflow.Reuse2d
          (Dataflow.Systolic_multicast
             { multicast; systolic = { Dataflow.dp; dt } })
      end
    end
  | _ -> Dataflow.Reuse_full

let reuses_same_element t access x1 x2 =
  let a_sel = Transform.restricted_access t access in
  let diff =
    Array.init (Array.length x1) (fun i -> Rat.of_int (x1.(i) - x2.(i)))
  in
  Vec.is_zero (Mat.mul_vec a_sel diff)
