(** Reuse-subspace analysis (§IV, Eq. 2–3, Table I).

    Two selected iteration points access the same element of tensor [A] iff
    their difference lies in [null(A_sel)]; in space-time coordinates the
    reuse subspace is therefore [T · null(A_sel)].  Its dimension and
    orientation w.r.t. the time axis determine the tensor's dataflow. *)

val reuse_basis : Transform.t -> Tl_ir.Access.t -> Tl_linalg.Vec.t list
(** Basis of the reuse subspace in space-time coordinates (possibly empty). *)

val projector : Transform.t -> Tl_ir.Access.t -> Tl_linalg.Mat.t
(** The literal Eq. 3 operator [E − (A·T⁻¹)⁺(A·T⁻¹)]: the orthogonal-style
    projector whose image is the reuse subspace.  Provided for fidelity with
    the paper; {!reuse_basis} computes the same space directly. *)

val classify : Transform.t -> Tl_ir.Access.t -> Dataflow.t
(** Table-I classification of the tensor's movement.  Only 2-D PE arrays
    (three selected iterators) support the 2-D reuse-shape sub-cases.
    Direction vectors are primitive and oriented with [dt >= 0]. *)

val reuses_same_element : Transform.t -> Tl_ir.Access.t ->
  int array -> int array -> bool
(** Brute-force oracle: do two selected iteration points access the same
    tensor element?  Used by property tests to validate {!classify}. *)

type prepared
(** The selection/access-dependent part of classification — the integer
    null-space basis of [A_sel] — hoisted out of the per-matrix loop. *)

val prepare : selected:int array -> Tl_ir.Access.t -> prepared

val classify_prepared : prepared -> Transform.t -> Dataflow.t
(** [classify_prepared (prepare ~selected access) t] equals
    [classify t access] for every [t] with that selection, computed with
    pure integer arithmetic (no rational null space per candidate). *)
