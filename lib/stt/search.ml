(* Enumerate full-rank {-1,0,1} matrices once per dimension. *)
let cache : (int, int list list list) Hashtbl.t = Hashtbl.create 4

(* Search order: light matrices first, then fewest negative entries, then
   lexicographically largest (puts identity-like matrices ahead). *)
let weight m =
  let sum f =
    List.fold_left
      (fun acc row -> List.fold_left (fun a x -> a + f x) acc row)
      0 m
  in
  (sum abs, sum (fun x -> if x < 0 then 1 else 0), List.map (List.map (fun x -> -x)) m)

let full_rank m =
  match m with
  | [ [ a; b ]; [ c; d ] ] -> (a * d) - (b * c) <> 0
  | [ [ a; b; c ]; [ d; e; f ]; [ g; h; i ] ] ->
    (a * ((e * i) - (f * h))) - (b * ((d * i) - (f * g)))
    + (c * ((d * h) - (e * g)))
    <> 0
  | _ ->
    let mat = Tl_linalg.Mat.of_int_rows m in
    not (Tl_linalg.Rat.is_zero (Tl_linalg.Mat.det mat))

let candidate_matrices ~n =
  match Hashtbl.find_opt cache n with
  | Some ms -> ms
  | None ->
    let cells = n * n in
    let all = ref [] in
    (* count in base 3 over the cells; entries are digit - 1 *)
    let digits = Array.make cells 0 in
    let total = int_of_float (3. ** float_of_int cells) in
    for code = 0 to total - 1 do
      let c = ref code in
      for i = 0 to cells - 1 do
        digits.(i) <- (!c mod 3) - 1;
        c := !c / 3
      done;
      let m =
        List.init n (fun i -> List.init n (fun j -> digits.((i * n) + j)))
      in
      if full_rank m then all := m :: !all
    done;
    let ms =
      List.stable_sort (fun a b -> compare (weight a) (weight b)) (List.rev !all)
    in
    Hashtbl.add cache n ms;
    ms

let selections stmt ~n =
  let depth = Tl_ir.Stmt.depth stmt in
  let rec choose start k =
    if k = 0 then [ [] ]
    else
      List.concat_map
        (fun i ->
          List.map (fun rest -> i :: rest) (choose (i + 1) (k - 1)))
        (List.init (depth - start) (fun d -> start + d))
  in
  List.map Array.of_list (choose 0 n)

let selection_of_label stmt label =
  let iters = Array.of_list stmt.Tl_ir.Stmt.iters in
  let find_initial ch =
    let matches = ref [] in
    Array.iteri
      (fun i it ->
        if Char.uppercase_ascii it.Tl_ir.Iter.name.[0] = ch then
          matches := i :: !matches)
      iters;
    match !matches with
    | [ i ] -> i
    | [] -> raise Not_found
    | several -> (
      (* tiled nests contain both "m" and "mo": prefer the exact
         single-letter iterator *)
      let exact =
        List.filter
          (fun i ->
            String.lowercase_ascii iters.(i).Tl_ir.Iter.name
            = String.make 1 (Char.lowercase_ascii ch))
          several
      in
      match exact with
      | [ i ] -> i
      | [] | _ :: _ ->
        invalid_arg "Search.selection_of_label: ambiguous initial")
  in
  Array.init (String.length label) (fun k ->
      find_initial (Char.uppercase_ascii label.[k]))

let split_name name =
  match String.index_opt name '-' with
  | None -> invalid_arg "Search: dataflow name must be <SEL>-<LETTERS>"
  | Some i ->
    (String.sub name 0 i, String.sub name (i + 1) (String.length name - i - 1))

(* The paper sometimes labels a 2-D-reuse tensor with the letter of its
   dominant 1-D component (e.g. Conv2D "XYP-MST" where the weight's reuse is
   2-D systolic+multicast but written S).  Loose matching accepts those. *)
let letter_matches ~loose (df : Dataflow.t) target =
  Dataflow.letter df = target
  || (loose
      &&
      match df with
      | Dataflow.Reuse2d Dataflow.Broadcast -> target = 'M'
      | Dataflow.Reuse2d (Dataflow.Multicast_stationary _) ->
        target = 'M' || target = 'T'
      | Dataflow.Reuse2d (Dataflow.Systolic_multicast _) ->
        target = 'S' || target = 'M'
      | Dataflow.Unicast | Dataflow.Stationary _ | Dataflow.Systolic _
      | Dataflow.Multicast _ | Dataflow.Reuse_full -> false)

let design_matches ~loose d target_letters =
  let dfs =
    List.map (fun ti -> ti.Design.dataflow) d.Design.tensors
  in
  List.length dfs = String.length target_letters
  && List.for_all2
       (fun df ch -> letter_matches ~loose df ch)
       dfs
       (List.init (String.length target_letters) (String.get target_letters))

let matching_designs_uncached stmt name =
  let label, target_letters = split_name name in
  match selection_of_label stmt label with
  | exception Not_found -> []
  | selected ->
    let n = Array.length selected in
    let analyze = Design.analyzer stmt ~selected in
    let collect ~loose =
      List.filter_map
        (fun m ->
          let t = Transform.v stmt ~selected ~matrix:m in
          let d = analyze t in
          if design_matches ~loose d target_letters then Some d else None)
        (candidate_matrices ~n)
    in
    (match collect ~loose:false with
     | [] -> collect ~loose:true
     | strict -> strict)

(* name resolution sweeps every candidate matrix; memoise per (statement,
   name) so repeated lookups — evaluate_name, the figure benches, ASIC
   evaluation — pay the sweep once.  Designs are immutable, sharing is
   safe. *)
let match_cache : Design.t list Tl_par.Cache.t =
  Tl_par.Cache.create ~name:"stt.matching_designs" ()

let matching_designs stmt name =
  let key = Signature.stmt_fingerprint stmt ^ "!" ^ name in
  Tl_par.Cache.find_or_add match_cache key (fun () ->
      matching_designs_uncached stmt name)

let find_design stmt name =
  match matching_designs stmt name with
  | [] -> None
  | d :: _ -> Some d

let find_design_exn stmt name =
  match find_design stmt name with
  | Some d -> d
  | None -> raise Not_found

let all_designs ?selection stmt =
  let sels =
    match selection with Some s -> [ s ] | None -> selections stmt ~n:3
  in
  let table = Hashtbl.create 64 in
  List.iter
    (fun selected ->
      let analyze = Design.analyzer stmt ~selected in
      List.iter
        (fun m ->
          let t = Transform.v stmt ~selected ~matrix:m in
          let d = analyze t in
          if not (Hashtbl.mem table d.Design.name) then
            Hashtbl.add table d.Design.name d)
        (candidate_matrices ~n:(Array.length selected)))
    sels;
  let names = Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [] in
  List.sort (fun (a, _) (b, _) -> String.compare a b) names
