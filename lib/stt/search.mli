(** Searching the STT matrix space.

    The generator's design space is parameterised by (a) which iterators are
    selected and (b) the transformation matrix.  Matrices with entries in
    {-1, 0, 1} cover every dataflow discussed in the paper (including the
    diagonal Eyeriss-style multicast); this module enumerates them, and
    resolves the paper's dataflow names ("KCX-SST") back to a concrete
    transformation. *)

val candidate_matrices : n:int -> int list list list
(** All full-rank [n×n] matrices with entries in {-1,0,1}, ordered by
    ascending absolute-entry weight (so searches prefer simple matrices,
    e.g. near-identity ones).  Cached after the first call per [n]. *)

val selections : Tl_ir.Stmt.t -> n:int -> int array list
(** All [n]-combinations of iterator indices in nest order. *)

val selection_of_label : Tl_ir.Stmt.t -> string -> int array
(** ["KCX"] → indices of iterators k, c, x (matched on upper-cased first
    letter). @raise Not_found on unknown initials,
    @raise Invalid_argument on ambiguity. *)

val design_matches : loose:bool -> Design.t -> string -> bool
(** Do the design's per-tensor dataflows spell the given letters?  With
    [loose], a 2-D-reuse tensor also matches the letter of either of its
    1-D components (the paper's informal naming, e.g. Conv2D "XYP-MST"). *)

val matching_designs : Tl_ir.Stmt.t -> string -> Design.t list
(** Every candidate-matrix design whose analysis matches the dataflow name
    (strict letter matching if any matrix achieves it, loose otherwise),
    simplest matrices first.  Empty when unrealisable. *)

val find_design : Tl_ir.Stmt.t -> string -> Design.t option
(** [find_design stmt "KCX-SST"] searches for the simplest transformation
    whose analysis yields exactly that name.  [None] when the dataflow
    letter combination is not realisable by any candidate matrix. *)

val find_design_exn : Tl_ir.Stmt.t -> string -> Design.t
(** @raise Not_found when unrealisable. *)

val all_designs : ?selection:int array -> Tl_ir.Stmt.t ->
  (string * Design.t) list
(** Every distinct dataflow name reachable over the candidate matrices (for
    the given selection, or all selections), with the simplest realising
    design for each.  Names are returned sorted. *)
