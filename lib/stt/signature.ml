(* Canonical design signatures, statement fingerprints and evaluation-cache
   keys.

   Two designs whose interconnects differ only by a rotation/reflection of
   the square PE array are the same hardware; signatures are canonicalised
   under the dihedral group D4 acting on every direction vector at once.
   Rendering goes through one reused [Buffer] (no [Format]): signature
   construction is the inner loop of {!Tl_dse.Enumerate.design_space}. *)

(* A D4 element as data: [new_r = sr * (swap ? c : r)],
   [new_c = sc * (swap ? r : c)]. *)
type sym = { swap : bool; sr : int; sc : int }

let identity = { swap = false; sr = 1; sc = 1 }

let d4 =
  [ identity;
    { swap = true; sr = 1; sc = 1 };
    { swap = false; sr = -1; sc = 1 };
    { swap = false; sr = 1; sc = -1 };
    { swap = false; sr = -1; sc = -1 };
    { swap = true; sr = -1; sc = 1 };
    { swap = true; sr = 1; sc = -1 };
    { swap = true; sr = -1; sc = -1 } ]

(* The subgroup preserving the row/col axes — the symmetries of a
   rectangular (non-square) array. *)
let axis_syms = List.filter (fun s -> not s.swap) d4

let map_vec s v =
  if s == identity then v
  else if s.swap then [| s.sr * v.(1); s.sc * v.(0) |]
  else [| s.sr * v.(0); s.sc * v.(1) |]

let map_dataflow s (df : Dataflow.t) : Dataflow.t =
  if s == identity then df
  else
    match df with
    | Dataflow.Unicast | Dataflow.Stationary _ | Dataflow.Reuse_full
    | Dataflow.Reuse2d Dataflow.Broadcast -> df
    | Dataflow.Systolic { dp; dt } ->
      Dataflow.Systolic { dp = map_vec s dp; dt }
    | Dataflow.Multicast { dp } -> Dataflow.Multicast { dp = map_vec s dp }
    | Dataflow.Reuse2d (Dataflow.Multicast_stationary { multicast }) ->
      Dataflow.Reuse2d
        (Dataflow.Multicast_stationary { multicast = map_vec s multicast })
    | Dataflow.Reuse2d (Dataflow.Systolic_multicast { multicast; systolic })
      ->
      Dataflow.Reuse2d
        (Dataflow.Systolic_multicast
           { multicast = map_vec s multicast;
             systolic = { systolic with Dataflow.dp = map_vec s systolic.Dataflow.dp } })

let render_tensors buf s (d : Design.t) =
  List.iter
    (fun ti ->
      Buffer.add_char buf '|';
      Buffer.add_string buf ti.Design.access.Tl_ir.Access.tensor;
      Buffer.add_char buf ':';
      Dataflow.render buf (map_dataflow s ti.Design.dataflow))
    d.Design.tensors

let min_render ~syms ~prefix render =
  let buf = Buffer.create 96 in
  let one s =
    Buffer.clear buf;
    Buffer.add_string buf prefix;
    render buf s;
    Buffer.contents buf
  in
  match syms with
  | [] -> invalid_arg "Signature.min_render: empty symmetry group"
  | s0 :: rest ->
    List.fold_left
      (fun best s ->
        let x = one s in
        if String.compare x best < 0 then x else best)
      (one s0) rest

let signature_under syms (d : Design.t) =
  let prefix = Transform.selection_label d.Design.transform in
  min_render ~syms ~prefix (fun buf s -> render_tensors buf s d)

let signature d = signature_under d4 d

(* One buffer-render with the identity element: a cheap non-canonical key
   whose equality implies canonical-signature equality.  Deduplicating on
   it first means the 8-fold canonical render only runs on survivors. *)
let identity_signature (d : Design.t) =
  let buf = Buffer.create 96 in
  Buffer.add_string buf (Transform.selection_label d.Design.transform);
  render_tensors buf identity d;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Fingerprints for cache keys.                                        *)

let add_int_array buf a =
  Array.iter
    (fun v ->
      Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int v))
    a

let add_access buf (a : Tl_ir.Access.t) =
  Buffer.add_string buf a.Tl_ir.Access.tensor;
  Buffer.add_char buf '[';
  Array.iter
    (fun row ->
      add_int_array buf row;
      Buffer.add_char buf ';')
    a.Tl_ir.Access.matrix;
  Buffer.add_char buf ']'

(* Everything the analyses read from a statement: iterator names/extents
   and the exact access matrices, output last (the position [Design.analyze]
   gives it).  Two statements with equal fingerprints are interchangeable
   for classification, scheduling and cost. *)
let stmt_fingerprint (stmt : Tl_ir.Stmt.t) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf stmt.Tl_ir.Stmt.name;
  Buffer.add_char buf '{';
  List.iter
    (fun it ->
      Buffer.add_string buf it.Tl_ir.Iter.name;
      Buffer.add_char buf '=';
      Buffer.add_string buf (string_of_int it.Tl_ir.Iter.extent);
      Buffer.add_char buf ' ')
    stmt.Tl_ir.Stmt.iters;
  List.iter (fun a -> add_access buf a; Buffer.add_char buf ' ')
    stmt.Tl_ir.Stmt.inputs;
  add_access buf stmt.Tl_ir.Stmt.output;
  Buffer.add_char buf '}';
  Buffer.contents buf

(* Render [d]'s STT matrix with the spatial rows transformed by [s]:
   [s] permutes/negates the two space rows and fixes the time row, i.e. it
   renders the matrix of the same design re-expressed in the transformed
   array coordinates. *)
let render_matrix buf s (d : Design.t) =
  let m = d.Design.transform.Transform.matrix in
  let n = Tl_linalg.Mat.rows m in
  let src_row i =
    if n >= 3 && i = 0 then (if s.swap then 1 else 0)
    else if n >= 3 && i = 1 then (if s.swap then 0 else 1)
    else i
  in
  let row_sign i =
    if n >= 3 && i = 0 then s.sr else if n >= 3 && i = 1 then s.sc else 1
  in
  for i = 0 to n - 1 do
    let r = src_row i and sg = row_sign i in
    for j = 0 to Tl_linalg.Mat.cols m - 1 do
      let v = Tl_linalg.Mat.get m r j in
      Buffer.add_char buf ',';
      Buffer.add_string buf
        (Tl_linalg.Rat.to_string (if sg < 0 then Tl_linalg.Rat.neg v else v))
    done;
    Buffer.add_char buf ';'
  done

(* A key that pins everything {!Tl_perf} and {!Tl_cost} read from a design:
   the statement, the selection, and the (matrix, dataflows) pair
   canonicalised under the symmetries that provably leave the evaluation
   invariant — the full D4 group when the array is square, only the
   axis-preserving subgroup when [rows <> cols] (a transpose would swap the
   row/col feasibility checks). *)
(* Stable 32-hex-char content digest of a key string.  MD5 of the exact
   bytes, so it is identical across processes and sessions — the
   persistent design store names its entry files with it. *)
let key_digest s = Digest.to_hex (Digest.string s)

let eval_key ~square (d : Design.t) =
  let t = d.Design.transform in
  let syms =
    if Tl_linalg.Mat.rows t.Transform.matrix <> 3 then [ identity ]
    else if square then d4
    else axis_syms
  in
  let prefix =
    let buf = Buffer.create 160 in
    Buffer.add_string buf (stmt_fingerprint t.Transform.stmt);
    Buffer.add_string buf "#sel";
    add_int_array buf t.Transform.selected;
    Buffer.add_char buf '#';
    Buffer.contents buf
  in
  min_render ~syms ~prefix (fun buf s ->
      render_matrix buf s d;
      render_tensors buf s d)
