(** Canonical design signatures, statement fingerprints and cache keys.

    The fast-path replacement for per-design [Format] rendering: one reused
    [Buffer], D4 canonicalisation as data, and a cheap identity pre-key so
    enumeration only pays the 8-fold canonical render for designs that
    survive first-stage deduplication. *)

type sym = { swap : bool; sr : int; sc : int }
(** A dihedral-group element acting on array coordinates:
    [new_r = sr * (swap ? c : r)], [new_c = sc * (swap ? r : c)]. *)

val identity : sym

val d4 : sym list
(** All eight symmetries of the square array; [identity] first. *)

val axis_syms : sym list
(** The subgroup with [swap = false] — the symmetries of a rectangular
    array (row/col axes preserved). *)

val map_vec : sym -> int array -> int array
(** Transform a length-2 direction vector.  Returns the argument itself
    (physically) under {!identity}. *)

val map_dataflow : sym -> Dataflow.t -> Dataflow.t
(** Transform every direction vector inside a dataflow. *)

val signature : Design.t -> string
(** Canonical textual form of the architecture: lexicographic minimum over
    {!d4} of [selection_label ^ "|" ^ tensor:dataflow ^ ...].  Identical
    strings to the historical [Enumerate.signature]. *)

val signature_under : sym list -> Design.t -> string
(** {!signature} restricted to a given symmetry group. *)

val identity_signature : Design.t -> string
(** One render with {!identity} only.  Equal identity signatures imply
    equal canonical signatures, so this is a sound (and ~8x cheaper)
    first-stage dedup key. *)

val stmt_fingerprint : Tl_ir.Stmt.t -> string
(** Pins everything the analyses read from a statement: name, iterator
    names/extents, and exact access matrices (output last). *)

val key_digest : string -> string
(** Stable 32-hex-char MD5 digest of a key string — identical across
    processes and sessions for identical bytes.  The persistent design
    store addresses its entries with [key_digest (cache key)]. *)

val eval_key : square:bool -> Design.t -> string
(** Memoisation key for performance/cost evaluation: statement fingerprint,
    selection, and the (STT matrix, dataflows) pair canonicalised under the
    symmetries that leave evaluation invariant — full {!d4} when [square],
    {!axis_syms} otherwise, and no symmetry at all for non-2-D arrays. *)
