open Tl_linalg

type t = {
  stmt : Tl_ir.Stmt.t;
  selected : int array;
  matrix : Mat.t;
  imatrix : int array array;
}

(* Closed-form determinant for the 2×2/3×3 matrices every STT uses; avoids
   a rational Gaussian elimination per candidate in the enumeration sweep. *)
let int_det_small rows =
  match rows with
  | [| [| a; b |]; [| c; d |] |] -> Some ((a * d) - (b * c))
  | [| [| a; b; c |]; [| d; e; f |]; [| g; h; i |] |] ->
    Some ((a * ((e * i) - (f * h))) - (b * ((d * i) - (f * g)))
          + (c * ((d * h) - (e * g))))
  | _ -> None

let v stmt ~selected ~matrix =
  let n = Array.length selected in
  let depth = Tl_ir.Stmt.depth stmt in
  if n < 2 then invalid_arg "Transform.v: need at least 2 selected iterators";
  Array.iter
    (fun i ->
      if i < 0 || i >= depth then
        invalid_arg "Transform.v: selected iterator out of range")
    selected;
  let sorted = Array.copy selected in
  Array.sort compare sorted;
  for i = 0 to n - 2 do
    if sorted.(i) = sorted.(i + 1) then
      invalid_arg "Transform.v: duplicate selected iterator"
  done;
  let imatrix = Array.of_list (List.map Array.of_list matrix) in
  if Array.length imatrix <> n
     || Array.exists (fun r -> Array.length r <> n) imatrix
  then invalid_arg "Transform.v: matrix must be n*n for n selected iterators";
  let m = Mat.of_int_rows matrix in
  let singular =
    match int_det_small imatrix with
    | Some d -> d = 0
    | None -> Rat.is_zero (Mat.det m)
  in
  if singular then
    invalid_arg "Transform.v: STT matrix must be full rank (one-to-one)";
  { stmt; selected; matrix = m; imatrix }

let by_names stmt names ~matrix =
  let selected =
    Array.of_list
      (List.map (Tl_ir.Iter.index_of stmt.Tl_ir.Stmt.iters) names)
  in
  v stmt ~selected ~matrix

let space_dims t = Mat.rows t.matrix - 1

let selected_iters t =
  let iters = Array.of_list t.stmt.Tl_ir.Stmt.iters in
  Array.to_list (Array.map (fun i -> iters.(i)) t.selected)

let selected_extents t =
  Array.of_list (List.map (fun i -> i.Tl_ir.Iter.extent) (selected_iters t))

let unselected_iters t =
  let chosen = Array.to_list t.selected in
  List.filteri
    (fun i _ -> not (List.mem i chosen))
    t.stmt.Tl_ir.Stmt.iters

let selection_label t =
  String.concat ""
    (List.map
       (fun i -> String.uppercase_ascii (String.sub i.Tl_ir.Iter.name 0 1))
       (selected_iters t))

let apply t x_sel =
  let n = Array.length t.selected in
  if Array.length x_sel <> n then invalid_arg "Transform.apply: bad point";
  let xv = Array.map Rat.of_int x_sel in
  let st = Mat.mul_vec t.matrix xv in
  let p = Array.init (n - 1) (fun i -> Rat.to_int st.(i)) in
  (p, Rat.to_int st.(n - 1))

let inverse t =
  match Mat.inverse t.matrix with
  | Some inv -> inv
  | None -> assert false (* full rank checked in [v] *)

let inverse_apply t p time =
  let n = Array.length t.selected in
  if Array.length p <> n - 1 then
    invalid_arg "Transform.inverse_apply: bad space point";
  let st =
    Array.init n (fun i ->
        if i < n - 1 then Rat.of_int p.(i) else Rat.of_int time)
  in
  Mat.mul_vec (inverse t) st

let restricted_access t (a : Tl_ir.Access.t) =
  let full = Tl_ir.Access.to_mat a in
  Mat.make ~rows:(Mat.rows full) ~cols:(Array.length t.selected)
    (fun i j -> Mat.get full i t.selected.(j))

(* The schedule is linear, so its extrema over the box domain are attained
   coordinate-wise: each column contributes min/max of {0, c*(ext-1)}. *)
let time_bounds t =
  let n = Array.length t.selected in
  let ext = selected_extents t in
  let lo = ref 0 and hi = ref 0 in
  for j = 0 to n - 1 do
    let c = Rat.to_int (Mat.get t.matrix (n - 1) j) in
    let contrib = c * (ext.(j) - 1) in
    if contrib >= 0 then hi := !hi + contrib else lo := !lo + contrib
  done;
  (!lo, !hi)

let space_footprint t =
  let ext = selected_extents t in
  let n = Array.length ext in
  let seen = Hashtbl.create 64 in
  let x = Array.make n 0 in
  let rec go d =
    if d = n then begin
      let p, _ = apply t x in
      if not (Hashtbl.mem seen p) then Hashtbl.add seen p ()
    end
    else
      for v = 0 to ext.(d) - 1 do
        x.(d) <- v;
        go (d + 1)
      done
  in
  go 0;
  seen

let pp ppf t =
  Format.fprintf ppf "@[<v>STT %s of %s:@,%a@]" (selection_label t)
    t.stmt.Tl_ir.Stmt.name Mat.pp t.matrix
