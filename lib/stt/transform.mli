(** Space-Time Transformations (STT).

    An STT selects [n] iterators of a loop nest (for a 2-D PE array, three:
    two space dimensions and one time) and maps the selected iteration
    sub-vector [x] to [[p; t] = T x] where [T] is a full-rank integer
    matrix whose first [n-1] rows are the space projection and whose last
    row is the schedule.  The remaining (unselected) loops run sequentially
    outside the array. *)

type t = private {
  stmt : Tl_ir.Stmt.t;
  selected : int array;   (** ordered indices of the selected iterators *)
  matrix : Tl_linalg.Mat.t; (** n×n, full rank; last row = time *)
  imatrix : int array array;
      (** the same matrix as native integers (every STT matrix is integer);
          the fast path for per-candidate analysis avoids rational
          arithmetic entirely *)
}

val v : Tl_ir.Stmt.t -> selected:int array -> matrix:int list list -> t
(** @raise Invalid_argument if the selection is out of range or has
    duplicates, the matrix is not [n×n] with [n] the selection size, or the
    matrix is singular (the mapping must be one-to-one, §II). *)

val by_names : Tl_ir.Stmt.t -> string list -> matrix:int list list -> t
(** Select iterators by name, e.g. [by_names stmt ["k"; "c"; "x"] ...].
    @raise Not_found on an unknown iterator. *)

val space_dims : t -> int
(** Number of space rows (array dimensionality); [n - 1]. *)

val selected_iters : t -> Tl_ir.Iter.t list
val selected_extents : t -> int array
val unselected_iters : t -> Tl_ir.Iter.t list

val selection_label : t -> string
(** Upper-cased initials of the selected iterator names, e.g. ["KCX"]. *)

val apply : t -> int array -> int array * int
(** [apply t x_sel] is [(p, time)] for a selected-iterator point. *)

val inverse : t -> Tl_linalg.Mat.t
(** Exact rational [T⁻¹]. *)

val inverse_apply : t -> int array -> int -> Tl_linalg.Vec.t
(** [inverse_apply t p time] recovers the (rational) iteration point mapped
    to space-time position [(p, time)].  An iteration point exists there iff
    the result is integral and within bounds. *)

val restricted_access : t -> Tl_ir.Access.t -> Tl_linalg.Mat.t
(** The access matrix restricted to the selected iterator columns (the
    matrix [A] of Eq. 2 in the selected subspace). *)

val time_bounds : t -> int * int
(** Minimum and maximum schedule value over the full selected iteration
    domain (inclusive); the per-tile latency span used by the performance
    model. *)

val space_footprint : t -> (int array, unit) Hashtbl.t
(** The set of PE coordinates actually used by the selected domain. *)

val pp : Format.formatter -> t -> unit
