open Tl_hw

exception Unsupported of string

exception Simulation_timeout of { design : string; cycles : int }

exception Bad_program of string

type prog_info = {
  pi_envelope : Layout.envelope;
  pi_structure : string;
      (** canonical netlist-shape string ({!Layout.field-l_structure}) of the
          generating design; a program loads iff its structure matches *)
  pi_mems : (string * Signal.ram) list;
      (** writable descriptor memories by name, in elaboration order *)
}

type t = {
  design : Tl_stt.Design.t;
  rows : int;
  cols : int;
  data_width : int;
  acc_width : int;
  schedule : Schedule.t;
  circuit : Circuit.t;
  total_cycles : int;
  out_locs : (int list, Signal.ram * int) Hashtbl.t;
  banks : (string * Signal.ram) list;
  input_rams : (string * Signal.ram) list;
      (** per-tensor linear data memories; rewrite them to re-run the same
          accelerator on fresh data *)
  hardening : Harden.applied;
  counter_ports : string list;
      (** output-port names of the performance counters elaborated by
          [~counters]; empty when counters are off *)
  prog : prog_info option;
      (** [Some _] iff generated with [~programmable]: the schedule tables
          are envelope-sized writable descriptor memories and the
          accelerator accepts {!load_program} / {!execute_program} *)
}

let bits_for n =
  let rec go b = if 1 lsl b > n then b else go (b + 1) in
  max 1 (go 1)

(* ------------------------------------------------------------------ *)
(* Elaboration context shared by the per-tensor builders.              *)

(* ROM mode bakes each schedule table into an elaborated rom of natural
   size; programmable mode sizes the same table to the capacity envelope
   and records it so [load_program] can rewrite it at runtime.  The
   envelope makes every table size — and therefore every derived address
   width — independent of the generating shape, which is exactly what lets
   one netlist serve any schedule that fits the envelope. *)
type table_mode = [ `Rom | `Prog of Layout.envelope ]

type ctx = {
  mode : table_mode;
  mutable prog_mems : (string * Signal.ram) list;  (* reverse order *)
  sched : Schedule.t;
  dw : int;
  aw : int;
  total : int;
  cw : int;  (* cycle counter width *)
  cycle : Signal.t;
  tick : Signal.t;        (* last cycle of each pass *)
  stage_start : Signal.t; (* first cycle of passes 1.. *)
  stage_load : Signal.t;  (* preload tick or pass tick: stationary load *)
  stage_load_addr : Signal.t;
  drain_shift : Signal.t;
  pass_sig : Signal.t;
  env : Tl_ir.Exec.env;
  data_rams : (string, Signal.ram) Hashtbl.t;
  out_locs : (int list, Signal.ram * int) Hashtbl.t;
  mutable bank_list : (string * Signal.ram) list;
  mutable probe_outputs : (string * Signal.t) list;
  probe_addr : Signal.t;
  harden : Harden.config;
  parity_of_ram : (int, Signal.ram) Hashtbl.t;  (* ram id → parity ram *)
  mutable parity_pairs : (Signal.ram * Signal.ram) list;
  mutable parity_errs : Signal.t list;  (* comb parity-mismatch strobes *)
  (* observability bookkeeping: the builders tally, per cycle, how many
     useful reads each input memory serves and how many values cross
     systolic hops / multicast buses; [generate ~counters] compiles the
     tallies into increment ROMs + accumulator registers.  Tallies are
     pure metadata — no hardware is created unless counters are on. *)
  tally_reads : (string, int array) Hashtbl.t;  (* tensor → per-cycle *)
  tally_sys_link : int array;
  tally_mc_link : int array;
  mutable write_strobes : (string * Signal.t) list;  (* bank name → we *)
}

(* Parity companion of a ram: created on demand when parity hardening is
   on.  Read-only rams get a read-only companion initialised to the
   parity of their image; writable banks get a writable companion whose
   write port the caller hooks up alongside the data write. *)
let parity_ram ctx (r : Signal.ram) =
  match Hashtbl.find_opt ctx.parity_of_ram r.Signal.ram_id with
  | Some p -> p
  | None ->
    let name = r.Signal.ram_name ^ "_parity" in
    let p =
      Signal.ram ~name ~read_only:r.Signal.read_only ~size:r.Signal.size
        ~width:1
        ~init:(Array.map Harden.parity_bit r.Signal.init_data)
        ()
    in
    Hashtbl.add ctx.parity_of_ram r.Signal.ram_id p;
    ctx.parity_pairs <- (r, p) :: ctx.parity_pairs;
    p

(* Re-check a scheduled read: data parity vs stored parity bit. *)
let parity_check ctx ram ~addr ~data =
  if ctx.harden.Harden.parity_banks then begin
    let p = parity_ram ctx ram in
    let err = Signal.(Harden.parity_of data ^: Signal.ram_read p addr) in
    ctx.parity_errs <- err :: ctx.parity_errs
  end

(* Every schedule table goes through this chokepoint.  [`Rom]: an
   elaborated rom of natural size, exactly as before.  [`Prog]: a
   read-only (config-plane-written) ram sized by the envelope and
   zero-padded past the natural image — safe because the controller's
   saturating done flag keeps the cycle counter off the padding. *)
let table_ram ~mode ~record ~domain ~name ~width data =
  match (mode : table_mode) with
  | `Rom -> Signal.rom ~name ~width data
  | `Prog e ->
    let size =
      match domain with
      | Layout.Cycle -> e.Layout.env_cycles
      | Layout.Pass -> e.Layout.env_passes + 1
    in
    if Array.length data > size then
      raise
        (Unsupported
           (Printf.sprintf
              "programmable envelope too small for %s: need %d, capacity %d"
              name (Array.length data) size));
    let init = Array.make size 0 in
    Array.blit data 0 init 0 (Array.length data);
    let r = Signal.ram ~name ~read_only:true ~size ~width ~init () in
    record := (name, r) :: !record;
    r

let sched_table ctx ~domain ~name ~width data =
  let record = ref [] in
  let r = table_ram ~mode:ctx.mode ~record ~domain ~name ~width data in
  ctx.prog_mems <- !record @ ctx.prog_mems;
  r

let grid_iter rows cols f =
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      f (r, c)
    done
  done

let active_pes ctx =
  let acc = ref [] in
  grid_iter ctx.sched.Schedule.rows ctx.sched.Schedule.cols (fun p ->
      if Schedule.pe_active ctx.sched p then acc := p :: !acc);
  List.rev !acc

let events_of ctx (r, c) = ctx.sched.Schedule.by_pe.(r).(c)

(* Input data lives in one linear (row-major) memory per tensor, as a DMA
   engine would deposit it; feeders address it through schedule-table ROMs
   (cycle -> address).  This factors data from schedule: the same generated
   accelerator re-runs on fresh data by rewriting the data memories only
   (see [execute_with]). *)
let data_ram ctx (access : Tl_ir.Access.t) =
  let name = access.Tl_ir.Access.tensor in
  match Hashtbl.find_opt ctx.data_rams name with
  | Some r -> r
  | None ->
    let dense = List.assoc name ctx.env in
    let natural = Tl_ir.Dense.size dense in
    let size =
      match ctx.mode with
      | `Rom -> natural
      | `Prog e ->
        if natural > e.Layout.env_elems then
          raise
            (Unsupported
               (Printf.sprintf
                  "programmable envelope too small for %s: %d elements, \
                   capacity %d"
                  name natural e.Layout.env_elems));
        e.Layout.env_elems
    in
    let init =
      Array.init size (fun i ->
          if i < natural then Tl_ir.Dense.flat_get dense i else 0)
    in
    let r =
      (* pre-loaded data memory: the netlist never writes it (a DMA engine
         or [Sim.load_ram] fills it), so it is a rom to the lint *)
      Signal.ram ~name:(name ^ "_mem") ~read_only:true ~size ~width:ctx.dw
        ~init ()
    in
    Hashtbl.add ctx.data_rams name r;
    r

let tensor_offset ctx access ev =
  let idx = Schedule.tensor_index ctx.sched access ev in
  let dense = List.assoc access.Tl_ir.Access.tensor ctx.env in
  Tl_ir.Dense.offset dense idx

(* feed port: data_mem[addr_rom[cycle]] *)
let value_rom ctx access name pairs =
  let mem = data_ram ctx access in
  let abits = bits_for mem.Signal.size in
  let data = Array.make ctx.total 0 in
  List.iter (fun (cycle, off) -> data.(cycle) <- off) pairs;
  let rom =
    sched_table ctx ~domain:Layout.Cycle ~name:(name ^ "_addr") ~width:abits
      data
  in
  let addr = Signal.ram_read rom ctx.cycle in
  let value = Signal.ram_read mem addr in
  parity_check ctx mem ~addr ~data:value;
  value

let bitmap_rom ctx name cycles =
  let data = Array.make ctx.total 0 in
  List.iter (fun cycle -> data.(cycle) <- 1) cycles;
  let rom = sched_table ctx ~domain:Layout.Cycle ~name ~width:1 data in
  Signal.ram_read rom ctx.cycle

(* stationary feed: one address per pass (+ trailing zero entry) *)
let stage_rom ctx access name per_pass =
  let mem = data_ram ctx access in
  let abits = bits_for mem.Signal.size in
  let data = Array.make (ctx.sched.Schedule.passes + 1) 0 in
  List.iter (fun (pass, off) -> data.(pass) <- off) per_pass;
  let rom =
    sched_table ctx ~domain:Layout.Pass ~name:(name ^ "_saddr") ~width:abits
      data
  in
  let addr = Signal.ram_read rom ctx.stage_load_addr in
  let value = Signal.ram_read mem addr in
  parity_check ctx mem ~addr ~data:value;
  value

let pos_name prefix (r, c) = Printf.sprintf "%s_%d_%d" prefix r c

(* ------------------------------------------------------------------ *)
(* Observability tallies (see the ctx comment).  The counting rules
   mirror Perf_model's per-tensor traffic accounting so the compiled
   counters can be cross-checked against the analytical model:
   - unicast: one read per PE event;
   - multicast / broadcast: one read per distinct bus cycle, one link
     delivery per member event;
   - stationary (and multicast-stationary): one read per port per useful
     stage load — the preload tick plus every pass tick except the last,
     whose load fetches the trailing dummy entry and is not counted;
   - systolic: one read per chain-entry injection, one link transfer per
     event served by a neighbour hop. *)

let tally arr cycle = arr.(cycle) <- arr.(cycle) + 1

let tally_read ctx tensor cycle =
  let a =
    match Hashtbl.find_opt ctx.tally_reads tensor with
    | Some a -> a
    | None ->
      let a = Array.make ctx.total 0 in
      Hashtbl.add ctx.tally_reads tensor a;
      a
  in
  tally a cycle

(* useful stage loads of one stationary port: preload tick + the pass
   ticks of passes 0..passes-2 (the final tick loads the dummy entry) *)
let stage_load_cycles ctx =
  let sched = ctx.sched in
  0
  :: List.init
       (max 0 (sched.Schedule.passes - 1))
       (fun p ->
         sched.Schedule.preload + ((p + 1) * sched.Schedule.span) - 1)

let tally_stage_loads ctx tensor =
  List.iter (fun cycle -> tally_read ctx tensor cycle) (stage_load_cycles ctx)

let distinct_cycles pairs =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun (cycle, _) ->
      if Hashtbl.mem seen cycle then false
      else begin
        Hashtbl.add seen cycle ();
        true
      end)
    pairs
  |> List.map fst

(* ------------------------------------------------------------------ *)
(* Collector banks: accumulate-in-place output memories.               *)

type collector = {
  bank : Signal.ram;
  alloc : int list -> int;  (* element index → bank address *)
  mutable writes : (int * int list) list;  (* (cycle, element) *)
}

let make_collector ctx ~name ~capacity =
  let size =
    match ctx.mode with
    | `Rom -> max 1 capacity
    | `Prog e ->
      if max 1 capacity > max 1 e.Layout.env_bank then
        raise
          (Unsupported
             (Printf.sprintf
                "programmable envelope too small for %s: %d cells, capacity \
                 %d"
                name (max 1 capacity) e.Layout.env_bank));
      max 1 e.Layout.env_bank
  in
  let bank =
    Signal.ram ~name ~size ~width:ctx.aw ~init:(Array.make size 0) ()
  in
  let table : (int list, int) Hashtbl.t = Hashtbl.create 16 in
  let next = ref 0 in
  let alloc idx =
    match Hashtbl.find_opt table idx with
    | Some a -> a
    | None ->
      let a = !next in
      if a >= max 1 capacity then
        raise (Unsupported ("collector bank overflow: " ^ name));
      incr next;
      Hashtbl.add table idx a;
      Hashtbl.replace ctx.out_locs idx (bank, a);
      a
  in
  ctx.bank_list <- (name, bank) :: ctx.bank_list;
  { bank; alloc; writes = [] }

(* wire the collector: ROM-scheduled read-modify-write accumulation *)
let finalize_collector ctx name col value =
  let open Signal in
  let aw_bits = bits_for (col.bank.Signal.size - 1 + 1) in
  let we_data = Array.make ctx.total 0 in
  let addr_data = Array.make ctx.total 0 in
  List.iter
    (fun (cycle, idx) ->
      if we_data.(cycle) <> 0 then
        raise (Unsupported ("collector write conflict: " ^ name));
      we_data.(cycle) <- 1;
      addr_data.(cycle) <- col.alloc idx)
    col.writes;
  let we_rom =
    sched_table ctx ~domain:Layout.Cycle ~name:(name ^ "_we") ~width:1 we_data
  in
  let addr_rom =
    sched_table ctx ~domain:Layout.Cycle ~name:(name ^ "_addr") ~width:aw_bits
      addr_data
  in
  let we = ram_read we_rom ctx.cycle in
  let addr = ram_read addr_rom ctx.cycle in
  let old = ram_read col.bank addr in
  ctx.write_strobes <- (name, we) :: ctx.write_strobes;
  Signal.ram_write col.bank ~we ~addr ~data:(old +: value);
  if ctx.harden.Harden.parity_banks then begin
    (* parity companion follows every accumulate; the read-modify-write
       path re-checks the parity of the accumulator value it consumes *)
    let p = parity_ram ctx col.bank in
    Signal.ram_write p ~we ~addr ~data:(Harden.parity_of (old +: value));
    let err = we &: (Harden.parity_of old ^: ram_read p addr) in
    ctx.parity_errs <- err :: ctx.parity_errs
  end;
  (* probe port so the bank is observable (and reachable) *)
  let pbits = min (width ctx.probe_addr) aw_bits in
  let paddr = uresize (select ctx.probe_addr ~hi:(pbits - 1) ~lo:0) aw_bits in
  ctx.probe_outputs <-
    (name ^ "_probe", ram_read col.bank paddr) :: ctx.probe_outputs

(* ------------------------------------------------------------------ *)
(* Input-tensor hardware.  Returns the per-PE operand ("use") signals. *)

let zero_uses rows cols = Array.init rows (fun _ -> Array.make cols None)

let set_use uses (r, c) s = uses.(r).(c) <- Some s

(* element accessed by each (pe, cycle) for a tensor: entry detection *)
let index_table ctx access =
  let tbl : (int * int * int, int array) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (r, c) ->
      List.iter
        (fun ev ->
          Hashtbl.replace tbl (r, c, ev.Schedule.cycle)
            (Schedule.tensor_index ctx.sched access ev))
        (events_of ctx (r, c)))
    (active_pes ctx);
  tbl

let has_peer tbl ((r, c) : Geometry.pos) cycle idx =
  match Hashtbl.find_opt tbl (r, c, cycle) with
  | Some idx' -> idx' = idx
  | None -> false

let build_unicast_input ctx access uses =
  List.iter
    (fun p ->
      let pairs =
        List.map
          (fun ev -> (ev.Schedule.cycle, tensor_offset ctx access ev))
          (events_of ctx p)
      in
      List.iter (fun (cycle, _) -> tally_read ctx access.Tl_ir.Access.tensor cycle)
        pairs;
      let name = pos_name (access.Tl_ir.Access.tensor ^ "_uni") p in
      set_use uses p (value_rom ctx access name pairs))
    (active_pes ctx)

let build_stationary_input ctx access uses =
  List.iter
    (fun p ->
      let per_pass =
        List.map
          (fun ev -> (ev.Schedule.pass, tensor_offset ctx access ev))
          (events_of ctx p)
      in
      tally_stage_loads ctx access.Tl_ir.Access.tensor;
      let name = pos_name (access.Tl_ir.Access.tensor ^ "_st") p in
      let next = stage_rom ctx access name per_pass in
      set_use uses p
        Signal.(
          Pe_modules.stationary_input ~load:ctx.stage_load ~next
          -- pos_name (access.Tl_ir.Access.tensor ^ "_stin") p))
    (active_pes ctx)

(* Multicast and broadcast: one bus per line (or one global bus). *)
let group_by_line ctx ~dir pes =
  let rows = ctx.sched.Schedule.rows and cols = ctx.sched.Schedule.cols in
  let groups : (Geometry.pos, Geometry.pos list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun p ->
      let rep = Geometry.line_rep ~rows ~cols ~dir p in
      match Hashtbl.find_opt groups rep with
      | Some l -> l := p :: !l
      | None -> Hashtbl.add groups rep (ref [ p ]))
    pes;
  Hashtbl.fold (fun rep l acc -> (rep, List.rev !l) :: acc) groups []
  |> List.sort compare

let build_multicast_input ctx access ~dp uses =
  List.iter
    (fun (rep, members) ->
      let pairs =
        List.concat_map
          (fun p ->
            List.map
              (fun ev -> (ev.Schedule.cycle, tensor_offset ctx access ev))
              (events_of ctx p))
          members
      in
      List.iter (fun cycle -> tally_read ctx access.Tl_ir.Access.tensor cycle)
        (distinct_cycles pairs);
      List.iter (fun (cycle, _) -> tally ctx.tally_mc_link cycle) pairs;
      let name = pos_name (access.Tl_ir.Access.tensor ^ "_mc") rep in
      let bus = value_rom ctx access name pairs in
      List.iter (fun p -> set_use uses p (Pe_modules.direct_input ~bus))
        members)
    (group_by_line ctx ~dir:dp (active_pes ctx))

let build_broadcast_input ctx access uses =
  let pairs =
    List.concat_map
      (fun p ->
        List.map
          (fun ev -> (ev.Schedule.cycle, tensor_offset ctx access ev))
          (events_of ctx p))
      (active_pes ctx)
  in
  List.iter (fun cycle -> tally_read ctx access.Tl_ir.Access.tensor cycle)
    (distinct_cycles pairs);
  List.iter (fun (cycle, _) -> tally ctx.tally_mc_link cycle) pairs;
  let bus = value_rom ctx access (access.Tl_ir.Access.tensor ^ "_bc") pairs in
  List.iter (fun p -> set_use uses p (Pe_modules.direct_input ~bus))
    (active_pes ctx)

let build_multicast_stationary_input ctx access ~multicast uses =
  List.iter
    (fun (rep, members) ->
      let per_pass =
        List.concat_map
          (fun p ->
            List.map
              (fun ev -> (ev.Schedule.pass, tensor_offset ctx access ev))
              (events_of ctx p))
          members
      in
      tally_stage_loads ctx access.Tl_ir.Access.tensor;
      (* each useful stage load travels the line bus once *)
      List.iter (fun cycle -> tally ctx.tally_mc_link cycle)
        (stage_load_cycles ctx);
      let name = pos_name (access.Tl_ir.Access.tensor ^ "_mcst") rep in
      let next = stage_rom ctx access name per_pass in
      let held =
        Signal.(
          Pe_modules.stationary_input ~load:ctx.stage_load ~next
          -- pos_name (access.Tl_ir.Access.tensor ^ "_stin") rep)
      in
      List.iter (fun p -> set_use uses p held) members)
    (group_by_line ctx ~dir:multicast (active_pes ctx))

(* Systolic chains, optionally fed from multicast entry buses (2-D reuse).
   [entry_bus p] gives the injection value signal for an entry at PE [p]. *)
let build_systolic_chains ctx access ~dp ~dt ~entry_bus uses =
  let rows = ctx.sched.Schedule.rows and cols = ctx.sched.Schedule.cols in
  let tbl = index_table ctx access in
  let pes = active_pes ctx in
  let wires = Array.init rows (fun _ -> Array.make cols None) in
  List.iter
    (fun (r, c) -> wires.(r).(c) <- Some (Signal.wire ctx.dw))
    pes;
  List.iter
    (fun p ->
      let r, c = p in
      let entries =
        List.filter
          (fun ev ->
            let idx = Schedule.tensor_index ctx.sched access ev in
            not (has_peer tbl (Geometry.back p dp) (ev.Schedule.cycle - dt) idx))
          (events_of ctx p)
      in
      (* every event not served by an injection rides a neighbour hop *)
      let entry_cycles = List.map (fun ev -> ev.Schedule.cycle) entries in
      List.iter
        (fun ev ->
          if not (List.mem ev.Schedule.cycle entry_cycles) then
            tally ctx.tally_sys_link ev.Schedule.cycle)
        (events_of ctx p);
      let neighbor =
        let pr, pc = Geometry.back p dp in
        if Geometry.in_grid ~rows ~cols (pr, pc) then
          match wires.(pr).(pc) with
          | Some w -> w
          | None -> Signal.const ~width:ctx.dw 0
        else Signal.const ~width:ctx.dw 0
      in
      let din =
        if entries = [] then neighbor
        else begin
          let inject =
            bitmap_rom ctx
              (pos_name (access.Tl_ir.Access.tensor ^ "_inj") p)
              (List.map (fun ev -> ev.Schedule.cycle) entries)
          in
          let feed = entry_bus p entries in
          Signal.mux2 inject feed neighbor
        end
      in
      let use, dout = Pe_modules.systolic_input ~dt ~din in
      if dt > 0 then
        (* the chain register carrying data to the neighbour: interconnect *)
        ignore
          Signal.(dout -- pos_name (access.Tl_ir.Access.tensor ^ "_sysin") p);
      (match wires.(r).(c) with
       | Some w -> Signal.assign w dout
       | None -> assert false);
      set_use uses p use)
    pes

let build_systolic_input ctx access ~dp ~dt uses =
  let entry_bus p entries =
    let pairs =
      List.map
        (fun ev -> (ev.Schedule.cycle, tensor_offset ctx access ev))
        entries
    in
    List.iter (fun (cycle, _) -> tally_read ctx access.Tl_ir.Access.tensor cycle)
      pairs;
    value_rom ctx access
      (pos_name (access.Tl_ir.Access.tensor ^ "_feed") p)
      pairs
  in
  build_systolic_chains ctx access ~dp ~dt ~entry_bus uses

(* 2-D systolic+multicast: entries on the same line (along the multicast
   direction) share one feed bus per line. *)
let build_systolic_multicast_input ctx access ~multicast ~dp ~dt uses =
  let rows = ctx.sched.Schedule.rows and cols = ctx.sched.Schedule.cols in
  let line_bus : (Geometry.pos, Signal.t) Hashtbl.t = Hashtbl.create 8 in
  let line_pairs : (Geometry.pos, (int * int) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  (* first sweep: collect entry values per line (needs the same entry
     detection as the chain builder, so run it in the entry_bus callback
     and create per-line buses lazily backed by wires) *)
  let entry_bus p entries =
    let rep = Geometry.line_rep ~rows ~cols ~dir:multicast p in
    let pairs =
      List.map
        (fun ev -> (ev.Schedule.cycle, tensor_offset ctx access ev))
        entries
    in
    (* each injected entry is a delivery over the shared line feed bus *)
    List.iter (fun (cycle, _) -> tally ctx.tally_mc_link cycle) pairs;
    (match Hashtbl.find_opt line_pairs rep with
     | Some l -> l := pairs @ !l
     | None -> Hashtbl.add line_pairs rep (ref pairs));
    match Hashtbl.find_opt line_bus rep with
    | Some bus -> bus
    | None ->
      let bus = Signal.wire ctx.dw in
      Hashtbl.add line_bus rep bus;
      bus
  in
  build_systolic_chains ctx access ~dp ~dt ~entry_bus uses;
  Hashtbl.iter
    (fun rep bus ->
      let pairs =
        match Hashtbl.find_opt line_pairs rep with
        | Some l -> !l
        | None -> []
      in
      List.iter (fun cycle -> tally_read ctx access.Tl_ir.Access.tensor cycle)
        (distinct_cycles pairs);
      let v =
        value_rom ctx access
          (pos_name (access.Tl_ir.Access.tensor ^ "_lfeed") rep)
          pairs
      in
      Signal.assign bus v)
    line_bus

(* ------------------------------------------------------------------ *)

let build_input ctx (ti : Tl_stt.Design.tensor_info) uses =
  let access = ti.Tl_stt.Design.access in
  match ti.Tl_stt.Design.dataflow with
  | Tl_stt.Dataflow.Unicast -> build_unicast_input ctx access uses
  | Tl_stt.Dataflow.Stationary _ -> build_stationary_input ctx access uses
  | Tl_stt.Dataflow.Systolic { dp; dt } ->
    build_systolic_input ctx access ~dp ~dt uses
  | Tl_stt.Dataflow.Multicast { dp } ->
    build_multicast_input ctx access ~dp uses
  | Tl_stt.Dataflow.Reuse2d Tl_stt.Dataflow.Broadcast ->
    build_broadcast_input ctx access uses
  | Tl_stt.Dataflow.Reuse2d (Tl_stt.Dataflow.Multicast_stationary { multicast })
    ->
    build_multicast_stationary_input ctx access ~multicast uses
  | Tl_stt.Dataflow.Reuse2d
      (Tl_stt.Dataflow.Systolic_multicast { multicast; systolic }) ->
    build_systolic_multicast_input ctx access ~multicast
      ~dp:systolic.Tl_stt.Dataflow.dp ~dt:systolic.Tl_stt.Dataflow.dt uses
  | Tl_stt.Dataflow.Reuse_full ->
    raise (Unsupported "full-reuse input tensors are not implemented")

(* ------------------------------------------------------------------ *)
(* Output-tensor hardware.                                             *)

let out_elem ctx access ev =
  Array.to_list (Schedule.tensor_index ctx.sched access ev)

let build_stationary_output ctx access ~prods ~valids =
  let cols = ctx.sched.Schedule.cols in
  let sched = ctx.sched in
  (* the drain chain only spans the active footprint rows *)
  let fp_rows =
    1 + List.fold_left (fun acc (r, _) -> max acc r) 0 (active_pes ctx)
  in
  if sched.Schedule.span < fp_rows then
    raise
      (Unsupported
         (Printf.sprintf
            "stationary output: stage span %d shorter than drain chain %d"
            sched.Schedule.span fp_rows));
  (* columns containing at least one active PE *)
  let col_active = Array.make cols false in
  List.iter (fun (_, c) -> col_active.(c) <- true) (active_pes ctx);
  for c = 0 to cols - 1 do
    if col_active.(c) then begin
      let collector =
        make_collector ctx
          ~name:(Printf.sprintf "obank_col%d" c)
          ~capacity:(fp_rows * (sched.Schedule.passes + 1))
      in
      let shadow_above = ref (Signal.const ~width:ctx.aw 0) in
      for r = 0 to fp_rows - 1 do
        let prod =
          match prods.(r).(c) with
          | Some p -> p
          | None -> Signal.const ~width:ctx.aw 0
        in
        let valid =
          match valids.(r).(c) with Some v -> v | None -> Signal.gnd
        in
        let m =
          Pe_modules.stationary_output ~valid ~stage_start:ctx.stage_start
            ~capture:ctx.tick ~drain_shift:ctx.drain_shift
            ~contribution:prod ~shadow_in:!shadow_above
        in
        ignore Signal.(m.Pe_modules.acc -- pos_name "acc" (r, c));
        ignore Signal.(m.Pe_modules.shadow -- pos_name "shadow" (r, c));
        shadow_above := m.Pe_modules.shadow;
        (* schedule the drain writes for this PE *)
        let seen_pass = Hashtbl.create 8 in
        List.iter
          (fun ev ->
            if not (Hashtbl.mem seen_pass ev.Schedule.pass) then begin
              Hashtbl.add seen_pass ev.Schedule.pass ();
              let tick_cycle =
                sched.Schedule.preload
                + ((ev.Schedule.pass + 1) * sched.Schedule.span)
                - 1
              in
              let write_cycle = tick_cycle + (fp_rows - r) in
              collector.writes <-
                (write_cycle, out_elem ctx access ev) :: collector.writes
            end)
          (events_of ctx (r, c))
      done;
      finalize_collector ctx
        (Printf.sprintf "obank_col%d" c)
        collector !shadow_above
    end
  done

let build_systolic_output ctx access ~dp ~dt ~prods ~valids =
  let rows = ctx.sched.Schedule.rows and cols = ctx.sched.Schedule.cols in
  let tbl = index_table ctx access in
  let pes = active_pes ctx in
  let wires = Array.init rows (fun _ -> Array.make cols None) in
  List.iter (fun (r, c) -> wires.(r).(c) <- Some (Signal.wire ctx.aw)) pes;
  let exits : (Geometry.pos * Schedule.event list) list =
    List.filter_map
      (fun p ->
        let exits =
          List.filter
            (fun ev ->
              let idx = Schedule.tensor_index ctx.sched access ev in
              not (has_peer tbl (Geometry.step p dp) (ev.Schedule.cycle + dt) idx))
            (events_of ctx p)
        in
        if exits = [] then None else Some (p, exits))
      pes
  in
  List.iter
    (fun p ->
      let r, c = p in
      let entries =
        List.filter
          (fun ev ->
            let idx = Schedule.tensor_index ctx.sched access ev in
            not (has_peer tbl (Geometry.back p dp) (ev.Schedule.cycle - dt) idx))
          (events_of ctx p)
      in
      let neighbor =
        let pr, pc = Geometry.back p dp in
        if Geometry.in_grid ~rows ~cols (pr, pc) then
          match wires.(pr).(pc) with
          | Some w -> w
          | None -> Signal.const ~width:ctx.aw 0
        else Signal.const ~width:ctx.aw 0
      in
      let psum_in =
        if List.length entries = List.length (events_of ctx p) then
          (* every event starts a fresh chain here *)
          Signal.const ~width:ctx.aw 0
        else if entries = [] then neighbor
        else begin
          let inject =
            bitmap_rom ctx
              (pos_name (access.Tl_ir.Access.tensor ^ "_oinj") p)
              (List.map (fun ev -> ev.Schedule.cycle) entries)
          in
          Signal.mux2 inject (Signal.const ~width:ctx.aw 0) neighbor
        end
      in
      let prod =
        match prods.(r).(c) with
        | Some s -> s
        | None -> Signal.const ~width:ctx.aw 0
      in
      let valid =
        match valids.(r).(c) with Some v -> v | None -> Signal.gnd
      in
      let contribution = Pe_modules.tree_contribution ~valid ~contribution:prod in
      let out = Pe_modules.systolic_output ~dt ~psum_in ~contribution in
      if dt > 0 then
        ignore
          Signal.(out -- pos_name (access.Tl_ir.Access.tensor ^ "_sysout") p);
      match wires.(r).(c) with
      | Some w -> Signal.assign w out
      | None -> assert false)
    pes;
  List.iter
    (fun (p, exit_events) ->
      let name = pos_name (access.Tl_ir.Access.tensor ^ "_obank") p in
      let collector =
        make_collector ctx ~name ~capacity:(List.length exit_events)
      in
      List.iter
        (fun ev ->
          collector.writes <-
            (ev.Schedule.cycle + dt, out_elem ctx access ev)
            :: collector.writes)
        exit_events;
      let r, c = p in
      let value =
        match wires.(r).(c) with Some w -> w | None -> assert false
      in
      finalize_collector ctx name collector value)
    exits

let gated_tree ctx members ~prods ~valids =
  let leaves =
    List.map
      (fun (r, c) ->
        let prod =
          match prods.(r).(c) with
          | Some s -> s
          | None -> Signal.const ~width:ctx.aw 0
        in
        let valid =
          match valids.(r).(c) with Some v -> v | None -> Signal.gnd
        in
        Pe_modules.tree_contribution ~valid ~contribution:prod)
      members
  in
  Reduce_tree.build leaves

let build_multicast_output ctx access ~dp ~prods ~valids =
  List.iter
    (fun (rep, members) ->
      let root = gated_tree ctx members ~prods ~valids in
      let name = pos_name (access.Tl_ir.Access.tensor ^ "_tbank") rep in
      let events =
        List.concat_map (fun p -> events_of ctx p) members
      in
      (* one write per (cycle, element); all members at a cycle share one *)
      let writes = Hashtbl.create 64 in
      List.iter
        (fun ev ->
          Hashtbl.replace writes ev.Schedule.cycle (out_elem ctx access ev))
        events;
      let collector =
        make_collector ctx ~name ~capacity:(Hashtbl.length writes)
      in
      Hashtbl.iter
        (fun cycle elem ->
          collector.writes <- (cycle, elem) :: collector.writes)
        writes;
      finalize_collector ctx name collector root)
    (group_by_line ctx ~dir:dp (active_pes ctx))

let build_multicast_stationary_output ctx access ~multicast ~prods ~valids =
  let sched = ctx.sched in
  List.iter
    (fun (rep, members) ->
      let open Signal in
      let tree = gated_tree ctx members ~prods ~valids in
      let accw = wire ctx.aw in
      let acc_d = mux2 ctx.stage_start tree (accw +: tree) in
      let acc = reg acc_d -- pos_name "acc" rep in
      assign accw acc;
      let name = pos_name (access.Tl_ir.Access.tensor ^ "_tsbank") rep in
      let per_pass = Hashtbl.create 8 in
      List.iter
        (fun p ->
          List.iter
            (fun ev ->
              Hashtbl.replace per_pass ev.Schedule.pass
                (out_elem ctx access ev))
            (events_of ctx p))
        members;
      let collector =
        make_collector ctx ~name ~capacity:(Hashtbl.length per_pass)
      in
      Hashtbl.iter
        (fun pass elem ->
          let tick_cycle =
            sched.Schedule.preload + ((pass + 1) * sched.Schedule.span) - 1
          in
          collector.writes <- (tick_cycle, elem) :: collector.writes)
        per_pass;
      (* at the tick the full stage total is acc + tree (the reg input) *)
      finalize_collector ctx name collector acc_d)
    (group_by_line ctx ~dir:multicast (active_pes ctx))

let build_unicast_output ctx access ~prods ~valids =
  List.iter
    (fun p ->
      let r, c = p in
      let prod =
        match prods.(r).(c) with
        | Some s -> s
        | None -> Signal.const ~width:ctx.aw 0
      in
      let valid =
        match valids.(r).(c) with Some v -> v | None -> Signal.gnd
      in
      let contribution = Pe_modules.tree_contribution ~valid ~contribution:prod in
      let events = events_of ctx p in
      let name = pos_name (access.Tl_ir.Access.tensor ^ "_ubank") p in
      let collector =
        make_collector ctx ~name ~capacity:(List.length events)
      in
      List.iter
        (fun ev ->
          collector.writes <-
            (ev.Schedule.cycle, out_elem ctx access ev) :: collector.writes)
        events;
      finalize_collector ctx name collector contribution)
    (active_pes ctx)

let build_output ctx (ti : Tl_stt.Design.tensor_info) ~prods ~valids =
  let access = ti.Tl_stt.Design.access in
  match ti.Tl_stt.Design.dataflow with
  | Tl_stt.Dataflow.Unicast -> build_unicast_output ctx access ~prods ~valids
  | Tl_stt.Dataflow.Stationary _ ->
    build_stationary_output ctx access ~prods ~valids
  | Tl_stt.Dataflow.Systolic { dp; dt } ->
    build_systolic_output ctx access ~dp ~dt ~prods ~valids
  | Tl_stt.Dataflow.Multicast { dp } ->
    build_multicast_output ctx access ~dp ~prods ~valids
  | Tl_stt.Dataflow.Reuse2d (Tl_stt.Dataflow.Multicast_stationary { multicast })
    ->
    build_multicast_stationary_output ctx access ~multicast ~prods ~valids
  | Tl_stt.Dataflow.Reuse2d Tl_stt.Dataflow.Broadcast
  | Tl_stt.Dataflow.Reuse2d (Tl_stt.Dataflow.Systolic_multicast _)
  | Tl_stt.Dataflow.Reuse_full ->
    raise
      (Unsupported
         (Printf.sprintf "output dataflow %s has no netlist template"
            (Tl_stt.Dataflow.to_string ti.Tl_stt.Design.dataflow)))

(* ------------------------------------------------------------------ *)

let generate ?(rows = 4) ?(cols = 4) ?(data_width = 16) ?(acc_width = 32)
    ?(harden = Harden.none) ?(counters = false) ?programmable design env =
  let sched =
    try Schedule.build design ~rows ~cols
    with Schedule.Unsupported msg -> raise (Unsupported msg)
  in
  let total = sched.Schedule.compute_end + rows + Layout.max_dt design + 4 in
  let mode : table_mode =
    match programmable with None -> `Rom | Some e -> `Prog e
  in
  (match mode with
   | `Rom -> ()
   | `Prog e ->
     if total > e.Layout.env_cycles then
       raise
         (Unsupported
            (Printf.sprintf
               "programmable envelope too small: schedule needs %d cycles, \
                capacity %d"
               total e.Layout.env_cycles));
     if sched.Schedule.passes > e.Layout.env_passes then
       raise
         (Unsupported
            (Printf.sprintf
               "programmable envelope too small: schedule needs %d passes, \
                capacity %d"
               sched.Schedule.passes e.Layout.env_passes)));
  let cw =
    match mode with
    | `Rom -> bits_for total
    | `Prog e -> bits_for e.Layout.env_cycles
  in
  let ctrl_mems = ref [] in
  let ctrl_table ~domain ~name ~width data =
    table_ram ~mode ~record:ctrl_mems ~domain ~name ~width data
  in
  let open Signal in
  (* controller: [creg] builds each state register, triplicated with a
     majority vote when TMR hardening is on — all copies latch the same
     next state computed from the voted feedback, so a single upset copy
     self-heals at the next edge *)
  let tmr_names = ref [] in
  let creg name ?enable d =
    if harden.Harden.tmr_controller then begin
      tmr_names := name :: !tmr_names;
      Harden.tmr_reg ~name ?enable d -- name
    end
    else reg ?enable d -- name
  in
  let cycle_w = wire cw in
  (* ROM mode derives [done]/[tick] from comparators against elaborated
     constants; programmable mode reads them from two 1-bit cycle-indexed
     descriptor streams, so reprogramming the streams retargets the
     controller without touching the netlist.  [done] saturates the cycle
     counter at its own assertion cycle, which keeps the counter off the
     zero padding past a program's natural length. *)
  let done_ =
    match mode with
    | `Rom -> eq cycle_w (const ~width:cw (total - 1)) -- "done"
    | `Prog _ ->
      let data = Array.make total 0 in
      data.(total - 1) <- 1;
      let m = ctrl_table ~domain:Layout.Cycle ~name:"ctrl_done" ~width:1 data in
      ram_read m cycle_w -- "done"
  in
  let cycle =
    creg "cycle_ctr" (mux2 done_ cycle_w (cycle_w +: const ~width:cw 1))
  in
  assign cycle_w cycle;
  let tick =
    match mode with
    | `Rom ->
      let preload_c = const ~width:cw sched.Schedule.preload in
      let compute_end_c = const ~width:cw sched.Schedule.compute_end in
      let compute_active =
        (ule preload_c cycle &: ult cycle compute_end_c) -- "compute_active"
      in
      let span = sched.Schedule.span in
      let ipw = bits_for span in
      let in_pass_w = wire ipw in
      let tick =
        (compute_active &: eq in_pass_w (const ~width:ipw (span - 1)))
        -- "tick"
      in
      let in_pass =
        creg "in_pass" ~enable:compute_active
          (mux2 tick (const ~width:ipw 0) (in_pass_w +: const ~width:ipw 1))
      in
      assign in_pass_w in_pass;
      tick
    | `Prog _ ->
      let data = Array.make total 0 in
      for p = 0 to sched.Schedule.passes - 1 do
        data.(sched.Schedule.preload + ((p + 1) * sched.Schedule.span) - 1) <-
          1
      done;
      let m = ctrl_table ~domain:Layout.Cycle ~name:"ctrl_tick" ~width:1 data in
      ram_read m cycle -- "tick"
  in
  let pw =
    match mode with
    | `Rom -> bits_for (sched.Schedule.passes + 1)
    | `Prog e -> bits_for (e.Layout.env_passes + 1)
  in
  let pass_w = wire pw in
  let pass_sig =
    creg "pass_ctr" ~enable:tick (pass_w +: const ~width:pw 1)
  in
  assign pass_w pass_sig;
  let stage_start = creg "stage_start" tick in
  let preload_tick = eq cycle (const ~width:cw 0) -- "preload_tick" in
  let stage_load = (preload_tick |: tick) -- "stage_load" in
  let stage_load_addr =
    mux2 preload_tick (const ~width:pw 0) (pass_w +: const ~width:pw 1)
    -- "stage_load_addr"
  in
  let dcw = bits_for (rows + 1) in
  let dc_w = wire dcw in
  let dc_nonzero = ne dc_w (const ~width:dcw 0) in
  let dc =
    creg "drain_ctr"
      (mux2 tick (const ~width:dcw rows)
         (mux2 dc_nonzero (dc_w -: const ~width:dcw 1) (const ~width:dcw 0)))
  in
  assign dc_w dc;
  let drain_shift = dc_nonzero -- "drain_shift" in
  let probe_addr = input "probe_addr" 16 in
  let ctx =
    { mode; prog_mems = !ctrl_mems;
      sched; dw = data_width; aw = acc_width; total; cw; cycle; tick;
      stage_start; stage_load; stage_load_addr; drain_shift; pass_sig;
      env; data_rams = Hashtbl.create 8; out_locs = Hashtbl.create 64;
      bank_list = []; probe_outputs = []; probe_addr; harden;
      parity_of_ram = Hashtbl.create 8; parity_pairs = [];
      parity_errs = []; tally_reads = Hashtbl.create 4;
      tally_sys_link = Array.make total 0;
      tally_mc_link = Array.make total 0; write_strobes = [] }
  in
  (* input tensors *)
  let inputs = Tl_stt.Design.input_infos design in
  let uses_per_tensor =
    List.map
      (fun ti ->
        let uses = zero_uses rows cols in
        build_input ctx ti uses;
        uses)
      inputs
  in
  (* validity + computation cell per active PE *)
  let prods = Array.init rows (fun _ -> Array.make cols None) in
  let valids = Array.init rows (fun _ -> Array.make cols None) in
  List.iter
    (fun p ->
      let r, c = p in
      let valid =
        bitmap_rom ctx (pos_name "valid" p)
          (List.map (fun ev -> ev.Schedule.cycle) (events_of ctx p))
      in
      let operand_signals =
        List.map
          (fun uses ->
            match uses.(r).(c) with
            | Some s -> s
            | None -> assert false (* every builder covers active PEs *))
          uses_per_tensor
      in
      let prod =
        match operand_signals with
        | [] -> assert false
        | first :: rest ->
          List.fold_left
            (fun acc s -> acc *: sresize s acc_width)
            (sresize first acc_width)
            rest
      in
      prods.(r).(c) <- Some (prod -- pos_name "prod" p);
      valids.(r).(c) <- Some valid)
    (active_pes ctx);
  (* output tensor *)
  build_output ctx (Tl_stt.Design.output_info design) ~prods ~valids;
  (* parity hardening: fold all comb parity-mismatch strobes into one
     sticky flag exported as [error_detected] *)
  let error_outputs =
    if not harden.Harden.parity_banks then []
    else begin
      let comb =
        match ctx.parity_errs with
        | [] -> gnd
        | e :: rest -> List.fold_left ( |: ) e rest
      in
      let sw = wire 1 in
      let sticky = reg (sw |: comb) -- "parity_sticky" in
      assign sw sticky;
      [ ("error_detected", (sticky |: comb) -- "error_detected") ]
    end
  in
  (* performance counters: synthesizable read-out ports, elaborated only
     on request so the default netlist stays bit-identical (the [~harden]
     discipline).  Every accumulator is enabled by [ctr_live] — a sticky
     not-finished flag — so each of the [total] live cycles is counted
     exactly once even though the bounded run settles the saturated
     terminal cycle twice. *)
  let counter_outputs =
    if not counters then []
    else begin
      let fw = wire 1 in
      let fin = reg (fw |: done_) -- "ctr_finished" in
      assign fw fin;
      let live = not_ fin -- "ctr_live" in
      let acc32 name inc =
        let w = wire 32 in
        let a = reg ~enable:live (w +: uresize inc 32) -- name in
        assign w a;
        (name, a)
      in
      let rom_counter name tally =
        let m = Array.fold_left max 1 tally in
        (* programmable variants fix the increment width at the whole-array
           bound (no per-cycle tally can exceed one count per PE), keeping
           it independent of the generating shape *)
        let w =
          match mode with
          | `Rom -> bits_for m
          | `Prog _ -> bits_for (max (rows * cols) m)
        in
        let rom =
          sched_table ctx ~domain:Layout.Cycle ~name:(name ^ "_inc") ~width:w
            tally
        in
        acc32 name (ram_read rom cycle)
      in
      (* MAC-enable popcount: the same per-PE valid bitmaps that gate the
         datapath feed a balanced adder tree *)
      let vs =
        List.filter_map (fun (r, c) -> valids.(r).(c)) (active_pes ctx)
      in
      let pcw = bits_for (List.length vs + 1) in
      let popcount =
        match vs with
        | [] -> const ~width:pcw 0
        | _ -> Reduce_tree.build (List.map (fun v -> uresize v pcw) vs)
      in
      let reads =
        Hashtbl.fold (fun t a acc -> (t, a) :: acc) ctx.tally_reads []
        |> List.sort compare
        |> List.map (fun (t, a) -> rom_counter ("ctr_rd_" ^ t) a)
      in
      let writes =
        List.rev ctx.write_strobes
        |> List.map (fun (n, we) -> acc32 ("ctr_wr_" ^ n) we)
      in
      (acc32 "ctr_cycles" vdd :: acc32 "ctr_active_pe_cycles" popcount
       :: reads)
      @ writes
      @ [ rom_counter "ctr_link_systolic" ctx.tally_sys_link;
          rom_counter "ctr_link_multicast" ctx.tally_mc_link ]
    end
  in
  let outputs =
    ("done", done_) :: ("cycle", cycle)
    :: ("pass", pass_sig)
    :: (error_outputs @ counter_outputs @ List.rev ctx.probe_outputs)
  in
  let circuit =
    Circuit.create ~name:("tensorlib_" ^ design.Tl_stt.Design.name) ~outputs
  in
  let prog =
    match mode with
    | `Rom -> None
    | `Prog e ->
      Some
        { pi_envelope = e;
          pi_structure =
            (Layout.build design ~rows ~cols).Layout.l_structure;
          pi_mems = List.rev ctx.prog_mems }
  in
  { design; rows; cols; data_width; acc_width; schedule = sched;
    circuit; total_cycles = total; out_locs = ctx.out_locs; prog;
    counter_ports = List.map fst counter_outputs;
    banks = List.rev ctx.bank_list;
    input_rams =
      Hashtbl.fold (fun name r acc -> (name, r) :: acc) ctx.data_rams []
      |> List.sort compare;
    hardening =
      { Harden.config = harden;
        tmr_regs = List.rev !tmr_names;
        parity_pairs = List.rev ctx.parity_pairs } }

let planned_cycles t = t.total_cycles + 1

let read_counters t sim =
  List.map (fun name -> (name, Sim.output sim name)) t.counter_ports

let read_output_lane t sim lane =
  let stmt = t.design.Tl_stt.Design.transform.Tl_stt.Transform.stmt in
  let out = Tl_ir.Exec.alloc_output stmt in
  let contents = Hashtbl.create 8 in
  List.iter
    (fun (_, bank) ->
      Hashtbl.replace contents bank.Signal.ram_id
        (Sim.ram_contents_lane sim lane bank))
    t.banks;
  Hashtbl.iter
    (fun idx ((bank : Signal.ram), addr) ->
      let data = Hashtbl.find contents bank.Signal.ram_id in
      Tl_ir.Dense.set out (Array.of_list idx)
        (Signal.to_signed t.acc_width data.(addr)))
    t.out_locs;
  out

let read_output t sim = read_output_lane t sim 0

(* Flatten the golden output into raw (bank, addr, expected) triples so a
   fault campaign can test "lane output = golden" with single-cell reads —
   no ram copies, no Dense allocation per lane.  The expected value is the
   signed view, mirroring [read_output_lane] exactly. *)
let golden_cells (t : t) golden =
  Hashtbl.fold
    (fun idx ((bank : Signal.ram), addr) acc ->
      (bank, addr, Tl_ir.Dense.get golden (Array.of_list idx)) :: acc)
    t.out_locs []

let output_equal_lane t sim lane cells =
  List.for_all
    (fun ((bank : Signal.ram), addr, expect) ->
      Signal.to_signed t.acc_width (Sim.ram_cell_lane sim lane bank addr)
      = expect)
    cells

(* Pre-resolved form of [output_equal_lane], bound to one simulator:
   bank slots are looked up once, so the per-lane check is just array
   reads and compares. *)
let output_checker (t : t) sim cells =
  let prepared =
    List.map
      (fun ((bank : Signal.ram), addr, expect) ->
        (Sim.ram_reader sim bank, addr, expect))
      cells
  in
  let width = t.acc_width in
  fun lane ->
    List.for_all
      (fun (read, addr, expect) ->
        Signal.to_signed width (read lane addr) = expect)
      prepared

(* Watchdog: the schedule is finite, so the run is bounded by
   construction — but a corrupted (or malformed) controller can fail to
   reach the terminal count, in which case the outputs are meaningless.
   The [done] flag is asserted iff the cycle counter reached its
   terminal value, so checking it after the bounded run classifies a
   wedged controller as a timeout instead of returning garbage. *)
let check_done t sim =
  (* every lane's controller must have reached the terminal count — on a
     batch simulator one wedged trial fails the whole call, matching the
     per-trial semantics a scalar loop over the same trials would have *)
  let all_done =
    match Sim.backend sim with
    | `Tape | `Closure -> Sim.output sim "done" = 1
    | `Batch ->
      let l = Sim.lanes sim in
      let full = if l >= Sim.max_lanes then max_int else (1 lsl l) - 1 in
      Sim.output_packed sim "done" = full
  in
  if not all_done then
    raise
      (Simulation_timeout
         { design = t.design.Tl_stt.Design.name;
           cycles = Sim.cycle_count sim })

let bounded_cycles ?max_cycles t =
  match max_cycles with
  | None -> planned_cycles t
  | Some m ->
    if m < 1 then invalid_arg "Accel: max_cycles must be >= 1";
    min m (planned_cycles t)

let run_sim ?max_cycles t sim =
  Sim.cycles sim (bounded_cycles ?max_cycles t);
  check_done t sim;
  read_output t sim

let execute ?backend ?max_cycles t =
  run_sim ?max_cycles t (Sim.create ?backend t.circuit)

(* Programmable netlists size their data memories to the capacity
   envelope, so the generating workload's tensors occupy a prefix; the
   tail stays zero (exactly what [generate] baked into the init image).
   ROM netlists keep the historical exact-size contract. *)
let env_image t name (ram : Signal.ram) dense =
  let n = Tl_ir.Dense.size dense in
  let ok = n = ram.Signal.size || (t.prog <> None && n < ram.Signal.size) in
  if not ok then invalid_arg ("Accel.load_env: shape mismatch for " ^ name);
  Array.init n (Tl_ir.Dense.flat_get dense)

let load_env_lane t sim lane env =
  List.iter
    (fun (name, ram) ->
      match List.assoc_opt name env with
      | None -> invalid_arg ("Accel.load_env: missing tensor " ^ name)
      | Some dense ->
        Sim.load_ram_prefix_lane sim lane ram (env_image t name ram dense))
    t.input_rams

let load_env t sim env =
  List.iter
    (fun (name, ram) ->
      match List.assoc_opt name env with
      | None -> invalid_arg ("Accel.load_env: missing tensor " ^ name)
      | Some dense ->
        Sim.load_ram_prefix sim ram (env_image t name ram dense))
    t.input_rams

let execute_with ?backend ?max_cycles t env =
  let sim = Sim.create ?backend t.circuit in
  load_env t sim env;
  run_sim ?max_cycles t sim

(* One bit-sliced pass over up to [Sim.max_lanes] independent input
   environments: results arrive in input order, each bit-identical to a
   scalar [execute_with] on that environment. *)
let execute_batch ?max_cycles t envs =
  let n = List.length envs in
  if n < 1 then invalid_arg "Accel.execute_batch: no environments";
  if n > Sim.max_lanes then
    invalid_arg
      (Printf.sprintf "Accel.execute_batch: %d environments > %d lanes" n
         Sim.max_lanes);
  let sim = Sim.create ~backend:`Batch ~lanes:n t.circuit in
  List.iteri (fun lane env -> load_env_lane t sim lane env) envs;
  Sim.cycles sim (bounded_cycles ?max_cycles t);
  check_done t sim;
  List.mapi (fun lane _ -> read_output_lane t sim lane) envs

(* ------------------------------------------------------------------ *)
(* Runtime programming: load a compiled program (descriptor images +
   data layout, see Tl_compile) into a live simulator of a programmable
   netlist.  Validation is strict — a program that names an unknown
   memory, overflows a capacity, or carries a value wider than the
   generated port raises [Bad_program] before anything is written. *)

let prog_info t =
  match t.prog with
  | Some pi -> pi
  | None -> raise (Bad_program "target accelerator is not programmable")

let parity_companion t (ram : Signal.ram) =
  List.find_opt
    (fun ((r : Signal.ram), _) -> r.Signal.ram_id = ram.Signal.ram_id)
    t.hardening.Harden.parity_pairs
  |> Option.map snd

let load_program t sim (p : Layout.program) env =
  let pi = prog_info t in
  if p.Layout.p_structure <> pi.pi_structure then
    raise (Bad_program "program structure does not match the target netlist");
  (* reset FIRST: it restores every ram's init image (banks to zero,
     descriptors to the generating shape), which the loads below then
     overwrite — the reverse order would wipe the program *)
  Sim.reset sim;
  (* every descriptor memory of the target must receive an image; images
     for memories the target did not elaborate (e.g. counter increments
     on a counters-off netlist) are simply unused *)
  let images = p.Layout.p_images in
  List.iter
    (fun (name, (ram : Signal.ram)) ->
      match List.assoc_opt name images with
      | None -> raise (Bad_program ("program missing image for " ^ name))
      | Some (_, img) ->
        let n = Array.length img in
        if n > ram.Signal.size then
          raise
            (Bad_program
               (Printf.sprintf
                  "image %s: %d entries exceed memory capacity %d" name n
                  ram.Signal.size));
        let lim =
          if ram.Signal.ram_width >= Sys.int_size - 1 then max_int
          else 1 lsl ram.Signal.ram_width
        in
        Array.iter
          (fun v ->
            if v < 0 || v >= lim then
              raise
                (Bad_program
                   (Printf.sprintf
                      "image %s: value %d overflows the %d-bit port" name v
                      ram.Signal.ram_width)))
          img;
        Sim.load_ram_prefix sim ram img)
    pi.pi_mems;
  (* input tensors: prefix-load each at the program's layout, zero tail *)
  List.iter
    (fun (inp : Layout.input) ->
      let ram =
        match List.assoc_opt inp.Layout.in_mem t.input_rams with
        | Some r -> r
        | None ->
          raise
            (Bad_program
               ("program names unknown data memory " ^ inp.Layout.in_mem))
      in
      let dense =
        match List.assoc_opt inp.Layout.in_tensor env with
        | Some d -> d
        | None ->
          invalid_arg
            ("Accel.load_program: missing tensor " ^ inp.Layout.in_tensor)
      in
      if Tl_ir.Dense.size dense <> inp.Layout.in_elems then
        invalid_arg
          ("Accel.load_program: shape mismatch for " ^ inp.Layout.in_tensor);
      if inp.Layout.in_elems > ram.Signal.size then
        raise
          (Bad_program
             (Printf.sprintf "tensor %s: %d elements exceed data memory %d"
                inp.Layout.in_tensor inp.Layout.in_elems ram.Signal.size));
      let data =
        Array.init inp.Layout.in_elems (Tl_ir.Dense.flat_get dense)
      in
      Sim.load_ram_prefix sim ram data;
      (* keep the parity companion coherent on hardened variants, or the
         first read would trip error_detected; the zero tail has parity 0,
         which a prefix load leaves in place *)
      match parity_companion t ram with
      | None -> ()
      | Some pram ->
        Sim.load_ram_prefix sim pram
          (Array.map (fun v -> Harden.parity_bit (v land ((1 lsl t.data_width) - 1))) data))
    p.Layout.p_inputs

let read_program_output t sim (p : Layout.program) =
  let out = Tl_ir.Dense.create p.Layout.p_out_shape in
  let contents = Hashtbl.create 8 in
  List.iter
    (fun (name, bank) ->
      Hashtbl.replace contents name (Sim.ram_contents_lane sim 0 bank))
    t.banks;
  List.iter
    (fun (idx, (bname, addr)) ->
      match Hashtbl.find_opt contents bname with
      | None -> raise (Bad_program ("program references unknown bank " ^ bname))
      | Some data ->
        if addr < 0 || addr >= Array.length data then
          raise
            (Bad_program
               (Printf.sprintf "program bank address %d out of range for %s"
                  addr bname));
        Tl_ir.Dense.set out (Array.of_list idx)
          (Signal.to_signed t.acc_width data.(addr)))
    p.Layout.p_out;
  out

let execute_program ?backend ?max_cycles ?sim t (p : Layout.program) env =
  let sim =
    match sim with Some s -> s | None -> Sim.create ?backend t.circuit
  in
  load_program t sim p env;
  let planned = p.Layout.p_total + 1 in
  let n =
    match max_cycles with
    | None -> planned
    | Some m ->
      if m < 1 then invalid_arg "Accel: max_cycles must be >= 1";
      min m planned
  in
  Sim.cycles sim n;
  check_done t sim;
  read_program_output t sim p

let verilog t = Verilog.to_string t.circuit

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

let verilog_testbench t ~expected =
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let module_name = sanitize (Circuit.name t.circuit) in
  add "`timescale 1ns/1ps\n";
  add "module %s_tb;\n" module_name;
  add "  reg clock = 0;\n";
  add "  reg [15:0] probe_addr = 0;\n";
  List.iter
    (fun (name, (s : Signal.t)) ->
      if s.Signal.width = 1 then add "  wire %s;\n" (sanitize name)
      else add "  wire [%d:0] %s;\n" (s.Signal.width - 1) (sanitize name))
    (Circuit.outputs t.circuit);
  add "  %s dut(.clock(clock), .probe_addr(probe_addr)" module_name;
  List.iter
    (fun (name, _) ->
      let n = sanitize name in
      add ", .%s(%s)" n n)
    (Circuit.outputs t.circuit);
  add ");\n";
  add "  always #5 clock = ~clock;\n";
  add "  integer errors = 0;\n";
  add "  initial begin\n";
  add "    repeat (%d) @(posedge clock);\n" (t.total_cycles + 2);
  (* bank name lookup by ram id *)
  let name_of_bank =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (name, (r : Signal.ram)) ->
        Hashtbl.replace tbl r.Signal.ram_id name)
      t.banks;
    fun (r : Signal.ram) -> Hashtbl.find tbl r.Signal.ram_id
  in
  let checks =
    Hashtbl.fold (fun idx (bank, addr) acc -> (idx, bank, addr) :: acc)
      t.out_locs []
    |> List.sort compare
  in
  List.iter
    (fun (idx, bank, addr) ->
      let probe = sanitize (name_of_bank bank ^ "_probe") in
      let value = Tl_ir.Dense.get expected (Array.of_list idx) in
      add "    probe_addr = %d; #1;\n" addr;
      add
        "    if ($signed(%s) !== %d) begin errors = errors + 1;          $display(\"MISMATCH %s[%d]: got %%0d, want %d\", $signed(%s));          end\n"
        probe value probe addr value probe)
    checks;
  add "    if (errors == 0) $display(\"PASS: %d output elements match\");\n"
    (List.length checks);
  add "    else $display(\"FAIL: %%0d mismatches\", errors);\n";
  add "    $finish;\n";
  add "  end\n";
  add "endmodule\n";
  Buffer.contents b
