(** Complete accelerator generation (§V).

    Given a design (statement + STT) and concrete input data, elaborates the
    full spatial accelerator:

    - one PE per array position, assembled from the Fig.-3 modules selected
      by each tensor's dataflow class;
    - the interconnect implied by each reuse direction (systolic chains,
      multicast buses, diagonal lines, reduction trees, drain chains);
    - schedule-table memory feeders: boundary injection ROMs derived from
      [A·T⁻¹] at elaboration time (the "flexible memory module template"
      of §V-B) — data enters the array only at reuse-chain entry points,
      which for full-utilisation dataflows are exactly the array edges;
    - accumulate-in-place output banks (one per collector: a column drain
      port, a systolic exit, a reduction-tree root, or a unicast PE port);
    - a controller providing the cycle counter, stage (pass) bookkeeping,
      stationary-load and drain-shift strobes.

    The result simulates cycle-accurately ({!execute}) and emits Verilog
    ({!Tl_hw.Verilog}).  Functional correctness is checked against the
    golden executor in the test suite. *)

exception Unsupported of string

exception Bad_program of string
(** Raised by {!load_program} / {!execute_program} when a program cannot
    run on the target netlist: the target is not programmable, the
    structure strings differ, an image is missing / names an unknown
    memory / exceeds a memory's capacity, or a value overflows the
    generated port width.  Validation is strict and happens before
    anything is written, so a rejected program never half-configures the
    array. *)

exception Simulation_timeout of { design : string; cycles : int }
(** Raised by {!execute} / {!execute_with} when, after the bounded run,
    the controller's [done] flag is not asserted — either the caller's
    [max_cycles] cut the schedule short, or (under fault injection) a
    corrupted controller failed to reach its terminal count.  The
    simulation itself is always bounded, so a wedged controller is
    reported as a clean timeout instead of garbage output. *)

type prog_info = {
  pi_envelope : Layout.envelope;
  pi_structure : string;
      (** canonical netlist-shape string of the generating design
          ({!Layout.field-l_structure}); a program loads iff it matches *)
  pi_mems : (string * Tl_hw.Signal.ram) list;
      (** writable descriptor memories by name, in elaboration order *)
}
(** Metadata of a programmable netlist (see {!generate}'s [programmable]). *)

type t = {
  design : Tl_stt.Design.t;
  rows : int;
  cols : int;
  data_width : int;
  acc_width : int;
  schedule : Schedule.t;
  circuit : Tl_hw.Circuit.t;
  total_cycles : int;
  out_locs : (int list, Tl_hw.Signal.ram * int) Hashtbl.t;
      (** output tensor index → (bank, address) *)
  banks : (string * Tl_hw.Signal.ram) list;
  input_rams : (string * Tl_hw.Signal.ram) list;
      (** per-tensor linear data memories (row-major, as a DMA engine would
          fill them); the schedule-table feeders read through these, so the
          same accelerator re-runs on fresh data via {!execute_with} *)
  hardening : Harden.applied;
      (** which resilience options were elaborated in, plus the parity
          ram pairs and voted register names they created *)
  counter_ports : string list;
      (** read-out port names of the performance counters elaborated by
          [~counters] (see {!generate}), in output order: [ctr_cycles],
          [ctr_active_pe_cycles], one [ctr_rd_<tensor>] per input memory,
          one [ctr_wr_<bank>] per collector bank, [ctr_link_systolic] and
          [ctr_link_multicast].  Empty when counters are off. *)
  prog : prog_info option;
      (** [Some _] iff generated with [~programmable]: schedule tables are
          envelope-sized writable descriptor memories and the accelerator
          accepts {!load_program} / {!execute_program} *)
}

val generate : ?rows:int -> ?cols:int -> ?data_width:int -> ?acc_width:int ->
  ?harden:Harden.config -> ?counters:bool ->
  ?programmable:Layout.envelope -> Tl_stt.Design.t ->
  Tl_ir.Exec.env -> t
(** Defaults: 4×4 array, 16-bit data, 32-bit accumulators, no hardening,
    no counters, schedule tables baked into ROMs.
    With [programmable], every schedule table (feeder address streams,
    stage tables, validity/injection bitmaps, collector write-enable and
    address streams, the controller's done/tick streams, and — with
    [counters] — the increment tables) becomes a writable descriptor
    memory sized by the envelope, and every data memory / collector bank
    is sized to [env_elems] / [env_bank].  The netlist is otherwise
    structurally identical to the ROM variant and powers on configured
    for [design]; {!load_program} retargets it to any compatible design
    fitting the envelope (see {!Tl_compile}).  Raises {!Unsupported} when
    [design] itself does not fit the envelope.
    With [harden], controller registers are TMR-voted and/or every
    memory gains a parity companion plus an [error_detected] output (see
    {!Harden}); fault-free behaviour is bit-identical either way.
    With [counters], synthesizable performance counters are elaborated
    alongside the datapath and exposed as extra output ports
    ({!field-counter_ports}): a total-cycle counter, a MAC-enable popcount
    accumulator (active-PE-cycles), per-input-memory useful-read and
    per-collector-bank write counters (increment-ROM + accumulator,
    cross-checkable against {!Tl_perf}'s streaming statistics), and
    aggregate systolic-hop / multicast-bus link-transfer counters.  With
    [counters] off the generated netlist is bit-identical to one built
    without the option (same discipline as [harden]).
    @raise Unsupported when the design needs an unimplemented template
    (see {!Tl_stt.Design.netlist_supported}), the footprint exceeds the
    array, or a stationary output's stage is shorter than the drain chain. *)

val execute : ?backend:Tl_hw.Sim.backend -> ?max_cycles:int -> t ->
  Tl_ir.Dense.t
(** Simulate the netlist to completion and reassemble the output tensor
    from the collector banks.  [backend] selects the simulator backend
    (default the compiled instruction tape; see {!Tl_hw.Sim}).
    [max_cycles] caps the run at [min max_cycles (planned_cycles t)]
    cycles; if the controller has not asserted [done] by then —
    impossible for a healthy design given the full budget, but routine
    under fault injection — {!Simulation_timeout} is raised.
    @raise Simulation_timeout as above,
    @raise Invalid_argument if [max_cycles < 1]. *)

val execute_with : ?backend:Tl_hw.Sim.backend -> ?max_cycles:int -> t ->
  Tl_ir.Exec.env -> Tl_ir.Dense.t
(** Re-run the {i same} generated accelerator on different input data by
    rewriting the input data memories (no re-elaboration).
    @raise Invalid_argument on a missing tensor or shape mismatch.
    @raise Simulation_timeout (see {!execute}). *)

val execute_batch : ?max_cycles:int -> t -> Tl_ir.Exec.env list ->
  Tl_ir.Dense.t list
(** Run up to [Tl_hw.Sim.max_lanes] independent input environments
    through {e one} bit-sliced simulation pass ([`Batch] backend, one
    lane per environment).  Results arrive in input order, each
    bit-identical to a scalar [execute_with] on that environment.
    [max_cycles] behaves as in {!execute}, checked {e per lane}: any
    lane that has not asserted [done] raises {!Simulation_timeout}.
    @raise Invalid_argument on an empty list, more than
    [Tl_hw.Sim.max_lanes] environments, a missing tensor or a shape
    mismatch. *)

(** {2 Campaign-runner hooks}

    Lower-level pieces of {!execute_with}, exposed so fault-injection
    campaigns ({!Tl_fault}) can drive the cycle loop themselves. *)

val planned_cycles : t -> int
(** Number of cycles {!execute} simulates ([total_cycles + 1]). *)

val read_counters : t -> Tl_hw.Sim.t -> (string * int) list
(** Read every counter port of a live simulator instance (normally after
    the full bounded run), in {!field-counter_ports} order.  Empty when
    the accelerator was generated without [~counters]. *)

val load_env : t -> Tl_hw.Sim.t -> Tl_ir.Exec.env -> unit
(** Rewrite the input data memories of a live simulator instance.
    @raise Invalid_argument on a missing tensor or shape mismatch. *)

(** {2 Runtime programming}

    A programmable accelerator ({!generate} with [~programmable]) is
    retargeted at runtime by loading a {!Layout.program} — descriptor
    images plus a data-memory layout, normally produced by
    {!Tl_compile.compile} against this accelerator. *)

val load_program : t -> Tl_hw.Sim.t -> Layout.program -> Tl_ir.Exec.env ->
  unit
(** Reset the simulator (restoring power-on state, banks included), then
    write every descriptor-memory image and prefix-load each input tensor
    at the program's layout (zero tail, parity companions kept coherent
    on hardened variants).  Program images for memories the target did
    not elaborate (e.g. counter increments on a counters-off netlist) are
    ignored, so one program serves every option variant of a structure.
    @raise Bad_program on any validation failure (see {!Bad_program});
    @raise Invalid_argument on a missing tensor or shape mismatch in
    [env] (mirroring {!load_env}). *)

val execute_program : ?backend:Tl_hw.Sim.backend -> ?max_cycles:int ->
  ?sim:Tl_hw.Sim.t -> t -> Layout.program -> Tl_ir.Exec.env -> Tl_ir.Dense.t
(** {!load_program} into [sim] (default: a fresh simulator on [backend]),
    run the program's [p_total + 1] cycles (capped by [max_cycles] as in
    {!execute}), check [done], and reassemble the output tensor via the
    program's own bank map.  Pass [sim] to amortise one compiled
    simulator across many programs — the serving fast path.
    @raise Bad_program, @raise Simulation_timeout, @raise Invalid_argument
    as {!load_program} / {!execute}. *)

val read_program_output : t -> Tl_hw.Sim.t -> Layout.program -> Tl_ir.Dense.t
(** Reassemble a program's output tensor from a live simulator (no
    cycling, no [done] check) — {!read_output} for programmed runs. *)

val load_env_lane : t -> Tl_hw.Sim.t -> int -> Tl_ir.Exec.env -> unit
(** Lane-targeted {!load_env} for [`Batch] simulators. *)

val check_done : t -> Tl_hw.Sim.t -> unit
(** @raise Simulation_timeout if the [done] output is not asserted — on
    a [`Batch] simulator, if {e any} lane's [done] is not asserted. *)

val read_output : t -> Tl_hw.Sim.t -> Tl_ir.Dense.t
(** Reassemble the output tensor from the collector banks of a live
    simulator instance (no cycling, no [done] check). *)

val read_output_lane : t -> Tl_hw.Sim.t -> int -> Tl_ir.Dense.t
(** Lane-targeted {!read_output} for [`Batch] simulators. *)

val golden_cells :
  t -> Tl_ir.Dense.t -> (Tl_hw.Signal.ram * int * int) list
(** Flatten a golden output tensor into raw (bank, addr, expected-value)
    triples, precomputed once per campaign so {!output_equal_lane} can
    test a lane without allocating. *)

val output_equal_lane :
  t -> Tl_hw.Sim.t -> int -> (Tl_hw.Signal.ram * int * int) list -> bool
(** Does lane [l]'s output equal the golden flattened by {!golden_cells}?
    Allocation-free equivalent of
    [Tl_ir.Dense.equal (read_output_lane t sim l) golden]. *)

val output_checker :
  t -> Tl_hw.Sim.t -> (Tl_hw.Signal.ram * int * int) list -> int -> bool
(** {!output_equal_lane} with the bank slots pre-resolved against one
    simulator; build it once per simulator, then call it per lane. *)

val verilog : t -> string

val verilog_testbench : t -> expected:Tl_ir.Dense.t -> string
(** Self-checking Verilog testbench: instantiates the generated module,
    clocks it through the full schedule, then sweeps the probe port over
    every output-bank address and compares against [expected] (normally
    the golden executor's result).  Prints PASS or a mismatch count, so
    the emitted RTL can be validated under any external simulator. *)
