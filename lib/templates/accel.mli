(** Complete accelerator generation (§V).

    Given a design (statement + STT) and concrete input data, elaborates the
    full spatial accelerator:

    - one PE per array position, assembled from the Fig.-3 modules selected
      by each tensor's dataflow class;
    - the interconnect implied by each reuse direction (systolic chains,
      multicast buses, diagonal lines, reduction trees, drain chains);
    - schedule-table memory feeders: boundary injection ROMs derived from
      [A·T⁻¹] at elaboration time (the "flexible memory module template"
      of §V-B) — data enters the array only at reuse-chain entry points,
      which for full-utilisation dataflows are exactly the array edges;
    - accumulate-in-place output banks (one per collector: a column drain
      port, a systolic exit, a reduction-tree root, or a unicast PE port);
    - a controller providing the cycle counter, stage (pass) bookkeeping,
      stationary-load and drain-shift strobes.

    The result simulates cycle-accurately ({!execute}) and emits Verilog
    ({!Tl_hw.Verilog}).  Functional correctness is checked against the
    golden executor in the test suite. *)

exception Unsupported of string

type t = {
  design : Tl_stt.Design.t;
  rows : int;
  cols : int;
  data_width : int;
  acc_width : int;
  schedule : Schedule.t;
  circuit : Tl_hw.Circuit.t;
  total_cycles : int;
  out_locs : (int list, Tl_hw.Signal.ram * int) Hashtbl.t;
      (** output tensor index → (bank, address) *)
  banks : (string * Tl_hw.Signal.ram) list;
  input_rams : (string * Tl_hw.Signal.ram) list;
      (** per-tensor linear data memories (row-major, as a DMA engine would
          fill them); the schedule-table feeders read through these, so the
          same accelerator re-runs on fresh data via {!execute_with} *)
}

val generate : ?rows:int -> ?cols:int -> ?data_width:int -> ?acc_width:int ->
  Tl_stt.Design.t -> Tl_ir.Exec.env -> t
(** Defaults: 4×4 array, 16-bit data, 32-bit accumulators.
    @raise Unsupported when the design needs an unimplemented template
    (see {!Tl_stt.Design.netlist_supported}), the footprint exceeds the
    array, or a stationary output's stage is shorter than the drain chain. *)

val execute : ?backend:Tl_hw.Sim.backend -> t -> Tl_ir.Dense.t
(** Simulate the netlist to completion and reassemble the output tensor
    from the collector banks.  [backend] selects the simulator backend
    (default the compiled instruction tape; see {!Tl_hw.Sim}). *)

val execute_with : ?backend:Tl_hw.Sim.backend -> t -> Tl_ir.Exec.env ->
  Tl_ir.Dense.t
(** Re-run the {i same} generated accelerator on different input data by
    rewriting the input data memories (no re-elaboration).
    @raise Invalid_argument on a missing tensor or shape mismatch. *)

val verilog : t -> string

val verilog_testbench : t -> expected:Tl_ir.Dense.t -> string
(** Self-checking Verilog testbench: instantiates the generated module,
    clocks it through the full schedule, then sweeps the probe port over
    every output-bank address and compares against [expected] (normally
    the golden executor's result).  Prints PASS or a mismatch count, so
    the emitted RTL can be validated under any external simulator. *)
