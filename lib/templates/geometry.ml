type pos = int * int

let in_grid ~rows ~cols (r, c) = r >= 0 && r < rows && c >= 0 && c < cols
let step (r, c) d = (r + d.(0), c + d.(1))
let back (r, c) d = (r - d.(0), c - d.(1))

let line_rep ~rows ~cols ~dir p =
  if dir.(0) = 0 && dir.(1) = 0 then
    invalid_arg "Geometry.line_rep: zero direction";
  let rec walk p =
    let prev = back p dir in
    if in_grid ~rows ~cols prev then walk prev else p
  in
  walk p

let line_members ~rows ~cols ~dir p =
  let rec forward p acc =
    if in_grid ~rows ~cols p then forward (step p dir) (p :: acc)
    else List.rev acc
  in
  forward (line_rep ~rows ~cols ~dir p) []
