(** PE-array geometry helpers: grid membership and interconnect lines.

    A "line" is an equivalence class of PE coordinates under translation by
    a direction vector — the set of PEs sharing one multicast bus or one
    systolic chain. *)

type pos = int * int

val in_grid : rows:int -> cols:int -> pos -> bool

val step : pos -> int array -> pos
(** [step p d] is [p + d]. *)

val back : pos -> int array -> pos
(** [step p (-d)]. *)

val line_rep : rows:int -> cols:int -> dir:int array -> pos -> pos
(** Canonical representative of the line through [p] along [dir]: the
    position reached by walking backwards while staying inside the grid.
    @raise Invalid_argument if [dir] is the zero vector. *)

val line_members : rows:int -> cols:int -> dir:int array -> pos -> pos list
(** All grid positions on the line through [p], ordered from the
    representative forward. *)
