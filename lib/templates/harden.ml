open Tl_hw

type config = {
  tmr_controller : bool;
  parity_banks : bool;
}

let none = { tmr_controller = false; parity_banks = false }
let tmr_only = { tmr_controller = true; parity_banks = false }
let parity_only = { tmr_controller = false; parity_banks = true }
let full = { tmr_controller = true; parity_banks = true }

let is_none c = (not c.tmr_controller) && not c.parity_banks

let label c =
  match c.tmr_controller, c.parity_banks with
  | false, false -> "none"
  | true, false -> "tmr"
  | false, true -> "parity"
  | true, true -> "tmr+parity"

type applied = {
  config : config;
  tmr_regs : string list;
  parity_pairs : (Signal.ram * Signal.ram) list;
}

let no_hardening = { config = none; tmr_regs = []; parity_pairs = [] }

let vote a b c = Signal.(a &: b |: (a &: c) |: (b &: c))

let tmr_reg ~name ?enable ?clear ?clear_to ?init d =
  let copy k =
    Signal.(
      reg ?enable ?clear ?clear_to ?init d
      -- Printf.sprintf "%s_tmr%d" name k)
  in
  vote (copy 0) (copy 1) (copy 2)

let parity_of s =
  let w = Signal.width s in
  let rec go acc i =
    if i >= w then acc else go Signal.(acc ^: Signal.bit s i) (i + 1)
  in
  go (Signal.bit s 0) 1

let parity_bit v =
  let rec go acc v = if v = 0 then acc else go (acc lxor (v land 1)) (v lsr 1) in
  go 0 v
