(** Hardened template variants (resilience options for generated
    accelerators).

    Three orthogonal mechanisms, selected per-design through {!config}
    and threaded into {!Accel.generate}:

    - {b TMR controller}: every controller state register (cycle / pass
      counters, stage strobes, drain counter) is triplicated and its
      readers see the bitwise majority vote.  All three copies latch the
      same next-state computed from the {e voted} feedback, so a single
      upset copy self-heals at the next clock edge.
    - {b Parity memories}: each memory bank and input data memory gains
      a 1-bit parity companion; every scheduled read re-checks parity
      and a sticky flag drives an [error_detected] output port.
    - {b ABFT} (algorithm-based fault tolerance) is a data-level
      row/column-checksum wrapper and lives in {!Tl_fault.Abft}; it
      needs no netlist support beyond a larger array.

    Fault-free behaviour is bit-identical to the unhardened design; the
    cost is area/energy, quantified through {!Tl_cost.Asic} by the
    campaign tooling. *)

type config = {
  tmr_controller : bool;
  parity_banks : bool;
}

val none : config
val tmr_only : config
val parity_only : config
val full : config

val is_none : config -> bool
val label : config -> string
(** ["none"], ["tmr"], ["parity"] or ["tmr+parity"]. *)

type applied = {
  config : config;
  tmr_regs : string list;  (** voted controller registers (base names) *)
  parity_pairs : (Tl_hw.Signal.ram * Tl_hw.Signal.ram) list;
      (** (protected ram, 1-bit parity companion) — campaign runners
          sweep these after a run to catch corrupted write-once cells *)
}

val no_hardening : applied

val vote : Tl_hw.Signal.t -> Tl_hw.Signal.t -> Tl_hw.Signal.t -> Tl_hw.Signal.t
(** Bitwise 2-of-3 majority. *)

val tmr_reg :
  name:string ->
  ?enable:Tl_hw.Signal.t ->
  ?clear:Tl_hw.Signal.t ->
  ?clear_to:int ->
  ?init:int ->
  Tl_hw.Signal.t ->
  Tl_hw.Signal.t
(** Triplicated register: three copies (named [name_tmr0..2]) of the
    same next-state function, returning the majority vote of their
    outputs.  Feed the vote back into the next-state computation so a
    corrupted copy is rewritten with the voted value. *)

val parity_of : Tl_hw.Signal.t -> Tl_hw.Signal.t
(** XOR-reduction of all bits (even-parity bit). *)

val parity_bit : int -> int
(** Host-side reference: parity of an [int]'s set bits. *)
